package xtverify

// Benchmark harness: one benchmark per paper table/figure (DESIGN.md §4)
// plus the ablations of §5. Populations are scaled down so `go test -bench`
// completes in minutes; cmd/repro runs the full-scale versions. Accuracy
// quantities are attached as custom metrics (errpct, speedup, ...) so the
// *shape* results ride along with the timing.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"xtverify/internal/cellmodel"
	"xtverify/internal/cells"
	"xtverify/internal/circuit"
	"xtverify/internal/dsp"
	"xtverify/internal/exp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/mna"
	"xtverify/internal/prune"
	"xtverify/internal/romsim"
	"xtverify/internal/spice"
	"xtverify/internal/sta"
	"xtverify/internal/stats"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

func benchDSP() dsp.Config {
	return dsp.Config{Seed: 1999, Channels: 1, TracksPerChannel: 80,
		ChannelLengthUM: 1500, BusFraction: 0.05, LatchFraction: 0.3, ClockSpines: 1}
}

// BenchmarkTable1 regenerates Table 1 (peak glitch vs coupled length).
func BenchmarkTable1(b *testing.B) {
	var last *exp.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].GlitchV, "ckt4-glitch-V")
}

// BenchmarkTable2 regenerates Table 2 (delays with/without coupling).
func BenchmarkTable2(b *testing.B) {
	var last *exp.Table2Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	r4 := last.Rows[3]
	b.ReportMetric((r4.RiseWith-r4.RiseWithout)*1e12, "ckt4-rise-penalty-ps")
}

var benchAccuracyCells = []string{"INV_X1", "INV_X4", "NAND2_X2", "NOR2_X1", "BUF_X2", "DFF_X1"}

// BenchmarkTable3 regenerates Table 3 (timing-library model accuracy) at
// reduced population.
func BenchmarkTable3(b *testing.B) {
	var last *exp.ModelAccuracyResult
	for i := 0; i < b.N; i++ {
		r, err := exp.RunModelAccuracy(glitch.ModelTimingLibrary,
			exp.AccuracyConfig{LengthsPerCell: 4}, benchAccuracyCells)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Summary.AbsMean, "avg-abs-errpct")
	b.ReportMetric(100*last.PctWithin10, "pct-within-10")
}

// BenchmarkTable4 regenerates Table 4 (nonlinear cell model accuracy).
func BenchmarkTable4(b *testing.B) {
	var last *exp.ModelAccuracyResult
	for i := 0; i < b.N; i++ {
		r, err := exp.RunModelAccuracy(glitch.ModelNonlinear,
			exp.AccuracyConfig{LengthsPerCell: 4}, benchAccuracyCells)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Summary.AbsMean, "avg-abs-errpct")
	b.ReportMetric(100*last.PctWithin10, "pct-within-10")
}

// BenchmarkFig3Speedup regenerates Figure 3 (MPVL vs SPICE with identical
// 1 kΩ drivers) at reduced population.
func BenchmarkFig3Speedup(b *testing.B) {
	var last *exp.Fig3Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig3(exp.Fig3Config{MaxClusters: 15, DSP: benchDSP()})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AvgAbsErrPct, "avg-abs-errpct")
	b.ReportMetric(last.MaxAbsErrPct, "max-abs-errpct")
	b.ReportMetric(last.Speedup, "speedup-x")
}

// BenchmarkFig45 regenerates the Figure 4/5 waveform comparison.
func BenchmarkFig45(b *testing.B) {
	var last *exp.WaveComparison
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig45(exp.Fig3Config{MaxClusters: 8, DSP: benchDSP()})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(math.Abs(last.ErrPct), "worst-case-errpct")
}

// BenchmarkFig6Speedup regenerates Figure 6 (rising, nonlinear model vs
// transistor-level SPICE on latch-input victims).
func BenchmarkFig6Speedup(b *testing.B) {
	var last *exp.Fig67Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig67(true, exp.Fig67Config{MaxVictims: 10, DSP: benchDSP()})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Over10.Min, "min-errpct")
	b.ReportMetric(last.Over10.Max, "max-errpct")
	b.ReportMetric(last.Speedup, "speedup-x")
}

// BenchmarkFig7Speedup is the falling-edge counterpart (Figure 7).
func BenchmarkFig7Speedup(b *testing.B) {
	var last *exp.Fig67Result
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig67(false, exp.Fig67Config{MaxVictims: 10, DSP: benchDSP()})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Over10.Min, "min-errpct")
	b.ReportMetric(last.Over10.Max, "max-errpct")
	b.ReportMetric(last.Speedup, "speedup-x")
}

// BenchmarkPruning regenerates the Section 3 cluster statistics.
func BenchmarkPruning(b *testing.B) {
	var last *exp.PruneResult
	for i := 0; i < b.N; i++ {
		r, err := exp.RunPruneStats(benchDSP())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Stats.RawMeanSize, "raw-mean-nets")
	b.ReportMetric(last.Stats.PrunedMeanSize, "pruned-mean-nets")
}

// --- Core-kernel benchmarks --------------------------------------------

// benchCluster prepares a mid-size coupled cluster once.
func benchCluster(b *testing.B) (*extract.Parasitics, *prune.Cluster) {
	b.Helper()
	d, err := dsp.ParallelWires(5, 2000, 1.2, []string{"INV_X4"}, "INV_X1")
	if err != nil {
		b.Fatal(err)
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		b.Fatal(err)
	}
	cl := prune.PruneVictim(par, 2, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	return par, cl
}

// BenchmarkSyMPVLReduce measures the model-order-reduction kernel alone.
func BenchmarkSyMPVLReduce(b *testing.B) {
	par, cl := benchCluster(b)
	ckt, err := prune.BuildCircuit(par, cl)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// One reusable workspace, as the glitch engine holds per analysis engine:
	// steady-state allocation is what the analysis loop actually pays.
	ws := &sympvl.Workspace{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sympvl.Reduce(sys, sympvl.Options{Order: 36, Workspace: ws}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkROMTransient measures the reduced-order nonlinear transient.
func BenchmarkROMTransient(b *testing.B) {
	par, cl := benchCluster(b)
	eng := glitch.NewEngine(par, glitch.Options{Model: glitch.ModelFixedR, FixedOhms: 1000, TEnd: 5e-9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AnalyzeGlitch(cl, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPICETransient measures the same analysis in the reference
// engine; the ratio to BenchmarkROMTransient is the paper's headline
// speedup.
func BenchmarkSPICETransient(b *testing.B) {
	par, cl := benchCluster(b)
	eng := glitch.NewEngine(par, glitch.Options{Model: glitch.ModelFixedR, FixedOhms: 1000, TEnd: 5e-9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SPICEGlitch(cl, true, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlitchClusterScenarios measures the full multi-scenario sweep a
// cluster undergoes during verification and timing recalculation — both
// glitch polarities plus both delay edges, coupled and decoupled — with the
// prepared/batched transient layer on ("prepared") and off ("seed", the
// historical Simulate-per-scenario path). Both run against the same warm ROM
// cache; the gap is what amortizing the termination fold, diagonalization
// and fingerprint lookups across scenarios saves. Results are bit-identical
// either way (TestPreparedByteIdenticalToSeedPath).
func BenchmarkGlitchClusterScenarios(b *testing.B) {
	par, cl := benchCluster(b)
	run := func(b *testing.B, disable bool) {
		eng := glitch.NewEngine(par, glitch.Options{
			Model: glitch.ModelFixedR, FixedOhms: 1000, TEnd: 5e-9,
			DisablePrepared: disable,
		})
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.AnalyzeGlitchPairContext(ctx, cl); err != nil {
				b.Fatal(err)
			}
			for _, withCoupling := range []bool{false, true} {
				for _, rising := range []bool{true, false} {
					if _, err := eng.AnalyzeDelayContext(ctx, cl, rising, withCoupling); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("seed", func(b *testing.B) { run(b, true) })
	b.Run("prepared", func(b *testing.B) { run(b, false) })
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// BenchmarkAblationOrder sweeps the reduced order and reports the glitch
// error against the exhaustive (full-order) model.
func BenchmarkAblationOrder(b *testing.B) {
	par, cl := benchCluster(b)
	run := func(order int) float64 {
		eng := glitch.NewEngine(par, glitch.Options{
			Model: glitch.ModelFixedR, FixedOhms: 1000, TEnd: 5e-9, Order: order,
		})
		res, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			b.Fatal(err)
		}
		return res.PeakV
	}
	exact := run(200) // effectively exhaustive for this cluster
	for _, order := range []int{4, 8, 16, 32} {
		order := order
		b.Run(orderName(order), func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				peak = run(order)
			}
			b.ReportMetric(100*math.Abs(peak-exact)/exact, "errpct-vs-full")
		})
	}
}

func orderName(q int) string {
	return fmt.Sprintf("q=%02d", q)
}

// BenchmarkAblationPrune sweeps the capacitance-ratio threshold and reports
// the cluster-size / retained-coupling trade.
func BenchmarkAblationPrune(b *testing.B) {
	d, err := dsp.Generate(benchDSP())
	if err != nil {
		b.Fatal(err)
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		b.Fatal(err)
	}
	for _, th := range []float64{0.005, 0.02, 0.08} {
		th := th
		b.Run(thName(th), func(b *testing.B) {
			var s prune.Stats
			for i := 0; i < b.N; i++ {
				s = prune.ComputeStats(par, prune.Options{CapRatioThreshold: th, MinCouplingF: 0.1e-15})
			}
			b.ReportMetric(s.PrunedMeanSize, "mean-cluster-nets")
			b.ReportMetric(100*s.KeptCouplingFrac, "kept-coupling-pct")
		})
	}
}

func thName(th float64) string {
	switch th {
	case 0.005:
		return "th=0.005"
	case 0.02:
		return "th=0.020"
	default:
		return "th=0.080"
	}
}

// BenchmarkAblationWoodbury compares the diagonal-plus-rank-k Newton solve
// (paper Eq. 7) against a dense LU at every Newton step.
func BenchmarkAblationWoodbury(b *testing.B) {
	par, cl := benchCluster(b)
	ckt, err := prune.BuildCircuit(par, cl)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		b.Fatal(err)
	}
	model, err := sympvl.Reduce(sys, sympvl.Options{Order: 48})
	if err != nil {
		b.Fatal(err)
	}
	victim, _ := cells.ByName("INV_X4")
	hold, err := cellmodel.NewNonlinearHolding(victim, cells.HoldLow)
	if err != nil {
		b.Fatal(err)
	}
	terms := make([]romsim.Termination, model.Ports)
	for i := range terms {
		terms[i] = romsim.Termination{Linear: &romsim.Linear{G: 1e-3, Vs: waveform.Ramp(0, 3, 100e-12, 100e-12)}}
	}
	// A couple of nonlinear ports so the rank-k path is exercised.
	terms[0] = hold.Termination()
	terms[1] = hold.Termination()
	for _, dense := range []bool{false, true} {
		dense := dense
		name := "woodbury"
		if dense {
			name = "dense-lu"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := romsim.Simulate(model, terms, romsim.Options{
					TEnd: 3e-9, Dt: 2e-12, DenseNewton: dense,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDriverForm compares the two nonlinear driver
// formulations (I–V surface vs two-curve blend) on short-wire accuracy,
// where the difference is largest.
func BenchmarkAblationDriverForm(b *testing.B) {
	d, err := dsp.ParallelWires(2, 150, 1.2, []string{"BUF_X4", "INV_X1"}, "INV_X1")
	if err != nil {
		b.Fatal(err)
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		b.Fatal(err)
	}
	cl := prune.PruneVictim(par, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	eng := glitch.NewEngine(par, glitch.Options{Model: glitch.ModelNonlinear, TEnd: 3e-9})
	gold, err := eng.SPICEGlitch(cl, true, true)
	if err != nil {
		b.Fatal(err)
	}
	agg, _ := cells.ByName("BUF_X4")
	tm, err := cells.CharacterizeCached(agg)
	if err != nil {
		b.Fatal(err)
	}
	load := par.Nets[0].TotalCapF()
	b.Run("surface", func(b *testing.B) {
		var peak float64
		for i := 0; i < b.N; i++ {
			res, err := eng.AnalyzeGlitch(cl, true)
			if err != nil {
				b.Fatal(err)
			}
			peak = res.PeakV
		}
		b.ReportMetric(100*math.Abs(peak-gold.PeakV)/gold.PeakV, "errpct-vs-spice")
	})
	b.Run("blend", func(b *testing.B) {
		var peak float64
		for i := 0; i < b.N; i++ {
			blend, err := cellmodel.NewBlendSwitching(agg, tm, true, 200e-12, 120e-12, load)
			if err != nil {
				b.Fatal(err)
			}
			peak = blendGlitch(b, par, cl, blend)
		}
		b.ReportMetric(100*math.Abs(peak-gold.PeakV)/gold.PeakV, "errpct-vs-spice")
	})
}

// blendGlitch simulates the 2-wire cluster with an explicit aggressor device
// and a nonlinear holding victim.
func blendGlitch(b *testing.B, par *extract.Parasitics, cl *prune.Cluster, aggDev romsim.Device) float64 {
	b.Helper()
	ckt, err := prune.BuildCircuit(par, cl)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		b.Fatal(err)
	}
	model, err := sympvl.Reduce(sys, sympvl.Options{Order: 6 * sys.P})
	if err != nil {
		b.Fatal(err)
	}
	victim, _ := cells.ByName("INV_X1")
	hold, err := cellmodel.NewNonlinearHolding(victim, cells.HoldLow)
	if err != nil {
		b.Fatal(err)
	}
	terms := make([]romsim.Termination, model.Ports)
	// Port order from BuildCircuit: victim driver, aggressor driver, victim
	// receiver.
	terms[0] = hold.Termination()
	terms[1] = romsim.Termination{Dev: aggDev}
	res, err := romsim.Simulate(model, terms, romsim.Options{TEnd: 3e-9, Dt: 2e-12})
	if err != nil {
		b.Fatal(err)
	}
	return res.Ports[2].PeakDeviation(0).Value
}

// BenchmarkChipVerify is the rung-0 screening headline: end-to-end
// verification of a local-interconnect-dominated DSP block (short channel
// spans at relaxed routing pitch — the provably-quiet population a real
// floorplan is mostly made of) with the analytic screen on versus off.
// Screened clusters never assemble an MNA system, build a ROM, or run a
// transient, so the "screen" variant's cluster throughput is the
// optimization's measured win; the violation list is identical either way
// (TestScreeningReportIdentity). Reported metrics: clusters/sec and the
// fraction of clusters cleared at rung 0.
func BenchmarkChipVerify(b *testing.B) {
	cfg := DSPConfig{Seed: 1999, Channels: 2, TracksPerChannel: 80,
		ChannelLengthUM: 70, BusFraction: 0.05, LatchFraction: 0.25,
		ClockSpines: 1, TrackPitchUM: 1.8}
	run := func(b *testing.B, noScreen bool) {
		var clusters, screened int
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			v, err := NewVerifierFromDSP(cfg, Config{Model: TimingLibrary, DisableScreening: noScreen})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := v.Run()
			if err != nil {
				b.Fatal(err)
			}
			clusters = rep.AnalyzedVictims
			if rep.Screening != nil {
				screened = rep.Screening.Screened
			}
		}
		elapsed := time.Since(start)
		b.ReportMetric(float64(clusters*b.N)/elapsed.Seconds(), "clusters/sec")
		b.ReportMetric(float64(screened)/float64(clusters), "screened-frac")
	}
	// Warm the cell characterization cache so neither variant pays it.
	if v, err := NewVerifierFromDSP(cfg, Config{Model: TimingLibrary}); err == nil {
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("no-screen", func(b *testing.B) { run(b, true) })
	b.Run("screen", func(b *testing.B) { run(b, false) })
}

// BenchmarkFullChipVerify measures the end-to-end public API flow.
func BenchmarkFullChipVerify(b *testing.B) {
	cfg := DSPConfig{Seed: 7, Channels: 1, TracksPerChannel: 40, ChannelLengthUM: 800,
		BusFraction: 0.05, LatchFraction: 0.25, ClockSpines: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := NewVerifierFromDSP(cfg, Config{Model: FixedResistance})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTA measures window annotation on the bench design.
func BenchmarkSTA(b *testing.B) {
	d, err := dsp.Generate(benchDSP())
	if err != nil {
		b.Fatal(err)
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sta.Annotate(d, par, sta.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraction measures the synthetic extractor.
func BenchmarkExtraction(b *testing.B) {
	d, err := dsp.Generate(benchDSP())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extract.Extract(d, extract.Tech025()); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = stats.Summarize // keep stats linked for metric helpers

// BenchmarkAnalyticBaseline regenerates the closed-form prior-art
// comparison (DESIGN.md extension experiments).
func BenchmarkAnalyticBaseline(b *testing.B) {
	var last *exp.AnalyticResult
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAnalytic()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	// Ratio of closed-form to SPICE at the longest line: the pessimism the
	// detailed flow removes.
	row := last.Rows[len(last.Rows)-1]
	b.ReportMetric(row.ChargeShareV/row.SPICEV, "bound-pessimism-x")
}

// BenchmarkTimingImpact measures the chip-level timing recalculation.
func BenchmarkTimingImpact(b *testing.B) {
	var last *exp.TimingImpactResult
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTimingImpact(benchDSP(), 25)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.DeterioratePct.Mean, "mean-deterioration-pct")
}

// BenchmarkEMAudit measures the electromigration current audit.
func BenchmarkEMAudit(b *testing.B) {
	cfg := dsp.Config{Seed: 3, Channels: 1, TracksPerChannel: 30, ChannelLengthUM: 900, ClockSpines: 1}
	var last *exp.EMStudyResult
	for i := 0; i < b.N; i++ {
		r, err := exp.RunEMStudy(cfg, 200e6, 0)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Violations), "violations")
}

// BenchmarkSPICEAdaptive contrasts adaptive and fixed-step SPICE transients
// on the same cluster (substrate ablation).
func BenchmarkSPICEAdaptive(b *testing.B) {
	par, cl := benchCluster(b)
	ckt, err := prune.BuildCircuit(par, cl)
	if err != nil {
		b.Fatal(err)
	}
	buildNet := func() *spice.Netlist {
		net := spice.NewNetlist("ad")
		nodeOf := make([]spice.Node, ckt.NumNodes())
		for i := range nodeOf {
			nodeOf[i] = net.Node(ckt.NodeName(circuit.NodeID(i)))
		}
		for _, r := range ckt.Resistors {
			net.AddR(nodeOf[r.A], nodeOf[r.B], r.Ohms)
		}
		for _, c := range ckt.Capacitors {
			a, bb := spice.Ground, spice.Ground
			if c.A != circuit.Ground {
				a = nodeOf[c.A]
			}
			if c.B != circuit.Ground {
				bb = nodeOf[c.B]
			}
			net.AddC(a, bb, c.Farads)
		}
		// Drive the first port node, observe the rest.
		net.Drive(nodeOf[ckt.Ports[0].Node], waveform.Ramp(0, 3, 200e-12, 120e-12))
		return net
	}
	for _, adaptive := range []bool{false, true} {
		adaptive := adaptive
		name := "fixed"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				res, err := buildNet().Transient(spice.Options{TEnd: 4e-9, Dt: 2e-12, Adaptive: adaptive})
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkPropagation measures the chip-level noise-propagation study
// (extension X5).
func BenchmarkPropagation(b *testing.B) {
	var last *exp.PropagationResult
	for i := 0; i < b.N; i++ {
		r, err := exp.RunPropagation(benchDSP(), 10, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.ReachedLatch), "reached-latch")
	b.ReportMetric(float64(last.Filtered), "filtered")
}

// BenchmarkReverify measures the incremental ECO splice against the full
// re-run it replaces, on the BenchmarkChipVerify design (~148 clusters): one
// driver upsize, then Reverify per iteration vs one timed cold Run of the
// edited design. speedup-x is the acceptance gate (>= 10x); the spliced
// report is byte-compared against the cold run every iteration.
func BenchmarkReverify(b *testing.B) {
	dspCfg := DSPConfig{Seed: 1999, Channels: 2, TracksPerChannel: 80,
		ChannelLengthUM: 70, BusFraction: 0.05, LatchFraction: 0.25,
		ClockSpines: 1, TrackPitchUM: 1.8}
	cfg := Config{Model: TimingLibrary}
	gen, err := NewVerifierFromDSP(dspCfg, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := gen.WriteDEF(&sb); err != nil {
		b.Fatal(err)
	}
	baseDEF := sb.String()
	baseV, err := NewVerifierFromDEF(strings.NewReader(baseDEF), cfg)
	if err != nil {
		b.Fatal(err)
	}
	baseRep, err := baseV.Run()
	if err != nil {
		b.Fatal(err)
	}
	// Repair the first victim whose driver has a stronger same-kind cell:
	// violations first, then any analyzed cluster.
	var candidates []string
	for _, viol := range baseRep.Violations {
		candidates = append(candidates, viol.Victim)
	}
	for _, out := range baseRep.Diagnostics.Clusters {
		candidates = append(candidates, out.Victim)
	}
	var defText string
	for _, victim := range candidates {
		if d, uerr := upsizeInDEF(baseDEF, victim); uerr == nil {
			defText = d
			break
		}
	}
	if defText == "" {
		b.Fatal("no repairable victim on the bench design")
	}
	base, err := baseV.BaseRun(baseRep)
	if err != nil {
		b.Fatal(err)
	}

	// The baseline this replaces: a cold full run (parse + verify) of the
	// edited design. Best of three, so a scheduler hiccup on one run cannot
	// inflate the reported speedup.
	var fullDur time.Duration
	var want string
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		coldV, err := NewVerifierFromDEF(strings.NewReader(defText), cfg)
		if err != nil {
			b.Fatal(err)
		}
		coldRep, err := coldV.Run()
		if err != nil {
			b.Fatal(err)
		}
		if d := time.Since(t0); i == 0 || d < fullDur {
			fullDur = d
		}
		want = identityText(b, coldRep)
	}

	// One untimed warm-up splice absorbs lazy one-time initialization.
	if wv, err := NewVerifierFromDEF(strings.NewReader(defText), cfg); err != nil {
		b.Fatal(err)
	} else if _, _, err := wv.Reverify(base); err != nil {
		b.Fatal(err)
	}

	var reused, recomputed int
	var spliceTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		v, err := NewVerifierFromDEF(strings.NewReader(defText), cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, stats, err := v.Reverify(base)
		if err != nil {
			b.Fatal(err)
		}
		spliceTotal += time.Since(t0)
		reused, recomputed = stats.ClustersReused, stats.ClustersRecomputed
		if got := identityText(b, rep); got != want {
			b.Fatal("spliced report differs from cold full run")
		}
	}
	b.StopTimer()
	if reused == 0 {
		b.Fatal("splice reused nothing; the benchmark is measuring a full run")
	}
	splicePerOp := spliceTotal / time.Duration(b.N)
	b.ReportMetric(float64(fullDur)/float64(splicePerOp), "speedup-x")
	b.ReportMetric(float64(reused), "clusters-reused")
	b.ReportMetric(float64(recomputed), "clusters-recomputed")
	b.ReportMetric(float64(fullDur)/float64(time.Millisecond), "full-run-ms")
}

// BenchmarkChipStream is the streaming-ingest headline: the same chip
// verified materialized versus streamed (Config.StreamIngest), reporting net
// throughput and the sampled peak heap. The report bytes are provably
// identical (TestStreamReportIdentityDSP); the streamed variant's
// peak-heap-MB is the optimization's measured win — extraction, clustering
// and verification overlap, no whole-chip design or parasitics are ever
// held, and each component's analysis views are released as its clusters
// finish.
func BenchmarkChipStream(b *testing.B) {
	cfg := DSPConfig{Seed: 1999, Channels: 100, TracksPerChannel: 400,
		ChannelLengthUM: 70, BusFraction: 0.05, LatchFraction: 0.25,
		ClockSpines: 1, TrackPitchUM: 1.8}
	run := func(b *testing.B, stream bool) {
		runtime.GC()
		var peak uint64 // owned by the sampler; read after <-done
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			var m runtime.MemStats
			for {
				select {
				case <-stop:
					return
				default:
				}
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
				time.Sleep(time.Millisecond)
			}
		}()
		var nets int
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			v, err := NewVerifierFromDSP(cfg, Config{Model: FixedResistance, StreamIngest: stream})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := v.RunContext(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			nets = rep.NetCount
		}
		elapsed := time.Since(start)
		close(stop)
		<-done
		b.ReportMetric(float64(nets*b.N)/elapsed.Seconds(), "nets/sec")
		b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	}
	b.Run("materialized", func(b *testing.B) { run(b, false) })
	b.Run("stream", func(b *testing.B) { run(b, true) })
}
