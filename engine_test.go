package xtverify

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// engineVerifier builds the small test design for engine tests.
func engineVerifier(t *testing.T, cfg Config) *Verifier {
	t.Helper()
	v, err := NewVerifierFromDSP(smallDSP(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// compareViolations checks got against want victim by victim: exact equality
// everywhere except the named victim, whose peak may deviate by tol (a
// fallback rung integrates a slightly different system).
func compareViolations(t *testing.T, got, want []Violation, except string, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("violation count %d, want %d", len(got), len(want))
	}
	wm := make(map[string]Violation, len(want))
	for _, v := range want {
		wm[v.Victim] = v
	}
	for _, g := range got {
		w, ok := wm[g.Victim]
		if !ok {
			t.Errorf("unexpected violation %+v", g)
			continue
		}
		if g.Victim == except {
			if d := g.PeakV - w.PeakV; d > tol || d < -tol {
				t.Errorf("%s: fallback peak %.4f vs clean %.4f (tol %g)", g.Victim, g.PeakV, w.PeakV, tol)
			}
			continue
		}
		if g != w {
			t.Errorf("%s differs:\n  got  %+v\n  want %+v", g.Victim, g, w)
		}
	}
}

// TestParallelMatchesSerial is the determinism acceptance check: a parallel
// degraded run must produce byte-identical Violations (and report text) to
// the serial strict Run on a healthy design.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	serial, err := engineVerifier(t, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := engineVerifier(t, cfg).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Violations) == 0 {
		t.Fatal("test design produced no violations; determinism check is vacuous")
	}
	a := fmt.Sprintf("%+v", serial.Violations)
	b := fmt.Sprintf("%+v", par.Violations)
	if a != b {
		t.Errorf("parallel violations differ from serial:\nserial: %s\nparallel: %s", a, b)
	}
	if par.AnalyzedVictims != serial.AnalyzedVictims {
		t.Errorf("analyzed victims: parallel %d vs serial %d", par.AnalyzedVictims, serial.AnalyzedVictims)
	}
	d := par.Diagnostics
	if d == nil {
		t.Fatal("parallel report has no diagnostics")
	}
	if d.Workers != 4 && d.Workers != par.AnalyzedVictims {
		t.Errorf("diagnostics workers = %d", d.Workers)
	}
	if d.Unverified != 0 || d.Degraded != 0 {
		t.Errorf("healthy run reported %d unverified, %d degraded", d.Unverified, d.Degraded)
	}
	if d.Verified != par.AnalyzedVictims {
		t.Errorf("verified %d != analyzed %d", d.Verified, par.AnalyzedVictims)
	}
}

// TestFaultInjectionDegradedVsStrict injects a panic on the fast path of one
// victim. Degraded mode must recover it via the fallback ladder and still
// report every victim; strict mode must fail with the panic error.
func TestFaultInjectionDegradedVsStrict(t *testing.T) {
	// Screening off: the target victim must reach the ladder rung the hook
	// fires on, whichever cluster the midpoint selection lands on.
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, DisableScreening: true}
	clean, err := engineVerifier(t, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	target := clean.Diagnostics.Clusters[len(clean.Diagnostics.Clusters)/2].Victim

	hook := func(victim string, stage FallbackStage) error {
		if victim == target && stage == StageReduced {
			panic("injected numerical blow-up")
		}
		return nil
	}

	v := engineVerifier(t, Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 4, DisableScreening: true})
	v.faultHook = hook
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatalf("degraded run aborted: %v", err)
	}
	if rep.AnalyzedVictims != clean.AnalyzedVictims {
		t.Errorf("degraded run covered %d victims, want %d", rep.AnalyzedVictims, clean.AnalyzedVictims)
	}
	// The recovered victim re-ran under Gmin regularization at half the
	// reduction order, so its peak carries extra truncation error; everyone
	// else must be exact.
	compareViolations(t, rep.Violations, clean.Violations, target, 0.12)
	var hit *ClusterOutcome
	for i := range rep.Diagnostics.Clusters {
		if rep.Diagnostics.Clusters[i].Victim == target {
			hit = &rep.Diagnostics.Clusters[i]
		}
	}
	if hit == nil {
		t.Fatalf("victim %s missing from diagnostics", target)
	}
	if hit.Stage != StageRegularized || hit.Attempts != 2 {
		t.Errorf("victim %s: stage %s after %d attempts, want recovery at %s",
			target, hit.Stage, hit.Attempts, StageRegularized)
	}
	if rep.Diagnostics.Degraded != 1 {
		t.Errorf("degraded count = %d, want 1", rep.Diagnostics.Degraded)
	}

	sv := engineVerifier(t, Config{Model: FixedResistance, CapRatioThreshold: 0.03, Strict: true, Workers: 4, DisableScreening: true})
	sv.faultHook = hook
	if _, err := sv.RunContext(context.Background()); !errors.Is(err, ErrPanic) {
		t.Errorf("strict run error = %v, want ErrPanic", err)
	}
	sv2 := engineVerifier(t, Config{Model: FixedResistance, CapRatioThreshold: 0.03, DisableScreening: true})
	sv2.faultHook = hook
	if _, err := sv2.Run(); !errors.Is(err, ErrPanic) {
		t.Errorf("Run error = %v, want ErrPanic", err)
	}
}

// TestFaultInjectionUnverified fails every rung for one victim and checks the
// structured ClusterError plus the report rendering.
func TestFaultInjectionUnverified(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 4, DisableScreening: true}
	clean, err := engineVerifier(t, Config{Model: FixedResistance, CapRatioThreshold: 0.03, DisableScreening: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	target := clean.Diagnostics.Clusters[0].Victim

	v := engineVerifier(t, cfg)
	v.faultHook = func(victim string, stage FallbackStage) error {
		if victim != target {
			return nil
		}
		switch stage {
		case StageReduced:
			return fmt.Errorf("boom: %w", ErrReduction)
		case StageRegularized:
			panic("still broken")
		default:
			return fmt.Errorf("boom: %w", ErrNewtonDiverged)
		}
	}
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatalf("degraded run aborted: %v", err)
	}
	d := rep.Diagnostics
	if d.Unverified != 1 {
		t.Fatalf("unverified = %d, want 1", d.Unverified)
	}
	worst := d.WorstUnverified(10)
	if len(worst) != 1 || worst[0].Victim != target {
		t.Fatalf("worst unverified = %+v", worst)
	}
	cerr := worst[0].Err
	if cerr.Victim != target || len(cerr.Attempts) != 3 {
		t.Fatalf("cluster error %+v", cerr)
	}
	for _, want := range []error{ErrReduction, ErrPanic, ErrNewtonDiverged} {
		if !errors.Is(cerr, want) {
			t.Errorf("ClusterError does not wrap %v", want)
		}
	}
	if cerr.Attempts[0].Stage != StageReduced || cerr.Attempts[1].Stage != StageRegularized ||
		cerr.Attempts[2].Stage != StageDirectMNA {
		t.Errorf("attempt stages: %+v", cerr.Attempts)
	}
	// The other victims must still be covered.
	if rep.AnalyzedVictims != clean.AnalyzedVictims {
		t.Errorf("covered %d victims, want %d", rep.AnalyzedVictims, clean.AnalyzedVictims)
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"worst unverified victims", target, "unverified: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}

// TestDirectMNAFallbackRung forces the first two rungs to fail so the direct
// (unreduced) integrator must produce the result, and checks it agrees with
// the healthy reduced flow.
func TestDirectMNAFallbackRung(t *testing.T) {
	base := Config{Model: FixedResistance, CapRatioThreshold: 0.03, DisableScreening: true}
	clean, err := engineVerifier(t, base).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 2
	v := engineVerifier(t, cfg)
	target := clean.Diagnostics.Clusters[0].Victim
	v.faultHook = func(victim string, stage FallbackStage) error {
		if victim == target && stage != StageDirectMNA {
			return fmt.Errorf("forced: %w", ErrReduction)
		}
		return nil
	}
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Diagnostics
	if d.Unverified != 0 || d.Degraded != 1 {
		t.Fatalf("unverified %d degraded %d, want 0/1", d.Unverified, d.Degraded)
	}
	for _, c := range d.Clusters {
		if c.Victim == target && c.Stage != StageDirectMNA {
			t.Errorf("victim %s verified via %s, want direct-mna", target, c.Stage)
		}
	}
	// Direct integration of the unreduced system agrees with the reduced
	// model to model-truncation accuracy on the target; exact elsewhere.
	compareViolations(t, rep.Violations, clean.Violations, target, 0.05)
}

// TestClusterTimeout checks the per-cluster deadline: an expired deadline
// lands as ErrTimeout, short-circuits the ladder and never sinks the run.
func TestClusterTimeout(t *testing.T) {
	// Part 1: an unmeetable deadline (every cluster blows it) — the run
	// still completes, and every victim is unverified with ErrTimeout after
	// exactly one attempt. This exercises the real context.WithTimeout
	// plumbing without depending on machine speed.
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03,
		Workers: 4, ClusterTimeout: time.Nanosecond}
	v := engineVerifier(t, cfg)
	v.faultHook = func(victim string, stage FallbackStage) error {
		time.Sleep(time.Millisecond) // guarantee the 1 ns deadline has passed
		return nil
	}
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Diagnostics
	if d.Unverified == 0 || d.Unverified != len(d.Clusters) {
		t.Fatalf("unverified = %d of %d, want all", d.Unverified, len(d.Clusters))
	}
	for _, c := range d.Clusters {
		if !errors.Is(c.Err, ErrTimeout) {
			t.Fatalf("%s: %v does not wrap ErrTimeout", c.Victim, c.Err)
		}
		// The deadline must short-circuit the ladder, not retry every rung.
		if len(c.Err.Attempts) != 1 {
			t.Fatalf("%s: %d attempts after timeout, want 1", c.Victim, len(c.Err.Attempts))
		}
	}

	// Part 2: only one victim's analysis hits its deadline — the rest of
	// the chip is still verified exactly.
	clean, err := engineVerifier(t, Config{Model: FixedResistance, CapRatioThreshold: 0.03, DisableScreening: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	target := clean.Diagnostics.Clusters[0].Victim
	v2 := engineVerifier(t, Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 4, DisableScreening: true})
	v2.faultHook = func(victim string, stage FallbackStage) error {
		if victim == target {
			return context.DeadlineExceeded
		}
		return nil
	}
	rep2, err := v2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Diagnostics.Unverified != 1 {
		t.Fatalf("unverified = %d, want 1", rep2.Diagnostics.Unverified)
	}
	cerr := rep2.Diagnostics.WorstUnverified(1)[0].Err
	if !errors.Is(cerr, ErrTimeout) || len(cerr.Attempts) != 1 {
		t.Errorf("cluster error %v (attempts %d), want ErrTimeout after 1 attempt", cerr, len(cerr.Attempts))
	}
	if rep2.AnalyzedVictims != clean.AnalyzedVictims {
		t.Errorf("covered %d victims, want %d", rep2.AnalyzedVictims, clean.AnalyzedVictims)
	}
}

// TestCancellationPromptAndLeakFree cancels mid-run and checks RunContext
// returns context.Canceled promptly without leaking worker goroutines.
func TestCancellationPromptAndLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	v := engineVerifier(t, Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	var analyzed atomic.Int32
	v.faultHook = func(victim string, stage FallbackStage) error {
		if analyzed.Add(1) == 3 {
			cancel()
		}
		return nil
	}
	start := time.Now()
	rep, err := v.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Error("cancelled run returned a report")
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("cancellation took %v", el)
	}
	// Workers must all have exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 64<<10)
		t.Errorf("goroutines leaked: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestWorkersRace hammers the pool from several goroutines; meaningful under
// go test -race.
func TestWorkersRace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	v := engineVerifier(t, Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 4})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := v.RunContext(context.Background()); err != nil {
				t.Errorf("concurrent run: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestROMCacheParallelByteIdentical is the memoization acceptance check: with
// the ROM cache on (the default), a Workers=8 parallel run must render a
// byte-identical WriteText report to the serial strict Run — under cache
// contention, hit/miss interleaving and LRU eviction alike — and so must a
// cache-disabled run, proving the cache never changes a reported number.
func TestROMCacheParallelByteIdentical(t *testing.T) {
	render := func(cfg Config, parallel bool) string {
		t.Helper()
		v := engineVerifier(t, cfg)
		var (
			rep *Report
			err error
		)
		if parallel {
			rep, err = v.RunContext(context.Background())
		} else {
			rep, err = v.Run()
		}
		if err != nil {
			t.Fatal(err)
		}
		// Wall times differ run to run; reports are compared without the
		// diagnostics block, which TestParallelMatchesSerial covers separately.
		rep.Diagnostics = nil
		var sb strings.Builder
		if err := rep.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	base := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	serial := render(base, false)

	par := base
	par.Workers = 8
	if got := render(par, true); got != serial {
		t.Errorf("cached parallel report differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, got)
	}

	off := par
	off.DisableROMCache = true
	if got := render(off, true); got != serial {
		t.Errorf("cache-disabled report differs from cached serial:\n--- serial ---\n%s--- disabled ---\n%s", serial, got)
	}

	// The comparison above is only meaningful if the cache actually engaged.
	// Same-cluster reuse (the second glitch polarity) is absorbed by the
	// engine's prepared-transient memo before it ever reaches the ROM cache,
	// so probe the cache's hit path with that layer disabled: the polarity
	// pairs then hit the cache exactly as the historical per-polarity loop.
	probe := par
	probe.DisablePreparedTransients = true
	v := engineVerifier(t, probe)
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Diagnostics
	if d.ROMCacheMisses == 0 {
		t.Error("cached run recorded no misses; cache appears disconnected")
	}
	if d.ROMCacheHits == 0 {
		t.Error("cached run recorded no hits; fingerprinting appears ineffective")
	}

	vOff := engineVerifier(t, off)
	repOff, err := vOff.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dOff := repOff.Diagnostics; dOff.ROMCacheHits != 0 || dOff.ROMCacheMisses != 0 {
		t.Errorf("disabled cache reported activity: %d hits, %d misses", dOff.ROMCacheHits, dOff.ROMCacheMisses)
	}
}

// TestZeroConfigDefaultsToNonlinear pins the setDefaults fix: a zero-valued
// Config must resolve to the nonlinear cell model, while an explicit
// FixedResistance request must survive even with FixedOhms defaulted.
func TestZeroConfigDefaultsToNonlinear(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.Model != NonlinearCellModel {
		t.Errorf("zero config model = %v, want NonlinearCellModel", c.Model)
	}
	if c.FixedOhms != 1000 {
		t.Errorf("FixedOhms default = %v", c.FixedOhms)
	}
	c2 := Config{Model: FixedResistance}
	c2.setDefaults()
	if c2.Model != FixedResistance {
		t.Errorf("explicit FixedResistance was overridden to %v", c2.Model)
	}
}
