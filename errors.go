package xtverify

import (
	"errors"
	"fmt"
	"strings"
)

// Typed per-cluster failure reasons. The fault-tolerant engine classifies
// every cluster failure into one of these sentinels so callers can match
// with errors.Is regardless of which internal layer broke down.
var (
	// ErrReduction marks a SyMPVL breakdown (G not positive definite, a
	// zero start block, an unstable reduced model) — the reduction rung of
	// the ladder could not produce a usable model.
	ErrReduction = errors.New("xtverify: model order reduction failed")
	// ErrNewtonDiverged marks a transient whose Newton iteration exhausted
	// its budget without converging.
	ErrNewtonDiverged = errors.New("xtverify: Newton iteration diverged")
	// ErrTimeout marks a cluster that exceeded its per-cluster deadline
	// (Config.ClusterTimeout).
	ErrTimeout = errors.New("xtverify: cluster analysis deadline exceeded")
	// ErrCanceled marks a cluster abandoned because the parent context was
	// canceled (a client disconnect, the engine's fail-fast cancellation, a
	// daemon drain). It is deliberately distinct from ErrTimeout: a canceled
	// cluster was never given its time budget, so retry policies must not
	// treat it as a transient overload failure.
	ErrCanceled = errors.New("xtverify: cluster analysis canceled")
	// ErrPanic marks a cluster whose analysis panicked; the panic was
	// recovered and converted into a recorded failure.
	ErrPanic = errors.New("xtverify: cluster analysis panicked")
	// ErrStaleReport marks an operation against a report that an incremental
	// reverify has superseded for the requested victim: the cluster was
	// recomputed (or dropped) by a later delta, so the base report's
	// waveforms no longer describe the design. Re-run the query against the
	// verifier that produced the spliced report.
	ErrStaleReport = errors.New("xtverify: report superseded by a reverify for this victim")
	// ErrConfigMismatch marks a reverify attempted against a base run whose
	// canonical configuration differs: splicing across configs would mix
	// results computed under different thresholds, models or policies.
	ErrConfigMismatch = errors.New("xtverify: reverify config differs from base run")
	// ErrBaseUnusable marks a base report that cannot seed a reverify — no
	// diagnostics, or cluster outcomes that no longer line up with the
	// design's cluster set.
	ErrBaseUnusable = errors.New("xtverify: base report unusable for reverify")
	// ErrStreamIngest marks an operation that needs the whole design
	// materialized in memory, requested on a streaming verifier
	// (Config.StreamIngest) — or a streaming-only knob used where streaming
	// is impossible. Re-ingest without StreamIngest to use these APIs.
	ErrStreamIngest = errors.New("xtverify: operation incompatible with streaming ingest")
)

// FallbackStage identifies a rung of the engine's degradation ladder.
type FallbackStage int

// The ladder, in attempt order.
const (
	// StageReduced is the standard flow: SyMPVL at the configured order.
	StageReduced FallbackStage = iota
	// StageRegularized retries with a raised Gmin grounding conductance
	// and a halved reduction order, which cures most numerical breakdowns.
	StageRegularized
	// StageDirectMNA integrates the unreduced MNA system directly — slow
	// but immune to reduction failures.
	StageDirectMNA
	// StageUnverified means every rung failed; the victim is reported as
	// unverified with the full attempt history.
	StageUnverified
	// StageScreened means the rung-0 analytic screen proved the cluster's
	// worst-case glitch below the noise margin, so no reduction or transient
	// ever ran. Logically this rung sits ahead of StageReduced; it is
	// declared after StageUnverified only to keep the historical enum values
	// stable.
	StageScreened
)

// String names the stage for reports.
func (s FallbackStage) String() string {
	switch s {
	case StageReduced:
		return "sympvl"
	case StageRegularized:
		return "sympvl+gmin"
	case StageDirectMNA:
		return "direct-mna"
	case StageUnverified:
		return "unverified"
	case StageScreened:
		return "screened"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Attempt records one failed rung of the ladder for one cluster.
type Attempt struct {
	// Stage is the rung that was tried.
	Stage FallbackStage
	// Err is the classified failure (wraps one of the sentinel errors
	// above where the cause is recognized).
	Err error
}

// ClusterError is the structured failure attached to an unverified victim:
// which cluster failed, how far down the ladder the engine got, and what
// every attempt returned.
type ClusterError struct {
	// Victim is the cluster's victim net name.
	Victim string
	// Stage is the last rung attempted (the one that sealed the failure).
	Stage FallbackStage
	// Attempts holds every failed rung in order.
	Attempts []Attempt
}

// Error summarizes the failure with the final cause.
func (e *ClusterError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "xtverify: cluster %s unverified after %d attempt(s)", e.Victim, len(e.Attempts))
	if n := len(e.Attempts); n > 0 {
		last := e.Attempts[n-1]
		fmt.Fprintf(&b, " (last stage %s: %v)", last.Stage, last.Err)
	}
	return b.String()
}

// Unwrap exposes every attempt's error so errors.Is/As see the whole
// ladder (e.g. errors.Is(err, ErrReduction) matches if any rung failed in
// reduction).
func (e *ClusterError) Unwrap() []error {
	out := make([]error, 0, len(e.Attempts))
	for _, a := range e.Attempts {
		if a.Err != nil {
			out = append(out, a.Err)
		}
	}
	return out
}
