package xtverify

import (
	"context"
	"fmt"
	"io"

	"xtverify/internal/glitch"
	"xtverify/internal/prune"
	"xtverify/internal/sta"
)

// TimingImpact is the coupling-induced delay change of one victim net.
type TimingImpact struct {
	Victim string
	// BaseDelayPS and CoupledDelayPS are the decoupled and worst-case
	// (opposite-switching aggressors) interconnect delays in picoseconds.
	BaseDelayPS, CoupledDelayPS float64
	// DeteriorationPct is the relative delay increase.
	DeteriorationPct float64
	// Aggressors counts the coupled neighbours considered.
	Aggressors int
}

// RunTimingImpact performs the chip-level timing recalculation: every
// coupled victim's interconnect delay is re-evaluated with aggressors
// switching opposite (worst case) and compared against the decoupled
// baseline. Results are sorted by absolute delay change, worst first.
// rising selects the analyzed victim edge.
func (v *Verifier) RunTimingImpact(rising bool) ([]TimingImpact, error) {
	return v.RunTimingImpactContext(context.Background(), rising)
}

// RunTimingImpactContext is RunTimingImpact with cancellation: ctx aborts the
// per-victim delay recalculation between clusters and the partial work is
// discarded.
func (v *Verifier) RunTimingImpactContext(ctx context.Context, rising bool) ([]TimingImpact, error) {
	if err := v.requireMaterialized("RunTimingImpact"); err != nil {
		return nil, err
	}
	pOpt := prune.Options{
		CapRatioThreshold: v.cfg.CapRatioThreshold,
		MinCouplingF:      0.5e-15,
		UseTimingWindows:  v.cfg.UseTimingWindows,
		MaxAggressors:     v.cfg.MaxAggressors,
	}
	clusters := prune.Clusters(v.par, pOpt)
	eng := glitch.NewEngine(v.par, glitch.Options{
		Model:               v.cfg.Model.kind(),
		FixedOhms:           v.cfg.FixedOhms,
		Order:               v.cfg.ReducedOrder,
		UseTimingWindows:    v.cfg.UseTimingWindows,
		UseLogicCorrelation: v.cfg.UseLogicCorrelation,
		DisablePrepared:     v.cfg.DisablePreparedTransients,
		TEnd:                8e-9,
	})
	impacts, err := eng.TimingImpactReportContext(ctx, clusters, rising)
	if err != nil {
		return nil, err
	}
	out := make([]TimingImpact, 0, len(impacts))
	for _, ti := range impacts {
		out = append(out, TimingImpact{
			Victim:           ti.Victim,
			BaseDelayPS:      ti.BaseDelay * 1e12,
			CoupledDelayPS:   ti.CoupledDelay * 1e12,
			DeteriorationPct: ti.DeteriorationPct,
			Aggressors:       ti.Aggressors,
		})
	}
	return out, nil
}

// RefineTimingWindows performs one crosstalk-aware STA re-alignment pass:
// every coupled victim's worst-edge coupling delay change — measured by the
// prepared-transient delay engine, both victim edges against the decoupled
// baseline — is folded back into its annotated switching window (a coupled
// slowdown extends Late, a speedup pulls Early in). It returns the number of
// windows widened. Subsequent runs with Config.UseTimingWindows observe the
// refined, conservatively wider windows. The design must have been annotated
// (sta.Annotate / the loader's STA pass) first.
func (v *Verifier) RefineTimingWindows(ctx context.Context) (int, error) {
	if err := v.requireMaterialized("RefineTimingWindows"); err != nil {
		return 0, err
	}
	pOpt := prune.Options{
		CapRatioThreshold: v.cfg.CapRatioThreshold,
		MinCouplingF:      0.5e-15,
		UseTimingWindows:  v.cfg.UseTimingWindows,
		MaxAggressors:     v.cfg.MaxAggressors,
	}
	clusters := prune.Clusters(v.par, pOpt)
	eng := glitch.NewEngine(v.par, glitch.Options{
		Model:               v.cfg.Model.kind(),
		FixedOhms:           v.cfg.FixedOhms,
		Order:               v.cfg.ReducedOrder,
		UseTimingWindows:    v.cfg.UseTimingWindows,
		UseLogicCorrelation: v.cfg.UseLogicCorrelation,
		DisablePrepared:     v.cfg.DisablePreparedTransients,
		TEnd:                8e-9,
	})
	impacts, err := eng.TimingImpactWorstEdge(ctx, clusters)
	if err != nil {
		return 0, err
	}
	adj := make([]sta.WindowAdjustment, 0, len(impacts))
	for _, ti := range impacts {
		net, ok := v.des.NetByName(ti.Victim)
		if !ok {
			return 0, fmt.Errorf("xtverify: timing impact names unknown net %q", ti.Victim)
		}
		adj = append(adj, sta.WindowAdjustment{Net: net.Index, DeltaS: ti.DeltaS})
	}
	return sta.ApplyCouplingDeltas(v.des, adj)
}

// WriteTimingText renders a timing-impact report (top n rows; n ≤ 0 prints
// everything).
func WriteTimingText(w io.Writer, impacts []TimingImpact, n int) error {
	if n <= 0 || n > len(impacts) {
		n = len(impacts)
	}
	if _, err := fmt.Fprintf(w, "%-24s %12s %14s %8s %6s\n",
		"victim", "base (ps)", "coupled (ps)", "worse", "aggr"); err != nil {
		return err
	}
	for _, ti := range impacts[:n] {
		fmt.Fprintf(w, "%-24s %12.1f %14.1f %+7.0f%% %6d\n",
			ti.Victim, ti.BaseDelayPS, ti.CoupledDelayPS, ti.DeteriorationPct, ti.Aggressors)
	}
	return nil
}
