package xtverify

import (
	"context"
	"fmt"

	"xtverify/internal/glitch"
	"xtverify/internal/noiseprop"
	"xtverify/internal/prune"
)

// PropagationStage is one hop of a glitch propagation chain.
type PropagationStage struct {
	// Net is the disturbed net; Cell the gate that produced the
	// disturbance ("" for the injection stage).
	Net, Cell string
	// PeakV is the signed disturbance peak relative to the net's quiet
	// level.
	PeakV float64
	// LatchInput marks nets feeding sequential elements.
	LatchInput bool
}

// PropagationTrace is the worst chain a victim's crosstalk glitch takes
// through downstream logic.
type PropagationTrace struct {
	// Stages lists the chain, injection first.
	Stages []PropagationStage
	// Depth is the number of gate stages traversed.
	Depth int
	// ReachesLatch reports whether the pulse survives to a latch input —
	// the state-upset scenario of the paper's introduction.
	ReachesLatch bool
}

// TraceGlitch analyzes the named victim's worst crosstalk glitch and then
// follows it through the design's fanout logic (the noise-propagation
// analysis of the paper's reference [15]): each downstream gate is driven
// with the disturbance waveform through its characterized I–V surface and
// the pulse is chased until it dies or reaches a latch.
func (v *Verifier) TraceGlitch(victim string) (*PropagationTrace, error) {
	return v.TraceGlitchContext(context.Background(), victim)
}

// TraceGlitchContext is TraceGlitch with cancellation: ctx aborts the glitch
// analysis of either polarity before the propagation walk starts.
func (v *Verifier) TraceGlitchContext(ctx context.Context, victim string) (*PropagationTrace, error) {
	if err := v.requireMaterialized("TraceGlitch"); err != nil {
		return nil, err
	}
	net, ok := v.des.NetByName(victim)
	if !ok {
		return nil, fmt.Errorf("xtverify: unknown net %q", victim)
	}
	pOpt := prune.Options{
		CapRatioThreshold: v.cfg.CapRatioThreshold,
		MinCouplingF:      0.5e-15,
		UseTimingWindows:  v.cfg.UseTimingWindows,
		MaxAggressors:     v.cfg.MaxAggressors,
	}
	cl := prune.PruneVictim(v.par, net.Index, pOpt)
	if len(cl.Aggressors) == 0 {
		return nil, fmt.Errorf("xtverify: net %q has no retained aggressors", victim)
	}
	eng := glitch.NewEngine(v.par, glitch.Options{
		Model:               v.cfg.Model.kind(),
		FixedOhms:           v.cfg.FixedOhms,
		Order:               v.cfg.ReducedOrder,
		UseTimingWindows:    v.cfg.UseTimingWindows,
		UseLogicCorrelation: v.cfg.UseLogicCorrelation,
	})
	// Worse polarity wins.
	rise, err := eng.AnalyzeGlitchContext(ctx, cl, true)
	if err != nil {
		return nil, err
	}
	fall, err := eng.AnalyzeGlitchContext(ctx, cl, false)
	if err != nil {
		return nil, err
	}
	res, quietHigh := rise, false
	if -fall.PeakV > rise.PeakV {
		res, quietHigh = fall, true
	}
	prop := noiseprop.New(v.par, noiseprop.Options{})
	out, err := prop.Propagate(net.Index, res.ReceiverWave, quietHigh)
	if err != nil {
		return nil, err
	}
	trace := &PropagationTrace{Depth: out.Depth, ReachesLatch: out.ReachedLatch}
	for _, st := range out.Chain {
		trace.Stages = append(trace.Stages, PropagationStage{
			Net: st.Name, Cell: st.Cell, PeakV: st.PeakV, LatchInput: st.Latch,
		})
	}
	return trace, nil
}
