// stream_ingest.go is the bounded-memory streaming front of the verifier
// (Config.StreamIngest): nets flow from a StreamSource through the
// incremental extraction kernel (internal/extract Streamer) into the
// streaming clusterer (internal/prune StreamClusterer), and every coupled
// cluster is handed to the worker pool the moment its component closes —
// while ingest is still running. Peak memory is O(largest component +
// frontier) instead of O(chip).
//
// The report is byte-identical to a materialized run's. Three facts carry
// the proof, each pinned by its own layer:
//
//   - the extraction kernel is shared (Extract *is* the Streamer with an
//     unbounded frontier), and per-coupling float accumulation order is a
//     pure function of net arrival order, identical in both modes;
//   - a closed component contains every coupling that can influence its
//     victims, renumbered by a monotone map, so pruning and circuit
//     assembly visit bit-identical values in identical order (see
//     internal/prune stream.go);
//   - result assembly sorts eagerly-emitted clusters back into global
//     victim order — the exact order the materialized engine iterates —
//     before any report field or merged counter is produced.
package xtverify

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"xtverify/internal/deflite"
	"xtverify/internal/design"
	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/obs"
	"xtverify/internal/prune"
)

// StreamSink receives a streamed design, net by net. AddNet must be called
// in (approximately) ascending-y order — see Config.StreamFrontierSlackUM —
// and may return an error to abort the stream (cancellation, a frontier
// violation); sources must propagate it unwrapped.
type StreamSink interface {
	// StartDesign names the design; it must be called before any net.
	StartDesign(name string) error
	// AddNet hands over one net, complete with pins and routed segments.
	// The sink assigns the net's global Index; the net must not be reused
	// or mutated by the source afterwards.
	AddNet(n *design.Net) error
	// MarkComplementary records nets a and b (global indices of nets
	// already added) as a complementary Q/QN pair.
	MarkComplementary(a, b int)
}

// StreamSource produces a design as a stream of nets. Stream is called once
// per verification run and must deliver the same design each time; it
// returns the first sink error unwrapped, or its own (typed) parse error.
type StreamSource interface {
	Stream(ctx context.Context, sink StreamSink) error
}

// requireMaterialized guards APIs that read the whole in-memory design or
// parasitics, which a streaming verifier never builds.
func (v *Verifier) requireMaterialized(op string) error {
	if v.src != nil {
		return fmt.Errorf("%w: %s needs the materialized design", ErrStreamIngest, op)
	}
	return nil
}

// NewStreamVerifier prepares a verifier that ingests from src on every run
// (Config.StreamIngest is implied). Most callers want NewVerifierFromDSP or
// NewVerifierFromDEF with Config.StreamIngest set; this entry exists for
// custom sources (generators, format adapters).
func NewStreamVerifier(src StreamSource, cfg Config) (*Verifier, error) {
	cfg.setDefaults()
	return newStreamVerifier(src, cfg)
}

func newStreamVerifier(src StreamSource, cfg Config) (*Verifier, error) {
	if cfg.UseTimingWindows {
		return nil, fmt.Errorf("%w: timing windows need whole-design STA annotation", ErrStreamIngest)
	}
	return &Verifier{cfg: cfg, src: src}, nil
}

// dspStreamSource streams the synthetic DSP generator without materializing
// the design.
type dspStreamSource struct{ cfg dsp.Config }

func (s dspStreamSource) Stream(ctx context.Context, sink StreamSink) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := sink.StartDesign(dsp.DesignName); err != nil {
		return err
	}
	// Cancellation propagates through the sink: every AddNet checks the run
	// context and its error aborts the generator.
	return dsp.Stream(s.cfg, sink)
}

// defStreamSource streams a DEF-subset reader. The reader is consumed by
// Stream, so a verifier built on it supports one run per rewind.
type defStreamSource struct{ r io.Reader }

func (s defStreamSource) Stream(ctx context.Context, sink StreamSink) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return deflite.StreamRead(s.r, sink)
}

// streamUnit is one eagerly-emitted cluster travelling from the ingest
// goroutine to a worker: the component-scoped analysis views plus the slot
// the worker's result lands in. The producer appends every unit to its
// order list before sending, the consumer writes res after receiving, and
// assembly reads after the pool drains — each handoff carries the needed
// happens-before edge.
type streamUnit struct {
	globalVictim int
	// size is the pruned cluster size, captured at emission because unit is
	// released once the worker is done with it — holding every component's
	// parasitics until report assembly would put peak memory right back at
	// O(chip).
	size int
	unit clusterUnit
	res  *clusterResult
}

// streamIngestor is the StreamSink the engine mounts in front of the worker
// pool: extract → cluster → emit, plus the raw-population statistics the
// materialized path gets from prune.ComputeStats.
type streamIngestor struct {
	runCtx context.Context
	str    *extract.Streamer
	sc     *prune.StreamClusterer
	unitCh chan<- *streamUnit

	name     string
	netCount int
	units    []*streamUnit
	emitted  int64

	// Raw (pre-pruning) component statistics, accumulated exactly like
	// prune.ComputeStats: components of ≥ 2 nets only, integer-valued
	// float sums (exact, so accumulation order is irrelevant).
	rawClusters int
	rawMeanSum  float64
	rawMax      int
}

func (s *streamIngestor) StartDesign(name string) error {
	s.name = name
	s.sc.SetDesignName(name)
	return nil
}

func (s *streamIngestor) AddNet(n *design.Net) error {
	if err := s.runCtx.Err(); err != nil {
		return err
	}
	n.Index = s.netCount
	s.netCount++
	rc, final, retired, err := s.str.AddNet(n)
	if err != nil {
		return err
	}
	s.sc.AddNet(n, rc, final)
	closed, err := s.sc.Retire(retired)
	if err != nil {
		return err
	}
	return s.emit(closed)
}

func (s *streamIngestor) MarkComplementary(a, b int) {
	s.sc.MarkComplementary(a, b)
}

// emit records each closed component's raw statistics and hands its pruned
// clusters to the pool, blocking when every worker is busy — which is what
// bounds in-flight memory under a fast producer.
func (s *streamIngestor) emit(closed []*prune.ClosedComponent) error {
	for _, c := range closed {
		if n := len(c.Members); n >= 2 {
			s.rawClusters++
			s.rawMeanSum += float64(n)
			if n > s.rawMax {
				s.rawMax = n
			}
		}
		for _, scl := range c.Clusters {
			su := &streamUnit{
				globalVictim: scl.GlobalVictim,
				size:         scl.Cluster.Size(),
				unit:         clusterUnit{cl: scl.Cluster, par: scl.Par, des: scl.Par.Design},
			}
			s.units = append(s.units, su)
			select {
			case <-s.runCtx.Done():
				return s.runCtx.Err()
			case s.unitCh <- su:
				s.emitted++
			}
		}
	}
	return nil
}

// finish drains the frontier after the source is exhausted: everything
// still live retires, every remaining component closes and is emitted.
func (s *streamIngestor) finish() error {
	closed, err := s.sc.Retire(s.str.Finish())
	if err == nil {
		err = s.emit(closed)
	}
	if err != nil {
		return err
	}
	rem, err := s.sc.Finish()
	if err == nil {
		err = s.emit(rem)
	}
	return err
}

// runStreamEngine is runEngine's streaming twin: ingest runs on the calling
// goroutine and overlaps the worker pool, then results are sorted back into
// victim order and assembled through the exact same accounting as the
// materialized engine — byte-identical reports, serial or parallel, cold or
// warm cache.
func (v *Verifier) runStreamEngine(ctx context.Context, p runParams) (*Report, error) {
	if p.reuse != nil {
		return nil, fmt.Errorf("%w: incremental reverify needs a materialized base design", ErrStreamIngest)
	}
	if v.cfg.UseTimingWindows {
		return nil, fmt.Errorf("%w: timing windows need whole-design STA annotation", ErrStreamIngest)
	}
	col := v.cfg.Collector
	baseOpts := v.baseGlitchOptions()
	cs := v.setupEngineCaches(&baseOpts)
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now() //xtlint:wallclock feeds Diagnostics.WallTime only, a run-dependent diagnostic
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	unitCh := make(chan *streamUnit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for su := range unitCh {
				if runCtx.Err() != nil {
					continue // run aborted: leave the slot unattempted
				}
				col.TaskStarted()
				su.res = v.analyzeCluster(runCtx, baseOpts, su.unit, p)
				// Release the component-scoped views: once every cluster of a
				// component is analyzed, its mini design and parasitics are
				// garbage. Report assembly only reads res and size.
				su.unit = clusterUnit{}
				col.TaskDone()
				if p.strict && su.res.err != nil {
					cancel() // fail fast: stop ingest and drain
				}
			}
		}()
	}

	slack := v.cfg.StreamFrontierSlackUM
	if slack <= 0 {
		slack = extract.DefaultFrontierSlackUM
	}
	ing := &streamIngestor{
		runCtx: runCtx,
		str:    extract.NewStreamer(extract.Tech025(), slack),
		sc:     prune.NewStreamClusterer("", extract.Tech025(), v.pruneOptions()),
		unitCh: unitCh,
	}
	ingestSpan := col.Start(obs.PhasePrune)
	serr := v.src.Stream(runCtx, ing)
	if serr == nil {
		serr = ing.finish()
	}
	ingestSpan.End()
	close(unitCh)
	wg.Wait()

	// Caller cancellation or deadline wins over any per-cluster outcome.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Back into global victim order — the materialized engine's cluster
	// order, which every report field and counter merge below assumes.
	// Victims are unique (each net closes in exactly one component).
	units := ing.units
	sort.Slice(units, func(i, j int) bool { return units[i].globalVictim < units[j].globalVictim })
	if p.strict {
		// Report the earliest genuine failure in cluster order, exactly as
		// the serial loop did; skip casualties of our own fail-fast cancel.
		var firstAny error
		for _, su := range units {
			if su.res == nil || su.res.err == nil {
				continue
			}
			if !errors.Is(su.res.err, context.Canceled) {
				return nil, su.res.err
			}
			if firstAny == nil {
				firstAny = su.res.err
			}
		}
		if firstAny != nil {
			return nil, firstAny
		}
	}
	if serr != nil {
		// An ingest failure: a typed parse or frontier error, or the echo of
		// our own fail-fast cancellation (whose cause was returned above).
		return nil, serr
	}

	// The materialized engine clamps the worker count against the cluster
	// total before starting the pool; streaming cannot know the total up
	// front, so the same clamp is reproduced at report time.
	reportWorkers := workers
	if reportWorkers > len(units) {
		reportWorkers = len(units)
	}
	if reportWorkers < 1 {
		reportWorkers = 1
	}

	// Pruned-population statistics in victim order, mirroring
	// prune.ComputeStats (integer-valued sums, so order is moot — the float
	// bits still come out identical).
	stats := prune.Stats{
		RawClusters: ing.rawClusters,
		RawMeanSize: ing.rawMeanSum,
		RawMaxSize:  ing.rawMax,
	}
	if stats.RawClusters > 0 {
		stats.RawMeanSize /= float64(stats.RawClusters)
	}
	for _, su := range units {
		stats.PrunedClusters++
		stats.PrunedMeanSize += float64(su.size)
		if su.size > stats.PrunedMaxSize {
			stats.PrunedMaxSize = su.size
		}
	}
	if stats.PrunedClusters > 0 {
		stats.PrunedMeanSize /= float64(stats.PrunedClusters)
	}

	rep := &Report{
		DesignName: ing.name,
		NetCount:   ing.netCount,
		Prune: PruneSummary{
			RawMeanClusterNets:    stats.RawMeanSize,
			RawMaxClusterNets:     stats.RawMaxSize,
			PrunedMeanClusterNets: stats.PrunedMeanSize,
			PrunedMaxClusterNets:  stats.PrunedMaxSize,
			ClustersAnalyzed:      stats.PrunedClusters,
		},
	}
	diag := &Diagnostics{Workers: reportWorkers, Strict: p.strict}
	for _, su := range units {
		r := su.res
		if r == nil {
			continue
		}
		rep.AnalyzedVictims++
		diag.Clusters = append(diag.Clusters, r.outcome)
		// Serial, victim-order merge — identical totals across serial,
		// parallel and materialized runs.
		col.MergeTrace(r.outcome.Victim, r.outcome.Stage.String(), r.trace)
		if r.outcome.Err != nil {
			diag.Unverified++
		} else {
			diag.Verified++
			if r.outcome.Stage != StageReduced && r.outcome.Stage != StageScreened {
				diag.Degraded++
			}
		}
		if r.violation != nil {
			rep.Violations = append(rep.Violations, *r.violation)
		}
	}
	if !v.cfg.DisableScreening {
		scr := &ScreeningSummary{
			SafetyFactor: v.cfg.ScreenSafetyFactor,
			MarginV:      v.cfg.GlitchThresholdFrac * Vdd,
		}
		for _, su := range units {
			if su.res != nil && su.res.outcome.Stage == StageScreened {
				scr.Screened++
				scr.Clusters = append(scr.Clusters, ScreenedCluster{Victim: su.res.outcome.Victim, BoundV: su.res.outcome.ScreenBoundV})
			}
		}
		rep.Screening = scr
	}
	diag.WallTime = time.Since(start) //xtlint:wallclock run-dependent diagnostic, excluded from report identity
	v.recordCacheDeltas(cs, diag, col)
	col.Add(obs.CtrNetsStreamed, int64(ing.netCount))
	col.Add(obs.CtrClustersEmittedEager, ing.emitted)
	col.Add(obs.CtrFrontierPeakNets, int64(ing.str.PeakLiveNets()))
	if col != nil {
		col.SetWorkers(reportWorkers)
		col.SetWallTime(diag.WallTime)
		diag.Metrics = col.Snapshot()
	}
	rep.Diagnostics = diag
	sort.Slice(rep.Violations, func(i, j int) bool {
		if rep.Violations[i].FracVdd != rep.Violations[j].FracVdd {
			return rep.Violations[i].FracVdd > rep.Violations[j].FracVdd
		}
		return rep.Violations[i].Victim < rep.Violations[j].Victim
	})
	return rep, nil
}
