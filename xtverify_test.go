package xtverify

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func smallDSP() DSPConfig {
	return DSPConfig{Seed: 77, Channels: 1, TracksPerChannel: 50,
		ChannelLengthUM: 1000, BusFraction: 0.06, LatchFraction: 0.3, ClockSpines: 1}
}

func TestVerifierEndToEnd(t *testing.T) {
	v, err := NewVerifierFromDSP(smallDSP(), Config{Model: FixedResistance, CapRatioThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NetCount == 0 || rep.AnalyzedVictims == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Prune.PrunedMeanClusterNets < 2 {
		t.Errorf("pruned mean %.1f", rep.Prune.PrunedMeanClusterNets)
	}
	// Violations sorted by severity.
	for i := 1; i < len(rep.Violations); i++ {
		if rep.Violations[i].FracVdd > rep.Violations[i-1].FracVdd {
			t.Error("violations not sorted")
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crosstalk verification report") {
		t.Error("report text malformed")
	}
}

func TestVerifierTimingWindowsReduceViolations(t *testing.T) {
	base, err := NewVerifierFromDSP(smallDSP(), Config{Model: FixedResistance, CapRatioThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	repBase, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewVerifierFromDSP(smallDSP(), Config{Model: FixedResistance, CapRatioThreshold: 0.03, UseTimingWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	repTW, err := tw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(repTW.Violations) > len(repBase.Violations) {
		t.Errorf("timing windows added violations: %d vs %d", len(repTW.Violations), len(repBase.Violations))
	}
}

func TestWriteSPEF(t *testing.T) {
	v, err := NewVerifierFromDSP(smallDSP(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.WriteSPEF(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*D_NET") {
		t.Error("SPEF output missing nets")
	}
}

func TestAnalyzeCoupledWiresQuickstart(t *testing.T) {
	res, err := AnalyzeCoupledWires(WireAnalysis{
		Wires: 3, LengthUM: 1500, Model: NonlinearCellModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlitchV <= 0 || res.GlitchV >= Vdd {
		t.Errorf("glitch %g out of range", res.GlitchV)
	}
	if res.GlitchFracVdd < 0.05 {
		t.Errorf("glitch fraction %.3f suspiciously small for 1500µm at min pitch", res.GlitchFracVdd)
	}
	if res.RiseDelayCoupled <= res.RiseDelayDecoupled {
		t.Error("coupled delay should exceed decoupled")
	}
	if res.VictimWave == nil || res.VictimWave.Len() == 0 {
		t.Error("missing waveform")
	}
}

func TestAnalyzeCoupledWiresValidation(t *testing.T) {
	if _, err := AnalyzeCoupledWires(WireAnalysis{Wires: 1, LengthUM: 100}); err == nil {
		t.Error("single wire accepted")
	}
	if _, err := AnalyzeCoupledWires(WireAnalysis{Wires: 2, LengthUM: 0}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := AnalyzeCoupledWires(WireAnalysis{Wires: 2, LengthUM: 100, PitchUM: 50}); err == nil {
		t.Error("uncoupled pitch accepted")
	}
}

func TestCellsAPI(t *testing.T) {
	cs := Cells()
	if len(cs) != 53 {
		t.Fatalf("%d cells", len(cs))
	}
	names := ListCells()
	if len(names) != 53 {
		t.Fatalf("%d names", len(names))
	}
	rise, fall, err := DriveResistance("INV_X2")
	if err != nil {
		t.Fatal(err)
	}
	if rise <= 0 || fall <= 0 {
		t.Error("non-positive drive resistance")
	}
	if math.IsNaN(rise) || math.IsNaN(fall) {
		t.Error("NaN resistance")
	}
	if _, _, err := DriveResistance("BOGUS"); err == nil {
		t.Error("unknown cell accepted")
	}
}

// TestUnknownCellTypedErrors pins the public error contract: every entry
// point taking a cell name reports unknown names with an error matching
// ErrUnknownCell, never a panic.
func TestUnknownCellTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"drive resistance", func() error {
			_, _, err := DriveResistance("INV_X999")
			return err
		}},
		{"coupled wires driver", func() error {
			_, err := AnalyzeCoupledWires(WireAnalysis{Wires: 2, LengthUM: 100, DriverCell: "NOPE_X1"})
			return err
		}},
		{"coupled wires receiver", func() error {
			_, err := AnalyzeCoupledWires(WireAnalysis{Wires: 2, LengthUM: 100, ReceiverCell: "NOPE_X1"})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("unknown cell name accepted")
			}
			if !errors.Is(err, ErrUnknownCell) {
				t.Fatalf("error %q does not match ErrUnknownCell", err)
			}
		})
	}
}

func TestTransistorRecheck(t *testing.T) {
	// The future-work extension: flagged violations are confirmed at
	// transistor level, and for real glitches the confirmed peak is close
	// to the model prediction.
	v, err := NewVerifierFromDSP(smallDSP(), Config{
		Model:               NonlinearCellModel,
		CapRatioThreshold:   0.03,
		GlitchThresholdFrac: 0.15,
		TransistorRecheck:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Skip("no violations at this threshold")
	}
	confirmed := 0
	for _, viol := range rep.Violations {
		if viol.ConfirmedPeakV == 0 {
			t.Fatalf("%s missing transistor-level recheck", viol.Victim)
		}
		if viol.Confirmed {
			confirmed++
		}
		rel := math.Abs(math.Abs(viol.ConfirmedPeakV)-math.Abs(viol.PeakV)) / math.Abs(viol.PeakV)
		if rel > 0.35 {
			t.Errorf("%s: model %.3f vs transistor %.3f (%.0f%% apart)",
				viol.Victim, viol.PeakV, viol.ConfirmedPeakV, 100*rel)
		}
	}
	// The screen is conservative: a majority of flags should confirm.
	if confirmed*2 < len(rep.Violations) {
		t.Errorf("only %d of %d violations confirmed", confirmed, len(rep.Violations))
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "transistor-level") {
		t.Error("report missing recheck annotation")
	}
}

func TestNoiseMarginClassification(t *testing.T) {
	v, err := NewVerifierFromDSP(smallDSP(), Config{Model: FixedResistance, CapRatioThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Skip("no violations")
	}
	// Classification is consistent: a sub-0.4V glitch cannot clear any
	// healthy CMOS unity-gain corner; a >1.5V one always does.
	for _, viol := range rep.Violations {
		mag := math.Abs(viol.PeakV)
		if mag < 0.4 && viol.Propagates {
			t.Errorf("%s: %.2f V glitch flagged as propagating", viol.Victim, viol.PeakV)
		}
		if mag > 1.5 && !viol.Propagates {
			t.Errorf("%s: %.2f V glitch flagged as filtered", viol.Victim, viol.PeakV)
		}
	}
}

func TestRunEM(t *testing.T) {
	v, err := NewVerifierFromDSP(DSPConfig{Seed: 5, Channels: 1, TracksPerChannel: 10,
		ChannelLengthUM: 500, ClockSpines: 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := v.RunEM(EMOptions{ActivityHz: 300e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no EM results")
	}
	for i, r := range rs {
		if r.IRMSMA <= 0 || r.IPeakMA < r.IRMSMA {
			t.Errorf("net %s: implausible currents %+v", r.Net, r)
		}
		if i > 0 && rs[i].RMSUtilization > rs[i-1].RMSUtilization+1e-12 {
			t.Error("EM results not sorted by utilization")
		}
	}
	var buf bytes.Buffer
	if err := WriteEMText(&buf, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Irms") {
		t.Error("EM report malformed")
	}
}

func TestRunTimingImpact(t *testing.T) {
	v, err := NewVerifierFromDSP(smallDSP(), Config{Model: TimingLibrary, CapRatioThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	impacts, err := v.RunTimingImpact(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) == 0 {
		t.Fatal("no timing impacts")
	}
	worse := 0
	for i, ti := range impacts {
		if ti.BaseDelayPS <= 0 {
			t.Errorf("%s: non-positive base delay", ti.Victim)
		}
		if ti.CoupledDelayPS >= ti.BaseDelayPS {
			worse++
		}
		if i > 0 {
			prev := impacts[i-1].CoupledDelayPS - impacts[i-1].BaseDelayPS
			cur := ti.CoupledDelayPS - ti.BaseDelayPS
			if cur > prev+1e-9 {
				t.Fatal("impacts not sorted by delay change")
			}
		}
	}
	// Opposite-switching aggressors are the worst case: the overwhelming
	// majority of victims must get slower, never dramatically faster.
	if worse*10 < len(impacts)*9 {
		t.Errorf("only %d of %d victims slowed by coupling", worse, len(impacts))
	}
	var buf bytes.Buffer
	if err := WriteTimingText(&buf, impacts, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coupled") {
		t.Error("timing report malformed")
	}
}

func TestAdviseRepairAPI(t *testing.T) {
	v, err := NewVerifierFromDSP(smallDSP(), Config{Model: FixedResistance, CapRatioThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Skip("no violations")
	}
	adv, err := v.AdviseRepair(rep.Violations[0].Victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Options) != 3 {
		t.Fatalf("%d options", len(adv.Options))
	}
	// Options sorted most effective first among feasible ones.
	prev := -1.0
	for _, o := range adv.Options {
		if !o.Feasible {
			continue
		}
		mag := math.Abs(o.PeakV)
		if prev >= 0 && mag < prev-1e-12 {
			t.Error("options not sorted by effectiveness")
		}
		// Under FixedResistance the upsize fix is a no-op (driver cells do
		// not enter the model), so allow equality within noise.
		if mag > math.Abs(adv.OriginalPeakV)+1e-6 {
			t.Errorf("%s worsened the glitch: %.6f vs %.6f", o.Fix, mag, math.Abs(adv.OriginalPeakV))
		}
		prev = mag
	}
	if _, err := v.AdviseRepair("no/such/net"); err == nil {
		t.Error("unknown net accepted")
	}
}

func TestWriteVerilog(t *testing.T) {
	v, err := NewVerifierFromDSP(smallDSP(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "module") || !strings.Contains(out, "endmodule") {
		t.Error("verilog output malformed")
	}
}

func TestDEFRoundTripVerification(t *testing.T) {
	// Write the design to DEF, reload it, and verify both ways: reports
	// must agree (file round trip is lossless for the flow).
	orig, err := NewVerifierFromDSP(DSPConfig{Seed: 7, Channels: 1, TracksPerChannel: 25,
		ChannelLengthUM: 700, BusFraction: 0.05, LatchFraction: 0.2, ClockSpines: 1},
		Config{Model: FixedResistance, CapRatioThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	var def bytes.Buffer
	if err := orig.WriteDEF(&def); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewVerifierFromDEF(&def, Config{Model: FixedResistance, CapRatioThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := orig.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Violations) != len(r2.Violations) {
		t.Fatalf("violations differ after DEF round trip: %d vs %d", len(r1.Violations), len(r2.Violations))
	}
	for i := range r1.Violations {
		a, b := r1.Violations[i], r2.Violations[i]
		if a.Victim != b.Victim || math.Abs(a.PeakV-b.PeakV) > 0.01 {
			t.Errorf("violation %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestTraceGlitch(t *testing.T) {
	v, err := NewVerifierFromDSP(smallDSP(), Config{Model: FixedResistance, CapRatioThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Skip("no violations")
	}
	trace, err := v.TraceGlitch(rep.Violations[0].Victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Stages) == 0 {
		t.Fatal("empty trace")
	}
	if trace.Stages[0].Net != rep.Violations[0].Victim {
		t.Errorf("trace root %q, want %q", trace.Stages[0].Net, rep.Violations[0].Victim)
	}
	if trace.Depth != len(trace.Stages)-1 {
		t.Errorf("depth %d inconsistent with %d stages", trace.Depth, len(trace.Stages))
	}
	if _, err := v.TraceGlitch("nope"); err == nil {
		t.Error("unknown net accepted")
	}
}
