// Package xtverify is a chip-level crosstalk (signal-integrity) verification
// library for deep-submicron digital designs, reproducing the methodology of
// Ye, Chang, Feldmann, Nagaraj, Chadha and Cano, "Chip-Level Verification
// for Parasitic Coupling Effects in Deep-Submicron Digital Designs"
// (DATE 1999).
//
// The flow:
//
//  1. a routed design's parasitics are extracted into distributed RC
//     networks with coupling capacitors (a synthetic extractor and a SPEF
//     subset are included);
//  2. weak couplings are pruned by capacitance ratio — and optionally by
//     static-timing window overlap — leaving small coupled clusters;
//  3. each cluster's linear interconnect is compressed with SyMPVL
//     (symmetric matrix-Padé via block Lanczos) model order reduction;
//  4. pre-characterized driver cell models (linear timing-library
//     resistances or nonlinear I–V models) are attached as terminations and
//     the reduced system is integrated with a Newton scheme whose Jacobian
//     is a diagonal-plus-rank-k matrix;
//  5. glitch peaks and coupling-aware delays are reported per victim net.
//
// A classical SPICE-level engine is included as the golden reference, and
// the repository's benchmarks regenerate every table and figure of the
// paper's evaluation (see EXPERIMENTS.md).
package xtverify

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"xtverify/internal/analytic"
	"xtverify/internal/deflite"
	"xtverify/internal/design"
	"xtverify/internal/devices"
	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
	"xtverify/internal/spef"
	"xtverify/internal/sta"
	"xtverify/internal/verilog"
)

// Vdd is the supply voltage of the bundled 0.25 µm technology.
const Vdd = devices.Vdd025

// DriverModel selects how driving cells are modeled during analysis.
type DriverModel int

// Driver model choices (paper Section 4).
const (
	// DriverModelUnset is the zero value; setDefaults resolves it to
	// NonlinearCellModel, the paper's most accurate configuration.
	DriverModelUnset DriverModel = iota
	// FixedResistance models every driver as one fixed linear resistor.
	FixedResistance
	// TimingLibrary deduces a per-cell linear resistance from NLDM-style
	// characterization tables (Section 4.1).
	TimingLibrary
	// NonlinearCellModel uses pre-characterized nonlinear I–V driver models
	// (Section 4.2), the paper's most accurate configuration.
	NonlinearCellModel
)

// kind maps the public DriverModel onto the glitch engine's ModelKind.
// The two enums are numbered differently (DriverModel reserves 0 for the
// unset sentinel), so a direct cast would be wrong.
func (m DriverModel) kind() glitch.ModelKind {
	switch m {
	case FixedResistance:
		return glitch.ModelFixedR
	case TimingLibrary:
		return glitch.ModelTimingLibrary
	default:
		return glitch.ModelNonlinear
	}
}

// boundModel maps the public DriverModel onto the analytic package's
// driver-model enum for the rung-0 screen.
func (m DriverModel) boundModel() analytic.DriverModel {
	switch m {
	case FixedResistance:
		return analytic.DriverFixedR
	case TimingLibrary:
		return analytic.DriverTimingLibrary
	default:
		return analytic.DriverNonlinear
	}
}

// Config tunes the verification flow.
type Config struct {
	// Model selects the driver model; NonlinearCellModel by default.
	Model DriverModel
	// FixedOhms is the resistance for FixedResistance mode (default 1 kΩ).
	FixedOhms float64
	// CapRatioThreshold controls pruning (default 0.02).
	CapRatioThreshold float64
	// UseTimingWindows enables STA-based aggressor exclusion/alignment.
	UseTimingWindows bool
	// UseLogicCorrelation enables complementary-pair correlation.
	UseLogicCorrelation bool
	// GlitchThresholdFrac flags victims whose glitch exceeds this fraction
	// of Vdd (default 0.10, the paper's reporting floor).
	GlitchThresholdFrac float64
	// MaxAggressors caps cluster size (default 12, the paper's population).
	MaxAggressors int
	// ReducedOrder overrides the SyMPVL order (default 6·ports).
	ReducedOrder int
	// TransistorRecheck re-simulates every flagged violation with the
	// transistor-level SPICE reference engine and records the confirmed
	// peak. This implements the paper's stated future work ("extending it
	// to transistor-level crosstalk analysis for higher accuracy") as a
	// second-pass audit of the fast model-based screen.
	TransistorRecheck bool
	// Workers bounds RunContext's cluster-analysis parallelism; 0 means
	// GOMAXPROCS. Run is always serial.
	Workers int
	// Strict makes RunContext fail fast on the first cluster error (Run's
	// historical behavior) instead of walking the fallback ladder.
	Strict bool
	// ClusterTimeout is RunContext's per-cluster analysis deadline; 0 means
	// no deadline. A cluster that exceeds it is marked unverified with
	// ErrTimeout rather than stalling the run. With RungRetries > 0 the
	// deadline applies per attempt (each retry gets a fresh budget) instead
	// of once per cluster.
	ClusterTimeout time.Duration
	// RungRetries makes RunContext re-attempt a fallback-ladder rung up to
	// this many extra times when it fails transiently (ErrTimeout — a
	// cluster starved under load), with exponential backoff, before the
	// ladder moves on. 0 disables retries (the historical behavior, with
	// one ClusterTimeout budget spanning all rungs). Cancellation
	// (ErrCanceled) and structural numerics failures are never retried.
	RungRetries int
	// RungRetryBackoff is the base delay between rung retries, doubled per
	// retry; 0 means DefaultRungRetryBackoff. Only meaningful with
	// RungRetries > 0.
	RungRetryBackoff time.Duration
	// ROMCacheCap bounds the in-memory ROM cache (entries, LRU-evicted);
	// 0 means DefaultROMCacheCap. Ignored when DisableROMCache is set or a
	// SharedROMCache is supplied.
	ROMCacheCap int
	// SharedROMCache, when non-nil, is used instead of a fresh per-run
	// cache, so reduced models stay warm across runs — the verification
	// daemon shares one cache across every job. Diagnostics cache counts
	// are reported as this run's delta; with concurrent runs sharing one
	// cache the attribution is approximate (totals remain exact).
	SharedROMCache *ROMCache
	// ROMStore, when non-nil, attaches a disk-persistent second cache
	// level behind the in-memory ROM cache: models computed once are
	// written through (crash-safe temp-file+rename) and survive process
	// restarts, keyed by the same structural fingerprints. Corrupted or
	// wrong-version entries are discarded and recomputed, never trusted
	// (see cache_corrupt_discarded in the metrics snapshot). The store
	// never changes any reported number: persisted models round-trip
	// bit-exactly.
	ROMStore *ROMStore
	// DisableScreening turns off the rung-0 analytic screen: every cluster
	// then pays for reduction + transient exactly as before the screen
	// existed, and reports are byte-identical to that historical output.
	// With screening on (the default) reports differ only by the documented
	// screening section — screened clusters are provably below the noise
	// margin, so the violation list never changes.
	DisableScreening bool
	// ScreenSafetyFactor inflates the analytic bound before comparing it to
	// the noise margin: a cluster is screened only when
	// bound·(1+ScreenSafetyFactor) < GlitchThresholdFrac·Vdd. Zero and
	// negative values mean DefaultScreenSafetyFactor (a negative factor
	// would eat into the bound's conservatism, so it is never honored). The bound is conservative by construction;
	// the factor adds engineering margin on top and is recorded in the
	// report's screening section.
	ScreenSafetyFactor float64
	// DisableROMCache turns off the memoization of SyMPVL reduced models
	// across structurally identical clusters. The cache never changes any
	// reported number (cached models are bit-identical to fresh reductions);
	// this knob exists for A/B timing comparisons and as an escape hatch.
	DisableROMCache bool
	// DisablePreparedTransients turns off the prepared-transient layer: each
	// glitch/delay scenario then repeats the termination fold and
	// eigendecomposition through one-shot romsim.Simulate calls, and the two
	// glitch polarities run sequentially instead of as one batched multi-RHS
	// sweep. The layer never changes any reported number (prepared and
	// batched runs are bit-identical to the one-shot path); this knob exists
	// for A/B timing comparisons and the byte-identity regression tests.
	DisablePreparedTransients bool
	// StreamIngest switches the verifier to the bounded-memory streaming
	// pipeline (stream_ingest.go): nets are parsed, extracted and clustered
	// incrementally, and each coupled cluster is handed to the worker pool
	// the moment it closes — verification overlaps ingest and peak memory is
	// O(largest cluster + frontier) instead of O(chip). Reports are
	// byte-identical to a materialized run. Requires (approximately)
	// ascending-y net order in the input; incompatible with UseTimingWindows
	// and with APIs that need the whole design in memory (WriteSPEF,
	// Reverify, ...), which then fail with ErrStreamIngest.
	StreamIngest bool
	// StreamFrontierSlackUM is the tolerated out-of-orderness (µm) of
	// streamed net arrival; 0 means extract.DefaultFrontierSlackUM. Only
	// meaningful with StreamIngest.
	StreamFrontierSlackUM float64
	// Collector, when non-nil, turns on the observability layer: per-phase
	// span timing and engine counters are gathered during the run and
	// aggregated into Diagnostics.Metrics. Create one fresh collector per
	// run (NewMetricsCollector); nil disables instrumentation at near-zero
	// cost. The collector never changes any reported number, and counter
	// totals are identical between serial and parallel runs.
	Collector *MetricsCollector
}

func (c *Config) setDefaults() {
	if c.FixedOhms == 0 {
		c.FixedOhms = 1000
	}
	if c.CapRatioThreshold == 0 {
		c.CapRatioThreshold = 0.02
	}
	if c.GlitchThresholdFrac == 0 {
		c.GlitchThresholdFrac = 0.10
	}
	if c.MaxAggressors == 0 {
		c.MaxAggressors = 12
	}
	if c.ScreenSafetyFactor <= 0 {
		// Negative factors would deflate the bound below its conservative
		// construction; fold them into the default with the unset case.
		c.ScreenSafetyFactor = DefaultScreenSafetyFactor
	}
	// Default to the paper's best model. (DriverModelUnset exists precisely
	// so a zero-valued Config can be told apart from an explicit
	// FixedResistance request.)
	if c.Model == DriverModelUnset {
		c.Model = NonlinearCellModel
	}
}

// Violation is one victim net whose predicted glitch exceeds the reporting
// threshold.
type Violation struct {
	// Victim is the net name.
	Victim string
	// PeakV is the signed glitch peak (volts); positive = rising glitch.
	PeakV float64
	// FracVdd is |PeakV|/Vdd.
	FracVdd float64
	// Aggressors counts the active aggressors.
	Aggressors int
	// LatchInput marks victims feeding sequential elements (the riskiest
	// class: a glitch there can be captured as wrong state).
	LatchInput bool
	// ConfirmedPeakV is the transistor-level SPICE peak when
	// Config.TransistorRecheck is enabled (0 otherwise); Confirmed reports
	// whether the recheck also exceeded the threshold.
	ConfirmedPeakV float64
	// Confirmed is valid only with TransistorRecheck.
	Confirmed bool
	// Propagates reports whether the glitch exceeds the most sensitive
	// receiver's unity-gain corner (its DC noise margin), i.e. whether the
	// disturbance is amplified downstream rather than filtered — the
	// "false switching" condition of the paper's Section 1.
	Propagates bool
}

// PruneSummary reports clustering statistics (paper Section 3).
type PruneSummary struct {
	RawMeanClusterNets    float64
	RawMaxClusterNets     int
	PrunedMeanClusterNets float64
	PrunedMaxClusterNets  int
	ClustersAnalyzed      int
}

// ScreenedCluster records one cluster cleared by the rung-0 screen.
type ScreenedCluster struct {
	// Victim is the cluster's victim net name.
	Victim string
	// BoundV is the conservative worst-case glitch magnitude bound that
	// cleared it (both polarities covered).
	BoundV float64
}

// ScreeningSummary is the report's rung-0 screening section, present
// whenever screening ran (nil with Config.DisableScreening). Screened
// clusters are provably below the noise margin, so the section is purely
// additive: the violation list and every other report line are identical to
// a run without screening.
type ScreeningSummary struct {
	// Screened counts clusters cleared at rung 0.
	Screened int
	// SafetyFactor is the configured bound inflation.
	SafetyFactor float64
	// MarginV is the noise margin (GlitchThresholdFrac·Vdd) screened
	// against.
	MarginV float64
	// Clusters lists the screened clusters with their bounds, in victim
	// (cluster) order.
	Clusters []ScreenedCluster
}

// Report is the outcome of a full-chip verification.
type Report struct {
	DesignName string
	NetCount   int
	Violations []Violation
	Prune      PruneSummary
	// AnalyzedVictims is the number of victims that were simulated.
	AnalyzedVictims int
	// Screening is the rung-0 analytic screening section, nil when
	// screening was disabled.
	Screening *ScreeningSummary
	// Diagnostics describes how the fault-tolerant engine fared (worker
	// count, degraded and unverified clusters, wall time). Populated by
	// Run and RunContext.
	Diagnostics *Diagnostics
}

// WriteText renders a human-readable report.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "crosstalk verification report: %s (%d nets)\n", r.DesignName, r.NetCount); err != nil {
		return err
	}
	fmt.Fprintf(w, "clusters: raw mean %.1f nets (max %d) -> pruned mean %.1f (max %d), %d analyzed\n",
		r.Prune.RawMeanClusterNets, r.Prune.RawMaxClusterNets,
		r.Prune.PrunedMeanClusterNets, r.Prune.PrunedMaxClusterNets, r.Prune.ClustersAnalyzed)
	fmt.Fprintf(w, "victims simulated: %d, violations: %d\n", r.AnalyzedVictims, len(r.Violations))
	for _, v := range r.Violations {
		flag := ""
		if v.LatchInput {
			flag = " [latch input]"
		}
		if v.Propagates {
			flag += " [propagates]"
		}
		confirm := ""
		if v.ConfirmedPeakV != 0 {
			state := "confirmed"
			if !v.Confirmed {
				state = "NOT confirmed"
			}
			confirm = fmt.Sprintf(" — transistor-level %+.3f V (%s)", v.ConfirmedPeakV, state)
		}
		fmt.Fprintf(w, "  %-24s peak %+.3f V (%.0f%% Vdd) from %d aggressors%s%s\n",
			v.Victim, v.PeakV, 100*v.FracVdd, v.Aggressors, flag, confirm)
	}
	// The screening section is the one documented difference between a
	// screening-on and a -no-screen report: every line of it carries a
	// greppable prefix ("screening:" / "  screened ") so A/B comparisons can
	// filter it out and assert the rest byte-identical.
	if s := r.Screening; s != nil {
		fmt.Fprintf(w, "screening: %d/%d clusters cleared at rung 0 (bound x%.2f < margin %.3f V)\n",
			s.Screened, r.Prune.ClustersAnalyzed, 1+s.SafetyFactor, s.MarginV)
		for _, c := range s.Clusters {
			fmt.Fprintf(w, "  screened %-24s bound %.4f V\n", c.Victim, c.BoundV)
		}
	}
	if d := r.Diagnostics; d != nil {
		mode := "degraded (fallback ladder)"
		if d.Strict {
			mode = "strict (fail-fast)"
		}
		fmt.Fprintf(w, "diagnostics: %d workers, %s mode, %v wall time\n", d.Workers, mode, d.WallTime.Round(time.Millisecond))
		fmt.Fprintf(w, "  clusters verified: %d (%d via fallback), unverified: %d\n", d.Verified, d.Degraded, d.Unverified)
		for _, c := range d.Clusters {
			if c.Err == nil && c.Stage != StageReduced && c.Stage != StageScreened {
				fmt.Fprintf(w, "  %-24s verified via %s after %d attempt(s) in %v\n",
					c.Victim, c.Stage, c.Attempts, c.WallTime.Round(time.Microsecond))
			}
			if c.RecheckErr != nil {
				fmt.Fprintf(w, "  %-24s transistor recheck failed: %v\n", c.Victim, c.RecheckErr)
			}
		}
		if worst := d.WorstUnverified(5); len(worst) > 0 {
			fmt.Fprintf(w, "  worst unverified victims (by retained coupling):\n")
			for _, c := range worst {
				fmt.Fprintf(w, "    %-22s %.1f fF coupling — %v\n", c.Victim, c.CouplingF*1e15, c.Err)
			}
		}
	}
	return nil
}

// Verifier runs the flow against one design.
type Verifier struct {
	cfg Config
	des *design.Design
	par *extract.Parasitics
	// src, when non-nil, marks a streaming verifier (Config.StreamIngest):
	// des and par stay nil and runEngine routes to runStreamEngine, which
	// ingests nets from src on every run. APIs that need the materialized
	// design guard with requireMaterialized.
	src StreamSource
	// faultHook, when set (tests only), is invoked before each cluster
	// attempt and may inject an error or panic to exercise the ladder.
	faultHook func(victim string, stage FallbackStage) error
	// staleMu guards stale: victims whose results in this verifier's reports
	// were superseded by an incremental reverify splice (reverify.go).
	// AdviseRepair refuses them with ErrStaleReport.
	staleMu sync.Mutex
	stale   map[string]bool
	// signerOnce lazily builds signer, the per-design coupling index the
	// reverify signatures read (reverify.go).
	signerOnce sync.Once
	signer     *prune.InputSigner
}

// NewVerifierFromDSP generates the synthetic DSP design (the Section 5
// stand-in) and prepares it for verification. cfg may be zero-valued.
func NewVerifierFromDSP(dspCfg DSPConfig, cfg Config) (*Verifier, error) {
	cfg.setDefaults()
	if cfg.StreamIngest {
		return newStreamVerifier(dspStreamSource{cfg: dsp.Config(dspCfg)}, cfg)
	}
	d, err := dsp.Generate(dsp.Config(dspCfg))
	if err != nil {
		return nil, err
	}
	return newVerifier(d, cfg)
}

// DSPConfig mirrors the synthetic DSP generator parameters.
type DSPConfig = dspConfigAlias

type dspConfigAlias = dsp.Config

// DefaultDSPConfig returns the paper-scale synthetic DSP configuration.
func DefaultDSPConfig() DSPConfig { return dsp.DefaultConfig() }

func newVerifier(d *design.Design, cfg Config) (*Verifier, error) {
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		return nil, err
	}
	if cfg.UseTimingWindows {
		if err := sta.Annotate(d, par, sta.DefaultOptions()); err != nil {
			return nil, err
		}
	}
	return &Verifier{cfg: cfg, des: d, par: par}, nil
}

// WriteSPEF serializes the extracted parasitics in SPEF form.
func (v *Verifier) WriteSPEF(w io.Writer) error {
	if err := v.requireMaterialized("WriteSPEF"); err != nil {
		return err
	}
	return spef.Write(w, v.par)
}

// WriteVerilog serializes the design's gate-level connectivity as
// structural Verilog (the netlist-side companion to the SPEF parasitics).
func (v *Verifier) WriteVerilog(w io.Writer) error {
	if err := v.requireMaterialized("WriteVerilog"); err != nil {
		return err
	}
	return verilog.Write(w, v.des)
}

// WriteDEF serializes the design's physical view (placements and routed
// wiring) in the DEF subset.
func (v *Verifier) WriteDEF(w io.Writer) error {
	if err := v.requireMaterialized("WriteDEF"); err != nil {
		return err
	}
	return deflite.Write(w, v.des)
}

// NewVerifierFromDEF loads a physical design from a DEF-subset stream (as
// produced by WriteDEF — placements, pin connections, routed segments) and
// prepares it for verification against the bundled technology and cell
// library.
func NewVerifierFromDEF(r io.Reader, cfg Config) (*Verifier, error) {
	cfg.setDefaults()
	if cfg.StreamIngest {
		// The reader is consumed during each Run, not here — it must stay
		// open (and be rewound between runs) for the verifier's lifetime.
		return newStreamVerifier(defStreamSource{r: r}, cfg)
	}
	d, err := deflite.Read(r)
	if err != nil {
		return nil, err
	}
	return newVerifier(d, cfg)
}

// Run performs full-chip glitch verification: every eligible victim net is
// clustered, reduced and simulated for both glitch polarities. Run is the
// strict mode: serial, fail-fast on the first cluster error, no fallback
// ladder — exactly the historical behavior. See RunContext (engine.go) for
// the parallel, fault-tolerant variant.
func (v *Verifier) Run() (*Report, error) {
	//xtlint:background Run is the historical strict-serial entry; it delegates to the shared engine, not to a RunContext wrapper
	return v.runEngine(context.Background(), runParams{workers: 1, strict: true})
}
