package xtverify

import (
	"context"
	"fmt"

	"xtverify/internal/glitch"
	"xtverify/internal/prune"
)

// RepairOption is one evaluated fix for a violating victim net.
type RepairOption struct {
	// Fix names the strategy: "upsize-driver", "double-spacing" or
	// "shield-victim".
	Fix string
	// Detail names the concrete change (e.g. the replacement cell).
	Detail string
	// PeakV is the re-simulated glitch with the fix applied.
	PeakV float64
	// Clears reports whether the fix brings the glitch under the
	// verifier's reporting threshold.
	Clears bool
	// Feasible is false when the fix does not apply.
	Feasible bool
}

// RepairAdvice ranks candidate fixes for one victim, most effective first.
type RepairAdvice struct {
	Victim        string
	OriginalPeakV float64
	Options       []RepairOption
	// Recommended is the cheapest-listed clearing fix ("" if none clears).
	Recommended string
}

// AdviseRepair evaluates the standard signal-integrity ECO menu (driver
// upsizing, spacing, shielding) for the named victim net by re-simulating
// its cluster under each fix.
func (v *Verifier) AdviseRepair(victim string) (*RepairAdvice, error) {
	return v.AdviseRepairContext(context.Background(), victim)
}

// AdviseRepairContext is AdviseRepair honoring context cancellation and
// deadlines across the polarity screen and every candidate re-simulation.
func (v *Verifier) AdviseRepairContext(ctx context.Context, victim string) (*RepairAdvice, error) {
	if err := v.requireMaterialized("AdviseRepair"); err != nil {
		return nil, err
	}
	if v.victimStale(victim) {
		// An incremental reverify superseded this victim's result here: the
		// waveforms any advice would be ranked against no longer describe the
		// current design. Advise against the verifier that produced the
		// spliced report instead.
		return nil, fmt.Errorf("%w: victim %q; advise against the reverified design's verifier", ErrStaleReport, victim)
	}
	net, ok := v.des.NetByName(victim)
	if !ok {
		return nil, fmt.Errorf("xtverify: unknown net %q", victim)
	}
	cl := prune.PruneVictim(v.par, net.Index, v.pruneOptions())
	if len(cl.Aggressors) == 0 {
		return nil, fmt.Errorf("xtverify: net %q has no retained aggressors", victim)
	}
	eng := glitch.NewEngine(v.par, glitch.Options{
		Model:               v.cfg.Model.kind(),
		FixedOhms:           v.cfg.FixedOhms,
		Order:               v.cfg.ReducedOrder,
		UseTimingWindows:    v.cfg.UseTimingWindows,
		UseLogicCorrelation: v.cfg.UseLogicCorrelation,
		DisablePrepared:     v.cfg.DisablePreparedTransients,
	})
	// Analyze the worse polarity first. The pair call shares one reduction
	// and prepared diagonalization between the polarities, and the repair
	// sweep below reuses the same engine memo.
	rise, fall, err := eng.AnalyzeGlitchPairContext(ctx, cl)
	if err != nil {
		return nil, err
	}
	rising := rise.PeakV >= -fall.PeakV
	threshold := v.cfg.GlitchThresholdFrac * Vdd
	adv, err := eng.AdviseRepairsContext(ctx, cl, rising, threshold)
	if err != nil {
		return nil, err
	}
	out := &RepairAdvice{Victim: adv.Victim, OriginalPeakV: adv.OriginalPeakV}
	for _, o := range adv.Options {
		out.Options = append(out.Options, RepairOption{
			Fix:      o.Fix.String(),
			Detail:   o.Detail,
			PeakV:    o.PeakV,
			Clears:   o.Clears,
			Feasible: o.Feasible,
		})
	}
	if rec := adv.Recommended(); rec != nil {
		out.Recommended = rec.Fix.String()
	}
	return out, nil
}
