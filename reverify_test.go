package xtverify

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xtverify/internal/cells"
	"xtverify/internal/deflite"
	"xtverify/internal/faultinject"
)

// identityText renders the report's identity surface — WriteText without the
// diagnostics block — while leaving the report itself intact (BaseRun needs
// the diagnostics).
func identityText(t testing.TB, rep *Report) string {
	t.Helper()
	diag := rep.Diagnostics
	rep.Diagnostics = nil
	var sb strings.Builder
	err := rep.WriteText(&sb)
	rep.Diagnostics = diag
	if err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// upsizeInDEF returns defText with the victim's first driver swapped to the
// next-stronger cell of the same kind — the engine-level mirror of the
// daemon's upsize-driver repair delta.
func upsizeInDEF(defText, victim string) (string, error) {
	d, err := deflite.Read(strings.NewReader(defText))
	if err != nil {
		return "", err
	}
	net, ok := d.NetByName(victim)
	if !ok || len(net.Drivers) == 0 {
		return "", fmt.Errorf("victim %q missing or driverless in DEF", victim)
	}
	drv := net.Drivers[0]
	var repl *cells.Cell
	for _, cand := range cells.Library() {
		if cand.Kind != drv.Cell.Kind || cand.Strength <= drv.Cell.Strength {
			continue
		}
		if repl == nil || cand.Strength < repl.Strength {
			repl = cand
		}
	}
	if repl == nil {
		return "", fmt.Errorf("no cell stronger than %s in the library", drv.Cell.Name)
	}
	for _, n := range d.Nets {
		for i := range n.Drivers {
			if n.Drivers[i].Inst == drv.Inst {
				n.Drivers[i].Cell = repl
			}
		}
		for i := range n.Receivers {
			if n.Receivers[i].Inst == drv.Inst {
				n.Receivers[i].Cell = repl
			}
		}
	}
	var out strings.Builder
	if err := deflite.Write(&out, d); err != nil {
		return "", err
	}
	return out.String(), nil
}

// upsizedDEF is upsizeInDEF over v's serialized design, fatal on error.
func upsizedDEF(t testing.TB, v *Verifier, victim string) string {
	t.Helper()
	var sb strings.Builder
	if err := v.WriteDEF(&sb); err != nil {
		t.Fatal(err)
	}
	out, err := upsizeInDEF(sb.String(), victim)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// spliceFixture runs a base verification on the small DSP design under cfg,
// upsizes the driver of the first violated victim, and returns everything an
// identity check needs: the base verifier+report, the edited DEF, and the
// chosen victim.
//
// The base verifier is built from a DEF round trip of the generated design,
// mirroring the daemon: a reverify delta is necessarily expressed in DEF, and
// DSP-direct construction differs from DEF parsing in low-order parasitic
// bits, which would defeat every cluster signature. DEF-to-DEF parses are
// exactly stable.
func spliceFixture(t *testing.T, cfg Config) (*Verifier, *Report, string, string) {
	t.Helper()
	gen := engineVerifier(t, cfg)
	var sb strings.Builder
	if err := gen.WriteDEF(&sb); err != nil {
		t.Fatal(err)
	}
	baseV, err := NewVerifierFromDEF(strings.NewReader(sb.String()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseRep, err := baseV.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(baseRep.Violations) == 0 {
		t.Fatal("base design has no violations; nothing to repair")
	}
	victim := baseRep.Violations[0].Victim
	return baseV, baseRep, upsizedDEF(t, baseV, victim), victim
}

// TestReverifyIdentity is the tentpole acceptance gate: a reverify splice of
// a single-driver upsize must render byte-identical to a cold full run of the
// edited design — serially, under Workers=8, with the ROM cache off, and
// against a warm persistent store.
func TestReverifyIdentity(t *testing.T) {
	for _, tc := range []struct {
		name      string
		mut       func(*Config)
		warmStore bool
	}{
		{"serial", func(*Config) {}, false},
		{"workers8", func(c *Config) { c.Workers = 8 }, false},
		{"cache-off", func(c *Config) { c.DisableROMCache = true }, false},
		{"warm-store", func(*Config) {}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
			tc.mut(&cfg)
			if tc.warmStore {
				store, err := OpenROMStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				cfg.ROMStore = store
			}
			baseV, baseRep, defText, _ := spliceFixture(t, cfg)

			coldV, err := NewVerifierFromDEF(strings.NewReader(defText), cfg)
			if err != nil {
				t.Fatal(err)
			}
			coldRep, err := coldV.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want := identityText(t, coldRep)

			base, err := baseV.BaseRun(baseRep)
			if err != nil {
				t.Fatal(err)
			}
			editV, err := NewVerifierFromDEF(strings.NewReader(defText), cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, stats, err := editV.Reverify(base)
			if err != nil {
				t.Fatal(err)
			}
			if got := identityText(t, rep); got != want {
				t.Errorf("spliced report differs from cold run:\n--- cold ---\n%s--- spliced ---\n%s", want, got)
			}
			if stats.ClustersReused == 0 {
				t.Errorf("single-driver upsize reused nothing: %+v", stats)
			}
			if stats.ClustersRecomputed == 0 {
				t.Errorf("an edit that changes a driver must recompute something: %+v", stats)
			}
			if stats.ClustersReused+stats.ClustersRecomputed != base.Entries() {
				t.Errorf("reused %d + recomputed %d != %d base clusters (same-size edit)",
					stats.ClustersReused, stats.ClustersRecomputed, base.Entries())
			}
			if len(stats.StaleVictims) == 0 {
				t.Errorf("recomputed clusters must be marked stale on the base: %+v", stats)
			}
		})
	}
}

// TestReverifyStoreFaultsDegradeToRecompute injects persistent-store failures
// during the splice: every recomputed cluster loses its warm entries, must
// fall back to fresh reduction, and the spliced report stays byte-identical.
func TestReverifyStoreFaultsDegradeToRecompute(t *testing.T) {
	faultinject.LeakCheck(t)
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	store, err := OpenROMStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.ROMStore = store
	baseV, baseRep, defText, _ := spliceFixture(t, cfg)

	// The cold reference runs fault-free (and warm).
	coldV, err := NewVerifierFromDEF(strings.NewReader(defText), cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := coldV.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := identityText(t, coldRep)

	base, err := baseV.BaseRun(baseRep)
	if err != nil {
		t.Fatal(err)
	}
	editV, err := NewVerifierFromDEF(strings.NewReader(defText), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.SetStoreHook(func(op, path string) error {
		return fmt.Errorf("faultinject: %s unavailable", op)
	})()
	rep, stats, err := editV.Reverify(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := identityText(t, rep); got != want {
		t.Errorf("splice under store faults differs from cold run:\n--- cold ---\n%s--- faulted ---\n%s", want, got)
	}
	if stats.ClustersRecomputed == 0 {
		t.Fatalf("fixture recomputed nothing; fault path unexercised: %+v", stats)
	}
	st := store.Stats()
	if st.LoadErrors == 0 && st.WriteErrors == 0 {
		t.Errorf("store faults never fired: %+v", st)
	}
}

// TestCanonicalConfigKey pins the cache-key contract: every field that can
// change report content yields a distinct key; execution knobs do not.
func TestCanonicalConfigKey(t *testing.T) {
	base := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	baseKey := base.CanonicalConfigKey()

	if zero, dflt := (Config{}).CanonicalConfigKey(), (Config{Model: NonlinearCellModel}).CanonicalConfigKey(); zero != dflt {
		t.Errorf("zero config and explicit defaults must share a key:\n  %s\n  %s", zero, dflt)
	}

	content := map[string]func(*Config){
		"Model":               func(c *Config) { c.Model = NonlinearCellModel },
		"FixedOhms":           func(c *Config) { c.FixedOhms = 700 },
		"CapRatioThreshold":   func(c *Config) { c.CapRatioThreshold = 0.05 },
		"UseTimingWindows":    func(c *Config) { c.UseTimingWindows = true },
		"UseLogicCorrelation": func(c *Config) { c.UseLogicCorrelation = true },
		"GlitchThresholdFrac": func(c *Config) { c.GlitchThresholdFrac = 0.2 },
		"MaxAggressors":       func(c *Config) { c.MaxAggressors = 3 },
		"ReducedOrder":        func(c *Config) { c.ReducedOrder = 6 },
		"TransistorRecheck":   func(c *Config) { c.TransistorRecheck = true },
		"Strict":              func(c *Config) { c.Strict = true },
		"ClusterTimeout":      func(c *Config) { c.ClusterTimeout = 3 * time.Second },
		"RungRetries":         func(c *Config) { c.RungRetries = 2 },
		"RungRetryBackoff":    func(c *Config) { c.RungRetryBackoff = 10 * time.Millisecond },
		"DisableScreening":    func(c *Config) { c.DisableScreening = true },
		"ScreenSafetyFactor":  func(c *Config) { c.ScreenSafetyFactor = 2.5 },
	}
	seen := map[string]string{baseKey: "base"}
	//xtlint:sorted visit order immaterial: each knob is checked independently against the base key
	for field, mut := range content {
		cfg := base
		mut(&cfg)
		key := cfg.CanonicalConfigKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("flipping %s aliases with %s: key %s", field, prev, key)
			continue
		}
		seen[key] = field
	}

	execution := map[string]func(*Config){
		"Workers":                   func(c *Config) { c.Workers = 8 },
		"DisableROMCache":           func(c *Config) { c.DisableROMCache = true },
		"DisablePreparedTransients": func(c *Config) { c.DisablePreparedTransients = true },
		"Collector":                 func(c *Config) { c.Collector = NewMetricsCollector() },
	}
	//xtlint:sorted visit order immaterial: each knob is checked independently against the base key
	for field, mut := range execution {
		cfg := base
		mut(&cfg)
		if key := cfg.CanonicalConfigKey(); key != baseKey {
			t.Errorf("execution knob %s changed the key:\n  base: %s\n  got:  %s", field, baseKey, key)
		}
	}
}

// TestReverifyConfigMismatch: a splice across differing canonical configs is
// refused — mixing results computed under different policies is never sound.
func TestReverifyConfigMismatch(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	baseV, baseRep, defText, _ := spliceFixture(t, cfg)
	base, err := baseV.BaseRun(baseRep)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Strict = true
	editV, err := NewVerifierFromDEF(strings.NewReader(defText), other)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := editV.Reverify(base); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("cross-config splice error = %v, want ErrConfigMismatch", err)
	}
}

// TestBaseRunRejectsUnusable: partial or foreign reports never become a base.
func TestBaseRunRejectsUnusable(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	v := engineVerifier(t, cfg)
	if _, err := v.BaseRun(nil); !errors.Is(err, ErrBaseUnusable) {
		t.Errorf("BaseRun(nil) error = %v, want ErrBaseUnusable", err)
	}
	if _, err := v.BaseRun(&Report{}); !errors.Is(err, ErrBaseUnusable) {
		t.Errorf("BaseRun(no diagnostics) error = %v, want ErrBaseUnusable", err)
	}
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A report indexed against a verifier for a different design has the
	// wrong cluster population.
	otherCfg := cfg
	otherCfg.CapRatioThreshold = 0.5
	otherV := engineVerifier(t, otherCfg)
	if _, err := otherV.BaseRun(rep); !errors.Is(err, ErrBaseUnusable) {
		t.Errorf("BaseRun(foreign report) error = %v, want ErrBaseUnusable", err)
	}
	if _, _, err := v.Reverify(nil); !errors.Is(err, ErrBaseUnusable) {
		t.Errorf("Reverify(nil) error = %v, want ErrBaseUnusable", err)
	}
}

// TestAdviseRepairStaleAfterReverify: once a splice supersedes a victim's
// result, the base verifier refuses to advise repairs for it — the advice
// would be computed against a design that no longer matches the report.
func TestAdviseRepairStaleAfterReverify(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	baseV, baseRep, defText, victim := spliceFixture(t, cfg)

	// Before the splice, advice for the victim works.
	if _, err := baseV.AdviseRepair(victim); err != nil {
		t.Fatalf("pre-splice AdviseRepair(%s): %v", victim, err)
	}

	base, err := baseV.BaseRun(baseRep)
	if err != nil {
		t.Fatal(err)
	}
	editV, err := NewVerifierFromDEF(strings.NewReader(defText), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := editV.Reverify(base)
	if err != nil {
		t.Fatal(err)
	}
	staleSet := make(map[string]bool, len(stats.StaleVictims))
	for _, s := range stats.StaleVictims {
		staleSet[s] = true
	}
	if !staleSet[victim] {
		t.Fatalf("upsized victim %q not in stale set %v", victim, stats.StaleVictims)
	}
	if _, err := baseV.AdviseRepair(victim); !errors.Is(err, ErrStaleReport) {
		t.Errorf("post-splice AdviseRepair(%s) error = %v, want ErrStaleReport", victim, err)
	}
	// A victim the splice did not touch is still advisable.
	for _, viol := range baseRep.Violations {
		if staleSet[viol.Victim] {
			continue
		}
		if _, err := baseV.AdviseRepair(viol.Victim); err != nil {
			t.Errorf("untouched victim %s: %v", viol.Victim, err)
		}
		break
	}
	// The edited design's own verifier is unaffected by the base's staleness.
	if _, err := editV.AdviseRepair(victim); errors.Is(err, ErrStaleReport) {
		t.Errorf("reverified verifier wrongly treats %s as stale: %v", victim, err)
	}
}
