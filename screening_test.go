package xtverify

import (
	"context"
	"strings"
	"testing"

	"xtverify/internal/faultinject"
)

// stripScreeningLines removes the report's screening section (the
// "screening:" summary line and the "  screened " cluster lines) — the only
// lines a screening-on report is allowed to differ by.
func stripScreeningLines(report string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(report, "\n") {
		if strings.HasPrefix(line, "screening:") || strings.HasPrefix(line, "  screened ") {
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}

// TestScreeningReportIdentity is the tentpole's A/B acceptance check: a
// -no-screen run renders byte-identical reports to the historical flow (it
// IS the historical flow), and a screening-on run differs only by the
// documented screening section — serially, under Workers=8, and with the
// ROM cache off, for both driver models. Screened clusters are conservative
// passes, so violations, verified counts, and every other report line must
// not move.
func TestScreeningReportIdentity(t *testing.T) {
	for _, model := range []DriverModel{FixedResistance, NonlinearCellModel} {
		base := Config{Model: model, CapRatioThreshold: 0.03}

		off := base
		off.DisableScreening = true
		want := renderReport(t, off, false)
		if strings.Contains(want, "screening:") {
			t.Fatalf("model %v: -no-screen report still has a screening section:\n%s", model, want)
		}

		on := renderReport(t, base, false)
		if !strings.Contains(on, "screening:") {
			t.Fatalf("model %v: screening-on report has no screening section:\n%s", model, on)
		}
		if got := stripScreeningLines(on); got != want {
			t.Errorf("model %v: screening-on report differs beyond the screening section:\n--- off ---\n%s--- on (stripped) ---\n%s",
				model, want, got)
		}

		for _, tc := range []struct {
			name     string
			parallel bool
			cacheOff bool
		}{
			{"workers8", true, false},
			{"serial-nocache", false, true},
			{"workers8-nocache", true, true},
		} {
			cfg := base
			cfg.DisableROMCache = tc.cacheOff
			if tc.parallel {
				cfg.Workers = 8
			}
			if got := renderReport(t, cfg, tc.parallel); got != on {
				t.Errorf("model %v, %s: screening-on report not deterministic:\n--- serial ---\n%s--- %s ---\n%s",
					model, tc.name, on, tc.name, got)
			}
		}
	}
}

// TestScreeningROMCacheBypass pins the perf contract that makes rung 0
// worth having: a screened cluster never consults or populates the ROM
// cache, so cache traffic (hits + misses) accounts for exactly the
// unscreened clusters, and rom_cache_misses excludes screened clusters by
// construction.
func TestScreeningROMCacheBypass(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	rep, s := runWithCollector(t, cfg)
	if rep.Screening == nil || rep.Screening.Screened == 0 {
		t.Fatalf("design screens nothing — the bypass assertion is vacuous (screening: %+v)", rep.Screening)
	}
	analyzed := int64(rep.AnalyzedVictims)
	screened := int64(rep.Screening.Screened)
	traffic := s.Counters["rom_cache_hits"] + s.Counters["rom_cache_misses"]
	if traffic != analyzed-screened {
		t.Errorf("ROM cache traffic %d (hits %d + misses %d), want %d (= %d analyzed - %d screened)",
			traffic, s.Counters["rom_cache_hits"], s.Counters["rom_cache_misses"],
			analyzed-screened, analyzed, screened)
	}
	if got := s.Counters["screened_rung0"]; got != screened {
		t.Errorf("screened_rung0 counter %d disagrees with report %d", got, screened)
	}
}

// TestScreeningWarmStoreIdentity is satellite coverage for the persistent
// store: with screening on, a warm run against a store populated by a cold
// screening-on run stays byte-identical, and the store sees no entries for
// screened clusters (its write count matches the unscreened population).
func TestScreeningWarmStoreIdentity(t *testing.T) {
	store, err := OpenROMStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 4}

	coldV := engineVerifier(t, cfg)
	coldV.cfg.ROMStore = store
	coldRep, err := coldV.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if coldRep.Screening == nil || coldRep.Screening.Screened == 0 {
		t.Fatalf("cold run screened nothing; store assertion is vacuous")
	}
	st := store.Stats()
	// Each unscreened cluster persists two entries: the reduced model (.rom)
	// and its prepared-transient core (.prep). Screened clusters write neither.
	wantWrites := 2 * uint64(coldRep.AnalyzedVictims-coldRep.Screening.Screened)
	if st.Writes != wantWrites {
		t.Errorf("cold store writes %d, want %d (= 2 x (%d analyzed - %d screened)): screened clusters must not populate the store",
			st.Writes, wantWrites, coldRep.AnalyzedVictims, coldRep.Screening.Screened)
	}

	coldRep.Diagnostics = nil
	var sb strings.Builder
	if err := coldRep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	warm := renderReportStore(t, cfg, store)
	if cold := sb.String(); warm != cold {
		t.Errorf("warm screening-on report differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if st2 := store.Stats(); st2.Hits == st.Hits {
		t.Errorf("warm run hit nothing: %+v", st2)
	}
}

// TestScreeningPanicIsolation drives the injected-fault path through rung
// 0: a panic inside the screen must degrade that cluster to the full
// ladder — same verified totals, zero screened — never take down the run.
func TestScreeningPanicIsolation(t *testing.T) {
	defer faultinject.SetClusterHook(func(victim, stage string) error {
		if stage == StageScreened.String() {
			panic("faultinject: injected panic in rung-0 screen")
		}
		return nil
	})()
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	v := engineVerifier(t, cfg)
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Screening == nil {
		t.Fatal("screening summary missing with screening enabled")
	}
	if rep.Screening.Screened != 0 {
		t.Errorf("screened %d clusters with the screen panicking, want 0", rep.Screening.Screened)
	}
	if rep.Diagnostics.Unverified != 0 {
		t.Errorf("%d unverified clusters — screen panic leaked out of rung 0", rep.Diagnostics.Unverified)
	}

	// The damaged run must match the -no-screen flow exactly (modulo the
	// now-empty screening line): every cluster fell through to the ladder.
	rep.Diagnostics = nil
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	off := cfg
	off.DisableScreening = true
	if got, want := stripScreeningLines(sb.String()), renderReport(t, off, false); got != want {
		t.Errorf("screen-panic run differs from -no-screen run:\n--- no-screen ---\n%s--- panic (stripped) ---\n%s", want, got)
	}
}

// TestScreenSafetyFactor pins the safety-factor semantics: an enormous
// factor denies every clearance (and counts the would-have-cleared
// clusters as near-threshold), while a zero factor screens at least as
// many clusters as the default.
func TestScreenSafetyFactor(t *testing.T) {
	base := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	rep, _ := runWithCollector(t, base)
	if rep.Screening == nil || rep.Screening.Screened == 0 {
		t.Fatalf("default config screens nothing on the test design")
	}
	if rep.Screening.SafetyFactor != DefaultScreenSafetyFactor {
		t.Errorf("report safety factor %g, want default %g", rep.Screening.SafetyFactor, DefaultScreenSafetyFactor)
	}

	huge := base
	huge.ScreenSafetyFactor = 1e6
	hugeRep, s := runWithCollector(t, huge)
	if hugeRep.Screening.Screened != 0 {
		t.Errorf("screened %d clusters at safety factor 1e6, want 0", hugeRep.Screening.Screened)
	}
	if s.Counters["screen_near_threshold"] < int64(rep.Screening.Screened) {
		t.Errorf("near-threshold count %d < %d clusters the default factor clears",
			s.Counters["screen_near_threshold"], rep.Screening.Screened)
	}

	// A negative factor must never deflate the bound below its conservative
	// construction: it folds into the default, screening the same clusters.
	neg := base
	neg.ScreenSafetyFactor = -1
	negRep, _ := runWithCollector(t, neg)
	if negRep.Screening.Screened != rep.Screening.Screened {
		t.Errorf("negative safety factor screened %d clusters, default screened %d — negatives must clamp to the default",
			negRep.Screening.Screened, rep.Screening.Screened)
	}
}
