// engine.go is the fault-tolerant, parallel cluster-verification engine.
//
// The chip-level loop's whole value is coverage: a full-chip run over
// thousands of coupled clusters must not die because one pathological
// cluster defeats the numerics. RunContext therefore fans clusters out over
// a bounded worker pool, isolates each cluster behind recover(), enforces an
// optional per-cluster deadline, and — in degraded mode — walks a fallback
// ladder instead of failing:
//
//  1. SyMPVL reduction at the configured order (the fast path);
//  2. retry with a raised Gmin grounding conductance and a reduced order,
//     which cures most "G is not positive definite" breakdowns;
//  3. direct transient integration of the unreduced MNA system;
//  4. mark the victim Unverified with a structured ClusterError.
//
// Results are assembled in cluster order after all workers finish, so a
// parallel run's report is byte-identical to a serial run's.
package xtverify

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"xtverify/internal/analytic"
	"xtverify/internal/cells"
	"xtverify/internal/design"
	"xtverify/internal/extract"
	"xtverify/internal/faultinject"
	"xtverify/internal/glitch"
	"xtverify/internal/obs"
	"xtverify/internal/prune"
	"xtverify/internal/romsim"
	"xtverify/internal/sympvl"
)

// DefaultScreenSafetyFactor is the bound inflation applied by the rung-0
// screen when Config.ScreenSafetyFactor is zero: the analytic bound is
// conservative by construction, the factor adds 25 % engineering margin on
// top before a cluster is cleared.
const DefaultScreenSafetyFactor = 0.25

// regularizedGmin is the grounding conductance used by StageRegularized,
// three orders of magnitude above mna.DefaultGmin: large enough to make any
// extraction-grade G matrix decisively positive definite, small enough (1 µS
// against kΩ interconnect) to stay below reporting accuracy.
const regularizedGmin = 1e-6

// ladder is the degradation sequence tried per cluster in degraded mode.
var ladder = [...]FallbackStage{StageReduced, StageRegularized, StageDirectMNA}

// ClusterOutcome is the per-cluster entry of the run diagnostics.
type ClusterOutcome struct {
	// Victim is the cluster's victim net name.
	Victim string
	// Stage is the rung that produced the result (StageUnverified if none).
	Stage FallbackStage
	// Attempts counts ladder rungs tried (1 = fast path succeeded).
	Attempts int
	// WallTime is the cluster's analysis time, all attempts included.
	WallTime time.Duration
	// CouplingF is the victim's retained coupling capacitance — the
	// severity proxy used to rank unverified victims.
	CouplingF float64
	// ScreenBoundV is the rung-0 analytic bound that cleared the cluster
	// (StageScreened only, 0 otherwise).
	ScreenBoundV float64
	// Err is the structured failure for unverified clusters, nil otherwise.
	Err *ClusterError
	// RecheckErr records a degraded-mode transistor-recheck failure; the
	// violation is still reported, just unconfirmed.
	RecheckErr error
}

// Diagnostics summarizes a fault-tolerant run for the report.
type Diagnostics struct {
	// Workers is the resolved worker-pool size.
	Workers int
	// Strict reports whether the run was fail-fast (no fallback ladder).
	Strict bool
	// WallTime is the end-to-end cluster-analysis time.
	WallTime time.Duration
	// Verified counts clusters that produced a result (any stage).
	Verified int
	// Degraded counts verified clusters that needed a fallback rung.
	Degraded int
	// Unverified counts clusters every rung failed on.
	Unverified int
	// ROMCacheHits and ROMCacheMisses count reduced-model memoization
	// outcomes across the run — this run's delta when Config.SharedROMCache
	// keeps one cache warm across runs (both zero when the cache is
	// disabled; attribution is approximate when concurrent runs share). They
	// are diagnostics only and deliberately absent from WriteText: eviction
	// and scheduling make them run-dependent, and the report must stay
	// byte-identical between serial and parallel runs.
	ROMCacheHits, ROMCacheMisses uint64
	// Clusters holds one outcome per analyzed cluster, in victim order.
	Clusters []ClusterOutcome
	// Metrics is the observability snapshot of the run, nil unless
	// Config.Collector was set. Like the cache statistics it is absent from
	// WriteText: counter totals are deterministic, but durations and the
	// queue gauge are run-dependent and would break report byte-identity.
	Metrics *MetricsSnapshot
}

// WorstUnverified returns up to n unverified outcomes ordered by retained
// coupling capacitance (the strongest-coupled, riskiest victims first).
func (d *Diagnostics) WorstUnverified(n int) []ClusterOutcome {
	var out []ClusterOutcome
	for _, c := range d.Clusters {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CouplingF != out[j].CouplingF {
			return out[i].CouplingF > out[j].CouplingF
		}
		return out[i].Victim < out[j].Victim
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// runParams resolves how the engine executes one run.
type runParams struct {
	workers int
	strict  bool
	timeout time.Duration
	// retries is the per-rung transient-failure retry budget; backoff the
	// base delay between retries (doubled per retry). With retries > 0 the
	// timeout applies per attempt instead of once per cluster.
	retries int
	backoff time.Duration
	// reuse, when non-nil, marks an incremental reverify: it is consulted
	// once per cluster, serially, before the worker pool starts, and a
	// non-nil result is spliced into the run verbatim instead of being
	// recomputed. The hook must return results bit-equal to what analysis
	// would produce — the engine assembles spliced and fresh results through
	// the same code path precisely so the report stays byte-identical to a
	// cold run.
	reuse func(cl *prune.Cluster) *clusterResult
}

// clusterUnit is everything cluster analysis reads: the pruned cluster plus
// the parasitics/design its indices resolve against. The materialized path
// passes the whole-chip views; the streaming path passes component-scoped
// views whose local numbering reproduces the global computation bit for bit
// (see internal/prune stream.go).
type clusterUnit struct {
	cl  *prune.Cluster
	par *extract.Parasitics
	des *design.Design
}

// clusterResult is one worker's output for one cluster.
type clusterResult struct {
	outcome   ClusterOutcome
	violation *Violation
	// trace is the cluster's observability record, nil when no collector
	// is configured. It is merged into the collector serially, in cluster
	// order, during result assembly.
	trace *obs.Trace
	// err is the fail-fast error for strict mode, wrapped exactly like the
	// historical serial loop wrapped it.
	err error
}

// RunContext performs full-chip glitch verification like Run, but
// context-aware, parallel across clusters (Config.Workers, default
// GOMAXPROCS) and — unless Config.Strict is set — fault-tolerant: a cluster
// whose analysis fails walks the fallback ladder and, if every rung fails,
// is recorded as Unverified in the report's Diagnostics instead of aborting
// the run. Cancelling ctx aborts promptly with ctx's error.
func (v *Verifier) RunContext(ctx context.Context) (*Report, error) {
	return v.runEngine(ctx, runParams{
		workers: v.cfg.Workers,
		strict:  v.cfg.Strict,
		timeout: v.cfg.ClusterTimeout,
		retries: v.cfg.RungRetries,
		backoff: v.cfg.RungRetryBackoff,
	})
}

// baseGlitchOptions maps the run config onto the glitch engine's options —
// everything except the per-run cache wiring.
func (v *Verifier) baseGlitchOptions() glitch.Options {
	return glitch.Options{
		Model:               v.cfg.Model.kind(),
		FixedOhms:           v.cfg.FixedOhms,
		Order:               v.cfg.ReducedOrder,
		UseTimingWindows:    v.cfg.UseTimingWindows,
		UseLogicCorrelation: v.cfg.UseLogicCorrelation,
		DisableROMCache:     v.cfg.DisableROMCache,
		DisablePrepared:     v.cfg.DisablePreparedTransients,
	}
}

// cacheState snapshots the pre-run cache counters so diagnostics can report
// this run's deltas against a shared cache or store.
type cacheState struct {
	romCache                              *glitch.ROMCache
	cacheHits0, cacheMisses0, cacheEvict0 uint64
	store0                                ROMStoreStats
}

// setupEngineCaches wires the run's ROM cache and persistent store into
// baseOpts: one ROM cache for the whole run, shared by every worker and
// every ladder rung (Gmin and order changes are part of the cache key), so
// structurally identical clusters reduce once chip-wide. A caller may supply
// a longer-lived SharedROMCache (the daemon shares one across jobs) and/or a
// disk-persistent ROMStore behind it; diagnostics then report this run's
// deltas against the pre-run counters.
func (v *Verifier) setupEngineCaches(baseOpts *glitch.Options) cacheState {
	var cs cacheState
	if !v.cfg.DisableROMCache {
		if v.cfg.SharedROMCache != nil {
			cs.romCache = v.cfg.SharedROMCache
		} else {
			cs.romCache = glitch.NewROMCache(v.cfg.ROMCacheCap)
		}
		if v.cfg.ROMStore != nil {
			cs.romCache.SetBacking(v.cfg.ROMStore)
		}
		cs.cacheHits0, cs.cacheMisses0 = cs.romCache.Stats()
		cs.cacheEvict0 = cs.romCache.Evictions()
		baseOpts.Cache = cs.romCache
	}
	if v.cfg.ROMStore != nil {
		cs.store0 = v.cfg.ROMStore.Stats()
		// The store also persists prepared-transient cores (the factorization
		// behind the reduced model), so a warm process skips diagonalization
		// too. Gated on the same knobs as the layers it accelerates.
		if !v.cfg.DisableROMCache && !v.cfg.DisablePreparedTransients {
			baseOpts.PreparedStore = v.cfg.ROMStore
		}
	}
	return cs
}

// recordCacheDeltas folds the run's cache/store activity into the
// diagnostics and counters.
func (v *Verifier) recordCacheDeltas(cs cacheState, diag *Diagnostics, col *MetricsCollector) {
	if cs.romCache != nil {
		hits, misses := cs.romCache.Stats()
		diag.ROMCacheHits, diag.ROMCacheMisses = hits-cs.cacheHits0, misses-cs.cacheMisses0
		col.Add(obs.CtrROMCacheHits, int64(diag.ROMCacheHits))
		col.Add(obs.CtrROMCacheMisses, int64(diag.ROMCacheMisses))
		col.Add(obs.CtrROMCacheEvictions, int64(cs.romCache.Evictions()-cs.cacheEvict0))
	}
	if st := v.cfg.ROMStore; st != nil {
		s1 := st.Stats()
		col.Add(obs.CtrROMStoreHits, int64(s1.Hits-cs.store0.Hits))
		col.Add(obs.CtrROMStoreWrites, int64(s1.Writes-cs.store0.Writes))
		col.Add(obs.CtrCacheCorruptDiscarded, int64(s1.CorruptDiscarded-cs.store0.CorruptDiscarded))
	}
}

func (v *Verifier) runEngine(ctx context.Context, p runParams) (*Report, error) {
	if v.src != nil {
		return v.runStreamEngine(ctx, p)
	}
	col := v.cfg.Collector
	pOpt := v.pruneOptions()
	pruneSpan := col.Start(obs.PhasePrune)
	stats := prune.ComputeStats(v.par, pOpt)
	clusters := prune.Clusters(v.par, pOpt)
	pruneSpan.End()
	baseOpts := v.baseGlitchOptions()
	cs := v.setupEngineCaches(&baseOpts)
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(clusters) {
		workers = len(clusters)
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now() //xtlint:wallclock feeds Diagnostics.WallTime only, a run-dependent diagnostic
	results := make([]*clusterResult, len(clusters))
	// Incremental reverify: settle reusable clusters serially up front, then
	// hand only the remainder to the pool. The workers clamp above stays
	// against the full cluster count — Diagnostics.Workers appears in the
	// report, and a spliced report must match a cold run's byte for byte.
	pending := make([]int, 0, len(clusters))
	var reused int64
	for i, cl := range clusters {
		if p.reuse != nil {
			if r := p.reuse(cl); r != nil {
				results[i] = r
				reused++
				continue
			}
		}
		pending = append(pending, i)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				if runCtx.Err() != nil {
					continue // run aborted: leave the slot unattempted
				}
				col.TaskStarted()
				res := v.analyzeCluster(runCtx, baseOpts, clusterUnit{cl: clusters[idx], par: v.par, des: v.des}, p)
				col.TaskDone()
				results[idx] = res
				if p.strict && res.err != nil {
					cancel() // fail fast: stop feeding and drain
				}
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case <-runCtx.Done():
			break feed
		case idxCh <- i:
		}
	}
	close(idxCh)
	wg.Wait()

	// Caller cancellation or deadline wins over any per-cluster outcome.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.strict {
		// Report the earliest genuine failure in cluster order, exactly as
		// the serial loop did; skip casualties of our own fail-fast cancel.
		var firstAny error
		for _, r := range results {
			if r == nil || r.err == nil {
				continue
			}
			if !errors.Is(r.err, context.Canceled) {
				return nil, r.err
			}
			if firstAny == nil {
				firstAny = r.err
			}
		}
		if firstAny != nil {
			return nil, firstAny
		}
	}

	rep := &Report{
		DesignName: v.des.Name,
		NetCount:   len(v.des.Nets),
		Prune: PruneSummary{
			RawMeanClusterNets:    stats.RawMeanSize,
			RawMaxClusterNets:     stats.RawMaxSize,
			PrunedMeanClusterNets: stats.PrunedMeanSize,
			PrunedMaxClusterNets:  stats.PrunedMaxSize,
			ClustersAnalyzed:      stats.PrunedClusters,
		},
	}
	diag := &Diagnostics{Workers: workers, Strict: p.strict}
	for _, r := range results {
		if r == nil {
			continue
		}
		rep.AnalyzedVictims++
		diag.Clusters = append(diag.Clusters, r.outcome)
		// Serial, cluster-order merge: this is what makes the aggregated
		// counter totals identical between serial and Workers=N runs.
		col.MergeTrace(r.outcome.Victim, r.outcome.Stage.String(), r.trace)
		if r.outcome.Err != nil {
			diag.Unverified++
		} else {
			diag.Verified++
			// Screened clusters are rung 0, not a degradation: the ladder
			// never ran for them.
			if r.outcome.Stage != StageReduced && r.outcome.Stage != StageScreened {
				diag.Degraded++
			}
		}
		if r.violation != nil {
			rep.Violations = append(rep.Violations, *r.violation)
		}
	}
	if !v.cfg.DisableScreening {
		scr := &ScreeningSummary{
			SafetyFactor: v.cfg.ScreenSafetyFactor,
			MarginV:      v.cfg.GlitchThresholdFrac * Vdd,
		}
		// Victim (cluster) order, like Diagnostics.Clusters — deterministic
		// and identical between serial and parallel runs.
		for _, r := range results {
			if r != nil && r.outcome.Stage == StageScreened {
				scr.Screened++
				scr.Clusters = append(scr.Clusters, ScreenedCluster{Victim: r.outcome.Victim, BoundV: r.outcome.ScreenBoundV})
			}
		}
		rep.Screening = scr
	}
	diag.WallTime = time.Since(start) //xtlint:wallclock run-dependent diagnostic, excluded from report identity
	v.recordCacheDeltas(cs, diag, col)
	if p.reuse != nil {
		col.Add(obs.CtrReverifyJobs, 1)
		col.Add(obs.CtrClustersReused, reused)
		col.Add(obs.CtrClustersRecomputed, int64(len(clusters))-reused)
	}
	if col != nil {
		col.SetWorkers(workers)
		col.SetWallTime(diag.WallTime)
		diag.Metrics = col.Snapshot()
	}
	rep.Diagnostics = diag
	sort.Slice(rep.Violations, func(i, j int) bool {
		if rep.Violations[i].FracVdd != rep.Violations[j].FracVdd {
			return rep.Violations[i].FracVdd > rep.Violations[j].FracVdd
		}
		return rep.Violations[i].Victim < rep.Violations[j].Victim
	})
	return rep, nil
}

// analyzeCluster runs one cluster down the ladder (or just the fast path in
// strict mode) under the per-cluster deadline.
func (v *Verifier) analyzeCluster(ctx context.Context, baseOpts glitch.Options, u clusterUnit, p runParams) *clusterResult {
	start := time.Now() //xtlint:wallclock feeds Outcome.WallTime only, a run-dependent diagnostic
	cl := u.cl
	victim := u.des.Nets[cl.Victim].Name
	tr := v.cfg.Collector.NewTrace()
	res := &clusterResult{outcome: ClusterOutcome{Victim: victim, CouplingF: cl.KeptF}, trace: tr}
	// With retries disabled one deadline budget spans the whole ladder (the
	// historical contract); with retries enabled each attempt gets a fresh
	// budget, created inside attemptStage.
	retrying := !p.strict && p.retries > 0
	cctx := ctx
	if p.timeout > 0 && !retrying {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, p.timeout)
		defer cancel()
	}
	// Rung 0: the analytic screen. A cleared cluster never assembles an MNA
	// system, never builds (or consults) a ROM, never runs a transient. The
	// screen is skipped — falling through to the ladder, never the other way
	// around — when the run is being cancelled or the cluster's deadline has
	// already passed (the wall-clock check, not cctx.Err(): a 1 ns budget is
	// spent before the context's timer ever fires).
	if !v.cfg.DisableScreening && ctx.Err() == nil {
		expired := false
		if dl, ok := cctx.Deadline(); ok && !time.Now().Before(dl) { //xtlint:wallclock deadline fast-check; affects only the timeout path, never report bytes
			expired = true
		}
		if !expired {
			if bound, ok := v.screenCluster(u, victim, tr); ok {
				res.outcome.Stage = StageScreened
				res.outcome.WallTime = time.Since(start) //xtlint:wallclock WallTime is a run-dependent diagnostic, excluded from report identity
				res.outcome.ScreenBoundV = bound
				tr.Add(stageCounter(StageScreened), 1)
				return res
			}
		}
	}
	stages := ladder[:]
	if p.strict {
		stages = ladder[:1]
	}
	var attempts []Attempt
	for _, stage := range stages {
		viol, recheckErr, err := v.attemptStage(ctx, cctx, stage, baseOpts, tr, u, victim, p)
		if err == nil {
			res.outcome.Stage = stage
			res.outcome.Attempts = len(attempts) + 1
			res.outcome.WallTime = time.Since(start) //xtlint:wallclock WallTime is a run-dependent diagnostic, excluded from report identity
			res.outcome.RecheckErr = recheckErr
			res.violation = viol
			tr.Add(stageCounter(stage), 1)
			if p.strict && recheckErr != nil {
				res.err = recheckErr
			}
			return res
		}
		if p.strict {
			res.err = err
			res.outcome.Stage = StageUnverified
			res.outcome.Attempts = 1
			res.outcome.WallTime = time.Since(start) //xtlint:wallclock WallTime is a run-dependent diagnostic, excluded from report identity
			res.outcome.Err = &ClusterError{Victim: victim, Stage: stage,
				Attempts: []Attempt{{Stage: stage, Err: err}}}
			tr.Add(obs.CtrFallbackUnverified, 1)
			return res
		}
		cerr := classifyClusterErr(err)
		attempts = append(attempts, Attempt{Stage: stage, Err: cerr})
		if ctx.Err() != nil {
			break // the run is being cancelled — don't ladder further
		}
		if errors.Is(cerr, ErrTimeout) && !retrying {
			break // the per-cluster budget is consumed
		}
		// With per-attempt budgets (retrying), a timed-out rung does not
		// poison the rest of the ladder: the next rung starts fresh.
	}
	lastStage := StageReduced
	if n := len(attempts); n > 0 {
		lastStage = attempts[n-1].Stage
	}
	res.outcome.Stage = StageUnverified
	res.outcome.Attempts = len(attempts)
	res.outcome.WallTime = time.Since(start) //xtlint:wallclock WallTime is a run-dependent diagnostic, excluded from report identity
	res.outcome.Err = &ClusterError{Victim: victim, Stage: lastStage, Attempts: attempts}
	tr.Add(obs.CtrFallbackUnverified, 1)
	return res
}

// attemptStage runs one ladder rung, retrying transient failures when the
// run's retry policy allows. A failure is transient exactly when it
// classifies as ErrTimeout — a cluster starved under load whose own budget
// expired; cancellations (the parent is going away) and structural numerics
// failures (deterministic — retrying reproduces them) are returned
// immediately. Each retry waits an exponentially growing backoff and then
// re-attempts the same rung under a fresh per-attempt deadline.
func (v *Verifier) attemptStage(parent, cctx context.Context, stage FallbackStage, baseOpts glitch.Options,
	tr *obs.Trace, u clusterUnit, victim string, p runParams) (*Violation, error, error) {
	if p.strict || p.retries <= 0 {
		return v.attemptCluster(cctx, stage, baseOpts, tr, u, victim)
	}
	backoff := p.backoff
	if backoff <= 0 {
		backoff = DefaultRungRetryBackoff
	}
	for attempt := 0; ; attempt++ {
		actx := parent
		var cancel context.CancelFunc
		if p.timeout > 0 {
			actx, cancel = context.WithTimeout(parent, p.timeout)
		}
		viol, recheckErr, err := v.attemptCluster(actx, stage, baseOpts, tr, u, victim)
		if cancel != nil {
			cancel()
		}
		if err == nil || attempt >= p.retries || parent.Err() != nil ||
			!errors.Is(classifyClusterErr(err), ErrTimeout) {
			return viol, recheckErr, err
		}
		tr.Add(obs.CtrRungRetries, 1)
		wait := backoff << attempt
		select {
		case <-parent.Done():
			return nil, nil, parent.Err()
		case <-time.After(wait):
		}
	}
}

// stageCounter maps the rung that produced a cluster's result onto its
// fallback-ladder counter.
func stageCounter(s FallbackStage) obs.Counter {
	switch s {
	case StageReduced:
		return obs.CtrFallbackReduced
	case StageRegularized:
		return obs.CtrFallbackRegularized
	case StageDirectMNA:
		return obs.CtrFallbackDirectMNA
	case StageScreened:
		return obs.CtrScreenedRung0
	default:
		return obs.CtrFallbackUnverified
	}
}

// screenCluster evaluates the rung-0 analytic bound for one cluster and
// decides whether it clears the noise margin with the configured safety
// factor. Any failure — a degenerate cluster the bound refuses to state, a
// characterization error, an injected or genuine panic — degrades to
// (0, false): the cluster simply pays for the full ladder, exactly as if
// the screen did not exist. The screen deliberately does not consult
// v.faultHook (that hook drives ladder-shape tests which pin rung
// semantics); the process-global fault-injection registry fires with the
// "screened" stage so rung 0 participates in panic-isolation coverage.
func (v *Verifier) screenCluster(u clusterUnit, victim string, tr *obs.Trace) (bound float64, cleared bool) {
	defer func() {
		if r := recover(); r != nil {
			bound, cleared = 0, false
		}
	}()
	if herr := faultinject.FireCluster(victim, StageScreened.String()); herr != nil {
		return 0, false
	}
	tr.Add(obs.CtrScreenBoundEvals, 1)
	b, err := analytic.BoundCluster(u.par, u.cl, analytic.BoundOptions{
		Model:     v.cfg.Model.boundModel(),
		FixedOhms: v.cfg.FixedOhms,
		Vdd:       Vdd,
	})
	if err != nil {
		return 0, false
	}
	margin := v.cfg.GlitchThresholdFrac * Vdd
	if b*(1+v.cfg.ScreenSafetyFactor) < margin {
		return b, true
	}
	if b < margin {
		tr.Add(obs.CtrScreenNearThreshold, 1)
	}
	return 0, false
}

// attemptCluster tries one ladder rung: both glitch polarities, threshold
// classification, and (when configured) the transistor-level recheck. A
// panic anywhere inside — linear algebra included — is recovered into an
// ErrPanic-wrapped failure. A nil violation with nil error means the victim
// is clean at this threshold.
func (v *Verifier) attemptCluster(ctx context.Context, stage FallbackStage, baseOpts glitch.Options,
	tr *obs.Trace, u clusterUnit, victim string) (viol *Violation, recheckErr error, err error) {
	cl := u.cl
	defer func() {
		if r := recover(); r != nil {
			viol, recheckErr = nil, nil
			err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	if v.faultHook != nil {
		if herr := v.faultHook(victim, stage); herr != nil {
			return nil, nil, herr
		}
	}
	// The process-global fault-injection registry (internal/faultinject):
	// nil-hook cost is one atomic load; an injected panic lands in the
	// recover above exactly like a numerics blowup would.
	if herr := faultinject.FireCluster(victim, stage.String()); herr != nil {
		return nil, nil, herr
	}
	opts := baseOpts
	opts.Trace = tr
	switch stage {
	case StageRegularized:
		opts.Gmin = regularizedGmin
		if opts.Order > 0 {
			opts.Order = opts.Order / 2
			if opts.Order < 2 {
				opts.Order = 2
			}
		} else {
			opts.OrderFactor = 3 // half the default 6·ports
		}
	case StageDirectMNA:
		opts.DirectMNA = true
	}
	eng := glitch.NewEngine(u.par, opts)
	worst := Violation{Victim: victim}
	// Both polarities in one pass: the reduction and the prepared
	// diagonalization are shared, and (pattern permitting) the two
	// transients advance as one multi-RHS sweep. Bit-identical to the
	// historical one-polarity-at-a-time loop.
	rres, fres, aerr := eng.AnalyzeGlitchPairContext(ctx, cl)
	if aerr != nil {
		return nil, nil, fmt.Errorf("xtverify: victim %s: %w", victim, aerr)
	}
	for _, res := range []*glitch.Result{rres, fres} {
		frac := res.PeakV / Vdd
		if frac < 0 {
			frac = -frac
		}
		if frac > worst.FracVdd {
			worst.FracVdd = frac
			worst.PeakV = res.PeakV
			worst.Aggressors = res.ActiveAggressors
		}
	}
	if worst.FracVdd < v.cfg.GlitchThresholdFrac {
		return nil, nil, nil
	}
	for _, r := range u.des.Nets[cl.Victim].Receivers {
		if r.Cell.Sequential {
			worst.LatchInput = true
			break
		}
	}
	// Noise-margin classification: does any receiver amplify the glitch
	// past its unity-gain corner?
	heldLow := worst.PeakV > 0
	for _, r := range u.des.Nets[cl.Victim].Receivers {
		vtc, verr := cells.CharacterizeVTC(r.Cell)
		if verr != nil {
			return nil, nil, fmt.Errorf("xtverify: VTC of %s: %w", r.Cell.Name, verr)
		}
		if vtc.GlitchPropagates(worst.PeakV, heldLow) {
			worst.Propagates = true
			break
		}
	}
	if v.cfg.TransistorRecheck {
		// Second-pass audit (the paper's future-work extension): confirm
		// the flagged violation at transistor level in its worst polarity.
		ref, rerr := eng.SPICEGlitch(cl, worst.PeakV > 0, true)
		if rerr != nil {
			recheckErr = fmt.Errorf("xtverify: transistor recheck of %s: %w", victim, rerr)
		} else {
			worst.ConfirmedPeakV = ref.PeakV
			frac := ref.PeakV / Vdd
			if frac < 0 {
				frac = -frac
			}
			worst.Confirmed = frac >= v.cfg.GlitchThresholdFrac
		}
	}
	return &worst, recheckErr, nil
}

// classifyClusterErr maps internal-layer failures onto the package's typed
// sentinels so ladder attempts carry a stable, matchable cause.
func classifyClusterErr(err error) error {
	switch {
	case errors.Is(err, context.Canceled):
		// Parent-context cancellation — a client disconnect, a daemon
		// drain, the engine's own fail-fast cancel — is not a deadline:
		// the cluster never got its time budget, so it must not be
		// reported (or retried) as a timeout.
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	case errors.Is(err, ErrPanic):
		return err
	case errors.Is(err, sympvl.ErrNotSPD),
		errors.Is(err, sympvl.ErrNoPortCoupling),
		errors.Is(err, sympvl.ErrEmptySystem),
		errors.Is(err, romsim.ErrUnstableModel):
		return fmt.Errorf("%w: %v", ErrReduction, err)
	case errors.Is(err, romsim.ErrNewtonDiverged):
		return fmt.Errorf("%w: %v", ErrNewtonDiverged, err)
	default:
		return err
	}
}
