// Package sympvl implements the symmetric matrix-Padé via Lanczos (SyMPVL)
// reduced-order modeling algorithm of Freund and Feldmann for multi-port RC
// interconnect, as used in the paper's Section 3.
//
// Starting from the MNA description G·v + C·dv/dt = B·i with G, C symmetric
// positive (semi)definite, the algorithm:
//
//  1. factors G = Fᵀ·F by (skyline) Cholesky with RCM preordering,
//  2. changes variables x = F·v to obtain x + A·dx/dt = L·i with
//     A = F⁻ᵀ·C·F⁻¹ and L = F⁻ᵀ·B,
//  3. runs a block Lanczos process (with full reorthogonalization and
//     rank-revealing deflation) on A started from L, and
//  4. projects: T = Vᵀ·A·V, ρ = Vᵀ·L.
//
// The reduced system x̂ + T·dx̂/dt = ρ·i reproduces the first ⌊q/p⌋ block
// moments of the port impedance matrix Z(s) = Bᵀ(G+sC)⁻¹B (matrix-Padé
// property), and because T is symmetric positive semidefinite the reduced
// model is stable and passive by construction.
package sympvl

import (
	"errors"
	"fmt"
	"math"

	"xtverify/internal/matrix"
	"xtverify/internal/mna"
	"xtverify/internal/obs"
)

// DeflationTol is the relative tolerance below which a candidate Lanczos
// vector is declared linearly dependent and deflated.
const DeflationTol = 1e-10

// Typed breakdown reasons. Callers (the chip-level fallback ladder in
// particular) match these with errors.Is to decide whether a retry with
// Gmin regularization or a direct MNA transient can still save the cluster.
var (
	// ErrNotSPD reports that the Cholesky factorization of G broke down:
	// the conductance matrix is not (numerically) positive definite.
	ErrNotSPD = errors.New("sympvl: G is not positive definite")
	// ErrEmptySystem reports a degenerate cluster with no nodes or ports.
	ErrEmptySystem = errors.New("sympvl: empty system")
	// ErrNoPortCoupling reports a zero start block: no port couples into
	// the network, so there is nothing to reduce.
	ErrNoPortCoupling = errors.New("sympvl: start block L is zero — no port couples to the network")
)

// Model is a reduced-order model of a multi-port RC cluster.
//
// The reduced dynamics are x̂ + T·dx̂/dt = Rho·i(t) with port voltages
// v_port = Rhoᵀ·x̂ (paper Eq. 3).
type Model struct {
	// T is the q×q symmetric projection of A.
	T *matrix.Dense
	// Rho is the q×p projection of the start block L.
	Rho *matrix.Dense
	// Order is q, the number of reduced states.
	Order int
	// Ports is p.
	Ports int
	// PortNames mirrors the MNA port naming.
	PortNames []string
	// BlockIterations is the number of completed block Lanczos steps.
	BlockIterations int
	// Deflated counts candidate vectors dropped for linear dependence.
	Deflated int
	// FullRank reports whether the Krylov space was exhausted (the model is
	// then exact up to roundoff).
	Exhausted bool

	// Lazily cached eigendecomposition for frequency-domain evaluation.
	eigVals []float64
	eigH    *matrix.Dense // Qᵀ·Rho
}

// Options tunes the reduction.
type Options struct {
	// Order is the maximum reduced order q. If zero, 4·p is used.
	Order int
	// Gmin overrides the MNA grounding conductance used during assembly
	// diagnostics (informational only here; assembly happens in mna).
	Gmin float64
	// Check, when non-nil, is polled between block Lanczos iterations;
	// a non-nil return aborts the reduction with that error. Used to
	// honor context cancellation and per-cluster deadlines.
	Check func() error
	// Workspace, when non-nil, supplies reusable scratch buffers so repeated
	// reductions allocate almost nothing. A nil Workspace makes Reduce
	// allocate a private one per call.
	Workspace *Workspace
	// Trace, when non-nil, receives the reduction's counters (block Lanczos
	// iterations). Counting happens here rather than in the caller so that
	// memoized reductions attribute work to whoever actually performed it.
	Trace *obs.Trace
}

// Workspace holds the scratch buffers a reduction needs — the Lanczos basis
// and image arenas, the candidate block, the start-block columns, and the two
// solver temporaries. The chip-level engine reduces thousands of clusters per
// run; handing every Reduce call the same Workspace replaces per-call slice
// churn with a handful of arenas that grow to the largest cluster seen and
// stay there.
//
// A Workspace may be reused across systems of different sizes (buffers are
// re-sized on demand) but must never be shared between concurrent Reduce
// calls.
type Workspace struct {
	n, maxBasis, p int

	tmp1, tmp2 []float64 // applyA solver temporaries

	// Flat backing arenas with [][]float64 column views over them. maxBasis
	// is order+p: the start block is appended without a budget clamp, so the
	// basis can legitimately overshoot order by up to p−1 vectors.
	basisData, aBasisData, candData, lData []float64
	basis, aBasis, cand, lcols             [][]float64
}

// prepare sizes the workspace for an n-node, p-port reduction of maximum
// order q. It is a no-op when the dimensions match the previous call.
func (w *Workspace) prepare(n, order, p int) {
	maxBasis := order + p
	if w.n == n && w.maxBasis == maxBasis && w.p == p {
		return
	}
	w.n, w.maxBasis, w.p = n, maxBasis, p
	w.tmp1 = growFloats(w.tmp1, n)
	w.tmp2 = growFloats(w.tmp2, n)
	w.basisData = growFloats(w.basisData, maxBasis*n)
	w.aBasisData = growFloats(w.aBasisData, maxBasis*n)
	w.candData = growFloats(w.candData, p*n)
	w.lData = growFloats(w.lData, p*n)
	w.basis = columnViews(w.basis, w.basisData, maxBasis, n)
	w.aBasis = columnViews(w.aBasis, w.aBasisData, maxBasis, n)
	w.cand = columnViews(w.cand, w.candData, p, n)
	w.lcols = columnViews(w.lcols, w.lData, p, n)
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func columnViews(views [][]float64, data []float64, k, n int) [][]float64 {
	if cap(views) < k {
		views = make([][]float64, k)
	}
	views = views[:k]
	for i := range views {
		views[i] = data[i*n : (i+1)*n]
	}
	return views
}

// Reduce builds a reduced-order model of the assembled MNA system.
func Reduce(sys *mna.System, opt Options) (*Model, error) {
	n, p := sys.N, sys.P
	if n == 0 || p == 0 {
		return nil, fmt.Errorf("%w (n=%d, p=%d)", ErrEmptySystem, n, p)
	}
	order := opt.Order
	if order <= 0 {
		order = 4 * p
	}
	if order > n {
		order = n
	}

	ws := opt.Workspace
	if ws == nil {
		ws = &Workspace{}
	}
	ws.prepare(n, order, p)

	// RCM preorder G for a small skyline profile; C and B follow the same
	// permutation so the Lanczos iteration is performed in permuted space.
	// The projected quantities (T, Rho) are invariant to the permutation.
	perm := matrix.RCM(sys.G.Adjacency())
	gp := sys.G.Permuted(perm)
	cp := sys.C.Permuted(perm)

	tmpl := matrix.NewSkylineTemplate(gp.Adjacency(), true)
	gsky := tmpl.NewMatrix()
	gp.ForEach(func(i, j int, v float64) {
		if j > i {
			return
		}
		gsky.Add(i, j, v)
	})
	if err := gsky.FactorCholesky(); err != nil {
		return nil, fmt.Errorf("%w (add Gmin?): %v", ErrNotSPD, err)
	}

	// applyATo computes dst = A·v = L⁻¹·C·L⁻ᵀ·v where G = L·Lᵀ (so F = Lᵀ).
	applyATo := func(dst, v []float64) {
		gsky.SolveLowerTTo(ws.tmp1, v)  // F⁻¹·v
		cp.MulVecTo(ws.tmp2, ws.tmp1)   // C·(F⁻¹ v)
		gsky.SolveLowerTo(dst, ws.tmp2) // F⁻ᵀ·(C F⁻¹ v)
	}

	// Start block Lmat = F⁻ᵀ·B = L⁻¹·B, built straight into the workspace:
	// the permuted right-hand side lands in lcols[j] (perm is a bijection, so
	// every position is written and no zero-fill is needed) and the forward
	// solve runs in place on top of it.
	for j := 0; j < p; j++ {
		lj := ws.lcols[j]
		for i := 0; i < n; i++ {
			lj[perm[i]] = sys.B.At(i, j)
		}
		gsky.SolveLowerTo(lj, lj)
	}

	// Block Lanczos with full reorthogonalization. The basis V and the images
	// A·V accumulate in the workspace arenas so the projection T = Vᵀ(A·V)
	// can be formed exactly.
	deflated := 0
	exhausted := false

	// Orthonormalize the start block (copied so lcols stays intact for the
	// Rho projection at the end).
	for j := 0; j < p; j++ {
		copy(ws.cand[j], ws.lcols[j])
	}
	rank := matrix.OrthonormalizeColumns(ws.cand[:p], DeflationTol)
	deflated += p - rank
	if rank == 0 {
		return nil, ErrNoPortCoupling
	}
	// The current block lives in cand[:curLen]; each iteration copies it into
	// the basis arena, images it, then rebuilds cand as the next candidates.
	curLen := rank
	basisLen := 0
	iters := 0
	for basisLen < order && curLen > 0 {
		if opt.Check != nil {
			if err := opt.Check(); err != nil {
				return nil, err
			}
		}
		iters++
		// Register the current block and apply A to it.
		blockLo := basisLen
		for j := 0; j < curLen; j++ {
			copy(ws.basis[basisLen], ws.cand[j])
			applyATo(ws.aBasis[basisLen], ws.basis[basisLen])
			basisLen++
		}
		if basisLen >= order {
			break
		}
		// Next candidate block: images orthogonalized against everything so
		// far (full reorthogonalization keeps the basis numerically
		// orthonormal, which the projection step relies on).
		for j := 0; j < curLen; j++ {
			copy(ws.cand[j], ws.aBasis[blockLo+j])
		}
		orthoAgainst(ws.cand[:curLen], ws.basis[:basisLen])
		r := matrix.OrthonormalizeColumns(ws.cand[:curLen], DeflationTol)
		deflated += curLen - r
		if r == 0 {
			exhausted = true
			break
		}
		if budget := order - basisLen; r > budget {
			r = budget
		}
		curLen = r
	}

	q := basisLen
	basis, aBasis := ws.basis[:q], ws.aBasis[:q]
	model := &Model{
		T:               matrix.NewDense(q, q),
		Rho:             matrix.NewDense(q, p),
		Order:           q,
		Ports:           p,
		PortNames:       append([]string(nil), sys.PortNames...),
		BlockIterations: iters,
		Deflated:        deflated,
		Exhausted:       exhausted,
	}
	// T = Vᵀ·(A·V), symmetrized to kill roundoff asymmetry.
	for i := 0; i < q; i++ {
		for j := i; j < q; j++ {
			tij := matrix.Dot(basis[i], aBasis[j])
			tji := matrix.Dot(basis[j], aBasis[i])
			v := 0.5 * (tij + tji)
			model.T.Set(i, j, v)
			model.T.Set(j, i, v)
		}
	}
	// Rho = Vᵀ·Lmat.
	for i := 0; i < q; i++ {
		for j := 0; j < p; j++ {
			model.Rho.Set(i, j, matrix.Dot(basis[i], ws.lcols[j]))
		}
	}
	opt.Trace.Add(obs.CtrLanczosIterations, int64(iters))
	return model, nil
}

// orthoAgainst removes from each candidate column its projection onto the
// given orthonormal vectors (two passes), in place.
func orthoAgainst(cand, basis [][]float64) {
	for _, col := range cand {
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				c := matrix.Dot(b, col)
				matrix.Axpy(-c, b, col)
			}
		}
	}
}

// WithPortNames returns a shallow copy of the model with PortNames replaced
// and the lazy eigendecomposition cache cleared. The ROM cache uses it to
// share one reduction between clusters that are structurally identical up to
// net naming: T and Rho are immutable after construction and safe to share,
// while each copy lazily rebuilds its own eigendecomposition so concurrent
// holders never race on the cache fields.
func (m *Model) WithPortNames(names []string) *Model {
	out := *m
	out.PortNames = append([]string(nil), names...)
	out.eigVals = nil
	out.eigH = nil
	return &out
}

// DCImpedance returns the reduced model's DC port impedance matrix
// Z(0) = Rhoᵀ·Rho, which the Padé property makes equal (to roundoff) to the
// exact Bᵀ·G⁻¹·B.
func (m *Model) DCImpedance() *matrix.Dense {
	return m.Rho.T().Mul(m.Rho)
}

// Moment returns the k-th reduced block moment Rhoᵀ·Tᵏ·Rho of the port
// impedance expansion Z(s) = Σ (−s)ᵏ·mₖ.
func (m *Model) Moment(k int) *matrix.Dense {
	acc := m.Rho.Clone()
	for i := 0; i < k; i++ {
		acc = m.T.Mul(acc)
	}
	return m.Rho.T().Mul(acc)
}

// StabilityReport summarizes the reduced model's pole structure.
type StabilityReport struct {
	// Eigenvalues of T in ascending order. Poles of the reduced model are
	// s = −1/λ for λ > 0.
	Eigenvalues []float64
	// Stable is true when no eigenvalue is negative beyond roundoff.
	Stable bool
	// MinEig and MaxEig bound the time-constant range.
	MinEig, MaxEig float64
}

// CheckStability eigen-decomposes T and verifies positive semidefiniteness,
// the structural guarantee of SyMPVL (paper references [3], [4]).
func (m *Model) CheckStability() (*StabilityReport, error) {
	w, _, err := matrix.EigenSym(m.T)
	if err != nil {
		return nil, err
	}
	rep := &StabilityReport{Eigenvalues: w, Stable: true}
	if len(w) > 0 {
		rep.MinEig, rep.MaxEig = w[0], w[len(w)-1]
		tol := 1e-12 * math.Max(1, math.Abs(w[len(w)-1]))
		if w[0] < -tol {
			rep.Stable = false
		}
	}
	return rep, nil
}

// ExactMoments computes the first k exact block moments of the original
// system, mₖ = Bᵀ·G⁻¹·(C·G⁻¹)ᵏ·B, by dense factorization. Intended for
// validation on small systems only.
func ExactMoments(sys *mna.System, k int) ([]*matrix.Dense, error) {
	gd := sys.G.Dense()
	ch, err := matrix.FactorCholesky(gd)
	if err != nil {
		return nil, fmt.Errorf("sympvl: exact moments: %w", err)
	}
	n, p := sys.N, sys.P
	cur := matrix.NewDense(n, p) // G⁻¹·(C·G⁻¹)ᵏ·B column block
	for j := 0; j < p; j++ {
		cur.SetCol(j, ch.Solve(sys.B.Col(j)))
	}
	out := make([]*matrix.Dense, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, sys.B.T().Mul(cur))
		if i == k-1 {
			break
		}
		next := matrix.NewDense(n, p)
		for j := 0; j < p; j++ {
			next.SetCol(j, ch.Solve(sys.C.MulVec(cur.Col(j))))
		}
		cur = next
	}
	return out, nil
}
