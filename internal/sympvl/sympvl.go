// Package sympvl implements the symmetric matrix-Padé via Lanczos (SyMPVL)
// reduced-order modeling algorithm of Freund and Feldmann for multi-port RC
// interconnect, as used in the paper's Section 3.
//
// Starting from the MNA description G·v + C·dv/dt = B·i with G, C symmetric
// positive (semi)definite, the algorithm:
//
//  1. factors G = Fᵀ·F by (skyline) Cholesky with RCM preordering,
//  2. changes variables x = F·v to obtain x + A·dx/dt = L·i with
//     A = F⁻ᵀ·C·F⁻¹ and L = F⁻ᵀ·B,
//  3. runs a block Lanczos process (with full reorthogonalization and
//     rank-revealing deflation) on A started from L, and
//  4. projects: T = Vᵀ·A·V, ρ = Vᵀ·L.
//
// The reduced system x̂ + T·dx̂/dt = ρ·i reproduces the first ⌊q/p⌋ block
// moments of the port impedance matrix Z(s) = Bᵀ(G+sC)⁻¹B (matrix-Padé
// property), and because T is symmetric positive semidefinite the reduced
// model is stable and passive by construction.
package sympvl

import (
	"errors"
	"fmt"
	"math"

	"xtverify/internal/matrix"
	"xtverify/internal/mna"
)

// DeflationTol is the relative tolerance below which a candidate Lanczos
// vector is declared linearly dependent and deflated.
const DeflationTol = 1e-10

// Typed breakdown reasons. Callers (the chip-level fallback ladder in
// particular) match these with errors.Is to decide whether a retry with
// Gmin regularization or a direct MNA transient can still save the cluster.
var (
	// ErrNotSPD reports that the Cholesky factorization of G broke down:
	// the conductance matrix is not (numerically) positive definite.
	ErrNotSPD = errors.New("sympvl: G is not positive definite")
	// ErrEmptySystem reports a degenerate cluster with no nodes or ports.
	ErrEmptySystem = errors.New("sympvl: empty system")
	// ErrNoPortCoupling reports a zero start block: no port couples into
	// the network, so there is nothing to reduce.
	ErrNoPortCoupling = errors.New("sympvl: start block L is zero — no port couples to the network")
)

// Model is a reduced-order model of a multi-port RC cluster.
//
// The reduced dynamics are x̂ + T·dx̂/dt = Rho·i(t) with port voltages
// v_port = Rhoᵀ·x̂ (paper Eq. 3).
type Model struct {
	// T is the q×q symmetric projection of A.
	T *matrix.Dense
	// Rho is the q×p projection of the start block L.
	Rho *matrix.Dense
	// Order is q, the number of reduced states.
	Order int
	// Ports is p.
	Ports int
	// PortNames mirrors the MNA port naming.
	PortNames []string
	// BlockIterations is the number of completed block Lanczos steps.
	BlockIterations int
	// Deflated counts candidate vectors dropped for linear dependence.
	Deflated int
	// FullRank reports whether the Krylov space was exhausted (the model is
	// then exact up to roundoff).
	Exhausted bool

	// Lazily cached eigendecomposition for frequency-domain evaluation.
	eigVals []float64
	eigH    *matrix.Dense // Qᵀ·Rho
}

// Options tunes the reduction.
type Options struct {
	// Order is the maximum reduced order q. If zero, 4·p is used.
	Order int
	// Gmin overrides the MNA grounding conductance used during assembly
	// diagnostics (informational only here; assembly happens in mna).
	Gmin float64
	// Check, when non-nil, is polled between block Lanczos iterations;
	// a non-nil return aborts the reduction with that error. Used to
	// honor context cancellation and per-cluster deadlines.
	Check func() error
}

// Reduce builds a reduced-order model of the assembled MNA system.
func Reduce(sys *mna.System, opt Options) (*Model, error) {
	n, p := sys.N, sys.P
	if n == 0 || p == 0 {
		return nil, fmt.Errorf("%w (n=%d, p=%d)", ErrEmptySystem, n, p)
	}
	order := opt.Order
	if order <= 0 {
		order = 4 * p
	}
	if order > n {
		order = n
	}

	// RCM preorder G for a small skyline profile; C and B follow the same
	// permutation so the Lanczos iteration is performed in permuted space.
	// The projected quantities (T, Rho) are invariant to the permutation.
	perm := matrix.RCM(sys.G.Adjacency())
	gp := sys.G.Permuted(perm)
	cp := sys.C.Permuted(perm)
	bp := permuteRows(sys.B, perm)

	tmpl := matrix.NewSkylineTemplate(gp.Adjacency(), true)
	gsky := tmpl.NewMatrix()
	for _, e := range gp.Entries() {
		if e.Col > e.Row {
			continue
		}
		gsky.Add(e.Row, e.Col, e.Val)
	}
	if err := gsky.FactorCholesky(); err != nil {
		return nil, fmt.Errorf("%w (add Gmin?): %v", ErrNotSPD, err)
	}

	// applyA computes A·v = L⁻¹·C·L⁻ᵀ·v where G = L·Lᵀ (so F = Lᵀ).
	applyA := func(v []float64) []float64 {
		t := gsky.SolveLowerT(v)  // F⁻¹·v
		u := cp.MulVec(t)         // C·(F⁻¹ v)
		return gsky.SolveLower(u) // F⁻ᵀ·(C F⁻¹ v)
	}

	// Start block Lmat = F⁻ᵀ·B = L⁻¹·B.
	lmat := matrix.NewDense(n, p)
	for j := 0; j < p; j++ {
		lmat.SetCol(j, gsky.SolveLower(bp.Col(j)))
	}

	// Block Lanczos with full reorthogonalization. We accumulate the basis V
	// and the images A·V so the projection T = Vᵀ(A·V) can be formed exactly.
	basis := make([][]float64, 0, order)  // orthonormal Lanczos vectors
	aBasis := make([][]float64, 0, order) // A applied to each basis vector
	deflated := 0
	exhausted := false

	// Orthonormalize the start block.
	v0, _, rank := matrix.OrthonormalizeBlock(lmat, DeflationTol)
	deflated += p - rank
	if rank == 0 {
		return nil, ErrNoPortCoupling
	}
	current := make([][]float64, rank)
	for j := 0; j < rank; j++ {
		current[j] = v0.Col(j)
	}
	iters := 0
	for len(basis) < order && len(current) > 0 {
		if opt.Check != nil {
			if err := opt.Check(); err != nil {
				return nil, err
			}
		}
		iters++
		// Apply A to the current block and register the vectors.
		images := make([][]float64, len(current))
		for j, v := range current {
			images[j] = applyA(v)
		}
		basis = append(basis, current...)
		aBasis = append(aBasis, images...)
		if len(basis) >= order {
			break
		}
		// Next candidate block: images orthogonalized against everything so
		// far (full reorthogonalization keeps the basis numerically
		// orthonormal, which the projection step relies on).
		cand := matrix.NewDense(n, len(images))
		for j, w := range images {
			cand.SetCol(j, matrix.CloneVec(w))
		}
		orthoAgainst(cand, basis)
		q, _, r := matrix.OrthonormalizeBlock(cand, DeflationTol)
		deflated += len(images) - r
		if r == 0 {
			exhausted = true
			break
		}
		next := make([][]float64, 0, r)
		budget := order - len(basis)
		for j := 0; j < r && j < budget; j++ {
			next = append(next, q.Col(j))
		}
		current = next
	}

	q := len(basis)
	model := &Model{
		T:               matrix.NewDense(q, q),
		Rho:             matrix.NewDense(q, p),
		Order:           q,
		Ports:           p,
		PortNames:       append([]string(nil), sys.PortNames...),
		BlockIterations: iters,
		Deflated:        deflated,
		Exhausted:       exhausted,
	}
	// T = Vᵀ·(A·V), symmetrized to kill roundoff asymmetry.
	for i := 0; i < q; i++ {
		for j := i; j < q; j++ {
			tij := matrix.Dot(basis[i], aBasis[j])
			tji := matrix.Dot(basis[j], aBasis[i])
			v := 0.5 * (tij + tji)
			model.T.Set(i, j, v)
			model.T.Set(j, i, v)
		}
	}
	// Rho = Vᵀ·Lmat.
	for i := 0; i < q; i++ {
		for j := 0; j < p; j++ {
			model.Rho.Set(i, j, matrix.Dot(basis[i], lmat.Col(j)))
		}
	}
	return model, nil
}

// orthoAgainst removes from each column of cand its projection onto the
// given orthonormal vectors (two passes).
func orthoAgainst(cand *matrix.Dense, basis [][]float64) {
	for j := 0; j < cand.Cols(); j++ {
		col := cand.Col(j)
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				c := matrix.Dot(b, col)
				matrix.Axpy(-c, b, col)
			}
		}
		cand.SetCol(j, col)
	}
}

func permuteRows(b *matrix.Dense, perm []int) *matrix.Dense {
	out := matrix.NewDense(b.Rows(), b.Cols())
	for i := 0; i < b.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			out.Set(perm[i], j, b.At(i, j))
		}
	}
	return out
}

// DCImpedance returns the reduced model's DC port impedance matrix
// Z(0) = Rhoᵀ·Rho, which the Padé property makes equal (to roundoff) to the
// exact Bᵀ·G⁻¹·B.
func (m *Model) DCImpedance() *matrix.Dense {
	return m.Rho.T().Mul(m.Rho)
}

// Moment returns the k-th reduced block moment Rhoᵀ·Tᵏ·Rho of the port
// impedance expansion Z(s) = Σ (−s)ᵏ·mₖ.
func (m *Model) Moment(k int) *matrix.Dense {
	acc := m.Rho.Clone()
	for i := 0; i < k; i++ {
		acc = m.T.Mul(acc)
	}
	return m.Rho.T().Mul(acc)
}

// StabilityReport summarizes the reduced model's pole structure.
type StabilityReport struct {
	// Eigenvalues of T in ascending order. Poles of the reduced model are
	// s = −1/λ for λ > 0.
	Eigenvalues []float64
	// Stable is true when no eigenvalue is negative beyond roundoff.
	Stable bool
	// MinEig and MaxEig bound the time-constant range.
	MinEig, MaxEig float64
}

// CheckStability eigen-decomposes T and verifies positive semidefiniteness,
// the structural guarantee of SyMPVL (paper references [3], [4]).
func (m *Model) CheckStability() (*StabilityReport, error) {
	w, _, err := matrix.EigenSym(m.T)
	if err != nil {
		return nil, err
	}
	rep := &StabilityReport{Eigenvalues: w, Stable: true}
	if len(w) > 0 {
		rep.MinEig, rep.MaxEig = w[0], w[len(w)-1]
		tol := 1e-12 * math.Max(1, math.Abs(w[len(w)-1]))
		if w[0] < -tol {
			rep.Stable = false
		}
	}
	return rep, nil
}

// ExactMoments computes the first k exact block moments of the original
// system, mₖ = Bᵀ·G⁻¹·(C·G⁻¹)ᵏ·B, by dense factorization. Intended for
// validation on small systems only.
func ExactMoments(sys *mna.System, k int) ([]*matrix.Dense, error) {
	gd := sys.G.Dense()
	ch, err := matrix.FactorCholesky(gd)
	if err != nil {
		return nil, fmt.Errorf("sympvl: exact moments: %w", err)
	}
	n, p := sys.N, sys.P
	cur := matrix.NewDense(n, p) // G⁻¹·(C·G⁻¹)ᵏ·B column block
	for j := 0; j < p; j++ {
		cur.SetCol(j, ch.Solve(sys.B.Col(j)))
	}
	out := make([]*matrix.Dense, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, sys.B.T().Mul(cur))
		if i == k-1 {
			break
		}
		next := matrix.NewDense(n, p)
		for j := 0; j < p; j++ {
			next.SetCol(j, ch.Solve(sys.C.MulVec(cur.Col(j))))
		}
		cur = next
	}
	return out, nil
}
