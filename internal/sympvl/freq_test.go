package sympvl

import (
	"math"
	"math/cmplx"
	"testing"
)

// freqGrid spans DC-adjacent to well past the interconnect poles.
var freqGrid = []float64{1e6, 1e8, 1e9, 5e9, 2e10, 1e11}

func TestImpedanceMatchesExactAcrossFrequency(t *testing.T) {
	sys := assemble(t, coupledLines(2, 8))
	m, err := Reduce(sys, Options{Order: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range freqGrid {
		omega := 2 * math.Pi * f
		zr, err := m.Impedance(omega)
		if err != nil {
			t.Fatal(err)
		}
		ze, err := ExactImpedance(sys, omega)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < sys.P; a++ {
			for b := 0; b < sys.P; b++ {
				num := cmplx.Abs(zr.At(a, b) - ze.At(a, b))
				den := cmplx.Abs(ze.At(a, b)) + 1
				if num/den > 2e-3 {
					t.Errorf("f=%.2g Hz: Z(%d,%d) rel err %.3e", f, a, b, num/den)
				}
			}
		}
	}
}

func TestImpedanceExactAtFullOrder(t *testing.T) {
	sys := assemble(t, coupledLines(2, 4))
	m, err := Reduce(sys, Options{Order: sys.N})
	if err != nil {
		t.Fatal(err)
	}
	omega := 2 * math.Pi * 3e9
	zr, err := m.Impedance(omega)
	if err != nil {
		t.Fatal(err)
	}
	ze, err := ExactImpedance(sys, omega)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < sys.P; a++ {
		for b := 0; b < sys.P; b++ {
			num := cmplx.Abs(zr.At(a, b) - ze.At(a, b))
			den := cmplx.Abs(ze.At(a, b)) + 1e-12
			if num/den > 1e-6 {
				t.Errorf("full-order Z(%d,%d) rel err %.3e", a, b, num/den)
			}
		}
	}
}

func TestImpedancePassivityNecessaryCondition(t *testing.T) {
	// A passive multiport has positive-real impedance; in particular every
	// driving-point impedance must have non-negative real part at all
	// frequencies. SyMPVL guarantees this by construction — verify it.
	sys := assemble(t, coupledLines(3, 10))
	m, err := Reduce(sys, Options{Order: 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range freqGrid {
		z, err := m.Impedance(2 * math.Pi * f)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < sys.P; k++ {
			if re := real(z.At(k, k)); re < -1e-9 {
				t.Errorf("f=%.2g: Re Z(%d,%d) = %g < 0 — passivity violated", f, k, k, re)
			}
		}
	}
}

func TestImpedanceReciprocity(t *testing.T) {
	// RC interconnect is reciprocal: Z must be (complex) symmetric.
	sys := assemble(t, coupledLines(2, 6))
	m, err := Reduce(sys, Options{Order: 10})
	if err != nil {
		t.Fatal(err)
	}
	z, err := m.Impedance(2 * math.Pi * 1e9)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < sys.P; a++ {
		for b := a + 1; b < sys.P; b++ {
			if d := cmplx.Abs(z.At(a, b) - z.At(b, a)); d > 1e-9*cmplx.Abs(z.At(a, b)) {
				t.Errorf("Z(%d,%d) != Z(%d,%d): diff %g", a, b, b, a, d)
			}
		}
	}
}

func TestImpedanceRollsOff(t *testing.T) {
	// The RC network's transfer impedance between distinct ports must fall
	// with frequency well past the dominant pole.
	sys := assemble(t, coupledLines(2, 8))
	m, err := Reduce(sys, Options{Order: 12})
	if err != nil {
		t.Fatal(err)
	}
	zLow, err := m.Impedance(2 * math.Pi * 1e6)
	if err != nil {
		t.Fatal(err)
	}
	zHigh, err := m.Impedance(2 * math.Pi * 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(zHigh.At(0, 0)) >= cmplx.Abs(zLow.At(0, 0)) {
		t.Errorf("driving-point impedance should roll off: %g vs %g",
			cmplx.Abs(zHigh.At(0, 0)), cmplx.Abs(zLow.At(0, 0)))
	}
}
