package sympvl

import (
	"fmt"
	"math"
	"testing"

	"xtverify/internal/circuit"
	"xtverify/internal/matrix"
	"xtverify/internal/mna"
)

// coupledLines builds nlines parallel RC lines of nseg segments each, with
// nearest-neighbour coupling, one driver port per line and a receiver port
// on line 0.
func coupledLines(nlines, nseg int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("lines%dx%d", nlines, nseg))
	nodes := make([][]circuit.NodeID, nlines)
	for l := 0; l < nlines; l++ {
		nodes[l] = make([]circuit.NodeID, nseg+1)
		for s := 0; s <= nseg; s++ {
			nodes[l][s] = c.Node(fmt.Sprintf("l%d_s%d", l, s))
		}
		c.AddPort(fmt.Sprintf("drv%d", l), nodes[l][0], circuit.PortDriver, l)
		for s := 0; s < nseg; s++ {
			c.AddResistor(fmt.Sprintf("r%d_%d", l, s), nodes[l][s], nodes[l][s+1], 25)
			c.AddCapacitor(fmt.Sprintf("c%d_%d", l, s), nodes[l][s+1], circuit.Ground, 2e-15)
		}
	}
	for l := 0; l+1 < nlines; l++ {
		for s := 1; s <= nseg; s++ {
			c.AddCoupling(fmt.Sprintf("cc%d_%d", l, s), nodes[l][s], nodes[l+1][s], 4e-15)
		}
	}
	c.AddPort("rcv0", nodes[0][nseg], circuit.PortReceiver, 0)
	return c
}

func assemble(t *testing.T, c *circuit.Circuit) *mna.System {
	t.Helper()
	sys, err := mna.FromCircuit(c, mna.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestReduceBasicShape(t *testing.T) {
	sys := assemble(t, coupledLines(3, 10))
	m, err := Reduce(sys, Options{Order: 12})
	if err != nil {
		t.Fatal(err)
	}
	if m.Order == 0 || m.Order > 12 {
		t.Errorf("order = %d, want in (0,12]", m.Order)
	}
	if m.Ports != sys.P {
		t.Errorf("ports = %d, want %d", m.Ports, sys.P)
	}
	if !m.T.IsSymmetric(1e-9) {
		t.Error("T must be symmetric")
	}
}

func TestMomentMatching(t *testing.T) {
	// The Padé property: with m block iterations the reduced model matches
	// 2m block moments of the exact impedance expansion.
	sys := assemble(t, coupledLines(2, 8))
	m, err := Reduce(sys, Options{Order: 9}) // 3 ports → 3 block iterations
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMoments(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		red := m.Moment(k)
		scale := exact[k].MaxAbs()
		diff := red.SubMat(exact[k]).MaxAbs()
		if diff > 1e-6*scale {
			t.Errorf("moment %d mismatch: rel err %.3e", k, diff/scale)
		}
	}
}

func TestDCImpedanceMatchesExact(t *testing.T) {
	sys := assemble(t, coupledLines(2, 6))
	m, err := Reduce(sys, Options{Order: 8})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMoments(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	z0 := m.DCImpedance()
	diff := z0.SubMat(exact[0]).MaxAbs()
	if diff > 1e-6*exact[0].MaxAbs() {
		t.Errorf("DC impedance rel err %.3e", diff/exact[0].MaxAbs())
	}
}

func TestStabilityGuarantee(t *testing.T) {
	sys := assemble(t, coupledLines(4, 12))
	m, err := Reduce(sys, Options{Order: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.CheckStability()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable {
		t.Errorf("reduced model unstable: min eig %g", rep.MinEig)
	}
	if len(rep.Eigenvalues) != m.Order {
		t.Errorf("eigenvalue count %d, want %d", len(rep.Eigenvalues), m.Order)
	}
}

func TestExhaustionGivesExactModel(t *testing.T) {
	// Reducing to full order must exhaust the Krylov space and reproduce all
	// available moments exactly.
	sys := assemble(t, coupledLines(2, 3))
	m, err := Reduce(sys, Options{Order: sys.N})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMoments(sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		red := m.Moment(k)
		scale := exact[k].MaxAbs()
		if diff := red.SubMat(exact[k]).MaxAbs(); diff > 1e-6*scale {
			t.Errorf("full-order moment %d rel err %.3e", k, diff/scale)
		}
	}
}

func TestDeflationOnRedundantPorts(t *testing.T) {
	// Two ports on the same node make the start block rank deficient; the
	// algorithm must deflate rather than fail.
	c := circuit.New("dup")
	a := c.Node("a")
	b := c.Node("b")
	c.AddPort("p1", a, circuit.PortDriver, 0)
	c.AddPort("p2", a, circuit.PortDriver, 0)
	c.AddResistor("r", a, b, 100)
	c.AddCapacitor("cb", b, circuit.Ground, 1e-15)
	sys := assemble(t, c)
	m, err := Reduce(sys, Options{Order: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Deflated == 0 {
		t.Error("expected deflation for duplicated port")
	}
}

func TestOrderCappedAtN(t *testing.T) {
	sys := assemble(t, coupledLines(1, 2))
	m, err := Reduce(sys, Options{Order: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Order > sys.N {
		t.Errorf("order %d exceeds n %d", m.Order, sys.N)
	}
}

func TestDefaultOrder(t *testing.T) {
	sys := assemble(t, coupledLines(2, 10))
	m, err := Reduce(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Order == 0 {
		t.Error("default order produced empty model")
	}
}

// TestReductionErrorDecreasesWithOrder is the ablation invariant behind
// BenchmarkAblationOrder: higher order → at least as many matched moments.
func TestReductionErrorDecreasesWithOrder(t *testing.T) {
	sys := assemble(t, coupledLines(3, 15))
	exact, err := ExactMoments(sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(order int) float64 {
		m, err := Reduce(sys, Options{Order: order})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for k := 0; k < 6; k++ {
			red := m.Moment(k)
			scale := exact[k].MaxAbs()
			if scale == 0 {
				continue
			}
			rel := red.SubMat(exact[k]).MaxAbs() / scale
			if rel > worst {
				worst = rel
			}
		}
		return worst
	}
	low := errAt(4)
	high := errAt(24)
	if high > low*1.000001 && high > 1e-8 {
		t.Errorf("error grew with order: q=4 → %.3e, q=24 → %.3e", low, high)
	}
}

func TestPermutationInvariance(t *testing.T) {
	// Port impedance moments must not depend on internal node ordering; we
	// check that reducing the same topology declared in a different node
	// order yields matching moments.
	build := func(reverse bool) *mna.System {
		c := circuit.New("perm")
		names := []string{"a", "b", "c", "d"}
		if reverse {
			names = []string{"d", "c", "b", "a"}
		}
		for _, n := range names {
			c.Node(n)
		}
		na, _ := c.LookupNode("a")
		nb, _ := c.LookupNode("b")
		nc, _ := c.LookupNode("c")
		nd, _ := c.LookupNode("d")
		c.AddPort("p", na, circuit.PortDriver, 0)
		c.AddResistor("r1", na, nb, 10)
		c.AddResistor("r2", nb, nc, 20)
		c.AddResistor("r3", nc, nd, 30)
		c.AddCapacitor("c1", nb, circuit.Ground, 1e-15)
		c.AddCapacitor("c2", nc, circuit.Ground, 2e-15)
		c.AddCapacitor("c3", nd, circuit.Ground, 3e-15)
		sys, err := mna.FromCircuit(c, mna.Options{})
		if err != nil {
			panic(err)
		}
		return sys
	}
	m1, err := Reduce(build(false), Options{Order: 4})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Reduce(build(true), Options{Order: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		a, b := m1.Moment(k), m2.Moment(k)
		if math.Abs(a.At(0, 0)-b.At(0, 0)) > 1e-6*math.Abs(a.At(0, 0)) {
			t.Errorf("moment %d differs across node orderings", k)
		}
	}
}

func TestStartBlockZeroRejected(t *testing.T) {
	// A port with (effectively) no coupling to anything: a lone node with a
	// resistor loop is impossible, so emulate via a singular start by using
	// an empty system.
	_, err := Reduce(&mna.System{N: 0, P: 0}, Options{})
	if err == nil {
		t.Error("expected error for empty system")
	}
}

var _ = matrix.Dot // keep matrix imported for the helper-free test file
