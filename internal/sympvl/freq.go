package sympvl

import (
	"fmt"

	"xtverify/internal/matrix"
	"xtverify/internal/mna"
)

// Impedance evaluates the reduced model's port impedance matrix
// Z(jω) = Rhoᵀ·(I + jω·T)⁻¹·Rho at angular frequency omega (rad/s).
//
// Because T is symmetric, its eigendecomposition T = Q·D·Qᵀ turns the
// complex inverse into a diagonal scaling: with H = Qᵀ·Rho,
// Z(jω) = Hᵀ·diag(1/(1 + jω·λᵢ))·H. The decomposition is computed on first
// use and cached.
func (m *Model) Impedance(omega float64) (*matrix.ZDense, error) {
	if err := m.ensureEigen(); err != nil {
		return nil, err
	}
	p := m.Ports
	z := matrix.NewZDense(p, p)
	for i, lam := range m.eigVals {
		den := complex(1, omega*lam)
		for a := 0; a < p; a++ {
			ha := m.eigH.At(i, a)
			if ha == 0 {
				continue
			}
			for b := 0; b < p; b++ {
				z.Add(a, b, complex(ha*m.eigH.At(i, b), 0)/den)
			}
		}
	}
	return z, nil
}

// ensureEigen lazily diagonalizes T and projects Rho.
func (m *Model) ensureEigen() error {
	if m.eigH != nil {
		return nil
	}
	w, q, err := matrix.EigenSym(m.T)
	if err != nil {
		return fmt.Errorf("sympvl: impedance eigendecomposition: %w", err)
	}
	m.eigVals = w
	// H = Qᵀ·Rho (q×p).
	m.eigH = q.T().Mul(m.Rho)
	return nil
}

// ExactImpedance evaluates the unreduced port impedance
// Z(jω) = Bᵀ·(G + jω·C)⁻¹·B by dense complex factorization. Intended for
// validation on small systems.
func ExactImpedance(sys *mna.System, omega float64) (*matrix.ZDense, error) {
	n, p := sys.N, sys.P
	a := matrix.NewZDense(n, n)
	for _, e := range sys.G.Entries() {
		a.Add(e.Row, e.Col, complex(e.Val, 0))
	}
	for _, e := range sys.C.Entries() {
		a.Add(e.Row, e.Col, complex(0, omega*e.Val))
	}
	lu, err := matrix.FactorZLU(a)
	if err != nil {
		return nil, fmt.Errorf("sympvl: exact impedance: %w", err)
	}
	z := matrix.NewZDense(p, p)
	for j := 0; j < p; j++ {
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			b[i] = complex(sys.B.At(i, j), 0)
		}
		x, err := lu.Solve(b)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p; i++ {
			s := complex(0, 0)
			for k := 0; k < n; k++ {
				s += complex(sys.B.At(k, i), 0) * x[k]
			}
			z.Set(i, j, s)
		}
	}
	return z, nil
}
