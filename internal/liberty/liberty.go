// Package liberty writes and reads the NLDM timing views of the cell
// library in the Liberty (.lib) format — the file the paper's Section 4.1
// calls "the cell timing library" and deduces linear drive resistances
// from. The supported subset covers what the flow produces and consumes:
// a library header with units, per-cell area/pin groups, pin capacitance,
// and cell_rise/cell_fall/rise_transition/fall_transition lookup tables
// over (load, input transition) template axes.
//
// Units: time in ns, capacitance in pF (declared in the header).
package liberty

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"xtverify/internal/cells"
)

// timeUnit and capUnit are the emitted Liberty units.
const (
	timeUnitS = 1e-9  // 1ns
	capUnitF  = 1e-12 // 1pF
)

// Write emits a Liberty library for the given characterized cells.
func Write(w io.Writer, libName string, tables []*cells.Timing) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", libName)
	fmt.Fprintf(bw, "  delay_model : table_lookup;\n")
	fmt.Fprintf(bw, "  time_unit : \"1ns\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, pf);\n")
	fmt.Fprintf(bw, "  voltage_unit : \"1V\";\n")
	fmt.Fprintf(bw, "  nom_voltage : 3.0;\n")
	for ti, tm := range tables {
		if err := writeCell(bw, ti, tm); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func writeCell(bw *bufio.Writer, idx int, tm *cells.Timing) error {
	c := tm.Cell
	fmt.Fprintf(bw, "  cell (%s) {\n", c.Name)
	fmt.Fprintf(bw, "    area : %.3f;\n", c.Strength)
	// Input pin(s): capacitance only.
	fmt.Fprintf(bw, "    pin (A) {\n      direction : input;\n      capacitance : %.6f;\n    }\n",
		c.InputCapF/capUnitF)
	// Output pin with the four NLDM tables.
	fmt.Fprintf(bw, "    pin (Z) {\n      direction : output;\n")
	fmt.Fprintf(bw, "      timing () {\n        related_pin : \"A\";\n")
	writeTable(bw, "cell_rise", tm.Loads, tm.Slews, tm.DelayRise)
	writeTable(bw, "cell_fall", tm.Loads, tm.Slews, tm.DelayFall)
	writeTable(bw, "rise_transition", tm.Loads, tm.Slews, tm.TransRise)
	writeTable(bw, "fall_transition", tm.Loads, tm.Slews, tm.TransFall)
	fmt.Fprintf(bw, "      }\n    }\n  }\n")
	return nil
}

func writeTable(bw *bufio.Writer, name string, loads, slews []float64, tab [][]float64) {
	fmt.Fprintf(bw, "        %s (tmpl_%dx%d) {\n", name, len(loads), len(slews))
	fmt.Fprintf(bw, "          index_1 (\"%s\");\n", joinScaled(loads, capUnitF))
	fmt.Fprintf(bw, "          index_2 (\"%s\");\n", joinScaled(slews, timeUnitS))
	fmt.Fprintf(bw, "          values ( \\\n")
	for i := range loads {
		sep := ", \\"
		if i == len(loads)-1 {
			sep = " \\"
		}
		fmt.Fprintf(bw, "            \"%s\"%s\n", joinScaled(tab[i], timeUnitS), sep)
	}
	fmt.Fprintf(bw, "          );\n        }\n")
}

func joinScaled(xs []float64, unit float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatFloat(x/unit, 'g', 8, 64)
	}
	return strings.Join(parts, ", ")
}

// Library is a parsed .lib file.
type Library struct {
	Name  string
	Cells map[string]*CellTiming
}

// CellTiming holds one cell's parsed view.
type CellTiming struct {
	Name      string
	Area      float64
	InputCapF float64
	// Loads and Slews are the table axes in farads/seconds.
	Loads, Slews []float64
	// Tables maps table name (cell_rise, ...) to [load][slew] seconds.
	Tables map[string][][]float64
}

// CellNamesSorted lists the parsed cells.
func (l *Library) CellNamesSorted() []string {
	out := make([]string, 0, len(l.Cells))
	for n := range l.Cells {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Parse reads the Liberty subset emitted by Write.
func Parse(r io.Reader) (*Library, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Normalize line continuations.
	src := strings.ReplaceAll(string(data), "\\\n", " ")
	lib := &Library{Cells: map[string]*CellTiming{}}
	var cur *CellTiming
	var curTable string
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "/*") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "library"):
			lib.Name = groupArg(line)
		case strings.HasPrefix(line, "cell "), strings.HasPrefix(line, "cell("):
			cur = &CellTiming{Name: groupArg(line), Tables: map[string][][]float64{}}
			lib.Cells[cur.Name] = cur
		case strings.HasPrefix(line, "area"):
			if cur != nil {
				cur.Area = attrFloat(line)
			}
		case strings.HasPrefix(line, "capacitance"):
			if cur != nil {
				cur.InputCapF = attrFloat(line) * capUnitF
			}
		case tableName(line) != "":
			curTable = tableName(line)
		case strings.HasPrefix(line, "index_1"):
			if cur == nil {
				return nil, fmt.Errorf("liberty: line %d: index outside cell", ln+1)
			}
			cur.Loads = scale(parseList(line), capUnitF)
		case strings.HasPrefix(line, "index_2"):
			if cur == nil {
				return nil, fmt.Errorf("liberty: line %d: index outside cell", ln+1)
			}
			cur.Slews = scale(parseList(line), timeUnitS)
		case strings.HasPrefix(line, "values"):
			if cur == nil || curTable == "" {
				return nil, fmt.Errorf("liberty: line %d: values outside table", ln+1)
			}
			rows := parseRows(line)
			tab := make([][]float64, len(rows))
			for i, row := range rows {
				tab[i] = scale(row, timeUnitS)
				if len(cur.Slews) > 0 && len(tab[i]) != len(cur.Slews) {
					return nil, fmt.Errorf("liberty: line %d: row %d has %d values, want %d", ln+1, i, len(tab[i]), len(cur.Slews))
				}
			}
			if len(cur.Loads) > 0 && len(tab) != len(cur.Loads) {
				return nil, fmt.Errorf("liberty: line %d: %d rows, want %d", ln+1, len(tab), len(cur.Loads))
			}
			cur.Tables[curTable] = tab
			curTable = ""
		}
	}
	if lib.Name == "" {
		return nil, fmt.Errorf("liberty: missing library statement")
	}
	return lib, nil
}

func tableName(line string) string {
	for _, n := range []string{"cell_rise", "cell_fall", "rise_transition", "fall_transition"} {
		if strings.HasPrefix(line, n+" ") || strings.HasPrefix(line, n+"(") {
			return n
		}
	}
	return ""
}

// groupArg extracts NAME from `keyword (NAME) {`.
func groupArg(line string) string {
	i := strings.IndexByte(line, '(')
	j := strings.IndexByte(line, ')')
	if i < 0 || j < i {
		return ""
	}
	return strings.TrimSpace(line[i+1 : j])
}

// attrFloat extracts X from `name : X;`.
func attrFloat(line string) float64 {
	i := strings.IndexByte(line, ':')
	if i < 0 {
		return 0
	}
	s := strings.Trim(strings.TrimSpace(line[i+1:]), ";")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// parseList extracts the numbers inside the first quoted string.
func parseList(line string) []float64 {
	i := strings.IndexByte(line, '"')
	j := strings.LastIndexByte(line, '"')
	if i < 0 || j <= i {
		return nil
	}
	return parseCSV(line[i+1 : j])
}

// parseRows extracts each quoted string as one row.
func parseRows(line string) [][]float64 {
	var rows [][]float64
	for {
		i := strings.IndexByte(line, '"')
		if i < 0 {
			break
		}
		rest := line[i+1:]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			break
		}
		rows = append(rows, parseCSV(rest[:j]))
		line = rest[j+1:]
	}
	return rows
}

func parseCSV(s string) []float64 {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			continue
		}
		out = append(out, v)
	}
	return out
}

func scale(xs []float64, unit float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * unit
	}
	return out
}
