package liberty

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xtverify/internal/cells"
)

var charOpt = cells.CharacterizeOptions{
	Loads: []float64{10e-15, 60e-15},
	Slews: []float64{80e-12, 200e-12},
	Dt:    4e-12,
}

func characterized(t *testing.T, names ...string) []*cells.Timing {
	t.Helper()
	out := make([]*cells.Timing, 0, len(names))
	for _, n := range names {
		c, ok := cells.ByName(n)
		if !ok {
			t.Fatalf("cell %s missing", n)
		}
		tm, err := cells.Characterize(c, charOpt)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tm)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	tables := characterized(t, "INV_X2", "NAND2_X1")
	var buf bytes.Buffer
	if err := Write(&buf, "xtverify_025", tables); err != nil {
		t.Fatal(err)
	}
	lib, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Name != "xtverify_025" {
		t.Errorf("library name %q", lib.Name)
	}
	if got := lib.CellNamesSorted(); len(got) != 2 || got[0] != "INV_X2" || got[1] != "NAND2_X1" {
		t.Fatalf("cells %v", got)
	}
	for _, tm := range tables {
		ct := lib.Cells[tm.Cell.Name]
		if ct == nil {
			t.Fatalf("%s missing", tm.Cell.Name)
		}
		// Axes round trip.
		if len(ct.Loads) != len(tm.Loads) || len(ct.Slews) != len(tm.Slews) {
			t.Fatalf("%s axes lost", tm.Cell.Name)
		}
		for i := range tm.Loads {
			if math.Abs(ct.Loads[i]-tm.Loads[i]) > 1e-20 {
				t.Errorf("%s load[%d] %g vs %g", tm.Cell.Name, i, ct.Loads[i], tm.Loads[i])
			}
		}
		// All four tables round trip within print precision.
		for name, want := range map[string][][]float64{
			"cell_rise": tm.DelayRise, "cell_fall": tm.DelayFall,
			"rise_transition": tm.TransRise, "fall_transition": tm.TransFall,
		} {
			got := ct.Tables[name]
			if got == nil {
				t.Fatalf("%s table %s missing", tm.Cell.Name, name)
			}
			for i := range want {
				for j := range want[i] {
					if rel := math.Abs(got[i][j]-want[i][j]) / want[i][j]; rel > 1e-6 {
						t.Errorf("%s %s[%d][%d]: %g vs %g", tm.Cell.Name, name, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
		// Input capacitance in pF round trips.
		if math.Abs(ct.InputCapF-tm.Cell.InputCapF) > 1e-18 {
			t.Errorf("%s input cap %g vs %g", tm.Cell.Name, ct.InputCapF, tm.Cell.InputCapF)
		}
	}
}

func TestWriteFormat(t *testing.T) {
	tables := characterized(t, "BUF_X1")
	var buf bytes.Buffer
	if err := Write(&buf, "lib", tables); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"library (lib) {", "delay_model : table_lookup", "cell (BUF_X1)",
		"direction : output", "cell_rise", "fall_transition", "index_1", "values",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("cell (X) {}\n")); err == nil {
		t.Error("missing library statement accepted")
	}
	bad := `library (l) {
  cell (c) {
    pin (Z) {
      cell_rise (t) {
        index_1 ("1, 2");
        index_2 ("3, 4");
        values ( "1, 2, 3" );
      }
    }
  }
}`
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("ragged values table accepted")
	}
}
