package mna

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xtverify/internal/circuit"
	"xtverify/internal/matrix"
)

// coupledPair builds two parallel RC lines with coupling, each with a driver
// port, mirroring the paper's Figure 1 test structure in miniature.
func coupledPair() *circuit.Circuit {
	c := circuit.New("pair")
	a0 := c.Node("a0")
	a1 := c.Node("a1")
	v0 := c.Node("v0")
	v1 := c.Node("v1")
	c.AddPort("aggr", a0, circuit.PortDriver, 0)
	c.AddPort("vict", v0, circuit.PortDriver, 1)
	c.AddResistor("ra", a0, a1, 50)
	c.AddResistor("rv", v0, v1, 50)
	c.AddCapacitor("ca", a1, circuit.Ground, 10e-15)
	c.AddCapacitor("cv", v1, circuit.Ground, 10e-15)
	c.AddCoupling("cc", a1, v1, 20e-15)
	return c
}

func TestFromCircuitShapes(t *testing.T) {
	sys, err := FromCircuit(coupledPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.N != 4 || sys.P != 2 {
		t.Fatalf("N=%d P=%d, want 4 and 2", sys.N, sys.P)
	}
	if sys.B.At(0, 0) != 1 || sys.B.At(2, 1) != 1 {
		t.Error("B incidence wrong")
	}
	if sys.PortNames[0] != "aggr" || sys.PortNames[1] != "vict" {
		t.Errorf("port names %v", sys.PortNames)
	}
}

func TestGStampValues(t *testing.T) {
	sys, err := FromCircuit(coupledPair(), Options{Gmin: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Conductance 1/50 between a0 (node 0) and a1 (node 1), plus gmin on the
	// diagonal.
	if got := sys.G.At(0, 1); math.Abs(got+0.02) > 1e-15 {
		t.Errorf("G(0,1) = %g, want -0.02", got)
	}
	if got := sys.G.At(0, 0); math.Abs(got-(0.02+1e-12)) > 1e-15 {
		t.Errorf("G(0,0) = %g, want 0.02+gmin", got)
	}
}

func TestCStampCoupling(t *testing.T) {
	sys, err := FromCircuit(coupledPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a1 is node 1, v1 is node 3: diagonal = own + coupling; off-diagonal
	// = -coupling.
	if got := sys.C.At(1, 1); math.Abs(got-30e-15) > 1e-27 {
		t.Errorf("C(1,1) = %g, want 30f", got)
	}
	if got := sys.C.At(1, 3); math.Abs(got+20e-15) > 1e-27 {
		t.Errorf("C(1,3) = %g, want -20f", got)
	}
}

func TestDecoupleAllOption(t *testing.T) {
	sys, err := FromCircuit(coupledPair(), Options{DecoupleAll: true})
	if err != nil {
		t.Fatal(err)
	}
	// Off-diagonal coupling disappears but node totals stay.
	if got := sys.C.At(1, 3); got != 0 {
		t.Errorf("decoupled C(1,3) = %g, want 0", got)
	}
	if got := sys.C.At(1, 1); math.Abs(got-30e-15) > 1e-27 {
		t.Errorf("decoupled C(1,1) = %g, want 30f", got)
	}
}

func TestGIsPositiveDefinite(t *testing.T) {
	sys, err := FromCircuit(coupledPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := matrix.FactorCholesky(sys.G.Dense()); err != nil {
		t.Errorf("G with Gmin must be positive definite: %v", err)
	}
	if !sys.G.Dense().IsSymmetric(1e-12) || !sys.C.Dense().IsSymmetric(1e-12) {
		t.Error("G and C must be symmetric")
	}
}

func TestNoPortsRejected(t *testing.T) {
	c := circuit.New("np")
	c.Node("a")
	if _, err := FromCircuit(c, Options{}); err == nil {
		t.Error("expected error for circuit without ports")
	}
}

func TestInvalidCircuitRejected(t *testing.T) {
	c := circuit.New("bad")
	a := c.Node("a")
	c.AddPort("p", a, circuit.PortDriver, 0)
	c.AddCapacitor("c", a, circuit.Ground, -1)
	if _, err := FromCircuit(c, Options{}); err == nil {
		t.Error("expected validation error")
	}
}

func TestPortCapacitance(t *testing.T) {
	sys, err := FromCircuit(coupledPair(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pc := sys.PortCapacitance()
	// Port nodes a0 and v0 carry no direct capacitance in this fixture.
	if pc[0] != 0 || pc[1] != 0 {
		t.Errorf("PortCapacitance = %v, want zeros", pc)
	}
}

// Property: without resistors to ground, every G row sums to Gmin exactly
// (Kirchhoff conservation of the conductance stamps).
func TestGRowSumConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New("prop")
		n := 2 + rng.Intn(12)
		nodes := make([]circuit.NodeID, n)
		for i := range nodes {
			nodes[i] = c.Node(fmt.Sprintf("n%d", i))
		}
		c.AddPort("p", nodes[0], circuit.PortDriver, 0)
		for i := 0; i+1 < n; i++ {
			c.AddResistor("r", nodes[i], nodes[i+1], 1+rng.Float64()*1000)
		}
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.AddResistor("rx", nodes[a], nodes[b], 1+rng.Float64()*1000)
			}
		}
		c.AddCapacitor("c0", nodes[n-1], circuit.Ground, 1e-15)
		const gmin = 1e-9
		sys, err := FromCircuit(c, Options{Gmin: gmin})
		if err != nil {
			return false
		}
		g := sys.G.Dense()
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += g.At(i, j)
			}
			if math.Abs(sum-gmin) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
