// Package mna assembles the modified nodal analysis matrices of a linear RC
// interconnect cluster:
//
//	G·v + C·dv/dt = B·i
//
// where G collects resistor conductances, C collects grounded and coupling
// capacitances, and B is the port incidence matrix (paper Eq. 1). Both G and
// C are symmetric; a small grounding conductance Gmin is added to every node
// so that G is strictly positive definite, which the SyMPVL symmetrization
// requires (pure RC interconnect without DC paths to ground is only
// semidefinite).
package mna

import (
	"fmt"

	"xtverify/internal/circuit"
	"xtverify/internal/matrix"
)

// DefaultGmin is the per-node grounding conductance (siemens) added to G.
// At 1 nS against kΩ-scale interconnect it perturbs transfer functions at
// the 1e-6 level while guaranteeing positive definiteness.
const DefaultGmin = 1e-9

// System is the assembled MNA description of a cluster.
type System struct {
	// G and C are the n×n conductance and capacitance matrices, frozen into
	// compiled CSR form once stamping completes: every downstream consumer
	// (SyMPVL reduction, direct MNA integration, frequency sweeps) traverses
	// flat sorted arrays rather than the map-backed assembly accumulator.
	G, C *matrix.CSR
	// B is the n×p port incidence matrix: column k selects the node of
	// port k.
	B *matrix.Dense
	// N is the node count, P the port count.
	N, P int
	// PortNames records the cluster port names in column order of B.
	PortNames []string
	// PortNodes records the node index of each port.
	PortNodes []int
}

// Options controls assembly.
type Options struct {
	// Gmin is the per-node grounding conductance; DefaultGmin if zero.
	Gmin float64
	// DecoupleAll converts coupling capacitors to grounded capacitors of the
	// same value (the paper's "without coupling" baseline).
	DecoupleAll bool
}

// FromCircuit assembles the MNA system of the circuit.
func FromCircuit(c *circuit.Circuit, opt Options) (*System, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("mna: %w", err)
	}
	n := c.NumNodes()
	p := len(c.Ports)
	if p == 0 {
		return nil, fmt.Errorf("mna: circuit %q has no ports", c.Name)
	}
	gmin := opt.Gmin
	if gmin == 0 {
		gmin = DefaultGmin
	}
	src := c
	if opt.DecoupleAll {
		src = c.Decoupled()
	}
	sys := &System{
		B: matrix.NewDense(n, p),
		N: n,
		P: p,
	}
	g := matrix.NewSparse(n)
	c2 := matrix.NewSparse(n)
	for _, r := range src.Resistors {
		g.AddSym(int(r.A), int(r.B), 1/r.Ohms)
	}
	for _, cap := range src.Capacitors {
		c2.AddSym(int(cap.A), int(cap.B), cap.Farads)
	}
	for i := 0; i < n; i++ {
		g.Add(i, i, gmin)
	}
	sys.G = g.Compile()
	sys.C = c2.Compile()
	for k, port := range src.Ports {
		sys.B.Set(int(port.Node), k, 1)
		sys.PortNames = append(sys.PortNames, port.Name)
		sys.PortNodes = append(sys.PortNodes, int(port.Node))
	}
	return sys, nil
}

// PortCapacitance returns, for each port, the total capacitance directly at
// the port node — a quick severity metric used by pruning heuristics.
func (s *System) PortCapacitance() []float64 {
	out := make([]float64, s.P)
	for k, node := range s.PortNodes {
		out[k] = s.C.At(node, node)
	}
	return out
}
