// Package waveform provides sampled transient waveforms and the measurement
// helpers the verification flow needs: peak glitch extraction, threshold
// crossing times for delay measurement, interpolation, resampling, pairwise
// comparison, and ASCII rendering for reports.
package waveform

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Waveform is a piecewise-linear sampled signal v(t). Time points are
// strictly increasing.
type Waveform struct {
	T []float64 // seconds
	V []float64 // volts
}

// New returns an empty waveform with capacity hint n.
func New(n int) *Waveform {
	return &Waveform{T: make([]float64, 0, n), V: make([]float64, 0, n)}
}

// Append adds a sample; t must exceed the previous time point.
func (w *Waveform) Append(t, v float64) {
	if n := len(w.T); n > 0 && t <= w.T[n-1] {
		panic(fmt.Sprintf("waveform: non-increasing time %g after %g", t, w.T[n-1]))
	}
	w.T = append(w.T, t)
	w.V = append(w.V, v)
}

// Len returns the sample count.
func (w *Waveform) Len() int { return len(w.T) }

// At returns v(t) by linear interpolation, clamping outside the span.
func (w *Waveform) At(t float64) float64 {
	n := len(w.T)
	if n == 0 {
		return 0
	}
	if t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	i := sort.SearchFloat64s(w.T, t)
	// w.T[i-1] < t <= w.T[i]
	t0, t1 := w.T[i-1], w.T[i]
	v0, v1 := w.V[i-1], w.V[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Start and End return the first/last sampled values (0 when empty).
func (w *Waveform) Start() float64 {
	if len(w.V) == 0 {
		return 0
	}
	return w.V[0]
}

// End returns the final sampled value.
func (w *Waveform) End() float64 {
	if len(w.V) == 0 {
		return 0
	}
	return w.V[len(w.V)-1]
}

// Peak describes an extremum relative to a baseline.
type Peak struct {
	// Value is the signed deviation from the baseline at the extremum.
	Value float64
	// Time is when the extremum occurs.
	Time float64
	// Abs is |Value|.
	Abs float64
}

// PeakDeviation finds the sample with the largest |v - baseline| and returns
// it as a Peak. This is the glitch-peak measurement used throughout the
// crosstalk analyses.
func (w *Waveform) PeakDeviation(baseline float64) Peak {
	best := Peak{}
	for i, v := range w.V {
		d := v - baseline
		if a := math.Abs(d); a > best.Abs {
			best = Peak{Value: d, Time: w.T[i], Abs: a}
		}
	}
	return best
}

// Max returns the maximum sampled value and its time.
func (w *Waveform) Max() (float64, float64) {
	best, bt := math.Inf(-1), 0.0
	for i, v := range w.V {
		if v > best {
			best, bt = v, w.T[i]
		}
	}
	return best, bt
}

// Min returns the minimum sampled value and its time.
func (w *Waveform) Min() (float64, float64) {
	best, bt := math.Inf(1), 0.0
	for i, v := range w.V {
		if v < best {
			best, bt = v, w.T[i]
		}
	}
	return best, bt
}

// CrossTime returns the first time the waveform crosses level in the given
// direction (rising: from below to at-or-above). The crossing instant is
// linearly interpolated. ok is false when no crossing exists.
func (w *Waveform) CrossTime(level float64, rising bool) (t float64, ok bool) {
	for i := 1; i < len(w.T); i++ {
		v0, v1 := w.V[i-1], w.V[i]
		var crossed bool
		if rising {
			crossed = v0 < level && v1 >= level
		} else {
			crossed = v0 > level && v1 <= level
		}
		if crossed {
			if v1 == v0 {
				return w.T[i], true
			}
			frac := (level - v0) / (v1 - v0)
			return w.T[i-1] + frac*(w.T[i]-w.T[i-1]), true
		}
	}
	return 0, false
}

// LastCrossTime returns the final crossing of level in the given direction,
// used to measure settled delays in the presence of glitches.
func (w *Waveform) LastCrossTime(level float64, rising bool) (t float64, ok bool) {
	for i := len(w.T) - 1; i >= 1; i-- {
		v0, v1 := w.V[i-1], w.V[i]
		var crossed bool
		if rising {
			crossed = v0 < level && v1 >= level
		} else {
			crossed = v0 > level && v1 <= level
		}
		if crossed {
			if v1 == v0 {
				return w.T[i], true
			}
			frac := (level - v0) / (v1 - v0)
			return w.T[i-1] + frac*(w.T[i]-w.T[i-1]), true
		}
	}
	return 0, false
}

// SlewTime returns the time spent between lo and hi levels around the first
// crossing in the given direction, the usual 10–90 % style slew measurement.
func (w *Waveform) SlewTime(lo, hi float64, rising bool) (float64, bool) {
	if rising {
		t0, ok0 := w.CrossTime(lo, true)
		t1, ok1 := w.CrossTime(hi, true)
		if ok0 && ok1 && t1 >= t0 {
			return t1 - t0, true
		}
		return 0, false
	}
	t0, ok0 := w.CrossTime(hi, false)
	t1, ok1 := w.CrossTime(lo, false)
	if ok0 && ok1 && t1 >= t0 {
		return t1 - t0, true
	}
	return 0, false
}

// Resample returns the waveform sampled at n uniform points across its span.
func (w *Waveform) Resample(n int) *Waveform {
	out := New(n)
	if len(w.T) == 0 || n < 2 {
		return out
	}
	t0, t1 := w.T[0], w.T[len(w.T)-1]
	for i := 0; i < n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n-1)
		out.Append(t, w.At(t))
	}
	return out
}

// MaxAbsDiff returns the largest |a(t)-b(t)| over n uniform samples of the
// overlapping time span.
func MaxAbsDiff(a, b *Waveform, n int) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	t0 := math.Max(a.T[0], b.T[0])
	t1 := math.Min(a.T[len(a.T)-1], b.T[len(b.T)-1])
	if t1 <= t0 || n < 2 {
		return 0
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n-1)
		if d := math.Abs(a.At(t) - b.At(t)); d > worst {
			worst = d
		}
	}
	return worst
}

// Clone returns a deep copy.
func (w *Waveform) Clone() *Waveform {
	out := New(len(w.T))
	out.T = append(out.T, w.T...)
	out.V = append(out.V, w.V...)
	return out
}

// ASCIIPlot renders one or more waveforms on a character grid of the given
// size, each series using its own glyph. It is used by the figure-style
// experiment reports.
func ASCIIPlot(width, height int, series ...*Waveform) string {
	if width < 8 || height < 3 || len(series) == 0 {
		return ""
	}
	t0, t1 := math.Inf(1), math.Inf(-1)
	v0, v1 := math.Inf(1), math.Inf(-1)
	for _, w := range series {
		if w.Len() == 0 {
			continue
		}
		t0 = math.Min(t0, w.T[0])
		t1 = math.Max(t1, w.T[len(w.T)-1])
		mn, _ := w.Min()
		mx, _ := w.Max()
		v0 = math.Min(v0, mn)
		v1 = math.Max(v1, mx)
	}
	if math.IsInf(t0, 1) || t1 <= t0 {
		return ""
	}
	if v1 <= v0 {
		v1 = v0 + 1
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, w := range series {
		g := glyphs[si%len(glyphs)]
		for col := 0; col < width; col++ {
			t := t0 + (t1-t0)*float64(col)/float64(width-1)
			v := w.At(t)
			row := int(math.Round((v1 - v) / (v1 - v0) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.4g V\n", v1)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10.4g V  t: %.4g .. %.4g s\n", v0, t0, t1)
	return b.String()
}
