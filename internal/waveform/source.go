package waveform

// Source is a deterministic stimulus voltage as a function of time. Sources
// drive Thevenin terminations in the reduced-order simulator and ideal
// voltage nodes in the SPICE-class engine.
type Source func(t float64) float64

// Const returns a constant source.
func Const(v float64) Source {
	return func(float64) float64 { return v }
}

// Ramp returns a saturated linear ramp from v0 to v1 starting at t0 with the
// given transition time. A zero transition yields an ideal step at t0.
func Ramp(v0, v1, t0, transition float64) Source {
	if transition <= 0 {
		return func(t float64) float64 {
			if t < t0 {
				return v0
			}
			return v1
		}
	}
	return func(t float64) float64 {
		switch {
		case t <= t0:
			return v0
		case t >= t0+transition:
			return v1
		default:
			return v0 + (v1-v0)*(t-t0)/transition
		}
	}
}

// Pulse returns a two-edge pulse: v0 until t0, ramp to v1 over rise, hold
// until t1, ramp back to v0 over fall.
func Pulse(v0, v1, t0, rise, t1, fall float64) Source {
	up := Ramp(v0, v1, t0, rise)
	down := Ramp(v1, v0, t1, fall)
	return func(t float64) float64 {
		if t < t1 {
			return up(t)
		}
		return down(t)
	}
}
