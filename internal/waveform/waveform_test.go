package waveform

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func ramp01(n int) *Waveform {
	w := New(n)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		w.Append(t, t)
	}
	return w
}

func TestAppendMonotonic(t *testing.T) {
	w := New(2)
	w.Append(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-increasing time")
		}
	}()
	w.Append(0, 2)
}

func TestAtInterpolation(t *testing.T) {
	w := New(3)
	w.Append(0, 0)
	w.Append(1, 10)
	w.Append(2, 10)
	if got := w.At(0.5); got != 5 {
		t.Errorf("At(0.5) = %g, want 5", got)
	}
	if got := w.At(-1); got != 0 {
		t.Errorf("At(-1) = %g, want clamp 0", got)
	}
	if got := w.At(5); got != 10 {
		t.Errorf("At(5) = %g, want clamp 10", got)
	}
}

func TestPeakDeviation(t *testing.T) {
	w := New(4)
	w.Append(0, 1)
	w.Append(1, 1.4)
	w.Append(2, 0.2)
	w.Append(3, 1)
	p := w.PeakDeviation(1)
	if !(math.Abs(p.Value+0.8) < 1e-12 && p.Time == 2) {
		t.Errorf("peak = %+v, want value -0.8 at t=2", p)
	}
}

func TestCrossTimeRisingFalling(t *testing.T) {
	w := New(3)
	w.Append(0, 0)
	w.Append(2, 2)
	w.Append(4, 0)
	tr, ok := w.CrossTime(1, true)
	if !ok || math.Abs(tr-1) > 1e-12 {
		t.Errorf("rising cross = %g, %v", tr, ok)
	}
	tf, ok := w.CrossTime(1, false)
	if !ok || math.Abs(tf-3) > 1e-12 {
		t.Errorf("falling cross = %g, %v", tf, ok)
	}
	if _, ok := w.CrossTime(5, true); ok {
		t.Error("phantom crossing above range")
	}
	lt, ok := w.LastCrossTime(1, true)
	if !ok || math.Abs(lt-1) > 1e-12 {
		t.Errorf("last rising cross = %g", lt)
	}
}

func TestLastCrossWithGlitch(t *testing.T) {
	// Signal rises, glitches back below threshold, rises again: last cross
	// is the settled one.
	w := New(6)
	w.Append(0, 0)
	w.Append(1, 2) // first rise through 1 at t=0.5
	w.Append(2, 0) // glitch down
	w.Append(3, 2) // re-rise through 1 at t=2.5
	last, ok := w.LastCrossTime(1, true)
	if !ok || math.Abs(last-2.5) > 1e-12 {
		t.Errorf("last cross = %g, want 2.5", last)
	}
}

func TestSlewTime(t *testing.T) {
	w := ramp01(10)
	s, ok := w.SlewTime(0.1, 0.9, true)
	if !ok || math.Abs(s-0.8) > 1e-9 {
		t.Errorf("slew = %g, want 0.8", s)
	}
	// Falling ramp.
	f := New(2)
	f.Append(0, 1)
	f.Append(1, 0)
	s, ok = f.SlewTime(0.1, 0.9, false)
	if !ok || math.Abs(s-0.8) > 1e-9 {
		t.Errorf("falling slew = %g, want 0.8", s)
	}
}

func TestResampleAndDiff(t *testing.T) {
	w := ramp01(100)
	r := w.Resample(11)
	if r.Len() != 11 {
		t.Fatalf("resample len = %d", r.Len())
	}
	if MaxAbsDiff(w, r, 200) > 1e-9 {
		t.Error("resampled ramp deviates from original")
	}
	shifted := New(2)
	shifted.Append(0, 0.5)
	shifted.Append(1, 1.5)
	if d := MaxAbsDiff(w, shifted, 100); math.Abs(d-0.5) > 1e-9 {
		t.Errorf("MaxAbsDiff = %g, want 0.5", d)
	}
}

func TestMinMax(t *testing.T) {
	w := New(3)
	w.Append(0, -2)
	w.Append(1, 7)
	w.Append(2, 3)
	if mx, tt := w.Max(); mx != 7 || tt != 1 {
		t.Errorf("Max = %g@%g", mx, tt)
	}
	if mn, tt := w.Min(); mn != -2 || tt != 0 {
		t.Errorf("Min = %g@%g", mn, tt)
	}
	if w.Start() != -2 || w.End() != 3 {
		t.Error("Start/End wrong")
	}
}

func TestASCIIPlot(t *testing.T) {
	w := ramp01(20)
	s := ASCIIPlot(40, 10, w)
	if !strings.Contains(s, "*") {
		t.Error("plot missing series glyph")
	}
	if ASCIIPlot(2, 2, w) != "" {
		t.Error("degenerate plot should be empty")
	}
}

func TestSources(t *testing.T) {
	c := Const(3)
	if c(0) != 3 || c(1e9) != 3 {
		t.Error("Const wrong")
	}
	r := Ramp(0, 3, 1e-9, 2e-9)
	if r(0) != 0 {
		t.Error("ramp before start")
	}
	if got := r(2e-9); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("ramp midpoint = %g, want 1.5", got)
	}
	if r(1e-8) != 3 {
		t.Error("ramp after end")
	}
	step := Ramp(0, 1, 1e-9, 0)
	if step(0.9e-9) != 0 || step(1e-9) != 1 {
		t.Error("step edge wrong")
	}
	p := Pulse(0, 1, 1e-9, 1e-9, 5e-9, 1e-9)
	if p(3e-9) != 1 {
		t.Errorf("pulse high = %g", p(3e-9))
	}
	if p(8e-9) != 0 {
		t.Errorf("pulse after fall = %g", p(8e-9))
	}
}

// Property: a ramp source is monotone non-decreasing when v1 > v0.
func TestRampMonotoneProperty(t *testing.T) {
	f := func(t0, tr uint8) bool {
		start := float64(t0) * 1e-10
		trans := float64(tr)*1e-10 + 1e-12
		r := Ramp(0, 1, start, trans)
		prev := -1.0
		for i := 0; i <= 100; i++ {
			v := r(float64(i) * 1e-10)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteVCD(t *testing.T) {
	a := New(3)
	a.Append(0, 0)
	a.Append(1e-9, 1.5)
	a.Append(2e-9, 3)
	b := New(2)
	b.Append(0, 3)
	b.Append(2e-9, 0)
	var buf bytes.Buffer
	if err := WriteVCD(&buf, map[string]*Waveform{"victim rcv": a, "aggr": b}, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$timescale 1fs $end", "$var real 64", "victim_rcv", "aggr", "#0", "#1000000", "#2000000", "$enddefinitions"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Initial values for both signals at t=0.
	if !strings.Contains(out, "r0 ") || !strings.Contains(out, "r3 ") {
		t.Error("initial values missing")
	}
	if err := WriteVCD(&buf, nil, 0); err == nil {
		t.Error("empty signal set accepted")
	}
}

func TestWriteVCDResolutionSuppression(t *testing.T) {
	w := New(4)
	w.Append(0, 0)
	w.Append(1e-12, 1e-6) // below resolution
	w.Append(2e-12, 0.5)  // above
	var buf bytes.Buffer
	if err := WriteVCD(&buf, map[string]*Waveform{"s": w}, 1e-3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "#1000\n") {
		t.Error("sub-resolution change emitted")
	}
	if !strings.Contains(out, "#2000\n") {
		t.Error("super-resolution change suppressed")
	}
}
