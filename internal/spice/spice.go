// Package spice is the reference transistor-level circuit simulator used as
// the "SPICE" golden baseline of the paper's experiments. It solves the full
// (unreduced) nonlinear network by modified nodal analysis with:
//
//   - trapezoidal integration of capacitors via companion models,
//   - Newton–Raphson linearization of MOSFETs and behavioural devices,
//   - skyline LU factorization with RCM preordering, and
//   - ideal voltage drive by node elimination (driven nodes are known).
//
// It is intentionally a classical fixed-step engine: the point of the paper
// is that SyMPVL + nonlinear terminations reproduces this engine's cluster
// waveforms orders of magnitude faster.
package spice

import (
	"fmt"
	"math"

	"xtverify/internal/matrix"
	"xtverify/internal/waveform"
)

// Node identifies a circuit node. Ground is the negative sentinel.
type Node int

// Ground is the reference node.
const Ground Node = -1

// Behavioral is a one-port nonlinear element to ground; Current returns the
// current flowing from the element into the node and its derivative with
// respect to the node voltage. It lets the engine host the same
// pre-characterized cell models the reduced-order simulator uses.
type Behavioral interface {
	Current(v, t float64) (i, didv float64)
}

type resistor struct {
	a, b Node
	g    float64
}

type capacitor struct {
	a, b Node
	c    float64
	// Companion state: voltage across and current through at the last
	// accepted time point.
	vPrev, iPrev float64
}

type mosfet struct {
	d, g, s Node
	eval    func(vd, vg, vs float64) (id, gm, gds float64)
}

type behavioral struct {
	n   Node
	dev Behavioral
}

// Netlist is a mutable circuit under construction.
type Netlist struct {
	Name      string
	nodeNames []string
	nodeIndex map[string]Node
	driven    map[Node]waveform.Source

	resistors   []resistor
	capacitors  []capacitor
	mosfets     []mosfet
	behaviorals []behavioral
}

// NewNetlist returns an empty netlist.
func NewNetlist(name string) *Netlist {
	return &Netlist{Name: name, nodeIndex: make(map[string]Node), driven: make(map[Node]waveform.Source)}
}

// Node interns a node by name.
func (n *Netlist) Node(name string) Node {
	if id, ok := n.nodeIndex[name]; ok {
		return id
	}
	id := Node(len(n.nodeNames))
	n.nodeNames = append(n.nodeNames, name)
	n.nodeIndex[name] = id
	return id
}

// NodeName returns the name for id ("0" for ground).
func (n *Netlist) NodeName(id Node) string {
	if id == Ground {
		return "0"
	}
	return n.nodeNames[id]
}

// NumNodes returns the number of named nodes (driven or free).
func (n *Netlist) NumNodes() int { return len(n.nodeNames) }

// Drive pins a node to an ideal time-varying voltage source.
func (n *Netlist) Drive(node Node, src waveform.Source) {
	if node == Ground {
		panic("spice: cannot drive ground")
	}
	n.driven[node] = src
}

// AddR adds a resistor.
func (n *Netlist) AddR(a, b Node, ohms float64) {
	if ohms <= 0 {
		panic(fmt.Sprintf("spice: non-positive resistance %g", ohms))
	}
	n.resistors = append(n.resistors, resistor{a: a, b: b, g: 1 / ohms})
}

// AddC adds a capacitor.
func (n *Netlist) AddC(a, b Node, farads float64) {
	if farads <= 0 {
		panic(fmt.Sprintf("spice: non-positive capacitance %g", farads))
	}
	n.capacitors = append(n.capacitors, capacitor{a: a, b: b, c: farads})
}

// AddMOS adds a transistor via its Eval function (drain, gate, source).
func (n *Netlist) AddMOS(d, g, s Node, eval func(vd, vg, vs float64) (id, gm, gds float64)) {
	n.mosfets = append(n.mosfets, mosfet{d: d, g: g, s: s, eval: eval})
}

// AddBehavioral attaches a nonlinear one-port between node and ground.
func (n *Netlist) AddBehavioral(node Node, dev Behavioral) {
	n.behaviorals = append(n.behaviorals, behavioral{n: node, dev: dev})
}

// Options configures analyses.
type Options struct {
	// TEnd is the transient span.
	TEnd float64
	// Dt is the fixed step; TEnd/1000 if zero.
	Dt float64
	// Gmin is the per-free-node grounding conductance; 1e-9 if zero.
	Gmin float64
	// NewtonTol is the Newton voltage tolerance; 1e-6 V if zero.
	NewtonTol float64
	// MaxNewton bounds Newton iterations per solve; 100 if zero.
	MaxNewton int
	// Adaptive enables local-truncation-error step control: the step
	// shrinks through fast edges and grows across quiet spans, bounded by
	// [Dt/8, 16·Dt]. Waveforms then carry non-uniform time points.
	Adaptive bool
	// LTETol is the per-step voltage error target for adaptive stepping
	// (1 mV if zero).
	LTETol float64
}

// Result holds transient waveforms for every node (driven nodes included for
// convenience).
type Result struct {
	net   *Netlist
	Waves []*waveform.Waveform
	// Steps and NewtonIterations are cost counters for the speedup benches.
	Steps            int
	NewtonIterations int
	// Factorizations counts LU factorizations performed.
	Factorizations int
}

// Wave returns the waveform of the named node.
func (r *Result) Wave(name string) (*waveform.Waveform, error) {
	id, ok := r.net.nodeIndex[name]
	if !ok {
		return nil, fmt.Errorf("spice: unknown node %q", name)
	}
	return r.Waves[id], nil
}

// engine carries the prepared solve structures.
type engine struct {
	net     *Netlist
	opt     Options
	freeIdx []int // node -> free index or -1
	free    []Node
	perm    []int // free index -> skyline index (RCM)
	tmpl    *matrix.SkylineTemplate
	mat     *matrix.Skyline
	rhs     []float64
	xp      []float64 // permuted RHS / solution scratch for solveNewton
	v       []float64 // full node voltages (driven + free)
	t       float64
	dt      float64 // 0 during DC solves (capacitors open)
	newton  int
	factor  int
}

func (n *Netlist) prepare(opt Options) (*engine, error) {
	if opt.Gmin == 0 {
		opt.Gmin = 1e-9
	}
	if opt.NewtonTol == 0 {
		opt.NewtonTol = 1e-6
	}
	if opt.MaxNewton == 0 {
		opt.MaxNewton = 100
	}
	e := &engine{net: n, opt: opt}
	e.freeIdx = make([]int, len(n.nodeNames))
	for i := range e.freeIdx {
		if _, ok := n.driven[Node(i)]; ok {
			e.freeIdx[i] = -1
		} else {
			e.freeIdx[i] = len(e.free)
			e.free = append(e.free, Node(i))
		}
	}
	if len(e.free) == 0 {
		return nil, fmt.Errorf("spice: no free nodes in %q", n.Name)
	}
	// Build the free-free adjacency (union of all element patterns).
	pat := matrix.NewSparse(len(e.free))
	pair := func(a, b Node) {
		fa, fb := e.fidx(a), e.fidx(b)
		if fa >= 0 {
			pat.Add(fa, fa, 1)
		}
		if fb >= 0 {
			pat.Add(fb, fb, 1)
		}
		if fa >= 0 && fb >= 0 && fa != fb {
			pat.Add(fa, fb, 1)
			pat.Add(fb, fa, 1)
		}
	}
	for _, r := range n.resistors {
		pair(r.a, r.b)
	}
	for _, c := range n.capacitors {
		pair(c.a, c.b)
	}
	for _, m := range n.mosfets {
		pair(m.d, m.s)
		pair(m.d, m.g)
		pair(m.s, m.g)
	}
	for _, b := range n.behaviorals {
		pair(b.n, b.n)
	}
	// Freeze the assembly-side pattern into CSR once: the RCM ordering and
	// the skyline template derive from flat sorted arrays instead of the
	// map-backed accumulator.
	patc := pat.Compile()
	adj := patc.Adjacency()
	e.perm = matrix.RCM(adj)
	permAdj := patc.Permuted(e.perm).Adjacency()
	e.tmpl = matrix.NewSkylineTemplate(permAdj, false)
	e.mat = e.tmpl.NewMatrix()
	e.rhs = make([]float64, len(e.free))
	e.xp = make([]float64, len(e.free))
	e.v = make([]float64, len(n.nodeNames))
	return e, nil
}

func (e *engine) fidx(n Node) int {
	if n == Ground {
		return -1
	}
	return e.freeIdx[n]
}

// volt returns the present voltage of any node, honoring driven sources.
func (e *engine) volt(n Node) float64 {
	if n == Ground {
		return 0
	}
	return e.v[n]
}

// addG stamps a conductance between nodes a and b, moving contributions of
// driven nodes to the RHS.
func (e *engine) addG(a, b Node, g float64) {
	fa, fb := e.fidx(a), e.fidx(b)
	if fa >= 0 {
		e.mat.Add(e.perm[fa], e.perm[fa], g)
		if fb >= 0 {
			e.mat.Add(e.perm[fa], e.perm[fb], -g)
		} else {
			e.rhs[fa] += g * e.volt(b)
		}
	}
	if fb >= 0 {
		e.mat.Add(e.perm[fb], e.perm[fb], g)
		if fa >= 0 {
			e.mat.Add(e.perm[fb], e.perm[fa], -g)
		} else {
			e.rhs[fb] += g * e.volt(a)
		}
	}
}

// addGDirectional stamps the entry row=ra, col=ca with value g (for
// nonsymmetric MOSFET transconductance), folding driven columns into RHS.
func (e *engine) addGDirectional(ra, ca Node, g float64) {
	fr := e.fidx(ra)
	if fr < 0 {
		return
	}
	fc := e.fidx(ca)
	if fc >= 0 {
		e.mat.Add(e.perm[fr], e.perm[fc], g)
	} else {
		e.rhs[fr] -= g * e.volt(ca)
	}
}

// addI stamps a current i flowing INTO node n.
func (e *engine) addI(n Node, i float64) {
	if f := e.fidx(n); f >= 0 {
		e.rhs[f] += i
	}
}

// stampAll rebuilds the matrix and RHS for the present Newton voltages.
func (e *engine) stampAll() {
	e.mat.Clear()
	for i := range e.rhs {
		e.rhs[i] = 0
	}
	for _, f := range e.free {
		e.mat.Add(e.perm[e.freeIdx[f]], e.perm[e.freeIdx[f]], e.opt.Gmin)
	}
	for _, r := range e.net.resistors {
		e.addG(r.a, r.b, r.g)
	}
	if e.dt > 0 {
		for i := range e.net.capacitors {
			c := &e.net.capacitors[i]
			geq := 2 * c.c / e.dt
			// Trapezoidal companion: i = geq·v − (geq·vPrev + iPrev).
			ieq := geq*c.vPrev + c.iPrev
			e.addG(c.a, c.b, geq)
			e.addI(c.a, ieq)
			e.addI(c.b, -ieq)
		}
	}
	for _, m := range e.net.mosfets {
		vd, vg, vs := e.volt(m.d), e.volt(m.g), e.volt(m.s)
		id, gm, gds := m.eval(vd, vg, vs)
		// Linearized drain current: i ≈ Ieq + gm·vgs + gds·vds.
		ieq := id - gm*(vg-vs) - gds*(vd-vs)
		// Row d: current leaves node d into the channel.
		e.addGDirectional(m.d, m.g, gm)
		e.addGDirectional(m.d, m.d, gds)
		e.addGDirectional(m.d, m.s, -(gm + gds))
		e.addI(m.d, -ieq)
		// Row s: the same current enters node s.
		e.addGDirectional(m.s, m.g, -gm)
		e.addGDirectional(m.s, m.d, -gds)
		e.addGDirectional(m.s, m.s, gm+gds)
		e.addI(m.s, ieq)
	}
	for _, b := range e.net.behaviorals {
		v := e.volt(b.n)
		i, di := b.dev.Current(v, e.t)
		// i(v) ≈ i0 + di·(v − v0): conductance −di, source i0 − di·v0.
		e.addGDirectional(b.n, b.n, -di)
		e.addI(b.n, i-di*v)
	}
}

// solveNewton iterates to convergence at the present time/dt configuration.
func (e *engine) solveNewton() error {
	for it := 0; it < e.opt.MaxNewton; it++ {
		e.newton++
		// Refresh driven node voltages.
		for node, src := range e.net.driven {
			e.v[node] = src(e.t)
		}
		e.stampAll()
		if err := e.mat.FactorLU(); err != nil {
			return fmt.Errorf("spice: t=%g: %w", e.t, err)
		}
		e.factor++
		// Permute the RHS into skyline order, solve in place, and read the
		// solution back through the permutation — no per-iteration slices.
		for i, p := range e.perm {
			e.xp[p] = e.rhs[i]
		}
		e.mat.SolveLUTo(e.xp, e.xp)
		worst := 0.0
		for i, f := range e.free {
			xi := e.xp[e.perm[i]]
			if d := math.Abs(xi - e.v[f]); d > worst {
				worst = d
			}
			e.v[f] = xi
		}
		if worst < e.opt.NewtonTol {
			return nil
		}
	}
	return fmt.Errorf("spice: Newton did not converge at t=%g", e.t)
}

// DCOperatingPoint solves the static network (capacitors open) at time t and
// returns the node voltages indexed by Node.
func (n *Netlist) DCOperatingPoint(t float64, opt Options) ([]float64, error) {
	e, err := n.prepare(opt)
	if err != nil {
		return nil, err
	}
	e.t = t
	e.dt = 0
	if err := e.solveNewton(); err != nil {
		return nil, err
	}
	return append([]float64(nil), e.v...), nil
}

// Transient runs a fixed-step trapezoidal transient analysis from a DC
// operating point at t=0.
func (n *Netlist) Transient(opt Options) (*Result, error) {
	if opt.TEnd <= 0 {
		return nil, fmt.Errorf("spice: TEnd must be positive")
	}
	if opt.Dt <= 0 {
		opt.Dt = opt.TEnd / 1000
	}
	e, err := n.prepare(opt)
	if err != nil {
		return nil, err
	}
	// DC init.
	e.t, e.dt = 0, 0
	if err := e.solveNewton(); err != nil {
		return nil, fmt.Errorf("spice: DC init: %w", err)
	}
	// Initialize capacitor companion state from the operating point.
	for i := range n.capacitors {
		c := &n.capacitors[i]
		c.vPrev = e.volt(c.a) - e.volt(c.b)
		c.iPrev = 0
	}
	defer func() {
		// Reset companion state so the netlist can be reused.
		for i := range n.capacitors {
			n.capacitors[i].vPrev, n.capacitors[i].iPrev = 0, 0
		}
	}()

	res := &Result{net: n, Waves: make([]*waveform.Waveform, len(n.nodeNames))}
	for i := range res.Waves {
		res.Waves[i] = waveform.New(1024)
		res.Waves[i].Append(0, e.v[i])
	}
	accept := func() {
		for i := range n.capacitors {
			c := &n.capacitors[i]
			vNow := e.volt(c.a) - e.volt(c.b)
			geq := 2 * c.c / e.dt
			c.iPrev = geq*(vNow-c.vPrev) - c.iPrev
			c.vPrev = vNow
		}
		for i := range res.Waves {
			res.Waves[i].Append(e.t, e.v[i])
		}
		res.Steps++
	}
	if !opt.Adaptive {
		nSteps := int(math.Round(opt.TEnd / opt.Dt))
		if nSteps < 1 {
			nSteps = 1
		}
		e.dt = opt.Dt
		for step := 1; step <= nSteps; step++ {
			e.t = float64(step) * opt.Dt
			if err := e.solveNewton(); err != nil {
				return nil, err
			}
			accept()
		}
		res.NewtonIterations = e.newton
		res.Factorizations = e.factor
		return res, nil
	}

	// Adaptive stepping: linear extrapolation from the last two accepted
	// points predicts the next solution; the predictor-corrector gap
	// estimates the local truncation error and steers the step.
	tol := opt.LTETol
	if tol == 0 {
		tol = 1e-3
	}
	dtMin, dtMax := opt.Dt/8, 16*opt.Dt
	dt := opt.Dt
	tNow := 0.0
	vPrev := append([]float64(nil), e.v...) // previous accepted solution
	dtPrev := 0.0
	for tNow < opt.TEnd-1e-21 {
		if tNow+dt > opt.TEnd {
			dt = opt.TEnd - tNow
		}
		// Save state for possible rejection.
		vSave := append([]float64(nil), e.v...)
		e.dt = dt
		e.t = tNow + dt
		if err := e.solveNewton(); err != nil {
			return nil, err
		}
		// Predictor: linear extrapolation of the accepted history.
		worst := 0.0
		if dtPrev > 0 {
			for _, f := range e.free {
				pred := vSave[f] + (vSave[f]-vPrev[f])*(dt/dtPrev)
				if d := math.Abs(e.v[f] - pred); d > worst {
					worst = d
				}
			}
		}
		if worst > 4*tol && dt > dtMin {
			// Reject: restore and retry with half the step.
			copy(e.v, vSave)
			dt = math.Max(dt/2, dtMin)
			continue
		}
		// Accept.
		vPrev = vSave
		dtPrev = dt
		tNow += dt
		accept()
		switch {
		case worst > tol:
			dt = math.Max(dt*0.7, dtMin)
		case worst < tol/8:
			dt = math.Min(dt*1.5, dtMax)
		}
	}
	res.NewtonIterations = e.newton
	res.Factorizations = e.factor
	return res, nil
}
