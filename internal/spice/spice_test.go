package spice

import (
	"math"
	"testing"

	"xtverify/internal/devices"
	"xtverify/internal/waveform"
)

func TestRCStepMatchesAnalytic(t *testing.T) {
	const (
		R   = 1000.0
		C   = 100e-15
		tau = R * C
	)
	n := NewNetlist("rc")
	in := n.Node("in")
	out := n.Node("out")
	n.Drive(in, waveform.Ramp(0, 1, tau/2, 0))
	n.AddR(in, out, R)
	n.AddC(out, Ground, C)
	res, err := n.Transient(Options{TEnd: tau/2 + 8*tau, Dt: tau / 400})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Wave("out")
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.5, 1, 2, 4} {
		tt := tau/2 + frac*tau
		want := 1 - math.Exp(-frac)
		if got := w.At(tt); math.Abs(got-want) > 0.005 {
			t.Errorf("v(%.1fτ) = %.4f, want %.4f", frac, got, want)
		}
	}
}

func TestDividerDC(t *testing.T) {
	n := NewNetlist("div")
	top := n.Node("top")
	mid := n.Node("mid")
	n.Drive(top, waveform.Const(3))
	n.AddR(top, mid, 1000)
	n.AddR(mid, Ground, 2000)
	v, err := n.DCOperatingPoint(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[mid]-2.0) > 1e-4 {
		t.Errorf("divider mid = %g, want 2", v[mid])
	}
}

// buildInverter wires a CMOS inverter with the 0.25µm devices.
func buildInverter(n *Netlist, in, out, vdd Node, wn, wp float64) {
	nm := &devices.MOSFET{Params: devices.Tech025(devices.NMOS), W: wn, L: 0.25e-6}
	pm := &devices.MOSFET{Params: devices.Tech025(devices.PMOS), W: wp, L: 0.25e-6}
	n.AddMOS(out, in, Ground, nm.Eval)
	n.AddMOS(out, in, vdd, pm.Eval)
}

func TestInverterVTC(t *testing.T) {
	n := NewNetlist("inv")
	in := n.Node("in")
	out := n.Node("out")
	vdd := n.Node("vdd")
	n.Drive(vdd, waveform.Const(devices.Vdd025))
	n.Drive(in, waveform.Const(0))
	buildInverter(n, in, out, vdd, 1e-6, 2e-6)
	// Sweep the input and check the transfer curve is monotone decreasing
	// with full-swing endpoints.
	prev := math.Inf(1)
	for _, vin := range []float64{0, 0.5, 1.0, 1.2, 1.4, 1.6, 2.0, 2.5, 3.0} {
		n.Drive(in, waveform.Const(vin))
		v, err := n.DCOperatingPoint(0, Options{})
		if err != nil {
			t.Fatalf("vin=%g: %v", vin, err)
		}
		if v[out] > prev+1e-6 {
			t.Errorf("VTC not monotone at vin=%g: %g > %g", vin, v[out], prev)
		}
		prev = v[out]
		switch vin {
		case 0:
			if math.Abs(v[out]-3) > 0.01 {
				t.Errorf("out(0) = %g, want ≈3", v[out])
			}
		case 3:
			if math.Abs(v[out]) > 0.01 {
				t.Errorf("out(3) = %g, want ≈0", v[out])
			}
		}
	}
}

func TestInverterTransient(t *testing.T) {
	n := NewNetlist("invtr")
	in := n.Node("in")
	out := n.Node("out")
	vdd := n.Node("vdd")
	n.Drive(vdd, waveform.Const(devices.Vdd025))
	n.Drive(in, waveform.Ramp(0, 3, 100e-12, 100e-12))
	buildInverter(n, in, out, vdd, 2e-6, 4e-6)
	n.AddC(out, Ground, 20e-15)
	res, err := n.Transient(Options{TEnd: 2e-9, Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Wave("out")
	if math.Abs(w.Start()-3) > 0.01 {
		t.Errorf("output starts at %g, want 3", w.Start())
	}
	if math.Abs(w.End()) > 0.01 {
		t.Errorf("output ends at %g, want 0", w.End())
	}
	// 50% output crossing must trail 50% input crossing (causal delay).
	tin := 150e-12 // input crosses 1.5V midway through its ramp
	tout, ok := w.CrossTime(1.5, false)
	if !ok || tout <= tin {
		t.Errorf("output crossing %g should trail input %g", tout, tin)
	}
}

func TestCouplingGlitchInSPICE(t *testing.T) {
	// Aggressor coupled to a resistively held victim produces a positive
	// glitch proportional to coupling.
	glitch := func(cc float64) float64 {
		n := NewNetlist("pair")
		asrc := n.Node("asrc")
		a := n.Node("a")
		v := n.Node("v")
		n.Drive(asrc, waveform.Ramp(0, 3, 100e-12, 100e-12))
		n.AddR(asrc, a, 200)
		n.AddR(v, Ground, 1000) // victim holding resistor
		n.AddC(a, Ground, 20e-15)
		n.AddC(v, Ground, 20e-15)
		n.AddC(a, v, cc)
		res, err := n.Transient(Options{TEnd: 2e-9, Dt: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		w, _ := res.Wave("v")
		return w.PeakDeviation(0).Value
	}
	small := glitch(5e-15)
	big := glitch(20e-15)
	if small <= 0 || big <= small {
		t.Errorf("glitch should be positive and grow with coupling: %g, %g", small, big)
	}
}

func TestBehavioralMatchesResistor(t *testing.T) {
	// A behavioral i(v) = (Vs−v)/R termination must match a resistor to a
	// driven node.
	build := func(useBehavioral bool) *waveform.Waveform {
		n := NewNetlist("beh")
		out := n.Node("out")
		n.AddC(out, Ground, 50e-15)
		src := waveform.Ramp(0, 3, 50e-12, 200e-12)
		if useBehavioral {
			n.AddBehavioral(out, thevenin{g: 1e-3, vs: src})
		} else {
			in := n.Node("in")
			n.Drive(in, src)
			n.AddR(in, out, 1000)
		}
		res, err := n.Transient(Options{TEnd: 2e-9, Dt: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		w, _ := res.Wave("out")
		return w
	}
	a := build(false)
	b := build(true)
	if d := waveform.MaxAbsDiff(a, b, 500); d > 1e-5 {
		t.Errorf("behavioral path deviates by %g V", d)
	}
}

type thevenin struct {
	g  float64
	vs waveform.Source
}

func (th thevenin) Current(v, t float64) (float64, float64) {
	return th.g * (th.vs(t) - v), -th.g
}

func TestOptionsValidation(t *testing.T) {
	n := NewNetlist("bad")
	n.Node("a")
	if _, err := n.Transient(Options{TEnd: 0}); err == nil {
		t.Error("zero TEnd accepted")
	}
	all := NewNetlist("alldriven")
	x := all.Node("x")
	all.Drive(x, waveform.Const(1))
	if _, err := all.Transient(Options{TEnd: 1e-9}); err == nil {
		t.Error("netlist without free nodes accepted")
	}
}

func TestBadElementPanics(t *testing.T) {
	n := NewNetlist("p")
	a := n.Node("a")
	for _, f := range []func(){
		func() { n.AddR(a, Ground, 0) },
		func() { n.AddC(a, Ground, -1) },
		func() { n.Drive(Ground, waveform.Const(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNetlistReusableAfterTransient(t *testing.T) {
	// Companion state must be reset so back-to-back runs agree.
	n := NewNetlist("reuse")
	in := n.Node("in")
	out := n.Node("out")
	n.Drive(in, waveform.Ramp(0, 1, 1e-10, 1e-10))
	n.AddR(in, out, 1000)
	n.AddC(out, Ground, 100e-15)
	r1, err := n.Transient(Options{TEnd: 1e-9, Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := n.Transient(Options{TEnd: 1e-9, Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := r1.Wave("out")
	w2, _ := r2.Wave("out")
	if d := waveform.MaxAbsDiff(w1, w2, 200); d > 1e-12 {
		t.Errorf("re-run deviates by %g", d)
	}
}

func TestCostCounters(t *testing.T) {
	n := NewNetlist("cnt")
	in := n.Node("in")
	out := n.Node("out")
	n.Drive(in, waveform.Const(1))
	n.AddR(in, out, 100)
	n.AddC(out, Ground, 1e-15)
	res, err := n.Transient(Options{TEnd: 1e-10, Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 100 || res.NewtonIterations < res.Steps || res.Factorizations < res.Steps {
		t.Errorf("counters: steps=%d newton=%d factor=%d", res.Steps, res.NewtonIterations, res.Factorizations)
	}
	if _, err := res.Wave("nope"); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestAdaptiveMatchesFixedStep(t *testing.T) {
	build := func() *Netlist {
		n := NewNetlist("ad")
		in := n.Node("in")
		out := n.Node("out")
		far := n.Node("far")
		n.Drive(in, waveform.Pulse(0, 3, 200e-12, 100e-12, 1.5e-9, 100e-12))
		n.AddR(in, out, 500)
		n.AddR(out, far, 500)
		n.AddC(out, Ground, 40e-15)
		n.AddC(far, Ground, 40e-15)
		return n
	}
	fixed, err := build().Transient(Options{TEnd: 3e-9, Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := build().Transient(Options{TEnd: 3e-9, Dt: 1e-12, Adaptive: true, LTETol: 0.5e-3})
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := fixed.Wave("far")
	wa, _ := adaptive.Wave("far")
	if d := waveform.MaxAbsDiff(wf, wa, 600); d > 0.02 {
		t.Errorf("adaptive deviates from fixed-step by %g V", d)
	}
	if adaptive.Steps >= fixed.Steps {
		t.Errorf("adaptive used %d steps, fixed %d — no savings", adaptive.Steps, fixed.Steps)
	}
	t.Logf("steps: fixed %d, adaptive %d (%.1fx fewer)", fixed.Steps, adaptive.Steps,
		float64(fixed.Steps)/float64(adaptive.Steps))
}

func TestAdaptiveRefinesEdges(t *testing.T) {
	// The step density around the input edge must exceed the density in the
	// quiet tail.
	n := NewNetlist("edges")
	in := n.Node("in")
	out := n.Node("out")
	n.Drive(in, waveform.Ramp(0, 3, 1e-9, 50e-12))
	n.AddR(in, out, 1000)
	n.AddC(out, Ground, 50e-15)
	res, err := n.Transient(Options{TEnd: 4e-9, Dt: 2e-12, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Wave("out")
	countIn := func(lo, hi float64) int {
		c := 0
		for _, tt := range w.T {
			if tt >= lo && tt < hi {
				c++
			}
		}
		return c
	}
	edge := countIn(1.0e-9, 1.4e-9)
	tail := countIn(3.4e-9, 3.8e-9)
	if edge <= tail {
		t.Errorf("edge density %d should exceed quiet tail %d", edge, tail)
	}
}
