package romsim

import (
	"math"
	"testing"

	"xtverify/internal/circuit"
	"xtverify/internal/mna"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

// lumpedRC is a one-node circuit: port at "a" with capacitance C to ground.
// Driven through a Thevenin resistor R it is an exact first-order system.
func lumpedRC(c float64) *circuit.Circuit {
	ckt := circuit.New("rc")
	a := ckt.Node("a")
	ckt.AddPort("drv", a, circuit.PortDriver, 0)
	ckt.AddCapacitor("c", a, circuit.Ground, c)
	return ckt
}

func reduce(t *testing.T, ckt *circuit.Circuit, order int) *sympvl.Model {
	t.Helper()
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sympvl.Reduce(sys, sympvl.Options{Order: order})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// linearDevice adapts a Thevenin termination to the nonlinear Device
// interface, to cross-check the Woodbury path against the folded-linear path.
type linearDevice struct {
	g  float64
	vs waveform.Source
}

func (d linearDevice) Current(v, t float64) (float64, float64) {
	return d.g * (d.vs(t) - v), -d.g
}

func TestFirstOrderStepResponse(t *testing.T) {
	const (
		C = 50e-15
		R = 1000.0
	)
	m := reduce(t, lumpedRC(C), 2)
	tau := R * C
	t0 := tau / 2 // step after t=0 so the DC init sees the low source
	res, err := Simulate(m, []Termination{{Linear: &Linear{G: 1 / R, Vs: waveform.Ramp(0, 1, t0, 0)}}},
		Options{TEnd: t0 + 8*tau, Dt: tau / 200})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Ports[0]
	for _, frac := range []float64{0.5, 1, 2, 4} {
		tt := frac * tau
		want := 1 - math.Exp(-tt/tau)
		got := w.At(t0 + tt)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("v(%.1fτ) = %.4f, want %.4f", frac, got, want)
		}
	}
	if math.Abs(w.End()-1) > 1e-3 {
		t.Errorf("final value %.4f, want 1", w.End())
	}
}

func TestNonlinearPathMatchesLinear(t *testing.T) {
	const (
		C = 20e-15
		R = 500.0
	)
	m := reduce(t, lumpedRC(C), 2)
	src := waveform.Ramp(0, 3, 10e-12, 100e-12)
	opt := Options{TEnd: 2e-9, Dt: 1e-12}
	lin, err := Simulate(m, []Termination{{Linear: &Linear{G: 1 / R, Vs: src}}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Simulate(m, []Termination{{Dev: linearDevice{g: 1 / R, vs: src}}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := waveform.MaxAbsDiff(lin.Ports[0], nl.Ports[0], 500); d > 1e-6 {
		t.Errorf("Woodbury path deviates from folded-linear path by %g V", d)
	}
}

// coupledPair builds aggressor and victim RC lines with coupling; ports:
// 0 = aggressor driver, 1 = victim driver, 2 = victim receiver.
func coupledPair(nseg int, cc float64) *circuit.Circuit {
	ckt := circuit.New("pair")
	var aPrev, vPrev circuit.NodeID
	for l, name := range []string{"a", "v"} {
		n0 := ckt.Node(name + "0")
		ckt.AddPort(name+"drv", n0, circuit.PortDriver, l)
		prev := n0
		for s := 1; s <= nseg; s++ {
			n := ckt.Node(name + string(rune('0'+s)))
			ckt.AddResistor(name+"r", prev, n, 50)
			ckt.AddCapacitor(name+"c", n, circuit.Ground, 4e-15)
			prev = n
		}
		if l == 0 {
			aPrev = prev
		} else {
			vPrev = prev
		}
	}
	_ = aPrev
	for s := 1; s <= nseg; s++ {
		a, _ := ckt.LookupNode("a" + string(rune('0'+s)))
		v, _ := ckt.LookupNode("v" + string(rune('0'+s)))
		ckt.AddCoupling("cc", a, v, cc)
	}
	ckt.AddPort("vrcv", vPrev, circuit.PortReceiver, 1)
	return ckt
}

func simulateGlitch(t *testing.T, cc float64) float64 {
	t.Helper()
	m := reduce(t, coupledPair(6, cc), 12)
	res, err := Simulate(m, []Termination{
		{Linear: &Linear{G: 1 / 200.0, Vs: waveform.Ramp(0, 3, 50e-12, 100e-12)}}, // aggressor rises
		{Linear: &Linear{G: 1 / 1000.0, Vs: waveform.Const(0)}},                   // victim held low
		{}, // receiver open
	}, Options{TEnd: 3e-9, Dt: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ports[2].PeakDeviation(0).Value
}

func TestGlitchPositiveAndGrowsWithCoupling(t *testing.T) {
	small := simulateGlitch(t, 2e-15)
	big := simulateGlitch(t, 10e-15)
	if small <= 0 || big <= 0 {
		t.Fatalf("glitches must be positive for rising aggressor: small=%g big=%g", small, big)
	}
	if big <= small {
		t.Errorf("glitch should grow with coupling: %g (2f) vs %g (10f)", small, big)
	}
	if big > 3 {
		t.Errorf("glitch %g exceeds the supply", big)
	}
}

func TestVictimReturnsToBaseline(t *testing.T) {
	m := reduce(t, coupledPair(4, 6e-15), 10)
	res, err := Simulate(m, []Termination{
		{Linear: &Linear{G: 1 / 200.0, Vs: waveform.Ramp(0, 3, 50e-12, 100e-12)}},
		{Linear: &Linear{G: 1 / 500.0, Vs: waveform.Const(0)}},
		{},
	}, Options{TEnd: 5e-9, Dt: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	if end := res.Ports[2].End(); math.Abs(end) > 1e-3 {
		t.Errorf("victim should settle back to 0, got %g", end)
	}
}

func TestOpenReceiverTracksDriverAtDC(t *testing.T) {
	// Single line: driver steps to 3V; open receiver must settle at 3V.
	ckt := circuit.New("line")
	n0 := ckt.Node("n0")
	ckt.AddPort("drv", n0, circuit.PortDriver, 0)
	prev := n0
	for s := 1; s <= 5; s++ {
		n := ckt.Node("n" + string(rune('0'+s)))
		ckt.AddResistor("r", prev, n, 100)
		ckt.AddCapacitor("c", n, circuit.Ground, 5e-15)
		prev = n
	}
	ckt.AddPort("rcv", prev, circuit.PortReceiver, 0)
	m := reduce(t, ckt, 8)
	res, err := Simulate(m, []Termination{
		{Linear: &Linear{G: 1 / 300.0, Vs: waveform.Ramp(0, 3, 20e-12, 80e-12)}},
		{},
	}, Options{TEnd: 4e-9, Dt: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	if end := res.Ports[1].End(); math.Abs(end-3) > 5e-3 {
		t.Errorf("receiver DC value %g, want 3", end)
	}
	// Receiver must lag the driver (RC delay): 50% crossing later.
	td, okd := res.Ports[0].CrossTime(1.5, true)
	tr, okr := res.Ports[1].CrossTime(1.5, true)
	if !okd || !okr || tr <= td {
		t.Errorf("receiver should lag driver: drv=%g rcv=%g", td, tr)
	}
}

func TestTerminationValidation(t *testing.T) {
	m := reduce(t, lumpedRC(1e-15), 1)
	if _, err := Simulate(m, nil, Options{TEnd: 1e-9}); err == nil {
		t.Error("wrong termination count accepted")
	}
	both := Termination{Linear: &Linear{G: 1, Vs: waveform.Const(0)}, Dev: linearDevice{g: 1, vs: waveform.Const(0)}}
	if _, err := Simulate(m, []Termination{both}, Options{TEnd: 1e-9}); err == nil {
		t.Error("double termination accepted")
	}
	neg := Termination{Linear: &Linear{G: -1, Vs: waveform.Const(0)}}
	if _, err := Simulate(m, []Termination{neg}, Options{TEnd: 1e-9}); err == nil {
		t.Error("negative conductance accepted")
	}
	if _, err := Simulate(m, []Termination{{}}, Options{TEnd: 0}); err == nil {
		t.Error("zero TEnd accepted")
	}
}

func TestDCInitStartsSettled(t *testing.T) {
	// Victim held at 3V via its driver: with DC init the waveform starts at
	// 3V, not 0.
	m := reduce(t, lumpedRC(10e-15), 1)
	res, err := Simulate(m, []Termination{
		{Linear: &Linear{G: 1 / 100.0, Vs: waveform.Const(3)}},
	}, Options{TEnd: 1e-10, Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if v0 := res.Ports[0].Start(); math.Abs(v0-3) > 1e-2 {
		t.Errorf("DC init start = %g, want 3", v0)
	}
}

func TestStepsAndNewtonCounters(t *testing.T) {
	m := reduce(t, lumpedRC(1e-15), 1)
	res, err := Simulate(m, []Termination{
		{Linear: &Linear{G: 1e-3, Vs: waveform.Const(1)}},
	}, Options{TEnd: 1e-9, Dt: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 100 {
		t.Errorf("steps = %d, want 100", res.Steps)
	}
	if res.NewtonIterations == 0 {
		t.Error("Newton counter not incremented")
	}
}
