// Direct (unreduced) MNA transient integration — the last rung of the
// chip-level fallback ladder before a cluster is declared unverified.
//
// When SyMPVL reduction breaks down (indefinite G after roundoff, a
// pathological port structure that defeats the block Lanczos process, or a
// reduced model whose termination fold-in is not SPD), the cluster can still
// be verified by integrating the full MNA system
//
//	G·v + C·dv/dt = B·i(t)
//
// directly with the same trapezoidal scheme and the same terminations as the
// reduced flow. The constant part of the Jacobian, K = (2/Δt)·C + G + Σ g_j·
// e_j·e_jᵀ, is LU-factored once; each Newton step then costs one cached
// solve plus a small Woodbury core over the nonlinear ports, exactly
// mirroring the diagonal-plus-rank-k structure of the reduced solver. This
// is O(n³) once and O(n²) per step — far slower than the reduced model, but
// robust, and only ever run on the rare cluster that defeated reduction.
package romsim

import (
	"fmt"
	"math"

	"xtverify/internal/matrix"
	"xtverify/internal/mna"
	"xtverify/internal/obs"
	"xtverify/internal/waveform"
)

// SimulateDirect runs a transient analysis of the unreduced MNA system with
// the given port terminations (len(terms) must equal sys.P). The result is
// indexed like the system's ports, so callers can swap it in wherever a
// reduced-model Simulate result is expected.
func SimulateDirect(sys *mna.System, terms []Termination, opt Options) (*Result, error) {
	if len(terms) != sys.P {
		return nil, fmt.Errorf("romsim: %d terminations for %d ports", len(terms), sys.P)
	}
	if opt.TEnd <= 0 {
		return nil, fmt.Errorf("romsim: TEnd must be positive")
	}
	dt := opt.Dt
	if dt <= 0 {
		dt = opt.TEnd / 1000
	}
	tol := opt.NewtonTol
	if tol <= 0 {
		tol = 1e-9
	}
	maxNewton := opt.MaxNewton
	if maxNewton <= 0 {
		maxNewton = 50
	}
	n := sys.N

	var linPorts, nlPorts []int
	for j, tm := range terms {
		if tm.Linear != nil && tm.Dev != nil {
			return nil, fmt.Errorf("romsim: port %d has both linear and nonlinear terminations", j)
		}
		if tm.Linear != nil {
			if tm.Linear.G < 0 {
				return nil, fmt.Errorf("romsim: port %d has negative conductance", j)
			}
			linPorts = append(linPorts, j)
		}
		if tm.Dev != nil {
			nlPorts = append(nlPorts, j)
		}
	}
	nNL := len(nlPorts)

	gd := sys.G.Dense()
	cd := sys.C.Dense()
	// K_dc = G + Σ_lin g_j·e_j·e_jᵀ (a=0), K_tr = K_dc + a·C with a = 2/Δt.
	kdc := gd.Clone()
	for _, j := range linPorts {
		node := sys.PortNodes[j]
		kdc.Add(node, node, terms[j].Linear.G)
	}
	a := 2 / dt
	ktr := kdc.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c := cd.At(i, j); c != 0 {
				ktr.Add(i, j, a*c)
			}
		}
	}
	luTR, err := matrix.FactorLU(ktr)
	if err != nil {
		return nil, fmt.Errorf("%w: transient system matrix singular: %v", ErrUnstableModel, err)
	}

	// Precompute K⁻¹·e_{node(k)} per nonlinear port for the Woodbury solve.
	kinvCols := func(lu *matrix.LU) ([][]float64, error) {
		cols := make([][]float64, nNL)
		for c, j := range nlPorts {
			e := make([]float64, n)
			e[sys.PortNodes[j]] = 1
			w, err := lu.Solve(e)
			if err != nil {
				return nil, err
			}
			cols[c] = w
		}
		return cols, nil
	}
	wTR, err := kinvCols(luTR)
	if err != nil {
		return nil, fmt.Errorf("romsim: direct solve: %w", err)
	}

	// Per-step and per-iteration scratch, allocated once for the whole run:
	// the Newton residual, the cached-LU solve target, the Woodbury core and
	// its pivot/RHS buffers, the trapezoidal history, and the forcing vector.
	scr := struct {
		r, x0, s, rhs []float64
		piv           []int
		core          *matrix.Dense
		hist, base, f []float64
	}{
		r:    make([]float64, n),
		x0:   make([]float64, n),
		s:    make([]float64, nNL),
		rhs:  make([]float64, nNL),
		piv:  make([]int, nNL),
		core: matrix.NewDense(nNL, nNL),
		hist: make([]float64, n),
		base: make([]float64, n),
		f:    make([]float64, n),
	}

	// newtonSolve solves (K + Σ s_k·e_k·e_kᵀ)·x = r with the cached LU of K
	// via the Woodbury identity over the nonlinear port nodes. The returned
	// slice aliases scratch and is only valid until the next call.
	woodburySolves := 0
	newtonSolve := func(lu *matrix.LU, w [][]float64, s, r []float64) ([]float64, error) {
		x0 := scr.x0
		if err := lu.SolveTo(x0, r); err != nil {
			return nil, err
		}
		if nNL == 0 {
			return x0, nil
		}
		woodburySolves++
		core, rhs := scr.core, scr.rhs
		for c := 0; c < nNL; c++ {
			for b := 0; b < nNL; b++ {
				if c == b {
					core.Set(c, b, 1)
				} else {
					core.Set(c, b, 0)
				}
			}
		}
		for c, jc := range nlPorts {
			node := sys.PortNodes[jc]
			for b := 0; b < nNL; b++ {
				core.Add(c, b, s[c]*w[b][node])
			}
			rhs[c] = s[c] * x0[node]
		}
		if err := matrix.SolveLUInPlace(core, scr.piv, rhs); err != nil {
			return nil, fmt.Errorf("romsim: Woodbury core singular: %w", err)
		}
		for c := range nlPorts {
			matrix.Axpy(-rhs[c], w[c], x0)
		}
		return x0, nil
	}

	// residualInto computes F(v) = K·v − base − Σ_nl e_k·i_k(v_k, t) into r
	// and the s = −di/dv Jacobian factors into s.
	residualInto := func(r, s []float64, k *matrix.Dense, base, v []float64, t float64) {
		k.MulVecTo(r, v)
		for i := range r {
			r[i] -= base[i]
		}
		for c, j := range nlPorts {
			node := sys.PortNodes[j]
			i, di := terms[j].Dev.Current(v[node], t)
			r[node] -= i
			s[c] = -di
		}
	}

	totalNewton := 0
	// newtonLoop drives vout (seeded from v0) to F(vout)=0. vout must not
	// alias v0.
	newtonLoop := func(k *matrix.Dense, lu *matrix.LU, w [][]float64, base, v0, vout []float64, t float64) error {
		copy(vout, v0)
		for it := 0; it < maxNewton; it++ {
			totalNewton++
			residualInto(scr.r, scr.s, k, base, vout, t)
			dv, err := newtonSolve(lu, w, scr.s, scr.r)
			if err != nil {
				return err
			}
			matrix.Axpy(-1, dv, vout)
			if matrix.NormInf(dv) < tol {
				return nil
			}
		}
		opt.Trace.Add(obs.CtrNewtonDivergences, 1)
		return fmt.Errorf("%w at t=%g", ErrNewtonDiverged, t)
	}
	// Post the iteration counters exactly once, error returns included.
	defer func() {
		opt.Trace.Add(obs.CtrNewtonIterations, int64(totalNewton))
		opt.Trace.Add(obs.CtrWoodburySolves, int64(woodburySolves))
	}()

	// Forcing from linear Thevenin sources at time t.
	forceInto := func(f []float64, t float64) {
		for i := range f {
			f[i] = 0
		}
		for _, j := range linPorts {
			lt := terms[j].Linear
			f[sys.PortNodes[j]] += lt.G * lt.Vs(t)
		}
	}

	// DC operating point with the a=0 matrix.
	v := make([]float64, n)
	vnext := make([]float64, n)
	if !opt.NoInitDC {
		luDC, err := matrix.FactorLU(kdc)
		if err != nil {
			return nil, fmt.Errorf("%w: DC system matrix singular: %v", ErrUnstableModel, err)
		}
		wDC, err := kinvCols(luDC)
		if err != nil {
			return nil, fmt.Errorf("romsim: direct DC solve: %w", err)
		}
		forceInto(scr.f, 0)
		if err := newtonLoop(kdc, luDC, wDC, scr.f, v, vnext, 0); err != nil {
			return nil, fmt.Errorf("romsim: DC init: %w", err)
		}
		v, vnext = vnext, v
	}
	vdot := make([]float64, n)

	nSteps := int(math.Round(opt.TEnd / dt))
	if nSteps < 1 {
		nSteps = 1
	}
	res := &Result{Ports: make([]*waveform.Waveform, sys.P)}
	for j := range res.Ports {
		res.Ports[j] = waveform.New(nSteps + 1)
		res.Ports[j].Append(0, v[sys.PortNodes[j]])
	}

	transSpan := opt.Trace.Start(obs.PhaseTransient)
	defer transSpan.End()
	for step := 1; step <= nSteps; step++ {
		if opt.Check != nil {
			if err := opt.Check(); err != nil {
				return nil, err
			}
		}
		t := float64(step) * dt
		// Trapezoidal: (a·C + G')·v_{n+1} = C·(a·v_n + v̇_n) + f(t) + B_nl·i.
		// The history product uses the compiled CSR form of C — O(nnz), not
		// the O(n²) dense sweep — and its sparse semantics are canonical:
		// both the CSR and the map-backed Sparse kernels iterate the stored
		// entries in identical sorted row-major order and agree bit-for-bit,
		// non-finite inputs included (pinned by TestCSRMatchesSparse). A
		// structural zero contributes exactly nothing; a diverging iterate
		// can therefore never smuggle 0·±Inf = NaN terms through absent
		// entries, and the guard below rejects non-finite states outright.
		hist, base := scr.hist, scr.base
		for i := 0; i < n; i++ {
			hist[i] = a*v[i] + vdot[i]
		}
		sys.C.MulVecTo(base, hist)
		forceInto(scr.f, t)
		matrix.Axpy(1, scr.f, base)
		if err := newtonLoop(ktr, luTR, wTR, base, v, vnext, t); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if !isFinite(vnext[i]) {
				opt.Trace.Add(obs.CtrNewtonDivergences, 1)
				return nil, fmt.Errorf("%w: non-finite state at t=%g", ErrNewtonDiverged, t)
			}
			vdot[i] = a*(vnext[i]-v[i]) - vdot[i]
		}
		v, vnext = vnext, v
		for j := range res.Ports {
			res.Ports[j].Append(t, v[sys.PortNodes[j]])
		}
		res.Steps++
	}
	res.NewtonIterations = totalNewton
	return res, nil
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
