package romsim

import (
	"math"
	"testing"

	"xtverify/internal/mna"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

// TestDenseNewtonMatchesWoodbury checks that the ablation solver path is
// numerically equivalent to the Sherman–Morrison–Woodbury path; the
// benchmark comparing their cost is only meaningful if they agree.
func TestDenseNewtonMatchesWoodbury(t *testing.T) {
	ckt := coupledPair(8, 6e-15)
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sympvl.Reduce(sys, sympvl.Options{Order: 14})
	if err != nil {
		t.Fatal(err)
	}
	// One nonlinear termination (victim hold), one linear aggressor, one
	// open receiver: exercises every Jacobian contribution.
	terms := []Termination{
		{Linear: &Linear{G: 1 / 200.0, Vs: waveform.Ramp(0, 3, 50e-12, 100e-12)}},
		{Dev: saturatingHold{}},
		{},
	}
	opt := Options{TEnd: 2e-9, Dt: 2e-12}
	wres, err := Simulate(m, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.DenseNewton = true
	dres, err := Simulate(m, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	for p := range wres.Ports {
		if d := waveform.MaxAbsDiff(wres.Ports[p], dres.Ports[p], 400); d > 1e-7 {
			t.Errorf("port %d: dense and Woodbury paths differ by %g V", p, d)
		}
	}
}

// saturatingHold is a nonlinear pulldown-like termination with a saturating
// I–V curve (definitely not representable by a linear conductance):
// i = −Imax·tanh(v/v0).
type saturatingHold struct{}

func (saturatingHold) Current(v, t float64) (float64, float64) {
	const (
		imax = 2e-3
		v0   = 0.8
	)
	th := math.Tanh(v / v0)
	return -imax * th, -imax * (1 - th*th) / v0
}
