package romsim

import (
	"errors"
	"math"
	"testing"

	"xtverify/internal/circuit"
	"xtverify/internal/mna"
	"xtverify/internal/waveform"
)

// coupledLadder builds a two-net RC ladder pair with a coupling capacitor in
// the middle: net A (driven) nodes a0-a1-a2, net B (victim) nodes b0-b1-b2.
func coupledLadder() *circuit.Circuit {
	ckt := circuit.New("ladder")
	a0, a1, a2 := ckt.Node("a0"), ckt.Node("a1"), ckt.Node("a2")
	b0, b1, b2 := ckt.Node("b0"), ckt.Node("b1"), ckt.Node("b2")
	ckt.AddPort("drvA", a0, circuit.PortDriver, 0)
	ckt.AddPort("drvB", b0, circuit.PortDriver, 1)
	ckt.AddPort("rcvB", b2, circuit.PortReceiver, 1)
	ckt.AddResistor("ra1", a0, a1, 200)
	ckt.AddResistor("ra2", a1, a2, 200)
	ckt.AddResistor("rb1", b0, b1, 200)
	ckt.AddResistor("rb2", b1, b2, 200)
	for i, n := range []circuit.NodeID{a0, a1, a2, b0, b1, b2} {
		ckt.AddCapacitor("cg", n, circuit.Ground, 10e-15+float64(i)*1e-15)
	}
	ckt.AddCoupling("cc", a1, b1, 25e-15)
	return ckt
}

// TestDirectMatchesReduced drives the same cluster through the reduced-order
// flow and the direct MNA integrator; at full order the reduced model is
// exact, so the port waveforms must agree to integration accuracy.
func TestDirectMatchesReduced(t *testing.T) {
	ckt := coupledLadder()
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		t.Fatal(err)
	}
	terms := []Termination{
		{Linear: &Linear{G: 1 / 1000.0, Vs: waveform.Ramp(0, 2.5, 100e-12, 100e-12)}},
		{Linear: &Linear{G: 1 / 2000.0, Vs: waveform.Const(0)}},
		{}, // open receiver
	}
	opt := Options{TEnd: 3e-9, Dt: 2e-12}
	m := reduce(t, ckt, sys.N)
	red, err := Simulate(m, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := SimulateDirect(sys, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	for p := range terms {
		for _, tt := range []float64{200e-12, 500e-12, 1e-9, 2.5e-9} {
			a, b := red.Ports[p].At(tt), dir.Ports[p].At(tt)
			if math.Abs(a-b) > 2e-3 {
				t.Errorf("port %d at t=%g: reduced %.5f vs direct %.5f", p, tt, a, b)
			}
		}
	}
}

// TestDirectNonlinearDeviceMatchesLinear cross-checks the direct Woodbury
// path: a linear conductance expressed as a nonlinear Device must reproduce
// the folded-linear result.
func TestDirectNonlinearDeviceMatchesLinear(t *testing.T) {
	ckt := coupledLadder()
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := waveform.Ramp(0, 2.5, 100e-12, 150e-12)
	opt := Options{TEnd: 2e-9, Dt: 2e-12}
	lin, err := SimulateDirect(sys, []Termination{
		{Linear: &Linear{G: 1e-3, Vs: src}},
		{Linear: &Linear{G: 5e-4, Vs: waveform.Const(0)}},
		{},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := SimulateDirect(sys, []Termination{
		{Dev: linearDevice{g: 1e-3, vs: src}},
		{Linear: &Linear{G: 5e-4, Vs: waveform.Const(0)}},
		{},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{300e-12, 800e-12, 1.5e-9} {
		a, b := lin.Ports[2].At(tt), nl.Ports[2].At(tt)
		if math.Abs(a-b) > 1e-6 {
			t.Errorf("victim at t=%g: folded %.6f vs device %.6f", tt, a, b)
		}
	}
}

// TestDirectCheckAborts verifies that the Check hook aborts the transient
// with the hook's error.
func TestDirectCheckAborts(t *testing.T) {
	ckt := coupledLadder()
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("abort")
	calls := 0
	_, err = SimulateDirect(sys, []Termination{
		{Linear: &Linear{G: 1e-3, Vs: waveform.Const(1)}}, {}, {},
	}, Options{TEnd: 1e-9, Dt: 1e-12, Check: func() error {
		calls++
		if calls > 5 {
			return sentinel
		}
		return nil
	}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}
