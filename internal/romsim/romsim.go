// Package romsim integrates the SyMPVL reduced-order model together with
// linear (Thevenin) and nonlinear driver terminations — the paper's
// Equations 4–7.
//
// The reduced cluster x̂ + T·dx̂/dt = ρ·i, v_port = ρᵀ·x̂ is combined with
// port terminations:
//
//   - linear:    i_j = g_j·(Vs_j(t) − v_j)  (Thevenin source + resistor)
//   - nonlinear: i_k = i_k(v_k, t)          (pre-characterized cell model)
//   - open:      i_j = 0                     (observation-only receiver port)
//
// Folding the linear conductances into the left-hand side yields
// M·x̂ + T·dx̂/dt = f(t) + Σ ρ_k·i_k with M = I + Σ g_j·ρ_j·ρ_jᵀ. The
// generalized symmetric pair (T, M) is diagonalized (M = L·Lᵀ, then
// eigendecomposition of L⁻¹·T·L⁻ᵀ), giving the diagonal system
// D·ẏ + y = η·i of paper Eq. 5. A trapezoidal (linear multistep)
// integrator then advances y; each Newton step solves a diagonal-plus-rank-k
// Jacobian by the Sherman–Morrison–Woodbury identity (Eq. 7), which is what
// makes the method so much cheaper than SPICE.
//
// Crucially, the diagonalization depends only on the model and the linear
// conductance pattern — not on the source waveforms or device models — so it
// can be shared between scenarios. Prepare factors it (together with the
// per-step scratch and the trapezoidal coefficients for a fixed Dt) into a
// reusable Prepared object; Prepared.Run executes one scenario against it and
// Prepared.RunBatch advances several scenarios in lockstep as a multi-RHS
// sweep. Simulate is the one-shot convenience wrapper (Prepare + Run) and is
// bit-identical to running the two stages separately.
package romsim

import (
	"errors"

	"xtverify/internal/obs"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

// Typed failure reasons, matched with errors.Is by the chip-level fallback
// ladder to pick a recovery strategy.
var (
	// ErrNewtonDiverged reports that a Newton iteration exhausted its
	// budget without converging (a pathological driver operating point or
	// an over-aggressive time step).
	ErrNewtonDiverged = errors.New("romsim: Newton iteration failed to converge")
	// ErrUnstableModel reports a structurally bad reduced model: the
	// termination matrix is not SPD or a significantly negative time
	// constant survived reduction.
	ErrUnstableModel = errors.New("romsim: unstable or non-passive model")
	// ErrPatternMismatch reports a scenario whose terminations do not match
	// the conductance pattern a Prepared object was factored for.
	ErrPatternMismatch = errors.New("romsim: scenario terminations do not match prepared conductance pattern")
)

// Device is a nonlinear one-port termination. Current returns the current
// flowing from the device into the network for a given port voltage v and
// time t, together with its derivative with respect to v.
type Device interface {
	Current(v, t float64) (i, didv float64)
}

// Termination attaches behaviour to one model port. Exactly one of Linear or
// Dev may be set; a zero Termination is an open (observation) port.
type Termination struct {
	// Linear, when non-nil, is a Thevenin termination.
	Linear *Linear
	// Dev, when non-nil, is a nonlinear device termination.
	Dev Device
}

// Linear is a Thevenin termination: conductance G in series behaviour
// i = G·(Vs(t) − v).
type Linear struct {
	G  float64
	Vs waveform.Source
}

// Options configures the transient run.
type Options struct {
	// TEnd is the simulation span (seconds).
	TEnd float64
	// Dt is the fixed time step; TEnd/1000 if zero.
	Dt float64
	// NewtonTol is the voltage-scale convergence tolerance (volts);
	// 1e-9 if zero.
	NewtonTol float64
	// MaxNewton bounds Newton iterations per step; 50 if zero.
	MaxNewton int
	// NoInitDC starts from y = 0 instead of the DC operating point.
	NoInitDC bool
	// DenseNewton solves each Newton step with a dense LU factorization of
	// the full Jacobian instead of the Sherman–Morrison–Woodbury
	// diagonal-plus-rank-k solve. It exists only to quantify the benefit of
	// the paper's Eq. 7 structure exploitation (BenchmarkAblationWoodbury).
	DenseNewton bool
	// Check, when non-nil, is polled once per accepted time step; a
	// non-nil return aborts the transient with that error. Used to honor
	// context cancellation and per-cluster deadlines. Prepare ignores Check
	// (preparation is not a stepping loop); per-scenario checks travel in
	// Scenario.Check instead.
	Check func() error
	// Trace, when non-nil, receives the analysis' phase spans (diagonalize,
	// transient) and counters (Newton iterations/divergences, Woodbury
	// solves). The hot loops keep local counts and post them once per run,
	// so a nil Trace costs a few nil checks per Simulate call.
	Trace *obs.Trace
}

// Result holds the transient outcome.
type Result struct {
	// Ports holds one waveform per model port, indexed like the model.
	Ports []*waveform.Waveform
	// Steps is the number of accepted time steps.
	Steps int
	// NewtonIterations is the total Newton iteration count.
	NewtonIterations int
}

// Simulate runs a transient analysis of the reduced model with the given
// terminations (len(terms) must equal the model port count). It is the
// one-shot form of Prepare followed by Prepared.Run and produces bit-identical
// results; callers that run several scenarios against the same model and
// conductance pattern should hold the Prepared instead, amortizing the
// diagonalization.
func Simulate(m *sympvl.Model, terms []Termination, opt Options) (*Result, error) {
	p, err := Prepare(m, terms, opt)
	if err != nil {
		return nil, err
	}
	return p.Run(Scenario{Terms: terms, Check: opt.Check, Trace: opt.Trace})
}
