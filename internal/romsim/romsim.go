// Package romsim integrates the SyMPVL reduced-order model together with
// linear (Thevenin) and nonlinear driver terminations — the paper's
// Equations 4–7.
//
// The reduced cluster x̂ + T·dx̂/dt = ρ·i, v_port = ρᵀ·x̂ is combined with
// port terminations:
//
//   - linear:    i_j = g_j·(Vs_j(t) − v_j)  (Thevenin source + resistor)
//   - nonlinear: i_k = i_k(v_k, t)          (pre-characterized cell model)
//   - open:      i_j = 0                     (observation-only receiver port)
//
// Folding the linear conductances into the left-hand side yields
// M·x̂ + T·dx̂/dt = f(t) + Σ ρ_k·i_k with M = I + Σ g_j·ρ_j·ρ_jᵀ. The
// generalized symmetric pair (T, M) is diagonalized once per analysis
// (M = L·Lᵀ, then eigendecomposition of L⁻¹·T·L⁻ᵀ), giving the diagonal
// system D·ẏ + y = η·i of paper Eq. 5. A trapezoidal (linear multistep)
// integrator then advances y; each Newton step solves a diagonal-plus-rank-k
// Jacobian by the Sherman–Morrison–Woodbury identity (Eq. 7), which is what
// makes the method so much cheaper than SPICE.
package romsim

import (
	"errors"
	"fmt"
	"math"

	"xtverify/internal/matrix"
	"xtverify/internal/obs"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

// Typed failure reasons, matched with errors.Is by the chip-level fallback
// ladder to pick a recovery strategy.
var (
	// ErrNewtonDiverged reports that a Newton iteration exhausted its
	// budget without converging (a pathological driver operating point or
	// an over-aggressive time step).
	ErrNewtonDiverged = errors.New("romsim: Newton iteration failed to converge")
	// ErrUnstableModel reports a structurally bad reduced model: the
	// termination matrix is not SPD or a significantly negative time
	// constant survived reduction.
	ErrUnstableModel = errors.New("romsim: unstable or non-passive model")
)

// Device is a nonlinear one-port termination. Current returns the current
// flowing from the device into the network for a given port voltage v and
// time t, together with its derivative with respect to v.
type Device interface {
	Current(v, t float64) (i, didv float64)
}

// Termination attaches behaviour to one model port. Exactly one of Linear or
// Dev may be set; a zero Termination is an open (observation) port.
type Termination struct {
	// Linear, when non-nil, is a Thevenin termination.
	Linear *Linear
	// Dev, when non-nil, is a nonlinear device termination.
	Dev Device
}

// Linear is a Thevenin termination: conductance G in series behaviour
// i = G·(Vs(t) − v).
type Linear struct {
	G  float64
	Vs waveform.Source
}

// Options configures the transient run.
type Options struct {
	// TEnd is the simulation span (seconds).
	TEnd float64
	// Dt is the fixed time step; TEnd/1000 if zero.
	Dt float64
	// NewtonTol is the voltage-scale convergence tolerance (volts);
	// 1e-9 if zero.
	NewtonTol float64
	// MaxNewton bounds Newton iterations per step; 50 if zero.
	MaxNewton int
	// NoInitDC starts from y = 0 instead of the DC operating point.
	NoInitDC bool
	// DenseNewton solves each Newton step with a dense LU factorization of
	// the full Jacobian instead of the Sherman–Morrison–Woodbury
	// diagonal-plus-rank-k solve. It exists only to quantify the benefit of
	// the paper's Eq. 7 structure exploitation (BenchmarkAblationWoodbury).
	DenseNewton bool
	// Check, when non-nil, is polled once per accepted time step; a
	// non-nil return aborts the transient with that error. Used to honor
	// context cancellation and per-cluster deadlines.
	Check func() error
	// Trace, when non-nil, receives the analysis' phase spans (diagonalize,
	// transient) and counters (Newton iterations/divergences, Woodbury
	// solves). The hot loops keep local counts and post them once per run,
	// so a nil Trace costs a few nil checks per Simulate call.
	Trace *obs.Trace
}

// Result holds the transient outcome.
type Result struct {
	// Ports holds one waveform per model port, indexed like the model.
	Ports []*waveform.Waveform
	// Steps is the number of accepted time steps.
	Steps int
	// NewtonIterations is the total Newton iteration count.
	NewtonIterations int
}

// Simulate runs a transient analysis of the reduced model with the given
// terminations (len(terms) must equal the model port count).
func Simulate(m *sympvl.Model, terms []Termination, opt Options) (*Result, error) {
	if len(terms) != m.Ports {
		return nil, fmt.Errorf("romsim: %d terminations for %d ports", len(terms), m.Ports)
	}
	if opt.TEnd <= 0 {
		return nil, fmt.Errorf("romsim: TEnd must be positive")
	}
	dt := opt.Dt
	if dt <= 0 {
		dt = opt.TEnd / 1000
	}
	tol := opt.NewtonTol
	if tol <= 0 {
		tol = 1e-9
	}
	maxNewton := opt.MaxNewton
	if maxNewton <= 0 {
		maxNewton = 50
	}
	q := m.Order

	// Partition ports.
	var linPorts, nlPorts []int
	for j, tm := range terms {
		if tm.Linear != nil && tm.Dev != nil {
			return nil, fmt.Errorf("romsim: port %d has both linear and nonlinear terminations", j)
		}
		if tm.Linear != nil {
			if tm.Linear.G < 0 {
				return nil, fmt.Errorf("romsim: port %d has negative conductance", j)
			}
			linPorts = append(linPorts, j)
		}
		if tm.Dev != nil {
			nlPorts = append(nlPorts, j)
		}
	}

	diagSpan := opt.Trace.Start(obs.PhaseDiagonalize)
	// M = I + Σ g_j ρ_j ρ_jᵀ over linear ports.
	mm := matrix.Identity(q)
	for _, j := range linPorts {
		g := terms[j].Linear.G
		col := m.Rho.Col(j)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				mm.Add(a, b, g*col[a]*col[b])
			}
		}
	}
	chol, err := matrix.FactorCholesky(mm)
	if err != nil {
		return nil, fmt.Errorf("%w: termination matrix not SPD: %v", ErrUnstableModel, err)
	}
	// T̃ = L⁻¹·T·L⁻ᵀ.
	ttil := matrix.NewDense(q, q)
	for j := 0; j < q; j++ {
		// Column j of T·L⁻ᵀ ... compute L⁻¹ T L⁻ᵀ column by column.
		ej := make([]float64, q)
		ej[j] = 1
		lj := chol.SolveUpper(ej)            // L⁻ᵀ e_j
		tlj := m.T.MulVec(lj)                // T L⁻ᵀ e_j
		ttil.SetCol(j, chol.SolveLower(tlj)) // L⁻¹ T L⁻ᵀ e_j
	}
	// Symmetrize against roundoff and diagonalize.
	for a := 0; a < q; a++ {
		for b := a + 1; b < q; b++ {
			v := 0.5 * (ttil.At(a, b) + ttil.At(b, a))
			ttil.Set(a, b, v)
			ttil.Set(b, a, v)
		}
	}
	dvals, qmat, err := matrix.EigenSym(ttil)
	if err != nil {
		return nil, fmt.Errorf("romsim: diagonalization failed: %w", err)
	}
	// Clamp tiny negative roundoff eigenvalues; the SyMPVL guarantee makes
	// true eigenvalues non-negative.
	for i, d := range dvals {
		if d < 0 {
			if maxd := dvals[len(dvals)-1]; d < -1e-9*math.Max(1, maxd) {
				return nil, fmt.Errorf("%w: significantly negative time constant %g", ErrUnstableModel, d)
			}
			dvals[i] = 0
		}
	}

	// W = Qᵀ·L⁻¹, η = W·ρ. The diagonal system is D·ẏ + y = η_lin·u(t) + η_nl·i.
	eta := matrix.NewDense(q, m.Ports)
	for j := 0; j < m.Ports; j++ {
		w := chol.SolveLower(m.Rho.Col(j)) // L⁻¹ ρ_j
		eta.SetCol(j, qmat.MulVecT(w))     // Qᵀ (L⁻¹ ρ_j)
	}

	// Cache η columns once: the transient loop reads them every step.
	etaCols := make([][]float64, m.Ports)
	for j := 0; j < m.Ports; j++ {
		etaCols[j] = eta.Col(j)
	}
	diagSpan.End()

	// All per-step and per-Newton-iteration scratch is allocated once here
	// and reused for the whole transient: the inner loop runs thousands of
	// times per cluster and must not touch the allocator.
	nNL := len(nlPorts)
	scr := &simScratch{
		delta: make([]float64, q),
		base:  make([]float64, q),
		r:     make([]float64, q),
		dinvr: make([]float64, q),
		s:     make([]float64, nNL),
		rhs:   make([]float64, nNL),
		piv:   make([]int, nNL),
		core:  matrix.NewDense(nNL, nNL),
		dinvU: make([][]float64, nNL),
	}
	dinvUData := make([]float64, nNL*q)
	for c := range scr.dinvU {
		scr.dinvU[c] = dinvUData[c*q : (c+1)*q]
	}

	// Forcing from linear sources: f(t) = Σ g_j·Vs_j(t)·η_j.
	forceInto := func(f []float64, t float64) {
		for i := range f {
			f[i] = 0
		}
		for _, j := range linPorts {
			lt := terms[j].Linear
			matrix.Axpy(lt.G*lt.Vs(t), etaCols[j], f)
		}
	}

	portV := func(y []float64, j int) float64 { return matrix.Dot(etaCols[j], y) }

	// newtonSolve solves (Δ + Σ_nl (−di_k/dv)·η_k·η_kᵀ)·x = r via Woodbury,
	// where Δ = diag(delta). s holds the −di/dv factors per nonlinear port.
	// The returned slice aliases scratch and is only valid until the next
	// call.
	woodburySolves := 0
	newtonSolve := func(delta []float64, s []float64, r []float64) ([]float64, error) {
		if opt.DenseNewton {
			// Ablation path: assemble J = Δ + Σ s_c·η_c·η_cᵀ densely. Kept
			// deliberately allocation-heavy and factorization-per-call — it
			// exists to measure what Eq. 7 saves, not to be fast.
			j := matrix.NewDense(q, q)
			for i := 0; i < q; i++ {
				j.Set(i, i, delta[i])
			}
			for c, jp := range nlPorts {
				col := etaCols[jp]
				sc := s[c]
				if sc == 0 {
					continue
				}
				for a := 0; a < q; a++ {
					for b := 0; b < q; b++ {
						j.Add(a, b, sc*col[a]*col[b])
					}
				}
			}
			lu, err := matrix.FactorLU(j)
			if err != nil {
				return nil, err
			}
			return lu.Solve(r)
		}
		dinvr := scr.dinvr
		for i := range r {
			dinvr[i] = r[i] / delta[i]
		}
		if nNL == 0 {
			return dinvr, nil
		}
		// Small core system: (I + S·UᵀΔ⁻¹U)·z = S·UᵀΔ⁻¹r, x = Δ⁻¹r − Δ⁻¹U·z.
		core := scr.core
		for a := 0; a < nNL; a++ {
			for b := 0; b < nNL; b++ {
				if a == b {
					core.Set(a, b, 1)
				} else {
					core.Set(a, b, 0)
				}
			}
		}
		rhs := scr.rhs
		for c, j := range nlPorts {
			col := etaCols[j]
			du := scr.dinvU[c]
			for i := 0; i < q; i++ {
				du[i] = col[i] / delta[i]
			}
		}
		for a, ja := range nlPorts {
			ua := etaCols[ja]
			for b := 0; b < nNL; b++ {
				core.Add(a, b, s[a]*matrix.Dot(ua, scr.dinvU[b]))
			}
			rhs[a] = s[a] * matrix.Dot(ua, dinvr)
		}
		// Factor and solve the tiny core in place; rhs becomes z.
		if err := matrix.SolveLUInPlace(core, scr.piv, rhs); err != nil {
			return nil, fmt.Errorf("romsim: Woodbury core singular: %w", err)
		}
		woodburySolves++
		x := dinvr
		for c := range nlPorts {
			matrix.Axpy(-rhs[c], scr.dinvU[c], x)
		}
		return x, nil
	}

	// residualInto computes R(y) = Δ∘y − base − η_nl·i(v,t) into r and the
	// s = −di/dv factors into s, for a given diagonal delta and constant part
	// base.
	residualInto := func(r, s, delta, base, y []float64, t float64) {
		for i := range r {
			r[i] = delta[i]*y[i] - base[i]
		}
		for c, j := range nlPorts {
			v := portV(y, j)
			i, di := terms[j].Dev.Current(v, t)
			matrix.Axpy(-i, etaCols[j], r)
			s[c] = -di
		}
	}

	// newtonLoop drives yout (seeded from y0) to R(yout)=0 for the given
	// delta/base/t. yout must not alias y0.
	totalNewton := 0
	newtonLoop := func(delta, base, y0, yout []float64, t float64) error {
		copy(yout, y0)
		for it := 0; it < maxNewton; it++ {
			totalNewton++
			residualInto(scr.r, scr.s, delta, base, yout, t)
			dy, err := newtonSolve(delta, scr.s, scr.r)
			if err != nil {
				return err
			}
			matrix.Axpy(-1, dy, yout)
			// Convergence on the port-voltage scale: η is bounded, so the
			// state-space norm is a safe proxy.
			if matrix.NormInf(dy) < tol {
				return nil
			}
		}
		opt.Trace.Add(obs.CtrNewtonDivergences, 1)
		return fmt.Errorf("%w at t=%g", ErrNewtonDiverged, t)
	}
	// Post the iteration counters exactly once, error returns included.
	defer func() {
		opt.Trace.Add(obs.CtrNewtonIterations, int64(totalNewton))
		opt.Trace.Add(obs.CtrWoodburySolves, int64(woodburySolves))
	}()
	transSpan := opt.Trace.Start(obs.PhaseTransient)
	defer transSpan.End()

	// Initial condition: DC operating point (ẏ = 0 ⇒ Δ = 1).
	y := make([]float64, q)
	ynext := make([]float64, q)
	if !opt.NoInitDC {
		ones := make([]float64, q)
		for i := range ones {
			ones[i] = 1
		}
		forceInto(scr.base, 0)
		if err := newtonLoop(ones, scr.base, y, ynext, 0); err != nil {
			return nil, fmt.Errorf("romsim: DC init: %w", err)
		}
		y, ynext = ynext, y
	}
	// ẏ at t=0 from D·ẏ = −R_alg(y); with DC init it is ~0. For simplicity
	// and stability start trapezoidal with ẏ = 0 (consistent after DC init).
	ydot := make([]float64, q)

	nSteps := int(math.Round(opt.TEnd / dt))
	if nSteps < 1 {
		nSteps = 1
	}
	res := &Result{Ports: make([]*waveform.Waveform, m.Ports)}
	for j := range res.Ports {
		res.Ports[j] = waveform.New(nSteps + 1)
		res.Ports[j].Append(0, portV(y, j))
	}

	a := 2 / dt
	for n := 1; n <= nSteps; n++ {
		if opt.Check != nil {
			if err := opt.Check(); err != nil {
				return nil, err
			}
		}
		t := float64(n) * dt
		// Trapezoidal: D·(a·(y−y_prev) − ẏ_prev) + y = f(t) + η·i.
		// Δ_i = a·D_i + 1; base = f(t) + D∘(a·y_prev + ẏ_prev).
		delta, base := scr.delta, scr.base
		forceInto(base, t)
		for i := 0; i < q; i++ {
			delta[i] = a*dvals[i] + 1
			base[i] += dvals[i] * (a*y[i] + ydot[i])
		}
		if err := newtonLoop(delta, base, y, ynext, t); err != nil {
			return nil, err
		}
		for i := 0; i < q; i++ {
			ydot[i] = a*(ynext[i]-y[i]) - ydot[i]
		}
		y, ynext = ynext, y
		for j := range res.Ports {
			res.Ports[j].Append(t, portV(y, j))
		}
		res.Steps++
	}
	res.NewtonIterations = totalNewton
	return res, nil
}

// simScratch bundles the buffers Simulate's inner loops reuse across every
// time step and Newton iteration.
type simScratch struct {
	delta, base []float64 // per-step trapezoidal diagonal and constant part
	r, dinvr    []float64 // Newton residual and Δ⁻¹-scaled copies
	s, rhs      []float64 // −di/dv factors and Woodbury core RHS
	piv         []int     // pivot scratch for the in-place core solve
	core        *matrix.Dense
	dinvU       [][]float64 // Δ⁻¹·U columns over one flat backing array
}
