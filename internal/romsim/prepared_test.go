package romsim

import (
	"errors"
	"fmt"
	"testing"

	"xtverify/internal/obs"
	"xtverify/internal/waveform"
)

// glitchTerms is the canonical 3-port glitch scenario over coupledPair:
// aggressor driver ramps, victim driver holds, receiver open.
func glitchTerms(aggressor waveform.Source) []Termination {
	return []Termination{
		{Linear: &Linear{G: 1 / 200.0, Vs: aggressor}},
		{Linear: &Linear{G: 1 / 1000.0, Vs: waveform.Const(0)}},
		{},
	}
}

// requireBitIdentical compares two results sample by sample with exact
// floating-point equality: the prepared layer's contract is bit identity
// with the per-Simulate path, not mere closeness.
func requireBitIdentical(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if want.Steps != got.Steps {
		t.Fatalf("%s: steps %d != %d", label, got.Steps, want.Steps)
	}
	if want.NewtonIterations != got.NewtonIterations {
		t.Fatalf("%s: newton iterations %d != %d", label, got.NewtonIterations, want.NewtonIterations)
	}
	if len(want.Ports) != len(got.Ports) {
		t.Fatalf("%s: port count %d != %d", label, len(got.Ports), len(want.Ports))
	}
	for j := range want.Ports {
		ww, gw := want.Ports[j], got.Ports[j]
		if ww.Len() != gw.Len() {
			t.Fatalf("%s: port %d sample count %d != %d", label, j, gw.Len(), ww.Len())
		}
		for i := range ww.T {
			if ww.T[i] != gw.T[i] || ww.V[i] != gw.V[i] {
				t.Fatalf("%s: port %d sample %d: (%g, %g) != (%g, %g)",
					label, j, i, gw.T[i], gw.V[i], ww.T[i], ww.V[i])
			}
		}
	}
}

func TestPreparedRunBitIdenticalToSimulate(t *testing.T) {
	m := reduce(t, coupledPair(6, 6e-15), 12)
	opt := Options{TEnd: 3e-9, Dt: 2e-12}
	rising := glitchTerms(waveform.Ramp(0, 3, 50e-12, 100e-12))
	falling := glitchTerms(waveform.Ramp(3, 0, 50e-12, 100e-12))

	wantR, err := Simulate(m, rising, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantF, err := Simulate(m, falling, opt)
	if err != nil {
		t.Fatal(err)
	}

	p, err := Prepare(m, rising, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := p.Run(Scenario{Terms: rising})
	if err != nil {
		t.Fatal(err)
	}
	// The falling edge shares the conductance pattern: one Prepared serves
	// both polarities.
	gotF, err := p.Run(Scenario{Terms: falling})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, wantR, gotR, "rising")
	requireBitIdentical(t, wantF, gotF, "falling")
}

func TestPreparedRunBitIdenticalWithDevice(t *testing.T) {
	// A nonlinear victim hold exercises the Woodbury path through the
	// prepared stepping loop.
	m := reduce(t, coupledPair(5, 8e-15), 10)
	opt := Options{TEnd: 2e-9, Dt: 2e-12}
	terms := []Termination{
		{Linear: &Linear{G: 1 / 200.0, Vs: waveform.Ramp(0, 3, 50e-12, 100e-12)}},
		{Dev: linearDevice{g: 1 / 1000.0, vs: waveform.Const(0)}},
		{},
	}
	want, err := Simulate(m, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(m, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Run(Scenario{Terms: terms})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got, "device victim")
}

func TestRunBatchBitIdenticalToSequentialRuns(t *testing.T) {
	m := reduce(t, coupledPair(6, 6e-15), 12)
	opt := Options{TEnd: 3e-9, Dt: 2e-12}
	termSets := [][]Termination{
		glitchTerms(waveform.Ramp(0, 3, 50e-12, 100e-12)),
		glitchTerms(waveform.Ramp(3, 0, 50e-12, 100e-12)),
		glitchTerms(waveform.Ramp(0, 3, 200e-12, 300e-12)),
	}

	serial, err := Prepare(m, termSets[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Result, len(termSets))
	for i, terms := range termSets {
		if want[i], err = serial.Run(Scenario{Terms: terms}); err != nil {
			t.Fatal(err)
		}
	}

	batched, err := Prepare(m, termSets[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	scs := make([]Scenario, len(termSets))
	for i, terms := range termSets {
		scs[i] = Scenario{Terms: terms}
	}
	got, errs := batched.RunBatch(scs)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("scenario %d: %v", i, e)
		}
		requireBitIdentical(t, want[i], got[i], fmt.Sprintf("scenario %d", i))
	}
}

func TestPatternKeyAndMatches(t *testing.T) {
	base := glitchTerms(waveform.Ramp(0, 3, 50e-12, 100e-12))
	// Same pattern, different source waveform: same key, Matches true.
	other := glitchTerms(waveform.Const(3))
	if PatternKey(base) != PatternKey(other) {
		t.Errorf("keys differ for identical conductance patterns")
	}
	// Different conductance: different key.
	stronger := glitchTerms(waveform.Const(3))
	stronger[1] = Termination{Linear: &Linear{G: 1 / 500.0, Vs: waveform.Const(0)}}
	if PatternKey(base) == PatternKey(stronger) {
		t.Errorf("keys equal despite different victim conductance")
	}
	// Different kind on a port: different key.
	device := glitchTerms(waveform.Const(3))
	device[1] = Termination{Dev: linearDevice{g: 1 / 1000.0, vs: waveform.Const(0)}}
	if PatternKey(base) == PatternKey(device) {
		t.Errorf("keys equal despite linear vs device victim")
	}

	m := reduce(t, coupledPair(4, 6e-15), 10)
	p, err := Prepare(m, base, Options{TEnd: 1e-9, Dt: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(other) {
		t.Errorf("Matches rejected a same-pattern termination set")
	}
	if p.Matches(stronger) || p.Matches(device) || p.Matches(base[:2]) {
		t.Errorf("Matches accepted a mismatched termination set")
	}
}

func TestRunRejectsPatternMismatch(t *testing.T) {
	m := reduce(t, coupledPair(4, 6e-15), 10)
	base := glitchTerms(waveform.Ramp(0, 3, 50e-12, 100e-12))
	p, err := Prepare(m, base, Options{TEnd: 1e-9, Dt: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	wrong := glitchTerms(waveform.Ramp(0, 3, 50e-12, 100e-12))
	wrong[0] = Termination{Linear: &Linear{G: 1 / 300.0, Vs: waveform.Const(0)}}
	if _, err := p.Run(Scenario{Terms: wrong}); !errors.Is(err, ErrPatternMismatch) {
		t.Errorf("Run error = %v, want ErrPatternMismatch", err)
	}
	res, errs := p.RunBatch([]Scenario{{Terms: wrong}, {Terms: base}})
	if !errors.Is(errs[0], ErrPatternMismatch) {
		t.Errorf("batch scenario 0 error = %v, want ErrPatternMismatch", errs[0])
	}
	if res[0] != nil {
		t.Errorf("mismatched scenario returned a result")
	}
	if errs[1] != nil || res[1] == nil {
		t.Errorf("valid scenario alongside a mismatch failed: %v", errs[1])
	}
}

func TestBatchColumnIsolation(t *testing.T) {
	// One column's Check failure must not disturb the surviving columns:
	// they finish bit-identical to a solo run.
	m := reduce(t, coupledPair(6, 6e-15), 12)
	opt := Options{TEnd: 3e-9, Dt: 2e-12}
	terms := glitchTerms(waveform.Ramp(0, 3, 50e-12, 100e-12))

	solo, err := Prepare(m, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.Run(Scenario{Terms: terms})
	if err != nil {
		t.Fatal(err)
	}

	p, err := Prepare(m, terms, opt)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("cancelled mid-flight")
	calls := 0
	failing := Scenario{Terms: terms, Check: func() error {
		calls++
		if calls > 10 {
			return boom
		}
		return nil
	}}
	res, errs := p.RunBatch([]Scenario{failing, {Terms: terms}})
	if !errors.Is(errs[0], boom) {
		t.Fatalf("failing column error = %v, want %v", errs[0], boom)
	}
	if res[0] != nil {
		t.Errorf("failing column returned a result")
	}
	if errs[1] != nil {
		t.Fatalf("surviving column failed: %v", errs[1])
	}
	requireBitIdentical(t, want, res[1], "surviving column")
}

func TestPreparedCounters(t *testing.T) {
	m := reduce(t, coupledPair(5, 6e-15), 10)
	opt := Options{TEnd: 1e-9, Dt: 2e-12}
	terms := glitchTerms(waveform.Ramp(0, 3, 50e-12, 100e-12))

	coll := obs.NewCollector()
	tr := coll.NewTrace()
	p, err := Prepare(m, terms, Options{TEnd: opt.TEnd, Dt: opt.Dt, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	scs := []Scenario{
		{Terms: terms, Trace: tr},
		{Terms: glitchTerms(waveform.Ramp(3, 0, 50e-12, 100e-12)), Trace: tr},
		{Terms: glitchTerms(waveform.Const(0)), Trace: tr},
	}
	if _, errs := p.RunBatch(scs); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatal(errs)
	}
	if _, err := p.Run(Scenario{Terms: terms, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	coll.MergeTrace("net", "test", tr)
	s := coll.Snapshot()
	if got := s.Counters["scenarios_batched"]; got != 3 {
		t.Errorf("scenarios_batched = %d, want 3 (the solo Run is not batched)", got)
	}
	// Four scenarios ran against one Prepared; every one after the first
	// skipped a diagonalization the per-Simulate path would repeat.
	if got := s.Counters["diagonalize_skipped"]; got != 3 {
		t.Errorf("diagonalize_skipped = %d, want 3", got)
	}
	if s.Counters["newton_iterations"] <= 0 {
		t.Errorf("missing stepping counters: %v", s.Counters)
	}
}
