package romsim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"xtverify/internal/matrix"
	"xtverify/internal/obs"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

// portKind classifies one port of a prepared conductance pattern.
type portKind uint8

const (
	portOpen portKind = iota
	portLinear
	portDevice
)

// Prepared is the scenario-independent half of a transient analysis: the
// linear-termination fold M = L·Lᵀ, the eigendecomposition to the diagonal
// system D·ẏ + y = η·i, the trapezoidal step coefficients for the fixed Dt,
// and all per-step/per-Newton scratch. It is keyed only by the model and the
// conductance pattern of the terminations (which ports are linear and their
// G values, which carry devices, which are open) — source waveforms and
// device models stay free, so glitch polarities, delay stimuli and
// repair-candidate sweeps over the same cluster all execute against one
// Prepared.
//
// A Prepared is not safe for concurrent use (it owns the stepping scratch);
// hold one per analysis engine, like a sympvl.Workspace.
type Prepared struct {
	model *sympvl.Model
	q     int // reduced order
	ports int

	// Diagonalized system: D·ẏ + y = η·i.
	dvals   []float64
	etaCols [][]float64

	// Conductance pattern.
	kinds    []portKind
	gs       []float64 // per-port conductance; 0 for non-linear ports
	linPorts []int
	nlPorts  []int

	// Fixed stepping parameters.
	dt, tend  float64
	nSteps    int
	a         float64 // trapezoidal coefficient 2/Dt
	tol       float64
	maxNewton int
	denseNewt bool
	noInitDC  bool

	scr *simScratch

	// executed counts scenarios run against this Prepared; every scenario
	// after the first is a diagonalization the per-Simulate path would have
	// repeated (the diagonalize_skipped counter).
	executed int
}

// Scenario is one transient run against a Prepared: the concrete
// terminations (whose conductance pattern must match the prepared one) plus
// the per-run cancellation hook and trace.
type Scenario struct {
	// Terms supplies the source waveforms and device models. Linear ports
	// must carry the same G the Prepared was factored with.
	Terms []Termination
	// Check, when non-nil, is polled once per accepted time step for this
	// scenario; a non-nil return fails the scenario with that error.
	Check func() error
	// Trace receives the scenario's transient span and Newton counters.
	Trace *obs.Trace
}

// PatternKey returns a canonical string identifying the conductance pattern
// of the terminations: per port, its kind and (for linear ports) the exact
// bits of its conductance. Two termination sets with equal keys factor to
// the same Prepared; engines use it to memoize Prepare calls.
func PatternKey(terms []Termination) string {
	var b strings.Builder
	b.Grow(len(terms) * 18)
	for _, tm := range terms {
		switch {
		case tm.Linear != nil && tm.Dev != nil:
			b.WriteByte('!') // invalid; Prepare will reject it
		case tm.Linear != nil:
			b.WriteByte('l')
			b.WriteString(strconv.FormatUint(math.Float64bits(tm.Linear.G), 16))
			b.WriteByte('.')
		case tm.Dev != nil:
			b.WriteByte('d')
		default:
			b.WriteByte('o')
		}
	}
	return b.String()
}

// Prepare factors everything about a transient analysis that does not depend
// on the scenario: the termination fold, the diagonalization of paper Eq. 5,
// the Woodbury scratch and the trapezoidal coefficients for the fixed
// opt.Dt/opt.TEnd. opt.Trace receives the diagonalize span; opt.Check is
// ignored (checks are per scenario). The returned Prepared accepts any
// scenario whose terminations match the conductance pattern of terms.
func Prepare(m *sympvl.Model, terms []Termination, opt Options) (*Prepared, error) {
	if len(terms) != m.Ports {
		return nil, fmt.Errorf("romsim: %d terminations for %d ports", len(terms), m.Ports)
	}
	if opt.TEnd <= 0 {
		return nil, fmt.Errorf("romsim: TEnd must be positive")
	}
	dt := opt.Dt
	if dt <= 0 {
		dt = opt.TEnd / 1000
	}
	tol := opt.NewtonTol
	if tol <= 0 {
		tol = 1e-9
	}
	maxNewton := opt.MaxNewton
	if maxNewton <= 0 {
		maxNewton = 50
	}
	q := m.Order

	// Partition ports.
	p := &Prepared{
		model: m, q: q, ports: m.Ports,
		kinds: make([]portKind, m.Ports),
		gs:    make([]float64, m.Ports),
		dt:    dt, tend: opt.TEnd,
		tol: tol, maxNewton: maxNewton,
		denseNewt: opt.DenseNewton,
		noInitDC:  opt.NoInitDC,
	}
	for j, tm := range terms {
		if tm.Linear != nil && tm.Dev != nil {
			return nil, fmt.Errorf("romsim: port %d has both linear and nonlinear terminations", j)
		}
		if tm.Linear != nil {
			if tm.Linear.G < 0 {
				return nil, fmt.Errorf("romsim: port %d has negative conductance", j)
			}
			p.kinds[j] = portLinear
			p.gs[j] = tm.Linear.G
			p.linPorts = append(p.linPorts, j)
		}
		if tm.Dev != nil {
			p.kinds[j] = portDevice
			p.nlPorts = append(p.nlPorts, j)
		}
	}

	diagSpan := opt.Trace.Start(obs.PhaseDiagonalize)
	// M = I + Σ g_j ρ_j ρ_jᵀ over linear ports.
	mm := matrix.Identity(q)
	for _, j := range p.linPorts {
		g := p.gs[j]
		col := m.Rho.Col(j)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				mm.Add(a, b, g*col[a]*col[b])
			}
		}
	}
	chol, err := matrix.FactorCholesky(mm)
	if err != nil {
		return nil, fmt.Errorf("%w: termination matrix not SPD: %v", ErrUnstableModel, err)
	}
	// T̃ = L⁻¹·T·L⁻ᵀ.
	ttil := matrix.NewDense(q, q)
	for j := 0; j < q; j++ {
		// Column j of T·L⁻ᵀ ... compute L⁻¹ T L⁻ᵀ column by column.
		ej := make([]float64, q)
		ej[j] = 1
		lj := chol.SolveUpper(ej)            // L⁻ᵀ e_j
		tlj := m.T.MulVec(lj)                // T L⁻ᵀ e_j
		ttil.SetCol(j, chol.SolveLower(tlj)) // L⁻¹ T L⁻ᵀ e_j
	}
	// Symmetrize against roundoff and diagonalize.
	for a := 0; a < q; a++ {
		for b := a + 1; b < q; b++ {
			v := 0.5 * (ttil.At(a, b) + ttil.At(b, a))
			ttil.Set(a, b, v)
			ttil.Set(b, a, v)
		}
	}
	dvals, qmat, err := matrix.EigenSym(ttil)
	if err != nil {
		return nil, fmt.Errorf("romsim: diagonalization failed: %w", err)
	}
	// Clamp tiny negative roundoff eigenvalues; the SyMPVL guarantee makes
	// true eigenvalues non-negative.
	for i, d := range dvals {
		if d < 0 {
			if maxd := dvals[len(dvals)-1]; d < -1e-9*math.Max(1, maxd) {
				return nil, fmt.Errorf("%w: significantly negative time constant %g", ErrUnstableModel, d)
			}
			dvals[i] = 0
		}
	}
	p.dvals = dvals

	// W = Qᵀ·L⁻¹, η = W·ρ. The diagonal system is D·ẏ + y = η_lin·u(t) + η_nl·i.
	eta := matrix.NewDense(q, m.Ports)
	for j := 0; j < m.Ports; j++ {
		w := chol.SolveLower(m.Rho.Col(j)) // L⁻¹ ρ_j
		eta.SetCol(j, qmat.MulVecT(w))     // Qᵀ (L⁻¹ ρ_j)
	}

	// Cache η columns once: the transient loop reads them every step.
	p.etaCols = make([][]float64, m.Ports)
	for j := 0; j < m.Ports; j++ {
		p.etaCols[j] = eta.Col(j)
	}
	diagSpan.End()

	// All per-step and per-Newton-iteration scratch is allocated once here
	// and reused for every scenario and time step: the inner loop runs
	// thousands of times per cluster and must not touch the allocator.
	nNL := len(p.nlPorts)
	p.scr = &simScratch{
		delta: make([]float64, q),
		base:  make([]float64, q),
		r:     make([]float64, q),
		dinvr: make([]float64, q),
		s:     make([]float64, nNL),
		rhs:   make([]float64, nNL),
		piv:   make([]int, nNL),
		core:  matrix.NewDense(nNL, nNL),
		dinvU: make([][]float64, nNL),
	}
	dinvUData := make([]float64, nNL*q)
	for c := range p.scr.dinvU {
		p.scr.dinvU[c] = dinvUData[c*q : (c+1)*q]
	}

	p.a = 2 / dt
	p.nSteps = int(math.Round(opt.TEnd / dt))
	if p.nSteps < 1 {
		p.nSteps = 1
	}
	return p, nil
}

// Ports returns the prepared model's port count.
func (p *Prepared) Ports() int { return p.ports }

// Order returns the reduced order of the prepared diagonal system.
func (p *Prepared) Order() int { return p.q }

// Matches reports whether terms has the conductance pattern this Prepared
// was factored for: same port count, same kind per port, and bit-equal
// conductances on the linear ports.
func (p *Prepared) Matches(terms []Termination) bool {
	if len(terms) != p.ports {
		return false
	}
	for j, tm := range terms {
		switch {
		case tm.Linear != nil && tm.Dev != nil:
			return false
		case tm.Linear != nil:
			if p.kinds[j] != portLinear || p.gs[j] != tm.Linear.G {
				return false
			}
		case tm.Dev != nil:
			if p.kinds[j] != portDevice {
				return false
			}
		default:
			if p.kinds[j] != portOpen {
				return false
			}
		}
	}
	return true
}

// Run executes one scenario against the prepared factorization. The result
// is bit-identical to Simulate with the same model, terminations and
// options: the stepping loop performs exactly the same floating-point
// operations in the same order.
func (p *Prepared) Run(sc Scenario) (*Result, error) {
	results, errs := p.runScenarios([]Scenario{sc}, false)
	return results[0], errs[0]
}

// RunBatch advances all scenarios in lockstep as one multi-RHS sweep: the
// shared diagonal D and the per-step trapezoidal coefficients are computed
// once per step, while each scenario owns one contiguous state column.
// Newton decisions are made per column — each column iterates to its own
// convergence and carries its own divergence or Check error — so every
// column's result is bit-identical to a serial Run of that scenario.
//
// The returned slices are indexed like scs; a scenario that failed has a nil
// Result and its error in errs (the surviving columns still complete).
// Callers that need serial-path error semantics surface the first non-nil
// error in scenario order.
func (p *Prepared) RunBatch(scs []Scenario) ([]*Result, []error) {
	return p.runScenarios(scs, true)
}

// column is the per-scenario state of a (possibly batched) stepping run.
type column struct {
	y, ynext, ydot []float64
	res            *Result
	err            error
	newton         int // Newton iterations, DC init included
	woodbury       int
}

func (c *column) fail(err error) {
	c.err = err
	c.res = nil
}

// runScenarios is the single stepping engine behind Run and RunBatch. All
// per-column arithmetic matches the historical per-Simulate loop operation
// for operation; batching only shares the scenario-independent pieces (the
// trapezoidal diagonal Δ and the scratch buffers) and interleaves columns
// step by step, which cannot change any column's floating-point sequence
// because columns never couple.
func (p *Prepared) runScenarios(scs []Scenario, batched bool) ([]*Result, []error) {
	k := len(scs)
	cols := make([]*column, k)
	results := make([]*Result, k)
	errs := make([]error, k)

	// Contiguous column-major state: scenario s owns [s·q, (s+1)·q).
	q := p.q
	yData := make([]float64, 3*k*q)
	for s := range cols {
		cols[s] = &column{
			y:     yData[(3*s+0)*q : (3*s+1)*q],
			ynext: yData[(3*s+1)*q : (3*s+2)*q],
			ydot:  yData[(3*s+2)*q : (3*s+3)*q],
		}
	}

	for s, sc := range scs {
		if err := p.validateScenario(sc); err != nil {
			cols[s].fail(err)
			continue
		}
		if batched {
			sc.Trace.Add(obs.CtrScenariosBatched, 1)
		}
		if p.executed > 0 {
			sc.Trace.Add(obs.CtrDiagonalizeSkipped, 1)
		}
		p.executed++
	}

	spans := make([]obs.Span, k)
	for s, sc := range scs {
		if cols[s].err == nil {
			spans[s] = sc.Trace.Start(obs.PhaseTransient)
		}
	}

	// Initial condition: DC operating point (ẏ = 0 ⇒ Δ = 1).
	if !p.noInitDC {
		ones := make([]float64, q)
		for i := range ones {
			ones[i] = 1
		}
		for s, sc := range scs {
			c := cols[s]
			if c.err != nil {
				continue
			}
			p.forceInto(p.scr.base, sc.Terms, 0)
			if err := p.newtonLoop(c, ones, p.scr.base, c.y, c.ynext, sc.Terms, 0, sc.Trace); err != nil {
				c.fail(fmt.Errorf("romsim: DC init: %w", err))
				continue
			}
			c.y, c.ynext = c.ynext, c.y
		}
	}
	// ẏ at t=0 from D·ẏ = −R_alg(y); with DC init it is ~0. For simplicity
	// and stability start trapezoidal with ẏ = 0 (consistent after DC init).

	for s := range scs {
		c := cols[s]
		if c.err != nil {
			continue
		}
		c.res = &Result{Ports: make([]*waveform.Waveform, p.ports)}
		for j := range c.res.Ports {
			c.res.Ports[j] = waveform.New(p.nSteps + 1)
			c.res.Ports[j].Append(0, p.portV(c.y, j))
		}
	}

	a := p.a
	dvals := p.dvals
	for n := 1; n <= p.nSteps; n++ {
		t := float64(n) * p.dt
		// The trapezoidal diagonal Δ_i = a·D_i + 1 is scenario-independent:
		// computed once per step and shared by every column.
		delta := p.scr.delta
		for i := 0; i < q; i++ {
			delta[i] = a*dvals[i] + 1
		}
		for s, sc := range scs {
			c := cols[s]
			if c.err != nil {
				continue
			}
			if sc.Check != nil {
				if err := sc.Check(); err != nil {
					c.fail(err)
					continue
				}
			}
			// Trapezoidal: D·(a·(y−y_prev) − ẏ_prev) + y = f(t) + η·i.
			// base = f(t) + D∘(a·y_prev + ẏ_prev).
			base := p.scr.base
			p.forceInto(base, sc.Terms, t)
			for i := 0; i < q; i++ {
				base[i] += dvals[i] * (a*c.y[i] + c.ydot[i])
			}
			if err := p.newtonLoop(c, delta, base, c.y, c.ynext, sc.Terms, t, sc.Trace); err != nil {
				c.fail(err)
				continue
			}
			for i := 0; i < q; i++ {
				c.ydot[i] = a*(c.ynext[i]-c.y[i]) - c.ydot[i]
			}
			c.y, c.ynext = c.ynext, c.y
			for j := range c.res.Ports {
				c.res.Ports[j].Append(t, p.portV(c.y, j))
			}
			c.res.Steps++
		}
	}

	// Post the iteration counters exactly once per scenario, failed columns
	// included (matching the per-Simulate defer).
	for s, sc := range scs {
		c := cols[s]
		sc.Trace.Add(obs.CtrNewtonIterations, int64(c.newton))
		sc.Trace.Add(obs.CtrWoodburySolves, int64(c.woodbury))
		spans[s].End()
		if c.res != nil {
			c.res.NewtonIterations = c.newton
		}
		results[s], errs[s] = c.res, c.err
	}
	return results, errs
}

// validateScenario rejects terminations that do not match the prepared
// conductance pattern.
func (p *Prepared) validateScenario(sc Scenario) error {
	if len(sc.Terms) != p.ports {
		return fmt.Errorf("%w: %d terminations for %d ports", ErrPatternMismatch, len(sc.Terms), p.ports)
	}
	if !p.Matches(sc.Terms) {
		return ErrPatternMismatch
	}
	return nil
}

// forceInto computes the linear-source forcing f(t) = Σ g_j·Vs_j(t)·η_j.
func (p *Prepared) forceInto(f []float64, terms []Termination, t float64) {
	for i := range f {
		f[i] = 0
	}
	for _, j := range p.linPorts {
		lt := terms[j].Linear
		matrix.Axpy(lt.G*lt.Vs(t), p.etaCols[j], f)
	}
}

// portV evaluates the port-j voltage η_jᵀ·y.
func (p *Prepared) portV(y []float64, j int) float64 { return matrix.Dot(p.etaCols[j], y) }

// newtonSolve solves (Δ + Σ_nl (−di_k/dv)·η_k·η_kᵀ)·x = r via Woodbury,
// where Δ = diag(delta). s holds the −di/dv factors per nonlinear port.
// The returned slice aliases scratch and is only valid until the next call.
func (p *Prepared) newtonSolve(delta, s, r []float64, wood *int) ([]float64, error) {
	q := p.q
	nNL := len(p.nlPorts)
	if p.denseNewt {
		// Ablation path: assemble J = Δ + Σ s_c·η_c·η_cᵀ densely. Kept
		// deliberately allocation-heavy and factorization-per-call — it
		// exists to measure what Eq. 7 saves, not to be fast.
		j := matrix.NewDense(q, q)
		for i := 0; i < q; i++ {
			j.Set(i, i, delta[i])
		}
		for c, jp := range p.nlPorts {
			col := p.etaCols[jp]
			sc := s[c]
			if sc == 0 {
				continue
			}
			for a := 0; a < q; a++ {
				for b := 0; b < q; b++ {
					j.Add(a, b, sc*col[a]*col[b])
				}
			}
		}
		lu, err := matrix.FactorLU(j)
		if err != nil {
			return nil, err
		}
		return lu.Solve(r)
	}
	scr := p.scr
	dinvr := scr.dinvr
	for i := range r {
		dinvr[i] = r[i] / delta[i]
	}
	if nNL == 0 {
		return dinvr, nil
	}
	// Small core system: (I + S·UᵀΔ⁻¹U)·z = S·UᵀΔ⁻¹r, x = Δ⁻¹r − Δ⁻¹U·z.
	core := scr.core
	for a := 0; a < nNL; a++ {
		for b := 0; b < nNL; b++ {
			if a == b {
				core.Set(a, b, 1)
			} else {
				core.Set(a, b, 0)
			}
		}
	}
	rhs := scr.rhs
	for c, j := range p.nlPorts {
		col := p.etaCols[j]
		du := scr.dinvU[c]
		for i := 0; i < q; i++ {
			du[i] = col[i] / delta[i]
		}
	}
	for a, ja := range p.nlPorts {
		ua := p.etaCols[ja]
		for b := 0; b < nNL; b++ {
			core.Add(a, b, s[a]*matrix.Dot(ua, scr.dinvU[b]))
		}
		rhs[a] = s[a] * matrix.Dot(ua, dinvr)
	}
	// Factor and solve the tiny core in place; rhs becomes z.
	if err := matrix.SolveLUInPlace(core, scr.piv, rhs); err != nil {
		return nil, fmt.Errorf("romsim: Woodbury core singular: %w", err)
	}
	*wood++
	x := dinvr
	for ci := range p.nlPorts {
		matrix.Axpy(-rhs[ci], scr.dinvU[ci], x)
	}
	return x, nil
}

// residualInto computes R(y) = Δ∘y − base − η_nl·i(v,t) into r and the
// s = −di/dv factors into s, for a given diagonal delta and constant part
// base.
func (p *Prepared) residualInto(r, s, delta, base, y []float64, terms []Termination, t float64) {
	for i := range r {
		r[i] = delta[i]*y[i] - base[i]
	}
	for c, j := range p.nlPorts {
		v := p.portV(y, j)
		i, di := terms[j].Dev.Current(v, t)
		matrix.Axpy(-i, p.etaCols[j], r)
		s[c] = -di
	}
}

// newtonLoop drives yout (seeded from y0) to R(yout)=0 for the given
// delta/base/t. yout must not alias y0.
func (p *Prepared) newtonLoop(c *column, delta, base, y0, yout []float64, terms []Termination, t float64, tr *obs.Trace) error {
	if len(p.nlPorts) == 0 && !p.denseNewt {
		// With no device ports the step equation Δ∘y = base is linear:
		// Newton from any seed lands on this closed form in one iteration
		// and then burns a second confirming convergence. Solve directly.
		c.newton++
		for i := range yout {
			yout[i] = base[i] / delta[i]
		}
		return nil
	}
	copy(yout, y0)
	for it := 0; it < p.maxNewton; it++ {
		c.newton++
		p.residualInto(p.scr.r, p.scr.s, delta, base, yout, terms, t)
		dy, err := p.newtonSolve(delta, p.scr.s, p.scr.r, &c.woodbury)
		if err != nil {
			return err
		}
		matrix.Axpy(-1, dy, yout)
		// Convergence on the port-voltage scale: η is bounded, so the
		// state-space norm is a safe proxy.
		if matrix.NormInf(dy) < p.tol {
			return nil
		}
	}
	tr.Add(obs.CtrNewtonDivergences, 1)
	return fmt.Errorf("%w at t=%g", ErrNewtonDiverged, t)
}

// simScratch bundles the buffers the inner loops reuse across every time
// step, Newton iteration and scenario column.
type simScratch struct {
	delta, base []float64 // per-step trapezoidal diagonal and constant part
	r, dinvr    []float64 // Newton residual and Δ⁻¹-scaled copies
	s, rhs      []float64 // −di/dv factors and Woodbury core RHS
	piv         []int     // pivot scratch for the in-place core solve
	core        *matrix.Dense
	dinvU       [][]float64 // Δ⁻¹·U columns over one flat backing array
}
