// The serializable numeric core of a Prepared: everything the stepping loop
// reads after Prepare returns — the eigendecomposition of the folded system,
// the cached η columns, the conductance pattern and the fixed stepping
// parameters. The sympvl.Model itself is only consulted during Prepare, so a
// core round-trip skips both the reduction and the diagonalization while
// producing bit-identical transients (dvals and η travel as raw IEEE-754
// values and the stepping code is unchanged).
package romsim

import (
	"fmt"

	"xtverify/internal/matrix"
)

// PreparedCore is the flat, persistable state of a Prepared factorization.
// It captures the post-Prepare numeric state exactly; closures, scratch and
// the source model are excluded and rebuilt on restore.
type PreparedCore struct {
	Order int
	Ports int

	// Diagonalized system D·ẏ + y = η·i.
	Dvals   []float64
	EtaCols [][]float64 // Ports columns of length Order

	// Conductance pattern: per-port kind (0 open, 1 linear, 2 device) and
	// the linear conductances (0 on non-linear ports).
	Kinds []uint8
	Gs    []float64

	// Fixed stepping parameters.
	Dt, TEnd  float64
	NSteps    int
	Tol       float64
	MaxNewton int
	DenseNewt bool
	NoInitDC  bool
}

// Core extracts the prepared factorization's serializable numeric state. The
// returned core shares no memory with p (slices are copied), so it can
// outlive the engine that produced it.
func (p *Prepared) Core() *PreparedCore {
	c := &PreparedCore{
		Order:     p.q,
		Ports:     p.ports,
		Dvals:     append([]float64(nil), p.dvals...),
		EtaCols:   make([][]float64, len(p.etaCols)),
		Kinds:     make([]uint8, len(p.kinds)),
		Gs:        append([]float64(nil), p.gs...),
		Dt:        p.dt,
		TEnd:      p.tend,
		NSteps:    p.nSteps,
		Tol:       p.tol,
		MaxNewton: p.maxNewton,
		DenseNewt: p.denseNewt,
		NoInitDC:  p.noInitDC,
	}
	for j, col := range p.etaCols {
		c.EtaCols[j] = append([]float64(nil), col...)
	}
	for j, k := range p.kinds {
		c.Kinds[j] = uint8(k)
	}
	return c
}

// PreparedFromCore rebuilds a ready-to-step Prepared from a persisted core:
// port partitions are re-derived from the kinds, the stepping scratch is
// re-allocated, and the trapezoidal coefficient recomputed from Dt. The
// result is interchangeable with the Prepared the core was extracted from —
// every scenario executes the identical floating-point sequence. Dimension
// mismatches (a corrupted or hand-built core) are rejected.
func PreparedFromCore(c *PreparedCore) (*Prepared, error) {
	if c.Order <= 0 || c.Ports <= 0 {
		return nil, fmt.Errorf("romsim: core dimensions %dx%d invalid", c.Order, c.Ports)
	}
	if len(c.Dvals) != c.Order {
		return nil, fmt.Errorf("romsim: core has %d eigenvalues for order %d", len(c.Dvals), c.Order)
	}
	if len(c.EtaCols) != c.Ports || len(c.Kinds) != c.Ports || len(c.Gs) != c.Ports {
		return nil, fmt.Errorf("romsim: core port arrays disagree with %d ports", c.Ports)
	}
	if c.Dt <= 0 || c.TEnd <= 0 || c.NSteps < 1 || c.Tol <= 0 || c.MaxNewton < 1 {
		return nil, fmt.Errorf("romsim: core stepping parameters invalid")
	}
	p := &Prepared{
		q:         c.Order,
		ports:     c.Ports,
		dvals:     append([]float64(nil), c.Dvals...),
		etaCols:   make([][]float64, c.Ports),
		kinds:     make([]portKind, c.Ports),
		gs:        append([]float64(nil), c.Gs...),
		dt:        c.Dt,
		tend:      c.TEnd,
		nSteps:    c.NSteps,
		a:         2 / c.Dt,
		tol:       c.Tol,
		maxNewton: c.MaxNewton,
		denseNewt: c.DenseNewt,
		noInitDC:  c.NoInitDC,
	}
	for j, col := range c.EtaCols {
		if len(col) != c.Order {
			return nil, fmt.Errorf("romsim: core η column %d has %d rows for order %d", j, len(col), c.Order)
		}
		p.etaCols[j] = append([]float64(nil), col...)
	}
	for j, k := range c.Kinds {
		switch portKind(k) {
		case portOpen:
		case portLinear:
			p.linPorts = append(p.linPorts, j)
		case portDevice:
			p.nlPorts = append(p.nlPorts, j)
		default:
			return nil, fmt.Errorf("romsim: core port %d has unknown kind %d", j, k)
		}
		p.kinds[j] = portKind(k)
	}
	nNL := len(p.nlPorts)
	p.scr = &simScratch{
		delta: make([]float64, p.q),
		base:  make([]float64, p.q),
		r:     make([]float64, p.q),
		dinvr: make([]float64, p.q),
		s:     make([]float64, nNL),
		rhs:   make([]float64, nNL),
		piv:   make([]int, nNL),
		core:  matrix.NewDense(nNL, nNL),
		dinvU: make([][]float64, nNL),
	}
	dinvUData := make([]float64, nNL*p.q)
	for ci := range p.scr.dinvU {
		p.scr.dinvU[ci] = dinvUData[ci*p.q : (ci+1)*p.q]
	}
	return p, nil
}
