package cellmodel

import (
	"math"
	"testing"

	"xtverify/internal/cells"
	"xtverify/internal/spice"
	"xtverify/internal/waveform"
)

func TestIVSurfaceShape(t *testing.T) {
	c, _ := cells.ByName("INV_X2")
	s, err := CharacterizeIVSurface(c, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.U) != 5 || len(s.Curves) != 5 {
		t.Fatalf("surface has %d levels", len(s.U))
	}
	// Inverting cell: at input 0 the pullup conducts (sources current at
	// mid output); at input Vdd the pulldown conducts (sinks).
	iLow, _ := s.Eval(1.5, 0)
	iHigh, _ := s.Eval(1.5, Vdd)
	if iLow <= 0 {
		t.Errorf("I(1.5V out, 0V in) = %g, want sourcing (positive)", iLow)
	}
	if iHigh >= 0 {
		t.Errorf("I(1.5V out, 3V in) = %g, want sinking (negative)", iHigh)
	}
	// Interpolated level lies between its neighbours.
	uMid := (s.U[1] + s.U[2]) / 2
	iMid, _ := s.Eval(1.5, uMid)
	i1, _ := s.Eval(1.5, s.U[1])
	i2, _ := s.Eval(1.5, s.U[2])
	lo, hi := math.Min(i1, i2), math.Max(i1, i2)
	if iMid < lo-1e-12 || iMid > hi+1e-12 {
		t.Errorf("interpolation %g outside [%g, %g]", iMid, lo, hi)
	}
	// Clamping outside the characterized input range.
	iClamp, _ := s.Eval(1.5, -1)
	if iClamp != iLow {
		t.Errorf("clamped eval %g != edge %g", iClamp, iLow)
	}
}

func TestIVSurfaceMidInputWeakerThanRail(t *testing.T) {
	// The motivation for the surface over the two-curve blend: with the
	// input at mid-swing, both devices have reduced overdrive, so the net
	// current magnitude anywhere must not exceed the strongest rail curve.
	c, _ := cells.ByName("INV_X4")
	s, err := CharacterizeIVSurface(c, 9, 15)
	if err != nil {
		t.Fatal(err)
	}
	// At output = 0 V: rail-on pullup sources maximally.
	iFull, _ := s.Eval(0, 0)
	iHalf, _ := s.Eval(0, Vdd/2)
	if math.Abs(iHalf) >= math.Abs(iFull) {
		t.Errorf("half-switched drive |%g| should be below rail |%g|", iHalf, iFull)
	}
}

func TestSurfaceDriverRailBehaviour(t *testing.T) {
	c, _ := cells.ByName("INV_X2")
	tm, err := cells.Characterize(c, cells.CharacterizeOptions{
		Loads: []float64{10e-15, 60e-15}, Slews: []float64{100e-12}, Dt: 4e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	drv, err := NewNonlinearSwitching(c, tm, true, 200e-12, 100e-12, 30e-15)
	if err != nil {
		t.Fatal(err)
	}
	// Long before the transition (input high for a rising output of an
	// inverter): output held low → near v=0 current ≈ 0, and the device
	// sinks for v > 0.
	i0, _ := drv.Current(0, 0)
	if math.Abs(i0) > 1e-4 {
		t.Errorf("pre-transition I(0) = %g, want ≈0", i0)
	}
	iup, _ := drv.Current(1.0, 0)
	if iup >= 0 {
		t.Errorf("pre-transition I(1V) = %g, want sinking", iup)
	}
	// Long after the transition: pullup on, sources at v=0, ≈0 at Vdd.
	iPost, _ := drv.Current(0, 10e-9)
	if iPost <= 0 {
		t.Errorf("post-transition I(0) = %g, want sourcing", iPost)
	}
	iVdd, _ := drv.Current(Vdd, 10e-9)
	if math.Abs(iVdd) > 1e-4 {
		t.Errorf("post-transition I(Vdd) = %g, want ≈0", iVdd)
	}
}

func TestSurfaceDriverMatchesTransistorTransient(t *testing.T) {
	// Drive a lumped load with the surface model and with the transistor
	// cell: 50% crossing times and final values must agree closely even at
	// light load, where the old blend model failed.
	const (
		cLoad = 15e-15
		slew  = 100e-12
		t0    = 200e-12
	)
	c, _ := cells.ByName("INV_X2")
	tm, err := cells.Characterize(c, cells.CharacterizeOptions{
		Loads: []float64{10e-15, 60e-15}, Slews: []float64{100e-12}, Dt: 4e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Transistor reference (input falls so output rises).
	gold := spice.NewNetlist("gold")
	in := gold.Node("in")
	out := gold.Node("out")
	vdd := gold.Node("vdd")
	gold.Drive(vdd, waveform.Const(Vdd))
	gold.Drive(in, waveform.Ramp(Vdd, 0, t0-slew/2, slew))
	if _, err := c.BuildDriver(gold, "u", in, out, vdd); err != nil {
		t.Fatal(err)
	}
	gold.AddC(out, spice.Ground, cLoad+c.OutDiffCapF)
	gres, err := gold.Transient(spice.Options{TEnd: 2e-9, Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	gw, _ := gres.Wave("out")

	// Surface model on the same load, hosted by the SPICE engine as a
	// behavioural device (so the comparison isolates the model).
	drv, err := NewNonlinearSwitching(c, tm, true, t0, slew, cLoad)
	if err != nil {
		t.Fatal(err)
	}
	modelNet := spice.NewNetlist("model")
	mOut := modelNet.Node("out")
	modelNet.AddC(mOut, spice.Ground, cLoad+c.OutDiffCapF)
	modelNet.AddBehavioral(mOut, drv)
	mres, err := modelNet.Transient(spice.Options{TEnd: 2e-9, Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	mw, _ := mres.Wave("out")

	if math.Abs(mw.End()-gw.End()) > 0.05 {
		t.Errorf("final values: model %.3f vs transistor %.3f", mw.End(), gw.End())
	}
	tg, ok1 := gw.CrossTime(Vdd/2, true)
	tmid, ok2 := mw.CrossTime(Vdd/2, true)
	if !ok1 || !ok2 {
		t.Fatal("missing 50% crossings")
	}
	if d := math.Abs(tg - tmid); d > 60e-12 {
		t.Errorf("50%% crossing differs by %.0f ps", d*1e12)
	}
	// Output slew within 40% of the transistor reference.
	sg, _ := gw.SlewTime(0.2*Vdd, 0.8*Vdd, true)
	sm, _ := mw.SlewTime(0.2*Vdd, 0.8*Vdd, true)
	if sg > 0 && math.Abs(sm-sg)/sg > 0.4 {
		t.Errorf("slew %.1f ps vs transistor %.1f ps", sm*1e12, sg*1e12)
	}
}

func TestSurfaceCaching(t *testing.T) {
	c, _ := cells.ByName("NOR2_X2")
	s1, err := CharacterizeIVSurface(c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := CharacterizeIVSurface(c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("surface cache returned distinct objects")
	}
}
