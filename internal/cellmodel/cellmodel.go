// Package cellmodel implements the two driver-cell models of the paper's
// Section 4:
//
//   - the timing-library based model (4.1): an effective linear resistance
//     deduced from the NLDM characterization plus a Thevenin ramp source;
//   - the nonlinear cell model (4.2): pre-characterized static I–V curves of
//     the output stage, blended in time as the input transition propagates,
//     which captures the transient output waveform and the clamping
//     nonlinearity that the linear model misses.
//
// Both models present the one-port Current(v, t) interface consumed by the
// reduced-order simulator (romsim.Device) and the SPICE-class engine
// (spice.Behavioral), so identical models can be attached to either engine.
package cellmodel

import (
	"fmt"
	"sort"
	"sync"

	"xtverify/internal/cells"
	"xtverify/internal/devices"
	"xtverify/internal/romsim"
	"xtverify/internal/spice"
	"xtverify/internal/waveform"
)

// Vdd is the analysis supply voltage.
const Vdd = devices.Vdd025

// LinearDriver is the Section 4.1 model: a resistor R to a Thevenin voltage
// source Vs(t).
type LinearDriver struct {
	R  float64
	Vs waveform.Source
}

// Termination converts the driver to a reduced-order simulator termination.
func (d *LinearDriver) Termination() romsim.Termination {
	return romsim.Termination{Linear: &romsim.Linear{G: 1 / d.R, Vs: d.Vs}}
}

// Current implements the one-port interface so the linear model can also be
// attached to the SPICE engine for apples-to-apples comparisons.
func (d *LinearDriver) Current(v, t float64) (float64, float64) {
	g := 1 / d.R
	return g * (d.Vs(t) - v), -g
}

// NewLinearHolding builds the victim-side holding model: the on-device
// resistance of the output stage holding the given rail, from the timing
// library.
func NewLinearHolding(tm *cells.Timing, hold cells.HoldState) *LinearDriver {
	if hold == cells.HoldLow {
		// Output held low: the pulldown (fall transition) resistance.
		return &LinearDriver{R: tm.DriveResistance(false), Vs: waveform.Const(0)}
	}
	return &LinearDriver{R: tm.DriveResistance(true), Vs: waveform.Const(Vdd)}
}

// NewLinearSwitching builds the aggressor-side switching model: drive
// resistance for the transition plus a ramp source calibrated so the 50 %
// point at the characterized load matches the timing table (the Thevenin
// construction of the paper's reference [9]).
//
// inArrival50 is the input's 50 % crossing time, inSlew its transition time,
// and loadEst the estimated total load the cell sees.
func NewLinearSwitching(tm *cells.Timing, outRising bool, inArrival50, inSlew, loadEst float64) *LinearDriver {
	r := tm.DriveResistance(outRising)
	delay := tm.Delay(loadEst, inSlew, outRising)
	trans := tm.Trans(loadEst, inSlew, outRising)
	// The Thevenin source adds ~ln2·R·C of its own delay at the port; shift
	// the ramp left so the composite matches the characterized delay.
	const ln2 = 0.6931471805599453
	mid := inArrival50 + delay - ln2*r*loadEst
	start := mid - trans/2
	if start < 0 {
		start = 0
	}
	v0, v1 := 0.0, Vdd
	if !outRising {
		v0, v1 = Vdd, 0
	}
	return &LinearDriver{R: r, Vs: waveform.Ramp(v0, v1, start, trans)}
}

// IVCurve is a sampled static current-voltage characteristic of a cell
// output stage: I(v) is the current the stage injects into the net at output
// voltage v. Piecewise-linear with linear extrapolation outside the span.
type IVCurve struct {
	V []float64
	I []float64
}

// Eval returns I(v) and dI/dv.
func (c *IVCurve) Eval(v float64) (float64, float64) {
	n := len(c.V)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return c.I[0], 0
	}
	i := sort.SearchFloat64s(c.V, v)
	if i <= 0 {
		i = 1
	}
	if i >= n {
		i = n - 1
	}
	v0, v1 := c.V[i-1], c.V[i]
	i0, i1 := c.I[i-1], c.I[i]
	slope := (i1 - i0) / (v1 - v0)
	return i0 + slope*(v-v0), slope
}

// Stage identifies which half of the output stage conducts.
type Stage int

const (
	StagePullDown Stage = iota // output driven toward ground
	StagePullUp                // output driven toward Vdd
)

// ivCacheKey caches per-cell characterizations (the "one-time task").
type ivCacheKey struct {
	cell  string
	which Stage
}

var (
	ivMu    sync.Mutex
	ivCache = map[ivCacheKey]*IVCurve{}
)

// CharacterizeIV measures the static output-stage I–V curve of a cell with
// the SPICE-class engine: the output is forced through a 1 Ω sense resistor
// across a voltage grid and the injected current recorded. which selects the
// conducting network.
func CharacterizeIV(c *cells.Cell, which Stage, points int) (*IVCurve, error) {
	if points < 2 {
		points = 25
	}
	ivMu.Lock()
	if cv, ok := ivCache[ivCacheKey{c.Name, which}]; ok {
		ivMu.Unlock()
		return cv, nil
	}
	ivMu.Unlock()

	const rSense = 1.0
	curve := &IVCurve{}
	for k := 0; k < points; k++ {
		vForce := Vdd * float64(k) / float64(points-1)
		n := spice.NewNetlist("iv_" + c.Name)
		out := n.Node("out")
		vddN := n.Node("vdd")
		force := n.Node("force")
		n.Drive(vddN, waveform.Const(Vdd))
		n.Drive(force, waveform.Const(vForce))
		n.AddR(force, out, rSense)
		hold := cells.HoldLow
		if which == StagePullUp {
			hold = cells.HoldHigh
		}
		if err := c.BuildHolding(n, "u", out, vddN, hold); err != nil {
			return nil, err
		}
		op, err := n.DCOperatingPoint(0, spice.Options{})
		if err != nil {
			return nil, fmt.Errorf("cellmodel: IV characterization of %s at %g V: %w", c.Name, vForce, err)
		}
		vOut := op[out]
		iCell := -(vForce - vOut) / rSense // current the cell injects into the net
		curve.V = append(curve.V, vOut)
		curve.I = append(curve.I, iCell)
	}
	// The sense-resistor offset keeps the samples ordered, but be defensive.
	sort.Sort(byVoltage{curve})
	ivMu.Lock()
	ivCache[ivCacheKey{c.Name, which}] = curve
	ivMu.Unlock()
	return curve, nil
}

type byVoltage struct{ c *IVCurve }

func (b byVoltage) Len() int           { return len(b.c.V) }
func (b byVoltage) Less(i, j int) bool { return b.c.V[i] < b.c.V[j] }
func (b byVoltage) Swap(i, j int) {
	b.c.V[i], b.c.V[j] = b.c.V[j], b.c.V[i]
	b.c.I[i], b.c.I[j] = b.c.I[j], b.c.I[i]
}

// NonlinearDriver is the Section 4.2 model: static initial/final I–V curves
// with a time blend w(t) following the cell's internal transition.
type NonlinearDriver struct {
	initial, final *IVCurve
	// blend returns w ∈ [0,1]: 0 = initial curve, 1 = final curve.
	blend func(t float64) float64
}

// Current implements romsim.Device and spice.Behavioral.
func (d *NonlinearDriver) Current(v, t float64) (float64, float64) {
	w := d.blend(t)
	i0, g0 := d.initial.Eval(v)
	i1, g1 := d.final.Eval(v)
	return (1-w)*i0 + w*i1, (1-w)*g0 + w*g1
}

// Termination converts the driver to a reduced-order simulator termination.
func (d *NonlinearDriver) Termination() romsim.Termination {
	return romsim.Termination{Dev: d}
}

// NewNonlinearHolding builds the victim-side nonlinear holding model: the
// static curve of the conducting network. This captures the clamping that
// bounds large glitches, the main accuracy win of Table 4 over Table 3.
func NewNonlinearHolding(c *cells.Cell, hold cells.HoldState) (*NonlinearDriver, error) {
	which := StagePullDown
	if hold == cells.HoldHigh {
		which = StagePullUp
	}
	cv, err := CharacterizeIV(c, which, 0)
	if err != nil {
		return nil, err
	}
	return &NonlinearDriver{initial: cv, final: cv, blend: func(float64) float64 { return 0 }}, nil
}

// NewNonlinearSwitching builds the aggressor-side switching model from the
// characterized I–V surface: the driver current is read off i_x(v_out, v_in)
// with the input following its actual ramp (paper Eq. 4). Multi-stage cells
// get a small timing shift for their internal propagation, calibrated from
// the timing tables.
func NewNonlinearSwitching(c *cells.Cell, tm *cells.Timing, outRising bool, inArrival50, inSlew, loadEst float64) (*SurfaceDriver, error) {
	surf, err := CharacterizeIVSurface(c, 0, 0)
	if err != nil {
		return nil, err
	}
	inRising := outRising
	if c.Polarity() < 0 {
		inRising = !outRising
	}
	v0, v1 := 0.0, Vdd
	if !inRising {
		v0, v1 = Vdd, 0
	}
	shift := 0.0
	if c.MultiStage() {
		// The surface maps the external input statically through the first
		// stages; shift the trajectory by a calibrated internal delay.
		shift = 0.4 * tm.Delay(tm.Loads[0], inSlew, outRising)
	}
	start := inArrival50 + shift - inSlew/2
	if start < 0 {
		start = 0
	}
	_ = loadEst
	return &SurfaceDriver{Surface: surf, In: waveform.Ramp(v0, v1, start, inSlew)}, nil
}

// NewBlendSwitching is the simpler two-curve variant of the switching model:
// fully-on initial and final curves cross-faded over the characterized
// output transition window. It is retained for the model-form ablation; the
// surface model supersedes it.
func NewBlendSwitching(c *cells.Cell, tm *cells.Timing, outRising bool, inArrival50, inSlew, loadEst float64) (*NonlinearDriver, error) {
	var from, to Stage
	if outRising {
		from, to = StagePullDown, StagePullUp
	} else {
		from, to = StagePullUp, StagePullDown
	}
	cvFrom, err := CharacterizeIV(c, from, 0)
	if err != nil {
		return nil, err
	}
	cvTo, err := CharacterizeIV(c, to, 0)
	if err != nil {
		return nil, err
	}
	delay := tm.Delay(loadEst, inSlew, outRising)
	trans := tm.Trans(loadEst, inSlew, outRising)
	// The internal gate overdrive develops across roughly the input slew and
	// intrinsic delay; the blend window is centered at the characterized
	// 50 % point minus the load-dependent part it will itself create.
	r := tm.DriveResistance(outRising)
	const ln2 = 0.6931471805599453
	mid := inArrival50 + delay - ln2*r*loadEst
	start := mid - trans/2
	end := mid + trans/2
	if start < 0 {
		start = 0
	}
	blend := func(t float64) float64 {
		switch {
		case t <= start:
			return 0
		case t >= end:
			return 1
		default:
			// Smoothstep keeps dI/dt continuous for the Newton loop.
			x := (t - start) / (end - start)
			return x * x * (3 - 2*x)
		}
	}
	return &NonlinearDriver{initial: cvFrom, final: cvTo, blend: blend}, nil
}

// ReceiverLoadCap returns the capacitive load model of a receiving cell
// input pin (the paper's cell-based methodology treats receivers as
// capacitive terminations).
func ReceiverLoadCap(c *cells.Cell) float64 { return c.InputCapF }
