package cellmodel

import (
	"fmt"
	"sort"
	"sync"

	"xtverify/internal/cells"
	"xtverify/internal/romsim"
	"xtverify/internal/spice"
	"xtverify/internal/waveform"
)

// IVSurface is the full static characterization of a cell's drive path: the
// current injected into the net as a function of output voltage v AND input
// voltage u. This is the i_x(v_x) family of the paper's Eq. 4 — during a
// transition the instantaneous drive is read off the surface at the present
// input level, which captures the reduced overdrive of half-switched
// devices that a two-curve blend overstates.
type IVSurface struct {
	// U are the characterized input levels (ascending, volts at the cell's
	// switching input).
	U []float64
	// Curves[i] is the output I–V curve with the input held at U[i].
	Curves []*IVCurve
}

// Eval returns I(v, u) and ∂I/∂v by linear interpolation across input
// levels.
func (s *IVSurface) Eval(v, u float64) (float64, float64) {
	n := len(s.U)
	if n == 0 {
		return 0, 0
	}
	if n == 1 || u <= s.U[0] {
		return s.Curves[0].Eval(v)
	}
	if u >= s.U[n-1] {
		return s.Curves[n-1].Eval(v)
	}
	i := sort.SearchFloat64s(s.U, u)
	// s.U[i-1] < u <= s.U[i]
	frac := (u - s.U[i-1]) / (s.U[i] - s.U[i-1])
	i0, g0 := s.Curves[i-1].Eval(v)
	i1, g1 := s.Curves[i].Eval(v)
	return i0*(1-frac) + i1*frac, g0*(1-frac) + g1*frac
}

type surfKey struct {
	cell           string
	levels, points int
}

var (
	surfMu    sync.Mutex
	surfCache = map[surfKey]*IVSurface{}
)

// CharacterizeIVSurface measures the drive surface with the SPICE-class
// engine: for each input level the switching input is held at DC and the
// output is swept through a 1 Ω sense resistor. Results are memoized per
// cell (the one-time characterization task).
func CharacterizeIVSurface(c *cells.Cell, levels, points int) (*IVSurface, error) {
	if levels < 2 {
		levels = 9
	}
	if points < 2 {
		points = 21
	}
	key := surfKey{c.Name, levels, points}
	surfMu.Lock()
	if s, ok := surfCache[key]; ok {
		surfMu.Unlock()
		return s, nil
	}
	surfMu.Unlock()
	surf := &IVSurface{}
	const rSense = 1.0
	for li := 0; li < levels; li++ {
		u := Vdd * float64(li) / float64(levels-1)
		curve := &IVCurve{}
		for k := 0; k < points; k++ {
			vForce := -0.3 + (Vdd+0.6)*float64(k)/float64(points-1)
			n := spice.NewNetlist("ivs_" + c.Name)
			out := n.Node("out")
			vddN := n.Node("vdd")
			force := n.Node("force")
			in := n.Node("in")
			n.Drive(vddN, waveform.Const(Vdd))
			n.Drive(force, waveform.Const(vForce))
			n.Drive(in, waveform.Const(u))
			n.AddR(force, out, rSense)
			if _, err := c.BuildDriver(n, "u", in, out, vddN); err != nil {
				return nil, err
			}
			op, err := n.DCOperatingPoint(0, spice.Options{})
			if err != nil {
				return nil, fmt.Errorf("cellmodel: IV surface of %s at u=%.2f v=%.2f: %w", c.Name, u, vForce, err)
			}
			vOut := op[out]
			curve.V = append(curve.V, vOut)
			curve.I = append(curve.I, -(vForce-vOut)/rSense)
		}
		sort.Sort(byVoltage{curve})
		surf.U = append(surf.U, u)
		surf.Curves = append(surf.Curves, curve)
	}
	surfMu.Lock()
	surfCache[key] = surf
	surfMu.Unlock()
	return surf, nil
}

// SurfaceDriver drives a net from an IVSurface with a prescribed input
// waveform — the paper's Eq. 4 termination i_x(v_x) with time entering
// through the input trajectory.
type SurfaceDriver struct {
	Surface *IVSurface
	// In is the input-voltage trajectory at the cell's switching input.
	In waveform.Source
}

// Current implements romsim.Device and spice.Behavioral.
func (d *SurfaceDriver) Current(v, t float64) (float64, float64) {
	return d.Surface.Eval(v, d.In(t))
}

// Termination converts to a reduced-order simulator termination.
func (d *SurfaceDriver) Termination() romsim.Termination {
	return romsim.Termination{Dev: d}
}
