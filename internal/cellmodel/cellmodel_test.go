package cellmodel

import (
	"math"
	"testing"

	"xtverify/internal/cells"
	"xtverify/internal/circuit"
	"xtverify/internal/devices"
	"xtverify/internal/mna"
	"xtverify/internal/romsim"
	"xtverify/internal/spice"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

var testChar = cells.CharacterizeOptions{
	Loads: []float64{10e-15, 40e-15, 120e-15},
	Slews: []float64{80e-12, 200e-12},
	Dt:    4e-12,
}

func timingFor(t *testing.T, name string) (*cells.Cell, *cells.Timing) {
	t.Helper()
	c, ok := cells.ByName(name)
	if !ok {
		t.Fatalf("cell %s missing", name)
	}
	tm, err := cells.Characterize(c, testChar)
	if err != nil {
		t.Fatal(err)
	}
	return c, tm
}

func TestIVCurvePullDownShape(t *testing.T) {
	c, _ := cells.ByName("INV_X2")
	cv, err := CharacterizeIV(c, StagePullDown, 15)
	if err != nil {
		t.Fatal(err)
	}
	// At v=0 the conducting pulldown sinks no current; as v rises it sinks
	// (negative injection) increasingly, saturating.
	i0, _ := cv.Eval(0)
	if math.Abs(i0) > 1e-5 {
		t.Errorf("I(0) = %g, want ≈0", i0)
	}
	iMid, _ := cv.Eval(1.5)
	iHigh, _ := cv.Eval(3.0)
	if iMid >= 0 || iHigh >= 0 {
		t.Errorf("pulldown must sink current: I(1.5)=%g I(3)=%g", iMid, iHigh)
	}
	if math.Abs(iHigh) < math.Abs(iMid) {
		t.Errorf("current should grow toward saturation: |I(3)|=%g < |I(1.5)|=%g", math.Abs(iHigh), math.Abs(iMid))
	}
	// Negative glitch region: the pulldown sources current below ground.
	iNeg, _ := cv.Eval(-0.3)
	if iNeg <= 0 {
		t.Errorf("I(-0.3) = %g, want positive (restoring)", iNeg)
	}
}

func TestIVCurvePullUpShape(t *testing.T) {
	c, _ := cells.ByName("INV_X2")
	cv, err := CharacterizeIV(c, StagePullUp, 15)
	if err != nil {
		t.Fatal(err)
	}
	iVdd, _ := cv.Eval(Vdd)
	if math.Abs(iVdd) > 1e-5 {
		t.Errorf("I(Vdd) = %g, want ≈0", iVdd)
	}
	iMid, _ := cv.Eval(1.5)
	if iMid <= 0 {
		t.Errorf("pullup must source current at 1.5V: %g", iMid)
	}
}

func TestIVCurveEvalInterpolation(t *testing.T) {
	cv := &IVCurve{V: []float64{0, 1, 2}, I: []float64{0, -2, -3}}
	i, di := cv.Eval(0.5)
	if math.Abs(i+1) > 1e-12 || math.Abs(di+2) > 1e-12 {
		t.Errorf("Eval(0.5) = %g, %g; want -1, -2", i, di)
	}
	// Extrapolation beyond ends uses edge slope.
	i, _ = cv.Eval(3)
	if math.Abs(i+4) > 1e-12 {
		t.Errorf("Eval(3) = %g, want -4", i)
	}
	i, _ = cv.Eval(-1)
	if math.Abs(i-2) > 1e-12 {
		t.Errorf("Eval(-1) = %g, want 2", i)
	}
}

func TestLinearHoldingResistance(t *testing.T) {
	_, tm := timingFor(t, "INV_X2")
	low := NewLinearHolding(tm, cells.HoldLow)
	if low.R <= 0 || low.Vs(0) != 0 {
		t.Errorf("hold-low model: R=%g Vs=%g", low.R, low.Vs(0))
	}
	high := NewLinearHolding(tm, cells.HoldHigh)
	if high.Vs(0) != Vdd {
		t.Errorf("hold-high source %g, want %g", high.Vs(0), Vdd)
	}
}

func TestLinearDriverAsBehavioralMatchesTermination(t *testing.T) {
	d := &LinearDriver{R: 1000, Vs: waveform.Const(2)}
	i, di := d.Current(1, 0)
	if math.Abs(i-1e-3) > 1e-15 || math.Abs(di+1e-3) > 1e-15 {
		t.Errorf("Current = %g, %g", i, di)
	}
	term := d.Termination()
	if term.Linear == nil || term.Linear.G != 1e-3 {
		t.Error("termination mismatch")
	}
}

// spiceDriveWave runs the transistor-level cell driving an RC wire + load
// and returns the far-end waveform (the golden reference).
func spiceDriveWave(t *testing.T, c *cells.Cell, outRising bool, rWire, cWire, cLoad float64) *waveform.Waveform {
	t.Helper()
	n := spice.NewNetlist("gold")
	in := n.Node("in")
	out := n.Node("out")
	far := n.Node("far")
	vdd := n.Node("vdd")
	n.Drive(vdd, waveform.Const(Vdd))
	inRising := outRising
	if c.Polarity() < 0 {
		inRising = !outRising
	}
	v0, v1 := 0.0, Vdd
	if !inRising {
		v0, v1 = Vdd, 0
	}
	n.Drive(in, waveform.Ramp(v0, v1, 100e-12, 100e-12))
	if _, err := c.BuildDriver(n, "u", in, out, vdd); err != nil {
		t.Fatal(err)
	}
	n.AddR(out, far, rWire)
	n.AddC(out, spice.Ground, cWire/2)
	n.AddC(far, spice.Ground, cWire/2+cLoad)
	res, err := n.Transient(spice.Options{TEnd: 4e-9, Dt: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Wave("far")
	return w
}

// romDriveWave runs a driver model over the reduced-order model of the same
// RC wire.
func romDriveWave(t *testing.T, term romsim.Termination, rWire, cWire, cLoad float64) *waveform.Waveform {
	t.Helper()
	ckt := circuit.New("wire")
	out := ckt.Node("out")
	far := ckt.Node("far")
	ckt.AddPort("drv", out, circuit.PortDriver, 0)
	ckt.AddResistor("rw", out, far, rWire)
	ckt.AddCapacitor("c1", out, circuit.Ground, cWire/2)
	ckt.AddCapacitor("c2", far, circuit.Ground, cWire/2+cLoad)
	ckt.AddPort("rcv", far, circuit.PortReceiver, 0)
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sympvl.Reduce(sys, sympvl.Options{Order: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := romsim.Simulate(m, []romsim.Termination{term, {}}, romsim.Options{TEnd: 4e-9, Dt: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ports[1]
}

func TestNonlinearSwitchingTracksSPICE(t *testing.T) {
	// The Section 4.2 claim: the nonlinear model reproduces the transistor-
	// level output transient closely. Compare 50% crossing and final value.
	const (
		rWire = 300.0
		cWire = 60e-15
		cLoad = 20e-15
	)
	c, tm := timingFor(t, "INV_X2")
	gold := spiceDriveWave(t, c, true, rWire, cWire, cLoad)
	drv, err := NewNonlinearSwitching(c, tm, true, 150e-12, 100e-12, cWire+cLoad)
	if err != nil {
		t.Fatal(err)
	}
	got := romDriveWave(t, drv.Termination(), rWire, cWire, cLoad)
	if math.Abs(got.End()-gold.End()) > 0.05 {
		t.Errorf("final value %g vs SPICE %g", got.End(), gold.End())
	}
	tGold, ok1 := gold.CrossTime(Vdd/2, true)
	tGot, ok2 := got.CrossTime(Vdd/2, true)
	if !ok1 || !ok2 {
		t.Fatal("missing 50% crossings")
	}
	if d := math.Abs(tGot - tGold); d > 100e-12 {
		t.Errorf("50%% crossing differs by %g s (SPICE %g, model %g)", d, tGold, tGot)
	}
}

func TestNonlinearHoldingClampsGlitch(t *testing.T) {
	// Inject a glitch current into a held-low net: the nonlinear holding
	// model must return to 0 V and never exceed the injected charge bound.
	c, _ := cells.ByName("INV_X1")
	drv, err := NewNonlinearHolding(c, cells.HoldLow)
	if err != nil {
		t.Fatal(err)
	}
	// Static check: the model resists positive excursions by sinking
	// current, more strongly at higher v.
	i1, _ := drv.Current(0.5, 0)
	i2, _ := drv.Current(1.5, 0)
	if i1 >= 0 || i2 >= i1 {
		t.Errorf("holding model should sink increasingly: I(0.5)=%g I(1.5)=%g", i1, i2)
	}
}

func TestLinearVsNonlinearHoldingAccuracy(t *testing.T) {
	// The headline Section 4 result: against the transistor-level reference,
	// the nonlinear holding model predicts large glitch peaks better than
	// the timing-library resistor. We emulate a glitch by coupling an
	// aggressor ramp into a held-low victim and compare peaks.
	const (
		rWire = 400.0
		cWire = 40e-15
		cc    = 60e-15
	)
	victim, tm := timingFor(t, "INV_X1")

	// Golden: transistor-level victim holding.
	goldNet := spice.NewNetlist("gold")
	asrc := goldNet.Node("asrc")
	a := goldNet.Node("a")
	v := goldNet.Node("v")
	vf := goldNet.Node("vf")
	vdd := goldNet.Node("vdd")
	goldNet.Drive(vdd, waveform.Const(Vdd))
	goldNet.Drive(asrc, waveform.Ramp(0, Vdd, 100e-12, 100e-12))
	goldNet.AddR(asrc, a, 150)
	goldNet.AddC(a, spice.Ground, cWire)
	if err := victim.BuildHolding(goldNet, "u", v, vdd, cells.HoldLow); err != nil {
		t.Fatal(err)
	}
	goldNet.AddR(v, vf, rWire)
	goldNet.AddC(vf, spice.Ground, cWire)
	goldNet.AddC(a, vf, cc)
	goldRes, err := goldNet.Transient(spice.Options{TEnd: 3e-9, Dt: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	goldW, _ := goldRes.Wave("vf")
	goldPeak := goldW.PeakDeviation(0).Abs

	// Model runs: same linear RC cluster, victim modeled two ways.
	runModel := func(term romsim.Termination) float64 {
		ckt := circuit.New("cl")
		na := ckt.Node("a")
		nv := ckt.Node("v")
		nvf := ckt.Node("vf")
		ckt.AddPort("adrv", na, circuit.PortDriver, 0)
		ckt.AddPort("vdrv", nv, circuit.PortDriver, 1)
		ckt.AddCapacitor("ca", na, circuit.Ground, cWire)
		ckt.AddResistor("rv", nv, nvf, rWire)
		ckt.AddCapacitor("cvf", nvf, circuit.Ground, cWire)
		ckt.AddCoupling("cc", na, nvf, cc)
		ckt.AddPort("vrcv", nvf, circuit.PortReceiver, 1)
		sys, err := mna.FromCircuit(ckt, mna.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sympvl.Reduce(sys, sympvl.Options{Order: 8})
		if err != nil {
			t.Fatal(err)
		}
		aggr := romsim.Termination{Linear: &romsim.Linear{G: 1 / 150.0, Vs: waveform.Ramp(0, Vdd, 100e-12, 100e-12)}}
		res, err := romsim.Simulate(m, []romsim.Termination{aggr, term, {}}, romsim.Options{TEnd: 3e-9, Dt: 2e-12})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ports[2].PeakDeviation(0).Abs
	}
	nl, err := NewNonlinearHolding(victim, cells.HoldLow)
	if err != nil {
		t.Fatal(err)
	}
	nlPeak := runModel(nl.Termination())
	linPeak := runModel(NewLinearHolding(tm, cells.HoldLow).Termination())

	nlErr := math.Abs(nlPeak-goldPeak) / goldPeak
	linErr := math.Abs(linPeak-goldPeak) / goldPeak
	t.Logf("gold=%.4f nl=%.4f (%.1f%%) lin=%.4f (%.1f%%)", goldPeak, nlPeak, 100*nlErr, linPeak, 100*linErr)
	if nlErr > 0.25 {
		t.Errorf("nonlinear model error %.1f%% too large", 100*nlErr)
	}
	if nlErr > linErr+0.05 {
		t.Errorf("nonlinear model (%.1f%%) should not be clearly worse than linear (%.1f%%)", 100*nlErr, 100*linErr)
	}
}

func TestReceiverLoadCap(t *testing.T) {
	c, _ := cells.ByName("NAND2_X2")
	if ReceiverLoadCap(c) != c.InputCapF {
		t.Error("receiver load should equal input pin cap")
	}
}

var _ = devices.Vdd025

func TestBlendSwitchingLegacyModel(t *testing.T) {
	// The retained two-curve blend model: endpoint behaviour must match the
	// rail curves and it must remain continuous in time for the Newton loop.
	c, tm := timingFor(t, "INV_X2")
	drv, err := NewBlendSwitching(c, tm, true, 300e-12, 120e-12, 30e-15)
	if err != nil {
		t.Fatal(err)
	}
	iPre, _ := drv.Current(1.0, 0)
	if iPre >= 0 {
		t.Errorf("pre-transition blend should sink at 1V: %g", iPre)
	}
	iPost, _ := drv.Current(1.0, 10e-9)
	if iPost <= 0 {
		t.Errorf("post-transition blend should source at 1V: %g", iPost)
	}
	// Continuity across the blend window.
	prev, _ := drv.Current(1.0, 0)
	for k := 1; k <= 200; k++ {
		tt := float64(k) * 5e-12
		i, _ := drv.Current(1.0, tt)
		if math.Abs(i-prev) > 2e-3 {
			t.Fatalf("blend current jumps at t=%g: %g -> %g", tt, prev, i)
		}
		prev = i
	}
	if term := drv.Termination(); term.Dev == nil {
		t.Error("termination missing device")
	}
}

func TestBlendFallingDirection(t *testing.T) {
	c, tm := timingFor(t, "BUF_X2")
	drv, err := NewBlendSwitching(c, tm, false, 300e-12, 120e-12, 30e-15)
	if err != nil {
		t.Fatal(err)
	}
	// Long after a falling transition the pulldown holds: sinks above 0V.
	i, _ := drv.Current(1.0, 10e-9)
	if i >= 0 {
		t.Errorf("post-fall blend should sink: %g", i)
	}
}
