// Package dsp synthesizes digital designs for the experiments: the simple
// parallel-wire structures of the paper's Figure 1 (Tables 1–2) and a
// deterministic pseudo-random "leading edge DSP" stand-in for the Section 5
// case study, with channel-routed buses, tri-state nets, latch-input victims
// and complementary flip-flop output pairs.
package dsp

import (
	"fmt"
	"math/rand"

	"xtverify/internal/cells"
	"xtverify/internal/design"
)

// lookupAll resolves a list of cell names, failing with the library's typed
// ErrUnknownCell on the first name that does not resolve.
func lookupAll(names []string) ([]*cells.Cell, error) {
	out := make([]*cells.Cell, len(names))
	for i, name := range names {
		c, err := cells.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("dsp: %w", err)
		}
		out[i] = c
	}
	return out, nil
}

// ParallelWires builds the Figure 1 test structure: n parallel wires of the
// given length at pitch pitchUM, each driven by driverNames[i] (cycled) and
// received by receiverName. Wire 0 is conventionally the victim when n is
// odd the middle wire is a better victim; callers decide. Unknown cell names
// yield an error wrapping cells.ErrUnknownCell.
func ParallelWires(n int, lengthUM, pitchUM float64, driverNames []string, receiverName string) (*design.Design, error) {
	d := design.New(fmt.Sprintf("lines_%dx%.0fum", n, lengthUM))
	recv, err := cells.Lookup(receiverName)
	if err != nil {
		return nil, fmt.Errorf("dsp: %w", err)
	}
	drvs, err := lookupAll(driverNames)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		drv := drvs[i%len(drvs)]
		y := float64(i) * pitchUM
		net := &design.Net{
			Name: fmt.Sprintf("w%d", i),
			Drivers: []design.Pin{{
				Inst: fmt.Sprintf("U%d", i), Cell: drv, Pin: "Z", PosX: 0, PosY: y,
			}},
			Receivers: []design.Pin{{
				Inst: fmt.Sprintf("L%d", i), Cell: recv, Pin: "A", PosX: lengthUM, PosY: y,
			}},
			Route: []design.Segment{{Layer: 2, X0: 0, Y0: y, X1: lengthUM, Y1: y, Width: 0.6}},
		}
		d.AddNet(net)
	}
	return d, nil
}

// Config parameterizes the synthetic DSP.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Channels is the number of routing channels.
	Channels int
	// TracksPerChannel is the channel height in routed tracks; every track
	// carries one net, so a full channel couples (transitively) into one
	// pre-pruning cluster of about this many nets.
	TracksPerChannel int
	// ChannelLengthUM is the channel span in micrometers.
	ChannelLengthUM float64
	// BusFraction is the fraction of nets that are tri-state buses.
	BusFraction float64
	// LatchFraction is the fraction of nets whose receiver is a latch input
	// (the Section 5 victim population).
	LatchFraction float64
	// ComplementaryFraction is the fraction of adjacent net pairs marked as
	// Q/QN outputs of the same flip-flop.
	ComplementaryFraction float64
	// ClockSpines adds long, strongly driven clock nets through channels.
	ClockSpines int
	// TrackPitchUM is the channel routing pitch (track center to center).
	// 0 means the dense default, 1.2 µm — minimum width plus minimum space,
	// every neighbour maximally coupled. Relaxed-pitch routing (e.g. 2.0)
	// models the spacing-driven crosstalk fixes a real floorplan carries and
	// yields a large provably-quiet cluster population.
	TrackPitchUM float64
}

// DefaultConfig sizes the design so the Section 5 experiment populations
// (113 coupled clusters with 2–12 aggressors; 101 latch-input victims) are
// available.
func DefaultConfig() Config {
	return Config{
		Seed:                  1999,
		Channels:              8,
		TracksPerChannel:      105,
		ChannelLengthUM:       2400,
		BusFraction:           0.06,
		LatchFraction:         0.25,
		ComplementaryFraction: 0.05,
		ClockSpines:           2,
	}
}

// driver cell pool with rough frequency weights (strong buffers rarer).
var driverPool = []struct {
	name string
	w    int
}{
	{"INV_X1", 8}, {"INV_X2", 10}, {"INV_X4", 8}, {"INV_X8", 3},
	{"BUF_X1", 6}, {"BUF_X2", 8}, {"BUF_X4", 6}, {"BUF_X8", 3},
	{"NAND2_X1", 8}, {"NAND2_X2", 8}, {"NAND2_X4", 4},
	{"NOR2_X1", 6}, {"NOR2_X2", 6}, {"NOR2_X4", 3},
	{"NAND3_X1", 3}, {"NOR3_X1", 2},
	{"AOI21_X1", 3}, {"OAI21_X1", 3}, {"AOI22_X1", 2}, {"OAI22_X1", 2},
	{"DFF_X1", 6}, {"DFF_X2", 5}, {"DFF_X4", 2},
	{"DLY_X1", 1}, {"DLY_X2", 1},
}

var receiverPool = []struct {
	name string
	w    int
}{
	{"INV_X1", 10}, {"INV_X2", 8}, {"NAND2_X1", 8}, {"NOR2_X1", 6},
	{"NAND3_X1", 3}, {"AOI21_X1", 3}, {"OAI21_X1", 3}, {"BUF_X1", 4},
	{"DFF_X1", 4},
}

// weightedCell is a pool entry with its cell pre-resolved, so generation
// after validation cannot hit a lookup failure mid-design.
type weightedCell struct {
	cell *cells.Cell
	w    int
}

func resolvePool(pool []struct {
	name string
	w    int
}) ([]weightedCell, error) {
	out := make([]weightedCell, len(pool))
	for i, p := range pool {
		c, err := cells.Lookup(p.name)
		if err != nil {
			return nil, fmt.Errorf("dsp: %w", err)
		}
		out[i] = weightedCell{cell: c, w: p.w}
	}
	return out, nil
}

func pick(rng *rand.Rand, pool []weightedCell) *cells.Cell {
	total := 0
	for _, p := range pool {
		total += p.w
	}
	r := rng.Intn(total)
	for _, p := range pool {
		r -= p.w
		if r < 0 {
			return p.cell
		}
	}
	return pool[0].cell
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DesignName is the name stamped on every generated DSP design.
const DesignName = "dsp"

// Sink receives a generated design net by net, in ascending-y order — the
// order the streaming extraction frontier requires. A sink error aborts
// generation and is returned verbatim.
type Sink interface {
	// AddNet hands over one finished net. The net's global index is its
	// position in the add sequence (0-based); the sink assigns Net.Index.
	AddNet(n *design.Net) error
	// MarkComplementary records two already-added nets (by global index) as
	// a Q/QN pair.
	MarkComplementary(a, b int)
}

// designSink materializes the stream into one design.
type designSink struct{ d *design.Design }

func (s designSink) AddNet(n *design.Net) error {
	s.d.AddNet(n)
	return nil
}

func (s designSink) MarkComplementary(a, b int) { s.d.MarkComplementary(a, b) }

// Generate builds the synthetic DSP design. All cell names the generator
// draws from are validated up front, so an unknown name fails with a typed
// error (wrapping cells.ErrUnknownCell) before any net is produced.
// Generate is the materializing front of Stream: both run the identical
// pseudo-random sequence, so a streamed ingest sees bit-identical nets.
func Generate(cfg Config) (*design.Design, error) {
	d := design.New(DesignName)
	if err := Stream(cfg, designSink{d: d}); err != nil {
		return nil, err
	}
	return d, nil
}

// Stream generates the synthetic DSP incrementally, handing each net to
// sink as it is produced and never retaining it — memory stays O(1) in the
// design size, which is what lets the streaming ingest benchmark run
// multi-million-net designs without materializing them.
func Stream(cfg Config, sink Sink) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	count := 0
	const (
		channelGap = 60.0 // µm between channels
		wireWidth  = 0.6
	)
	pitch := cfg.TrackPitchUM
	if pitch == 0 {
		pitch = 1.2 // µm: 0.6 width + 0.6 space, the dense default
	}
	drivers, err := resolvePool(driverPool)
	if err != nil {
		return err
	}
	receivers, err := resolvePool(receiverPool)
	if err != nil {
		return err
	}
	fixed, err := lookupAll([]string{"LATCH_X1", "CLKBUF_X16", "BUF_X4"})
	if err != nil {
		return err
	}
	latch, clkbuf, clkload := fixed[0], fixed[1], fixed[2]
	tbuf, err := lookupAll([]string{"TBUF_X1", "TBUF_X2", "TBUF_X4", "TBUF_X8"})
	if err != nil {
		return err
	}
	var prevNet *design.Net
	prevIdx := -1
	for ch := 0; ch < cfg.Channels; ch++ {
		yBase := float64(ch) * (float64(cfg.TracksPerChannel)*pitch + channelGap)
		// Datapath bus bundles: runs of adjacent tracks sharing one long
		// span, the dominant source of large coupled clusters in a DSP.
		bundleLeft := 0
		var bundleX0, bundleX1 float64
		for tr := 0; tr < cfg.TracksPerChannel; tr++ {
			y := yBase + float64(tr)*pitch
			var x0, x1 float64
			if bundleLeft == 0 && rng.Float64() < 0.05 {
				bundleLeft = 10 + rng.Intn(30)
				span := (0.55 + 0.35*rng.Float64()) * cfg.ChannelLengthUM
				bundleX0 = rng.Float64() * (cfg.ChannelLengthUM - span)
				bundleX1 = bundleX0 + span
			}
			if bundleLeft > 0 {
				bundleLeft--
				// Per-bit jitter at the bundle ends.
				x0 = bundleX0 + rng.Float64()*20
				x1 = bundleX1 - rng.Float64()*20
			} else {
				// Random-logic net: mixture of short local and medium spans.
				var length float64
				switch {
				case rng.Float64() < 0.15:
					length = 800 + rng.Float64()*1200 // long
				case rng.Float64() < 0.45:
					length = 300 + rng.Float64()*600 // medium
				default:
					length = 60 + rng.Float64()*300 // short
				}
				if length > cfg.ChannelLengthUM {
					length = cfg.ChannelLengthUM
				}
				x0 = rng.Float64() * (cfg.ChannelLengthUM - length)
				x1 = x0 + length
			}

			name := fmt.Sprintf("ch%d/n%d", ch, tr)
			net := &design.Net{Name: name}
			net.Route = []design.Segment{{Layer: 2, X0: x0, Y0: y, X1: x1, Y1: y, Width: wireWidth}}
			// Short escape stubs on layer 1.
			stub := 3 + rng.Float64()*8
			net.Route = append(net.Route,
				design.Segment{Layer: 1, X0: x0, Y0: y, X1: x0, Y1: y + stub, Width: wireWidth},
				design.Segment{Layer: 1, X0: x1, Y0: y, X1: x1, Y1: y - stub, Width: wireWidth},
			)

			if rng.Float64() < cfg.BusFraction {
				// Tri-state bus with 2–4 drivers distributed along the wire.
				nd := 2 + rng.Intn(3)
				for k := 0; k < nd; k++ {
					px := x0 + (x1-x0)*float64(k)/float64(nd)
					net.Drivers = append(net.Drivers, design.Pin{
						Inst: fmt.Sprintf("%s_tb%d", name, k),
						Cell: tbuf[rng.Intn(len(tbuf))],
						Pin:  "Z", PosX: px, PosY: y,
					})
				}
			} else {
				net.Drivers = []design.Pin{{
					Inst: name + "_drv", Cell: pick(rng, drivers), Pin: "Z",
					PosX: x0, PosY: y + stub,
				}}
			}
			// Receivers: 1–3 fanouts at the far end; some latch inputs.
			nr := 1 + rng.Intn(3)
			for k := 0; k < nr; k++ {
				rc := pick(rng, receivers)
				if k == 0 && rng.Float64() < cfg.LatchFraction {
					rc = latch
				}
				net.Receivers = append(net.Receivers, design.Pin{
					Inst: fmt.Sprintf("%s_rcv%d", name, k),
					Cell: rc, Pin: "D",
					PosX: x1, PosY: y - stub,
				})
			}
			// Combinational drivers are fed by up to two earlier nets in the
			// same channel, forming the DAG static timing walks. Sequential
			// drivers (DFF/LATCH outputs) launch fresh from the clock.
			if !net.IsBus() && !net.Drivers[0].Cell.Sequential && tr > 0 {
				base := count - 1 // last added net so far
				nf := 1 + rng.Intn(2)
				for k := 0; k < nf && k <= tr-1; k++ {
					fi := base - rng.Intn(minInt(tr, 12))
					if fi >= 0 && fi != count {
						net.Fanins = append(net.Fanins, fi)
					}
				}
			}
			if err := sink.AddNet(net); err != nil {
				return err
			}
			idx := count
			count++
			// Complementary Q/QN pairs on adjacent tracks.
			if prevNet != nil && tr > 0 && rng.Float64() < cfg.ComplementaryFraction &&
				!net.IsBus() && !prevNet.IsBus() {
				sink.MarkComplementary(prevIdx, idx)
			}
			prevNet = net
			prevIdx = idx
		}
		// Clock spines: strong long aggressors along the channel.
		for s := 0; s < cfg.ClockSpines; s++ {
			y := yBase + float64(cfg.TracksPerChannel)*pitch + 1.2*float64(s+1)
			net := &design.Net{
				Name:     fmt.Sprintf("ch%d/clk%d", ch, s),
				ClockNet: true,
				Drivers: []design.Pin{{
					Inst: fmt.Sprintf("ch%d_clkbuf%d", ch, s),
					Cell: clkbuf, Pin: "Z", PosX: 0, PosY: y,
				}},
				Receivers: []design.Pin{{
					Inst: fmt.Sprintf("ch%d_clkload%d", ch, s),
					Cell: clkload, Pin: "A", PosX: cfg.ChannelLengthUM, PosY: y,
				}},
				Route: []design.Segment{{Layer: 2, X0: 0, Y0: y, X1: cfg.ChannelLengthUM, Y1: y, Width: wireWidth}},
			}
			if err := sink.AddNet(net); err != nil {
				return err
			}
			count++
		}
		prevNet = nil
	}
	return nil
}
