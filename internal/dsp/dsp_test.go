package dsp

import (
	"testing"

	"xtverify/internal/cells"
)

func TestParallelWires(t *testing.T) {
	d := ParallelWires(3, 1000, 1.2, []string{"INV_X4", "INV_X2"}, "NAND2_X1")
	if len(d.Nets) != 3 {
		t.Fatalf("%d nets", len(d.Nets))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drivers cycle through the list.
	if d.Nets[0].Drivers[0].Cell.Name != "INV_X4" || d.Nets[1].Drivers[0].Cell.Name != "INV_X2" {
		t.Error("driver cycling wrong")
	}
	if d.Nets[2].Length() != 1000 {
		t.Errorf("length %g", d.Nets[2].Length())
	}
	// Wires at the requested pitch.
	if d.Nets[1].Route[0].Y0-d.Nets[0].Route[0].Y0 != 1.2 {
		t.Error("pitch wrong")
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Channels: 2, TracksPerChannel: 30, ChannelLengthUM: 800,
		BusFraction: 0.1, LatchFraction: 0.3, ComplementaryFraction: 0.1, ClockSpines: 1}
	d1 := Generate(cfg)
	if err := d1.Validate(); err != nil {
		t.Fatal(err)
	}
	d2 := Generate(cfg)
	if len(d1.Nets) != len(d2.Nets) {
		t.Fatal("non-deterministic net count")
	}
	for i := range d1.Nets {
		if d1.Nets[i].Name != d2.Nets[i].Name || d1.Nets[i].Length() != d2.Nets[i].Length() {
			t.Fatalf("net %d differs across runs", i)
		}
	}
}

func TestGeneratePopulations(t *testing.T) {
	d := Generate(DefaultConfig())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	wantNets := 8*105 + 8*2 // tracks + clock spines
	if s.Nets != wantNets {
		t.Errorf("nets = %d, want %d", s.Nets, wantNets)
	}
	if s.BusNets == 0 {
		t.Error("no tri-state buses generated")
	}
	if s.ClockNets != 16 {
		t.Errorf("clock nets = %d", s.ClockNets)
	}
	// Latch-input victims: the Section 5 population needs at least 101.
	latchInputs := 0
	for _, n := range d.Nets {
		for _, r := range n.Receivers {
			if r.Cell.Sequential {
				latchInputs++
				break
			}
		}
	}
	if latchInputs < 101 {
		t.Errorf("only %d latch-input nets; need ≥101 for Figures 6–7", latchInputs)
	}
	if len(d.Complementary) == 0 {
		t.Error("no complementary pairs generated")
	}
}

func TestFaninsAreDAG(t *testing.T) {
	d := Generate(Config{Seed: 5, Channels: 1, TracksPerChannel: 50, ChannelLengthUM: 1000})
	for _, n := range d.Nets {
		for _, f := range n.Fanins {
			if f >= n.Index {
				t.Fatalf("net %d has forward fanin %d", n.Index, f)
			}
		}
	}
}

func TestBusDriversAreTriState(t *testing.T) {
	d := Generate(Config{Seed: 13, Channels: 1, TracksPerChannel: 80, ChannelLengthUM: 1500, BusFraction: 0.3})
	buses := 0
	for _, n := range d.Nets {
		if n.IsBus() {
			buses++
			for _, p := range n.Drivers {
				if !p.Cell.TriState {
					t.Errorf("bus %s driven by %s", n.Name, p.Cell.Name)
				}
			}
		}
	}
	if buses == 0 {
		t.Error("no buses at 30% fraction")
	}
}

func TestComplementaryPairsAreAdjacentNets(t *testing.T) {
	d := Generate(Config{Seed: 17, Channels: 1, TracksPerChannel: 100, ChannelLengthUM: 1500, ComplementaryFraction: 0.3})
	if len(d.Complementary) == 0 {
		t.Skip("no pairs this seed")
	}
	for _, p := range d.Complementary {
		if p[1]-p[0] != 1 {
			t.Errorf("pair %v not adjacent", p)
		}
	}
}

var _ = cells.Library
