package dsp

import (
	"errors"
	"testing"

	"xtverify/internal/cells"
	"xtverify/internal/design"
)

// generate is a test helper for the common "must succeed" path.
func generate(t *testing.T, cfg Config) *design.Design {
	t.Helper()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParallelWires(t *testing.T) {
	d, err := ParallelWires(3, 1000, 1.2, []string{"INV_X4", "INV_X2"}, "NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nets) != 3 {
		t.Fatalf("%d nets", len(d.Nets))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drivers cycle through the list.
	if d.Nets[0].Drivers[0].Cell.Name != "INV_X4" || d.Nets[1].Drivers[0].Cell.Name != "INV_X2" {
		t.Error("driver cycling wrong")
	}
	if d.Nets[2].Length() != 1000 {
		t.Errorf("length %g", d.Nets[2].Length())
	}
	// Wires at the requested pitch.
	if d.Nets[1].Route[0].Y0-d.Nets[0].Route[0].Y0 != 1.2 {
		t.Error("pitch wrong")
	}
}

// TestUnknownCellNames pins the typed-error contract: generators reject
// unknown cell names with an error matching cells.ErrUnknownCell instead of
// panicking, and the message names the offending cell.
func TestUnknownCellNames(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"parallel wires bad receiver", func() error {
			_, err := ParallelWires(2, 100, 1.2, []string{"INV_X1"}, "NOPE_X9")
			return err
		}},
		{"parallel wires bad driver", func() error {
			_, err := ParallelWires(2, 100, 1.2, []string{"INV_X1", "BOGUS"}, "INV_X1")
			return err
		}},
		{"lookup bad name", func() error {
			_, err := cells.Lookup("INV_X999")
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("expected an error for the unknown cell name")
			}
			if !errors.Is(err, cells.ErrUnknownCell) {
				t.Fatalf("error %q does not match cells.ErrUnknownCell", err)
			}
		})
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Channels: 2, TracksPerChannel: 30, ChannelLengthUM: 800,
		BusFraction: 0.1, LatchFraction: 0.3, ComplementaryFraction: 0.1, ClockSpines: 1}
	d1 := generate(t, cfg)
	if err := d1.Validate(); err != nil {
		t.Fatal(err)
	}
	d2 := generate(t, cfg)
	if len(d1.Nets) != len(d2.Nets) {
		t.Fatal("non-deterministic net count")
	}
	for i := range d1.Nets {
		if d1.Nets[i].Name != d2.Nets[i].Name || d1.Nets[i].Length() != d2.Nets[i].Length() {
			t.Fatalf("net %d differs across runs", i)
		}
	}
}

func TestGeneratePopulations(t *testing.T) {
	d := generate(t, DefaultConfig())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	wantNets := 8*105 + 8*2 // tracks + clock spines
	if s.Nets != wantNets {
		t.Errorf("nets = %d, want %d", s.Nets, wantNets)
	}
	if s.BusNets == 0 {
		t.Error("no tri-state buses generated")
	}
	if s.ClockNets != 16 {
		t.Errorf("clock nets = %d", s.ClockNets)
	}
	// Latch-input victims: the Section 5 population needs at least 101.
	latchInputs := 0
	for _, n := range d.Nets {
		for _, r := range n.Receivers {
			if r.Cell.Sequential {
				latchInputs++
				break
			}
		}
	}
	if latchInputs < 101 {
		t.Errorf("only %d latch-input nets; need ≥101 for Figures 6–7", latchInputs)
	}
	if len(d.Complementary) == 0 {
		t.Error("no complementary pairs generated")
	}
}

func TestFaninsAreDAG(t *testing.T) {
	d := generate(t, Config{Seed: 5, Channels: 1, TracksPerChannel: 50, ChannelLengthUM: 1000})
	for _, n := range d.Nets {
		for _, f := range n.Fanins {
			if f >= n.Index {
				t.Fatalf("net %d has forward fanin %d", n.Index, f)
			}
		}
	}
}

func TestBusDriversAreTriState(t *testing.T) {
	d := generate(t, Config{Seed: 13, Channels: 1, TracksPerChannel: 80, ChannelLengthUM: 1500, BusFraction: 0.3})
	buses := 0
	for _, n := range d.Nets {
		if n.IsBus() {
			buses++
			for _, p := range n.Drivers {
				if !p.Cell.TriState {
					t.Errorf("bus %s driven by %s", n.Name, p.Cell.Name)
				}
			}
		}
	}
	if buses == 0 {
		t.Error("no buses at 30% fraction")
	}
}

func TestComplementaryPairsAreAdjacentNets(t *testing.T) {
	d := generate(t, Config{Seed: 17, Channels: 1, TracksPerChannel: 100, ChannelLengthUM: 1500, ComplementaryFraction: 0.3})
	if len(d.Complementary) == 0 {
		t.Skip("no pairs this seed")
	}
	for _, p := range d.Complementary {
		if p[1]-p[0] != 1 {
			t.Errorf("pair %v not adjacent", p)
		}
	}
}
