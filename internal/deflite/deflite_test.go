package deflite

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
)

func TestRoundTripParallelWires(t *testing.T) {
	d, err := dsp.ParallelWires(3, 800, 1.2, []string{"INV_X4", "INV_X1"}, "NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || len(back.Nets) != len(d.Nets) {
		t.Fatalf("design shape lost: %s/%d", back.Name, len(back.Nets))
	}
	for i, n := range d.Nets {
		bn := back.Nets[i]
		if bn.Name != n.Name {
			t.Fatalf("net %d name %q vs %q", i, bn.Name, n.Name)
		}
		if len(bn.Drivers) != len(n.Drivers) || len(bn.Receivers) != len(n.Receivers) {
			t.Fatalf("net %s pins lost", n.Name)
		}
		if bn.Drivers[0].Cell.Name != n.Drivers[0].Cell.Name {
			t.Fatalf("net %s driver cell %s vs %s", n.Name, bn.Drivers[0].Cell.Name, n.Drivers[0].Cell.Name)
		}
		if math.Abs(bn.Length()-n.Length()) > 0.01 {
			t.Fatalf("net %s length %g vs %g", n.Name, bn.Length(), n.Length())
		}
	}
}

func TestRoundTripExtractionEquivalence(t *testing.T) {
	// The real test: the reconstructed design must extract to the same
	// parasitics (within DBU rounding).
	d, err := dsp.Generate(dsp.Config{Seed: 23, Channels: 1, TracksPerChannel: 20,
		ChannelLengthUM: 600, BusFraction: 0.1, LatchFraction: 0.3, ClockSpines: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pOrig, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	pBack, err := extract.Extract(back, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	so, sb := pOrig.Stats(), pBack.Stats()
	if so.Nodes != sb.Nodes || so.Resistors != sb.Resistors {
		t.Fatalf("extraction structure differs: %+v vs %+v", so, sb)
	}
	// Coupling counts may flip at the exact coupling-window boundary
	// (second-neighbour tracks sit at precisely 2.4 µm; DBU quantization
	// legitimately perturbs those knife-edge cases) — require agreement
	// within a few percent.
	if d := float64(so.Couplings - sb.Couplings); math.Abs(d) > 0.05*float64(so.Couplings) {
		t.Fatalf("coupling count differs beyond quantization: %d vs %d", so.Couplings, sb.Couplings)
	}
	if math.Abs(so.TotalCapF-sb.TotalCapF) > 0.03*so.TotalCapF {
		t.Fatalf("total capacitance differs: %g vs %g", so.TotalCapF, sb.TotalCapF)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"no design":    "VERSION 5.8 ;\n",
		"unknown cell": "DESIGN d ;\nCOMPONENTS 1 ;\n- u1 NOPE_X1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\n",
		"bad layer":    "DESIGN d ;\nCOMPONENTS 1 ;\n- u1 INV_X1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nNETS 1 ;\n- n ( u1 Z )\n+ ROUTED POLY 600 ( 0 0 ) ( 10 0 )\n;\nEND NETS\n",
		"pin no comp":  "DESIGN d ;\nNETS 1 ;\n- n ( ghost Z )\n;\nEND NETS\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: error not reported", name)
		}
	}
}

func TestWriterEmitsSections(t *testing.T) {
	d, err := dsp.ParallelWires(2, 100, 1.2, []string{"BUF_X1"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VERSION", "DESIGN", "COMPONENTS", "END COMPONENTS", "NETS", "+ ROUTED METAL2", "END DESIGN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestClockNetUseClause(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{Seed: 2, Channels: 1, TracksPerChannel: 5,
		ChannelLengthUM: 300, ClockSpines: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "+ USE CLOCK") {
		t.Fatal("clock nets not marked in DEF")
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	clocks := 0
	for _, n := range back.Nets {
		if n.ClockNet {
			clocks++
		}
	}
	if clocks != 2 {
		t.Errorf("%d clock nets after round trip, want 2", clocks)
	}
}
