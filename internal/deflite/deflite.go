// Package deflite reads and writes a compact subset of the DEF physical
// design exchange format: component placements and routed nets with layered
// wiring. Together with the structural Verilog netlist (internal/verilog)
// and SPEF parasitics (internal/spef) it makes the synthetic designs fully
// file-representable, the way real chip data arrives at a verification
// tool.
//
// Supported constructs:
//
//	VERSION / DESIGN / UNITS DISTANCE MICRONS headers,
//	COMPONENTS with fixed placements,
//	NETS with pin connections and ROUTED METALn segments (NEW continuations),
//	END markers.
//
// Coordinates are stored in DEF database units (UNITS per micron).
package deflite

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xtverify/internal/cells"
	"xtverify/internal/design"
)

// dbuPerMicron is the database resolution used by the writer.
const dbuPerMicron = 1000

// ParseError is the typed error Read returns for malformed DEF input. It
// pins the failure to a 1-based input line so tooling can jump to it, and
// wraps the underlying cause (a strconv failure, a design validation error)
// where one exists.
type ParseError struct {
	// Line is the 1-based input line, 0 for file-level failures.
	Line int
	// Msg describes what was malformed.
	Msg string
	// Err is the underlying cause, nil if the message is the whole story.
	Err error
}

// Error renders "deflite: line N: msg" (or "deflite: msg" at file level),
// matching the package's historical error strings.
func (e *ParseError) Error() string {
	at := ""
	if e.Line > 0 {
		at = fmt.Sprintf("line %d: ", e.Line)
	}
	if e.Err != nil {
		return fmt.Sprintf("deflite: %s%s: %v", at, e.Msg, e.Err)
	}
	return fmt.Sprintf("deflite: %s%s", at, e.Msg)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }

// perr builds a ParseError with a formatted message.
func perr(line int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Write serializes the design.
func Write(w io.Writer, d *design.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n\n", d.Name, dbuPerMicron)
	// Components: every pin instance with its placement.
	type comp struct {
		cell string
		x, y float64
	}
	comps := map[string]comp{}
	var order []string
	addComp := func(p design.Pin) error {
		c, ok := comps[p.Inst]
		if ok {
			if c.cell != p.Cell.Name {
				return fmt.Errorf("deflite: instance %q bound to both %s and %s", p.Inst, c.cell, p.Cell.Name)
			}
			return nil
		}
		comps[p.Inst] = comp{cell: p.Cell.Name, x: p.PosX, y: p.PosY}
		order = append(order, p.Inst)
		return nil
	}
	for _, n := range d.Nets {
		for _, p := range n.Drivers {
			if err := addComp(p); err != nil {
				return err
			}
		}
		for _, p := range n.Receivers {
			if err := addComp(p); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(order))
	for _, inst := range order {
		c := comps[inst]
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n", inst, c.cell, dbu(c.x), dbu(c.y))
	}
	fmt.Fprintf(bw, "END COMPONENTS\n\n")

	fmt.Fprintf(bw, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "- %s", n.Name)
		for _, p := range n.Drivers {
			fmt.Fprintf(bw, " ( %s %s )", p.Inst, pinOr(p.Pin, "Z"))
		}
		for _, p := range n.Receivers {
			fmt.Fprintf(bw, " ( %s %s )", p.Inst, pinOr(p.Pin, "A"))
		}
		bw.WriteByte('\n')
		if n.ClockNet {
			bw.WriteString("+ USE CLOCK\n")
		}
		for i, s := range n.Route {
			kw := "+ ROUTED"
			if i > 0 {
				kw = "  NEW"
			}
			fmt.Fprintf(bw, "%s METAL%d %d ( %d %d ) ( %d %d )\n",
				kw, s.Layer, dbu(s.Width), dbu(s.X0), dbu(s.Y0), dbu(s.X1), dbu(s.Y1))
		}
		fmt.Fprintf(bw, ";\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

func dbu(um float64) int { return int(um*dbuPerMicron + 0.5*sign(um)) }

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func pinOr(p, def string) string {
	if p == "" {
		return def
	}
	return p
}

// Sink receives a streamed DEF parse: the design header, then every net in
// file order, each complete with its pins and routed segments. StreamRead
// never retains a net after handing it over, so a sink that does not
// accumulate keeps parsing memory O(components + one net).
type Sink interface {
	// StartDesign is called once, at the DESIGN statement, before any net.
	StartDesign(name string) error
	// AddNet is called once per net, in file order. The net's Index is not
	// assigned — numbering nets is the sink's job.
	AddNet(n *design.Net) error
}

// Read parses a DEF-lite file back into a design, resolving cells from the
// bundled library. The result passes design.Validate and extracts
// identically to the original. Read is the materializing front of
// StreamRead: it accumulates every net into one design and validates the
// whole at EOF.
func Read(r io.Reader) (*design.Design, error) {
	var d *design.Design
	if err := StreamRead(r, &materializeSink{d: &d}); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, &ParseError{Msg: "reconstructed design invalid", Err: err}
	}
	return d, nil
}

// materializeSink accumulates a streamed parse into one design.
type materializeSink struct{ d **design.Design }

func (m *materializeSink) StartDesign(name string) error {
	*m.d = design.New(name)
	return nil
}

func (m *materializeSink) AddNet(n *design.Net) error {
	(*m.d).AddNet(n)
	return nil
}

// StreamRead parses a DEF-lite file incrementally, handing each net to sink
// the moment its terminating ";" (or the section END) is seen. A sink error
// aborts the parse and is returned verbatim. Unlike Read it performs no
// whole-design validation — per-net checks are the sink's responsibility
// (design.ValidateNet).
func StreamRead(r io.Reader, sink Sink) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		started  bool
		dbuPerUM = float64(dbuPerMicron)
		section  string
		comps    = map[string]compInfo{}
		curNet   *design.Net
		lineNo   int
	)
	toUM := func(tok string) (float64, error) {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return 0, err
		}
		return v / dbuPerUM, nil
	}
	flushNet := func() error {
		if curNet != nil && started {
			n := curNet
			curNet = nil
			return sink.AddNet(n)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch {
		case f[0] == "VERSION":
			// accepted
		case f[0] == "DESIGN" && len(f) >= 2 && !started:
			started = true
			if err := sink.StartDesign(f[1]); err != nil {
				return err
			}
		case f[0] == "UNITS":
			if len(f) >= 4 {
				v, err := strconv.ParseFloat(f[3], 64)
				if err != nil || v <= 0 {
					return perr(lineNo, "bad UNITS")
				}
				dbuPerUM = v
			}
		case f[0] == "COMPONENTS":
			section = "COMPONENTS"
		case f[0] == "NETS":
			section = "NETS"
		case f[0] == "END":
			if section == "NETS" {
				if err := flushNet(); err != nil {
					return err
				}
			}
			section = ""
		case strings.HasPrefix(line, "- ") && section == "COMPONENTS":
			// - inst cell + PLACED ( x y ) N ;
			if len(f) < 9 {
				return perr(lineNo, "malformed component")
			}
			x, err1 := toUM(f[6])
			y, err2 := toUM(f[7])
			if err1 != nil || err2 != nil {
				return perr(lineNo, "bad placement")
			}
			cell, ok := cells.ByName(f[2])
			if !ok {
				return perr(lineNo, "unknown cell %q", f[2])
			}
			comps[f[1]] = compInfo{cell: cell, x: x, y: y}
		case strings.HasPrefix(line, "- ") && section == "NETS":
			if err := flushNet(); err != nil {
				return err
			}
			curNet = &design.Net{Name: f[1]}
			// Pin connections: ( inst pin ) groups on the same line.
			for i := 2; i+3 < len(f)+1; {
				if f[i] != "(" {
					break
				}
				if i+3 >= len(f) || f[i+3] != ")" {
					return perr(lineNo, "malformed pin group")
				}
				inst, pin := f[i+1], f[i+2]
				ci, ok := comps[inst]
				if !ok {
					return perr(lineNo, "pin on undeclared component %q", inst)
				}
				dp := design.Pin{Inst: inst, Cell: ci.cell, Pin: pin, PosX: ci.x, PosY: ci.y}
				if pin == "Z" || pin == "Q" || pin == "QN" || pin == "Y" {
					curNet.Drivers = append(curNet.Drivers, dp)
				} else {
					curNet.Receivers = append(curNet.Receivers, dp)
				}
				i += 4
			}
		case f[0] == "+" && len(f) > 1 && f[1] == "USE":
			if curNet == nil {
				return perr(lineNo, "USE outside net")
			}
			if len(f) >= 3 && f[2] == "CLOCK" {
				curNet.ClockNet = true
			}
		case (f[0] == "+" && len(f) > 1 && f[1] == "ROUTED") || f[0] == "NEW":
			if curNet == nil {
				return perr(lineNo, "route outside net")
			}
			// [+ ROUTED|NEW] METALn width ( x0 y0 ) ( x1 y1 )
			idx := 1
			if f[0] == "+" {
				idx = 2
			}
			if len(f) < idx+9 {
				return perr(lineNo, "malformed route")
			}
			layerTok := f[idx]
			if !strings.HasPrefix(layerTok, "METAL") {
				return perr(lineNo, "bad layer %q", layerTok)
			}
			layer, err := strconv.Atoi(strings.TrimPrefix(layerTok, "METAL"))
			if err != nil {
				return perr(lineNo, "bad layer %q", layerTok)
			}
			width, err := toUM(f[idx+1])
			if err != nil {
				return perr(lineNo, "bad width")
			}
			var coords [4]float64
			ci := 0
			for _, tok := range f[idx+2:] {
				if tok == "(" || tok == ")" {
					continue
				}
				if ci >= 4 {
					break
				}
				v, err := toUM(tok)
				if err != nil {
					return &ParseError{Line: lineNo, Msg: fmt.Sprintf("bad coordinate %q", tok), Err: err}
				}
				coords[ci] = v
				ci++
			}
			if ci != 4 {
				return perr(lineNo, "route needs 4 coordinates")
			}
			curNet.Route = append(curNet.Route, design.Segment{
				Layer: layer, Width: width,
				X0: coords[0], Y0: coords[1], X1: coords[2], Y1: coords[3],
			})
		case f[0] == ";":
			if section == "NETS" {
				if err := flushNet(); err != nil {
					return err
				}
			}
		default:
			return perr(lineNo, "unexpected %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !started {
		return &ParseError{Msg: "no DESIGN statement"}
	}
	return nil
}

type compInfo struct {
	cell *cells.Cell
	x, y float64
}
