package deflite

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// TestMalformedDEFTypedErrors drives Read with malformed inputs and asserts
// that every failure is a *ParseError carrying the right line number and
// message fragment — the contract downstream tooling uses to point users at
// the offending line.
func TestMalformedDEFTypedErrors(t *testing.T) {
	const header = "VERSION 5.8 ;\nDESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\n"
	const comp = "COMPONENTS 1 ;\n- u1 INV_X1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\n"

	cases := []struct {
		name     string
		src      string
		wantLine int
		wantMsg  string
		// wantCause, when set, must match errors.Is/As through Unwrap.
		wantNumCause bool
	}{
		{
			name:     "truncated component",
			src:      header + "COMPONENTS 1 ;\n- u1 INV_X1 + PLACED ( 0\n",
			wantLine: 5,
			wantMsg:  "malformed component",
		},
		{
			name:     "bad placement coordinate",
			src:      header + "COMPONENTS 1 ;\n- u1 INV_X1 + PLACED ( zero 0 ) N ;\n",
			wantLine: 5,
			wantMsg:  "bad placement",
		},
		{
			name:     "unknown cell",
			src:      header + "COMPONENTS 1 ;\n- u1 NOT_IN_LIBRARY + PLACED ( 0 0 ) N ;\n",
			wantLine: 5,
			wantMsg:  `unknown cell "NOT_IN_LIBRARY"`,
		},
		{
			name:     "bad UNITS",
			src:      "VERSION 5.8 ;\nDESIGN d ;\nUNITS DISTANCE MICRONS minus ;\n",
			wantLine: 3,
			wantMsg:  "bad UNITS",
		},
		{
			name:     "truncated pin group",
			src:      header + comp + "NETS 1 ;\n- n ( u1 Z\n",
			wantLine: 8,
			wantMsg:  "malformed pin group",
		},
		{
			name:     "pin on undeclared component",
			src:      header + comp + "NETS 1 ;\n- n ( ghost Z )\n",
			wantLine: 8,
			wantMsg:  `pin on undeclared component "ghost"`,
		},
		{
			name:     "route outside net",
			src:      header + comp + "NETS 1 ;\n+ ROUTED METAL2 600 ( 0 0 ) ( 10 0 )\n",
			wantLine: 8,
			wantMsg:  "route outside net",
		},
		{
			name:     "bad layer",
			src:      header + comp + "NETS 1 ;\n- n ( u1 Z )\n+ ROUTED POLY7 600 ( 0 0 ) ( 10 0 )\n",
			wantLine: 9,
			wantMsg:  `bad layer "POLY7"`,
		},
		{
			name:     "truncated route",
			src:      header + comp + "NETS 1 ;\n- n ( u1 Z )\n+ ROUTED METAL2 600 ( 0 0 )\n",
			wantLine: 9,
			wantMsg:  "malformed route",
		},
		{
			name:         "bad route coordinate",
			src:          header + comp + "NETS 1 ;\n- n ( u1 Z )\n+ ROUTED METAL2 600 ( ten 0 ) ( 10 0 )\n",
			wantLine:     9,
			wantMsg:      `bad coordinate "ten"`,
			wantNumCause: true,
		},
		{
			name:     "USE outside net",
			src:      header + comp + "NETS 1 ;\n+ USE CLOCK\n",
			wantLine: 8,
			wantMsg:  "USE outside net",
		},
		{
			name:     "unexpected statement",
			src:      header + "GARBAGE HERE\n",
			wantLine: 4,
			wantMsg:  "unexpected",
		},
		{
			name:    "missing DESIGN",
			src:     "VERSION 5.8 ;\n",
			wantMsg: "no DESIGN statement",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.src))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T (%v) is not a *ParseError", err, err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("line = %d, want %d (err: %v)", pe.Line, tc.wantLine, pe)
			}
			if !strings.Contains(pe.Msg, tc.wantMsg) {
				t.Errorf("msg %q does not contain %q", pe.Msg, tc.wantMsg)
			}
			if tc.wantNumCause {
				var ne *strconv.NumError
				if !errors.As(err, &ne) {
					t.Errorf("cause chain of %v lacks the strconv error", err)
				}
			}
			//xtlint:errcmp the test pins the rendered line number in the human-facing message
			if tc.wantLine > 0 && !strings.Contains(err.Error(), "line "+strconv.Itoa(tc.wantLine)) {
				t.Errorf("rendered error %q omits the line number", err)
			}
		})
	}
}
