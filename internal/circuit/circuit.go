// Package circuit defines the flat electrical view of an extracted
// interconnect cluster: a linear RC network with named nodes, grounded and
// coupling capacitors, and I/O ports where driver and receiver cells attach.
//
// This is the "circuit cluster" of the paper's Figure 2 — the unit of work
// handed to SyMPVL model-order reduction and, for reference runs, to the
// SPICE-class simulator.
package circuit

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Circuit. The ground node is the negative
// sentinel Ground and is never stored.
type NodeID int

// Ground is the global reference node.
const Ground NodeID = -1

// Resistor is a two-terminal linear resistor.
type Resistor struct {
	Name string
	A, B NodeID
	Ohms float64
}

// Capacitor is a two-terminal linear capacitor. Coupling marks capacitors
// that connect two signal nets (the crosstalk paths); grounded capacitors
// have B == Ground or Coupling == false.
type Capacitor struct {
	Name     string
	A, B     NodeID
	Farads   float64
	Coupling bool
}

// PortKind describes what attaches to a port.
type PortKind int

const (
	// PortDriver is a net's driving-cell output attachment point.
	PortDriver PortKind = iota
	// PortReceiver is a load-cell input attachment point.
	PortReceiver
)

// Port is an externally visible terminal of the cluster.
type Port struct {
	Name string
	Node NodeID
	Kind PortKind
	// Net records which net of the cluster the port belongs to (index into
	// the owner's net list; -1 when standalone).
	Net int
}

// Circuit is a linear RC cluster with ports.
type Circuit struct {
	Name      string
	nodeNames []string
	nodeIndex map[string]NodeID

	Resistors  []Resistor
	Capacitors []Capacitor
	Ports      []Port
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, nodeIndex: make(map[string]NodeID)}
}

// Node returns the NodeID for name, creating the node on first use.
func (c *Circuit) Node(name string) NodeID {
	if id, ok := c.nodeIndex[name]; ok {
		return id
	}
	id := NodeID(len(c.nodeNames))
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = id
	return id
}

// LookupNode returns the NodeID for name without creating it.
func (c *Circuit) LookupNode(name string) (NodeID, bool) {
	id, ok := c.nodeIndex[name]
	return id, ok
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NodeName returns the name of node id, or "0" for ground.
func (c *Circuit) NodeName(id NodeID) string {
	if id == Ground {
		return "0"
	}
	if int(id) >= len(c.nodeNames) {
		return fmt.Sprintf("<invalid:%d>", id)
	}
	return c.nodeNames[id]
}

// AddResistor appends a resistor between nodes a and b.
func (c *Circuit) AddResistor(name string, a, b NodeID, ohms float64) {
	c.Resistors = append(c.Resistors, Resistor{Name: name, A: a, B: b, Ohms: ohms})
}

// AddCapacitor appends a grounded or internal capacitor.
func (c *Circuit) AddCapacitor(name string, a, b NodeID, farads float64) {
	c.Capacitors = append(c.Capacitors, Capacitor{Name: name, A: a, B: b, Farads: farads})
}

// AddCoupling appends a coupling capacitor between two nets' nodes.
func (c *Circuit) AddCoupling(name string, a, b NodeID, farads float64) {
	c.Capacitors = append(c.Capacitors, Capacitor{Name: name, A: a, B: b, Farads: farads, Coupling: true})
}

// AddPort registers an external terminal at node.
func (c *Circuit) AddPort(name string, node NodeID, kind PortKind, net int) int {
	c.Ports = append(c.Ports, Port{Name: name, Node: node, Kind: kind, Net: net})
	return len(c.Ports) - 1
}

// PortByName returns the index of the named port or -1.
func (c *Circuit) PortByName(name string) int {
	for i, p := range c.Ports {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// DriverPorts returns the indices of all driver ports.
func (c *Circuit) DriverPorts() []int {
	var out []int
	for i, p := range c.Ports {
		if p.Kind == PortDriver {
			out = append(out, i)
		}
	}
	return out
}

// TotalCap returns the total capacitance (grounded + coupling) attached to
// node id.
func (c *Circuit) TotalCap(id NodeID) float64 {
	s := 0.0
	for _, cap := range c.Capacitors {
		if cap.A == id || cap.B == id {
			s += cap.Farads
		}
	}
	return s
}

// CouplingCap returns the total coupling capacitance attached to node id.
func (c *Circuit) CouplingCap(id NodeID) float64 {
	s := 0.0
	for _, cap := range c.Capacitors {
		if cap.Coupling && (cap.A == id || cap.B == id) {
			s += cap.Farads
		}
	}
	return s
}

// Decoupled returns a copy of the circuit with every coupling capacitor
// split into two grounded capacitors of the same value (the paper's
// "decoupled" analysis variant used for delay-without-coupling baselines).
func (c *Circuit) Decoupled() *Circuit {
	out := c.shallowCopy()
	out.Name = c.Name + ".decoupled"
	out.Capacitors = make([]Capacitor, 0, len(c.Capacitors))
	for _, cap := range c.Capacitors {
		if !cap.Coupling {
			out.Capacitors = append(out.Capacitors, cap)
			continue
		}
		if cap.A != Ground {
			out.Capacitors = append(out.Capacitors, Capacitor{Name: cap.Name + ".a", A: cap.A, B: Ground, Farads: cap.Farads})
		}
		if cap.B != Ground {
			out.Capacitors = append(out.Capacitors, Capacitor{Name: cap.Name + ".b", A: cap.B, B: Ground, Farads: cap.Farads})
		}
	}
	return out
}

// GroundCoupling returns a copy with the selected coupling capacitors
// converted to grounded ones (used by pruning to decouple weak aggressors).
// keep reports whether a given coupling capacitor index should remain a
// coupler.
func (c *Circuit) GroundCoupling(keep func(i int, cap Capacitor) bool) *Circuit {
	out := c.shallowCopy()
	out.Capacitors = make([]Capacitor, 0, len(c.Capacitors))
	for i, cap := range c.Capacitors {
		if !cap.Coupling || keep(i, cap) {
			out.Capacitors = append(out.Capacitors, cap)
			continue
		}
		if cap.A != Ground {
			out.Capacitors = append(out.Capacitors, Capacitor{Name: cap.Name + ".a", A: cap.A, B: Ground, Farads: cap.Farads})
		}
		if cap.B != Ground {
			out.Capacitors = append(out.Capacitors, Capacitor{Name: cap.Name + ".b", A: cap.B, B: Ground, Farads: cap.Farads})
		}
	}
	return out
}

func (c *Circuit) shallowCopy() *Circuit {
	out := New(c.Name)
	out.nodeNames = append([]string(nil), c.nodeNames...)
	for i, n := range out.nodeNames {
		out.nodeIndex[n] = NodeID(i)
	}
	out.Resistors = append([]Resistor(nil), c.Resistors...)
	out.Capacitors = append([]Capacitor(nil), c.Capacitors...)
	out.Ports = append([]Port(nil), c.Ports...)
	return out
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit { return c.shallowCopy() }

// Stats summarizes the circuit contents.
type Stats struct {
	Nodes       int
	Resistors   int
	GroundCaps  int
	CouplingCap int
	Ports       int
	TotalCapF   float64
	CouplingF   float64
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Nodes: c.NumNodes(), Resistors: len(c.Resistors), Ports: len(c.Ports)}
	for _, cap := range c.Capacitors {
		s.TotalCapF += cap.Farads
		if cap.Coupling {
			s.CouplingCap++
			s.CouplingF += cap.Farads
		} else {
			s.GroundCaps++
		}
	}
	return s
}

// Validate checks structural invariants: element terminals reference valid
// nodes, values are positive, port nodes exist, and every non-ground node is
// reachable from some port through resistors (no floating resistive islands,
// which would make the conductance matrix singular).
//
// Validate runs on every cluster the engine analyzes, so the happy path
// avoids per-element work beyond the checks themselves: error strings are
// only built once a violation is found, and the reachability sweep uses a
// flat counted adjacency instead of per-node growing slices.
func (c *Circuit) Validate() error {
	n := c.NumNodes()
	badNode := func(id NodeID) bool {
		return id != Ground && (id < 0 || int(id) >= n)
	}
	for _, r := range c.Resistors {
		if badNode(r.A) || badNode(r.B) {
			bad := r.A
			if !badNode(bad) {
				bad = r.B
			}
			return fmt.Errorf("circuit %q: resistor %s references invalid node %d", c.Name, r.Name, bad)
		}
		if r.Ohms <= 0 {
			return fmt.Errorf("circuit %q: resistor %s has non-positive value %g", c.Name, r.Name, r.Ohms)
		}
		if r.A == r.B {
			return fmt.Errorf("circuit %q: resistor %s is shorted to itself", c.Name, r.Name)
		}
	}
	for _, cap := range c.Capacitors {
		if badNode(cap.A) || badNode(cap.B) {
			bad := cap.A
			if !badNode(bad) {
				bad = cap.B
			}
			return fmt.Errorf("circuit %q: capacitor %s references invalid node %d", c.Name, cap.Name, bad)
		}
		if cap.Farads <= 0 {
			return fmt.Errorf("circuit %q: capacitor %s has non-positive value %g", c.Name, cap.Name, cap.Farads)
		}
	}
	for _, p := range c.Ports {
		if badNode(p.Node) {
			return fmt.Errorf("circuit %q: port %s references invalid node %d", c.Name, p.Name, p.Node)
		}
		if p.Node == Ground {
			return fmt.Errorf("circuit %q: port %s attached to ground", c.Name, p.Name)
		}
	}
	// Resistive reachability from ports, over a counted flat adjacency.
	if n > 0 {
		deg := make([]int, n+1)
		for _, r := range c.Resistors {
			if r.A != Ground && r.B != Ground {
				deg[r.A+1]++
				deg[r.B+1]++
			}
		}
		for i := 0; i < n; i++ {
			deg[i+1] += deg[i]
		}
		backing := make([]int, deg[n])
		fill := make([]int, n)
		copy(fill, deg[:n])
		for _, r := range c.Resistors {
			if r.A != Ground && r.B != Ground {
				backing[fill[r.A]] = int(r.B)
				fill[r.A]++
				backing[fill[r.B]] = int(r.A)
				fill[r.B]++
			}
		}
		seen := make([]bool, n)
		stack := make([]int, 0, n)
		for _, p := range c.Ports {
			if !seen[p.Node] {
				seen[p.Node] = true
				stack = append(stack, int(p.Node))
			}
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range backing[deg[v]:fill[v]] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		for i, ok := range seen {
			if !ok {
				return fmt.Errorf("circuit %q: node %s unreachable from any port through resistors", c.Name, c.nodeNames[i])
			}
		}
	}
	return nil
}

// NodesSorted returns all node names in deterministic order.
func (c *Circuit) NodesSorted() []string {
	out := append([]string(nil), c.nodeNames...)
	sort.Strings(out)
	return out
}

// String returns a one-line summary.
func (c *Circuit) String() string {
	s := c.Stats()
	return fmt.Sprintf("circuit %q: %d nodes, %d R, %d Cg, %d Cc, %d ports",
		c.Name, s.Nodes, s.Resistors, s.GroundCaps, s.CouplingCap, s.Ports)
}
