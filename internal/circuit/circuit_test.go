package circuit

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// ladder builds a simple RC ladder net with nseg segments driven at "in"
// and received at "out".
func ladder(t *testing.T, nseg int) *Circuit {
	t.Helper()
	c := New("ladder")
	prev := c.Node("in")
	c.AddPort("drv", prev, PortDriver, 0)
	for i := 0; i < nseg; i++ {
		next := c.Node("n" + string(rune('a'+i)))
		c.AddResistor("r", prev, next, 100)
		c.AddCapacitor("c", next, Ground, 1e-15)
		prev = next
	}
	c.AddPort("rcv", prev, PortReceiver, 0)
	return c
}

func TestNodeInterning(t *testing.T) {
	c := New("x")
	a := c.Node("a")
	b := c.Node("b")
	if a == b {
		t.Fatal("distinct names must get distinct ids")
	}
	if c.Node("a") != a {
		t.Error("repeated Node lookup must return same id")
	}
	if c.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", c.NumNodes())
	}
	if got, ok := c.LookupNode("a"); !ok || got != a {
		t.Error("LookupNode failed for existing node")
	}
	if _, ok := c.LookupNode("zzz"); ok {
		t.Error("LookupNode invented a node")
	}
	if c.NodeName(a) != "a" || c.NodeName(Ground) != "0" {
		t.Error("NodeName mapping wrong")
	}
}

func TestValidateGood(t *testing.T) {
	c := ladder(t, 5)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid ladder rejected: %v", err)
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	c := New("bad")
	a, b := c.Node("a"), c.Node("b")
	c.AddPort("p", a, PortDriver, 0)
	c.AddResistor("r", a, b, -5)
	//xtlint:errcmp the test pins the human-facing message content, not the error identity
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "non-positive") {
		t.Errorf("negative resistor not caught: %v", err)
	}
	c2 := New("bad2")
	x := c2.Node("x")
	c2.AddPort("p", x, PortDriver, 0)
	c2.AddResistor("r", x, x, 10)
	//xtlint:errcmp the test pins the human-facing message content, not the error identity
	if err := c2.Validate(); err == nil || !strings.Contains(err.Error(), "shorted") {
		t.Errorf("self-loop resistor not caught: %v", err)
	}
}

func TestValidateCatchesFloatingNode(t *testing.T) {
	c := New("float")
	a := c.Node("a")
	c.Node("island") // no resistive path to the port
	c.AddPort("p", a, PortDriver, 0)
	//xtlint:errcmp the test pins the human-facing message content, not the error identity
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("floating node not caught: %v", err)
	}
}

func TestDecoupled(t *testing.T) {
	c := New("pair")
	a := c.Node("a")
	b := c.Node("b")
	c.AddPort("pa", a, PortDriver, 0)
	c.AddPort("pb", b, PortDriver, 1)
	c.AddResistor("ra", a, b, 10) // keep connectivity for Validate
	c.AddCapacitor("cga", a, Ground, 2e-15)
	c.AddCoupling("cc", a, b, 3e-15)
	d := c.Decoupled()
	// Coupling split into two grounded caps; total cap at each node
	// unchanged.
	if got := d.TotalCap(a); got != 5e-15 {
		t.Errorf("TotalCap(a) after decouple = %g, want 5e-15", got)
	}
	if got := d.CouplingCap(a); got != 0 {
		t.Errorf("CouplingCap(a) after decouple = %g, want 0", got)
	}
	// Original untouched.
	if got := c.CouplingCap(a); got != 3e-15 {
		t.Errorf("original CouplingCap(a) = %g, want 3e-15", got)
	}
	for _, cap := range d.Capacitors {
		if cap.Coupling {
			t.Error("decoupled circuit still has coupling capacitors")
		}
	}
}

func TestGroundCouplingSelective(t *testing.T) {
	c := New("sel")
	a, b, e := c.Node("a"), c.Node("b"), c.Node("e")
	c.AddPort("pa", a, PortDriver, 0)
	c.AddResistor("r1", a, b, 1)
	c.AddResistor("r2", b, e, 1)
	c.AddCoupling("keepme", a, b, 1e-15)
	c.AddCoupling("dropme", b, e, 2e-15)
	out := c.GroundCoupling(func(i int, cap Capacitor) bool { return cap.Name == "keepme" })
	kept, grounded := 0, 0
	for _, cap := range out.Capacitors {
		if cap.Coupling {
			kept++
		} else {
			grounded++
		}
	}
	if kept != 1 || grounded != 2 {
		t.Errorf("kept=%d grounded=%d, want 1 and 2", kept, grounded)
	}
}

func TestStatsAndString(t *testing.T) {
	c := ladder(t, 3)
	c.AddCoupling("cc", c.Node("na"), c.Node("nb"), 4e-15)
	s := c.Stats()
	if s.Resistors != 3 || s.GroundCaps != 3 || s.CouplingCap != 1 || s.Ports != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.CouplingF != 4e-15 {
		t.Errorf("CouplingF = %g", s.CouplingF)
	}
	if !strings.Contains(c.String(), "3 R") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := ladder(t, 2)
	d := c.Clone()
	d.AddResistor("extra", d.Node("in"), d.Node("na"), 1)
	if len(c.Resistors) == len(d.Resistors) {
		t.Error("Clone shares resistor slice")
	}
	// New nodes in the clone must not leak back.
	d.Node("newnode")
	if _, ok := c.LookupNode("newnode"); ok {
		t.Error("Clone shares node table")
	}
}

func TestPortQueries(t *testing.T) {
	c := ladder(t, 2)
	if c.PortByName("drv") != 0 || c.PortByName("rcv") != 1 {
		t.Error("PortByName wrong")
	}
	if c.PortByName("none") != -1 {
		t.Error("PortByName should return -1 for unknown")
	}
	dp := c.DriverPorts()
	if len(dp) != 1 || dp[0] != 0 {
		t.Errorf("DriverPorts = %v", dp)
	}
}

func TestNodesSortedDeterministic(t *testing.T) {
	c := New("s")
	c.Node("z")
	c.Node("a")
	c.Node("m")
	got := c.NodesSorted()
	if got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("NodesSorted = %v", got)
	}
}

// Property: decoupling preserves each node's total capacitance and doubles
// nothing (conservation of extracted C).
func TestDecoupledConservesNodeCapacitance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("prop")
		n := 3 + rng.Intn(10)
		nodes := make([]NodeID, n)
		for i := range nodes {
			nodes[i] = c.Node(fmt.Sprintf("n%d", i))
		}
		c.AddPort("p", nodes[0], PortDriver, 0)
		for i := 0; i+1 < n; i++ {
			c.AddResistor("r", nodes[i], nodes[i+1], 1+rng.Float64()*100)
		}
		for k := 0; k < n; k++ {
			a := nodes[rng.Intn(n)]
			if rng.Float64() < 0.5 {
				c.AddCapacitor("cg", a, Ground, 1e-15*(1+rng.Float64()))
			} else {
				b := nodes[rng.Intn(n)]
				if b == a {
					continue
				}
				c.AddCoupling("cc", a, b, 1e-15*(1+rng.Float64()))
			}
		}
		d := c.Decoupled()
		for _, nd := range nodes {
			if math.Abs(c.TotalCap(nd)-d.TotalCap(nd)) > 1e-24 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
