// Package stats provides the small statistical utilities the experiment
// reports need: summary statistics of error populations and fixed-bin
// histograms with ASCII rendering (the paper's Figures 3, 6 and 7 are error
// histograms).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the moments of a sample.
type Summary struct {
	N               int
	Mean, Std       float64
	Min, Max        float64
	AbsMean, AbsMax float64
	P50, P90        float64
}

// Summarize computes summary statistics; zero-valued for empty input.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		s.Mean += x
		s.AbsMean += math.Abs(x)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if a := math.Abs(x); a > s.AbsMax {
			s.AbsMax = a
		}
	}
	s.Mean /= float64(s.N)
	s.AbsMean /= float64(s.N)
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(s.Std / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width binning over [Lo, Hi) with under/overflow bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates nBins equal bins across [lo, hi).
func NewHistogram(lo, hi float64, nBins int) *Histogram {
	if hi <= lo || nBins < 1 {
		panic("stats: invalid histogram range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nBins)}
}

// Add registers one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the sample count.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws a horizontal ASCII histogram with percentage labels, in the
// style of the paper's error-distribution figures.
func (h *Histogram) Render(label string, width int) string {
	if width < 10 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", label, h.total)
	max := h.Under
	if h.Over > max {
		max = h.Over
	}
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		max = 1
	}
	row := func(name string, count int) {
		bar := strings.Repeat("#", count*width/max)
		pct := 0.0
		if h.total > 0 {
			pct = 100 * float64(count) / float64(h.total)
		}
		fmt.Fprintf(&b, "%12s |%-*s %5.1f%% (%d)\n", name, width, bar, pct, count)
	}
	if h.Under > 0 {
		row(fmt.Sprintf("< %.3g", h.Lo), h.Under)
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Lo + w*float64(i)
		row(fmt.Sprintf("%.3g..%.3g", lo, lo+w), c)
	}
	if h.Over > 0 {
		row(fmt.Sprintf(">= %.3g", h.Hi), h.Over)
	}
	return b.String()
}

// Bin groups samples by arbitrary bucket edges; used for the Table 3/4
// per-glitch-magnitude error rows.
type Bin struct {
	Lo, Hi float64
	Values []float64
}

// BinBy distributes (key, value) samples into bins defined by edges
// (len(edges)+1 bins: (-inf, e0), [e0, e1), ..., [eN, +inf)).
func BinBy(keys, values []float64, edges []float64) []Bin {
	if len(keys) != len(values) {
		panic("stats: BinBy length mismatch")
	}
	bins := make([]Bin, len(edges)+1)
	for i := range bins {
		if i == 0 {
			bins[i].Lo = math.Inf(-1)
		} else {
			bins[i].Lo = edges[i-1]
		}
		if i == len(edges) {
			bins[i].Hi = math.Inf(1)
		} else {
			bins[i].Hi = edges[i]
		}
	}
	for k, key := range keys {
		idx := sort.SearchFloat64s(edges, key)
		if idx < len(edges) && key == edges[idx] {
			idx++
		}
		bins[idx].Values = append(bins[idx].Values, values[k])
	}
	return bins
}
