package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary %+v", s)
	}
	// Sample std of 1..4 = sqrt(5/3).
	if math.Abs(s.Std-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Errorf("std = %g", s.Std)
	}
	if s.P50 != 2.5 {
		t.Errorf("median = %g", s.P50)
	}
	if s.AbsMax != 4 {
		t.Errorf("absmax = %g", s.AbsMax)
	}
}

func TestSummarizeEmptyAndNegative(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary wrong")
	}
	s := Summarize([]float64{-3, 1})
	if s.AbsMean != 2 || s.AbsMax != 3 || s.Min != -3 {
		t.Errorf("negative handling: %+v", s)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 15} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if math.Abs(h.BinCenter(0)-1) > 1e-12 {
		t.Errorf("bin center = %g", h.BinCenter(0))
	}
}

// Property: all samples land somewhere (conservation).
func TestHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-1, 1, 8)
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
		}
		sum := h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(3)
	h.Add(3.5)
	out := h.Render("test", 20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "n=3") {
		t.Errorf("render:\n%s", out)
	}
}

func TestBinBy(t *testing.T) {
	keys := []float64{0.1, 0.3, 0.5, 0.9, 2.0}
	vals := []float64{1, 2, 3, 4, 5}
	bins := BinBy(keys, vals, []float64{0.3, 1.0})
	if len(bins) != 3 {
		t.Fatalf("%d bins", len(bins))
	}
	if len(bins[0].Values) != 1 || bins[0].Values[0] != 1 {
		t.Errorf("bin0 %v", bins[0].Values)
	}
	if len(bins[1].Values) != 3 { // 0.3, 0.5, 0.9
		t.Errorf("bin1 %v", bins[1].Values)
	}
	if len(bins[2].Values) != 1 || bins[2].Values[0] != 5 {
		t.Errorf("bin2 %v", bins[2].Values)
	}
}
