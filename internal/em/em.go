// Package em implements the electromigration / current-density audit that
// motivates part of the paper's Section 4.2: the nonlinear cell model is
// required to be "accurate enough to capture not only the average and RMS
// current and/or voltage at the cell driving point" precisely so analyses
// like this one are trustworthy.
//
// For each net the driver is switched through a full low→high→low cycle at
// the stated activity frequency against the reduced-order model of its
// extracted interconnect; the driver current waveform i(t) is recovered
// from the port voltage through the driver model's own I–V law, and its
// average, RMS and peak values are compared against per-width current
// limits.
package em

import (
	"fmt"
	"math"

	"xtverify/internal/cellmodel"
	"xtverify/internal/cells"
	"xtverify/internal/circuit"
	"xtverify/internal/design"
	"xtverify/internal/devices"
	"xtverify/internal/extract"
	"xtverify/internal/mna"
	"xtverify/internal/romsim"
	"xtverify/internal/sympvl"
)

// Limits are aluminum-interconnect current-density limits for the 0.25 µm
// generation, expressed per meter of wire width.
type Limits struct {
	// AvgAPerM bounds unidirectional (average) current density.
	AvgAPerM float64
	// RMSAPerM bounds Joule-heating (RMS) current density.
	RMSAPerM float64
	// PeakAPerM bounds transient peaks.
	PeakAPerM float64
}

// DefaultLimits returns the standard limits (1 mA/µm avg, 2 mA/µm RMS,
// 10 mA/µm peak).
func DefaultLimits() Limits {
	return Limits{AvgAPerM: 1e-3 / 1e-6, RMSAPerM: 2e-3 / 1e-6, PeakAPerM: 10e-3 / 1e-6}
}

// Result is the per-net EM audit outcome.
type Result struct {
	Net        string
	DriverCell string
	// WidthM is the minimum wire width on the route.
	WidthM float64
	// IAvgA, IRMSA and IPeakA are the driver current measures over one
	// switching cycle at the activity frequency.
	IAvgA, IRMSA, IPeakA float64
	// Limits used for the verdicts.
	Limits Limits
	// AvgViolation, RMSViolation, PeakViolation flag exceeded limits.
	AvgViolation, RMSViolation, PeakViolation bool
}

// Violated reports whether any limit is exceeded.
func (r *Result) Violated() bool { return r.AvgViolation || r.RMSViolation || r.PeakViolation }

// Options configures the audit.
type Options struct {
	// ActivityHz is the switching frequency (both edges per period);
	// 200 MHz if zero — a leading-edge 1999 DSP clock.
	ActivityHz float64
	// Dt is the transient step (2 ps default).
	Dt float64
	// Limits default to DefaultLimits.
	Limits Limits
}

// AnalyzeNet audits one net of the extraction.
func AnalyzeNet(par *extract.Parasitics, netIdx int, opt Options) (*Result, error) {
	if opt.ActivityHz == 0 {
		opt.ActivityHz = 200e6
	}
	if opt.Dt == 0 {
		opt.Dt = 2e-12
	}
	if opt.Limits == (Limits{}) {
		opt.Limits = DefaultLimits()
	}
	net := par.Design.Nets[netIdx]
	rc := par.Nets[netIdx]
	drv := net.Drivers[0]
	for _, p := range net.Drivers[1:] {
		if p.Cell.Wn > drv.Cell.Wn {
			drv = p
		}
	}
	res := &Result{Net: net.Name, DriverCell: drv.Cell.Name, Limits: opt.Limits}
	res.WidthM = minWidth(net) * 1e-6

	// Single-net circuit: wire RC with all coupling grounded (worst
	// capacitive load), driver port plus observation at the far end.
	ckt := circuit.New("em_" + net.Name)
	for k := range rc.NodeX {
		ckt.Node(nodeName(net.Name, k))
	}
	for i, r := range rc.Res {
		ckt.AddResistor(fmt.Sprintf("r%d", i), ckt.Node(nodeName(net.Name, r.A)), ckt.Node(nodeName(net.Name, r.B)), r.Ohms)
	}
	for k, c := range rc.CapF {
		if c > 0 {
			ckt.AddCapacitor(fmt.Sprintf("c%d", k), ckt.Node(nodeName(net.Name, k)), circuit.Ground, c)
		}
	}
	for _, c := range par.Couplings {
		if c.NetA == netIdx {
			ckt.AddCapacitor("cc", ckt.Node(nodeName(net.Name, c.NodeA)), circuit.Ground, c.Farads)
		} else if c.NetB == netIdx {
			ckt.AddCapacitor("cc", ckt.Node(nodeName(net.Name, c.NodeB)), circuit.Ground, c.Farads)
		}
	}
	drvNode := ckt.Node(nodeName(net.Name, rc.DriverNodes[0]))
	ckt.AddPort("drv", drvNode, circuit.PortDriver, 0)
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		return nil, err
	}
	model, err := sympvl.Reduce(sys, sympvl.Options{Order: 8})
	if err != nil {
		return nil, err
	}

	// Full cycle: rise at T/4, fall at 3T/4.
	period := 1 / opt.ActivityHz
	tm, err := cells.CharacterizeCached(drv.Cell)
	if err != nil {
		return nil, err
	}
	load := rc.TotalCapF()
	slew := 120e-12
	up, err := cellmodel.NewNonlinearSwitching(drv.Cell, tm, true, period/4, slew, load)
	if err != nil {
		return nil, err
	}
	down, err := cellmodel.NewNonlinearSwitching(drv.Cell, tm, false, 3*period/4, slew, load)
	if err != nil {
		return nil, err
	}
	cycle := &cycleDriver{up: up, down: down, mid: period / 2}
	simRes, err := romsim.Simulate(model, []romsim.Termination{{Dev: cycle}},
		romsim.Options{TEnd: period, Dt: stepFor(period, opt.Dt)})
	if err != nil {
		return nil, err
	}
	// Recover i(t) from the port voltage through the driver law and
	// integrate.
	w := simRes.Ports[0]
	var sumAbs, sumSq, peak float64
	for k := 1; k < w.Len(); k++ {
		dt := w.T[k] - w.T[k-1]
		i, _ := cycle.Current(w.V[k], w.T[k])
		a := math.Abs(i)
		sumAbs += a * dt
		sumSq += i * i * dt
		if a > peak {
			peak = a
		}
	}
	res.IAvgA = sumAbs / period
	res.IRMSA = math.Sqrt(sumSq / period)
	res.IPeakA = peak
	res.AvgViolation = res.IAvgA > opt.Limits.AvgAPerM*res.WidthM
	res.RMSViolation = res.IRMSA > opt.Limits.RMSAPerM*res.WidthM
	res.PeakViolation = res.IPeakA > opt.Limits.PeakAPerM*res.WidthM
	return res, nil
}

// stepFor keeps the step count bounded for low activity frequencies.
func stepFor(period, dt float64) float64 {
	const maxSteps = 20000
	if period/dt > maxSteps {
		return period / maxSteps
	}
	return dt
}

func nodeName(net string, k int) string { return fmt.Sprintf("%s:%d", net, k) }

func minWidth(net *design.Net) float64 {
	w := math.Inf(1)
	for _, s := range net.Route {
		if s.Width < w {
			w = s.Width
		}
	}
	if math.IsInf(w, 1) {
		return 0.6
	}
	return w
}

// cycleDriver switches up for the first half-cycle and down for the second.
type cycleDriver struct {
	up, down romsim.Device
	mid      float64
}

// Current implements romsim.Device.
func (c *cycleDriver) Current(v, t float64) (float64, float64) {
	if t < c.mid {
		return c.up.Current(v, t)
	}
	return c.down.Current(v, t)
}

// AnalyzeDesign audits every non-clock net and returns results sorted by
// severity (worst RMS utilization first).
func AnalyzeDesign(par *extract.Parasitics, opt Options) ([]*Result, error) {
	var out []*Result
	for i, net := range par.Design.Nets {
		if net.ClockNet {
			continue // clock EM is handled by dedicated grids in practice
		}
		r, err := AnalyzeNet(par, i, opt)
		if err != nil {
			return nil, fmt.Errorf("em: net %s: %w", net.Name, err)
		}
		out = append(out, r)
	}
	sortBySeverity(out)
	return out, nil
}

func sortBySeverity(rs []*Result) {
	util := func(r *Result) float64 {
		if r.WidthM == 0 {
			return 0
		}
		return r.IRMSA / (r.Limits.RMSAPerM * r.WidthM)
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && util(rs[j]) > util(rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

var _ = devices.Vdd025
