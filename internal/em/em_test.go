package em

import (
	"math"
	"testing"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
)

func extracted(t *testing.T, nWires int, lengthUM float64, driver string) *extract.Parasitics {
	t.Helper()
	d, err := dsp.ParallelWires(nWires, lengthUM, 1.2, []string{driver}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCurrentsArePhysical(t *testing.T) {
	p := extracted(t, 1, 1000, "INV_X4")
	r, err := AnalyzeNet(p, 0, Options{ActivityHz: 500e6})
	if err != nil {
		t.Fatal(err)
	}
	if r.IAvgA <= 0 || r.IRMSA <= 0 || r.IPeakA <= 0 {
		t.Fatalf("non-positive currents: %+v", r)
	}
	// Ordering: peak ≥ RMS ≥ avg for a bursty waveform.
	if !(r.IPeakA >= r.IRMSA && r.IRMSA >= r.IAvgA) {
		t.Errorf("expected peak >= rms >= avg: %.3g %.3g %.3g", r.IPeakA, r.IRMSA, r.IAvgA)
	}
	// Charge conservation sanity: the average |I| over the cycle must be
	// about 2·C·Vdd/T (one charge and one discharge per period).
	cTot := p.Nets[0].TotalCapF()
	for a, f := range p.NetCouplingF[0] {
		if a != 0 {
			cTot += f
		}
	}
	want := 2 * cTot * 3.0 * 500e6
	if r.IAvgA < 0.5*want || r.IAvgA > 2*want {
		t.Errorf("avg current %.3g A far from CV·2f = %.3g A", r.IAvgA, want)
	}
	// Peak bounded by the driver's saturation capability.
	if r.IPeakA > 20e-3 {
		t.Errorf("peak current %.3g A beyond any X4 device", r.IPeakA)
	}
}

func TestActivityScalesAverageNotPeak(t *testing.T) {
	p := extracted(t, 1, 800, "INV_X2")
	slow, err := AnalyzeNet(p, 0, Options{ActivityHz: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := AnalyzeNet(p, 0, Options{ActivityHz: 400e6})
	if err != nil {
		t.Fatal(err)
	}
	ratio := fast.IAvgA / slow.IAvgA
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("avg current should scale ~linearly with activity: ratio %.2f", ratio)
	}
	// Peak is set by the driver, not the frequency.
	if math.Abs(fast.IPeakA-slow.IPeakA) > 0.3*slow.IPeakA {
		t.Errorf("peak should be activity-independent: %.3g vs %.3g", fast.IPeakA, slow.IPeakA)
	}
}

func TestStrongDriverOnNarrowWireViolates(t *testing.T) {
	// An X12 driver toggling a long minimum-width wire at high activity
	// must trip the RMS limit; a weak driver on a short wire must not.
	hot := extracted(t, 1, 4000, "INV_X12")
	r, err := AnalyzeNet(hot, 0, Options{ActivityHz: 800e6})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Violated() {
		t.Errorf("X12 on 4 mm wire at 800 MHz should violate: %+v", r)
	}
	cold := extracted(t, 1, 100, "INV_X1")
	rc, err := AnalyzeNet(cold, 0, Options{ActivityHz: 50e6})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Violated() {
		t.Errorf("X1 on 100 µm at 50 MHz should pass: %+v", rc)
	}
}

func TestAnalyzeDesignSortsBySeverity(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{Seed: 41, Channels: 1, TracksPerChannel: 8, ChannelLengthUM: 600})
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := AnalyzeDesign(p, Options{ActivityHz: 300e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	util := func(r *Result) float64 { return r.IRMSA / (r.Limits.RMSAPerM * r.WidthM) }
	for i := 1; i < len(rs); i++ {
		if util(rs[i]) > util(rs[i-1])+1e-12 {
			t.Fatal("results not sorted by severity")
		}
	}
}

func TestLimitsDefaults(t *testing.T) {
	l := DefaultLimits()
	if l.AvgAPerM != 1000 || l.RMSAPerM != 2000 || l.PeakAPerM != 10000 {
		t.Errorf("unexpected defaults: %+v", l)
	}
}
