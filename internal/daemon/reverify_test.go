package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xtverify"
)

// TestRetryAfterSeconds is the regression table for the Retry-After
// arithmetic: the integer-duration form it replaces truncated toward zero
// (sub-second EWMA, depth below MaxConcurrent) and could overflow the
// EWMA x depth product. The header must never be 0 and never exceed 120.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name    string
		ewma    int64 // nanoseconds
		waiting int64
		maxConc int
		want    int
	}{
		{"no history", 0, 0, 2, 1},
		{"sub-second ewma truncated to zero before the fix", int64(100 * time.Millisecond), 0, 4, 1},
		{"depth below parallelism", int64(time.Second), 0, 4, 1},
		{"exact one second", int64(time.Second), 3, 4, 1},
		{"moderate backlog", int64(2 * time.Second), 7, 4, 4},
		{"deep queue", int64(30 * time.Second), 0, 2, 15},
		{"long jobs clamp", int64(time.Hour), 100, 2, 120},
		{"overflow-prone product", math.MaxInt64, 1 << 40, 1, 120},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Options{MaxConcurrent: tc.maxConc})
			s.ewmaNanos.Store(tc.ewma)
			s.waiting.Store(tc.waiting)
			got := s.retryAfterSeconds()
			if got != tc.want {
				t.Errorf("retryAfterSeconds() = %d, want %d", got, tc.want)
			}
			if got < 1 || got > 120 {
				t.Errorf("retryAfterSeconds() = %d outside [1, 120]", got)
			}
		})
	}
}

// firstVictim extracts the first violation's net name from a report text.
func firstVictim(t *testing.T, reportText string) string {
	t.Helper()
	for _, line := range strings.Split(reportText, "\n") {
		if strings.HasPrefix(line, "  ") && strings.Contains(line, " peak ") {
			return strings.Fields(line)[0]
		}
	}
	t.Fatalf("no violation line in report:\n%s", reportText)
	return ""
}

// postJSON posts any request body to a daemon path.
func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func reverifyOK(t *testing.T, ts *httptest.Server, req *ReverifyRequest) ReverifyResponse {
	t.Helper()
	status, raw := postJSON(t, ts, "/v1/reverify", req)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/reverify = %d: %s", status, raw)
	}
	var rr ReverifyResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("bad reverify body: %v\n%s", err, raw)
	}
	return rr
}

// TestReportCacheServesRepeats: an identical resubmission is served from the
// report cache — byte-identical text, the original job id, no second run.
func TestReportCacheServesRepeats(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	first := verifyOK(t, ts, tinyJob())
	if first.Cached {
		t.Fatal("first submission claims to be cached")
	}
	if first.JobID == "" {
		t.Fatal("completed job has no job_id")
	}
	second := verifyOK(t, ts, tinyJob())
	if !second.Cached {
		t.Fatal("identical resubmission not served from the report cache")
	}
	if second.JobID != first.JobID {
		t.Errorf("cached response job id %s, want original %s", second.JobID, first.JobID)
	}
	if second.ReportText != first.ReportText {
		t.Errorf("cached report differs from original:\n--- first ---\n%s--- second ---\n%s", first.ReportText, second.ReportText)
	}
	m := srv.Metrics()
	if m.Jobs.Completed != 1 {
		t.Errorf("completed = %d, want 1 (repeat must not re-run)", m.Jobs.Completed)
	}
	if m.ReportCache.Hits != 1 || m.ReportCache.Entries == 0 {
		t.Errorf("report cache %+v, want 1 hit and >=1 entry", m.ReportCache)
	}
}

// TestReportCacheConfigMiss is the aliasing regression: flipping any
// config-relevant request field must miss the cache — two jobs that differ
// in screening, thresholds or models never share a report.
func TestReportCacheConfigMiss(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if base := verifyOK(t, ts, tinyJob()); base.Cached {
		t.Fatal("first submission cached")
	}
	muts := map[string]func(*VerifyRequest){
		"cap_ratio_threshold":   func(r *VerifyRequest) { r.CapRatioThreshold = 0.05 },
		"fixed_ohms":            func(r *VerifyRequest) { r.FixedOhms = 700 },
		"glitch_threshold_frac": func(r *VerifyRequest) { r.GlitchThresholdFrac = 0.2 },
		"timing_windows":        func(r *VerifyRequest) { r.TimingWindows = true },
		"logic_correlation":     func(r *VerifyRequest) { r.LogicCorrelation = true },
		"no_screen":             func(r *VerifyRequest) { r.NoScreen = true },
		"screen_safety_factor":  func(r *VerifyRequest) { r.ScreenSafetyFactor = 2.0 },
		"design seed":           func(r *VerifyRequest) { r.DSP.Seed = 78 },
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			req := tinyJob()
			mut(req)
			if got := verifyOK(t, ts, req); got.Cached {
				t.Errorf("flipping %s aliased with the base job's cache entry", name)
			}
		})
	}
}

// TestReverifyRoundTrip is the end-to-end ECO flow: verify, apply an
// upsize-driver repair via /v1/reverify, and check the splice accounting,
// the counters, and — the acceptance gate — byte-identity of the spliced
// report against a cold verify of the returned repaired DEF.
func TestReverifyRoundTrip(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	base := verifyOK(t, ts, tinyJob())
	if base.Violations == 0 {
		t.Fatal("base job has no violations; nothing to repair")
	}
	victim := firstVictim(t, base.ReportText)

	rr := reverifyOK(t, ts, &ReverifyRequest{
		BaseJobID: base.JobID,
		Repair:    &RepairDelta{Victim: victim, Fix: "upsize-driver"},
	})
	if rr.FullRecompute {
		t.Error("repair splice degraded to a full recompute")
	}
	if rr.ClustersReused == 0 {
		t.Errorf("single-driver upsize reused nothing: %+v", rr)
	}
	if rr.ClustersRecomputed == 0 {
		t.Errorf("a driver upsize must recompute at least the victim's cluster: %+v", rr)
	}
	if rr.DEF == "" {
		t.Fatal("repair reverify did not echo the synthesized DEF")
	}
	if rr.JobID == "" || rr.JobID == base.JobID {
		t.Errorf("reverify job id %q must be fresh (base %s)", rr.JobID, base.JobID)
	}

	// The identity gate: a cold verify of the repaired DEF (same config
	// overrides as the base job) must render the same bytes. Reverify
	// results are deliberately not report-cache-served, so this runs cold.
	coldReq := tinyJob()
	coldReq.DSP = nil
	coldReq.DEF = rr.DEF
	cold := verifyOK(t, ts, coldReq)
	if cold.Cached {
		t.Fatal("cold verify of the repaired DEF was served from cache — identity check is vacuous")
	}
	if cold.ReportText != rr.ReportText {
		t.Errorf("spliced report differs from cold verify of the repaired design:\n--- cold ---\n%s--- spliced ---\n%s",
			cold.ReportText, rr.ReportText)
	}

	m := srv.Metrics()
	if m.EngineCounters["reverify_jobs"] != 1 {
		t.Errorf("reverify_jobs = %d, want 1", m.EngineCounters["reverify_jobs"])
	}
	if m.EngineCounters["clusters_reused"] != int64(rr.ClustersReused) {
		t.Errorf("clusters_reused counter %d != response %d", m.EngineCounters["clusters_reused"], rr.ClustersReused)
	}
	if m.EngineCounters["clusters_recomputed"] != int64(rr.ClustersRecomputed) {
		t.Errorf("clusters_recomputed counter %d != response %d", m.EngineCounters["clusters_recomputed"], rr.ClustersRecomputed)
	}

	// The reverify result itself anchors further deltas: a second repair on
	// the spliced job must reuse most of the spliced run.
	second := verifyOK(t, ts, tinyJob())
	if !second.Cached {
		t.Error("base job fell out of the cache during the round trip")
	}
	chain := reverifyOK(t, ts, &ReverifyRequest{
		BaseJobID: rr.JobID,
		DEF:       rr.DEF, // no-op edit: everything should splice
	})
	if chain.FullRecompute || chain.ClustersRecomputed != 0 || chain.ClustersReused == 0 {
		t.Errorf("no-op delta on a reverify base: %+v, want all clusters reused", chain)
	}
	if chain.ReportText != rr.ReportText {
		t.Error("no-op delta changed the report")
	}
}

// TestReverifyInlineDEF: a client-supplied edited DEF (not a server-side
// repair) splices against the base too.
func TestReverifyInlineDEF(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	base := verifyOK(t, ts, tinyJob())
	victim := firstVictim(t, base.ReportText)

	// Synthesize the edited design the same way a client with the base DEF
	// would: fetch the canonical DEF via a no-op repair... or simply apply
	// the repair locally through the same code path.
	rr := reverifyOK(t, ts, &ReverifyRequest{
		BaseJobID: base.JobID,
		Repair:    &RepairDelta{Victim: victim, Fix: "upsize-driver"},
	})
	inline := reverifyOK(t, ts, &ReverifyRequest{BaseJobID: base.JobID, DEF: rr.DEF})
	if inline.FullRecompute {
		t.Error("inline DEF splice degraded to full recompute")
	}
	if inline.ClustersReused == 0 {
		t.Errorf("inline DEF delta reused nothing: %+v", inline)
	}
	if inline.ReportText != rr.ReportText {
		t.Error("inline DEF and server-side repair of the same edit disagree")
	}
	if inline.DEF != "" {
		t.Error("inline DEF reverify echoed a DEF it did not synthesize")
	}
}

// TestReverifyEvictedBaseIs404: once the base job is evicted its per-request
// config is gone, so a reverify against it — either delta kind — is refused
// rather than silently run under a different config.
func TestReverifyEvictedBaseIs404(t *testing.T) {
	_, ts := newTestServer(t, Options{ReportCacheCap: 1})
	base := verifyOK(t, ts, tinyJob())
	victim := firstVictim(t, base.ReportText)
	rr := reverifyOK(t, ts, &ReverifyRequest{
		BaseJobID: base.JobID,
		Repair:    &RepairDelta{Victim: victim, Fix: "upsize-driver"},
	})
	// The reverify job (cap 1) evicted the base.
	if rr.FullRecompute {
		t.Fatal("base evicted before the first reverify completed")
	}
	for name, req := range map[string]*ReverifyRequest{
		"inline def": {BaseJobID: base.JobID, DEF: rr.DEF},
		"repair":     {BaseJobID: base.JobID, Repair: &RepairDelta{Victim: victim, Fix: "upsize-driver"}},
	} {
		if status, _ := postJSON(t, ts, "/v1/reverify", req); status != http.StatusNotFound {
			t.Errorf("%s against evicted base = %d, want 404", name, status)
		}
	}
}

// TestReverifyUnusableBaseDegrades: a base whose cached state cannot be
// indexed (here: diagnostics lost) degrades to a full recompute under the
// base's own config — flagged, byte-identical, never an error.
func TestReverifyUnusableBaseDegrades(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	base := verifyOK(t, ts, tinyJob())
	victim := firstVictim(t, base.ReportText)
	// Sever the cached diagnostics so BaseRun cannot index the report.
	srv.jobByID(base.JobID).report.Diagnostics = nil

	full := reverifyOK(t, ts, &ReverifyRequest{
		BaseJobID: base.JobID,
		Repair:    &RepairDelta{Victim: victim, Fix: "upsize-driver"},
	})
	if !full.FullRecompute {
		t.Error("unusable base did not degrade to full recompute")
	}
	if full.ClustersReused != 0 || full.ClustersRecomputed != full.Clusters {
		t.Errorf("degraded accounting %+v, want 0 reused / all recomputed", full)
	}

	// Identity still holds: a cold verify of the repaired DEF under the base
	// job's overrides renders the same bytes.
	coldReq := tinyJob()
	coldReq.DSP = nil
	coldReq.DEF = full.DEF
	cold := verifyOK(t, ts, coldReq)
	if cold.ReportText != full.ReportText {
		t.Errorf("degraded recompute differs from cold verify:\n--- cold ---\n%s--- degraded ---\n%s",
			cold.ReportText, full.ReportText)
	}
}

// TestReverifyBadRequests: malformed deltas are rejected before any work.
func TestReverifyBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	base := verifyOK(t, ts, tinyJob())
	victim := firstVictim(t, base.ReportText)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"no base job", `{"def":"x"}`, http.StatusBadRequest},
		{"neither delta", `{"base_job_id":"job-1"}`, http.StatusBadRequest},
		{"both deltas", `{"base_job_id":"job-1","def":"x","repair":{"victim":"n","fix":"upsize-driver"}}`, http.StatusBadRequest},
		{"unknown field", `{"base_job_id":"job-1","def":"x","bogus":1}`, http.StatusBadRequest},
		{"negative timeout", `{"base_job_id":"job-1","def":"x","timeout_ms":-1}`, http.StatusBadRequest},
		{"unparseable def", `{"base_job_id":"job-1","def":"NOT A DEF"}`, http.StatusBadRequest},
		{"unknown fix", `{"base_job_id":"` + base.JobID + `","repair":{"victim":"` + victim + `","fix":"add-shielding"}}`, http.StatusBadRequest},
		{"unknown victim", `{"base_job_id":"` + base.JobID + `","repair":{"victim":"no/such/net","fix":"upsize-driver"}}`, http.StatusBadRequest},
		{"unknown cell", `{"base_job_id":"` + base.JobID + `","repair":{"victim":"` + victim + `","fix":"upsize-driver","cell":"MYSTERY_X9"}}`, http.StatusBadRequest},
		{"unknown base with repair", `{"base_job_id":"job-999","repair":{"victim":"n","fix":"upsize-driver"}}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/reverify", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}

	if resp, err := http.Get(ts.URL + "/v1/reverify"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/reverify = %d, want 405", resp.StatusCode)
		}
	}
}

// TestReverifyUnverifiedBaseNotCacheServed: a degraded (unverified > 0)
// report must never be pinned into the repeat-request cache — once the
// transient condition clears, a resubmission gets a clean run.
func TestReverifyUnverifiedBaseNotCacheServed(t *testing.T) {
	// Covered end-to-end by TestInjectedPanicsDegradeNotCrash, which
	// resubmits after faults clear; here we pin the cache-key rule directly.
	srv, _ := newTestServer(t, Options{})
	art := &jobArtifacts{}
	resp := &VerifyResponse{Unverified: 3}
	key := ""
	if resp.Unverified > 0 {
		key = ""
	}
	id := srv.storeReport(key, xtverify.Config{}, art, resp)
	if id == "" {
		t.Fatal("no job id")
	}
	if _, ok := srv.lookupReport(""); ok {
		t.Error(`cacheKey "" must never be a servable key`)
	}
	if srv.jobByID(id) == nil {
		t.Error("job not anchorable by id")
	}
}
