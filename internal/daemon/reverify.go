// Incremental ECO re-verification over HTTP: the report cache and the
// /v1/reverify endpoint.
//
// Every completed job is cached with its verifier, full report and response
// under a deterministic job id. A repeat POST /v1/verify for the same design
// input and canonical engine config is served straight from the cache — the
// byte-identity contract makes the cached report indistinguishable from a
// rerun. A POST /v1/reverify anchors an ECO delta (a full edited DEF, or a
// repair the daemon applies to the cached base design itself) to a base job
// id and runs xtverify's incremental splice: only clusters the edit changed
// are recomputed, and the response is byte-identical to a cold verify of the
// edited design. An evicted base is a 404 — its per-request config went with
// it, and running under a different config would be a different verification,
// not a delta. Any other reason the splice cannot be trusted — cached state
// unusable, config drift — degrades to a full recompute of the edited design
// under the base's config, flagged in the response but never wrong.
package daemon

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"xtverify"
	"xtverify/internal/cells"
	"xtverify/internal/deflite"
)

// jobArtifacts is what a completed run leaves behind for the report cache.
type jobArtifacts struct {
	verifier *xtverify.Verifier
	report   *xtverify.Report // diagnostics intact
}

// cachedJob is one completed job held for repeat requests and reverify
// anchoring. The canonical DEF serialization and the reverify base index are
// derived lazily — most jobs are never used as a reverify base, and both
// derivations cost real work.
type cachedJob struct {
	id       string
	cacheKey string // "" for reverify-produced jobs (never served on /v1/verify)
	cfg      xtverify.Config
	verifier *xtverify.Verifier
	report   *xtverify.Report
	resp     VerifyResponse

	defOnce sync.Once
	defText string
	defErr  error

	baseOnce sync.Once
	base     *xtverify.BaseRun
	baseErr  error
}

// designDEF returns the job's design in canonical DEF form (the substrate
// repair deltas are applied to).
func (j *cachedJob) designDEF() (string, error) {
	j.defOnce.Do(func() {
		var sb strings.Builder
		if err := j.verifier.WriteDEF(&sb); err != nil {
			j.defErr = fmt.Errorf("serialize base design: %w", err)
			return
		}
		j.defText = sb.String()
	})
	return j.defText, j.defErr
}

// baseRun returns the job's reverify index, built on first use.
func (j *cachedJob) baseRun() (*xtverify.BaseRun, error) {
	j.baseOnce.Do(func() {
		j.base, j.baseErr = j.verifier.BaseRun(j.report)
	})
	return j.base, j.baseErr
}

// resolveDSP applies the paper-scale defaults to a DSP request, exactly as
// the job runner builds the generator config — the design key must describe
// the design that would actually be generated.
func resolveDSP(req *DSPRequest) xtverify.DSPConfig {
	d := xtverify.DefaultDSPConfig()
	d.Seed = req.Seed
	if req.Channels > 0 {
		d.Channels = req.Channels
	}
	if req.TracksPerChannel > 0 {
		d.TracksPerChannel = req.TracksPerChannel
	}
	if req.ChannelLengthUM > 0 {
		d.ChannelLengthUM = req.ChannelLengthUM
	}
	if req.BusFraction > 0 {
		d.BusFraction = req.BusFraction
	}
	if req.LatchFraction > 0 {
		d.LatchFraction = req.LatchFraction
	}
	if req.ComplementaryFraction > 0 {
		d.ComplementaryFraction = req.ComplementaryFraction
	}
	if req.ClockSpines > 0 {
		d.ClockSpines = req.ClockSpines
	}
	return d
}

// designKeyFor canonicalizes the request's design input: the DEF text's hash,
// or the fully resolved DSP generator parameters (so an explicit default and
// an omitted field share a key).
func designKeyFor(req *VerifyRequest) string {
	if req.DEF != "" {
		sum := sha256.Sum256([]byte(req.DEF))
		return "def|" + hex.EncodeToString(sum[:])
	}
	d := resolveDSP(req.DSP)
	return fmt.Sprintf("dsp|%d|%d|%d|%g|%g|%g|%g|%g|%d",
		d.Seed, d.Channels, d.TracksPerChannel, d.ChannelLengthUM, d.TrackPitchUM,
		d.BusFraction, d.LatchFraction, d.ComplementaryFraction, d.ClockSpines)
}

// lookupReport serves a repeat request from the cache, if present.
func (s *Server) lookupReport(cacheKey string) (*VerifyResponse, bool) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	j, ok := s.byKey[cacheKey]
	if !ok {
		return nil, false
	}
	resp := j.resp
	resp.Cached = true
	return &resp, true
}

// jobByID returns the cached job, or nil if evicted or never completed.
func (s *Server) jobByID(id string) *cachedJob {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	return s.byID[id]
}

// storeReport registers a completed job in the report cache under a fresh
// job id (returned), evicting oldest-first past ReportCacheCap. cacheKey ""
// registers for reverify anchoring only — reverify results are deliberately
// not served on /v1/verify, so a cold verify of an edited design always
// actually runs (that cold run is what the identity contract is checked
// against).
func (s *Server) storeReport(cacheKey string, cfg xtverify.Config, art *jobArtifacts, resp *VerifyResponse) string {
	id := fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	j := &cachedJob{
		id:       id,
		cacheKey: cacheKey,
		cfg:      cfg,
		verifier: art.verifier,
		report:   art.report,
	}
	j.resp = *resp
	j.resp.JobID = id
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.byID[id] = j
	if cacheKey != "" {
		s.byKey[cacheKey] = j
	}
	s.idOrder = append(s.idOrder, id)
	for len(s.idOrder) > s.opts.ReportCacheCap {
		old := s.idOrder[0]
		s.idOrder = s.idOrder[1:]
		if oj := s.byID[old]; oj != nil {
			delete(s.byID, old)
			if oj.cacheKey != "" && s.byKey[oj.cacheKey] == oj {
				delete(s.byKey, oj.cacheKey)
			}
		}
	}
	return id
}

// ReverifyRequest is the POST /v1/reverify body: a completed base job plus
// an ECO delta. Exactly one of DEF (the full edited design) or Repair (a fix
// the daemon applies to the cached base design) describes the edit. The
// job's engine config is inherited from the base job — a reverify under a
// different config is a different verification, not a delta.
type ReverifyRequest struct {
	// BaseJobID is the job_id of a completed /v1/verify or /v1/reverify
	// response.
	BaseJobID string `json:"base_job_id"`
	// DEF is the edited design as an inline DEF netlist.
	DEF string `json:"def,omitempty"`
	// Repair applies a repair to the base design server-side.
	Repair *RepairDelta `json:"repair,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds (0 = server
	// default; clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RepairDelta names a repair for the daemon to apply to the base design.
type RepairDelta struct {
	// Victim is the violating net whose driver is repaired.
	Victim string `json:"victim"`
	// Fix is the strategy; "upsize-driver" is the one fix expressible in the
	// DEF view (spacing and shielding alter extracted parasitics, which the
	// DEF subset does not carry).
	Fix string `json:"fix"`
	// Cell names the replacement driver cell; empty picks the next stronger
	// same-kind cell from the library.
	Cell string `json:"cell,omitempty"`
}

// ReverifyResponse is the successful reverify result: the spliced report
// (byte-identical to a cold verify of the edited design) plus splice
// accounting.
type ReverifyResponse struct {
	VerifyResponse
	// ClustersReused and ClustersRecomputed account for the splice; on a
	// full recompute everything counts as recomputed.
	ClustersReused     int `json:"clusters_reused"`
	ClustersRecomputed int `json:"clusters_recomputed"`
	// FullRecompute marks a degraded splice: the base job was evicted or its
	// cached state unusable, so the edited design was verified from scratch.
	// The report is the same either way; only the work differs.
	FullRecompute bool `json:"full_recompute,omitempty"`
	// DEF echoes the edited design when the daemon synthesized it from a
	// repair delta, so the client can inspect it or verify it cold.
	DEF string `json:"def,omitempty"`
}

func (s *Server) handleReverify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"server draining"})
		return
	}
	var req ReverifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	if req.BaseJobID == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"base_job_id is required"})
		return
	}
	if (req.DEF == "") == (req.Repair == nil) {
		writeJSON(w, http.StatusBadRequest, errorResponse{"exactly one of def or repair is required"})
		return
	}
	if req.TimeoutMS < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad field: timeout_ms"})
		return
	}

	base := s.jobByID(req.BaseJobID)
	if base == nil {
		// An evicted base takes its per-request config overrides with it, so
		// a "fresh run instead" here would silently verify under the server's
		// base engine config — a different verification, not a degraded
		// splice. Clients that want a cold run of the edited design have
		// /v1/verify.
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown base job " + req.BaseJobID + " (evicted or never completed); POST /v1/verify to run the design cold"})
		return
	}
	cfg := base.cfg
	cfg.SharedROMCache = s.cache
	cfg.ROMStore = s.opts.Store
	cfg.Collector = xtverify.NewMetricsCollector()
	// A reverify materializes the edited design whatever the base job did:
	// splicing needs cluster-level random access, and StreamIngest is not
	// part of the canonical config, so clearing it cannot cause a mismatch.
	cfg.StreamIngest = false

	var defText string
	var synthesized bool
	if req.Repair != nil {
		baseDEF, err := base.designDEF()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
			return
		}
		defText, err = applyRepair(baseDEF, req.Repair)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
			return
		}
		synthesized = true
	} else {
		defText = req.DEF
	}

	release, status := s.admit(r.Context())
	if release == nil {
		if status == http.StatusTooManyRequests {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeJSON(w, status, errorResponse{"queue full, retry later"})
		} else {
			s.canceled.Add(1)
		}
		return
	}
	s.jobs.Add(1)
	defer s.jobs.Done()
	defer release()
	s.accepted.Add(1)

	timeout := s.opts.DefaultJobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.opts.MaxJobTimeout {
		timeout = s.opts.MaxJobTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	resp, art, errStatus, err := s.runReverify(ctx, base, defText, cfg)
	wall := time.Since(start)

	switch {
	case err == nil:
		s.completed.Add(1)
		s.observeDuration(wall)
		resp.WallMS = float64(wall) / float64(time.Millisecond)
		if synthesized {
			resp.DEF = defText
		}
		resp.JobID = s.storeReport("", cfg, art, &resp.VerifyResponse)
		s.opts.Logf("daemon: reverify %s of %s done in %v: %d reused, %d recomputed, %d violations",
			resp.JobID, req.BaseJobID, wall.Round(time.Millisecond),
			resp.ClustersReused, resp.ClustersRecomputed, resp.Violations)
		writeJSON(w, http.StatusOK, resp)
	case r.Context().Err() != nil:
		s.canceled.Add(1)
		s.opts.Logf("daemon: reverify canceled by client after %v", wall.Round(time.Millisecond))
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.timedOut.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"job deadline exceeded: " + err.Error()})
	default:
		s.failed.Add(1)
		s.opts.Logf("daemon: reverify failed after %v: %v", wall.Round(time.Millisecond), err)
		writeJSON(w, errStatus, errorResponse{err.Error()})
	}
}

// runReverify verifies the edited design, splicing against the base job's
// cached run when that can be trusted and recomputing from scratch when it
// cannot. Both paths return the same bytes for the same design; the splice
// only saves work.
func (s *Server) runReverify(ctx context.Context, base *cachedJob, defText string, cfg xtverify.Config) (*ReverifyResponse, *jobArtifacts, int, error) {
	v2, err := xtverify.NewVerifierFromDEF(strings.NewReader(defText), cfg)
	if err != nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("parse def: %w", err)
	}
	var (
		rep   *xtverify.Report
		stats *xtverify.ReverifyStats
	)
	if base != nil {
		// A base we cannot index (persisted-state faults, an incomplete
		// run) or splice against (config drift, foreign report) degrades to
		// the full recompute below — availability over cleverness, and the
		// output is identical either way.
		if br, berr := base.baseRun(); berr == nil {
			rep, stats, err = v2.ReverifyContext(ctx, br)
			if err != nil {
				if !errors.Is(err, xtverify.ErrConfigMismatch) && !errors.Is(err, xtverify.ErrBaseUnusable) {
					s.foldCounters(cfg.Collector)
					return nil, nil, http.StatusInternalServerError, err
				}
				rep, stats = nil, nil
			}
		}
	}
	full := rep == nil
	if full {
		rep, err = v2.RunContext(ctx)
		if err != nil {
			s.foldCounters(cfg.Collector)
			return nil, nil, http.StatusInternalServerError, err
		}
	}
	s.foldCounters(cfg.Collector)
	vr, err := makeResponse(rep)
	if err != nil {
		return nil, nil, http.StatusInternalServerError, err
	}
	resp := &ReverifyResponse{VerifyResponse: *vr, FullRecompute: full}
	if stats != nil {
		resp.ClustersReused = stats.ClustersReused
		resp.ClustersRecomputed = stats.ClustersRecomputed
	} else {
		resp.ClustersRecomputed = vr.Clusters
	}
	return resp, &jobArtifacts{verifier: v2, report: rep}, 0, nil
}

// applyRepair synthesizes the edited design for a repair delta: the victim's
// driver instance is swapped to the requested (or next stronger same-kind)
// cell and the design re-serialized, so the reverify parses exactly the DEF
// a cold verify of the repaired design would.
func applyRepair(defText string, rp *RepairDelta) (string, error) {
	if rp.Victim == "" {
		return "", fmt.Errorf("repair: victim is required")
	}
	if rp.Fix != "upsize-driver" {
		return "", fmt.Errorf("repair: unsupported fix %q (only upsize-driver is expressible as a DEF delta)", rp.Fix)
	}
	d, err := deflite.Read(strings.NewReader(defText))
	if err != nil {
		return "", fmt.Errorf("repair: parse base def: %w", err)
	}
	net, ok := d.NetByName(rp.Victim)
	if !ok {
		return "", fmt.Errorf("repair: unknown victim net %q", rp.Victim)
	}
	if len(net.Drivers) == 0 {
		return "", fmt.Errorf("repair: victim %q has no driver", rp.Victim)
	}
	drv := net.Drivers[0]
	var repl *cells.Cell
	if rp.Cell != "" {
		repl, ok = cells.ByName(rp.Cell)
		if !ok {
			return "", fmt.Errorf("repair: unknown cell %q", rp.Cell)
		}
	} else {
		if repl = strongerCell(drv.Cell); repl == nil {
			return "", fmt.Errorf("repair: no stronger %s than %s in the library", drv.Cell.Kind, drv.Cell.Name)
		}
	}
	// The instance is one cell: every pin of it, on every net, re-points
	// together or the design would be self-inconsistent.
	for _, n := range d.Nets {
		for i := range n.Drivers {
			if n.Drivers[i].Inst == drv.Inst {
				n.Drivers[i].Cell = repl
			}
		}
		for i := range n.Receivers {
			if n.Receivers[i].Inst == drv.Inst {
				n.Receivers[i].Cell = repl
			}
		}
	}
	var sb strings.Builder
	if err := deflite.Write(&sb, d); err != nil {
		return "", fmt.Errorf("repair: serialize edited def: %w", err)
	}
	return sb.String(), nil
}

// strongerCell finds the same-kind cell with the smallest strength above the
// given cell's, or nil — the repair advisor's upsize policy.
func strongerCell(c *cells.Cell) *cells.Cell {
	var best *cells.Cell
	for _, cand := range cells.Library() {
		if cand.Kind != c.Kind || cand.Strength <= c.Strength {
			continue
		}
		if best == nil || cand.Strength < best.Strength {
			best = cand
		}
	}
	return best
}
