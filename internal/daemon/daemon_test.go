package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xtverify"
	"xtverify/internal/faultinject"
)

// tinyJob is the small deterministic design every test submits: one
// channel, few tracks, fixed-resistance drivers — seconds of work, stable
// fingerprints so cache layers actually engage across jobs and restarts.
func tinyJob() *VerifyRequest {
	return &VerifyRequest{
		DSP: &DSPRequest{
			Seed:             77,
			Channels:         1,
			TracksPerChannel: 40,
			ChannelLengthUM:  1000,
			LatchFraction:    0.3,
			ClockSpines:      1,
		},
		Model:             "fixed",
		CapRatioThreshold: 0.03,
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Engine.Workers == 0 {
		opts.Engine.Workers = 2
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doVerify is the goroutine-safe submission helper (no t.Fatal).
func doVerify(ts *httptest.Server, req *VerifyRequest) (status int, raw []byte, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	raw, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

func postVerify(t *testing.T, ts *httptest.Server, req *VerifyRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func verifyOK(t *testing.T, ts *httptest.Server, req *VerifyRequest) VerifyResponse {
	t.Helper()
	resp, raw := postVerify(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/verify = %d: %s", resp.StatusCode, raw)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, raw)
	}
	return vr
}

func getMetrics(t *testing.T, ts *httptest.Server) MetricsBody {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsBody
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestVerifyEndToEnd(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := newTestServer(t, Options{})
	vr := verifyOK(t, ts, tinyJob())
	if vr.ReportText == "" {
		t.Error("empty report_text")
	}
	if vr.Clusters == 0 || vr.Verified != vr.Clusters {
		t.Errorf("clusters %d verified %d, want all verified", vr.Clusters, vr.Verified)
	}
	if vr.Unverified != 0 || vr.Degraded != 0 {
		t.Errorf("healthy job reported degraded %d unverified %d", vr.Degraded, vr.Unverified)
	}
	if len(vr.Counters) == 0 {
		t.Error("no engine counters in response")
	}
	if vr.Counters["screen_bound_evals"] == 0 {
		t.Errorf("screen_bound_evals = 0 with screening on: %v", vr.Counters)
	}
	if vr.Screened != int(vr.Counters["screened_rung0"]) {
		t.Errorf("screened %d disagrees with screened_rung0 counter %d", vr.Screened, vr.Counters["screened_rung0"])
	}
	m := getMetrics(t, ts)
	if m.Jobs.Accepted != 1 || m.Jobs.Completed != 1 {
		t.Errorf("jobs accepted %d completed %d, want 1/1", m.Jobs.Accepted, m.Jobs.Completed)
	}
	if len(m.EngineCounters) == 0 {
		t.Error("daemon accumulated no engine counters")
	}
}

func TestBadRequests(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"neither design", `{}`, http.StatusBadRequest},
		{"both designs", `{"dsp":{"seed":1},"def":"x"}`, http.StatusBadRequest},
		{"unknown field", `{"dsp":{"seed":1},"bogus":true}`, http.StatusBadRequest},
		{"bad model", `{"dsp":{"seed":1},"model":"quantum"}`, http.StatusBadRequest},
		{"negative timeout", `{"dsp":{"seed":1},"timeout_ms":-5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	if m := getMetrics(t, ts); m.Jobs.Accepted != 0 {
		t.Errorf("bad requests were admitted: %+v", m.Jobs)
	}
}

// TestWarmColdRestartByteIdentity is the durability acceptance test at the
// daemon level: a fresh daemon instance over a populated persistent cache
// must return byte-identical report_text, and a corrupted cache directory
// must degrade to recompute — still byte-identical, with the discards
// surfaced in /metrics.
func TestWarmColdRestartByteIdentity(t *testing.T) {
	faultinject.LeakCheck(t)
	dir := t.TempDir()
	open := func() Options {
		store, err := xtverify.OpenROMStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return Options{Store: store}
	}

	// Cold daemon: computes everything, populates the store.
	_, ts1 := newTestServer(t, open())
	cold := verifyOK(t, ts1, tinyJob())
	m1 := getMetrics(t, ts1)
	if m1.ROMStore == nil || m1.ROMStore.Writes == 0 {
		t.Fatalf("cold daemon wrote nothing to the store: %+v", m1.ROMStore)
	}
	ts1.Close()

	// Restarted daemon: in-memory cache empty, disk warm.
	_, ts2 := newTestServer(t, open())
	warm := verifyOK(t, ts2, tinyJob())
	if warm.ReportText != cold.ReportText {
		t.Errorf("warm restart report differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold.ReportText, warm.ReportText)
	}
	m2 := getMetrics(t, ts2)
	// Warm hits may arrive through the prepared-core path, which satisfies
	// the cluster before the ROM cache is ever consulted — so assert on the
	// store's own hit counter, not the cache's backing-hit counter.
	if m2.ROMStore.Hits == 0 {
		t.Errorf("warm daemon never hit the store: cache %+v store %+v", m2.ROMCache, m2.ROMStore)
	}
	ts2.Close()

	// Corrupt every entry; a third daemon must recompute, count the
	// discards, and still produce the identical report.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("store directory empty")
	}
	for _, e := range ents {
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, ts3 := newTestServer(t, open())
	recomputed := verifyOK(t, ts3, tinyJob())
	if recomputed.ReportText != cold.ReportText {
		t.Errorf("post-corruption report differs from cold:\n--- cold ---\n%s--- got ---\n%s", cold.ReportText, recomputed.ReportText)
	}
	m3 := getMetrics(t, ts3)
	if m3.ROMStore.CorruptDiscarded == 0 {
		t.Errorf("store discarded nothing despite corruption: %+v", m3.ROMStore)
	}
	if m3.EngineCounters["cache_corrupt_discarded"] == 0 {
		t.Errorf("cache_corrupt_discarded missing from engine counters: %v", m3.EngineCounters)
	}
}

// TestOverloadSheds429 fills the single running slot and the single queue
// slot with jobs gated on a channel, then checks the next request is shed
// with 429 + Retry-After while the gated jobs complete normally once
// released — and the daemon keeps serving afterwards.
func TestOverloadSheds429(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	restore := faultinject.SetClusterHook(func(victim, stage string) error {
		<-gate
		return nil
	})
	defer restore()

	srv, ts := newTestServer(t, Options{MaxConcurrent: 1, MaxQueue: 1})
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, raw, err := doVerify(ts, tinyJob())
			if err != nil {
				raw = []byte(err.Error())
			}
			results <- result{status, raw}
		}()
		// First request must hold the slot before the second queues.
		if i == 0 {
			waitFor(t, "first job running", func() bool { return srv.Metrics().Jobs.Running == 1 })
		} else {
			waitFor(t, "second job queued", func() bool { return srv.Metrics().Jobs.Waiting == 1 })
		}
	}

	resp, raw := postVerify(t, ts, tinyJob())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d body %s, want 429", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}

	release()
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Errorf("gated job %d: status %d body %s", i, r.status, r.body)
		}
	}
	m := srv.Metrics()
	if m.Jobs.RejectedQueue != 1 || m.Jobs.Completed != 2 {
		t.Errorf("jobs = %+v, want 1 rejected, 2 completed", m.Jobs)
	}

	// Shedding load must not wedge the daemon.
	restore()
	verifyOK(t, ts, tinyJob())
}

// TestClientDisconnectCancelsJob drops the client mid-job and checks the
// daemon cancels the run, counts it, frees the slot, and keeps serving —
// no stuck jobs, no goroutine leaks.
func TestClientDisconnectCancelsJob(t *testing.T) {
	faultinject.LeakCheck(t)
	restore := faultinject.SetClusterHook(faultinject.SlowClusters(10 * time.Millisecond))
	defer restore()

	srv, ts := newTestServer(t, Options{Engine: xtverify.Config{Workers: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(tinyJob())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request unexpectedly succeeded: %d", resp.StatusCode)
		}
		errc <- err
	}()
	waitFor(t, "job running", func() bool { return srv.Metrics().Jobs.Running == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want context.Canceled", err)
	}
	waitFor(t, "job canceled and slot freed", func() bool {
		m := srv.Metrics()
		return m.Jobs.Canceled == 1 && m.Jobs.Running == 0
	})

	// The slot is free and the daemon healthy.
	restore()
	verifyOK(t, ts, tinyJob())
	if m := srv.Metrics(); m.Jobs.Completed != 1 || m.Jobs.Canceled != 1 {
		t.Errorf("jobs = %+v, want 1 completed + 1 canceled", m.Jobs)
	}
}

// TestInjectedPanicsDegradeNotCrash panics every ladder attempt: the job
// must come back with every cluster unverified — the daemon absorbs a
// worst-case numerics blowup as data, not as a crash.
func TestInjectedPanicsDegradeNotCrash(t *testing.T) {
	faultinject.LeakCheck(t)
	restore := faultinject.SetClusterHook(faultinject.PanicClusters())
	defer restore()

	_, ts := newTestServer(t, Options{})
	vr := verifyOK(t, ts, tinyJob())
	if vr.Clusters == 0 || vr.Unverified != vr.Clusters {
		t.Errorf("clusters %d unverified %d, want all unverified under injected panics", vr.Clusters, vr.Unverified)
	}
	restore()
	clean := verifyOK(t, ts, tinyJob())
	if clean.Unverified != 0 {
		t.Errorf("daemon did not recover after panics: %+v", clean)
	}
}

// TestInjectedFailuresDegradeToFallback fails only the fast rung: every
// cluster must still verify via the fallback ladder and the job report the
// degradation honestly.
func TestInjectedFailuresDegradeToFallback(t *testing.T) {
	faultinject.LeakCheck(t)
	restore := faultinject.SetClusterHook(func(victim, stage string) error {
		if stage == "sympvl" {
			return errors.New("faultinject: reduction rejected")
		}
		return nil
	})
	defer restore()

	_, ts := newTestServer(t, Options{})
	job := tinyJob()
	job.NoScreen = true // every cluster must reach the failing rung
	vr := verifyOK(t, ts, job)
	if vr.Unverified != 0 {
		t.Errorf("unverified %d, want 0 (fallback should absorb fast-rung failures)", vr.Unverified)
	}
	if vr.Degraded != vr.Clusters {
		t.Errorf("degraded %d of %d, want all", vr.Degraded, vr.Clusters)
	}
	if vr.Screened != 0 {
		t.Errorf("screened %d with no_screen set, want 0", vr.Screened)
	}
}

// TestDrainRefusesNewJobs: draining must flip /healthz to 503 and refuse
// new jobs while Drain returns once in-flight work is done.
func TestDrainRefusesNewJobs(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, ts := newTestServer(t, Options{})
	verifyOK(t, ts, tinyJob())

	srv.BeginDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	r2, raw := postVerify(t, ts, tinyJob())
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("verify while draining = %d body %s, want 503", r2.StatusCode, raw)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Errorf("drain with no in-flight jobs: %v", err)
	}
}

// TestJobDeadlineExceeded gives a job a deadline far shorter than its
// injected slowness: the daemon must answer 504 and stay healthy.
func TestJobDeadlineExceeded(t *testing.T) {
	faultinject.LeakCheck(t)
	restore := faultinject.SetClusterHook(faultinject.SlowClusters(50 * time.Millisecond))
	defer restore()

	srv, ts := newTestServer(t, Options{Engine: xtverify.Config{Workers: 1}})
	req := tinyJob()
	req.TimeoutMS = 30
	resp, raw := postVerify(t, ts, req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %s, want 504", resp.StatusCode, raw)
	}
	waitFor(t, "timed-out job accounted", func() bool {
		m := srv.Metrics()
		return m.Jobs.TimedOut == 1 && m.Jobs.Running == 0
	})
	restore()
	verifyOK(t, ts, tinyJob())
}

// TestConcurrentSubmissions hammers the daemon from many goroutines (run
// under -race in CI): every request must end 200 or 429, accounting must
// balance, and nothing may leak or wedge.
func TestConcurrentSubmissions(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, ts := newTestServer(t, Options{MaxConcurrent: 2, MaxQueue: 32})
	const clients, perClient = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				status, raw, err := doVerify(ts, tinyJob())
				if err != nil {
					errs <- err
				} else if status != http.StatusOK && status != http.StatusTooManyRequests {
					errs <- fmt.Errorf("status %d: %s", status, raw)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := srv.Metrics()
	if got := m.Jobs.Completed + m.Jobs.RejectedQueue + m.ReportCache.Hits; got != clients*perClient {
		t.Errorf("completed %d + rejected %d + report-cache hits %d = %d, want %d",
			m.Jobs.Completed, m.Jobs.RejectedQueue, m.ReportCache.Hits, got, clients*perClient)
	}
	if m.Jobs.Running != 0 || m.Jobs.Waiting != 0 {
		t.Errorf("stuck jobs after drain: %+v", m.Jobs)
	}
	// Identical design across all jobs: the shared cache must have served.
	if m.ROMCache.Hits == 0 {
		t.Errorf("shared ROM cache never hit across %d identical jobs: %+v", clients*perClient, m.ROMCache)
	}
}

// tinyDEF serializes the tiny test design to inline DEF, the only form a
// streamed job accepts.
func tinyDEF(t *testing.T) string {
	t.Helper()
	gen, err := xtverify.NewVerifierFromDSP(resolveDSP(tinyJob().DSP), xtverify.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := gen.WriteDEF(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestStreamJobByteIdentity: a streamed DEF job produces the same
// report_text as a materialized run of the same design and config, counts
// its streaming work, and shares the report cache with materialized jobs
// (StreamIngest is not part of the canonical config).
func TestStreamJobByteIdentity(t *testing.T) {
	faultinject.LeakCheck(t)
	def := tinyDEF(t)
	req := &VerifyRequest{DEF: def, Model: "fixed", CapRatioThreshold: 0.03}
	sreq := *req
	sreq.Stream = true

	_, ts := newTestServer(t, Options{})
	streamed := verifyOK(t, ts, &sreq)
	if streamed.Cached {
		t.Fatal("first streamed job claims to be cached")
	}
	if streamed.Counters["nets_streamed"] == 0 || streamed.Counters["clusters_emitted_eager"] == 0 {
		t.Errorf("streamed job recorded no streaming work: %v", streamed.Counters)
	}
	// Same design+config without stream: served from the shared cache.
	repeat := verifyOK(t, ts, req)
	if !repeat.Cached || repeat.ReportText != streamed.ReportText {
		t.Errorf("materialized repeat not served from the streamed job's cache entry (cached=%v)", repeat.Cached)
	}

	// A genuinely materialized run on a fresh daemon: byte-identical text.
	_, ts2 := newTestServer(t, Options{})
	materialized := verifyOK(t, ts2, req)
	if materialized.Cached {
		t.Fatal("fresh daemon served from cache")
	}
	if materialized.ReportText != streamed.ReportText {
		t.Errorf("streamed and materialized report_text differ:\n--- streamed ---\n%s--- materialized ---\n%s",
			streamed.ReportText, materialized.ReportText)
	}
}

// TestStreamJobBadRequests pins the validation: stream is DEF-only and
// excludes timing windows.
func TestStreamJobBadRequests(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"stream with dsp":            `{"dsp":{"seed":1},"stream":true}`,
		"stream with timing windows": `{"def":"x","stream":true,"timing_windows":true}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestReverifyAgainstStreamedBase: a streamed base job cannot be spliced
// against (no materialized design to index), so the reverify degrades to a
// full recompute — same availability contract as an unusable base.
func TestReverifyAgainstStreamedBase(t *testing.T) {
	faultinject.LeakCheck(t)
	def := tinyDEF(t)
	_, ts := newTestServer(t, Options{})
	base := verifyOK(t, ts, &VerifyRequest{DEF: def, Model: "fixed", CapRatioThreshold: 0.03, Stream: true})
	rr := reverifyOK(t, ts, &ReverifyRequest{BaseJobID: base.JobID, DEF: def})
	if !rr.FullRecompute {
		t.Error("reverify against a streamed base claims to have spliced")
	}
	if rr.ReportText != base.ReportText {
		t.Errorf("identity ECO against streamed base changed the report:\n--- base ---\n%s--- reverify ---\n%s",
			base.ReportText, rr.ReportText)
	}
}
