// Package daemon implements the xtverifyd verification service: a
// long-running HTTP/JSON front end over xtverify.Verifier.RunContext with
// bounded admission control, per-job deadlines, client-disconnect
// cancellation, graceful drain, and live metrics.
//
// Jobs are synchronous: one POST /v1/verify request is one verification
// run, so the request context is the job context — a disconnected client
// cancels its job for free, and http.Server.Shutdown draining in-flight
// requests drains in-flight jobs.
//
// Admission is a two-level bound: at most MaxConcurrent jobs run at once
// (a channel semaphore) and at most MaxQueue more may wait for a slot.
// Beyond that the daemon sheds load with 429 and a Retry-After estimated
// from an EWMA of recent job durations — overload degrades to fast,
// honest rejections, never to an unbounded goroutine pile-up.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xtverify"
)

// Options configures a Server. The zero value is usable: defaults are
// filled in by New.
type Options struct {
	// Engine is the base verification config applied to every job before
	// per-request overrides. Its SharedROMCache, ROMStore and Collector
	// fields are managed by the server and must be left nil.
	Engine xtverify.Config
	// MaxConcurrent bounds simultaneously running jobs (default 2).
	MaxConcurrent int
	// MaxQueue bounds jobs waiting for a slot beyond the running ones
	// (default 8). Requests arriving past the bound get 429 + Retry-After.
	MaxQueue int
	// DefaultJobTimeout is the per-job deadline when a request does not
	// set timeout_ms (default 2m). MaxJobTimeout clamps requested
	// deadlines (default 10m).
	DefaultJobTimeout time.Duration
	MaxJobTimeout     time.Duration
	// ROMCacheCap sizes the shared in-memory ROM cache
	// (xtverify.DefaultROMCacheCap when 0).
	ROMCacheCap int
	// Store, when non-nil, is the disk-persistent ROM cache backing the
	// shared in-memory cache across restarts.
	Store *xtverify.ROMStore
	// ReportCacheCap bounds the completed-job report cache (entries,
	// oldest-evicted; default 32). Cached entries serve repeat /v1/verify
	// requests for the same design and canonical config without re-running,
	// and anchor /v1/reverify deltas by job id.
	ReportCacheCap int
	// Logf receives one line per job and lifecycle event (default: drop).
	Logf func(format string, args ...any)
}

// Server is the daemon state: shared caches, admission bookkeeping and
// accumulated metrics. Create with New, serve via Handler.
type Server struct {
	opts  Options
	cache *xtverify.ROMCache
	mux   *http.ServeMux

	sem      chan struct{} // running-job slots
	waiting  atomic.Int64  // jobs blocked on sem
	draining atomic.Bool
	jobs     sync.WaitGroup

	accepted  atomic.Uint64
	rejected  atomic.Uint64 // 429: queue full
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64 // client disconnect or drain
	timedOut  atomic.Uint64 // job deadline exceeded

	ewmaNanos atomic.Int64 // smoothed job duration for Retry-After

	mu     sync.Mutex
	totals map[string]int64 // engine counters accumulated across jobs

	// Completed-job report cache (reverify.go): jobs by id for delta
	// anchoring, verify jobs additionally by (design, canonical config) key
	// for repeat-request hits, evicted oldest-first at ReportCacheCap.
	jobSeq     atomic.Uint64
	reportHits atomic.Uint64
	cacheMu    sync.Mutex
	byID       map[string]*cachedJob
	byKey      map[string]*cachedJob
	idOrder    []string
}

// New returns a Server with defaults filled in and routes registered.
func New(opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 8
	}
	if opts.DefaultJobTimeout <= 0 {
		opts.DefaultJobTimeout = 2 * time.Minute
	}
	if opts.MaxJobTimeout <= 0 {
		opts.MaxJobTimeout = 10 * time.Minute
	}
	if opts.ReportCacheCap <= 0 {
		opts.ReportCacheCap = 32
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	s := &Server{
		opts:   opts,
		cache:  xtverify.NewROMCache(opts.ROMCacheCap),
		sem:    make(chan struct{}, opts.MaxConcurrent),
		totals: make(map[string]int64),
		byID:   make(map[string]*cachedJob),
		byKey:  make(map[string]*cachedJob),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/reverify", s.handleReverify)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into draining mode: /healthz turns 503 so
// load balancers stop routing here, and new jobs are refused. In-flight
// jobs keep running.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.opts.Logf("daemon: draining (new jobs refused)")
	}
}

// Drain blocks until every in-flight job has finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() { s.jobs.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("daemon: drain: %w", ctx.Err())
	}
}

// VerifyRequest is the POST /v1/verify body. Exactly one of DSP or DEF
// selects the design; the remaining fields override the daemon's base
// engine config for this job only.
type VerifyRequest struct {
	// DSP generates the synthetic design; zero fields take the
	// paper-scale defaults (seed always applies).
	DSP *DSPRequest `json:"dsp,omitempty"`
	// DEF is an inline DEF netlist as produced by WriteDEF.
	DEF string `json:"def,omitempty"`
	// Stream runs the job through bounded-memory streaming ingest: clusters
	// are verified while the DEF is still being parsed, and the report is
	// byte-identical to a materialized run (so the report cache is shared
	// between the two). Only valid with an inline DEF design, and not
	// combinable with timing_windows. A streamed job can still anchor a
	// reverify, which then recomputes in full instead of splicing.
	Stream bool `json:"stream,omitempty"`

	Model               string  `json:"model,omitempty"` // fixed | library | nonlinear
	FixedOhms           float64 `json:"fixed_ohms,omitempty"`
	CapRatioThreshold   float64 `json:"cap_ratio_threshold,omitempty"`
	GlitchThresholdFrac float64 `json:"glitch_threshold_frac,omitempty"`
	TimingWindows       bool    `json:"timing_windows,omitempty"`
	LogicCorrelation    bool    `json:"logic_correlation,omitempty"`
	// NoScreen disables the rung-0 analytic screen for this job: every
	// cluster goes through reduction and transient simulation.
	NoScreen bool `json:"no_screen,omitempty"`
	// ScreenSafetyFactor overrides the engine's screening safety factor
	// (0 = server default).
	ScreenSafetyFactor float64 `json:"screen_safety_factor,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds (0 = server
	// default; clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DSPRequest mirrors the synthetic DSP generator knobs.
type DSPRequest struct {
	Seed                  int64   `json:"seed"`
	Channels              int     `json:"channels,omitempty"`
	TracksPerChannel      int     `json:"tracks_per_channel,omitempty"`
	ChannelLengthUM       float64 `json:"channel_length_um,omitempty"`
	BusFraction           float64 `json:"bus_fraction,omitempty"`
	LatchFraction         float64 `json:"latch_fraction,omitempty"`
	ComplementaryFraction float64 `json:"complementary_fraction,omitempty"`
	ClockSpines           int     `json:"clock_spines,omitempty"`
}

// VerifyResponse is the successful job result. ReportText is rendered
// without the diagnostics block, so for a given design and config it is
// byte-identical run to run — cold cache, warm cache, or recomputed after
// cache corruption.
type VerifyResponse struct {
	// JobID identifies this completed job in the daemon's report cache; pass
	// it as base_job_id to POST /v1/reverify to verify an ECO delta
	// incrementally against this result.
	JobID string `json:"job_id"`
	// Cached marks a response served from the report cache: an earlier job
	// already verified this exact design under this canonical config, so the
	// daemon returns its (byte-identical) report without re-running. JobID
	// and WallMS are the original job's.
	Cached     bool             `json:"cached,omitempty"`
	ReportText string           `json:"report_text"`
	Violations int              `json:"violations"`
	Clusters   int              `json:"clusters"`
	Verified   int              `json:"verified"`
	Screened   int              `json:"screened"`
	Degraded   int              `json:"degraded"`
	Unverified int              `json:"unverified"`
	WallMS     float64          `json:"wall_ms"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

const maxRequestBytes = 64 << 20 // inline DEF can be large, but bounded

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "jobs_running": len(s.sem),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "jobs_running": len(s.sem),
	})
}

// MetricsBody is the /metrics response: daemon job accounting plus the
// shared ROM cache, persistent store and accumulated engine counters
// (including cache_corrupt_discarded and rung_retries).
type MetricsBody struct {
	Jobs struct {
		Accepted      uint64 `json:"accepted"`
		RejectedQueue uint64 `json:"rejected_queue_full"`
		Completed     uint64 `json:"completed"`
		Failed        uint64 `json:"failed"`
		Canceled      uint64 `json:"canceled"`
		TimedOut      uint64 `json:"timed_out"`
		Running       int    `json:"running"`
		Waiting       int64  `json:"waiting"`
	} `json:"jobs"`
	ROMCache struct {
		Hits        uint64 `json:"hits"`
		Misses      uint64 `json:"misses"`
		Evictions   uint64 `json:"evictions"`
		BackingHits uint64 `json:"backing_hits"`
	} `json:"rom_cache"`
	ReportCache struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
	} `json:"report_cache"`
	ROMStore       *xtverify.ROMStoreStats `json:"rom_store,omitempty"`
	EngineCounters map[string]int64        `json:"engine_counters"`
	Draining       bool                    `json:"draining"`
}

// Metrics returns the current metrics body (also served at /metrics).
func (s *Server) Metrics() MetricsBody {
	var m MetricsBody
	m.Jobs.Accepted = s.accepted.Load()
	m.Jobs.RejectedQueue = s.rejected.Load()
	m.Jobs.Completed = s.completed.Load()
	m.Jobs.Failed = s.failed.Load()
	m.Jobs.Canceled = s.canceled.Load()
	m.Jobs.TimedOut = s.timedOut.Load()
	m.Jobs.Running = len(s.sem)
	m.Jobs.Waiting = s.waiting.Load()
	m.ROMCache.Hits, m.ROMCache.Misses = s.cache.Stats()
	m.ROMCache.Evictions = s.cache.Evictions()
	m.ROMCache.BackingHits = s.cache.BackingHits()
	s.cacheMu.Lock()
	m.ReportCache.Entries = len(s.byID)
	s.cacheMu.Unlock()
	m.ReportCache.Hits = s.reportHits.Load()
	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		m.ROMStore = &st
	}
	m.EngineCounters = make(map[string]int64)
	s.mu.Lock()
	for k, v := range s.totals {
		m.EngineCounters[k] = v
	}
	s.mu.Unlock()
	m.Draining = s.draining.Load()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// retryAfterSeconds estimates, in whole seconds, when a slot is likely to
// free up: the smoothed job duration scaled by queue depth over parallelism,
// rounded up and clamped to [1, 120]. The arithmetic is floating-point on
// purpose: the integer-duration form this replaces could truncate toward
// zero (sub-second EWMA, depth below MaxConcurrent) before the header
// rounding ever saw the value, and could overflow the EWMA × depth product
// outright — and "Retry-After: 0" is an invitation to hammer an overloaded
// server. The floor is the guarantee: the header is never less than 1.
func (s *Server) retryAfterSeconds() int {
	ewma := float64(s.ewmaNanos.Load())
	depth := float64(s.waiting.Load() + 1)
	sec := math.Ceil(ewma * depth / float64(s.opts.MaxConcurrent) / float64(time.Second))
	if !(sec > 1) { // NaN-proof: any non-positive or unordered estimate floors to 1
		return 1
	}
	if sec > 120 {
		return 120
	}
	return int(sec)
}

func (s *Server) observeDuration(d time.Duration) {
	const alpha = 0.3
	for {
		old := s.ewmaNanos.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = int64(alpha*float64(d) + (1-alpha)*float64(old))
		}
		if s.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// admit reserves a running-job slot. It returns a non-nil release when
// admitted; otherwise an HTTP status explaining the rejection.
func (s *Server) admit(ctx context.Context) (release func(), status int) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	default:
	}
	if s.waiting.Add(1) > int64(s.opts.MaxQueue) {
		s.waiting.Add(-1)
		return nil, http.StatusTooManyRequests
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	case <-ctx.Done():
		// Client gave up while queued; 499 is the conventional
		// client-closed-request status (nothing will read it anyway).
		return nil, 499
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"server draining"})
		return
	}
	var req VerifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request: " + err.Error()})
		return
	}
	if (req.DSP == nil) == (req.DEF == "") {
		writeJSON(w, http.StatusBadRequest, errorResponse{"exactly one of dsp or def is required"})
		return
	}
	cfg, badField := s.jobConfig(&req)
	if badField != "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad field: " + badField})
		return
	}
	// Repeat request? The cache key pairs the design input with the full
	// canonical config, so two jobs share a report only when every
	// content-affecting knob matches — and then the reports are provably
	// byte-identical, making the cached copy indistinguishable from a rerun.
	cacheKey := designKeyFor(&req) + "\x00" + cfg.CanonicalConfigKey()
	if resp, ok := s.lookupReport(cacheKey); ok {
		s.reportHits.Add(1)
		s.opts.Logf("daemon: job served from report cache (%s)", resp.JobID)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	release, status := s.admit(r.Context())
	if release == nil {
		if status == http.StatusTooManyRequests {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeJSON(w, status, errorResponse{"queue full, retry later"})
		} else {
			s.canceled.Add(1)
		}
		return
	}
	s.jobs.Add(1)
	defer s.jobs.Done()
	defer release()
	s.accepted.Add(1)

	timeout := s.opts.DefaultJobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.opts.MaxJobTimeout {
		timeout = s.opts.MaxJobTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	resp, art, errStatus, err := s.runJob(ctx, &req, cfg)
	wall := time.Since(start)

	switch {
	case err == nil:
		s.completed.Add(1)
		s.observeDuration(wall)
		resp.WallMS = float64(wall) / float64(time.Millisecond)
		if resp.Unverified > 0 {
			// Unverified clusters mark transient trouble (timeouts, faults,
			// overload); serving such a report from cache would pin the
			// failure long after the condition cleared. The job still
			// anchors reverify deltas by id — the splice recomputes
			// unverified clusters — but repeat requests re-run.
			cacheKey = ""
		}
		resp.JobID = s.storeReport(cacheKey, cfg, art, resp)
		s.opts.Logf("daemon: job %s done in %v: %d violations, %d clusters", resp.JobID, wall.Round(time.Millisecond), resp.Violations, resp.Clusters)
		writeJSON(w, http.StatusOK, resp)
	case r.Context().Err() != nil:
		// Client disconnected (or the whole listener is shutting down):
		// the job was canceled on their behalf; nobody reads the response.
		s.canceled.Add(1)
		s.opts.Logf("daemon: job canceled by client after %v", wall.Round(time.Millisecond))
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.timedOut.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"job deadline exceeded: " + err.Error()})
	default:
		s.failed.Add(1)
		s.opts.Logf("daemon: job failed after %v: %v", wall.Round(time.Millisecond), err)
		writeJSON(w, errStatus, errorResponse{err.Error()})
	}
}

// jobConfig builds the per-job engine config: base options, shared cache
// and store, fresh collector, then request overrides.
func (s *Server) jobConfig(req *VerifyRequest) (xtverify.Config, string) {
	cfg := s.opts.Engine
	cfg.SharedROMCache = s.cache
	cfg.ROMStore = s.opts.Store
	cfg.Collector = xtverify.NewMetricsCollector()
	switch strings.ToLower(req.Model) {
	case "":
	case "fixed":
		cfg.Model = xtverify.FixedResistance
	case "library":
		cfg.Model = xtverify.TimingLibrary
	case "nonlinear":
		cfg.Model = xtverify.NonlinearCellModel
	default:
		return cfg, "model"
	}
	if req.FixedOhms < 0 || req.CapRatioThreshold < 0 || req.GlitchThresholdFrac < 0 ||
		req.TimeoutMS < 0 || req.ScreenSafetyFactor < 0 {
		return cfg, "negative value"
	}
	if req.FixedOhms > 0 {
		cfg.FixedOhms = req.FixedOhms
	}
	if req.CapRatioThreshold > 0 {
		cfg.CapRatioThreshold = req.CapRatioThreshold
	}
	if req.GlitchThresholdFrac > 0 {
		cfg.GlitchThresholdFrac = req.GlitchThresholdFrac
	}
	if req.TimingWindows {
		cfg.UseTimingWindows = true
	}
	if req.LogicCorrelation {
		cfg.UseLogicCorrelation = true
	}
	if req.NoScreen {
		cfg.DisableScreening = true
	}
	if req.ScreenSafetyFactor > 0 {
		cfg.ScreenSafetyFactor = req.ScreenSafetyFactor
	}
	if req.Stream {
		if req.DEF == "" {
			// DSP jobs are canonicalized through a materialized DEF round
			// trip (see runJob), so streaming them buys nothing.
			return cfg, "stream (only valid with an inline def design)"
		}
		if cfg.UseTimingWindows {
			return cfg, "stream (incompatible with timing_windows)"
		}
		cfg.StreamIngest = true
	}
	return cfg, ""
}

// runJob builds the verifier and runs it under ctx. The returned int is
// the HTTP status to use when err is non-nil and not a cancellation.
func (s *Server) runJob(ctx context.Context, req *VerifyRequest, cfg xtverify.Config) (*VerifyResponse, *jobArtifacts, int, error) {
	var (
		v   *xtverify.Verifier
		err error
	)
	if req.DEF != "" {
		v, err = xtverify.NewVerifierFromDEF(strings.NewReader(req.DEF), cfg)
		if err != nil {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("parse def: %w", err)
		}
	} else {
		// DSP jobs are canonicalized through one DEF round trip before
		// verification. A reverify delta is necessarily expressed in DEF, so
		// its verifier parses DEF — and a DSP-direct base would differ from
		// it in low-order parasitic bits (the generator's micron arithmetic
		// rounds differently from the DEF parser's DBU division), defeating
		// every cluster signature. Serving the DEF-parsed form makes base
		// and delta bit-comparable; DEF-to-DEF parses are exactly stable.
		gen, err := xtverify.NewVerifierFromDSP(resolveDSP(req.DSP), cfg)
		if err != nil {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("generate design: %w", err)
		}
		var sb strings.Builder
		if err := gen.WriteDEF(&sb); err != nil {
			return nil, nil, http.StatusInternalServerError, fmt.Errorf("canonicalize design: %w", err)
		}
		v, err = xtverify.NewVerifierFromDEF(strings.NewReader(sb.String()), cfg)
		if err != nil {
			return nil, nil, http.StatusInternalServerError, fmt.Errorf("reparse canonical def: %w", err)
		}
	}

	rep, err := v.RunContext(ctx)
	s.foldCounters(cfg.Collector)
	if err != nil {
		return nil, nil, http.StatusInternalServerError, err
	}
	resp, err := makeResponse(rep)
	if err != nil {
		return nil, nil, http.StatusInternalServerError, err
	}
	return resp, &jobArtifacts{verifier: v, report: rep}, 0, nil
}

// foldCounters merges one job's engine counters into the daemon totals —
// called whether or not the run finished, since partial work is still work
// observed.
func (s *Server) foldCounters(col *xtverify.MetricsCollector) {
	if snap := col.Snapshot(); snap != nil {
		s.mu.Lock()
		for k, n := range snap.Counters {
			s.totals[k] += n
		}
		s.mu.Unlock()
	}
}

// makeResponse freezes a completed report into the wire response. The text
// is rendered without the diagnostics block so report_text is deterministic:
// wall times and cache statistics are run-dependent and live in the
// structured fields instead. The report's diagnostics are restored before
// returning (the report cache keeps them for reverify anchoring).
func makeResponse(rep *xtverify.Report) (*VerifyResponse, error) {
	diag := rep.Diagnostics
	resp := &VerifyResponse{
		Violations: len(rep.Violations),
	}
	if diag != nil {
		resp.Clusters = len(diag.Clusters)
		resp.Verified = diag.Verified
		resp.Degraded = diag.Degraded
		resp.Unverified = diag.Unverified
		if diag.Metrics != nil {
			resp.Counters = diag.Metrics.Counters
		}
	}
	if rep.Screening != nil {
		resp.Screened = rep.Screening.Screened
	}
	rep.Diagnostics = nil
	var sb strings.Builder
	err := rep.WriteText(&sb)
	rep.Diagnostics = diag
	if err != nil {
		return nil, fmt.Errorf("render report: %w", err)
	}
	resp.ReportText = sb.String()
	return resp, nil
}
