package cells

import (
	"fmt"
	"sync"

	"xtverify/internal/devices"
	"xtverify/internal/spice"
	"xtverify/internal/waveform"
)

// VTC is the static voltage transfer characteristic of a cell's switching
// input, with the derived noise-margin quantities used to decide whether a
// crosstalk glitch at a receiver input can propagate as a logic upset
// (the paper's "false switching due to glitches" concern).
type VTC struct {
	Cell *Cell
	// Vin and Vout sample the transfer curve.
	Vin, Vout []float64
	// VIL and VIH are the unity-gain input levels (|dVout/dVin| = 1).
	VIL, VIH float64
	// VOL and VOH are the output levels at the corresponding corners.
	VOL, VOH float64
	// VM is the switching threshold (Vout = Vin for inverting cells;
	// mid-swing crossing otherwise).
	VM float64
	// NML and NMH are the low/high noise margins: NML = VIL − VOL,
	// NMH = VOH − VIH.
	NML, NMH float64
}

var (
	vtcMu    sync.Mutex
	vtcCache = map[string]*VTC{}
)

// CharacterizeVTC sweeps the cell's switching input at DC with the
// SPICE-class engine and extracts the noise-margin corners. Results are
// memoized per cell.
func CharacterizeVTC(c *Cell) (*VTC, error) {
	vtcMu.Lock()
	if v, ok := vtcCache[c.Name]; ok {
		vtcMu.Unlock()
		return v, nil
	}
	vtcMu.Unlock()
	const points = 61
	v := &VTC{Cell: c}
	vdd := devices.Vdd025
	for k := 0; k < points; k++ {
		vin := vdd * float64(k) / float64(points-1)
		n := spice.NewNetlist("vtc_" + c.Name)
		in := n.Node("in")
		out := n.Node("out")
		vddN := n.Node("vdd")
		n.Drive(vddN, waveform.Const(vdd))
		n.Drive(in, waveform.Const(vin))
		if _, err := c.BuildDriver(n, "u", in, out, vddN); err != nil {
			return nil, err
		}
		op, err := n.DCOperatingPoint(0, spice.Options{})
		if err != nil {
			return nil, fmt.Errorf("cells: VTC of %s at %.2f V: %w", c.Name, vin, err)
		}
		v.Vin = append(v.Vin, vin)
		v.Vout = append(v.Vout, op[out])
	}
	v.derive()
	vtcMu.Lock()
	vtcCache[c.Name] = v
	vtcMu.Unlock()
	return v, nil
}

// derive locates the unity-gain points and noise margins from the sampled
// curve.
func (v *VTC) derive() {
	n := len(v.Vin)
	if n < 3 {
		return
	}
	inverting := v.Vout[0] > v.Vout[n-1]
	// Walk the curve; unity-gain where |slope| crosses 1.
	firstUG, lastUG := -1, -1
	for i := 1; i < n; i++ {
		slope := (v.Vout[i] - v.Vout[i-1]) / (v.Vin[i] - v.Vin[i-1])
		if slope < 0 {
			slope = -slope
		}
		if slope >= 1 {
			if firstUG < 0 {
				firstUG = i - 1
			}
			lastUG = i
		}
	}
	if firstUG < 0 {
		// Degenerate (non-restoring path); treat the whole swing as
		// transition region.
		firstUG, lastUG = 0, n-1
	}
	v.VIL = v.Vin[firstUG]
	v.VIH = v.Vin[lastUG]
	if inverting {
		v.VOH = v.Vout[firstUG] // output still high at VIL
		v.VOL = v.Vout[lastUG]
	} else {
		v.VOL = v.Vout[firstUG]
		v.VOH = v.Vout[lastUG]
	}
	v.NML = v.VIL - v.VOL
	v.NMH = v.VOH - v.VIH
	// Switching threshold: crossing of Vout = Vin (inverting) or mid-swing.
	vdd := devices.Vdd025
	for i := 1; i < n; i++ {
		if inverting {
			d0 := v.Vout[i-1] - v.Vin[i-1]
			d1 := v.Vout[i] - v.Vin[i]
			if d0 >= 0 && d1 < 0 {
				frac := d0 / (d0 - d1)
				v.VM = v.Vin[i-1] + frac*(v.Vin[i]-v.Vin[i-1])
				return
			}
		} else {
			if v.Vout[i-1] < vdd/2 && v.Vout[i] >= vdd/2 {
				frac := (vdd/2 - v.Vout[i-1]) / (v.Vout[i] - v.Vout[i-1])
				v.VM = v.Vin[i-1] + frac*(v.Vin[i]-v.Vin[i-1])
				return
			}
		}
	}
	v.VM = vdd / 2
}

// GlitchPropagates reports whether a glitch of the given signed peak on a
// quiet input at the stated rail can drive this receiving cell past its
// unity-gain corner — the condition under which the disturbance is
// amplified downstream instead of filtered.
func (v *VTC) GlitchPropagates(peak float64, heldLow bool) bool {
	if heldLow {
		return peak > v.VIL
	}
	return devices.Vdd025+peak < v.VIH // peak is negative for high victims
}
