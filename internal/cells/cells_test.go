package cells

import (
	"errors"
	"math"
	"testing"

	"xtverify/internal/devices"
	"xtverify/internal/spice"
	"xtverify/internal/waveform"
)

func TestLibraryHas53Cells(t *testing.T) {
	lib := Library()
	if len(lib) != 53 {
		t.Fatalf("library has %d cells, want 53 (paper Section 4.2)", len(lib))
	}
	seen := map[string]bool{}
	for _, c := range lib {
		if seen[c.Name] {
			t.Errorf("duplicate cell name %s", c.Name)
		}
		seen[c.Name] = true
		if c.Wn <= 0 || c.Wp <= 0 || c.InputCapF <= 0 {
			t.Errorf("%s has non-positive geometry", c.Name)
		}
	}
	if _, ok := ByName("INV_X4"); !ok {
		t.Error("INV_X4 missing")
	}
	if _, ok := ByName("NOPE"); ok {
		t.Error("phantom cell found")
	}
}

func TestStrengthScalesWidths(t *testing.T) {
	x1, _ := ByName("INV_X1")
	x8, _ := ByName("INV_X8")
	if math.Abs(x8.Wn/x1.Wn-8) > 1e-9 {
		t.Errorf("X8/X1 width ratio %g, want 8", x8.Wn/x1.Wn)
	}
}

func TestTriStateAndSequentialFlags(t *testing.T) {
	tb, _ := ByName("TBUF_X4")
	if !tb.TriState {
		t.Error("TBUF should be tri-state")
	}
	d, _ := ByName("DFF_X2")
	if !d.Sequential {
		t.Error("DFF should be sequential")
	}
	la, _ := ByName("LATCH_X1")
	if !la.Sequential {
		t.Error("LATCH should be sequential")
	}
}

// driveTransient runs a cell driving a load and returns the output waveform.
func driveTransient(t *testing.T, c *Cell, inRising bool, load float64) *waveform.Waveform {
	t.Helper()
	n := spice.NewNetlist("t_" + c.Name)
	in := n.Node("in")
	out := n.Node("out")
	vdd := n.Node("vdd")
	n.Drive(vdd, waveform.Const(devices.Vdd025))
	v0, v1 := 0.0, devices.Vdd025
	if !inRising {
		v0, v1 = v1, v0
	}
	n.Drive(in, waveform.Ramp(v0, v1, 100e-12, 100e-12))
	if _, err := c.BuildDriver(n, "u", in, out, vdd); err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	n.AddC(out, spice.Ground, load)
	res, err := n.Transient(spice.Options{TEnd: 4e-9, Dt: 2e-12})
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	w, _ := res.Wave("out")
	return w
}

func TestEveryCellDrivesFullSwing(t *testing.T) {
	// Each cell must pull its output rail-to-rail in the transistor-level
	// view — this exercises every topology branch.
	const vdd = devices.Vdd025
	for _, c := range Library() {
		inRising := c.Polarity() > 0 // make the output rise
		w := driveTransient(t, c, inRising, 20e-15)
		if math.Abs(w.End()-vdd) > 0.02 {
			t.Errorf("%s: output settled at %.3f, want %.1f", c.Name, w.End(), vdd)
		}
		w2 := driveTransient(t, c, !inRising, 20e-15)
		if math.Abs(w2.End()) > 0.02 {
			t.Errorf("%s: output settled at %.3f, want 0", c.Name, w2.End())
		}
	}
}

// TestUnknownKindTypedErrors pins the instantiation error contract: a Cell
// with a Kind outside the library families fails BuildDriver/BuildHolding
// with an error matching ErrUnknownKind instead of panicking, and Lookup
// reports missing names via ErrUnknownCell.
func TestUnknownKindTypedErrors(t *testing.T) {
	bogus := &Cell{Name: "HAND_BUILT", Kind: Kind(99), Wn: WnBase, Wp: WpBase}
	cases := []struct {
		name string
		run  func() error
		want error
	}{
		{"build driver unknown kind", func() error {
			n := spice.NewNetlist("bad")
			_, err := bogus.BuildDriver(n, "u", n.Node("in"), n.Node("out"), n.Node("vdd"))
			return err
		}, ErrUnknownKind},
		{"build holding unknown kind", func() error {
			n := spice.NewNetlist("bad")
			return bogus.BuildHolding(n, "u", n.Node("out"), n.Node("vdd"), HoldLow)
		}, ErrUnknownKind},
		{"lookup unknown name", func() error {
			_, err := Lookup("INV_X999")
			return err
		}, ErrUnknownCell},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("expected a typed error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %q does not match %v", err, tc.want)
			}
		})
	}
	if c, err := Lookup("INV_X2"); err != nil || c == nil || c.Name != "INV_X2" {
		t.Fatalf("Lookup(INV_X2) = %v, %v", c, err)
	}
}

func TestBuildHoldingHoldsRails(t *testing.T) {
	for _, name := range []string{"INV_X2", "BUF_X2", "NAND2_X2", "TBUF_X2"} {
		c, _ := ByName(name)
		for _, hold := range []HoldState{HoldLow, HoldHigh} {
			n := spice.NewNetlist("h")
			out := n.Node("out")
			vdd := n.Node("vdd")
			n.Drive(vdd, waveform.Const(devices.Vdd025))
			if err := c.BuildHolding(n, "u", out, vdd, hold); err != nil {
				t.Fatalf("%s hold %v: %v", name, hold, err)
			}
			v, err := n.DCOperatingPoint(0, spice.Options{})
			if err != nil {
				t.Fatalf("%s hold %v: %v", name, hold, err)
			}
			want := 0.0
			if hold == HoldHigh {
				want = devices.Vdd025
			}
			if math.Abs(v[out]-want) > 0.02 {
				t.Errorf("%s hold=%v: out=%.3f want %.1f", name, hold, v[out], want)
			}
		}
	}
}

var fastChar = CharacterizeOptions{
	Loads: []float64{10e-15, 60e-15},
	Slews: []float64{80e-12, 200e-12},
	Dt:    4e-12,
}

func TestCharacterizeInverter(t *testing.T) {
	c, _ := ByName("INV_X2")
	tm, err := Characterize(c, fastChar)
	if err != nil {
		t.Fatal(err)
	}
	// Delay grows with load.
	if tm.DelayRise[1][0] <= tm.DelayRise[0][0] {
		t.Errorf("rise delay should grow with load: %v", tm.DelayRise)
	}
	if tm.DelayFall[1][0] <= tm.DelayFall[0][0] {
		t.Errorf("fall delay should grow with load: %v", tm.DelayFall)
	}
	// Output transition grows with load.
	if tm.TransRise[1][0] <= tm.TransRise[0][0] {
		t.Errorf("rise transition should grow with load: %v", tm.TransRise)
	}
	// All values positive and in plausible DSM ranges (< 5 ns).
	for i := range tm.Loads {
		for j := range tm.Slews {
			for _, v := range []float64{tm.DelayRise[i][j], tm.DelayFall[i][j], tm.TransRise[i][j], tm.TransFall[i][j]} {
				if v <= 0 || v > 5e-9 {
					t.Errorf("implausible timing value %g", v)
				}
			}
		}
	}
}

func TestDriveResistanceOrdering(t *testing.T) {
	// Stronger cells must have lower drive resistance.
	weak, _ := ByName("INV_X1")
	strong, _ := ByName("INV_X8")
	tw, err := Characterize(weak, fastChar)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Characterize(strong, fastChar)
	if err != nil {
		t.Fatal(err)
	}
	rw := tw.DriveResistance(false)
	rs := ts.DriveResistance(false)
	if rs >= rw {
		t.Errorf("X8 resistance %g should be below X1 %g", rs, rw)
	}
	// Plausible kΩ-scale values for X1, sub-kΩ for X8.
	if rw < 200 || rw > 20000 {
		t.Errorf("X1 drive resistance %g Ω implausible", rw)
	}
	if rs > 3000 {
		t.Errorf("X8 drive resistance %g Ω implausible", rs)
	}
}

func TestEstimateDriveResistance(t *testing.T) {
	c, _ := ByName("INV_X1")
	rFall := EstimateDriveResistance(c, false)
	rRise := EstimateDriveResistance(c, true)
	if rFall <= 0 || rRise <= 0 {
		t.Fatal("estimates must be positive")
	}
	// PMOS mobility deficit: rise resistance is higher than fall for the
	// 1:2 width ratio used here.
	if rRise <= rFall {
		t.Errorf("rise %g should exceed fall %g", rRise, rFall)
	}
}

func TestTimingInterpolation(t *testing.T) {
	c, _ := ByName("INV_X2")
	tm, err := Characterize(c, fastChar)
	if err != nil {
		t.Fatal(err)
	}
	// Interpolated value between grid points lies between the corners.
	mid := tm.Delay(35e-15, 140e-12, true)
	lo := math.Min(math.Min(tm.DelayRise[0][0], tm.DelayRise[0][1]), math.Min(tm.DelayRise[1][0], tm.DelayRise[1][1]))
	hi := math.Max(math.Max(tm.DelayRise[0][0], tm.DelayRise[0][1]), math.Max(tm.DelayRise[1][0], tm.DelayRise[1][1]))
	if mid < lo || mid > hi {
		t.Errorf("interpolation %g outside corners [%g,%g]", mid, lo, hi)
	}
	// Clamping outside the grid.
	if got := tm.Delay(1e-12, 140e-12, true); got < hi-1e-15 && got > lo-1e-15 {
		_ = got // clamped high-load value; just ensure no panic and finite
	}
	if math.IsNaN(tm.Delay(1e-12, 1e-9, false)) {
		t.Error("clamped interpolation returned NaN")
	}
}

func TestCharacterizeCachedMemoizes(t *testing.T) {
	c, _ := ByName("INV_X12")
	t1, err := CharacterizeCached(c)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := CharacterizeCached(c)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("cache returned distinct objects")
	}
}
