// Package cells provides the synthetic 0.25 µm standard-cell library that
// stands in for the proprietary library of the paper's experiments: 53 cells
// across inverters, buffers, NAND/NOR gates, AOI/OAI complex gates, tri-state
// buffers, sequential output drivers and clock buffers, each with a
// transistor-level output stage built from the level-1 devices.
//
// The package also characterizes cells against the SPICE-class engine into
// NLDM-style delay/slew tables (Section 4.1's "cell timing library"), from
// which the linear-resistor driver model is deduced.
package cells

import (
	"errors"
	"fmt"
	"sync"

	"xtverify/internal/devices"
	"xtverify/internal/spice"
	"xtverify/internal/waveform"
)

// Sentinel errors for cell resolution and instantiation. Callers match with
// errors.Is; the wrapped message carries the offending name or kind.
var (
	// ErrUnknownCell reports a library lookup for a name that does not exist.
	ErrUnknownCell = errors.New("cells: unknown cell")
	// ErrUnknownKind reports a Cell whose Kind is outside the library's
	// families (a hand-built Cell struct, not a library member).
	ErrUnknownKind = errors.New("cells: unknown cell kind")
)

// Kind enumerates cell families.
type Kind int

// Cell family constants.
const (
	INV Kind = iota
	BUF
	NAND2
	NAND3
	NOR2
	NOR3
	AOI21
	OAI21
	AOI22
	OAI22
	TBUF
	DFF
	LATCH
	CLKBUF
	DLY
)

var kindNames = map[Kind]string{
	INV: "INV", BUF: "BUF", NAND2: "NAND2", NAND3: "NAND3", NOR2: "NOR2",
	NOR3: "NOR3", AOI21: "AOI21", OAI21: "OAI21", AOI22: "AOI22",
	OAI22: "OAI22", TBUF: "TBUF", DFF: "DFF", LATCH: "LATCH",
	CLKBUF: "CLKBUF", DLY: "DLY",
}

func (k Kind) String() string { return kindNames[k] }

// Technology constants for the synthetic library.
const (
	// LDrawn is the drawn channel length.
	LDrawn = 0.25e-6
	// WnBase and WpBase are the X1 output-stage widths.
	WnBase = 0.8e-6
	WpBase = 1.6e-6
	// CGatePerMeter approximates the gate capacitance per meter of width
	// (n- and p-device widths both contribute).
	CGatePerMeter = 1.5e-15 / 1e-6
	// CDiffPerMeter approximates the drain diffusion capacitance per meter
	// of output-stage width.
	CDiffPerMeter = 0.9e-15 / 1e-6
)

// Cell describes one library cell.
type Cell struct {
	// Name is e.g. "NAND2_X4".
	Name string
	// Kind is the logic family.
	Kind Kind
	// Strength is the drive multiple (X1 = 1).
	Strength float64
	// Wn and Wp are the output-stage device widths (already scaled).
	Wn, Wp float64
	// Inputs is the number of logic inputs.
	Inputs int
	// InputCapF is the capacitance presented by one input pin.
	InputCapF float64
	// OutDiffCapF is the parasitic diffusion capacitance at the output.
	OutDiffCapF float64
	// TriState marks cells whose output can float (bus drivers).
	TriState bool
	// Sequential marks storage cells (their inputs are latch/FF data pins —
	// the paper's Section 5 victims are inputs to latches).
	Sequential bool
}

func newCell(kind Kind, strength float64, inputs int, tri, seq bool) *Cell {
	wn := WnBase * strength
	wp := WpBase * strength
	// Series stacks in NAND/NOR pulldown/pullup networks are widened so the
	// worst-case drive matches the inverter of the same strength.
	c := &Cell{
		Kind:       kind,
		Strength:   strength,
		Wn:         wn,
		Wp:         wp,
		Inputs:     inputs,
		TriState:   tri,
		Sequential: seq,
	}
	c.Name = fmt.Sprintf("%s_X%g", kind, strength)
	// Input pin loading: gate cap of the devices the pin drives. Complex
	// gates present roughly one n+p pair per input.
	c.InputCapF = (wn + wp) * CGatePerMeter
	c.OutDiffCapF = (wn + wp) * CDiffPerMeter
	return c
}

var (
	libOnce sync.Once
	library []*Cell
	byName  map[string]*Cell
)

// Library returns the full 53-cell library. The slice is shared; callers
// must not modify it.
func Library() []*Cell {
	libOnce.Do(buildLibrary)
	return library
}

// ByName looks a cell up by name.
func ByName(name string) (*Cell, bool) {
	libOnce.Do(buildLibrary)
	c, ok := byName[name]
	return c, ok
}

// Lookup resolves a cell by name, returning an error wrapping ErrUnknownCell
// when the name is not in the library.
func Lookup(name string) (*Cell, error) {
	if c, ok := ByName(name); ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownCell, name)
}

func buildLibrary() {
	add := func(kind Kind, strengths []float64, inputs int, tri, seq bool) {
		for _, s := range strengths {
			library = append(library, newCell(kind, s, inputs, tri, seq))
		}
	}
	add(INV, []float64{1, 2, 3, 4, 6, 8, 12}, 1, false, false) // 7
	add(BUF, []float64{1, 2, 3, 4, 6, 8, 12}, 1, false, false) // 7
	add(NAND2, []float64{1, 2, 3, 4, 8}, 2, false, false)      // 5
	add(NAND3, []float64{1, 2, 4}, 3, false, false)            // 3
	add(NOR2, []float64{1, 2, 4, 8}, 2, false, false)          // 4
	add(NOR3, []float64{1, 2}, 3, false, false)                // 2
	add(AOI21, []float64{1, 2, 4}, 3, false, false)            // 3
	add(OAI21, []float64{1, 2, 4}, 3, false, false)            // 3
	add(AOI22, []float64{1, 2}, 4, false, false)               // 2
	add(OAI22, []float64{1, 2}, 4, false, false)               // 2
	add(TBUF, []float64{1, 2, 4, 8}, 1, true, false)           // 4
	add(DFF, []float64{1, 2, 4}, 1, false, true)               // 3
	add(LATCH, []float64{1, 2}, 1, false, true)                // 2
	add(CLKBUF, []float64{4, 8, 16, 20}, 1, false, false)      // 4
	add(DLY, []float64{1, 2}, 1, false, false)                 // 2
	byName = make(map[string]*Cell, len(library))
	for _, c := range library {
		byName[c.Name] = c
	}
}

// mos is a local helper building a sized transistor Eval.
func mos(t devices.MOSType, w float64) func(vd, vg, vs float64) (float64, float64, float64) {
	m := &devices.MOSFET{Params: devices.Tech025(t), W: w, L: LDrawn}
	return m.Eval
}

// BuildDriver instantiates the cell's transistor-level drive path into the
// netlist with the switching input connected to `in`, the output at `out`,
// and all side inputs tied to their worst-case drive state (so the cell
// drives with full strength through the switching input). Internal nodes are
// prefixed with the cell name.
//
// The returned polarity is −1 for inverting paths (output falls when the
// input rises) and +1 for non-inverting ones. A Cell whose Kind is not a
// library family yields an error wrapping ErrUnknownKind (and leaves
// whatever was added so far in the netlist — callers discard it).
func (c *Cell) BuildDriver(n *spice.Netlist, prefix string, in, out, vdd spice.Node) (int, error) {
	high := waveform.Const(devices.Vdd025)
	low := waveform.Const(0)
	tieHigh := func(name string) spice.Node {
		nd := n.Node(prefix + "." + name)
		n.Drive(nd, high)
		return nd
	}
	tieLow := func(name string) spice.Node {
		nd := n.Node(prefix + "." + name)
		n.Drive(nd, low)
		return nd
	}
	// Note: the output diffusion parasitic OutDiffCapF is NOT added here —
	// extraction attaches it at the driver node of the net, so cluster
	// netlists carry it exactly once whichever engine hosts the driver.
	// Stand-alone characterization fixtures add it explicitly.
	switch c.Kind {
	case INV:
		n.AddMOS(out, in, spice.Ground, mos(devices.NMOS, c.Wn))
		n.AddMOS(out, in, vdd, mos(devices.PMOS, c.Wp))
		return -1, nil
	case BUF, CLKBUF, DLY, DFF, LATCH:
		// Two inverters; the first is quarter-strength. For sequential cells
		// this is the Q output driver path, which is what crosstalk analysis
		// sees.
		mid := n.Node(prefix + ".mid")
		wn1, wp1 := c.Wn/4, c.Wp/4
		if wn1 < WnBase/4 {
			wn1, wp1 = WnBase/4, WpBase/4
		}
		n.AddMOS(mid, in, spice.Ground, mos(devices.NMOS, wn1))
		n.AddMOS(mid, in, vdd, mos(devices.PMOS, wp1))
		n.AddC(mid, spice.Ground, (c.Wn+c.Wp)*CGatePerMeter)
		n.AddMOS(out, mid, spice.Ground, mos(devices.NMOS, c.Wn))
		n.AddMOS(out, mid, vdd, mos(devices.PMOS, c.Wp))
		return 1, nil
	case NAND2, NAND3:
		// Pulldown: series stack (widened); pullup: parallel PMOS. Side
		// inputs tied high so the switching input controls the gate.
		k := c.Inputs
		wn := c.Wn * float64(k)
		prev := out
		for i := 0; i < k; i++ {
			gate := in
			if i > 0 {
				gate = tieHigh(fmt.Sprintf("nin%d", i))
			}
			var next spice.Node
			if i == k-1 {
				next = spice.Ground
			} else {
				next = n.Node(prefix + fmt.Sprintf(".nstk%d", i))
			}
			n.AddMOS(prev, gate, next, mos(devices.NMOS, wn))
			prev = next
		}
		n.AddMOS(out, in, vdd, mos(devices.PMOS, c.Wp))
		for i := 1; i < k; i++ {
			n.AddMOS(out, tieHigh(fmt.Sprintf("pin%d", i)), vdd, mos(devices.PMOS, c.Wp))
		}
		return -1, nil
	case NOR2, NOR3:
		k := c.Inputs
		wp := c.Wp * float64(k)
		prev := out
		for i := 0; i < k; i++ {
			gate := in
			if i > 0 {
				gate = tieLow(fmt.Sprintf("pin%d", i))
			}
			var next spice.Node
			if i == k-1 {
				next = vdd
			} else {
				next = n.Node(prefix + fmt.Sprintf(".pstk%d", i))
			}
			n.AddMOS(prev, gate, next, mos(devices.PMOS, wp))
			prev = next
		}
		n.AddMOS(out, in, spice.Ground, mos(devices.NMOS, c.Wn))
		for i := 1; i < k; i++ {
			n.AddMOS(out, tieLow(fmt.Sprintf("nin%d", i)), spice.Ground, mos(devices.NMOS, c.Wn))
		}
		return -1, nil
	case AOI21, AOI22:
		// AOI21: out = !(A·B + C). Switching input = C (the fast path):
		// pulldown NMOS from out to ground gated by C; the A·B series branch
		// is tied off. Pullup: series (C, A-or-B parallel pair).
		// The effective drive is a 2-stack pullup, so widen PMOS.
		n.AddMOS(out, in, spice.Ground, mos(devices.NMOS, c.Wn))
		// Tied-off AB branch.
		stk := n.Node(prefix + ".abstk")
		n.AddMOS(out, tieLow("a"), stk, mos(devices.NMOS, 2*c.Wn))
		n.AddMOS(stk, tieLow("b"), spice.Ground, mos(devices.NMOS, 2*c.Wn))
		// Pullup: in-series with parallel tied-low pair (conducting).
		pm := n.Node(prefix + ".pmid")
		n.AddMOS(pm, tieLow("pa"), vdd, mos(devices.PMOS, 2*c.Wp))
		n.AddMOS(pm, tieLow("pb"), vdd, mos(devices.PMOS, 2*c.Wp))
		n.AddMOS(out, in, pm, mos(devices.PMOS, 2*c.Wp))
		return -1, nil
	case OAI21, OAI22:
		// OAI21: out = !((A+B)·C); switching input = C. Pullup PMOS direct;
		// pulldown: series (C, conducting parallel pair).
		n.AddMOS(out, in, vdd, mos(devices.PMOS, c.Wp))
		nm := n.Node(prefix + ".nmid")
		n.AddMOS(nm, tieHigh("na"), spice.Ground, mos(devices.NMOS, 2*c.Wn))
		n.AddMOS(nm, tieHigh("nb"), spice.Ground, mos(devices.NMOS, 2*c.Wn))
		n.AddMOS(out, in, nm, mos(devices.NMOS, 2*c.Wn))
		return -1, nil
	case TBUF:
		// Tri-state buffer, enabled: data path is a buffer whose output
		// stage sits in series with always-on enable devices.
		mid := n.Node(prefix + ".mid")
		n.AddMOS(mid, in, spice.Ground, mos(devices.NMOS, c.Wn/4))
		n.AddMOS(mid, in, vdd, mos(devices.PMOS, c.Wp/4))
		n.AddC(mid, spice.Ground, (c.Wn+c.Wp)*CGatePerMeter/2)
		nstk := n.Node(prefix + ".nstk")
		pstk := n.Node(prefix + ".pstk")
		n.AddMOS(out, tieHigh("en"), nstk, mos(devices.NMOS, 2*c.Wn))
		n.AddMOS(nstk, mid, spice.Ground, mos(devices.NMOS, 2*c.Wn))
		n.AddMOS(out, tieLow("enb"), pstk, mos(devices.PMOS, 2*c.Wp))
		n.AddMOS(pstk, mid, vdd, mos(devices.PMOS, 2*c.Wp))
		return 1, nil
	default:
		return 0, fmt.Errorf("%w %d (cell %q)", ErrUnknownKind, int(c.Kind), c.Name)
	}
}

// HoldState describes which rail the victim driver holds its output at.
type HoldState int

// Hold states.
const (
	HoldLow HoldState = iota
	HoldHigh
)

// BuildHolding instantiates the cell driving a constant output (the victim
// configuration): the switching input is tied so the output is held at the
// requested rail. It fails with ErrUnknownKind for non-library kinds.
func (c *Cell) BuildHolding(n *spice.Netlist, prefix string, out, vdd spice.Node, hold HoldState) error {
	in := n.Node(prefix + ".hold_in")
	pol := c.polarity()
	var v float64
	if (hold == HoldLow) == (pol < 0) {
		v = devices.Vdd025 // inverting cell holding low needs input high
	}
	n.Drive(in, waveform.Const(v))
	_, err := c.BuildDriver(n, prefix, in, out, vdd)
	return err
}

// polarity reports the sign of the cell's in→out path (−1 inverting).
func (c *Cell) polarity() int {
	switch c.Kind {
	case BUF, CLKBUF, DLY, DFF, LATCH, TBUF:
		return 1
	default:
		return -1
	}
}

// Polarity exposes the logic polarity of the drive path.
func (c *Cell) Polarity() int { return c.polarity() }

// MultiStage reports whether the cell's drive path contains more than one
// inverting stage (internal regeneration), which driver-model timing
// calibration accounts for.
func (c *Cell) MultiStage() bool {
	switch c.Kind {
	case BUF, CLKBUF, DLY, DFF, LATCH, TBUF:
		return true
	default:
		return false
	}
}
