package cells

import (
	"testing"

	"xtverify/internal/devices"
)

func TestInverterVTCCorners(t *testing.T) {
	c, _ := ByName("INV_X2")
	v, err := CharacterizeVTC(c)
	if err != nil {
		t.Fatal(err)
	}
	vdd := devices.Vdd025
	// Ordering of the corners.
	if !(0 < v.VIL && v.VIL < v.VM && v.VM < v.VIH && v.VIH < vdd) {
		t.Errorf("corner ordering wrong: VIL=%.2f VM=%.2f VIH=%.2f", v.VIL, v.VM, v.VIH)
	}
	// Healthy static CMOS: both noise margins positive and a good fraction
	// of the swing.
	if v.NML < 0.3 || v.NMH < 0.3 {
		t.Errorf("noise margins too small: NML=%.2f NMH=%.2f", v.NML, v.NMH)
	}
	// Full-swing outputs at the sweep extremes (VOL/VOH are measured at the
	// unity-gain corners, so they legitimately sit off-rail).
	if v.Vout[0] < 0.98*vdd || v.Vout[len(v.Vout)-1] > 0.02*vdd {
		t.Errorf("endpoints not rail-to-rail: %.2f .. %.2f", v.Vout[0], v.Vout[len(v.Vout)-1])
	}
	if v.VOH <= v.VOL {
		t.Errorf("corner outputs inverted: VOL=%.2f VOH=%.2f", v.VOL, v.VOH)
	}
}

func TestVTCSkewWithSizing(t *testing.T) {
	// NAND pulldown stacks are widened; the switching threshold of a NAND's
	// fast input is still within the sane mid region.
	c, _ := ByName("NAND2_X2")
	v, err := CharacterizeVTC(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.VM < 0.8 || v.VM > 2.2 {
		t.Errorf("NAND2 threshold %.2f outside sane band", v.VM)
	}
}

func TestVTCCache(t *testing.T) {
	c, _ := ByName("NOR2_X1")
	v1, err := CharacterizeVTC(c)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := CharacterizeVTC(c)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("VTC cache miss")
	}
}

func TestGlitchPropagates(t *testing.T) {
	c, _ := ByName("INV_X1")
	v, err := CharacterizeVTC(c)
	if err != nil {
		t.Fatal(err)
	}
	// A glitch below VIL on a low input is filtered; above it propagates.
	if v.GlitchPropagates(v.VIL-0.1, true) {
		t.Error("sub-VIL glitch should be filtered")
	}
	if !v.GlitchPropagates(v.VIL+0.3, true) {
		t.Error("super-VIL glitch should propagate")
	}
	// High-side: a negative glitch from Vdd.
	vdd := devices.Vdd025
	if v.GlitchPropagates(-(vdd-v.VIH)+0.1, false) {
		t.Error("shallow high-side glitch should be filtered")
	}
	if !v.GlitchPropagates(-(vdd-v.VIH)-0.3, false) {
		t.Error("deep high-side glitch should propagate")
	}
}

func TestNonInvertingVTC(t *testing.T) {
	c, _ := ByName("BUF_X2")
	v, err := CharacterizeVTC(c)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer output follows input; corners still ordered.
	if !(v.VIL < v.VIH) {
		t.Errorf("buffer corners: VIL=%.2f VIH=%.2f", v.VIL, v.VIH)
	}
	if v.VOH < v.VOL {
		t.Error("buffer output levels inverted")
	}
}
