package cells

import (
	"fmt"
	"sync"

	"xtverify/internal/devices"
	"xtverify/internal/spice"
	"xtverify/internal/waveform"
)

// Timing is an NLDM-style characterization table for one cell: propagation
// delay and output transition time indexed by [load][input slew], for rising
// and falling output transitions. This is the "cell timing library" of the
// paper's Section 4.1.
type Timing struct {
	Cell *Cell
	// Loads are the characterized load capacitances (farads).
	Loads []float64
	// Slews are the characterized input transition times (seconds, full
	// swing).
	Slews []float64
	// DelayRise[i][j] is the 50 %→50 % delay for a rising output with load
	// Loads[i] and input slew Slews[j]; DelayFall likewise.
	DelayRise, DelayFall [][]float64
	// TransRise and TransFall are full-swing-equivalent output transition
	// times (measured 20–80 % and scaled by 1/0.6).
	TransRise, TransFall [][]float64
}

// DefaultLoads and DefaultSlews are the characterization grids.
var (
	DefaultLoads = []float64{5e-15, 20e-15, 50e-15, 100e-15, 200e-15}
	DefaultSlews = []float64{50e-12, 100e-12, 200e-12, 400e-12}
)

// CharacterizeOptions tunes the characterization run.
type CharacterizeOptions struct {
	// Loads and Slews override the grids when non-nil.
	Loads, Slews []float64
	// Dt is the transient step (2 ps default).
	Dt float64
}

var (
	timingMu    sync.Mutex
	timingCache = map[string]*Timing{}
)

// CharacterizeCached characterizes with default grids, memoizing per cell —
// the paper's "one-time task".
func CharacterizeCached(c *Cell) (*Timing, error) {
	timingMu.Lock()
	defer timingMu.Unlock()
	if t, ok := timingCache[c.Name]; ok {
		return t, nil
	}
	t, err := Characterize(c, CharacterizeOptions{})
	if err != nil {
		return nil, err
	}
	timingCache[c.Name] = t
	return t, nil
}

// Characterize measures the cell against the SPICE-class engine.
func Characterize(c *Cell, opt CharacterizeOptions) (*Timing, error) {
	loads := opt.Loads
	if loads == nil {
		loads = DefaultLoads
	}
	slews := opt.Slews
	if slews == nil {
		slews = DefaultSlews
	}
	dt := opt.Dt
	if dt <= 0 {
		dt = 2e-12
	}
	tm := &Timing{
		Cell:  c,
		Loads: append([]float64(nil), loads...),
		Slews: append([]float64(nil), slews...),
	}
	alloc := func() [][]float64 {
		m := make([][]float64, len(loads))
		for i := range m {
			m[i] = make([]float64, len(slews))
		}
		return m
	}
	tm.DelayRise, tm.DelayFall = alloc(), alloc()
	tm.TransRise, tm.TransFall = alloc(), alloc()

	for i, load := range loads {
		for j, slew := range slews {
			for _, rising := range []bool{true, false} {
				delay, trans, err := measureArc(c, load, slew, rising, dt)
				if err != nil {
					return nil, fmt.Errorf("cells: characterize %s load=%g slew=%g: %w", c.Name, load, slew, err)
				}
				if rising {
					tm.DelayRise[i][j], tm.TransRise[i][j] = delay, trans
				} else {
					tm.DelayFall[i][j], tm.TransFall[i][j] = delay, trans
				}
			}
		}
	}
	return tm, nil
}

// measureArc runs one transient: input ramp chosen so the OUTPUT makes the
// requested transition; returns 50–50 delay and full-swing-equivalent output
// transition time.
func measureArc(c *Cell, load, slew float64, outRising bool, dt float64) (delay, trans float64, err error) {
	const vdd = devices.Vdd025
	n := spice.NewNetlist("char_" + c.Name)
	in := n.Node("in")
	out := n.Node("out")
	vddN := n.Node("vdd")
	n.Drive(vddN, waveform.Const(vdd))
	// Input polarity: for an inverting cell a rising output needs a falling
	// input.
	inRising := outRising
	if c.Polarity() < 0 {
		inRising = !outRising
	}
	t0 := 100e-12
	var v0, v1 float64
	if inRising {
		v0, v1 = 0, vdd
	} else {
		v0, v1 = vdd, 0
	}
	n.Drive(in, waveform.Ramp(v0, v1, t0, slew))
	if _, err := c.BuildDriver(n, "u", in, out, vddN); err != nil {
		return 0, 0, err
	}
	n.AddC(out, spice.Ground, load+c.OutDiffCapF)
	// Span scaled to the expected RC of this arc so fast cells don't pay for
	// slow ones; the step follows so every arc resolves its edge.
	rEst := EstimateDriveResistance(c, outRising)
	tEnd := t0 + slew + 10*rEst*(load+c.OutDiffCapF) + 1e-9
	step := dt
	if fine := tEnd / 2500; fine < step {
		step = fine
	}
	res, err := n.Transient(spice.Options{TEnd: tEnd, Dt: step})
	if err != nil {
		return 0, 0, err
	}
	w, err := res.Wave("out")
	if err != nil {
		return 0, 0, err
	}
	inCross := t0 + slew/2
	outCross, ok := w.LastCrossTime(vdd/2, outRising)
	if !ok {
		return 0, 0, fmt.Errorf("output never crossed 50%% (rising=%v)", outRising)
	}
	delay = outCross - inCross
	st, ok := w.SlewTime(0.2*vdd, 0.8*vdd, outRising)
	if !ok {
		return 0, 0, fmt.Errorf("output transition incomplete")
	}
	trans = st / 0.6
	return delay, trans, nil
}

// interp2 does bilinear interpolation with clamping on the (loads, slews)
// grid.
func (t *Timing) interp2(table [][]float64, load, slew float64) float64 {
	li, lf := gridPos(t.Loads, load)
	si, sf := gridPos(t.Slews, slew)
	v00 := table[li][si]
	v10 := table[li+1][si]
	v01 := table[li][si+1]
	v11 := table[li+1][si+1]
	return v00*(1-lf)*(1-sf) + v10*lf*(1-sf) + v01*(1-lf)*sf + v11*lf*sf
}

func gridPos(grid []float64, x float64) (i int, frac float64) {
	n := len(grid)
	if n == 1 {
		return 0, 0
	}
	if x <= grid[0] {
		return 0, 0
	}
	if x >= grid[n-1] {
		return n - 2, 1
	}
	for k := 1; k < n; k++ {
		if x < grid[k] {
			return k - 1, (x - grid[k-1]) / (grid[k] - grid[k-1])
		}
	}
	return n - 2, 1
}

// Delay interpolates the delay table (outRising selects the arc).
func (t *Timing) Delay(load, slew float64, outRising bool) float64 {
	if outRising {
		return t.interp2(t.DelayRise, load, slew)
	}
	return t.interp2(t.DelayFall, load, slew)
}

// Trans interpolates the output transition table.
func (t *Timing) Trans(load, slew float64, outRising bool) float64 {
	if outRising {
		return t.interp2(t.TransRise, load, slew)
	}
	return t.interp2(t.TransFall, load, slew)
}

// DriveResistance deduces the effective linear drive resistance for a
// transition from the slope of delay versus load (the Section 4.1 model):
// delay ≈ d₀ + ln(2)·R·C_load, so R = Δdelay / (ln 2 · ΔC).
func (t *Timing) DriveResistance(outRising bool) float64 {
	n := len(t.Loads)
	j := len(t.Slews) / 2
	var d1, d2 float64
	if outRising {
		d1, d2 = t.DelayRise[n-2][j], t.DelayRise[n-1][j]
	} else {
		d1, d2 = t.DelayFall[n-2][j], t.DelayFall[n-1][j]
	}
	const ln2 = 0.6931471805599453
	r := (d2 - d1) / (ln2 * (t.Loads[n-1] - t.Loads[n-2]))
	if r <= 0 {
		// Degenerate table (e.g. single-point grid): fall back to a
		// saturation-current estimate.
		r = EstimateDriveResistance(t.Cell, outRising)
	}
	return r
}

// EstimateDriveResistance is a closed-form fallback: Vdd/2 divided by the
// output-stage saturation current at full gate drive.
func EstimateDriveResistance(c *Cell, outRising bool) float64 {
	var m *devices.MOSFET
	if outRising {
		m = &devices.MOSFET{Params: devices.Tech025(devices.PMOS), W: c.Wp, L: LDrawn}
		id := m.IdsAt(0, 0, devices.Vdd025) // conducting PMOS, vsd = vdd
		if id < 0 {
			id = -id
		}
		return devices.Vdd025 / 2 / id
	}
	m = &devices.MOSFET{Params: devices.Tech025(devices.NMOS), W: c.Wn, L: LDrawn}
	id := m.IdsAt(devices.Vdd025, devices.Vdd025, 0)
	return devices.Vdd025 / 2 / id
}
