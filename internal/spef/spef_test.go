package spef

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
)

func roundTrip(t *testing.T, p *extract.Parasitics) *File {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRoundTripParallelWires(t *testing.T) {
	d, err := dsp.ParallelWires(3, 500, 1.2, []string{"INV_X2"}, "NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	f := roundTrip(t, p)
	if f.Design != d.Name {
		t.Errorf("design name %q", f.Design)
	}
	if len(f.Nets) != 3 {
		t.Fatalf("%d nets", len(f.Nets))
	}
	// Resistance round trip.
	n0, ok := f.NetByName("w0")
	if !ok {
		t.Fatal("w0 missing")
	}
	var rTot float64
	for _, r := range n0.Ress {
		rTot += r.Ohms
	}
	var want float64
	for _, r := range p.Nets[0].Res {
		want += r.Ohms
	}
	if math.Abs(rTot-want) > 1e-6*want {
		t.Errorf("resistance round trip: %g vs %g", rTot, want)
	}
	// Cap round trip within the fF print precision.
	var cTot float64
	for _, c := range n0.Caps {
		cTot += c.Farads
	}
	wantC := p.Nets[0].TotalCapF()
	for _, cf := range p.NetCouplingF[0] {
		wantC += cf
	}
	if math.Abs(cTot-wantC) > 1e-3*wantC {
		t.Errorf("cap round trip: %g vs %g", cTot, wantC)
	}
	// Pins preserved with directions.
	drv, rcv := 0, 0
	for _, pin := range n0.Pins {
		switch pin.Dir {
		case "O":
			drv++
		case "I":
			rcv++
		}
	}
	if drv != 1 || rcv != 1 {
		t.Errorf("pins: %d drivers, %d receivers", drv, rcv)
	}
}

func TestRoundTripDSPStats(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{Seed: 12, Channels: 1, TracksPerChannel: 25, ChannelLengthUM: 700, BusFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	f := roundTrip(t, p)
	st := f.Stats()
	ps := p.Stats()
	if st.Nets != ps.Nets {
		t.Errorf("nets %d vs %d", st.Nets, ps.Nets)
	}
	if st.CouplingCaps != ps.Couplings {
		t.Errorf("couplings %d vs %d", st.CouplingCaps, ps.Couplings)
	}
	if st.Resistors != ps.Resistors {
		t.Errorf("resistors %d vs %d", st.Resistors, ps.Resistors)
	}
	if math.Abs(st.TotalCapF-ps.TotalCapF) > 1e-3*ps.TotalCapF {
		t.Errorf("total cap %g vs %g", st.TotalCapF, ps.TotalCapF)
	}
}

func TestParseUnits(t *testing.T) {
	src := `*SPEF "x"
*DESIGN "u"
*C_UNIT 1 PF
*R_UNIT 1 KOHM
*D_NET n 1.0
*CAP
1 n:0 2.0
*RES
1 n:0 n:1 3.0
*END
`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	n := f.Nets[0]
	if math.Abs(n.Caps[0].Farads-2e-12) > 1e-20 {
		t.Errorf("PF cap = %g", n.Caps[0].Farads)
	}
	if math.Abs(n.Ress[0].Ohms-3000) > 1e-9 {
		t.Errorf("KOHM res = %g", n.Ress[0].Ohms)
	}
	if math.Abs(n.TotalCapF-1e-12) > 1e-20 {
		t.Errorf("total cap = %g", n.TotalCapF)
	}
}

func TestParseCoupling(t *testing.T) {
	src := `*SPEF "x"
*C_UNIT 1 FF
*D_NET a 1.0
*CAP
1 a:3 b:7 0.5
*END
`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c := f.Nets[0].Caps[0]
	if c.OtherNet != "b" || c.OtherNode != 7 || c.Node != 3 {
		t.Errorf("coupling parse: %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"data outside net": "1 a:0 2.0\n",
		"bad D_NET":        "*D_NET onlyname\n",
		"bad unit":         "*C_UNIT 1 PARSEC\n",
		"section outside":  "*CAP\n",
		"malformed cap":    "*D_NET n 1.0\n*CAP\n1 n:0\n*END\n",
		"bad node":         "*D_NET n 1.0\n*RES\n1 n:0 nocolon 5\n*END\n",
		"conn outside":     "*D_NET n 1.0\n*I a:Z O *N n:0\n*END\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: error not reported", name)
		}
	}
}

func TestNetNamesSorted(t *testing.T) {
	src := "*SPEF \"x\"\n*D_NET z 0\n*END\n*D_NET a 0\n*END\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	names := f.NetNamesSorted()
	if names[0] != "a" || names[1] != "z" {
		t.Errorf("sorted names %v", names)
	}
}

func TestNameMapEmittedAndResolved(t *testing.T) {
	d, err := dsp.ParallelWires(2, 300, 1.2, []string{"INV_X2"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*NAME_MAP") || !strings.Contains(out, "*1 w0") {
		t.Fatal("NAME_MAP section missing")
	}
	// Net bodies use mapped references, not raw names.
	if strings.Contains(out, "*D_NET w0") {
		t.Error("D_NET should use mapped reference")
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Parsed nets carry the resolved full names.
	if _, ok := f.NetByName("w0"); !ok {
		t.Fatal("mapped net name not resolved")
	}
	// Coupling references resolve through the map too.
	n0, _ := f.NetByName("w0")
	found := false
	for _, c := range n0.Caps {
		if c.OtherNet == "w1" {
			found = true
		}
		if strings.HasPrefix(c.OtherNet, "*") {
			t.Errorf("unresolved coupling reference %q", c.OtherNet)
		}
	}
	n1, _ := f.NetByName("w1")
	for _, c := range n1.Caps {
		if c.OtherNet == "w0" {
			found = true
		}
	}
	if !found {
		t.Error("coupling between w0 and w1 lost")
	}
}

// TestFileRoundTripByteIdentical is the serialization golden test: SPEF
// emitted from extraction, parsed back, and re-serialized with (*File).Write
// must reproduce the original bytes exactly — any drift in ordering, number
// formatting, name-map assignment or section layout shows up as a diff here.
func TestFileRoundTripByteIdentical(t *testing.T) {
	designs := map[string]func() (*extract.Parasitics, error){
		"parallel wires": func() (*extract.Parasitics, error) {
			d, err := dsp.ParallelWires(3, 500, 1.2, []string{"INV_X2"}, "NAND2_X1")
			if err != nil {
				return nil, err
			}
			return extract.Extract(d, extract.Tech025())
		},
		"synthetic dsp": func() (*extract.Parasitics, error) {
			d, err := dsp.Generate(dsp.Config{Seed: 12, Channels: 1, TracksPerChannel: 25,
				ChannelLengthUM: 700, BusFraction: 0.1})
			if err != nil {
				return nil, err
			}
			return extract.Extract(d, extract.Tech025())
		},
	}
	for name, gen := range designs {
		t.Run(name, func(t *testing.T) {
			p, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			var first bytes.Buffer
			if err := Write(&first, p); err != nil {
				t.Fatal(err)
			}
			f, err := Parse(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if err := f.Write(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				a := strings.Split(first.String(), "\n")
				b := strings.Split(second.String(), "\n")
				for i := 0; i < len(a) || i < len(b); i++ {
					var la, lb string
					if i < len(a) {
						la = a[i]
					}
					if i < len(b) {
						lb = b[i]
					}
					if la != lb {
						t.Fatalf("re-serialization differs at line %d:\n  wrote:   %q\n  rewrote: %q", i+1, la, lb)
					}
				}
				t.Fatal("re-serialization differs (length only)")
			}
			// The re-serialized text must itself parse to an identical file.
			f2, err := Parse(bytes.NewReader(second.Bytes()))
			if err != nil {
				t.Fatalf("re-serialized SPEF does not parse: %v", err)
			}
			if f2.Stats() != f.Stats() {
				t.Fatalf("stats drift across round trip: %+v vs %+v", f2.Stats(), f.Stats())
			}
		})
	}
}
