// Package spef reads and writes a faithful subset of the Standard Parasitic
// Exchange Format (IEEE 1481), the form in which "parasitic data from
// extraction" arrives in the paper's flow. Supported constructs: the header
// with unit declarations, *D_NET sections with *CONN, *CAP (grounded and
// coupling) and *RES subsections, and *END.
//
// Node names use the conventional <net>:<index> form; pin names use
// <instance>:<pin>.
package spef

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"xtverify/internal/extract"
)

// Pin is a *CONN entry.
type Pin struct {
	// Name is "instance:pin".
	Name string
	// Dir is "I" (input/receiver), "O" (output/driver) or "B".
	Dir string
	// Node is the net node index the pin attaches to.
	Node int
}

// Cap is a *CAP entry; coupling entries have OtherNet non-empty.
type Cap struct {
	Node      int
	OtherNet  string
	OtherNode int
	Farads    float64
}

// Res is a *RES entry.
type Res struct {
	A, B int
	Ohms float64
}

// Net is one *D_NET section.
type Net struct {
	Name      string
	TotalCapF float64
	Pins      []Pin
	Caps      []Cap
	Ress      []Res
}

// File is a parsed SPEF file.
type File struct {
	// Header fields (subset).
	Design   string
	CapUnitF float64 // multiplier: file cap value × CapUnitF = farads
	ResUnitO float64
	Nets     []*Net

	byName map[string]*Net
}

// NetByName finds a net section.
func (f *File) NetByName(name string) (*Net, bool) {
	n, ok := f.byName[name]
	return n, ok
}

// Write serializes extraction results as SPEF with a *NAME_MAP section:
// every net name is registered once and referenced as *<index> thereafter,
// the standard SPEF compression. Capacitances are emitted in femtofarads
// and resistances in ohms (declared in the header).
func Write(w io.Writer, p *extract.Parasitics) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "*SPEF \"IEEE 1481 subset\"\n")
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", p.Design.Name)
	fmt.Fprintf(bw, "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n")
	// Name map: net index i maps to *<i+1>.
	fmt.Fprintf(bw, "\n*NAME_MAP\n")
	ref := make([]string, len(p.Design.Nets))
	for i, n := range p.Design.Nets {
		ref[i] = fmt.Sprintf("*%d", i+1)
		fmt.Fprintf(bw, "*%d %s\n", i+1, n.Name)
	}
	// Index couplings by net for emission under the alphabetically first
	// net (each coupling appears once).
	coupByNet := make(map[int][]extract.Coupling)
	for _, c := range p.Couplings {
		coupByNet[c.NetA] = append(coupByNet[c.NetA], c)
	}
	for i, rc := range p.Nets {
		net := rc.Net
		total := rc.TotalCapF()
		// Sum in partner order so repeated writes are byte-identical.
		partners := make([]int, 0, len(p.NetCouplingF[i]))
		for j := range p.NetCouplingF[i] {
			partners = append(partners, j)
		}
		sort.Ints(partners)
		for _, j := range partners {
			total += p.NetCouplingF[i][j]
		}
		me := ref[i]
		fmt.Fprintf(bw, "\n*D_NET %s %.6f\n", me, total/1e-15)
		fmt.Fprintf(bw, "*CONN\n")
		for di, pin := range net.Drivers {
			fmt.Fprintf(bw, "*I %s:%s O *N %s:%d\n", pin.Inst, pin.Pin, me, rc.DriverNodes[di])
		}
		for ri, pin := range net.Receivers {
			fmt.Fprintf(bw, "*I %s:%s I *N %s:%d\n", pin.Inst, pin.Pin, me, rc.ReceiverNodes[ri])
		}
		fmt.Fprintf(bw, "*CAP\n")
		id := 1
		for node, c := range rc.CapF {
			if c <= 0 {
				continue
			}
			fmt.Fprintf(bw, "%d %s:%d %.6f\n", id, me, node, c/1e-15)
			id++
		}
		for _, c := range coupByNet[i] {
			fmt.Fprintf(bw, "%d %s:%d %s:%d %.6f\n", id, me, c.NodeA, ref[c.NetB], c.NodeB, c.Farads/1e-15)
			id++
		}
		fmt.Fprintf(bw, "*RES\n")
		id = 1
		for _, r := range rc.Res {
			fmt.Fprintf(bw, "%d %s:%d %s:%d %.6f\n", id, me, r.A, me, r.B, r.Ohms)
			id++
		}
		fmt.Fprintf(bw, "*END\n")
	}
	return bw.Flush()
}

// Write re-serializes a parsed File in the exact dialect the package-level
// Write emits: FF/OHM units, a *NAME_MAP built from the nets in order
// (net i referenced as *<i+1>), and *D_NET sections with *CONN, *CAP and
// *RES in stored order. For any file produced by the package-level Write,
// Parse followed by this method reproduces the input byte-for-byte (pinned
// by TestFileRoundTripByteIdentical); files using other units are
// normalized to FF/OHM on re-serialization.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "*SPEF \"IEEE 1481 subset\"\n")
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", f.Design)
	fmt.Fprintf(bw, "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n")
	fmt.Fprintf(bw, "\n*NAME_MAP\n")
	ref := make(map[string]string, len(f.Nets))
	for i, n := range f.Nets {
		ref[n.Name] = fmt.Sprintf("*%d", i+1)
		fmt.Fprintf(bw, "*%d %s\n", i+1, n.Name)
	}
	// Coupling partners that have no section of their own (possible in
	// hand-written files) are referenced by their literal name.
	refOf := func(name string) string {
		if r, ok := ref[name]; ok {
			return r
		}
		return name
	}
	for _, n := range f.Nets {
		me := refOf(n.Name)
		fmt.Fprintf(bw, "\n*D_NET %s %.6f\n", me, n.TotalCapF/1e-15)
		fmt.Fprintf(bw, "*CONN\n")
		for _, pin := range n.Pins {
			fmt.Fprintf(bw, "*I %s %s *N %s:%d\n", pin.Name, pin.Dir, me, pin.Node)
		}
		fmt.Fprintf(bw, "*CAP\n")
		for id, c := range n.Caps {
			if c.OtherNet == "" {
				fmt.Fprintf(bw, "%d %s:%d %.6f\n", id+1, me, c.Node, c.Farads/1e-15)
			} else {
				fmt.Fprintf(bw, "%d %s:%d %s:%d %.6f\n", id+1, me, c.Node, refOf(c.OtherNet), c.OtherNode, c.Farads/1e-15)
			}
		}
		fmt.Fprintf(bw, "*RES\n")
		for id, r := range n.Ress {
			fmt.Fprintf(bw, "%d %s:%d %s:%d %.6f\n", id+1, me, r.A, me, r.B, r.Ohms)
		}
		fmt.Fprintf(bw, "*END\n")
	}
	return bw.Flush()
}

// ParseError reports malformed SPEF input with the 1-based line it was
// detected on. Parse and StreamParse return it for every grammar failure;
// errors from the underlying reader or from a streaming sink are returned
// as-is, not wrapped.
type ParseError struct {
	// Line is the 1-based input line the malformation was detected on.
	Line int
	// Msg describes the malformation ("malformed *D_NET", "data outside
	// section", ...). May be empty when Err alone tells the story.
	Msg string
	// Err is the underlying cause (a strconv failure, a malformed node
	// reference); nil when Msg stands alone.
	Err error
}

// Error renders the historical "spef: line N: ..." form.
func (e *ParseError) Error() string {
	switch {
	case e.Msg != "" && e.Err != nil:
		return fmt.Sprintf("spef: line %d: %s: %v", e.Line, e.Msg, e.Err)
	case e.Err != nil:
		return fmt.Sprintf("spef: line %d: %v", e.Line, e.Err)
	default:
		return fmt.Sprintf("spef: line %d: %s", e.Line, e.Msg)
	}
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }

// Sink consumes a streamed SPEF parse in file order.
type Sink interface {
	// StartDesign is called when the *DESIGN line is read.
	StartDesign(name string) error
	// MapName is called for each *NAME_MAP entry, key before expansion
	// (e.g. "*7", "w0").
	MapName(key, full string) error
	// AddNet is called the moment a *D_NET section closes — at its *END,
	// at the next *D_NET, or at EOF. The net's own Name is resolved through
	// the map entries seen so far (matching Parse, which resolves names at
	// the *D_NET line); coupling references (Cap.OtherNet) are delivered
	// RAW because the name map may not be complete yet — resolve them
	// against the MapName stream, which is total only at EOF.
	AddNet(n *Net) error
}

// unitState carries the file-level unit multipliers, updated in place as
// declarations are read so Parse can expose the final values on File.
type unitState struct {
	capF float64
	resO float64
}

// StreamParse reads SPEF incrementally, handing each *D_NET section to sink
// as soon as it closes instead of materializing the whole file — memory is
// O(largest single net section). Malformed input returns a *ParseError
// carrying the offending line; a sink error aborts the parse and is
// returned unwrapped.
func StreamParse(r io.Reader, sink Sink) error {
	u := unitState{capF: 1e-15, resO: 1}
	return streamCore(r, &u, sink)
}

// streamCore is the single parse loop behind Parse and StreamParse.
func streamCore(r io.Reader, u *unitState, sink Sink) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *Net
	section := ""
	lineNo := 0
	nameMap := map[string]string{}
	resolve := func(s string) string {
		if full, ok := nameMap[s]; ok {
			return full
		}
		return s
	}
	flush := func() error {
		if cur == nil {
			return nil
		}
		n := cur
		cur = nil
		return sink.AddNet(n)
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "*SPEF"):
			// ignore
		case strings.HasPrefix(line, "*DESIGN"):
			name := strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "*DESIGN")), "\"")
			if err := sink.StartDesign(name); err != nil {
				return err
			}
		case strings.HasPrefix(line, "*C_UNIT"):
			mult, unit, err := parseUnit(fields)
			if err != nil {
				return &ParseError{Line: lineNo, Err: err}
			}
			switch unit {
			case "FF":
				u.capF = mult * 1e-15
			case "PF":
				u.capF = mult * 1e-12
			default:
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("unsupported cap unit %q", unit)}
			}
		case strings.HasPrefix(line, "*R_UNIT"):
			mult, unit, err := parseUnit(fields)
			if err != nil {
				return &ParseError{Line: lineNo, Err: err}
			}
			switch unit {
			case "OHM":
				u.resO = mult
			case "KOHM":
				u.resO = mult * 1e3
			default:
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("unsupported res unit %q", unit)}
			}
		case strings.HasPrefix(line, "*T_UNIT"), strings.HasPrefix(line, "*L_UNIT"):
			// accepted, unused
		case line == "*NAME_MAP":
			section = "*NAME_MAP"
		case section == "*NAME_MAP" && strings.HasPrefix(line, "*") && !strings.HasPrefix(line, "*D_NET"):
			if len(fields) != 2 {
				return &ParseError{Line: lineNo, Msg: "malformed name map entry"}
			}
			nameMap[fields[0]] = fields[1]
			if err := sink.MapName(fields[0], fields[1]); err != nil {
				return err
			}
		case strings.HasPrefix(line, "*D_NET"):
			if len(fields) != 3 {
				return &ParseError{Line: lineNo, Msg: "malformed *D_NET"}
			}
			tc, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return &ParseError{Line: lineNo, Msg: "bad total cap", Err: err}
			}
			if err := flush(); err != nil {
				return err
			}
			cur = &Net{Name: resolve(fields[1]), TotalCapF: tc * u.capF}
			section = ""
		case line == "*CONN" || line == "*CAP" || line == "*RES":
			if cur == nil {
				return &ParseError{Line: lineNo, Msg: "section outside *D_NET"}
			}
			section = line
		case line == "*END":
			section = ""
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "*I "):
			if cur == nil || section != "*CONN" {
				return &ParseError{Line: lineNo, Msg: "*I outside *CONN"}
			}
			// *I inst:pin DIR *N net:node
			if len(fields) < 5 || fields[3] != "*N" {
				return &ParseError{Line: lineNo, Msg: "malformed *I"}
			}
			_, node, err := splitNode(fields[4])
			if err != nil {
				return &ParseError{Line: lineNo, Err: err}
			}
			cur.Pins = append(cur.Pins, Pin{Name: fields[1], Dir: fields[2], Node: node})
		default:
			if cur == nil {
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("unexpected %q", line)}
			}
			switch section {
			case "*CAP":
				if err := parseCap(cur, fields, u.capF); err != nil {
					return &ParseError{Line: lineNo, Err: err}
				}
			case "*RES":
				if err := parseRes(cur, fields, u.resO); err != nil {
					return &ParseError{Line: lineNo, Err: err}
				}
			default:
				return &ParseError{Line: lineNo, Msg: "data outside section"}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

// materializeSink rebuilds the legacy whole-file view from the stream.
type materializeSink struct {
	f       *File
	nameMap map[string]string
}

func (m *materializeSink) StartDesign(name string) error { m.f.Design = name; return nil }

func (m *materializeSink) MapName(key, full string) error {
	m.nameMap[key] = full
	return nil
}

func (m *materializeSink) AddNet(n *Net) error {
	m.f.Nets = append(m.f.Nets, n)
	m.f.byName[n.Name] = n
	return nil
}

// Parse reads a SPEF file. It is the materializing front of StreamParse:
// the streamed nets are collected into a File and coupling references are
// resolved through the complete *NAME_MAP at EOF.
func Parse(r io.Reader) (*File, error) {
	f := &File{CapUnitF: 1e-15, ResUnitO: 1, byName: make(map[string]*Net)}
	ms := &materializeSink{f: f, nameMap: map[string]string{}}
	u := unitState{capF: 1e-15, resO: 1}
	if err := streamCore(r, &u, ms); err != nil {
		return nil, err
	}
	f.CapUnitF, f.ResUnitO = u.capF, u.resO
	// Resolve mapped names in coupling references.
	for _, n := range f.Nets {
		for i := range n.Caps {
			if full, ok := ms.nameMap[n.Caps[i].OtherNet]; n.Caps[i].OtherNet != "" && ok {
				n.Caps[i].OtherNet = full
			}
		}
	}
	return f, nil
}

func parseUnit(fields []string) (mult float64, unit string, err error) {
	if len(fields) != 3 {
		return 0, "", fmt.Errorf("malformed unit declaration")
	}
	mult, err = strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return 0, "", err
	}
	return mult, strings.ToUpper(fields[2]), nil
}

func splitNode(s string) (net string, node int, err error) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return "", 0, fmt.Errorf("node %q missing ':'", s)
	}
	node, err = strconv.Atoi(s[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("node %q: %w", s, err)
	}
	return s[:i], node, nil
}

func parseCap(cur *Net, fields []string, unit float64) error {
	switch len(fields) {
	case 3: // grounded: id node value
		_, node, err := splitNode(fields[1])
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return err
		}
		cur.Caps = append(cur.Caps, Cap{Node: node, Farads: v * unit})
	case 4: // coupling: id nodeA nodeB value
		_, node, err := splitNode(fields[1])
		if err != nil {
			return err
		}
		oNet, oNode, err := splitNode(fields[2])
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return err
		}
		cur.Caps = append(cur.Caps, Cap{Node: node, OtherNet: oNet, OtherNode: oNode, Farads: v * unit})
	default:
		return fmt.Errorf("malformed *CAP entry")
	}
	return nil
}

func parseRes(cur *Net, fields []string, unit float64) error {
	if len(fields) != 4 {
		return fmt.Errorf("malformed *RES entry")
	}
	_, a, err := splitNode(fields[1])
	if err != nil {
		return err
	}
	_, b, err := splitNode(fields[2])
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return err
	}
	cur.Ress = append(cur.Ress, Res{A: a, B: b, Ohms: v * unit})
	return nil
}

// Stats summarizes a parsed file.
type Stats struct {
	Nets, Pins, GroundCaps, CouplingCaps, Resistors int
	TotalCapF                                       float64
}

// Stats aggregates counts.
func (f *File) Stats() Stats {
	var s Stats
	s.Nets = len(f.Nets)
	for _, n := range f.Nets {
		s.Pins += len(n.Pins)
		s.Resistors += len(n.Ress)
		for _, c := range n.Caps {
			if c.OtherNet == "" {
				s.GroundCaps++
			} else {
				s.CouplingCaps++
			}
			s.TotalCapF += c.Farads
		}
	}
	return s
}

// NetNamesSorted returns all net names in sorted order.
func (f *File) NetNamesSorted() []string {
	out := make([]string, 0, len(f.Nets))
	for _, n := range f.Nets {
		out = append(out, n.Name)
	}
	sort.Strings(out)
	return out
}
