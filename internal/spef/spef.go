// Package spef reads and writes a faithful subset of the Standard Parasitic
// Exchange Format (IEEE 1481), the form in which "parasitic data from
// extraction" arrives in the paper's flow. Supported constructs: the header
// with unit declarations, *D_NET sections with *CONN, *CAP (grounded and
// coupling) and *RES subsections, and *END.
//
// Node names use the conventional <net>:<index> form; pin names use
// <instance>:<pin>.
package spef

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"xtverify/internal/extract"
)

// Pin is a *CONN entry.
type Pin struct {
	// Name is "instance:pin".
	Name string
	// Dir is "I" (input/receiver), "O" (output/driver) or "B".
	Dir string
	// Node is the net node index the pin attaches to.
	Node int
}

// Cap is a *CAP entry; coupling entries have OtherNet non-empty.
type Cap struct {
	Node      int
	OtherNet  string
	OtherNode int
	Farads    float64
}

// Res is a *RES entry.
type Res struct {
	A, B int
	Ohms float64
}

// Net is one *D_NET section.
type Net struct {
	Name      string
	TotalCapF float64
	Pins      []Pin
	Caps      []Cap
	Ress      []Res
}

// File is a parsed SPEF file.
type File struct {
	// Header fields (subset).
	Design   string
	CapUnitF float64 // multiplier: file cap value × CapUnitF = farads
	ResUnitO float64
	Nets     []*Net

	byName map[string]*Net
}

// NetByName finds a net section.
func (f *File) NetByName(name string) (*Net, bool) {
	n, ok := f.byName[name]
	return n, ok
}

// Write serializes extraction results as SPEF with a *NAME_MAP section:
// every net name is registered once and referenced as *<index> thereafter,
// the standard SPEF compression. Capacitances are emitted in femtofarads
// and resistances in ohms (declared in the header).
func Write(w io.Writer, p *extract.Parasitics) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "*SPEF \"IEEE 1481 subset\"\n")
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", p.Design.Name)
	fmt.Fprintf(bw, "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n")
	// Name map: net index i maps to *<i+1>.
	fmt.Fprintf(bw, "\n*NAME_MAP\n")
	ref := make([]string, len(p.Design.Nets))
	for i, n := range p.Design.Nets {
		ref[i] = fmt.Sprintf("*%d", i+1)
		fmt.Fprintf(bw, "*%d %s\n", i+1, n.Name)
	}
	// Index couplings by net for emission under the alphabetically first
	// net (each coupling appears once).
	coupByNet := make(map[int][]extract.Coupling)
	for _, c := range p.Couplings {
		coupByNet[c.NetA] = append(coupByNet[c.NetA], c)
	}
	for i, rc := range p.Nets {
		net := rc.Net
		total := rc.TotalCapF()
		// Sum in partner order so repeated writes are byte-identical.
		partners := make([]int, 0, len(p.NetCouplingF[i]))
		for j := range p.NetCouplingF[i] {
			partners = append(partners, j)
		}
		sort.Ints(partners)
		for _, j := range partners {
			total += p.NetCouplingF[i][j]
		}
		me := ref[i]
		fmt.Fprintf(bw, "\n*D_NET %s %.6f\n", me, total/1e-15)
		fmt.Fprintf(bw, "*CONN\n")
		for di, pin := range net.Drivers {
			fmt.Fprintf(bw, "*I %s:%s O *N %s:%d\n", pin.Inst, pin.Pin, me, rc.DriverNodes[di])
		}
		for ri, pin := range net.Receivers {
			fmt.Fprintf(bw, "*I %s:%s I *N %s:%d\n", pin.Inst, pin.Pin, me, rc.ReceiverNodes[ri])
		}
		fmt.Fprintf(bw, "*CAP\n")
		id := 1
		for node, c := range rc.CapF {
			if c <= 0 {
				continue
			}
			fmt.Fprintf(bw, "%d %s:%d %.6f\n", id, me, node, c/1e-15)
			id++
		}
		for _, c := range coupByNet[i] {
			fmt.Fprintf(bw, "%d %s:%d %s:%d %.6f\n", id, me, c.NodeA, ref[c.NetB], c.NodeB, c.Farads/1e-15)
			id++
		}
		fmt.Fprintf(bw, "*RES\n")
		id = 1
		for _, r := range rc.Res {
			fmt.Fprintf(bw, "%d %s:%d %s:%d %.6f\n", id, me, r.A, me, r.B, r.Ohms)
			id++
		}
		fmt.Fprintf(bw, "*END\n")
	}
	return bw.Flush()
}

// Write re-serializes a parsed File in the exact dialect the package-level
// Write emits: FF/OHM units, a *NAME_MAP built from the nets in order
// (net i referenced as *<i+1>), and *D_NET sections with *CONN, *CAP and
// *RES in stored order. For any file produced by the package-level Write,
// Parse followed by this method reproduces the input byte-for-byte (pinned
// by TestFileRoundTripByteIdentical); files using other units are
// normalized to FF/OHM on re-serialization.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "*SPEF \"IEEE 1481 subset\"\n")
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", f.Design)
	fmt.Fprintf(bw, "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n")
	fmt.Fprintf(bw, "\n*NAME_MAP\n")
	ref := make(map[string]string, len(f.Nets))
	for i, n := range f.Nets {
		ref[n.Name] = fmt.Sprintf("*%d", i+1)
		fmt.Fprintf(bw, "*%d %s\n", i+1, n.Name)
	}
	// Coupling partners that have no section of their own (possible in
	// hand-written files) are referenced by their literal name.
	refOf := func(name string) string {
		if r, ok := ref[name]; ok {
			return r
		}
		return name
	}
	for _, n := range f.Nets {
		me := refOf(n.Name)
		fmt.Fprintf(bw, "\n*D_NET %s %.6f\n", me, n.TotalCapF/1e-15)
		fmt.Fprintf(bw, "*CONN\n")
		for _, pin := range n.Pins {
			fmt.Fprintf(bw, "*I %s %s *N %s:%d\n", pin.Name, pin.Dir, me, pin.Node)
		}
		fmt.Fprintf(bw, "*CAP\n")
		for id, c := range n.Caps {
			if c.OtherNet == "" {
				fmt.Fprintf(bw, "%d %s:%d %.6f\n", id+1, me, c.Node, c.Farads/1e-15)
			} else {
				fmt.Fprintf(bw, "%d %s:%d %s:%d %.6f\n", id+1, me, c.Node, refOf(c.OtherNet), c.OtherNode, c.Farads/1e-15)
			}
		}
		fmt.Fprintf(bw, "*RES\n")
		for id, r := range n.Ress {
			fmt.Fprintf(bw, "%d %s:%d %s:%d %.6f\n", id+1, me, r.A, me, r.B, r.Ohms)
		}
		fmt.Fprintf(bw, "*END\n")
	}
	return bw.Flush()
}

// Parse reads a SPEF file.
func Parse(r io.Reader) (*File, error) {
	f := &File{CapUnitF: 1e-15, ResUnitO: 1, byName: make(map[string]*Net)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *Net
	section := ""
	lineNo := 0
	nameMap := map[string]string{}
	resolve := func(s string) string {
		if full, ok := nameMap[s]; ok {
			return full
		}
		return s
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "*SPEF"):
			// ignore
		case strings.HasPrefix(line, "*DESIGN"):
			f.Design = strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "*DESIGN")), "\"")
		case strings.HasPrefix(line, "*C_UNIT"):
			mult, unit, err := parseUnit(fields)
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
			}
			switch unit {
			case "FF":
				f.CapUnitF = mult * 1e-15
			case "PF":
				f.CapUnitF = mult * 1e-12
			default:
				return nil, fmt.Errorf("spef: line %d: unsupported cap unit %q", lineNo, unit)
			}
		case strings.HasPrefix(line, "*R_UNIT"):
			mult, unit, err := parseUnit(fields)
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
			}
			switch unit {
			case "OHM":
				f.ResUnitO = mult
			case "KOHM":
				f.ResUnitO = mult * 1e3
			default:
				return nil, fmt.Errorf("spef: line %d: unsupported res unit %q", lineNo, unit)
			}
		case strings.HasPrefix(line, "*T_UNIT"), strings.HasPrefix(line, "*L_UNIT"):
			// accepted, unused
		case line == "*NAME_MAP":
			section = "*NAME_MAP"
		case section == "*NAME_MAP" && strings.HasPrefix(line, "*") && !strings.HasPrefix(line, "*D_NET"):
			if len(fields) != 2 {
				return nil, fmt.Errorf("spef: line %d: malformed name map entry", lineNo)
			}
			nameMap[fields[0]] = fields[1]
		case strings.HasPrefix(line, "*D_NET"):
			if len(fields) != 3 {
				return nil, fmt.Errorf("spef: line %d: malformed *D_NET", lineNo)
			}
			tc, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: bad total cap: %w", lineNo, err)
			}
			cur = &Net{Name: resolve(fields[1]), TotalCapF: tc * f.CapUnitF}
			f.Nets = append(f.Nets, cur)
			f.byName[cur.Name] = cur
			section = ""
		case line == "*CONN" || line == "*CAP" || line == "*RES":
			if cur == nil {
				return nil, fmt.Errorf("spef: line %d: section outside *D_NET", lineNo)
			}
			section = line
		case line == "*END":
			cur, section = nil, ""
		case strings.HasPrefix(line, "*I "):
			if cur == nil || section != "*CONN" {
				return nil, fmt.Errorf("spef: line %d: *I outside *CONN", lineNo)
			}
			// *I inst:pin DIR *N net:node
			if len(fields) < 5 || fields[3] != "*N" {
				return nil, fmt.Errorf("spef: line %d: malformed *I", lineNo)
			}
			_, node, err := splitNode(fields[4])
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
			}
			cur.Pins = append(cur.Pins, Pin{Name: fields[1], Dir: fields[2], Node: node})
		default:
			if cur == nil {
				return nil, fmt.Errorf("spef: line %d: unexpected %q", lineNo, line)
			}
			switch section {
			case "*CAP":
				if err := parseCap(cur, fields, f.CapUnitF); err != nil {
					return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
				}
			case "*RES":
				if err := parseRes(cur, fields, f.ResUnitO); err != nil {
					return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
				}
			default:
				return nil, fmt.Errorf("spef: line %d: data outside section", lineNo)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Resolve mapped names in coupling references.
	for _, n := range f.Nets {
		for i := range n.Caps {
			if n.Caps[i].OtherNet != "" {
				n.Caps[i].OtherNet = resolve(n.Caps[i].OtherNet)
			}
		}
	}
	return f, nil
}

func parseUnit(fields []string) (mult float64, unit string, err error) {
	if len(fields) != 3 {
		return 0, "", fmt.Errorf("malformed unit declaration")
	}
	mult, err = strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return 0, "", err
	}
	return mult, strings.ToUpper(fields[2]), nil
}

func splitNode(s string) (net string, node int, err error) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return "", 0, fmt.Errorf("node %q missing ':'", s)
	}
	node, err = strconv.Atoi(s[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("node %q: %w", s, err)
	}
	return s[:i], node, nil
}

func parseCap(cur *Net, fields []string, unit float64) error {
	switch len(fields) {
	case 3: // grounded: id node value
		_, node, err := splitNode(fields[1])
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return err
		}
		cur.Caps = append(cur.Caps, Cap{Node: node, Farads: v * unit})
	case 4: // coupling: id nodeA nodeB value
		_, node, err := splitNode(fields[1])
		if err != nil {
			return err
		}
		oNet, oNode, err := splitNode(fields[2])
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return err
		}
		cur.Caps = append(cur.Caps, Cap{Node: node, OtherNet: oNet, OtherNode: oNode, Farads: v * unit})
	default:
		return fmt.Errorf("malformed *CAP entry")
	}
	return nil
}

func parseRes(cur *Net, fields []string, unit float64) error {
	if len(fields) != 4 {
		return fmt.Errorf("malformed *RES entry")
	}
	_, a, err := splitNode(fields[1])
	if err != nil {
		return err
	}
	_, b, err := splitNode(fields[2])
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return err
	}
	cur.Ress = append(cur.Ress, Res{A: a, B: b, Ohms: v * unit})
	return nil
}

// Stats summarizes a parsed file.
type Stats struct {
	Nets, Pins, GroundCaps, CouplingCaps, Resistors int
	TotalCapF                                       float64
}

// Stats aggregates counts.
func (f *File) Stats() Stats {
	var s Stats
	s.Nets = len(f.Nets)
	for _, n := range f.Nets {
		s.Pins += len(n.Pins)
		s.Resistors += len(n.Ress)
		for _, c := range n.Caps {
			if c.OtherNet == "" {
				s.GroundCaps++
			} else {
				s.CouplingCaps++
			}
			s.TotalCapF += c.Farads
		}
	}
	return s
}

// NetNamesSorted returns all net names in sorted order.
func (f *File) NetNamesSorted() []string {
	out := make([]string, 0, len(f.Nets))
	for _, n := range f.Nets {
		out = append(out, n.Name)
	}
	sort.Strings(out)
	return out
}
