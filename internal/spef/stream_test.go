package spef

import (
	"bytes"
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
)

// recordingSink captures the stream verbatim.
type recordingSink struct {
	design  string
	nameMap map[string]string
	nets    []*Net
	failOn  string // net name to fail AddNet on
	failErr error
}

func (r *recordingSink) StartDesign(name string) error { r.design = name; return nil }

func (r *recordingSink) MapName(key, full string) error {
	if r.nameMap == nil {
		r.nameMap = map[string]string{}
	}
	r.nameMap[key] = full
	return nil
}

func (r *recordingSink) AddNet(n *Net) error {
	if r.failOn != "" && n.Name == r.failOn {
		return r.failErr
	}
	r.nets = append(r.nets, n)
	return nil
}

// TestStreamParseMalformedMidStream pins the typed error contract: a record
// that goes bad mid-stream surfaces a *ParseError naming the exact input
// line, and every net that closed before the bad record was already
// delivered to the sink.
func TestStreamParseMalformedMidStream(t *testing.T) {
	// All inputs share a valid first net on lines 1-4 so netsBefore
	// checks eager delivery ahead of the failure.
	const goodNet = "*D_NET n1 1.5\n*CAP\n1 n1:0 2.0\n*END\n"
	cases := []struct {
		name       string
		src        string
		wantLine   int
		wantMsg    string // substring of Error()
		netsBefore int
		wrapped    bool // Err (the cause) must be non-nil
	}{
		{
			name:       "cap entry arity",
			src:        goodNet + "*D_NET n2 1.0\n*CAP\n1 n2:0\n*END\n",
			wantLine:   7,
			wantMsg:    "malformed *CAP entry",
			netsBefore: 1,
			wrapped:    true,
		},
		{
			name:       "res node missing colon",
			src:        goodNet + "*D_NET n2 1.0\n*RES\n1 n2:0 nocolon 5\n*END\n",
			wantLine:   7,
			wantMsg:    `node "nocolon" missing ':'`,
			netsBefore: 1,
			wrapped:    true,
		},
		{
			name:       "non-numeric cap value",
			src:        goodNet + "*D_NET n2 1.0\n*CAP\n1 n2:0 tiny\n*END\n",
			wantLine:   7,
			wantMsg:    "invalid syntax",
			netsBefore: 1,
			wrapped:    true,
		},
		{
			name:       "bad total cap",
			src:        goodNet + "*D_NET n2 huge\n",
			wantLine:   5,
			wantMsg:    "bad total cap",
			netsBefore: 1,
			wrapped:    true,
		},
		{
			name:       "malformed D_NET arity",
			src:        goodNet + "*D_NET onlyname\n",
			wantLine:   5,
			wantMsg:    "malformed *D_NET",
			netsBefore: 1,
		},
		{
			name:       "conn entry outside CONN",
			src:        goodNet + "*D_NET n2 1.0\n*CAP\n*I u1:A I *N n2:0\n*END\n",
			wantLine:   7,
			wantMsg:    "*I outside *CONN",
			netsBefore: 1,
		},
		{
			name:       "malformed conn entry",
			src:        goodNet + "*D_NET n2 1.0\n*CONN\n*I u1:A I n2:0\n*END\n",
			wantLine:   7,
			wantMsg:    "malformed *I",
			netsBefore: 1,
		},
		{
			name:       "data outside any section",
			src:        goodNet + "*D_NET n2 1.0\n1 n2:0 2.0\n*END\n",
			wantLine:   6,
			wantMsg:    "data outside section",
			netsBefore: 1,
		},
		{
			name:       "stray data after END",
			src:        goodNet + "1 n1:0 2.0\n",
			wantLine:   5,
			wantMsg:    `unexpected "1 n1:0 2.0"`,
			netsBefore: 1,
		},
		{
			name:       "unsupported unit between nets",
			src:        goodNet + "*C_UNIT 1 PARSEC\n",
			wantLine:   5,
			wantMsg:    `unsupported cap unit "PARSEC"`,
			netsBefore: 1,
		},
		{
			name:       "malformed name map entry",
			src:        "*NAME_MAP\n*1 w0\n*2\n",
			wantLine:   3,
			wantMsg:    "malformed name map entry",
			netsBefore: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &recordingSink{}
			err := StreamParse(strings.NewReader(tc.src), sink)
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("StreamParse = %v, want *ParseError", err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("error line = %d, want %d (%v)", pe.Line, tc.wantLine, pe)
			}
			//xtlint:errcmp parser test asserting the rendered line prefix
			if !strings.Contains(pe.Error(), "spef: line "+strconv.Itoa(tc.wantLine)+": ") {
				t.Errorf("error %q lacks the line prefix", pe.Error())
			}
			//xtlint:errcmp parser test asserting the diagnostic message content
			if !strings.Contains(pe.Error(), tc.wantMsg) {
				t.Errorf("error %q lacks %q", pe.Error(), tc.wantMsg)
			}
			if tc.wrapped && pe.Unwrap() == nil {
				t.Errorf("error %v carries no cause", pe)
			}
			if len(sink.nets) != tc.netsBefore {
				t.Errorf("sink saw %d nets before the error, want %d", len(sink.nets), tc.netsBefore)
			}
			// Parse must reject the same input with the same rendering.
			//xtlint:errcmp the contract under test is identical rendering across both parse paths
			if _, perr := Parse(strings.NewReader(tc.src)); perr == nil || perr.Error() != err.Error() {
				t.Errorf("Parse error %v differs from StreamParse error %v", perr, err)
			}
		})
	}
}

// TestStreamParseEagerHandoff proves nets are delivered as their sections
// close, not at EOF: a sink error on the second net aborts the parse with
// that error, unwrapped, after the first net arrived.
func TestStreamParseEagerHandoff(t *testing.T) {
	src := "*D_NET a 1.0\n*END\n*D_NET b 2.0\n*END\n*D_NET c 3.0\n*END\n"
	boom := errors.New("sink rejected")
	sink := &recordingSink{failOn: "b", failErr: boom}
	if err := StreamParse(strings.NewReader(src), sink); !errors.Is(err, boom) {
		t.Fatalf("StreamParse = %v, want the sink's own error", err)
	}
	if len(sink.nets) != 1 || sink.nets[0].Name != "a" {
		t.Fatalf("sink saw %v before the abort, want just net a", sink.nets)
	}
}

// TestStreamParseMatchesParse checks the equivalence contract on real
// extractor output: the streamed net sequence, resolved with the full name
// map, is exactly Parse's materialized view.
func TestStreamParseMatchesParse(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{Seed: 12, Channels: 1, TracksPerChannel: 25,
		ChannelLengthUM: 700, BusFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	f, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	if err := StreamParse(bytes.NewReader(data), sink); err != nil {
		t.Fatal(err)
	}
	if sink.design != f.Design {
		t.Errorf("streamed design %q vs %q", sink.design, f.Design)
	}
	if len(sink.nets) != len(f.Nets) {
		t.Fatalf("streamed %d nets, Parse materialized %d", len(sink.nets), len(f.Nets))
	}
	for i, sn := range sink.nets {
		// Streamed coupling refs are raw; apply the EOF resolution Parse
		// performs and the structures must match exactly.
		for j := range sn.Caps {
			if full, ok := sink.nameMap[sn.Caps[j].OtherNet]; sn.Caps[j].OtherNet != "" && ok {
				sn.Caps[j].OtherNet = full
			}
		}
		if !reflect.DeepEqual(sn, f.Nets[i]) {
			t.Errorf("net %d differs:\nstreamed:     %+v\nmaterialized: %+v", i, sn, f.Nets[i])
		}
	}
}
