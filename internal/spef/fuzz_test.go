package spef

import (
	"bytes"
	"strings"
	"testing"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
)

// FuzzReadSPEF throws arbitrary byte streams at the SPEF parser. Parse must
// either return a typed error or a File whose accessors are safe to walk —
// never panic. Seeds include a real Write round-trip output so coverage
// starts from the grammar the writer emits, plus handcrafted near-valid
// corpus entries targeting each section parser.
func FuzzReadSPEF(f *testing.F) {
	d, err := dsp.ParallelWires(3, 300, 1.2, []string{"INV_X2"}, "INV_X1")
	if err != nil {
		f.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	for _, seed := range []string{
		"",
		"*SPEF \"IEEE 1481-1998\"\n*DESIGN \"x\"\n",
		"*C_UNIT 1 FF\n*R_UNIT 1 OHM\n",
		"*C_UNIT 1 XX\n",
		"*NAME_MAP\n*1 netA\n*2\n",
		"*D_NET n1 1.5\n*CONN\n*I u1:A I *N n1:0\n*END\n",
		"*D_NET n1 1.5\n*CAP\n1 n1:0 2.0\n2 n1:0 n2:1 0.5\n*END\n",
		"*D_NET n1 1.5\n*RES\n1 n1:0 n1:1 12.5\n*END\n",
		"*D_NET n1 nan\n",
		"*D_NET n1 1e309\n",
		"*CAP\n1 n1:0 2.0\n",
		"*D_NET n1 1.5\n*CAP\n1 n1: 2.0\n*END\n",
		"*D_NET n1 1.5\n*RES\n1 : : x\n*END\n",
		"*I u1:A I *N n1:0\n",
		"stray data\n",
		"*D_NET *7 1.0\n*END\n*NAME_MAP\n*7 mapped\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(strings.NewReader(string(data)))
		if err != nil {
			if file != nil {
				t.Fatalf("Parse returned both a file and error %v", err)
			}
			return
		}
		// A successful parse must yield a walkable structure.
		_ = file.Stats()
		_ = file.NetNamesSorted()
		for _, n := range file.Nets {
			if _, ok := file.NetByName(n.Name); !ok {
				t.Fatalf("net %q not resolvable via NetByName", n.Name)
			}
		}
	})
}

// FuzzStreamParse throws arbitrary byte streams at the streaming parser and
// holds it to the equivalence contract with Parse: identical accept/reject
// decisions with identical error text, and on success a streamed net
// sequence exactly matching the materialized file — i.e. no net is ever
// retained in the parser (leaked) or delivered twice. Seeds mirror
// FuzzReadSPEF's corpus so both parsers explore the same grammar space.
func FuzzStreamParse(f *testing.F) {
	d, err := dsp.ParallelWires(3, 300, 1.2, []string{"INV_X2"}, "INV_X1")
	if err != nil {
		f.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	for _, seed := range []string{
		"",
		"*SPEF \"IEEE 1481-1998\"\n*DESIGN \"x\"\n",
		"*C_UNIT 1 FF\n*R_UNIT 1 OHM\n",
		"*C_UNIT 1 XX\n",
		"*NAME_MAP\n*1 netA\n*2\n",
		"*D_NET n1 1.5\n*CONN\n*I u1:A I *N n1:0\n*END\n",
		"*D_NET n1 1.5\n*CAP\n1 n1:0 2.0\n2 n1:0 n2:1 0.5\n*END\n",
		"*D_NET n1 1.5\n*RES\n1 n1:0 n1:1 12.5\n*END\n",
		"*D_NET n1 nan\n",
		"*D_NET n1 1e309\n",
		"*CAP\n1 n1:0 2.0\n",
		"*D_NET n1 1.5\n*CAP\n1 n1: 2.0\n*END\n",
		"*D_NET n1 1.5\n*RES\n1 : : x\n*END\n",
		"*I u1:A I *N n1:0\n",
		"stray data\n",
		"*D_NET *7 1.0\n*END\n*NAME_MAP\n*7 mapped\n",
		"*D_NET a 1.0\n*END\n*D_NET b 2.0\n*D_NET c 3.0\n*END\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, perr := Parse(strings.NewReader(string(data)))
		sink := &recordingSink{}
		serr := StreamParse(strings.NewReader(string(data)), sink)
		if (perr == nil) != (serr == nil) {
			t.Fatalf("accept/reject disagreement: Parse=%v StreamParse=%v", perr, serr)
		}
		if perr != nil {
			//xtlint:errcmp the fuzz contract is identical error rendering across both parse paths
			if perr.Error() != serr.Error() {
				t.Fatalf("error text differs: Parse=%q StreamParse=%q", perr, serr)
			}
			return
		}
		if len(sink.nets) != len(file.Nets) {
			t.Fatalf("streamed %d nets, materialized %d — a net leaked or duplicated", len(sink.nets), len(file.Nets))
		}
		for i, sn := range sink.nets {
			mn := file.Nets[i]
			if sn.Name != mn.Name || len(sn.Caps) != len(mn.Caps) ||
				len(sn.Ress) != len(mn.Ress) || len(sn.Pins) != len(mn.Pins) {
				t.Fatalf("net %d drifted: streamed %+v vs materialized %+v", i, sn, mn)
			}
		}
	})
}
