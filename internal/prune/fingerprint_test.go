package prune

import (
	"testing"

	"xtverify/internal/sta"
)

// TestInputSignerCertifiesCircuit is the soundness contract the reverify
// layer leans on: whenever two clusters' input fingerprints agree, the
// circuits BuildCircuit assembles for them must have equal structural
// fingerprints — reusing one's analysis for the other is then exact. The
// reverse direction (equal circuits, equal inputs) is also checked on this
// design: the input form should not be so over-strict that the bus-pattern
// sharing Fingerprint was designed for is lost.
func TestInputSignerCertifiesCircuit(t *testing.T) {
	p := extracted(t, channelCfg(7, 80))
	if err := sta.Annotate(p.Design, p, sta.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	cls := Clusters(p, Options{CapRatioThreshold: 0.02, MinCouplingF: 0.5e-15, MaxAggressors: 6})
	if len(cls) < 20 {
		t.Fatalf("only %d clusters; design too small for a pair census", len(cls))
	}
	signer := NewInputSigner(p)
	inputs := make([]string, len(cls))
	circuits := make([]string, len(cls))
	for i, cl := range cls {
		inputs[i] = string(signer.AppendCluster(nil, cl))
		ckt, err := BuildCircuit(p, cl)
		if err != nil {
			t.Fatal(err)
		}
		circuits[i] = Fingerprint(ckt, 0, 0, false)
	}
	sharedPairs := 0
	for i := range cls {
		for j := i + 1; j < len(cls); j++ {
			inEq := inputs[i] == inputs[j]
			cktEq := circuits[i] == circuits[j]
			if inEq && !cktEq {
				t.Fatalf("clusters %d/%d: equal input fingerprints but different circuits (unsound reuse)", i, j)
			}
			if cktEq && !inEq {
				t.Errorf("clusters %d/%d: equal circuits but different input fingerprints (lost sharing)", i, j)
			}
			if inEq {
				sharedPairs++
			}
		}
	}
	t.Logf("%d clusters, %d structurally shared pairs", len(cls), sharedPairs)
}

// TestInputSignerSensitivity mutates single circuit inputs and expects the
// fingerprint to move: a resistance, a grounded cap, a coupling value, and a
// node-count change must all be visible, or reuse could splice a stale
// result over a real edit.
func TestInputSignerSensitivity(t *testing.T) {
	p := extracted(t, channelCfg(9, 40))
	if err := sta.Annotate(p.Design, p, sta.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	cls := Clusters(p, Options{CapRatioThreshold: 0.02, MinCouplingF: 0.5e-15, MaxAggressors: 6})
	if len(cls) == 0 {
		t.Fatal("no clusters")
	}
	cl := cls[0]
	signer := NewInputSigner(p)
	orig := string(signer.AppendCluster(nil, cl))

	mutate := func(name string, apply, undo func()) {
		apply()
		got := string(NewInputSigner(p).AppendCluster(nil, cl))
		undo()
		if got == orig {
			t.Errorf("%s: fingerprint unchanged", name)
		}
		if back := string(NewInputSigner(p).AppendCluster(nil, cl)); back != orig {
			t.Fatalf("%s: undo did not restore the fingerprint", name)
		}
	}

	rc := p.Nets[cl.Victim]
	if len(rc.Res) > 0 {
		old := rc.Res[0].Ohms
		mutate("victim resistance", func() { rc.Res[0].Ohms *= 1.0000001 }, func() { rc.Res[0].Ohms = old })
	}
	if len(rc.CapF) > 0 {
		old := rc.CapF[0]
		mutate("victim grounded cap", func() { rc.CapF[0] += 1e-18 }, func() { rc.CapF[0] = old })
	}
	for ci := range p.Couplings {
		c := &p.Couplings[ci]
		if c.NetA == cl.Victim || c.NetB == cl.Victim {
			old := c.Farads
			mutate("victim coupling value", func() { c.Farads *= 1.0000001 }, func() { c.Farads = old })
			break
		}
	}
	oldX := rc.NodeX
	mutate("victim node count",
		func() { rc.NodeX = append(append([]float64{}, oldX...), 0) },
		func() { rc.NodeX = oldX })
}
