// Streaming cluster discovery: a union-find over the live ingest frontier
// that closes coupled components the moment their last member retires and
// prunes them into analysis-ready clusters — without ever holding the whole
// chip's parasitics.
//
// Identity with the materialized path is structural, not approximate. A
// closed component carries every net and every coupling that can influence
// its victims (couplings never cross components), its nets are renumbered by
// a monotone map (ascending global index → ascending local index), and its
// couplings keep the canonical global sort order. PruneVictim's partner
// iteration, the aggressor ordering tie-breaks, and BuildCircuit's coupling
// walk therefore visit values in exactly the order the whole-chip
// computation would, so every float accumulation — kept/dropped totals,
// node caps, MNA stamps — reproduces bit for bit.
package prune

import (
	"fmt"
	"sort"

	"xtverify/internal/design"
	"xtverify/internal/extract"
)

// StreamedCluster is one pruned analysis unit emitted by the streaming
// clusterer: a Cluster whose indices are local to the component-scoped
// parasitics in Par.
type StreamedCluster struct {
	// GlobalVictim is the victim's index in the full design — the key
	// report assembly sorts by.
	GlobalVictim int
	// Par is the component-scoped parasitics (Par.Design is the
	// component-scoped design, victims and aggressors renumbered 0..n-1 in
	// ascending global order).
	Par *extract.Parasitics
	// Cluster is the pruned cluster in local indices.
	Cluster *Cluster
}

// ClosedComponent is one coupled component whose last member retired.
type ClosedComponent struct {
	// Members lists the component's global net indices, ascending — the
	// local index of a net in the component-scoped parasitics is its
	// position here.
	Members []int
	// Clusters holds the component's eligible victims in ascending global
	// index order; empty when pruning kept no aggressor for any member.
	Clusters []*StreamedCluster
}

// netEntry is the retained state for one live (or closed-pending) net.
type netEntry struct {
	net *design.Net
	rc  *extract.NetRC
	// comp lists complementary partners in mark order.
	comp []int
}

// StreamClusterer consumes the extract.Streamer's per-net output and emits
// closed components eagerly. Memory is O(live components): a net's state is
// dropped the moment its component closes.
type StreamClusterer struct {
	opt        Options
	tech       *extract.Tech
	designName string

	entries map[int]*netEntry
	parent  map[int]int
	comps   map[int]*ufComponent
}

type ufComponent struct {
	members   []int
	couplings []extract.Coupling
	live      int
}

// NewStreamClusterer returns a clusterer for one streamed run. designName
// and tech are stamped onto every component-scoped design/parasitics.
func NewStreamClusterer(designName string, tech *extract.Tech, opt Options) *StreamClusterer {
	if tech == nil {
		tech = extract.Tech025()
	}
	return &StreamClusterer{
		opt:        opt,
		tech:       tech,
		designName: designName,
		entries:    make(map[int]*netEntry),
		parent:     make(map[int]int),
		comps:      make(map[int]*ufComponent),
	}
}

// SetDesignName renames the design stamped onto component-scoped views —
// for callers (the DEF streaming path) that learn the name from the input
// header after construction. Must be called before the first component
// closes.
func (s *StreamClusterer) SetDesignName(name string) { s.designName = name }

func (s *StreamClusterer) find(x int) int {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// AddNet admits one net together with the couplings its arrival finalized
// (both straight from extract.Streamer.AddNet).
func (s *StreamClusterer) AddNet(net *design.Net, rc *extract.NetRC, final []extract.Coupling) {
	idx := net.Index
	s.entries[idx] = &netEntry{net: net, rc: rc}
	s.parent[idx] = idx
	s.comps[idx] = &ufComponent{members: []int{idx}, live: 1}
	for _, c := range final {
		ra, rb := s.find(c.NetA), s.find(c.NetB)
		if ra != rb {
			// Union by member count; the merged order is irrelevant — a
			// closing component re-sorts members and couplings.
			ca, cb := s.comps[ra], s.comps[rb]
			if len(ca.members) < len(cb.members) {
				ra, rb, ca, cb = rb, ra, cb, ca
			}
			s.parent[rb] = ra
			ca.members = append(ca.members, cb.members...)
			ca.couplings = append(ca.couplings, cb.couplings...)
			ca.live += cb.live
			delete(s.comps, rb)
		}
		root := s.find(c.NetA)
		s.comps[root].couplings = append(s.comps[root].couplings, c)
	}
}

// MarkComplementary records a Q/QN pair. Pairs whose members land in
// different components are irrelevant (logic correlation is only consulted
// within a cluster) and are dropped silently, as are pairs naming nets that
// already retired into a closed — necessarily disjoint — component.
func (s *StreamClusterer) MarkComplementary(a, b int) {
	ea, eb := s.entries[a], s.entries[b]
	if ea == nil || eb == nil {
		return
	}
	ea.comp = append(ea.comp, b)
	eb.comp = append(eb.comp, a)
}

// Retire marks nets as frontier-retired (from extract.Streamer.AddNet's
// retired list) and returns every component this closed, in retirement
// order. A closed component can never reopen: a future net cannot couple to
// a retired one.
func (s *StreamClusterer) Retire(nets []int) ([]*ClosedComponent, error) {
	var out []*ClosedComponent
	for _, idx := range nets {
		root := s.find(idx)
		c := s.comps[root]
		c.live--
		if c.live > 0 {
			continue
		}
		closed, err := s.close(c)
		if err != nil {
			return out, err
		}
		delete(s.comps, root)
		out = append(out, closed)
	}
	return out, nil
}

// Finish closes every remaining component (callers normally retire all nets
// via extract.Streamer.Finish first, making this a no-op safety net).
func (s *StreamClusterer) Finish() ([]*ClosedComponent, error) {
	roots := make([]int, 0, len(s.comps))
	for r := range s.comps {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out []*ClosedComponent
	for _, r := range roots {
		closed, err := s.close(s.comps[r])
		if err != nil {
			return out, err
		}
		delete(s.comps, r)
		out = append(out, closed)
	}
	return out, nil
}

// LiveNets returns how many nets are currently retained (frontier-live or
// waiting for their component to close).
func (s *StreamClusterer) LiveNets() int { return len(s.entries) }

// close builds the component-scoped design + parasitics and prunes every
// eligible victim.
func (s *StreamClusterer) close(c *ufComponent) (*ClosedComponent, error) {
	members := c.members
	sort.Ints(members)
	rank := make(map[int]int, len(members))
	for local, gi := range members {
		rank[gi] = local
	}

	md := design.New(s.designName)
	seen := make(map[string]bool, len(members))
	for _, gi := range members {
		e := s.entries[gi]
		if seen[e.net.Name] {
			return nil, fmt.Errorf("prune: duplicate net name %q in streamed component", e.net.Name)
		}
		seen[e.net.Name] = true
		n := *e.net // shallow copy; AddNet rewrites Index to the local rank
		md.AddNet(&n)
	}
	// Complementary pairs with both ends in this component, ordered by
	// later member then mark order — the chronological order the
	// materialized design records.
	for local, gi := range members {
		for _, partner := range s.entries[gi].comp {
			if pr, ok := rank[partner]; ok && pr < local {
				md.MarkComplementary(pr, local)
			}
		}
	}

	mp := &extract.Parasitics{Design: md, Tech: s.tech}
	for local, gi := range members {
		rc := *s.entries[gi].rc // shallow copy so Net can point at the local copy
		rc.Net = md.Nets[local]
		mp.Nets = append(mp.Nets, &rc)
	}
	// Couplings in canonical global-key order; the monotone rank map
	// preserves both the sort order and the NetA < NetB canonical form, so
	// the local list is exactly the global list's component subsequence.
	extract.SortCouplings(c.couplings)
	mp.Couplings = make([]extract.Coupling, 0, len(c.couplings))
	for _, cc := range c.couplings {
		mp.Couplings = append(mp.Couplings, extract.Coupling{
			NetA: rank[cc.NetA], NodeA: cc.NodeA,
			NetB: rank[cc.NetB], NodeB: cc.NodeB,
			Farads: cc.Farads,
		})
	}
	mp.NetCouplingF = make([]map[int]float64, len(mp.Nets))
	for i := range mp.NetCouplingF {
		mp.NetCouplingF[i] = make(map[int]float64)
	}
	for _, cc := range mp.Couplings {
		mp.NetCouplingF[cc.NetA][cc.NetB] += cc.Farads
		mp.NetCouplingF[cc.NetB][cc.NetA] += cc.Farads
	}

	closed := &ClosedComponent{Members: members}
	for local, net := range md.Nets {
		if net.ClockNet {
			continue
		}
		cl := PruneVictim(mp, local, s.opt)
		if len(cl.Aggressors) > 0 {
			closed.Clusters = append(closed.Clusters, &StreamedCluster{
				GlobalVictim: members[local],
				Par:          mp,
				Cluster:      cl,
			})
		}
	}

	for _, gi := range members {
		delete(s.entries, gi)
		delete(s.parent, gi)
	}
	return closed, nil
}
