// Package prune implements the paper's Section 3 front-end: filtering the
// extracted coupling graph down to the small clusters that deserve detailed
// analysis.
//
// Raw extraction couples almost everything to everything nearby — the paper
// reports clusters of about 105 nets on average before pruning. A
// capacitance-ratio rule (keep an aggressor only if its coupling into the
// victim is a meaningful fraction of the victim's total capacitance),
// optionally sharpened by timing-window overlap, decouples the weak
// aggressors (their coupling capacitance is grounded, staying conservative
// for loading) and leaves 2–5-net clusters.
package prune

import (
	"fmt"
	"sort"

	"xtverify/internal/circuit"
	"xtverify/internal/design"
	"xtverify/internal/extract"
)

// Options controls pruning.
type Options struct {
	// CapRatioThreshold keeps aggressor a for victim v when
	// Cc(v,a)/Ctotal(v) ≥ threshold. Default 0.02.
	CapRatioThreshold float64
	// MinCouplingF is an absolute floor below which coupling is always
	// grounded. Default 0.5 fF.
	MinCouplingF float64
	// UseTimingWindows drops aggressors whose switching window cannot
	// overlap the victim's (the paper's timing correlation).
	UseTimingWindows bool
	// MaxAggressors caps the cluster size, keeping the strongest couplers.
	// 0 means unlimited.
	MaxAggressors int
}

// DefaultOptions returns the standard settings.
func DefaultOptions() Options {
	return Options{CapRatioThreshold: 0.02, MinCouplingF: 0.5e-15}
}

// RawClusters returns the connected components of the unpruned coupling
// graph, each as a sorted list of net indices (single-net components
// included). This is the "before pruning" population of the paper's
// statistics.
func RawClusters(p *extract.Parasitics) [][]int {
	n := len(p.Nets)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, c := range p.Couplings {
		union(c.NetA, c.NetB)
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	// Emit components in sorted-root order, not map order. Each group is
	// already ascending (members were appended in index order), and its
	// root is not necessarily its minimum, so the final sort by first
	// element stays — but it now permutes a deterministic input.
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Aggressor describes one kept aggressor of a cluster.
type Aggressor struct {
	// Net is the aggressor net index.
	Net int
	// CouplingF is the total coupling capacitance into the victim.
	CouplingF float64
}

// Cluster is the pruned analysis unit for one victim net.
type Cluster struct {
	// Victim is the victim net index.
	Victim int
	// Aggressors are the kept aggressors, strongest first.
	Aggressors []Aggressor
	// DroppedF is the victim coupling capacitance that was grounded.
	DroppedF float64
	// KeptF is the victim coupling capacitance retained.
	KeptF float64
}

// Size returns the number of nets in the cluster (victim + aggressors).
func (c *Cluster) Size() int { return 1 + len(c.Aggressors) }

// PruneVictim applies the capacitance-ratio and timing rules for one victim.
func PruneVictim(p *extract.Parasitics, victim int, opt Options) *Cluster {
	d := p.Design
	vNet := d.Nets[victim]
	// Iterate couplings in net order, not map order: the kept/dropped
	// capacitance accumulations below must not depend on map iteration
	// randomness or repeated runs drift in the last ulps.
	partners := make([]int, 0, len(p.NetCouplingF[victim]))
	for a := range p.NetCouplingF[victim] {
		partners = append(partners, a)
	}
	sort.Ints(partners)
	// Victim total capacitance: grounded plus all coupling.
	cTot := p.Nets[victim].TotalCapF()
	for _, a := range partners {
		cTot += p.NetCouplingF[victim][a]
	}
	cl := &Cluster{Victim: victim}
	for _, a := range partners {
		f := p.NetCouplingF[victim][a]
		keep := f >= opt.MinCouplingF && (cTot == 0 || f/cTot >= opt.CapRatioThreshold)
		if keep && opt.UseTimingWindows {
			if !vNet.Window.Overlaps(d.Nets[a].Window) {
				keep = false
			}
		}
		if keep {
			cl.Aggressors = append(cl.Aggressors, Aggressor{Net: a, CouplingF: f})
			cl.KeptF += f
		} else {
			cl.DroppedF += f
		}
	}
	sort.Slice(cl.Aggressors, func(i, j int) bool {
		if cl.Aggressors[i].CouplingF != cl.Aggressors[j].CouplingF {
			return cl.Aggressors[i].CouplingF > cl.Aggressors[j].CouplingF
		}
		return cl.Aggressors[i].Net < cl.Aggressors[j].Net
	})
	if opt.MaxAggressors > 0 && len(cl.Aggressors) > opt.MaxAggressors {
		for _, a := range cl.Aggressors[opt.MaxAggressors:] {
			cl.KeptF -= a.CouplingF
			cl.DroppedF += a.CouplingF
		}
		cl.Aggressors = cl.Aggressors[:opt.MaxAggressors]
	}
	return cl
}

// Clusters prunes every eligible victim (non-clock nets with at least one
// kept aggressor).
func Clusters(p *extract.Parasitics, opt Options) []*Cluster {
	var out []*Cluster
	for i, net := range p.Design.Nets {
		if net.ClockNet {
			continue
		}
		cl := PruneVictim(p, i, opt)
		if len(cl.Aggressors) > 0 {
			out = append(out, cl)
		}
	}
	return out
}

// Stats summarizes pruning effectiveness, the paper's "105 nets before →
// 2 to 5 after" measurement.
type Stats struct {
	// RawClusters and RawMeanSize describe coupled components before
	// pruning (components of size ≥ 2).
	RawClusters int
	RawMeanSize float64
	// RawNetMeanSize is the size-weighted mean — the cluster size the
	// average coupled net finds itself in, which is how the paper's
	// "each cluster contained on average 105 nets" reads from a victim's
	// perspective.
	RawNetMeanSize float64
	RawMaxSize     int
	// PrunedClusters and PrunedMeanSize describe the per-victim clusters.
	PrunedClusters int
	PrunedMeanSize float64
	PrunedMaxSize  int
	// KeptCouplingFrac is the fraction of coupling capacitance retained.
	KeptCouplingFrac float64
}

// ComputeStats runs both phases and aggregates.
func ComputeStats(p *extract.Parasitics, opt Options) Stats {
	var s Stats
	raw := RawClusters(p)
	totalNets := 0
	sumSq := 0
	for _, g := range raw {
		if len(g) < 2 {
			continue
		}
		s.RawClusters++
		s.RawMeanSize += float64(len(g))
		totalNets += len(g)
		sumSq += len(g) * len(g)
		if len(g) > s.RawMaxSize {
			s.RawMaxSize = len(g)
		}
	}
	if s.RawClusters > 0 {
		s.RawMeanSize /= float64(s.RawClusters)
	}
	if totalNets > 0 {
		s.RawNetMeanSize = float64(sumSq) / float64(totalNets)
	}
	var kept, dropped float64
	for _, cl := range Clusters(p, opt) {
		s.PrunedClusters++
		s.PrunedMeanSize += float64(cl.Size())
		if cl.Size() > s.PrunedMaxSize {
			s.PrunedMaxSize = cl.Size()
		}
		kept += cl.KeptF
		dropped += cl.DroppedF
	}
	if s.PrunedClusters > 0 {
		s.PrunedMeanSize /= float64(s.PrunedClusters)
	}
	if kept+dropped > 0 {
		s.KeptCouplingFrac = kept / (kept + dropped)
	}
	return s
}

// BuildCircuit flattens a pruned cluster into the RC circuit handed to model
// order reduction: member nets' wire RC and grounded caps, retained
// couplings between members, grounded replacements for couplings to
// non-members, driver ports for every member driver pin and receiver ports
// on the victim.
//
// Port order: victim drivers first, then aggressor drivers in cluster order,
// then victim receivers. The returned portNets maps each port to its
// member-net position (0 = victim, 1.. = aggressors).
func BuildCircuit(p *extract.Parasitics, cl *Cluster) (ckt *circuit.Circuit, err error) {
	members := make([]int, 0, cl.Size())
	members = append(members, cl.Victim)
	for _, a := range cl.Aggressors {
		members = append(members, a.Net)
	}
	memberPos := make(map[int]int, len(members))
	for pos, m := range members {
		memberPos[m] = pos
	}
	ckt = circuit.New(fmt.Sprintf("cluster_%s", p.Design.Nets[cl.Victim].Name))
	nodeName := func(net, node int) string {
		return fmt.Sprintf("%s:%d", p.Design.Nets[net].Name, node)
	}
	// Wire RC of every member.
	for pos, m := range members {
		rc := p.Nets[m]
		for k := range rc.NodeX {
			ckt.Node(nodeName(m, k))
		}
		for ri, r := range rc.Res {
			a := ckt.Node(nodeName(m, r.A))
			b := ckt.Node(nodeName(m, r.B))
			ckt.AddResistor(fmt.Sprintf("R%s_%d", p.Design.Nets[m].Name, ri), a, b, r.Ohms)
		}
		for k, c := range rc.CapF {
			if c > 0 {
				ckt.AddCapacitor(fmt.Sprintf("C%s_%d", p.Design.Nets[m].Name, k), ckt.Node(nodeName(m, k)), circuit.Ground, c)
			}
		}
		// Driver ports.
		for di, dn := range rc.DriverNodes {
			ckt.AddPort(fmt.Sprintf("drv_%s_%d", p.Design.Nets[m].Name, di), ckt.Node(nodeName(m, dn)), circuit.PortDriver, pos)
		}
		_ = pos
	}
	// Victim receiver ports.
	vrc := p.Nets[cl.Victim]
	for ri, rn := range vrc.ReceiverNodes {
		ckt.AddPort(fmt.Sprintf("rcv_%s_%d", p.Design.Nets[cl.Victim].Name, ri), ckt.Node(nodeName(cl.Victim, rn)), circuit.PortReceiver, 0)
	}
	// Couplings.
	kept := make(map[int]bool, len(members))
	for _, m := range members {
		kept[m] = true
	}
	// Track which aggressors were retained for the victim so victim↔dropped
	// couplings are grounded.
	keptForVictim := make(map[int]bool, len(cl.Aggressors))
	for _, a := range cl.Aggressors {
		keptForVictim[a.Net] = true
	}
	for ci, c := range p.Couplings {
		aIn, bIn := kept[c.NetA], kept[c.NetB]
		switch {
		case aIn && bIn:
			// Coupling between two members. Victim↔aggressor couplings are
			// always retained; aggressor↔aggressor couplings are retained
			// too (they shape the aggressor waveforms).
			na := ckt.Node(nodeName(c.NetA, c.NodeA))
			nb := ckt.Node(nodeName(c.NetB, c.NodeB))
			ckt.AddCoupling(fmt.Sprintf("CC%d", ci), na, nb, c.Farads)
		case aIn:
			na := ckt.Node(nodeName(c.NetA, c.NodeA))
			ckt.AddCapacitor(fmt.Sprintf("CCg%d", ci), na, circuit.Ground, c.Farads)
		case bIn:
			nb := ckt.Node(nodeName(c.NetB, c.NodeB))
			ckt.AddCapacitor(fmt.Sprintf("CCg%d", ci), nb, circuit.Ground, c.Farads)
		}
	}
	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("prune: cluster circuit invalid: %w", err)
	}
	return ckt, nil
}

// MemberNets returns the cluster's net indices, victim first.
func (c *Cluster) MemberNets() []int {
	out := []int{c.Victim}
	for _, a := range c.Aggressors {
		out = append(out, a.Net)
	}
	return out
}

// VictimNet is a convenience accessor.
func (c *Cluster) VictimNet(d *design.Design) *design.Net { return d.Nets[c.Victim] }
