package prune_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"xtverify/internal/cells"
	"xtverify/internal/design"
	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/prune"
)

// streamAll feeds a materialized design through the streaming kernel +
// clusterer and returns every emitted cluster plus the closed components.
func streamAll(t *testing.T, d *design.Design, slackUM float64, opt prune.Options) ([]*prune.StreamedCluster, []*prune.ClosedComponent) {
	t.Helper()
	str := extract.NewStreamer(nil, slackUM)
	sc := prune.NewStreamClusterer(d.Name, str.Tech(), opt)
	var clusters []*prune.StreamedCluster
	var comps []*prune.ClosedComponent
	drain := func(closed []*prune.ClosedComponent, err error) {
		if err != nil {
			t.Fatalf("retire: %v", err)
		}
		for _, c := range closed {
			comps = append(comps, c)
			clusters = append(clusters, c.Clusters...)
		}
	}
	marks := make(map[int][][2]int)
	for _, p := range d.Complementary {
		later := p[0]
		if p[1] > later {
			later = p[1]
		}
		marks[later] = append(marks[later], p)
	}
	for _, net := range d.Nets {
		rc, final, retired, err := str.AddNet(net)
		if err != nil {
			t.Fatalf("AddNet(%s): %v", net.Name, err)
		}
		sc.AddNet(net, rc, final)
		// Replay complementary marks at the chronological point the
		// generator would issue them (right after the later member).
		for _, p := range marks[net.Index] {
			sc.MarkComplementary(p[0], p[1])
		}
		drain(sc.Retire(retired))
	}
	drain(sc.Retire(str.Finish()))
	drain(sc.Finish())
	if got := sc.LiveNets(); got != 0 {
		t.Fatalf("clusterer leaked %d live nets after Finish", got)
	}
	return clusters, comps
}

// checkEquality verifies the streamed cluster set matches the materialized
// one exactly: same victims, same aggressors with bitwise-equal coupling,
// bitwise-equal kept/dropped totals, and fingerprint-identical circuits.
func checkEquality(t *testing.T, d *design.Design, slackUM float64, opt prune.Options) {
	t.Helper()
	p, err := extract.Extract(d, nil)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	want := prune.Clusters(p, opt)
	wantBy := make(map[int]*prune.Cluster, len(want))
	for _, cl := range want {
		wantBy[cl.Victim] = cl
	}

	got, comps := streamAll(t, d, slackUM, opt)
	if len(got) != len(want) {
		t.Fatalf("streamed %d clusters, materialized %d", len(got), len(want))
	}
	// Raw component population must match RawClusters' ≥2-sized components.
	raw := 0
	for _, g := range prune.RawClusters(p) {
		if len(g) >= 2 {
			raw++
		}
	}
	rawStreamed := 0
	for _, c := range comps {
		if len(c.Members) >= 2 {
			rawStreamed++
		}
	}
	if raw != rawStreamed {
		t.Fatalf("streamed %d raw components (size ≥ 2), materialized %d", rawStreamed, raw)
	}

	for _, scl := range got {
		w := wantBy[scl.GlobalVictim]
		if w == nil {
			t.Fatalf("streamed victim %d not in materialized cluster set", scl.GlobalVictim)
		}
		members := memberIndex(t, comps, scl)
		if len(scl.Cluster.Aggressors) != len(w.Aggressors) {
			t.Fatalf("victim %d: %d streamed aggressors, want %d", scl.GlobalVictim, len(scl.Cluster.Aggressors), len(w.Aggressors))
		}
		for i, a := range scl.Cluster.Aggressors {
			if members[a.Net] != w.Aggressors[i].Net {
				t.Errorf("victim %d aggressor %d: net %d, want %d", scl.GlobalVictim, i, members[a.Net], w.Aggressors[i].Net)
			}
			if a.CouplingF != w.Aggressors[i].CouplingF {
				t.Errorf("victim %d aggressor %d: coupling %g, want %g (must be bitwise equal)", scl.GlobalVictim, i, a.CouplingF, w.Aggressors[i].CouplingF)
			}
		}
		if scl.Cluster.KeptF != w.KeptF || scl.Cluster.DroppedF != w.DroppedF {
			t.Errorf("victim %d: kept/dropped %g/%g, want %g/%g", scl.GlobalVictim, scl.Cluster.KeptF, scl.Cluster.DroppedF, w.KeptF, w.DroppedF)
		}

		wantCkt, err := prune.BuildCircuit(p, w)
		if err != nil {
			t.Fatalf("materialized BuildCircuit(%d): %v", w.Victim, err)
		}
		gotCkt, err := prune.BuildCircuit(scl.Par, scl.Cluster)
		if err != nil {
			t.Fatalf("streamed BuildCircuit(%d): %v", scl.GlobalVictim, err)
		}
		wantFP := prune.Fingerprint(wantCkt, 1e-9, 8, false)
		gotFP := prune.Fingerprint(gotCkt, 1e-9, 8, false)
		if wantFP != gotFP {
			t.Errorf("victim %d: circuit fingerprint diverged between streamed and materialized builds", scl.GlobalVictim)
		}
	}
}

// memberIndex finds the component a streamed cluster came from and returns
// its local→global index map.
func memberIndex(t *testing.T, comps []*prune.ClosedComponent, scl *prune.StreamedCluster) []int {
	t.Helper()
	for _, c := range comps {
		for _, cl := range c.Clusters {
			if cl == scl {
				return c.Members
			}
		}
	}
	t.Fatalf("streamed cluster for victim %d not attached to any component", scl.GlobalVictim)
	return nil
}

// TestStreamEqualityChipSpanningCluster drives the worst case for closure:
// one component that spans the whole chip, closing only at Finish.
func TestStreamEqualityChipSpanningCluster(t *testing.T) {
	d, err := dsp.ParallelWires(40, 400, 1.2, []string{"BUF_X4", "INV_X2"}, "LATCH_X1")
	if err != nil {
		t.Fatal(err)
	}
	checkEquality(t, d, extract.DefaultFrontierSlackUM, prune.DefaultOptions())
	// A bounded frontier must hold every net of the open component anyway.
	_, comps := streamAll(t, d, extract.DefaultFrontierSlackUM, prune.DefaultOptions())
	if len(comps) != 1 || len(comps[0].Members) != 40 {
		t.Fatalf("expected one 40-net chip-spanning component, got %d components", len(comps))
	}
}

// TestStreamEqualityPathologicalOrder feeds nets whose y positions zig-zag
// inside the frontier slack — legal but maximally out of order — with
// vertical stubs thrown in so both piece orientations cross bucket
// boundaries.
func TestStreamEqualityPathologicalOrder(t *testing.T) {
	buf, err := cells.Lookup("BUF_X4")
	if err != nil {
		t.Fatal(err)
	}
	lat, err := cells.Lookup("LATCH_X1")
	if err != nil {
		t.Fatal(err)
	}
	d := design.New("zigzag")
	// Tracks at y = i*1.1 but emitted in a 0,2,1,4,3,... shuffle (each net
	// arrives at most 1.1 µm below the watermark, well inside the slack),
	// alternating with isolated pairs far away in x.
	order := []int{0, 2, 1, 4, 3, 6, 5, 8, 7, 9, 11, 10, 13, 12, 15, 14, 17, 16, 19, 18}
	for _, i := range order {
		y := float64(i) * 1.1
		stub := 3.0 + float64(i%5)
		net := &design.Net{
			Name:      fmt.Sprintf("zz%d", i),
			Drivers:   []design.Pin{{Inst: fmt.Sprintf("U%d", i), Cell: buf, Pin: "Z", PosX: 0, PosY: y}},
			Receivers: []design.Pin{{Inst: fmt.Sprintf("L%d", i), Cell: lat, Pin: "D", PosX: 300, PosY: y}},
			Route: []design.Segment{
				{Layer: 2, X0: 0, Y0: y, X1: 300, Y1: y, Width: 0.6},
				{Layer: 1, X0: 0, Y0: y, X1: 0, Y1: y + stub, Width: 0.6},
				{Layer: 1, X0: 300, Y0: y, X1: 300, Y1: y - stub, Width: 0.6},
			},
		}
		d.AddNet(net)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	checkEquality(t, d, extract.DefaultFrontierSlackUM, prune.DefaultOptions())
	// The same order with a tiny slack must trip the frontier invariant.
	str := extract.NewStreamer(nil, 0.5)
	var ferr error
	for _, net := range d.Nets {
		if _, _, _, err := str.AddNet(net); err != nil {
			ferr = err
			break
		}
	}
	var fe *extract.FrontierError
	if !errors.As(ferr, &fe) {
		t.Fatalf("want FrontierError with slack 0.5, got %v", ferr)
	}
}

// TestStreamEqualityEmptyAndIsolatedNets covers nets that produce no
// coupling pieces at all: zero-length routes (pin-only stubs) and far-apart
// singles. They must be born retired, close as singleton components, and
// never surface as clusters.
func TestStreamEqualityEmptyAndIsolatedNets(t *testing.T) {
	buf, err := cells.Lookup("BUF_X4")
	if err != nil {
		t.Fatal(err)
	}
	d := design.New("sparse")
	for i := 0; i < 6; i++ {
		y := float64(i) * 500 // far beyond the 2.5 µm coupling window
		net := &design.Net{
			Name:    fmt.Sprintf("iso%d", i),
			Drivers: []design.Pin{{Inst: fmt.Sprintf("U%d", i), Cell: buf, Pin: "Z", PosX: 0, PosY: y}},
			Route:   []design.Segment{{Layer: 2, X0: 0, Y0: y, X1: 0, Y1: y, Width: 0.6}},
		}
		if i%2 == 1 {
			// Odd nets get a real (but isolated) wire.
			net.Route = []design.Segment{{Layer: 2, X0: 0, Y0: y, X1: 40, Y1: y, Width: 0.6}}
		}
		d.AddNet(net)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	clusters, comps := streamAll(t, d, extract.DefaultFrontierSlackUM, prune.DefaultOptions())
	if len(clusters) != 0 {
		t.Fatalf("isolated nets produced %d clusters", len(clusters))
	}
	if len(comps) != 6 {
		t.Fatalf("want 6 singleton components, got %d", len(comps))
	}
	checkEquality(t, d, extract.DefaultFrontierSlackUM, prune.DefaultOptions())
	// Zero-length nets must retire immediately: frontier stays one net deep
	// for the even (pin-only) arrivals.
	str := extract.NewStreamer(nil, extract.DefaultFrontierSlackUM)
	for _, net := range d.Nets {
		if _, _, _, err := str.AddNet(net); err != nil {
			t.Fatal(err)
		}
	}
	if peak := str.PeakLiveNets(); peak > 1 {
		t.Fatalf("isolated-net frontier peaked at %d live nets, want ≤ 1", peak)
	}
}

// TestStreamEqualityDSPChannel runs the full generator topology (bundles,
// buses, latches, clock spines, complementary pairs) through both paths at
// pruning settings that keep multi-net clusters.
func TestStreamEqualityDSPChannel(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{
		Seed: 1999, Channels: 2, TracksPerChannel: 40, ChannelLengthUM: 200,
		BusFraction: 0.05, LatchFraction: 0.25, ComplementaryFraction: 0.2,
		ClockSpines: 1, TrackPitchUM: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := prune.DefaultOptions()
	opt.CapRatioThreshold = 0.03
	opt.MaxAggressors = 6
	checkEquality(t, d, extract.DefaultFrontierSlackUM, opt)

	// The bounded frontier must actually bound: live nets stay well below
	// the design size.
	str := extract.NewStreamer(nil, extract.DefaultFrontierSlackUM)
	for _, net := range d.Nets {
		if _, _, _, err := str.AddNet(net); err != nil {
			t.Fatal(err)
		}
	}
	if peak := str.PeakLiveNets(); peak >= len(d.Nets) {
		t.Fatalf("frontier never retired: peak %d of %d nets", peak, len(d.Nets))
	}
	if math.IsInf(extract.Unbounded, -1) {
		t.Fatal("Unbounded must be +Inf")
	}
}
