package prune

import (
	"encoding/binary"
	"math"
	"sort"

	"xtverify/internal/circuit"
	"xtverify/internal/extract"
)

// Fingerprint serializes the structure of a built cluster circuit — node
// count, resistor and capacitor topology with exact element values, and port
// wiring in declaration order — together with the analysis parameters that
// select a reduction (grounding conductance, reduced order, decoupling).
//
// The key is canonical up to renaming: node indices and element order come
// from BuildCircuit's deterministic net-traversal order, while net and node
// NAMES are deliberately excluded. Two clusters that are structurally
// identical (the common case on buses and datapaths, where parallel routes
// repeat the same RC pattern) therefore produce the same fingerprint and can
// share one SyMPVL reduction. Element values are folded in at full float64
// precision, so "almost identical" clusters never collide.
func Fingerprint(ckt *circuit.Circuit, gmin float64, order int, decoupled bool) string {
	buf := make([]byte, 0, 8*(5+3*len(ckt.Resistors)+4*len(ckt.Capacitors)+3*len(ckt.Ports)))
	var w [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	putI := func(v int) { putU(uint64(v)) }
	putF := func(v float64) { putU(math.Float64bits(v)) }

	putI(ckt.NumNodes())
	putI(len(ckt.Resistors))
	for _, r := range ckt.Resistors {
		putI(int(r.A))
		putI(int(r.B))
		putF(r.Ohms)
	}
	putI(len(ckt.Capacitors))
	for _, c := range ckt.Capacitors {
		putI(int(c.A))
		putI(int(c.B))
		putF(c.Farads)
		if c.Coupling {
			putI(1)
		} else {
			putI(0)
		}
	}
	putI(len(ckt.Ports))
	for _, p := range ckt.Ports {
		putI(int(p.Node))
		putI(int(p.Kind))
		putI(p.Net)
	}
	putF(gmin)
	putI(order)
	if decoupled {
		putI(1)
	} else {
		putI(0)
	}
	return string(buf)
}

// InputSigner fingerprints a cluster's circuit from BuildCircuit's inputs,
// without building it. BuildCircuit is a deterministic function of the
// parasitics and the cluster, so serializing exactly what it reads — member
// wire RC, ports, and the couplings it would retain or ground, in the order
// it would add them — certifies the built circuit element-for-element (up to
// names, which the analysis never reads). Equal input serializations
// therefore imply bit-equal analysis results, the same guarantee Fingerprint
// gives over the built circuit, at a fraction of the cost: building the
// circuit scans the whole design's coupling list per cluster, while the
// signer indexes it once per design.
//
// Like Fingerprint, the serialization is canonical up to renaming: nets are
// identified by member position (victim first, aggressors in cluster order)
// and nodes by per-net index, never by name. Couplings to non-members are
// reduced to the member-side endpoint and value — all BuildCircuit keeps of
// them — so edits elsewhere in the design cannot defeat reuse.
type InputSigner struct {
	p *extract.Parasitics
	// byNet[i] lists the indices into p.Couplings touching net i, ascending —
	// the order BuildCircuit's full scan would encounter them.
	byNet [][]int32
}

// NewInputSigner indexes the design's couplings by net, once.
func NewInputSigner(p *extract.Parasitics) *InputSigner {
	byNet := make([][]int32, len(p.Nets))
	for i, c := range p.Couplings {
		byNet[c.NetA] = append(byNet[c.NetA], int32(i))
		byNet[c.NetB] = append(byNet[c.NetB], int32(i))
	}
	return &InputSigner{p: p, byNet: byNet}
}

// AppendCluster appends cl's input fingerprint to buf and returns it.
func (s *InputSigner) AppendCluster(buf []byte, cl *Cluster) []byte {
	var w [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	putI := func(v int) { putU(uint64(int64(v))) }
	putF := func(v float64) { putU(math.Float64bits(v)) }

	members := cl.MemberNets()
	memberPos := make(map[int]int, len(members))
	for pos, m := range members {
		memberPos[m] = pos
	}
	putI(len(members))
	for pos, m := range members {
		rc := s.p.Nets[m]
		putI(len(rc.NodeX))
		putI(len(rc.Res))
		for _, r := range rc.Res {
			putI(r.A)
			putI(r.B)
			putF(r.Ohms)
		}
		putI(len(rc.CapF))
		for _, c := range rc.CapF {
			putF(c)
		}
		putI(len(rc.DriverNodes))
		for _, dn := range rc.DriverNodes {
			putI(dn)
		}
		if pos == 0 {
			putI(len(rc.ReceiverNodes))
			for _, rn := range rc.ReceiverNodes {
				putI(rn)
			}
		}
	}
	// Couplings touching any member, in global scan order (a coupling between
	// two members appears in both nets' lists; the duplicate is skipped).
	// Only the content BuildCircuit keeps is serialized — never the global
	// index, which shifts with unrelated edits elsewhere in the design.
	idxs := make([]int32, 0, 32)
	for _, m := range members {
		idxs = append(idxs, s.byNet[m]...)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	uniq := idxs[:0]
	for k, ci := range idxs {
		if k == 0 || ci != idxs[k-1] {
			uniq = append(uniq, ci)
		}
	}
	putI(len(uniq))
	for _, ci := range uniq {
		c := &s.p.Couplings[ci]
		posA, aIn := memberPos[c.NetA]
		posB, bIn := memberPos[c.NetB]
		switch {
		case aIn && bIn:
			// Retained member↔member coupling: both endpoints matter.
			putI(0)
			putI(posA)
			putI(c.NodeA)
			putI(posB)
			putI(c.NodeB)
		case aIn:
			// Grounded at the member endpoint; the far net's identity never
			// reaches the circuit.
			putI(1)
			putI(posA)
			putI(c.NodeA)
		default:
			putI(1)
			putI(posB)
			putI(c.NodeB)
		}
		putF(c.Farads)
	}
	return buf
}
