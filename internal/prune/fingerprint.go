package prune

import (
	"encoding/binary"
	"math"

	"xtverify/internal/circuit"
)

// Fingerprint serializes the structure of a built cluster circuit — node
// count, resistor and capacitor topology with exact element values, and port
// wiring in declaration order — together with the analysis parameters that
// select a reduction (grounding conductance, reduced order, decoupling).
//
// The key is canonical up to renaming: node indices and element order come
// from BuildCircuit's deterministic net-traversal order, while net and node
// NAMES are deliberately excluded. Two clusters that are structurally
// identical (the common case on buses and datapaths, where parallel routes
// repeat the same RC pattern) therefore produce the same fingerprint and can
// share one SyMPVL reduction. Element values are folded in at full float64
// precision, so "almost identical" clusters never collide.
func Fingerprint(ckt *circuit.Circuit, gmin float64, order int, decoupled bool) string {
	buf := make([]byte, 0, 8*(5+3*len(ckt.Resistors)+4*len(ckt.Capacitors)+3*len(ckt.Ports)))
	var w [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	putI := func(v int) { putU(uint64(v)) }
	putF := func(v float64) { putU(math.Float64bits(v)) }

	putI(ckt.NumNodes())
	putI(len(ckt.Resistors))
	for _, r := range ckt.Resistors {
		putI(int(r.A))
		putI(int(r.B))
		putF(r.Ohms)
	}
	putI(len(ckt.Capacitors))
	for _, c := range ckt.Capacitors {
		putI(int(c.A))
		putI(int(c.B))
		putF(c.Farads)
		if c.Coupling {
			putI(1)
		} else {
			putI(0)
		}
	}
	putI(len(ckt.Ports))
	for _, p := range ckt.Ports {
		putI(int(p.Node))
		putI(int(p.Kind))
		putI(p.Net)
	}
	putF(gmin)
	putI(order)
	if decoupled {
		putI(1)
	} else {
		putI(0)
	}
	return string(buf)
}
