package prune

import (
	"testing"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/sta"
)

func extracted(t *testing.T, cfg dsp.Config) *extract.Parasitics {
	t.Helper()
	d, err := dsp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func channelCfg(seed int64, tracks int) dsp.Config {
	return dsp.Config{Seed: seed, Channels: 1, TracksPerChannel: tracks,
		ChannelLengthUM: 1500, BusFraction: 0.05, LatchFraction: 0.2, ClockSpines: 1}
}

func TestRawClustersCoverAllNets(t *testing.T) {
	p := extracted(t, channelCfg(1, 40))
	raw := RawClusters(p)
	total := 0
	seen := map[int]bool{}
	for _, g := range raw {
		total += len(g)
		for _, n := range g {
			if seen[n] {
				t.Fatalf("net %d in two clusters", n)
			}
			seen[n] = true
		}
	}
	if total != len(p.Nets) {
		t.Errorf("raw clusters cover %d of %d nets", total, len(p.Nets))
	}
}

func TestChannelFormsLargeRawCluster(t *testing.T) {
	// A 105-track channel couples transitively into a large component,
	// reproducing the paper's ~105-net pre-pruning clusters.
	p := extracted(t, channelCfg(2, 105))
	raw := RawClusters(p)
	max := 0
	for _, g := range raw {
		if len(g) > max {
			max = len(g)
		}
	}
	if max < 30 {
		t.Errorf("largest raw cluster %d nets; expected the channel to couple broadly", max)
	}
}

func TestPruningShrinksClusters(t *testing.T) {
	p := extracted(t, channelCfg(3, 105))
	s := ComputeStats(p, DefaultOptions())
	if s.RawMeanSize < 5 || s.RawMaxSize < 50 {
		t.Errorf("raw clusters too small: mean %.1f max %d", s.RawMeanSize, s.RawMaxSize)
	}
	if s.PrunedMeanSize < 2 || s.PrunedMeanSize > 8 {
		t.Errorf("pruned mean cluster size %.1f outside the paper's 2–5 regime (raw %.1f)",
			s.PrunedMeanSize, s.RawMeanSize)
	}
	if s.PrunedMeanSize >= s.RawMeanSize {
		t.Error("pruning did not shrink clusters")
	}
	if s.KeptCouplingFrac <= 0 || s.KeptCouplingFrac > 1 {
		t.Errorf("kept coupling fraction %g", s.KeptCouplingFrac)
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	p := extracted(t, channelCfg(4, 60))
	loose := ComputeStats(p, Options{CapRatioThreshold: 0.005, MinCouplingF: 0.1e-15})
	tight := ComputeStats(p, Options{CapRatioThreshold: 0.10, MinCouplingF: 0.1e-15})
	if tight.PrunedMeanSize > loose.PrunedMeanSize {
		t.Errorf("tighter threshold grew clusters: %.2f vs %.2f", tight.PrunedMeanSize, loose.PrunedMeanSize)
	}
}

func TestTimingWindowPruning(t *testing.T) {
	d, err := dsp.Generate(channelCfg(5, 60))
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	if err := sta.Annotate(d, p, sta.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	base := Options{CapRatioThreshold: 0.01, MinCouplingF: 0.1e-15}
	withTW := base
	withTW.UseTimingWindows = true
	nBase, nTW := 0, 0
	for _, cl := range Clusters(p, base) {
		nBase += len(cl.Aggressors)
	}
	for _, cl := range Clusters(p, withTW) {
		nTW += len(cl.Aggressors)
	}
	if nTW > nBase {
		t.Errorf("timing windows added aggressors: %d vs %d", nTW, nBase)
	}
}

func TestMaxAggressorsCap(t *testing.T) {
	p := extracted(t, channelCfg(6, 80))
	opt := Options{CapRatioThreshold: 0.001, MinCouplingF: 0.01e-15, MaxAggressors: 3}
	for _, cl := range Clusters(p, opt) {
		if len(cl.Aggressors) > 3 {
			t.Fatalf("cluster exceeds cap: %d aggressors", len(cl.Aggressors))
		}
		// Strongest-first ordering.
		for i := 1; i < len(cl.Aggressors); i++ {
			if cl.Aggressors[i].CouplingF > cl.Aggressors[i-1].CouplingF {
				t.Fatal("aggressors not sorted by coupling")
			}
		}
	}
}

func TestClockNetsNotVictims(t *testing.T) {
	p := extracted(t, channelCfg(7, 40))
	for _, cl := range Clusters(p, DefaultOptions()) {
		if p.Design.Nets[cl.Victim].ClockNet {
			t.Fatalf("clock net %s analyzed as victim", p.Design.Nets[cl.Victim].Name)
		}
	}
}

func TestBuildCircuitStructure(t *testing.T) {
	p := extracted(t, channelCfg(8, 60))
	cls := Clusters(p, DefaultOptions())
	if len(cls) == 0 {
		t.Fatal("no clusters")
	}
	// Find a multi-aggressor cluster.
	var cl *Cluster
	for _, c := range cls {
		if len(c.Aggressors) >= 2 {
			cl = c
			break
		}
	}
	if cl == nil {
		cl = cls[0]
	}
	ckt, err := BuildCircuit(p, cl)
	if err != nil {
		t.Fatal(err)
	}
	// One driver port per member driver pin; victim receivers as ports.
	wantDrivers := len(p.Design.Nets[cl.Victim].Drivers)
	for _, a := range cl.Aggressors {
		wantDrivers += len(p.Design.Nets[a.Net].Drivers)
	}
	gotDrivers := len(ckt.DriverPorts())
	if gotDrivers != wantDrivers {
		t.Errorf("driver ports %d, want %d", gotDrivers, wantDrivers)
	}
	st := ckt.Stats()
	if st.CouplingCap == 0 {
		t.Error("cluster circuit lost its couplings")
	}
	// Conservation: every victim coupling is either kept as a coupler or
	// grounded — total capacitance must not shrink.
	if st.TotalCapF <= 0 {
		t.Error("no capacitance in cluster")
	}
}

func TestBuildCircuitGroundsExternalCoupling(t *testing.T) {
	p := extracted(t, channelCfg(9, 60))
	cls := Clusters(p, Options{CapRatioThreshold: 0.05, MinCouplingF: 0.5e-15})
	for _, cl := range cls {
		if cl.DroppedF == 0 {
			continue
		}
		ckt, err := BuildCircuit(p, cl)
		if err != nil {
			t.Fatal(err)
		}
		// The circuit retains couplings only among members.
		members := map[string]bool{}
		for _, m := range cl.MemberNets() {
			members[p.Design.Nets[m].Name] = true
		}
		for _, cap := range ckt.Capacitors {
			if cap.Coupling && cap.B == -1 {
				t.Error("coupling capacitor to ground")
			}
		}
		return
	}
	t.Skip("no cluster with dropped coupling")
}

func TestMemberNetsOrder(t *testing.T) {
	cl := &Cluster{Victim: 5, Aggressors: []Aggressor{{Net: 2}, {Net: 9}}}
	m := cl.MemberNets()
	if m[0] != 5 || m[1] != 2 || m[2] != 9 {
		t.Errorf("MemberNets = %v", m)
	}
	if cl.Size() != 3 {
		t.Errorf("Size = %d", cl.Size())
	}
}
