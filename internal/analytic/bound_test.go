package analytic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
)

// TestBoundLumpedDegenerate pins the "cannot screen" contract: every
// degenerate or non-finite lumped input yields ErrCannotScreen, never a
// bound that could clear a cluster bogusly.
func TestBoundLumpedDegenerate(t *testing.T) {
	okV := VictimLump{WireOhms: 50, GroundCapF: 20e-15, HoldOhms: 1000}
	okA := []AggressorLump{{CouplingF: 5e-15, SlewS: 120e-12}}
	cases := []struct {
		name string
		v    VictimLump
		a    []AggressorLump
		vdd  float64
	}{
		{"zero ground cap", VictimLump{WireOhms: 50, HoldOhms: 1000}, okA, 3},
		{"zero hold resistance", VictimLump{WireOhms: 50, GroundCapF: 20e-15}, okA, 3},
		{"negative wire resistance", VictimLump{WireOhms: -1, GroundCapF: 20e-15, HoldOhms: 1000}, okA, 3},
		{"nan hold", VictimLump{WireOhms: 50, GroundCapF: 20e-15, HoldOhms: math.NaN()}, okA, 3},
		{"inf ground cap", VictimLump{WireOhms: 50, GroundCapF: math.Inf(1), HoldOhms: 1000}, okA, 3},
		{"zero vdd", okV, okA, 0},
		{"negative vdd", okV, okA, -3},
		{"nan vdd", okV, okA, math.NaN()},
		{"no aggressors", okV, nil, 3},
		{"zero total coupling", okV, []AggressorLump{{CouplingF: 0, SlewS: 120e-12}}, 3},
		{"negative coupling", okV, []AggressorLump{{CouplingF: -1e-15, SlewS: 120e-12}}, 3},
		{"zero slew", okV, []AggressorLump{{CouplingF: 5e-15, SlewS: 0}}, 3},
		{"nan slew", okV, []AggressorLump{{CouplingF: 5e-15, SlewS: math.NaN()}}, 3},
		{"inf coupling", okV, []AggressorLump{{CouplingF: math.Inf(1), SlewS: 120e-12}}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := BoundLumped(tc.v, tc.a, tc.vdd)
			if !errors.Is(err, ErrCannotScreen) {
				t.Fatalf("BoundLumped = (%g, %v), want ErrCannotScreen", b, err)
			}
			if b != 0 {
				t.Fatalf("degenerate input returned nonzero bound %g", b)
			}
		})
	}

	// The healthy baseline actually bounds.
	b, err := BoundLumped(okV, okA, 3)
	if err != nil || b <= 0 || b > 3 {
		t.Fatalf("healthy BoundLumped = (%g, %v), want 0 < bound <= vdd", b, err)
	}
}

// TestBoundLumpedMonotone checks the property the conservatism argument
// rests on: the bound is monotone nondecreasing in coupling capacitance,
// holding resistance, wire resistance, and inverse slew — so lumping the
// distributed victim into worst-case totals can only increase the bound.
func TestBoundLumpedMonotone(t *testing.T) {
	base := VictimLump{WireOhms: 80, GroundCapF: 30e-15, HoldOhms: 1500}
	agg := AggressorLump{CouplingF: 4e-15, SlewS: 150e-12}
	ref, err := BoundLumped(base, []AggressorLump{agg}, 3)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, v VictimLump, a AggressorLump) {
		t.Helper()
		b, err := BoundLumped(v, []AggressorLump{a}, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b < ref {
			t.Errorf("%s: bound %g < reference %g — not monotone", name, b, ref)
		}
	}
	bigger := base
	bigger.HoldOhms *= 2
	check("2x hold resistance", bigger, agg)
	bigger = base
	bigger.WireOhms *= 2
	check("2x wire resistance", bigger, agg)
	fast := agg
	fast.SlewS /= 2
	check("2x faster aggressor", base, fast)
	coupled := agg
	coupled.CouplingF *= 2
	check("2x coupling", base, coupled)

	// More aggressors never lower the bound.
	two, err := BoundLumped(base, []AggressorLump{agg, agg}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if two < ref {
		t.Errorf("second aggressor lowered the bound: %g < %g", two, ref)
	}

	// The cap: an absurdly strong cluster still bounds at Vdd.
	huge := AggressorLump{CouplingF: 1e-9, SlewS: 1e-12}
	b, err := BoundLumped(base, []AggressorLump{huge, huge}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b != 3 {
		t.Errorf("bound %g, want capped at vdd", b)
	}
}

// randCluster draws one randomized parallel-wire cluster: 2–5 wires, random
// coupled length and pitch, random drivers, random victim position.
func randCluster(rng *rand.Rand) (*extract.Parasitics, *prune.Cluster, float64, error) {
	drivers := []string{"INV_X1", "INV_X2", "INV_X4", "INV_X8", "BUF_X2", "BUF_X4", "NAND2_X2", "NOR2_X1"}
	n := 2 + rng.Intn(4)
	names := make([]string, n)
	for i := range names {
		names[i] = drivers[rng.Intn(len(drivers))]
	}
	lengthUM := math.Exp(math.Log(10) + rng.Float64()*(math.Log(600)-math.Log(10)))
	pitchUM := 0.6 + rng.Float64()*1.8
	recv := "INV_X1"
	if rng.Intn(2) == 1 {
		recv = "INV_X4"
	}
	d, err := dsp.ParallelWires(n, lengthUM, pitchUM, names, recv)
	if err != nil {
		return nil, nil, 0, err
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		return nil, nil, 0, err
	}
	victim := rng.Intn(n)
	cl := prune.PruneVictim(par, victim, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	return par, cl, lengthUM, nil
}

// TestBoundClusterConservativeRandomized is the tentpole acceptance
// property: across >= 1000 randomized clusters and every driver-model
// family, the analytic bound dominates the simulated glitch peak of both
// polarities — from the engine's ROM path and (on a subset) from direct
// unreduced MNA integration. A screened cluster can therefore never hide a
// real violation.
func TestBoundClusterConservativeRandomized(t *testing.T) {
	perModel := 350
	if testing.Short() {
		perModel = 40
	}
	models := []struct {
		name   string
		engine glitch.ModelKind
		bound  DriverModel
	}{
		{"fixed", glitch.ModelFixedR, DriverFixedR},
		{"library", glitch.ModelTimingLibrary, DriverTimingLibrary},
		{"nonlinear", glitch.ModelNonlinear, DriverNonlinear},
	}
	for mi, m := range models {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1999 + mi)))
			skipped := 0
			for i := 0; i < perModel; i++ {
				par, cl, lengthUM, err := randCluster(rng)
				if err != nil {
					t.Fatal(err)
				}
				if len(cl.Aggressors) == 0 {
					skipped++
					continue
				}
				bound, err := BoundCluster(par, cl, BoundOptions{
					Model:     m.bound,
					FixedOhms: 1000,
					Vdd:       extract.Tech025().Vdd,
				})
				if err != nil {
					t.Fatalf("cluster %d: %v", i, err)
				}
				eng := glitch.NewEngine(par, glitch.Options{
					Model:     m.engine,
					FixedOhms: 1000,
					TEnd:      3e-9 + lengthUM*1.2e-12,
					Dt:        4e-12,
				})
				rising, falling, err := eng.AnalyzeGlitchPair(cl)
				if err != nil {
					t.Fatalf("cluster %d: %v", i, err)
				}
				for _, r := range []*glitch.Result{rising, falling} {
					if peak := math.Abs(r.PeakV); bound < peak {
						t.Errorf("cluster %d (%s, len %.0fum, %d aggs): bound %.4f V < simulated peak %.4f V",
							i, m.name, lengthUM, len(cl.Aggressors), bound, peak)
					}
				}
				// Spot-check the bound against the unreduced integrator too:
				// conservatism must not depend on reduction truncation.
				if i%10 == 0 {
					dEng := glitch.NewEngine(par, glitch.Options{
						Model:     m.engine,
						FixedOhms: 1000,
						TEnd:      3e-9 + lengthUM*1.2e-12,
						Dt:        4e-12,
						DirectMNA: true,
					})
					dr, err := dEng.AnalyzeGlitch(cl, true)
					if err != nil {
						t.Fatalf("cluster %d direct: %v", i, err)
					}
					if peak := math.Abs(dr.PeakV); bound < peak {
						t.Errorf("cluster %d (%s, direct MNA): bound %.4f V < simulated peak %.4f V",
							i, m.name, bound, peak)
					}
				}
			}
			if skipped > perModel/4 {
				t.Fatalf("%d/%d clusters had no aggressors; generator parameters degenerate", skipped, perModel)
			}
		})
	}
}

// FuzzBoundLumped drives the pure core with arbitrary values: it must never
// panic, and every return is either ErrCannotScreen with a zero bound or a
// finite bound in (0, vdd].
func FuzzBoundLumped(f *testing.F) {
	f.Add(50.0, 20e-15, 1000.0, 5e-15, 120e-12, 3e-15, 200e-12, 3.0)
	f.Add(0.0, 1e-15, 1.0, 1e-18, 1e-12, 0.0, 1e-12, 1.0)
	f.Add(-1.0, math.Inf(1), math.NaN(), 1e-15, -5.0, 1e-15, 0.0, 3.0)
	f.Fuzz(func(t *testing.T, wireOhms, groundCapF, holdOhms, cc1, slew1, cc2, slew2, vdd float64) {
		v := VictimLump{WireOhms: wireOhms, GroundCapF: groundCapF, HoldOhms: holdOhms}
		aggs := []AggressorLump{{CouplingF: cc1, SlewS: slew1}, {CouplingF: cc2, SlewS: slew2}}
		b, err := BoundLumped(v, aggs, vdd)
		if err != nil {
			if !errors.Is(err, ErrCannotScreen) {
				t.Fatalf("error %v does not wrap ErrCannotScreen", err)
			}
			if b != 0 {
				t.Fatalf("error with nonzero bound %g", b)
			}
			return
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			t.Fatalf("non-finite bound %g from finite-validated inputs %+v %+v vdd=%g", b, v, aggs, vdd)
		}
		if b <= 0 || b > vdd {
			t.Fatalf("bound %g outside (0, vdd=%g]", b, vdd)
		}
	})
}

// Example of the screening decision at the engine's default margin.
func ExampleBoundLumped() {
	v := VictimLump{WireOhms: 30, GroundCapF: 25e-15, HoldOhms: 1200}
	aggs := []AggressorLump{{CouplingF: 1.2e-15, SlewS: 140e-12}}
	b, _ := BoundLumped(v, aggs, 3.0)
	fmt.Printf("bound %.3f V, screens under 0.300 V margin with 1.25x safety: %v\n",
		b, b*1.25 < 0.300)
	// Output:
	// bound 0.033 V, screens under 0.300 V margin with 1.25x safety: true
}
