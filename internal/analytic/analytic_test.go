package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
)

func line(lengthUM float64) CoupledLine {
	tech := extract.Tech025()
	return CoupledLine{
		LengthUM:      lengthUM,
		RPerUM:        tech.ROhmPerUM,
		CgPerUM:       tech.CgFPerUM,
		CcPerUM:       tech.Cc0FPerUM * tech.MinSpacingUM / 1.2, // pitch 1.2 µm
		RdrvVictim:    2000,
		RdrvAggressor: 500,
		LoadF:         3e-15,
		SlewS:         120e-12,
		Vdd:           3.0,
	}
}

func TestBoundsOrdering(t *testing.T) {
	f := func(lenRaw, slewRaw uint8) bool {
		c := line(50 + float64(lenRaw)*15)
		c.SlewS = 20e-12 + float64(slewRaw)*2e-12
		est := c.PeakGlitch()
		cs := c.PeakGlitchChargeShare()
		dev := c.PeakGlitchDevganBound()
		// Estimate below the charge-share bound; Devgan bound between 0 and
		// charge share; all non-negative and below Vdd.
		return est >= 0 && est <= cs+1e-12 && dev <= cs+1e-12 && cs <= c.Vdd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGlitchMonotoneInLength(t *testing.T) {
	prev := -1.0
	for _, l := range []float64{100, 500, 1000, 2000, 4000} {
		g := line(l).PeakGlitch()
		if g <= prev {
			t.Fatalf("analytic glitch not monotone at %g µm: %g <= %g", l, g, prev)
		}
		prev = g
	}
}

func TestDelayMillerFactors(t *testing.T) {
	c := line(2000)
	same := c.Delay50(0)
	quiet := c.Delay50(1)
	opp := c.Delay50(2)
	if !(same < quiet && quiet < opp) {
		t.Errorf("Miller ordering violated: %g %g %g", same, quiet, opp)
	}
	if r := c.DelayDeteriorationRatio(); r <= 1 || r > 2.5 {
		t.Errorf("deterioration ratio %g implausible", r)
	}
}

// TestAnalyticVsDetailedFlow positions the closed forms against the full
// MPVL flow on the Figure 1 structure: the estimate lands within a factor
// of two for long lines, while the charge-share bound stays conservative —
// the crude-but-safe behaviour that motivates the paper's detailed
// analysis.
func TestAnalyticVsDetailedFlow(t *testing.T) {
	for _, l := range []float64{1000, 3000} {
		d, err := dsp.ParallelWires(2, l, 1.2, []string{"INV_X4", "INV_X1"}, "INV_X1")
		if err != nil {
			t.Fatal(err)
		}
		par, err := extract.Extract(d, extract.Tech025())
		if err != nil {
			t.Fatal(err)
		}
		cl := prune.PruneVictim(par, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
		eng := glitch.NewEngine(par, glitch.Options{Model: glitch.ModelFixedR, FixedOhms: 2000, TEnd: 3e-9 + l*1.2e-12})
		detailed, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			t.Fatal(err)
		}
		// Mirror the engine's setup in the closed form: victim held through
		// 2 kΩ, aggressor ramp 120 ps, single neighbour.
		c := line(l)
		c.LoadF = 2e-15
		est := c.PeakGlitch()
		ratio := est / detailed.PeakV
		t.Logf("l=%gum: analytic %.3f V vs detailed %.3f V (ratio %.2f)", l, est, detailed.PeakV, ratio)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("analytic estimate off by more than 2.5x at %g µm: %.2f", l, ratio)
		}
		if bound := c.PeakGlitchChargeShare(); bound < detailed.PeakV*0.9 {
			t.Errorf("charge-share bound %.3f below detailed %.3f", bound, detailed.PeakV)
		}
	}
}

func TestZeroCouplingGivesZero(t *testing.T) {
	c := line(100)
	c.CcPerUM = 0
	if c.PeakGlitch() != 0 || c.PeakGlitchChargeShare() != 0 {
		t.Error("no coupling must give no glitch")
	}
}

var _ = math.Pi
