// Rung-0 screening: a conservative multi-aggressor glitch bound computed
// from a pruned cluster's lumped totals, cheap enough to evaluate before any
// MNA assembly or model order reduction.
//
// The bound superposes, per aggressor, the smaller of two classical upper
// bounds — the charge-share divider (Vittal-style, aggressor infinitely
// fast) and the Devgan slow-ramp metric (holding resistance times coupled
// ramp current, inflated for distributed-victim back-action; see
// BoundLumped) — under worst-case alignment (every aggressor switches the
// same direction at the same instant, which dominates any real alignment by
// superposition in the linearized cluster). Both terms are monotone
// nondecreasing in every lumped input they consume (coupling capacitance,
// holding/wire resistance, supply, inverse slew), so lumping the distributed
// victim into totals errs on the conservative side; the whole sum is capped
// at Vdd, the absolute ceiling any passive RC deviation can reach. The
// conservatism contract (bound ≥ simulated peak, both driver models, both
// polarities) is property-tested in bound_test.go across randomized
// clusters.
package analytic

import (
	"errors"
	"fmt"
	"math"

	"xtverify/internal/cells"
	"xtverify/internal/design"
	"xtverify/internal/extract"
	"xtverify/internal/prune"
)

// ErrCannotScreen reports a cluster whose lumped inputs are degenerate or
// non-finite: no conservative bound can be stated, and the caller must fall
// through to detailed analysis rather than trust a bogus number.
var ErrCannotScreen = errors.New("analytic: cannot screen cluster")

// DriverModel mirrors the engine's driver-model families. The analytic
// package sits below the glitch engine in the dependency order, so it keeps
// its own enum instead of importing one.
type DriverModel int

// Driver model families, matching the engine's semantics.
const (
	// DriverFixedR models every driver as one fixed linear resistance with
	// an ideal ramp source.
	DriverFixedR DriverModel = iota
	// DriverTimingLibrary uses per-cell linear resistances and output
	// transitions deduced from the NLDM characterization tables.
	DriverTimingLibrary
	// DriverNonlinear uses the pre-characterized nonlinear cell models; the
	// bound falls back to closed-form device-current estimates for the
	// holding resistance and derates the table transition time (a nonlinear
	// output can slew faster than its 20–80 % figure suggests mid-swing).
	DriverNonlinear
)

// nonlinearSlewDerate shrinks the table output-transition time when bounding
// a nonlinear driver's maximum output slope: the device waveform's
// instantaneous slope mid-swing exceeds the full-swing-equivalent average
// that the NLDM table records.
const nonlinearSlewDerate = 0.5

// BoundOptions parameterizes BoundCluster.
type BoundOptions struct {
	// Model selects the driver-model family the detailed flow would use.
	Model DriverModel
	// FixedOhms is the drive resistance for DriverFixedR (default 1000).
	FixedOhms float64
	// InputSlew is the aggressors' driver input transition time (default
	// 120 ps, the glitch engine's default stimulus).
	InputSlew float64
	// Vdd is the supply (default the bundled technology's 3.0 V).
	Vdd float64
}

func (o *BoundOptions) setDefaults() {
	if o.FixedOhms == 0 {
		o.FixedOhms = 1000
	}
	if o.InputSlew == 0 {
		o.InputSlew = 120e-12
	}
	if o.Vdd == 0 {
		o.Vdd = 3.0
	}
}

// VictimLump is the victim side of the lumped cluster view.
type VictimLump struct {
	// WireOhms is the victim's total wire resistance.
	WireOhms float64
	// GroundCapF is the victim's total grounded capacitance: wire and pin
	// caps plus every coupling that pruning grounded.
	GroundCapF float64
	// HoldOhms is a worst-case (largest over both rails) effective holding
	// resistance of the victim's active driver.
	HoldOhms float64
}

// AggressorLump is one aggressor's lumped view.
type AggressorLump struct {
	// CouplingF is the retained coupling capacitance into the victim.
	CouplingF float64
	// SlewS lower-bounds the aggressor's output transition time (full
	// swing), so Vdd/SlewS upper-bounds its output slope.
	SlewS float64
}

// BoundLumped computes the worst-case-aligned superposition bound from
// already-lumped inputs. It is the pure core of BoundCluster, separated so
// the fuzz/property suite can drive it with arbitrary values: every
// degenerate or non-finite input yields ErrCannotScreen, never a bogus
// bound.
func BoundLumped(v VictimLump, aggs []AggressorLump, vdd float64) (float64, error) {
	if !isFinite(v.WireOhms) || !isFinite(v.GroundCapF) || !isFinite(v.HoldOhms) || !isFinite(vdd) {
		return 0, fmt.Errorf("%w: non-finite victim input", ErrCannotScreen)
	}
	if vdd <= 0 {
		return 0, fmt.Errorf("%w: supply %g V", ErrCannotScreen, vdd)
	}
	if v.GroundCapF <= 0 {
		return 0, fmt.Errorf("%w: victim ground capacitance %g F", ErrCannotScreen, v.GroundCapF)
	}
	if v.HoldOhms <= 0 {
		return 0, fmt.Errorf("%w: holding resistance %g ohms", ErrCannotScreen, v.HoldOhms)
	}
	if v.WireOhms < 0 {
		return 0, fmt.Errorf("%w: wire resistance %g ohms", ErrCannotScreen, v.WireOhms)
	}
	if len(aggs) == 0 {
		return 0, fmt.Errorf("%w: no aggressors", ErrCannotScreen)
	}
	totalCc := 0.0
	for i, a := range aggs {
		if !isFinite(a.CouplingF) || !isFinite(a.SlewS) {
			return 0, fmt.Errorf("%w: non-finite aggressor %d input", ErrCannotScreen, i)
		}
		if a.CouplingF < 0 {
			return 0, fmt.Errorf("%w: aggressor %d coupling %g F", ErrCannotScreen, i, a.CouplingF)
		}
		if a.SlewS <= 0 {
			return 0, fmt.Errorf("%w: aggressor %d slew %g s", ErrCannotScreen, i, a.SlewS)
		}
		totalCc += a.CouplingF
	}
	if totalCc <= 0 {
		return 0, fmt.Errorf("%w: zero total coupling", ErrCannotScreen)
	}
	// The raw Devgan metric assumes the coupling current never exceeds
	// Cc·Vdd/tr, but in a distributed victim an interior node can already be
	// discharging (through the holder, at up to peak/(HoldOhms·(Cg+Cc)))
	// while the observation node still rises, adding its own slew to the
	// aggressor's across the coupling cap. Solving the resulting
	// self-consistent inequality peak ≤ Σdv + R·Cc·peak/(Rh·(Cg+Cc))
	// inflates the Devgan sum by 1/(1−ρ); when ρ ≥ 1 the term carries no
	// information and the charge-share bound stands alone.
	rho := (v.HoldOhms + v.WireOhms) * totalCc / (v.HoldOhms * (v.GroundCapF + totalCc))
	devganInflate := math.Inf(1)
	if rho < 1 {
		devganInflate = 1 / (1 - rho)
	}
	bound := 0.0
	for _, a := range aggs {
		if a.CouplingF == 0 {
			continue // contributes nothing (and 0·Inf inflation is NaN)
		}
		// Charge share: the capacitive divider of the full swing against the
		// victim's grounded capacitance alone (the other aggressors switch
		// with this one in the worst case, so their couplings do not help).
		cs := vdd * a.CouplingF / (a.CouplingF + v.GroundCapF)
		// Devgan: the holding path (driver plus the whole victim wire, which
		// dominates any partial path to the injection point) times the
		// worst-case coupled ramp current Cc·Vdd/tr, inflated for victim
		// back-action as derived above.
		dv := (v.HoldOhms + v.WireOhms) * a.CouplingF * vdd / a.SlewS * devganInflate
		bound += math.Min(cs, dv)
	}
	// No passive RC response to rail-bounded sources can leave [0, Vdd].
	if bound > vdd {
		bound = vdd
	}
	return bound, nil
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// widestDriver returns the driver pin with the widest output stage — the
// same "strongest of all bus drivers" rule the glitch engine applies, so
// the bound reasons about the same cell the simulation would attach.
func widestDriver(pins []design.Pin) (design.Pin, bool) {
	if len(pins) == 0 {
		return design.Pin{}, false
	}
	best := 0
	for i, p := range pins[1:] {
		if p.Cell.Wn > pins[best].Cell.Wn {
			best = i + 1
		}
	}
	return pins[best], true
}

// holdResistance upper-bounds the effective resistance of c holding either
// rail under the given driver model.
func holdResistance(c *cells.Cell, model DriverModel, fixedOhms float64) (float64, error) {
	switch model {
	case DriverFixedR:
		return fixedOhms, nil
	case DriverTimingLibrary:
		tm, err := cells.CharacterizeCached(c)
		if err != nil {
			return 0, err
		}
		// The simulator attaches exactly DriveResistance(outRising) for the
		// rail matching the glitch polarity; the max over both rails covers
		// both polarities.
		return math.Max(tm.DriveResistance(false), tm.DriveResistance(true)), nil
	case DriverNonlinear:
		// A rail-holding output stage at full gate drive has a concave I(V)
		// characteristic (triode into saturation, clamps only add current),
		// so V/I(V) is maximized at the full-swing deviation: Rmax =
		// Vdd/Idsat = 2·EstimateDriveResistance. Max over both stages covers
		// both polarities.
		r := math.Max(cells.EstimateDriveResistance(c, false), cells.EstimateDriveResistance(c, true))
		return 2 * r, nil
	default:
		return 0, fmt.Errorf("analytic: unknown driver model %d", model)
	}
}

// aggressorSlew lower-bounds the output transition time of an aggressor
// driver under the given model, minimized over both switching directions.
func aggressorSlew(c *cells.Cell, loadF float64, opt BoundOptions) (float64, error) {
	switch opt.Model {
	case DriverFixedR:
		// The fixed-R driver is an ideal ramp of exactly InputSlew behind R:
		// the line cannot slew faster than the source.
		return opt.InputSlew, nil
	case DriverTimingLibrary, DriverNonlinear:
		tm, err := cells.CharacterizeCached(c)
		if err != nil {
			return 0, err
		}
		tr := math.Min(
			tm.Trans(loadF, opt.InputSlew, true),
			tm.Trans(loadF, opt.InputSlew, false),
		)
		if opt.Model == DriverNonlinear {
			tr *= nonlinearSlewDerate
		}
		return tr, nil
	default:
		return 0, fmt.Errorf("analytic: unknown driver model %d", opt.Model)
	}
}

// BoundCluster maps a pruned cluster onto its lumped view through the cell
// surfaces and returns the conservative worst-case glitch magnitude bound
// (valid for both polarities). A cluster whose inputs are degenerate yields
// an error wrapping ErrCannotScreen; cell characterization failures are
// returned as-is. The caller screens the cluster when the returned bound —
// inflated by its safety factor — stays below the noise margin.
func BoundCluster(par *extract.Parasitics, cl *prune.Cluster, opt BoundOptions) (float64, error) {
	opt.setDefaults()
	d := par.Design
	vrc := par.Nets[cl.Victim]
	vl := VictimLump{GroundCapF: vrc.TotalCapF() + cl.DroppedF}
	for _, r := range vrc.Res {
		vl.WireOhms += r.Ohms
	}
	vPin, ok := widestDriver(d.Nets[cl.Victim].Drivers)
	if !ok {
		return 0, fmt.Errorf("%w: victim %s has no driver", ErrCannotScreen, d.Nets[cl.Victim].Name)
	}
	var err error
	if vl.HoldOhms, err = holdResistance(vPin.Cell, opt.Model, opt.FixedOhms); err != nil {
		return 0, err
	}
	aggs := make([]AggressorLump, len(cl.Aggressors))
	for i, a := range cl.Aggressors {
		aPin, ok := widestDriver(d.Nets[a.Net].Drivers)
		if !ok {
			return 0, fmt.Errorf("%w: aggressor %s has no driver", ErrCannotScreen, d.Nets[a.Net].Name)
		}
		slew, err := aggressorSlew(aPin.Cell, par.Nets[a.Net].TotalCapF(), opt)
		if err != nil {
			return 0, err
		}
		aggs[i] = AggressorLump{CouplingF: a.CouplingF, SlewS: slew}
	}
	return BoundLumped(vl, aggs, opt.Vdd)
}

// FromTech builds the classic two-line CoupledLine estimate from a
// technology description, so experiment code shares one mapping instead of
// duplicating the per-micrometer constants (the coupling scales with
// MinSpacing/spacing exactly like extraction does).
func FromTech(tech *extract.Tech, lengthUM, spacingUM, rdrvVictim, rdrvAggressor, loadF, slewS float64) CoupledLine {
	s := math.Max(spacingUM, tech.MinSpacingUM)
	return CoupledLine{
		LengthUM:      lengthUM,
		RPerUM:        tech.ROhmPerUM,
		CgPerUM:       tech.CgFPerUM,
		CcPerUM:       tech.Cc0FPerUM * tech.MinSpacingUM / s,
		RdrvVictim:    rdrvVictim,
		RdrvAggressor: rdrvAggressor,
		LoadF:         loadF,
		SlewS:         slewS,
		Vdd:           tech.Vdd,
	}
}
