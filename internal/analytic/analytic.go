// Package analytic implements the closed-form coupled-line estimates the
// paper cites as prior art (its references [2], [5], [18]: Sakurai's
// closed-form interconnect expressions, Kawaguchi/Sakurai's coupled-line
// noise forms, and charge-sharing bounds in the style of Devgan/Vittal).
// They serve as the cheap baseline the detailed MPVL flow is compared
// against: instant to evaluate, but markedly cruder, especially for
// resistive lines and nonlinear holding drivers.
package analytic

import "math"

// CoupledLine describes a victim wire with one lumped aggressor neighbour
// in the classic two-line configuration.
type CoupledLine struct {
	// LengthUM is the coupled run length in micrometers.
	LengthUM float64
	// RPerUM, CgPerUM, CcPerUM are per-micrometer wire resistance, ground
	// capacitance and coupling capacitance.
	RPerUM, CgPerUM, CcPerUM float64
	// RdrvVictim is the victim's holding resistance; RdrvAggressor the
	// aggressor's drive resistance.
	RdrvVictim, RdrvAggressor float64
	// LoadF is additional lumped load at the victim far end (receiver pins).
	LoadF float64
	// SlewS is the aggressor output transition time.
	SlewS float64
	// Vdd is the supply.
	Vdd float64
}

// wireTotals returns the victim's lumped element values.
func (c CoupledLine) wireTotals() (rw, cg, cc float64) {
	return c.RPerUM * c.LengthUM, c.CgPerUM*c.LengthUM + c.LoadF, c.CcPerUM * c.LengthUM
}

// VictimTau returns the victim's holding time constant against the full
// (ground + coupling) capacitance, including half the wire resistance in
// the classic lumped approximation.
func (c CoupledLine) VictimTau() float64 {
	rw, cg, cc := c.wireTotals()
	return (c.RdrvVictim + rw/2) * (cg + cc)
}

// PeakGlitchChargeShare is the fast-aggressor upper bound: the capacitive
// divider Cc/(Cc+Cg) of the full supply swing. It ignores the holding
// driver entirely and so is always conservative.
func (c CoupledLine) PeakGlitchChargeShare() float64 {
	_, cg, cc := c.wireTotals()
	if cc == 0 {
		return 0
	}
	return c.Vdd * cc / (cc + cg)
}

// PeakGlitch is the ramp-response closed form (the Kawaguchi–Sakurai
// style expression): the charge-share amplitude filtered by the victim's
// holding time constant against the aggressor transition time,
//
//	Vp = Vdd · Cc/(Cc+Cg) · (τ/tr)·(1 − e^(−tr/τ)).
func (c CoupledLine) PeakGlitch() float64 {
	amp := c.PeakGlitchChargeShare()
	tau := c.VictimTau()
	tr := c.SlewS
	if tr <= 0 || tau <= 0 {
		return amp
	}
	return amp * (tau / tr) * (1 - math.Exp(-tr/tau))
}

// PeakGlitchDevganBound is Devgan's slow-ramp noise metric
// Vp ≤ Rv·Cc·(dV/dt) = Rv·Cc·Vdd/tr, an upper bound that becomes very
// loose for fast aggressors.
func (c CoupledLine) PeakGlitchDevganBound() float64 {
	_, _, cc := c.wireTotals()
	rw := c.RPerUM * c.LengthUM
	if c.SlewS <= 0 {
		return c.PeakGlitchChargeShare()
	}
	v := (c.RdrvVictim + rw/2) * cc * c.Vdd / c.SlewS
	if cs := c.PeakGlitchChargeShare(); v > cs {
		// The bound cannot exceed the charge-share limit.
		return cs
	}
	return v
}

// Delay50 is Sakurai's two-pole closed form for the 50 % delay of the
// victim's own transition: t50 ≈ 0.377·Rw·Cw + 0.693·Rd·(Cw + CL),
// with the coupling capacitance Miller-multiplied by k (k = 1 quiet
// neighbours, k = 2 opposite switching, k = 0 same direction).
func (c CoupledLine) Delay50(miller float64) float64 {
	rw, cg, cc := c.wireTotals()
	ceff := cg + miller*cc
	return 0.377*rw*ceff + 0.693*c.RdrvVictim*ceff
}

// DelayDeteriorationRatio returns the closed-form prediction of the
// worst-case coupled delay over the decoupled delay, the quantity Table 2
// measures.
func (c CoupledLine) DelayDeteriorationRatio() float64 {
	quiet := c.Delay50(1)
	if quiet == 0 {
		return 1
	}
	return c.Delay50(2) / quiet
}
