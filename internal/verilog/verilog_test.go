package verilog

import (
	"bytes"
	"strings"
	"testing"

	"xtverify/internal/dsp"
)

func TestRoundTripDSP(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{Seed: 9, Channels: 1, TracksPerChannel: 25,
		ChannelLengthUM: 700, BusFraction: 0.15, LatchFraction: 0.3, ClockSpines: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	nl, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Module != d.Name {
		t.Errorf("module %q", nl.Module)
	}
	if len(nl.Wires) != len(d.Nets) {
		t.Errorf("%d wires for %d nets", len(nl.Wires), len(d.Nets))
	}
	if err := nl.CheckAgainstDesign(d); err != nil {
		t.Fatalf("connectivity mismatch: %v", err)
	}
}

func TestRoundTripParallelWires(t *testing.T) {
	d, err := dsp.ParallelWires(3, 500, 1.2, []string{"INV_X2"}, "NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	nl, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.CheckAgainstDesign(d); err != nil {
		t.Fatal(err)
	}
	conn, err := nl.NetConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	c := conn["w0"]
	if len(c.Drivers) != 1 || len(c.Receivers) != 1 {
		t.Errorf("w0 connectivity: %+v", c)
	}
}

func TestEscapedIdentifiers(t *testing.T) {
	if got := ident("plainName_1"); got != "plainName_1" {
		t.Errorf("plain ident escaped: %q", got)
	}
	if got := ident("ch0/n1"); got != "\\ch0/n1 " {
		t.Errorf("escaped ident wrong: %q", got)
	}
	if got := ident("1starts_with_digit"); !strings.HasPrefix(got, "\\") {
		t.Errorf("leading digit must escape: %q", got)
	}
	// Parser handles escapes inside source.
	src := "module m;\n  wire \\a/b ;\n  INV_X1 u1 (.A(\\a/b ), .Z(plain));\nendmodule\n"
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Wires[0] != "a/b" {
		t.Errorf("escaped wire parsed as %q", nl.Wires[0])
	}
	if nl.Instances[0].Conns["A"] != "a/b" || nl.Instances[0].Conns["Z"] != "plain" {
		t.Errorf("conns: %+v", nl.Instances[0].Conns)
	}
}

func TestParseComments(t *testing.T) {
	src := `// header comment
module m; // trailing
  wire a, b; // two wires in one decl
  BUF_X1 u (.A(a), .Z(b));
endmodule`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Wires) != 2 || len(nl.Instances) != 1 {
		t.Errorf("parsed %d wires, %d instances", len(nl.Wires), len(nl.Instances))
	}
}

func TestParseModuleWithPortList(t *testing.T) {
	src := "module top (in, out);\n  wire w;\nendmodule\n"
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Module != "top" {
		t.Errorf("module %q", nl.Module)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing module": "wire a;\n",
		"no endmodule":   "module m;\n wire a;\n",
		"dup pin":        "module m;\nINV_X1 u (.A(a), .A(b));\nendmodule",
		"bad conn":       "module m;\nINV_X1 u (A(a));\nendmodule",
		"truncated":      "module m;\nINV_X1 u (.A(a)",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: error not reported", name)
		}
	}
}

func TestUnknownCellRejected(t *testing.T) {
	src := "module m;\nBOGUS_X9 u (.A(a));\nendmodule"
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.NetConnectivity(); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestPinDirectionResolution(t *testing.T) {
	src := "module m;\nDFF_X1 ff (.D(din), .Q(qout), .QN(qbar));\nendmodule"
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := nl.NetConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(conn["qout"].Drivers) != 1 || len(conn["qbar"].Drivers) != 1 {
		t.Error("Q/QN should be drivers")
	}
	if len(conn["din"].Receivers) != 1 {
		t.Error("D should be a receiver")
	}
}
