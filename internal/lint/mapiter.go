// The mapiter analyzer: no unordered map iteration in identity-critical
// packages. Report bytes, fingerprints and counter totals must be
// byte-identical across serial/parallel/cached/warm runs (DESIGN §8/§11),
// and a `for … range` over a map is the canonical way that contract decays
// — Go randomizes iteration order per run.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapiterPaths are the identity-critical packages: everything that feeds
// report bytes, fingerprints or deterministic counter totals. The root
// package holds the engine, report and reverify assembly code.
var mapiterPaths = []string{
	"xtverify",
	"internal/prune",
	"internal/sympvl",
	"internal/romsim",
	"internal/glitch",
	"internal/obs",
}

// MapIter flags `for … range` over a map in an identity-critical package
// unless the loop body only feeds order-insensitive sinks (commutative
// accumulation, per-key stores) or carries an //xtlint:sorted directive.
var MapIter = &Analyzer{
	Name:      "mapiter",
	Directive: "sorted",
	Doc: "flag range-over-map in identity-critical packages\n\n" +
		"Map iteration order is randomized per run, so any loop whose effect\n" +
		"depends on visit order breaks the byte-identity contract. Iterate a\n" +
		"sorted key slice instead, or — when the body provably commutes\n" +
		"(sums, per-key stores, min/max folds) — the loop is accepted as is.\n" +
		"Justify sanctioned exceptions with //xtlint:sorted <reason>.",
	Run: runMapIter,
}

func runMapIter(pass *Pass) {
	if !identityCriticalPath(pass.Path, mapiterPaths) {
		return
	}
	for _, f := range pass.Files {
		// Track each range statement's enclosing statement list so the
		// harvest-then-sort idiom can look at the loop's successors.
		following := make(map[*ast.RangeStmt][]ast.Stmt)
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				if rng, ok := stmt.(*ast.RangeStmt); ok {
					following[rng] = list[i+1:]
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pass.Info.TypeOf(rng.X)
			if tv == nil {
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(pass, rng) || harvestThenSort(pass, rng, following[rng]) {
				return true
			}
			pass.Reportf(rng.For, "range over map %s in identity-critical package %s: iteration order is randomized; iterate sorted keys or justify with //xtlint:sorted <reason>",
				types.TypeString(tv, types.RelativeTo(pass.Pkg)), pass.Path)
			return true
		})
	}
}

// harvestThenSort recognizes the sanctioned collect-then-sort idiom: the
// loop body only appends into one or more slices (plus order-insensitive
// statements), and every harvested slice is sorted by one of the statements
// immediately following the loop:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys)
//
// Appends may sit inside a plain if (the guard depends on the key/value,
// not on visit order). The recognized sorters are sort.Ints / Strings /
// Float64s / Slice / SliceStable / Sort and slices.Sort / SortFunc /
// SortStableFunc. sort.Slice's comparator must induce a total order for
// the result to be deterministic — that remains the author's obligation.
func harvestThenSort(pass *Pass, rng *ast.RangeStmt, after []ast.Stmt) bool {
	targets := make(map[string]bool)
	if !harvestStmts(pass, rng.Body.List, rng, targets) || len(targets) == 0 {
		return false
	}
	// Every harvested slice must be sorted in the loop's immediate wake:
	// scan the following statements, marking targets off as their sorts
	// appear; stop at the first statement that is neither a recognized
	// sort nor already past the last target.
	for _, stmt := range after {
		if len(targets) == 0 {
			break
		}
		expr, ok := stmt.(*ast.ExprStmt)
		if !ok {
			break
		}
		call, ok := expr.X.(*ast.CallExpr)
		if !ok || !isSortCall(pass, call) || len(call.Args) == 0 {
			break
		}
		for t := range targets {
			if types.ExprString(ast.Unparen(call.Args[0])) == t {
				delete(targets, t)
			}
		}
	}
	return len(targets) == 0
}

// harvestStmts validates a harvest-loop body: appends of loop variables
// into slices (recorded in targets), order-insensitive statements, and
// plain if-guards around more of the same.
func harvestStmts(pass *Pass, stmts []ast.Stmt, rng *ast.RangeStmt, targets map[string]bool) bool {
	keyIdent, _ := rng.Key.(*ast.Ident)
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if harvestAppend(pass, s, targets) {
				continue
			}
			if !orderInsensitiveAssign(pass, s, keyIdent) {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				return false
			}
			if !harvestStmts(pass, s.Body.List, rng, targets) {
				return false
			}
			if s.Else != nil {
				blk, ok := s.Else.(*ast.BlockStmt)
				if !ok || !harvestStmts(pass, blk.List, rng, targets) {
					return false
				}
			}
		default:
			if !orderInsensitiveStmt(pass, stmt, keyIdent) {
				return false
			}
		}
	}
	return true
}

// harvestAppend matches `s = append(s, …)` and records s as a harvest
// target needing a post-loop sort.
func harvestAppend(pass *Pass, s *ast.AssignStmt, targets map[string]bool) bool {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	lhs := types.ExprString(ast.Unparen(s.Lhs[0]))
	if types.ExprString(ast.Unparen(call.Args[0])) != lhs {
		return false
	}
	targets[lhs] = true
	return true
}

// isSortCall reports whether the call is one of the recognized sorters.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// identityCriticalPath matches path (with any "_test" variant suffix
// stripped) against the critical list: exact for the bare entries, suffix
// for the internal/... entries.
func identityCriticalPath(path string, crit []string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, c := range crit {
		if path == c || pathHasSuffix(path, c) {
			return true
		}
	}
	return false
}

// orderInsensitiveBody reports whether every statement of the range body is
// one of the recognized commutative sinks, making the loop's aggregate
// effect independent of visit order:
//
//   - x += expr, x |= expr on numeric/boolean-free integer types (addition
//     and bitwise-or commute; string += does not and is rejected),
//   - m[k] = expr / m[k] += expr where the index expression mentions the
//     range key (per-key stores hit each key exactly once),
//   - x++ / x-- on numeric types,
//   - delete(m2, k) keyed by the range key,
//   - the min/max fold `if v > best { best = v }` (single compare, single
//     plain assign),
//   - continue.
//
// Anything else — appends, sends, calls, nested control flow — is treated
// as order-sensitive.
func orderInsensitiveBody(pass *Pass, rng *ast.RangeStmt) bool {
	keyIdent, _ := rng.Key.(*ast.Ident)
	for _, stmt := range rng.Body.List {
		if !orderInsensitiveStmt(pass, stmt, keyIdent) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, stmt ast.Stmt, key *ast.Ident) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, s, key)
	case *ast.IncDecStmt:
		return isNumeric(pass.Info.TypeOf(s.X))
	case *ast.ExprStmt:
		// delete(m, k) keyed by the range key.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "delete" || len(call.Args) != 2 {
			return false
		}
		if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return false
		}
		return key != nil && mentionsIdent(call.Args[1], key)
	case *ast.IfStmt:
		// The min/max fold: a single comparison guarding a single plain
		// assignment, no else, no init.
		if s.Init != nil || s.Else != nil {
			return false
		}
		cond, ok := s.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch cond.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return false
		}
		if len(s.Body.List) != 1 {
			return false
		}
		asg, ok := s.Body.List[0].(*ast.AssignStmt)
		return ok && asg.Tok == token.ASSIGN
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	default:
		return false
	}
}

func orderInsensitiveAssign(pass *Pass, s *ast.AssignStmt, key *ast.Ident) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN:
		// Commutative accumulation — but only for numbers; string
		// concatenation is order-sensitive.
		for _, lhs := range s.Lhs {
			if !isNumeric(pass.Info.TypeOf(lhs)) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		// Per-key store: every LHS is an index expression whose index
		// mentions the range key, so each iteration writes a distinct slot.
		if key == nil {
			return false
		}
		for _, lhs := range s.Lhs {
			idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok || !mentionsIdent(idx.Index, key) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// isNumeric reports whether t's underlying type is an integer, float or
// complex basic type.
func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// mentionsIdent reports whether expr references the given identifier's
// object.
func mentionsIdent(expr ast.Expr, id *ast.Ident) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if other, ok := n.(*ast.Ident); ok && other.Name == id.Name {
			found = true
		}
		return !found
	})
	return found
}
