package lint

import (
	"sort"
	"strings"
	"testing"
)

// The golden tests: each analyzer runs over testdata packages that
// demonstrate both the caught violation (// want lines) and the accepted
// safe or justified pattern, analysistest style. The plain package rides
// along in the path-gated suites to pin that non-critical packages are
// never flagged.

func TestMapIterGolden(t *testing.T) {
	RunGolden(t, MapIter, "testdata", "crit/internal/prune", "plain")
}

func TestCtxPropGolden(t *testing.T) {
	RunGolden(t, CtxProp, "testdata", "ctxlib")
}

func TestNonDetermGolden(t *testing.T) {
	RunGolden(t, NonDeterm, "testdata", "crit/internal/glitch", "plain")
}

func TestErrCmpGolden(t *testing.T) {
	RunGolden(t, ErrCmp, "testdata", "errs")
}

func TestCounterRegGolden(t *testing.T) {
	RunGolden(t, CounterReg, "testdata", "ctr")
}

// TestDirectiveHygiene pins that justification directives are themselves
// linted: an unknown keyword and a reason-less directive are findings.
func TestDirectiveHygiene(t *testing.T) {
	pkgs, err := LoadTestdata("testdata", "hygiene")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	if len(diags) != 2 {
		t.Fatalf("got %d finding(s), want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "xtlint" {
			t.Errorf("hygiene finding attributed to %q, want xtlint: %v", d.Analyzer, d)
		}
	}
	if !strings.Contains(diags[0].Message, `unknown xtlint directive keyword "wat"`) {
		t.Errorf("first finding %q does not flag the unknown keyword", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "requires a justification reason") {
		t.Errorf("second finding %q does not flag the missing reason", diags[1].Message)
	}
}

// TestSuiteMetadata pins the suite's shape: every analyzer is named,
// documented, runnable, and owns a distinct justification keyword.
func TestSuiteMetadata(t *testing.T) {
	names := make(map[string]bool)
	keywords := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Directive == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
			continue
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		if keywords[a.Directive] {
			t.Errorf("duplicate directive keyword %q", a.Directive)
		}
		names[a.Name] = true
		keywords[a.Directive] = true
	}
}

// TestSchemaV4CountersSorted pins the registry's canonical order so the
// analyzer's declared set stays reviewable as a sorted list.
func TestSchemaV4CountersSorted(t *testing.T) {
	if !sort.StringsAreSorted(SchemaV4Counters) {
		t.Error("lint.SchemaV4Counters must stay sorted")
	}
	seen := make(map[string]bool, len(SchemaV4Counters))
	for _, k := range SchemaV4Counters {
		if seen[k] {
			t.Errorf("duplicate schema key %q", k)
		}
		seen[k] = true
	}
}
