// The errcmp analyzer: sentinel errors go through errors.Is, never ==.
// The engine wraps its sentinels aggressively — ClusterError.Unwrap exposes
// a whole attempt ladder, retry/cancellation classification wraps
// ErrTimeout/ErrCanceled with cluster context — so an == comparison against
// ErrTimeout, ErrStaleReport & co. compiles fine and silently never
// matches. Matching on error text is the same bug with extra steps.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// ErrCmp flags ==/!= comparisons (and switch cases) against Err*-named
// sentinel error values, and error-text matching via err.Error()
// comparisons or strings.Contains-style calls. Applies everywhere, test
// files included — identity tests are exactly where a never-matching
// comparison hides longest.
var ErrCmp = &Analyzer{
	Name:      "errcmp",
	Directive: "errcmp",
	Doc: "flag ==/!= sentinel comparisons and error-text matching\n\n" +
		"Wrapped sentinels (fmt.Errorf %w, multi-error Unwrap ladders) never\n" +
		"compare equal with ==: use errors.Is. String-matching err.Error()\n" +
		"breaks on any message edit: use errors.Is/errors.As. Justify\n" +
		"sanctioned identity checks with //xtlint:errcmp <reason>.",
	Run: runErrCmp,
}

func runErrCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrBinary(pass, n)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, n)
			case *ast.CallExpr:
				checkErrTextMatch(pass, n)
			}
			return true
		})
	}
}

func checkErrBinary(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	// err.Error() == "..." and friends.
	if isErrorTextCall(pass, b.X) || isErrorTextCall(pass, b.Y) {
		pass.Reportf(b.OpPos, "comparing err.Error() text: match with errors.Is/errors.As instead")
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if name, ok := sentinelError(pass, side); ok {
			pass.Reportf(b.OpPos, "%s sentinel comparison against %s: wrapped errors never compare equal; use errors.Is", b.Op, name)
			return
		}
	}
}

func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass.Info.TypeOf(sw.Tag)) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := sentinelError(pass, e); ok {
				pass.Reportf(e.Pos(), "switch case compares error against sentinel %s by identity; use if/else with errors.Is", name)
			}
		}
	}
}

// checkErrTextMatch flags strings.Contains/HasPrefix/... with an
// err.Error() argument.
func checkErrTextMatch(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold", "Count":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorTextCall(pass, arg) {
			pass.Reportf(call.Pos(), "strings.%s on err.Error() text: match with errors.Is/errors.As instead", fn.Name())
			return
		}
	}
}

// isErrorTextCall reports whether expr is a call of Error() on an error
// value.
func isErrorTextCall(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorType(pass.Info.TypeOf(sel.X))
}

// sentinelError reports whether expr names a package-level error variable
// following the ErrFoo naming convention, returning its display name.
func sentinelError(pass *Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	name := obj.Name()
	if !strings.HasPrefix(name, "Err") || len(name) < 4 || !unicode.IsUpper(rune(name[3])) {
		return "", false
	}
	if !isErrorType(obj.Type()) {
		return "", false
	}
	if obj.Pkg().Path() != pass.Pkg.Path() {
		return obj.Pkg().Name() + "." + name, true
	}
	return name, true
}
