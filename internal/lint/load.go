// The package loader: go list + go/parser + go/types with the stdlib
// source importer, so xtlint needs no dependencies outside the standard
// library and works offline. Local packages are type-checked from their
// parsed sources in import order; everything else (the standard library)
// is imported on demand by importer.ForCompiler(..., "source", ...).
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis. In-package
// test files are folded into their package's entry; an external test
// package (package foo_test) is its own entry with the "_test" path
// suffix.
type Package struct {
	// Path is the import path ("_test"-suffixed for external test pkgs).
	Path string
	// Fset is shared across every package of one load.
	Fset *token.FileSet
	// Files are the parsed files being analyzed.
	Files []*ast.File
	// Types and Info are the type-checking results.
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
}

// Load enumerates patterns with `go list` in dir and returns every matched
// package type-checked for analysis, in-package and external test files
// included.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(metas))
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset: fset,
		src:  importer.ForCompiler(fset, "source", nil),
		base: make(map[string]*types.Package),
	}

	// Phase 1: type-check every listed package (non-test files only) in
	// dependency order, so the base map can satisfy local imports —
	// including the imports of test variants checked in phase 2.
	order, err := topoSort(metas, byPath)
	if err != nil {
		return nil, err
	}
	basePkgs := make(map[string]*Package, len(order))
	for _, m := range order {
		if len(m.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: package %s uses cgo, unsupported", m.ImportPath)
		}
		pkg, err := ld.check(m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			return nil, err
		}
		ld.base[m.ImportPath] = pkg.Types
		basePkgs[m.ImportPath] = pkg
	}

	// Phase 2: test variants. The in-package variant re-checks the package
	// with its _test.go files folded in; the external variant is a package
	// of its own.
	var out []*Package
	for _, m := range order {
		entry := basePkgs[m.ImportPath]
		if len(m.TestGoFiles) > 0 {
			var err error
			entry, err = ld.check(m.ImportPath, m.Dir, append(append([]string{}, m.GoFiles...), m.TestGoFiles...))
			if err != nil {
				return nil, err
			}
		}
		out = append(out, entry)
		if len(m.XTestGoFiles) > 0 {
			xt, err := ld.check(m.ImportPath+"_test", m.Dir, m.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, xt)
		}
	}
	return out, nil
}

// LoadTestdata type-checks the packages rooted at dir/src/<path> — the
// golden-test layout of the analysistest harness. Imports resolve against
// dir/src first and fall back to the standard library.
func LoadTestdata(dir string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	ld := &loader{
		fset:        fset,
		src:         importer.ForCompiler(fset, "source", nil),
		base:        make(map[string]*types.Package),
		testdataSrc: filepath.Join(dir, "src"),
	}
	var out []*Package
	for _, path := range paths {
		pkg, err := ld.loadTestdataPkg(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// loader holds the shared state of one Load: the fset, the source importer
// for the standard library, and the map of already-checked local packages.
type loader struct {
	fset *token.FileSet
	src  types.Importer
	base map[string]*types.Package

	// testdataSrc, when set, resolves local imports from testdata/src
	// instead of the go list graph.
	testdataSrc string
	// testdataPkgs memoizes loadTestdataPkg.
	testdataPkgs map[string]*Package
}

// Import implements types.Importer: local packages from the base map,
// testdata packages from disk, everything else from GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.base[path]; ok {
		return p, nil
	}
	if l.testdataSrc != "" {
		if st, err := os.Stat(filepath.Join(l.testdataSrc, path)); err == nil && st.IsDir() {
			pkg, err := l.loadTestdataPkg(path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.src.Import(path)
}

// check parses files and type-checks them as one package.
func (l *loader) check(path, dir string, files []string) (*Package, error) {
	var astFiles []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: astFiles, Types: pkg, Info: info}, nil
}

// loadTestdataPkg checks the package at testdataSrc/<path> (memoized).
func (l *loader) loadTestdataPkg(path string) (*Package, error) {
	if l.testdataPkgs == nil {
		l.testdataPkgs = make(map[string]*Package)
	}
	if p, ok := l.testdataPkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.testdataSrc, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: testdata package %s: %w", path, err)
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: testdata package %s has no Go files", path)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.testdataPkgs[path] = pkg
	l.base[path] = pkg.Types
	return pkg, nil
}

// goList shells out to `go list -json` for package metadata.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var metas []*listedPackage
	for {
		m := new(listedPackage)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %w", err)
		}
		metas = append(metas, m)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return metas, nil
}

// topoSort orders metas so every package follows its listed imports.
func topoSort(metas []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	const (
		white = iota // unvisited
		grey         // on stack
		black        // done
	)
	state := make(map[string]int, len(metas))
	var order []*listedPackage
	var visit func(m *listedPackage) error
	visit = func(m *listedPackage) error {
		switch state[m.ImportPath] {
		case grey:
			return fmt.Errorf("lint: import cycle through %s", m.ImportPath)
		case black:
			return nil
		}
		state[m.ImportPath] = grey
		for _, imp := range m.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[m.ImportPath] = black
		order = append(order, m)
		return nil
	}
	for _, m := range metas {
		if err := visit(m); err != nil {
			return nil, err
		}
	}
	return order, nil
}
