// An analysistest-style golden harness: testdata packages carry
// `// want "regexp"` comments on the lines an analyzer must flag, and the
// harness fails on any missed or unexpected finding. Directive suppression
// runs exactly as in production, so testdata demonstrates both the caught
// violation and the accepted justified pattern.
package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the quoted regexps of one `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunGolden loads the named testdata packages (rooted at testdataDir/src)
// and asserts that the analyzer's findings exactly match the `// want`
// comments, line by line.
func RunGolden(t *testing.T, a *Analyzer, testdataDir string, paths ...string) {
	t.Helper()
	pkgs, err := LoadTestdata(testdataDir, paths...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	diags := RunAnalyzers(pkgs, []*Analyzer{a})

	got := make(map[lineKey][]Diagnostic)
	for _, d := range diags {
		k := lineKey{d.Position.Filename, d.Position.Line}
		got[k] = append(got[k], d)
	}

	// Collect want expectations from every comment of every loaded file.
	want := make(map[lineKey][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					collectWants(t, pkg, c, want)
				}
			}
		}
	}

	for k, res := range want {
		ds := got[k]
		if len(ds) != len(res) {
			t.Errorf("%s:%d: got %d finding(s), want %d: %v", k.file, k.line, len(ds), len(res), messages(ds))
			continue
		}
		for _, re := range res {
			matched := false
			for _, d := range ds {
				if re.MatchString(d.Message) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no finding matches %q; got %v", k.file, k.line, re, messages(ds))
			}
		}
	}
	for k, ds := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s:%d: unexpected finding(s): %v", k.file, k.line, messages(ds))
		}
	}
}

// collectWants parses one comment's `// want` clause, if any.
func collectWants(t *testing.T, pkg *Package, c *ast.Comment, want map[lineKey][]*regexp.Regexp) {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return
	}
	pos := pkg.Fset.Position(c.Pos())
	k := lineKey{pos.Filename, pos.Line}
	ms := wantRE.FindAllStringSubmatch(text, -1)
	if len(ms) == 0 {
		t.Fatalf("%s: malformed want comment %q", pos, c.Text)
	}
	for _, m := range ms {
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
		}
		want[k] = append(want[k], re)
	}
}

// lineKey identifies one source line of one file.
type lineKey struct {
	file string
	line int
}

func messages(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	}
	return out
}
