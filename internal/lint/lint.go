// Package lint is xtlint: a suite of static analyzers that enforce this
// repository's determinism, context-propagation and observability contracts
// at vet time instead of waiting for a flaky byte-diff in CI.
//
// The load-bearing guarantees of the reproduction — byte-identical reports
// across serial/parallel/cached/warm-store runs (DESIGN §8/§11), splice
// identity for ECO reverify, conservative rung-0 screening — are otherwise
// enforced only dynamically, by identity tests that re-run the engine. The
// analyzers here catch the bug classes those tests have historically
// tripped on (a hardcoded context.Background() deep in a call chain, an
// unsorted map iteration feeding report bytes, an == comparison against a
// wrapped sentinel, a typo'd metrics counter silently reading zero) before
// the code ever runs.
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic, an analysistest-style golden harness — but is built entirely
// on the standard library (go/ast, go/types, go/importer) so the module
// stays dependency-free.
//
// # Justification directives
//
// A finding that is genuinely safe is silenced with a justification
// directive on the flagged line or the line directly above it:
//
//	//xtlint:<keyword> <reason>
//
// where <keyword> names the analyzer's contract (sorted, background,
// wallclock, errcmp, counter) and <reason> is a non-empty human
// explanation. A bare directive without a reason is itself a finding, as is
// a directive with an unknown keyword — justifications are part of the
// reviewed source of truth, not an escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description shown by xtlint -list.
	Doc string
	// Directive is the justification keyword that suppresses this
	// analyzer's findings: //xtlint:<Directive> <reason>.
	Directive string
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(*Pass)
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Path is the package's import path; external test packages carry the
	// standard "_test" suffix. Analyzers that only apply to the
	// identity-critical packages match on this.
	Path string
	// Fset maps token positions to file/line.
	Fset *token.FileSet
	// Files are the package's parsed files (tests included for the
	// in-package test variant).
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that produced the finding ("xtlint" for
	// directive-hygiene findings from the runner itself).
	Analyzer string
	// Pos/Position locate the finding.
	Pos      token.Pos
	Position token.Position
	// Message states the contract violation and the sanctioned fixes.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Analyzers returns the full xtlint suite, the set cmd/xtlint runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapIter,
		CtxProp,
		NonDeterm,
		ErrCmp,
		CounterReg,
	}
}

// directivePrefix introduces a justification comment.
const directivePrefix = "//xtlint:"

// A directive is one parsed //xtlint:<keyword> <reason> comment.
type directive struct {
	keyword string
	reason  string
	file    string
	line    int
	pos     token.Pos
}

// fileDirectives extracts every xtlint directive in f.
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			keyword, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			out = append(out, directive{
				keyword: strings.TrimSpace(keyword),
				reason:  strings.TrimSpace(reason),
				file:    pos.Filename,
				line:    pos.Line,
				pos:     c.Pos(),
			})
		}
	}
	return out
}

// RunAnalyzers runs every analyzer over every package, applies directive
// suppression and directive hygiene, and returns the surviving findings
// sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	keywords := make(map[string]string, len(analyzers)) // directive keyword -> analyzer name
	for _, a := range Analyzers() {
		keywords[a.Directive] = a.Name
	}
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		var dirs []directive
		for _, f := range pkg.Files {
			dirs = append(dirs, fileDirectives(pkg.Fset, f)...)
		}

		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			a.Run(pass)
		}

		for _, d := range raw {
			a := byName[d.Analyzer]
			if a != nil && suppressedBy(d, a.Directive, dirs) {
				continue
			}
			diags = append(diags, d)
		}

		// Directive hygiene: a justification must carry a reason and a
		// known keyword, or it is a finding in its own right.
		for _, dir := range dirs {
			if _, known := keywords[dir.keyword]; !known {
				diags = append(diags, Diagnostic{
					Analyzer: "xtlint",
					Pos:      dir.pos,
					Position: token.Position{Filename: dir.file, Line: dir.line},
					Message:  fmt.Sprintf("unknown xtlint directive keyword %q", dir.keyword),
				})
				continue
			}
			if dir.reason == "" {
				diags = append(diags, Diagnostic{
					Analyzer: "xtlint",
					Pos:      dir.pos,
					Position: token.Position{Filename: dir.file, Line: dir.line},
					Message:  fmt.Sprintf("xtlint:%s directive requires a justification reason", dir.keyword),
				})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// suppressedBy reports whether a directive with the analyzer's keyword sits
// on the finding's line or the line directly above it (the standard
// lint-suppression placement).
func suppressedBy(d Diagnostic, keyword string, dirs []directive) bool {
	for _, dir := range dirs {
		if dir.keyword != keyword || dir.file != d.Position.Filename {
			continue
		}
		if dir.line == d.Position.Line || dir.line == d.Position.Line-1 {
			return true
		}
	}
	return false
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fob, _ := info.Uses[id].(*types.Func)
	return fob
}

// isPkgFunc reports whether the call invokes pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name
}

// pathHasSuffix reports whether the import path is pkg or ends in /pkg.
func pathHasSuffix(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}
