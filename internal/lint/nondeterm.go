// The nondeterm analyzer: no entropy sources in the packages that feed
// report bytes or prune.Fingerprint/InputSigner signatures. The identity
// contract (serial ≡ parallel ≡ cached ≡ warm-store, splice ≡ cold) only
// holds if nothing on those paths reads the wall clock, the global
// math/rand source, or process identity.
package lint

import (
	"go/ast"
	"go/types"
)

// nondetermPaths are the packages whose outputs land in report bytes or in
// cache/signature keys: the engine and report assembly (root package), the
// numeric pipeline, the parsers/serializers whose formatting is canonical,
// and the observability layer whose counter totals must be deterministic.
var nondetermPaths = []string{
	"xtverify",
	"internal/prune",
	"internal/sympvl",
	"internal/romsim",
	"internal/glitch",
	"internal/analytic",
	"internal/obs",
	"internal/spef",
	"internal/deflite",
}

// entropyFuncs maps package path -> function names whose results vary per
// run: wall-clock reads, the globally-seeded math/rand convenience
// functions, and process-identity lookups.
var entropyFuncs = map[string]map[string]bool{
	"time": {
		"Now":   true,
		"Since": true,
		"Until": true,
	},
	"math/rand": {
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true,
		"Read": true, "Seed": true,
	},
	"os": {
		"Getpid": true, "Getppid": true, "Hostname": true, "Environ": true,
	},
}

// NonDeterm flags wall-clock, unseeded-rand and process-identity reads in
// the packages that feed report bytes or fingerprint/signature keys.
var NonDeterm = &Analyzer{
	Name:      "nondeterm",
	Directive: "wallclock",
	Doc: "flag entropy sources in report/fingerprint-feeding packages\n\n" +
		"time.Now/Since/Until, the globally-seeded math/rand functions and\n" +
		"os.Getpid-style process identity make output run-dependent. Use\n" +
		"deterministic inputs (seeded rand.New, monotonic counters) or — for\n" +
		"sanctioned run-dependent data like span durations, which the docs\n" +
		"explicitly exclude from the identity contract — justify with\n" +
		"//xtlint:wallclock <reason>.",
	Run: runNonDeterm,
}

func runNonDeterm(pass *Pass) {
	if !identityCriticalPath(pass.Path, nondetermPaths) {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // tests may time and randomize freely
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if names, ok := entropyFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
				pass.Reportf(call.Pos(), "%s.%s in identity-critical package %s: output must not depend on run entropy; use deterministic inputs or justify with //xtlint:wallclock <reason>",
					fn.Pkg().Name(), fn.Name(), pass.Path)
			}
			return true
		})
	}
}
