// Golden testdata for the path gates: plain is not identity-critical, so
// mapiter and nondeterm must stay silent here.
package plain

import "time"

func Render(m map[string]int) int {
	n := 0
	for _, v := range m {
		n = n*31 + v
	}
	return n
}

func Stamp() int64 {
	return time.Now().UnixNano()
}
