// Golden testdata for the nondeterm analyzer. The import path ends in
// internal/glitch, so the package feeds report bytes and must stay free of
// run entropy.
package glitch

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in identity-critical package"
}

// Jitter draws from the globally-seeded source: flagged.
func Jitter() int {
	return rand.Intn(8) // want "rand.Intn in identity-critical package"
}

// Tag leaks process identity: flagged.
func Tag() int {
	return os.Getpid() // want "os.Getpid in identity-critical package"
}

// Deterministic draws from an explicitly seeded source: accepted (method
// calls on a *rand.Rand are reproducible given the seed).
func Deterministic(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// SpanNanos times a diagnostic span, which the identity contract excludes:
// justified.
func SpanNanos(start time.Time) int64 {
	return time.Since(start).Nanoseconds() //xtlint:wallclock span durations are diagnostics, excluded from identity
}
