// Golden testdata for the mapiter analyzer. The import path ends in
// internal/prune, so the package is identity-critical.
package prune

import (
	"fmt"
	"sort"
)

// Render's output depends on visit order: flagged.
func Render(m map[string]int) string {
	out := ""
	for k, v := range m { // want "range over map"
		out += fmt.Sprintf("%s=%d;", k, v)
	}
	return out
}

// Total only accumulates commutatively: accepted.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Double stores per key, hitting each slot exactly once: accepted.
func Double(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

// Max is the min/max fold: accepted.
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Keys is the harvest-then-sort idiom: accepted.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// UnsortedKeys harvests but never sorts: flagged.
func UnsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

// Notify fans out in arbitrary order on purpose: justified.
func Notify(m map[string]chan int) {
	//xtlint:sorted delivery order is immaterial, every channel gets the same signal
	for _, ch := range m {
		ch <- 1
	}
}
