// Golden testdata for the ctxprop analyzer: library code must propagate
// contexts, with the Foo → FooContext delegation wrapper as the one
// sanctioned place a fresh Background may be minted.
package ctxlib

import "context"

func use(ctx context.Context) { _ = ctx }

// refresh has a context parameter but mints a fresh one: flagged.
func refresh(ctx context.Context) {
	use(context.Background()) // want "while a context.Context parameter is in scope"
}

// todoist defers the plumbing decision: flagged.
func todoist() {
	use(context.TODO()) // want "plumb a context.Context parameter through"
}

// leak mints a Background outside any delegation wrapper: flagged.
func leak() {
	use(context.Background()) // want "is not the sanctioned leakContext delegation wrapper"
}

// Fetch is the sanctioned delegation wrapper: accepted.
func Fetch(n int) int {
	return FetchContext(context.Background(), n)
}

// FetchContext is the context-aware variant Fetch delegates to.
func FetchContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func work()                           {}
func workContext(ctx context.Context) { _ = ctx }

// handle drops its context by calling the variant-less name: flagged.
func handle(ctx context.Context) {
	work() // want "drops the in-scope context: call workContext with it"
}

// Engine mirrors the verifier surface: Analyze has a Context sibling.
type Engine struct{}

func (e *Engine) Analyze()                           {}
func (e *Engine) AnalyzeContext(ctx context.Context) { _ = ctx }

// drive drops its context through a method call: flagged.
func drive(ctx context.Context, e *Engine) {
	e.Analyze() // want "drops the in-scope context: call AnalyzeContext with it"
}

// serve roots a daemon lifetime on purpose: justified.
func serve() {
	//xtlint:background the daemon root context outlives every request
	use(context.Background())
}
