// Golden testdata for the counterreg analyzer: string-literal lookups into
// counter maps must use declared schema-v4 keys.
package ctr

// Snapshot mirrors the obs metrics surface: Counters and EngineCounters
// carry schema keys; Extra is an unrelated map the analyzer ignores.
type Snapshot struct {
	Counters       map[string]int64
	EngineCounters map[string]int64
	Extra          map[string]int64
}

// Read uses declared keys: accepted.
func Read(s *Snapshot) int64 {
	return s.Counters["rom_cache_hits"] + s.EngineCounters["woodbury_solves"]
}

// Typo transposes two letters; the lookup reads zero forever: flagged.
func Typo(s *Snapshot) int64 {
	return s.Counters["rom_cahce_hits"] // want "not in the metrics schema-v4 key set"
}

// Dynamic keys are out of scope: accepted.
func Dynamic(s *Snapshot, k string) int64 {
	return s.Counters[k]
}

// Probe asserts a retired key stays absent: justified.
func Probe(s *Snapshot) int64 {
	//xtlint:counter asserting the retired v2 key stays absent
	return s.EngineCounters["retired_v2_counter"]
}

// Unrelated maps with other field names are ignored: accepted.
func Unrelated(s *Snapshot) int64 {
	return s.Extra["anything_goes"]
}
