// Golden testdata for the errcmp analyzer: sentinel errors go through
// errors.Is, and error text is never string-matched.
package errs

import (
	"errors"
	"strings"
)

// ErrBroken is a package-level sentinel in the Err* convention.
var ErrBroken = errors.New("errs: broken")

// Classify compares the sentinel by identity: flagged twice.
func Classify(err error) string {
	if err == ErrBroken { // want "== sentinel comparison against ErrBroken"
		return "broken"
	}
	if err != ErrBroken { // want "!= sentinel comparison against ErrBroken"
		return "other"
	}
	return ""
}

// ByText string-matches the rendered message: flagged twice.
func ByText(err error) bool {
	if strings.Contains(err.Error(), "broken") { // want "strings.Contains on err.Error"
		return true
	}
	return err.Error() == "errs: broken" // want "comparing err.Error"
}

// BySwitch compares by identity through a switch: flagged.
func BySwitch(err error) string {
	switch err {
	case ErrBroken: // want "switch case compares error against sentinel ErrBroken"
		return "broken"
	case nil:
		return ""
	}
	return "other"
}

// Good matches through the unwrap chain: accepted (nil checks are not
// sentinel comparisons).
func Good(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrBroken)
}

// Identity documents an exact-identity contract: justified.
func Identity(err error) bool {
	//xtlint:errcmp the API returns the exact unwrapped sentinel by contract
	return err == ErrBroken
}
