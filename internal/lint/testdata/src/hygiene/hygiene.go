// Testdata for directive hygiene: unknown keywords and reason-less
// directives are findings in their own right.
package hygiene

//xtlint:wat unrecognized keyword
var A = 1

//xtlint:sorted
var B = 2
