// The ctxprop analyzer: library code must propagate context. PR 4 fixed
// exactly this bug class — AdviseRepairs hardcoded context.Background()
// three layers under the engine, so per-cluster deadlines and client
// disconnects silently stopped applying to repair evaluation.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxProp flags context.Background()/context.TODO() in library code (not
// package main, not _test files) when an in-scope context should be used or
// the call is not the sanctioned Foo → FooContext delegation wrapper, and
// flags calls that drop an in-scope context by invoking Foo when a
// FooContext variant exists.
var CtxProp = &Analyzer{
	Name:      "ctxprop",
	Directive: "background",
	Doc: "flag context.Background()/TODO() and dropped contexts in library code\n\n" +
		"Three findings: (1) context.Background()/TODO() while a\n" +
		"context.Context parameter is in scope — use the parameter; (2)\n" +
		"context.Background() in a function that is not the sanctioned\n" +
		"delegation wrapper `func Foo(…) { return FooContext(context.\n" +
		"Background(), …) }`; (3) calling Foo(…) with a ctx in scope when a\n" +
		"FooContext variant exists — the context is silently dropped.\n" +
		"Justify sanctioned exceptions with //xtlint:background <reason>.",
	Run: runCtxProp,
}

func runCtxProp(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		w := &ctxWalker{pass: pass, sanctioned: make(map[*ast.CallExpr]bool)}
		ast.Inspect(f, w.walk)
	}
}

// ctxWalker tracks the enclosing-function stack and the Background() calls
// already sanctioned as delegation-wrapper arguments (the outer call is
// visited before its arguments, so marking happens first).
type ctxWalker struct {
	pass       *Pass
	stack      []ast.Node // enclosing *ast.FuncDecl / *ast.FuncLit chain
	sanctioned map[*ast.CallExpr]bool
}

func (w *ctxWalker) walk(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return false
		}
		w.stack = append(w.stack, n)
		ast.Inspect(n.Body, w.walk)
		w.stack = w.stack[:len(w.stack)-1]
		return false
	case *ast.FuncLit:
		w.stack = append(w.stack, n)
		ast.Inspect(n.Body, w.walk)
		w.stack = w.stack[:len(w.stack)-1]
		return false
	case *ast.CallExpr:
		w.checkCall(n)
	}
	return true
}

func (w *ctxWalker) checkCall(call *ast.CallExpr) {
	pass := w.pass
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	ctxInScope := w.scopeHasCtxParam()

	// Sanctioned delegation wrapper: inside Foo, a call to FooContext may
	// receive context.Background() as an argument. Mark those Background
	// nodes before they are visited.
	if encl, ok := w.enclosingFuncName(); ok && fn.Name() == encl+"Context" {
		for _, arg := range call.Args {
			if bg, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isPkgFunc(pass.Info, bg, "context", "Background") {
				w.sanctioned[bg] = true
			}
		}
	}

	if fn.Pkg() != nil && fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		switch {
		case ctxInScope:
			pass.Reportf(call.Pos(), "context.%s() while a context.Context parameter is in scope: use it (or derive from it)", fn.Name())
		case fn.Name() == "TODO":
			pass.Reportf(call.Pos(), "context.TODO() in library code: plumb a context.Context parameter through")
		case !w.sanctioned[call]:
			pass.Reportf(call.Pos(), "context.Background() in library code: %s is not the sanctioned %[1]sContext delegation wrapper; plumb a ctx parameter through or justify with //xtlint:background <reason>",
				w.enclosingNameOr("this function"))
		}
		return
	}

	// Dropped context: calling Foo while a ctx is in scope and a
	// FooContext variant exists — the context silently stops applying.
	if !ctxInScope || strings.HasSuffix(fn.Name(), "Context") {
		return
	}
	if sibling := contextVariant(fn); sibling != nil {
		pass.Reportf(call.Pos(), "calling %s drops the in-scope context: call %s with it", fn.Name(), sibling.Name())
	}
}

// scopeHasCtxParam reports whether any enclosing function declares a
// context.Context parameter.
func (w *ctxWalker) scopeHasCtxParam() bool {
	for _, n := range w.stack {
		var ft *ast.FuncType
		switch n := n.(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		}
		if ft == nil || ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if isContextType(w.pass.Info.TypeOf(field.Type)) {
				return true
			}
		}
	}
	return false
}

// enclosingFuncName returns the nearest named enclosing function.
func (w *ctxWalker) enclosingFuncName() (string, bool) {
	for i := len(w.stack) - 1; i >= 0; i-- {
		if fd, ok := w.stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name, true
		}
	}
	return "", false
}

func (w *ctxWalker) enclosingNameOr(def string) string {
	if name, ok := w.enclosingFuncName(); ok {
		return name
	}
	return def
}

// contextVariant looks up fn's Context-suffixed sibling: a method on the
// same receiver type (or a function in the same package) named
// fn.Name()+"Context" whose first parameter is a context.Context.
func contextVariant(fn *types.Func) *types.Func {
	name := fn.Name() + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else if fn.Pkg() != nil {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	sibling, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	ssig, ok := sibling.Type().(*types.Signature)
	if !ok || ssig.Params().Len() == 0 || !isContextType(ssig.Params().At(0).Type()) {
		return nil
	}
	return sibling
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
