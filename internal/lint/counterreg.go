// The counterreg analyzer: every counter name used at an observability
// call site must exist in the metrics schema. Snapshot.Counters and the
// daemon's EngineCounters are plain map[string]int64, so a typo'd key
// compiles, reads zero, and a gated assertion silently passes forever.
package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// SchemaV4Counters is the declared schema-v4 counter key set — the exact
// names obs.Counter.String() emits, frozen here as the registry the
// analyzer checks call sites against. internal/obs's schema golden test
// asserts this list and the runtime enum cannot drift apart: adding a
// counter means updating both, and the test (plus this analyzer) pins the
// pair.
var SchemaV4Counters = []string{
	"cache_corrupt_discarded",
	"clusters_emitted_eager",
	"clusters_recomputed",
	"clusters_reused",
	"diagonalize_skipped",
	"fallback_direct_mna",
	"fallback_reduced",
	"fallback_regularized",
	"fallback_unverified",
	"frontier_peak_nets",
	"lanczos_iterations",
	"nets_streamed",
	"newton_divergences",
	"newton_iterations",
	"prepared_reuses",
	"prepared_store_hits",
	"reverify_jobs",
	"rom_cache_evictions",
	"rom_cache_hits",
	"rom_cache_misses",
	"rom_store_hits",
	"rom_store_writes",
	"rung_retries",
	"scenarios_batched",
	"screen_bound_evals",
	"screen_near_threshold",
	"screened_rung0",
	"woodbury_solves",
}

// counterFieldNames are the map[string]int64 struct fields that carry
// schema counter keys: obs.Snapshot.Counters / ClusterMetrics.Counters
// (and their public re-exports) and the daemon's EngineCounters totals.
var counterFieldNames = map[string]bool{
	"Counters":       true,
	"EngineCounters": true,
}

// CounterReg flags string-literal lookups into counter maps whose key is
// not in the declared schema-v4 set.
var CounterReg = &Analyzer{
	Name:      "counterreg",
	Directive: "counter",
	Doc: "cross-check counter-name literals against the schema-v4 key set\n\n" +
		"Indexing Snapshot.Counters / Metrics.EngineCounters with a key the\n" +
		"schema does not declare always reads zero — assertions against it\n" +
		"pass vacuously and dashboards chart a flatline. Keys must come from\n" +
		"the declared schema; probing for a deliberately absent key is\n" +
		"justified with //xtlint:counter <reason>.",
	Run: runCounterReg,
}

var schemaV4Set = func() map[string]bool {
	m := make(map[string]bool, len(SchemaV4Counters))
	for _, k := range SchemaV4Counters {
		m[k] = true
	}
	return m
}()

func runCounterReg(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
			if !ok || !counterFieldNames[sel.Sel.Name] {
				return true
			}
			if !isStringInt64Map(pass.Info.TypeOf(idx.X)) {
				return true
			}
			lit, ok := ast.Unparen(idx.Index).(*ast.BasicLit)
			if !ok {
				return true
			}
			key, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !schemaV4Set[key] {
				pass.Reportf(idx.Index.Pos(), "counter %q is not in the metrics schema-v4 key set: a typo'd counter silently reads 0; see lint.SchemaV4Counters", key)
			}
			return true
		})
	}
}

// isStringInt64Map reports whether t is map[string]int64.
func isStringInt64Map(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	kb, ok := m.Key().Underlying().(*types.Basic)
	if !ok || kb.Kind() != types.String {
		return false
	}
	vb, ok := m.Elem().Underlying().(*types.Basic)
	return ok && vb.Kind() == types.Int64
}
