package faultinject

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"time"
)

// TB is the subset of testing.TB the leak checker needs; declared locally so
// importing this package never drags the testing package into a binary.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// LeakCheck snapshots the goroutine count and registers a cleanup that fails
// the test if the count has not returned to the baseline by the end of the
// test. Transient goroutines (HTTP keep-alives, timer drains) are given a
// settle window before the check is declared failed, and the failure message
// includes the full goroutine dump so the leak is attributable.
//
// Use it first in a test, before any servers or pools are started, so its
// cleanup runs last (cleanups are LIFO).
func LeakCheck(t TB) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		for {
			if runtime.NumGoroutine() <= baseline {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var buf bytes.Buffer
		_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Errorf("goroutine leak: %d goroutines, baseline %d\n%s",
			runtime.NumGoroutine(), baseline, buf.String())
	})
}
