// Package faultinject is the hook-based fault-injection harness used to
// exercise the engine's and the daemon's failure handling in integration
// tests: cluster panics, forced reduction/Newton failures, slow clusters,
// persistent-store I/O errors.
//
// The hooks are process-global so tests outside the xtverify root package
// (the daemon's integration suite lives in internal/daemon) can reach the
// engine's per-cluster attempt path without any test-only plumbing through
// public APIs. When no hook is installed — every production run — a fire
// site costs one atomic pointer load and a nil check.
//
// Hooks are installed with Set*Hook, which returns a restore function;
// always defer it. Installation is safe under -race, but tests that share a
// process must not install overlapping hooks concurrently (the registry is a
// single slot, last writer wins).
package faultinject

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// ClusterHook observes (and may sabotage) one fallback-ladder attempt.
// victim is the cluster's victim net name, stage the rung being attempted
// (FallbackStage.String()). Returning a non-nil error fails the attempt as
// if the numerics had failed; panicking exercises the engine's per-cluster
// recover; sleeping models a slow cluster (the per-attempt deadline then
// fires in the transient's next check).
type ClusterHook func(victim, stage string) error

// StoreHook observes (and may sabotage) one persistent-store operation.
// op is "load" or "save"; path is the entry's file path. Returning a
// non-nil error makes the store treat the operation as failed I/O.
type StoreHook func(op, path string) error

var (
	clusterHook atomic.Pointer[ClusterHook]
	storeHook   atomic.Pointer[StoreHook]
)

// SetClusterHook installs h as the process-global cluster hook and returns
// the function that removes it. Tests must defer the restore.
func SetClusterHook(h ClusterHook) (restore func()) {
	clusterHook.Store(&h)
	return func() { clusterHook.Store(nil) }
}

// FireCluster invokes the installed cluster hook, if any. Called by the
// engine at the top of every ladder attempt.
func FireCluster(victim, stage string) error {
	p := clusterHook.Load()
	if p == nil {
		return nil
	}
	return (*p)(victim, stage)
}

// SetStoreHook installs h as the process-global store hook and returns the
// function that removes it. Tests must defer the restore.
func SetStoreHook(h StoreHook) (restore func()) {
	storeHook.Store(&h)
	return func() { storeHook.Store(nil) }
}

// FireStore invokes the installed store hook, if any. Called by romstore
// before touching an entry file.
func FireStore(op, path string) error {
	p := storeHook.Load()
	if p == nil {
		return nil
	}
	return (*p)(op, path)
}

// FailClusters returns a hook that fails every attempt on the named victims
// with err (all victims when none are named). Other clusters are untouched.
func FailClusters(err error, victims ...string) ClusterHook {
	match := matcher(victims)
	return func(victim, stage string) error {
		if match(victim) {
			return fmt.Errorf("faultinject: %s@%s: %w", victim, stage, err)
		}
		return nil
	}
}

// PanicClusters returns a hook that panics on every attempt on the named
// victims (all victims when none are named) — the harness's stand-in for a
// linear-algebra blowup deep inside a reduction.
func PanicClusters(victims ...string) ClusterHook {
	match := matcher(victims)
	return func(victim, stage string) error {
		if match(victim) {
			panic(fmt.Sprintf("faultinject: injected panic in %s@%s", victim, stage))
		}
		return nil
	}
}

// SlowClusters returns a hook that sleeps d on every attempt on the named
// victims (all victims when none are named), modeling a cluster that is
// numerically fine but starved under load. With a per-attempt deadline
// shorter than d the attempt then fails with ErrTimeout.
func SlowClusters(d time.Duration, victims ...string) ClusterHook {
	match := matcher(victims)
	return func(victim, stage string) error {
		if match(victim) {
			time.Sleep(d)
		}
		return nil
	}
}

// FailOnce returns a hook that fails each (victim, stage) attempt with err
// exactly n times, then lets it through — the shape of a transient overload
// failure that a retry policy should absorb. The hook is safe for concurrent
// workers.
func FailOnce(err error, n int, victims ...string) ClusterHook {
	match := matcher(victims)
	var remaining atomic.Int64
	remaining.Store(int64(n))
	return func(victim, stage string) error {
		if !match(victim) {
			return nil
		}
		if remaining.Add(-1) >= 0 {
			return fmt.Errorf("faultinject: %s@%s: %w", victim, stage, err)
		}
		return nil
	}
}

// matcher builds the victim predicate shared by the helper hooks: an empty
// list matches everything, otherwise exact names or "prefix*" globs.
func matcher(victims []string) func(string) bool {
	if len(victims) == 0 {
		return func(string) bool { return true }
	}
	exact := make(map[string]bool, len(victims))
	var prefixes []string
	for _, v := range victims {
		if strings.HasSuffix(v, "*") {
			prefixes = append(prefixes, strings.TrimSuffix(v, "*"))
		} else {
			exact[v] = true
		}
	}
	return func(name string) bool {
		if exact[name] {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
}
