package noiseprop

import (
	"math"
	"testing"

	"xtverify/internal/cells"
	"xtverify/internal/design"
	"xtverify/internal/extract"
	"xtverify/internal/waveform"
)

// chainDesign builds a fanout chain: net0 -> inv1 -> net1 -> inv2 -> net2,
// with net2 feeding a latch. All nets are short so the gates dominate.
func chainDesign(t *testing.T, driverNames []string) *extract.Parasitics {
	t.Helper()
	d := design.New("chain")
	latch, _ := cells.ByName("LATCH_X1")
	rcv, _ := cells.ByName("INV_X1")
	for i, drvName := range driverNames {
		drv, ok := cells.ByName(drvName)
		if !ok {
			t.Fatalf("cell %s", drvName)
		}
		y := float64(i) * 30 // far apart: no cross coupling
		receiver := rcv
		if i == len(driverNames)-1 {
			receiver = latch
		}
		net := &design.Net{
			Name:      "n" + string(rune('0'+i)),
			Drivers:   []design.Pin{{Inst: "u" + string(rune('0'+i)), Cell: drv, Pin: "Z", PosX: 0, PosY: y}},
			Receivers: []design.Pin{{Inst: "r" + string(rune('0'+i)), Cell: receiver, Pin: "D", PosX: 80, PosY: y}},
			Route:     []design.Segment{{Layer: 2, X0: 0, Y0: y, X1: 80, Y1: y, Width: 0.6}},
		}
		if i > 0 {
			net.Fanins = []int{i - 1}
		}
		d.AddNet(net)
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	return par
}

// pulse builds a triangular glitch waveform of the given amplitude on a
// quiet-low net.
func pulse(amplitude float64) *waveform.Waveform {
	w := waveform.New(8)
	w.Append(0, 0)
	w.Append(200e-12, 0)
	w.Append(500e-12, amplitude)
	w.Append(900e-12, 0)
	w.Append(4e-9, 0)
	return w
}

func TestLargeGlitchPropagatesToLatch(t *testing.T) {
	par := chainDesign(t, []string{"INV_X2", "INV_X2", "INV_X2"})
	p := New(par, Options{})
	// A 2.2 V glitch is far above any inverter threshold: it must propagate
	// through both downstream inverters and reach the latch input.
	res, err := p.Propagate(0, pulse(2.2), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 2 {
		t.Fatalf("depth = %d, want 2 (chain: %+v)", res.Depth, res.Chain)
	}
	if !res.ReachedLatch {
		t.Error("pulse should reach the latch")
	}
	// Alternating quiet levels through inverters.
	if res.Chain[0].QuietHigh || !res.Chain[1].QuietHigh || res.Chain[2].QuietHigh {
		t.Errorf("quiet levels wrong: %+v", res.Chain)
	}
	// Stage 1's disturbance is a falling pulse from a quiet-high net.
	if res.Chain[1].PeakV >= 0 {
		t.Errorf("inverted stage should dip low: %g", res.Chain[1].PeakV)
	}
}

func TestSmallGlitchFiltered(t *testing.T) {
	par := chainDesign(t, []string{"INV_X2", "INV_X2", "INV_X2"})
	p := New(par, Options{})
	// 0.4 V is below the inverter's unity-gain corner: the first gate
	// attenuates it below the dying threshold.
	res, err := p.Propagate(0, pulse(0.4), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 0 {
		t.Errorf("small glitch propagated %d stages: %+v", res.Depth, res.Chain)
	}
	if res.ReachedLatch {
		t.Error("filtered pulse flagged as reaching latch")
	}
}

func TestMarginalGlitchDiesAlongChain(t *testing.T) {
	par := chainDesign(t, []string{"INV_X2", "INV_X2", "INV_X2", "INV_X2"})
	p := New(par, Options{})
	// Sweep amplitudes: propagation depth must be monotone in amplitude.
	prevDepth := -1
	for _, amp := range []float64{0.3, 1.0, 2.5} {
		res, err := p.Propagate(0, pulse(amp), false)
		if err != nil {
			t.Fatal(err)
		}
		if res.Depth < prevDepth {
			t.Errorf("depth not monotone in amplitude: %d after %d", res.Depth, prevDepth)
		}
		prevDepth = res.Depth
	}
	if prevDepth < 1 {
		t.Errorf("2.5 V glitch should propagate at least one stage, got %d", prevDepth)
	}
}

func TestRegenerationSharpensPulse(t *testing.T) {
	// CMOS gates regenerate: a rail-exceeding input produces a full-rail
	// output pulse, so amplitude should not decay for a strong injection.
	par := chainDesign(t, []string{"INV_X4", "INV_X4", "INV_X4"})
	p := New(par, Options{})
	res, err := p.Propagate(0, pulse(2.5), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth < 2 {
		t.Fatalf("strong pulse died early: %+v", res.Chain)
	}
	if a := math.Abs(res.Chain[2].PeakV); a < 2.0 {
		t.Errorf("regenerated amplitude %g should stay near full rail", a)
	}
}
