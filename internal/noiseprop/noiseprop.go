// Package noiseprop propagates crosstalk glitches through downstream logic
// stages — the full-chip noise-propagation view of the paper's cited
// reference [15] (Shepard's Global Harmony coupled-noise analysis). A
// glitch that exceeds a receiver's noise margin does not stop at that pin:
// the receiving gate amplifies it into a pulse on its own output net, which
// may reach a latch several stages away.
//
// The analysis drives each receiving cell's characterized I–V surface with
// the incoming disturbance waveform, simulates the cell against the reduced
// model of its output net, and recurses along the design's fanout relation
// until the pulse dies out or hits a sequential element.
package noiseprop

import (
	"fmt"
	"math"

	"xtverify/internal/cellmodel"
	"xtverify/internal/circuit"
	"xtverify/internal/design"
	"xtverify/internal/devices"
	"xtverify/internal/extract"
	"xtverify/internal/mna"
	"xtverify/internal/romsim"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

// Stage is one hop of a propagation chain.
type Stage struct {
	// Net is the disturbed net's index; Name its name.
	Net  int
	Name string
	// Cell is the gate that produced this stage's disturbance (empty for
	// the injection stage).
	Cell string
	// PeakV is the signed disturbance peak on the net (relative to its
	// quiet level).
	PeakV float64
	// QuietHigh reports the net's assumed quiet level (the inverse of the
	// upstream stage's for inverting gates).
	QuietHigh bool
	// Latch marks nets feeding sequential elements: a surviving pulse here
	// is a potential state upset.
	Latch bool
}

// Result is the worst propagation chain from an injected glitch.
type Result struct {
	// Chain lists the stages, injection first.
	Chain []Stage
	// Depth is len(Chain)−1 (gate stages traversed).
	Depth int
	// ReachedLatch reports whether the pulse survived to a latch input
	// above the dying threshold.
	ReachedLatch bool
}

// Options configures the propagation.
type Options struct {
	// DieVolts is the amplitude below which a pulse is considered filtered
	// (default 0.15 V, ~5 % of Vdd).
	DieVolts float64
	// MaxDepth bounds the recursion (default 6 stages).
	MaxDepth int
	// TEnd and Dt control each stage's transient (defaults 4 ns / 2 ps).
	TEnd, Dt float64
}

func (o *Options) setDefaults() {
	if o.DieVolts == 0 {
		o.DieVolts = 0.15
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 6
	}
	if o.TEnd == 0 {
		o.TEnd = 4e-9
	}
	if o.Dt == 0 {
		o.Dt = 2e-12
	}
}

// Propagator runs noise propagation over one design.
type Propagator struct {
	par *extract.Parasitics
	opt Options
	// fanout[f] lists nets whose driver input is fed by net f.
	fanout [][]int
}

// New builds a propagator (the fanout relation is derived once).
func New(par *extract.Parasitics, opt Options) *Propagator {
	opt.setDefaults()
	p := &Propagator{par: par, opt: opt}
	p.fanout = make([][]int, len(par.Design.Nets))
	for _, n := range par.Design.Nets {
		for _, f := range n.Fanins {
			p.fanout[f] = append(p.fanout[f], n.Index)
		}
	}
	return p
}

// Propagate follows an injected disturbance on net victim (waveform at the
// victim's receivers, quiet level per quietHigh) through the fanout logic
// and returns the worst (deepest surviving) chain.
func (p *Propagator) Propagate(victim int, injected *waveform.Waveform, quietHigh bool) (*Result, error) {
	d := p.par.Design
	root := Stage{
		Net:       victim,
		Name:      d.Nets[victim].Name,
		PeakV:     peakOf(injected, quietLevel(quietHigh)),
		QuietHigh: quietHigh,
		Latch:     feedsLatch(d.Nets[victim]),
	}
	chain, reached, err := p.walk(victim, injected, quietHigh, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{Chain: append([]Stage{root}, chain...)}
	res.Depth = len(res.Chain) - 1
	res.ReachedLatch = reached || (root.Latch && math.Abs(root.PeakV) >= p.opt.DieVolts)
	return res, nil
}

// walk returns the worst downstream chain from the disturbance on net f.
func (p *Propagator) walk(f int, wave *waveform.Waveform, quietHigh bool, depth int) ([]Stage, bool, error) {
	if depth >= p.opt.MaxDepth {
		return nil, false, nil
	}
	d := p.par.Design
	var best []Stage
	bestReached := false
	for _, n := range p.fanout[f] {
		net := d.Nets[n]
		if net.IsBus() {
			continue // tri-state inputs are enable-gated; skip conservatively
		}
		cell := net.Drivers[0].Cell
		out, outQuietHigh, err := p.stageResponse(n, wave, quietHigh)
		if err != nil {
			return nil, false, fmt.Errorf("noiseprop: net %s: %w", net.Name, err)
		}
		peak := peakOf(out, quietLevel(outQuietHigh))
		if math.Abs(peak) < p.opt.DieVolts {
			continue
		}
		st := Stage{
			Net: n, Name: net.Name, Cell: cell.Name,
			PeakV: peak, QuietHigh: outQuietHigh, Latch: feedsLatch(net),
		}
		sub, subReached, err := p.walk(n, out, outQuietHigh, depth+1)
		if err != nil {
			return nil, false, err
		}
		cand := append([]Stage{st}, sub...)
		reached := subReached || st.Latch
		if len(cand) > len(best) || (len(cand) == len(best) && reached && !bestReached) {
			best = cand
			bestReached = reached
		}
	}
	return best, bestReached, nil
}

// stageResponse drives net n's gate with the disturbance and returns the
// waveform at the net's first receiver plus the output quiet level.
func (p *Propagator) stageResponse(n int, in *waveform.Waveform, inQuietHigh bool) (*waveform.Waveform, bool, error) {
	d := p.par.Design
	rc := p.par.Nets[n]
	dcell := d.Nets[n].Drivers[0].Cell
	surf, err := cellmodel.CharacterizeIVSurface(dcell, 0, 0)
	if err != nil {
		return nil, false, err
	}
	// Output quiet level: inverting gates flip the input level.
	outQuietHigh := inQuietHigh
	if dcell.Polarity() < 0 {
		outQuietHigh = !inQuietHigh
	}
	// Build the single-net circuit (couplings grounded — the disturbance
	// under study arrives through the gate, not through this net's own
	// aggressors).
	ckt := circuit.New("np_" + d.Nets[n].Name)
	name := func(k int) string { return fmt.Sprintf("%s:%d", d.Nets[n].Name, k) }
	for k := range rc.NodeX {
		ckt.Node(name(k))
	}
	for i, r := range rc.Res {
		ckt.AddResistor(fmt.Sprintf("r%d", i), ckt.Node(name(r.A)), ckt.Node(name(r.B)), r.Ohms)
	}
	for k, c := range rc.CapF {
		if c > 0 {
			ckt.AddCapacitor(fmt.Sprintf("c%d", k), ckt.Node(name(k)), circuit.Ground, c)
		}
	}
	for _, c := range p.par.Couplings {
		if c.NetA == n {
			ckt.AddCapacitor("cc", ckt.Node(name(c.NodeA)), circuit.Ground, c.Farads)
		} else if c.NetB == n {
			ckt.AddCapacitor("cc", ckt.Node(name(c.NodeB)), circuit.Ground, c.Farads)
		}
	}
	ckt.AddPort("drv", ckt.Node(name(rc.DriverNodes[0])), circuit.PortDriver, 0)
	obs := rc.DriverNodes[0]
	if len(rc.ReceiverNodes) > 0 {
		obs = rc.ReceiverNodes[0]
	}
	ckt.AddPort("rcv", ckt.Node(name(obs)), circuit.PortReceiver, 0)
	sys, err := mna.FromCircuit(ckt, mna.Options{})
	if err != nil {
		return nil, false, err
	}
	model, err := sympvl.Reduce(sys, sympvl.Options{Order: 8})
	if err != nil {
		return nil, false, err
	}
	drv := &cellmodel.SurfaceDriver{Surface: surf, In: in.At}
	simRes, err := romsim.Simulate(model, []romsim.Termination{drv.Termination(), {}},
		romsim.Options{TEnd: p.opt.TEnd, Dt: p.opt.Dt})
	if err != nil {
		return nil, false, err
	}
	return simRes.Ports[1], outQuietHigh, nil
}

func quietLevel(high bool) float64 {
	if high {
		return devices.Vdd025
	}
	return 0
}

func peakOf(w *waveform.Waveform, baseline float64) float64 {
	return w.PeakDeviation(baseline).Value
}

func feedsLatch(n *design.Net) bool {
	for _, r := range n.Receivers {
		if r.Cell.Sequential {
			return true
		}
	}
	return false
}
