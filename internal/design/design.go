// Package design models the chip-level view of a digital design as the
// crosstalk verification flow consumes it: nets with routed Manhattan
// geometry, driver and receiver cell pins, tri-state bus membership, logic
// correlation (complementary flip-flop outputs), and the switching windows
// that static timing attaches.
package design

import (
	"fmt"

	"xtverify/internal/cells"
)

// Segment is one straight Manhattan routing piece of a net, in micrometers.
type Segment struct {
	// Layer is the metal layer index (0-based).
	Layer int
	// X0, Y0, X1, Y1 are the endpoints; exactly one coordinate varies.
	X0, Y0, X1, Y1 float64
	// Width is the drawn wire width in micrometers.
	Width float64
}

// Horizontal reports whether the segment runs in X.
func (s Segment) Horizontal() bool { return s.Y0 == s.Y1 }

// Length returns the Manhattan length in micrometers.
func (s Segment) Length() float64 {
	dx, dy := s.X1-s.X0, s.Y1-s.Y0
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Pin attaches a cell instance pin to a net.
type Pin struct {
	// Inst is the instance name.
	Inst string
	// Cell is the library cell.
	Cell *cells.Cell
	// Pin is the pin name ("Z" for outputs, "A"/"B"/"D" for inputs).
	Pin string
	// Pos is the pin location along the net route (µm), used to attach the
	// pin to the nearest extracted node.
	PosX, PosY float64
}

// Window is the switching window static timing computes for a net: the net
// may transition anywhere in [Early, Late] with the given transition time.
type Window struct {
	// Early and Late bound the switching instant in seconds.
	Early, Late float64
	// Slew is the input transition time at the driver in seconds.
	Slew float64
	// Valid is false before STA has run.
	Valid bool
}

// Overlaps reports whether two valid windows can align in time.
func (w Window) Overlaps(o Window) bool {
	if !w.Valid || !o.Valid {
		return true // unknown timing must be assumed to overlap (conservative)
	}
	return w.Early <= o.Late && o.Early <= w.Late
}

// Net is one routed signal.
type Net struct {
	// Name is the hierarchical net name.
	Name string
	// Index is the net's position in the design's net list.
	Index int
	// Drivers lists the driving pins. More than one driver marks a
	// tri-state bus.
	Drivers []Pin
	// Receivers lists the fanout pins.
	Receivers []Pin
	// Route is the net's geometry.
	Route []Segment
	// Window is the STA switching window.
	Window Window
	// ClockNet marks clock spines (excluded as victims, strong aggressors).
	ClockNet bool
	// Fanins lists indices of nets that feed this net's driver inputs; used
	// by static timing to propagate switching windows. Empty for primary
	// inputs and sequential outputs.
	Fanins []int
}

// IsBus reports whether the net has multiple (tri-state) drivers.
func (n *Net) IsBus() bool { return len(n.Drivers) > 1 }

// Length returns the total routed length in micrometers.
func (n *Net) Length() float64 {
	total := 0.0
	for _, s := range n.Route {
		total += s.Length()
	}
	return total
}

// Design is a netlist with geometry.
type Design struct {
	Name string
	Nets []*Net
	// Complementary lists pairs of net indices driven by complementary
	// flip-flop outputs (Q/QN): they can never switch in the same direction,
	// the paper's example of logic correlation.
	Complementary [][2]int

	byName map[string]*Net
}

// New returns an empty design.
func New(name string) *Design {
	return &Design{Name: name, byName: make(map[string]*Net)}
}

// AddNet appends a net, assigning its index.
func (d *Design) AddNet(n *Net) *Net {
	if _, dup := d.byName[n.Name]; dup {
		panic(fmt.Sprintf("design: duplicate net %q", n.Name))
	}
	n.Index = len(d.Nets)
	d.Nets = append(d.Nets, n)
	d.byName[n.Name] = n
	return n
}

// NetByName finds a net by name.
func (d *Design) NetByName(name string) (*Net, bool) {
	n, ok := d.byName[name]
	return n, ok
}

// MarkComplementary records that nets a and b are Q/QN outputs of the same
// sequential cell.
func (d *Design) MarkComplementary(a, b int) {
	d.Complementary = append(d.Complementary, [2]int{a, b})
}

// AreComplementary reports whether two nets are a recorded Q/QN pair.
func (d *Design) AreComplementary(a, b int) bool {
	for _, p := range d.Complementary {
		if (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a) {
			return true
		}
	}
	return false
}

// Validate checks structural sanity of the design.
func (d *Design) Validate() error {
	for _, n := range d.Nets {
		if err := ValidateNet(n); err != nil {
			return err
		}
	}
	for _, p := range d.Complementary {
		for _, i := range p {
			if i < 0 || i >= len(d.Nets) {
				return fmt.Errorf("design: complementary pair references net %d out of range", i)
			}
		}
	}
	return nil
}

// ValidateNet checks the per-net invariants Validate enforces, for callers
// that receive nets one at a time (the streaming ingest path) and never hold
// a whole Design to validate.
func ValidateNet(n *Net) error {
	if len(n.Drivers) == 0 {
		return fmt.Errorf("design: net %q has no driver", n.Name)
	}
	if len(n.Route) == 0 {
		return fmt.Errorf("design: net %q has no route", n.Name)
	}
	for _, s := range n.Route {
		if s.X0 != s.X1 && s.Y0 != s.Y1 {
			return fmt.Errorf("design: net %q has a non-Manhattan segment", n.Name)
		}
		if s.Width <= 0 {
			return fmt.Errorf("design: net %q has non-positive wire width", n.Name)
		}
	}
	for _, p := range append(append([]Pin(nil), n.Drivers...), n.Receivers...) {
		if p.Cell == nil {
			return fmt.Errorf("design: net %q pin %s.%s has no cell", n.Name, p.Inst, p.Pin)
		}
	}
	if n.IsBus() {
		for _, p := range n.Drivers {
			if !p.Cell.TriState {
				return fmt.Errorf("design: bus net %q driven by non-tri-state cell %s", n.Name, p.Cell.Name)
			}
		}
	}
	return nil
}

// Stats summarizes a design.
type Stats struct {
	Nets, BusNets, ClockNets int
	TotalWirelengthUM        float64
	Receivers                int
}

// Stats computes summary statistics.
func (d *Design) Stats() Stats {
	var s Stats
	s.Nets = len(d.Nets)
	for _, n := range d.Nets {
		if n.IsBus() {
			s.BusNets++
		}
		if n.ClockNet {
			s.ClockNets++
		}
		s.TotalWirelengthUM += n.Length()
		s.Receivers += len(n.Receivers)
	}
	return s
}
