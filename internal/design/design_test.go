package design

import (
	"strings"
	"testing"

	"xtverify/internal/cells"
)

func simpleNet(name string, drv, rcv string, length float64) *Net {
	d, _ := cells.ByName(drv)
	r, _ := cells.ByName(rcv)
	return &Net{
		Name:      name,
		Drivers:   []Pin{{Inst: name + "_d", Cell: d, Pin: "Z", PosX: 0, PosY: 0}},
		Receivers: []Pin{{Inst: name + "_r", Cell: r, Pin: "A", PosX: length, PosY: 0}},
		Route:     []Segment{{Layer: 1, X0: 0, Y0: 0, X1: length, Y1: 0, Width: 0.6}},
	}
}

func TestSegmentGeometry(t *testing.T) {
	h := Segment{X0: 0, Y0: 5, X1: 10, Y1: 5}
	if !h.Horizontal() || h.Length() != 10 {
		t.Error("horizontal segment misread")
	}
	v := Segment{X0: 3, Y0: 0, X1: 3, Y1: -7}
	if v.Horizontal() || v.Length() != 7 {
		t.Error("vertical segment misread")
	}
}

func TestAddNetAndLookup(t *testing.T) {
	d := New("t")
	n := d.AddNet(simpleNet("a", "INV_X1", "INV_X1", 100))
	if n.Index != 0 {
		t.Errorf("index = %d", n.Index)
	}
	if got, ok := d.NetByName("a"); !ok || got != n {
		t.Error("NetByName failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate net name should panic")
		}
	}()
	d.AddNet(simpleNet("a", "INV_X1", "INV_X1", 100))
}

func TestValidate(t *testing.T) {
	d := New("v")
	d.AddNet(simpleNet("ok", "BUF_X2", "NAND2_X1", 50))
	if err := d.Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
	// No driver.
	bad := New("b")
	n := simpleNet("x", "INV_X1", "INV_X1", 50)
	n.Drivers = nil
	bad.AddNet(n)
	//xtlint:errcmp the test pins the human-facing message content, not the error identity
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "no driver") {
		t.Errorf("missing driver not caught: %v", err)
	}
	// Non-Manhattan.
	bad2 := New("b2")
	n2 := simpleNet("y", "INV_X1", "INV_X1", 50)
	n2.Route = []Segment{{X0: 0, Y0: 0, X1: 5, Y1: 5, Width: 0.6}}
	bad2.AddNet(n2)
	//xtlint:errcmp the test pins the human-facing message content, not the error identity
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "Manhattan") {
		t.Errorf("diagonal route not caught: %v", err)
	}
	// Bus with non-tri-state driver.
	bad3 := New("b3")
	n3 := simpleNet("z", "INV_X1", "INV_X1", 50)
	inv, _ := cells.ByName("INV_X2")
	n3.Drivers = append(n3.Drivers, Pin{Inst: "d2", Cell: inv, Pin: "Z"})
	bad3.AddNet(n3)
	//xtlint:errcmp the test pins the human-facing message content, not the error identity
	if err := bad3.Validate(); err == nil || !strings.Contains(err.Error(), "tri-state") {
		t.Errorf("bad bus not caught: %v", err)
	}
}

func TestBusDetection(t *testing.T) {
	n := simpleNet("bus", "TBUF_X2", "INV_X1", 100)
	tb, _ := cells.ByName("TBUF_X4")
	n.Drivers = append(n.Drivers, Pin{Inst: "d2", Cell: tb, Pin: "Z"})
	if !n.IsBus() {
		t.Error("two-driver net should be a bus")
	}
	d := New("bd")
	d.AddNet(n)
	if err := d.Validate(); err == nil {
		// first driver is TBUF_X2 — tri-state, second TBUF_X4 — tri-state:
		// valid. Check it passes.
	} else {
		t.Errorf("valid bus rejected: %v", err)
	}
}

func TestComplementaryPairs(t *testing.T) {
	d := New("c")
	d.AddNet(simpleNet("q", "DFF_X1", "INV_X1", 80))
	d.AddNet(simpleNet("qn", "DFF_X1", "INV_X1", 80))
	d.AddNet(simpleNet("other", "INV_X1", "INV_X1", 80))
	d.MarkComplementary(0, 1)
	if !d.AreComplementary(0, 1) || !d.AreComplementary(1, 0) {
		t.Error("pair not recorded symmetrically")
	}
	if d.AreComplementary(0, 2) {
		t.Error("phantom pair")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
	d.MarkComplementary(0, 99)
	if err := d.Validate(); err == nil {
		t.Error("out-of-range pair not caught")
	}
}

func TestWindowOverlap(t *testing.T) {
	a := Window{Early: 1, Late: 3, Valid: true}
	b := Window{Early: 2, Late: 5, Valid: true}
	c := Window{Early: 4, Late: 6, Valid: true}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping windows not detected")
	}
	if a.Overlaps(c) {
		t.Error("disjoint windows overlap")
	}
	// Invalid windows must be conservative.
	if !a.Overlaps(Window{}) {
		t.Error("invalid window must be assumed overlapping")
	}
}

func TestStats(t *testing.T) {
	d := New("s")
	d.AddNet(simpleNet("a", "INV_X1", "INV_X1", 100))
	n := simpleNet("clk", "CLKBUF_X8", "BUF_X1", 500)
	n.ClockNet = true
	d.AddNet(n)
	s := d.Stats()
	if s.Nets != 2 || s.ClockNets != 1 || s.TotalWirelengthUM != 600 || s.Receivers != 2 {
		t.Errorf("stats = %+v", s)
	}
}
