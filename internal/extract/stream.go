package extract

import (
	"fmt"
	"math"
	"sort"

	"xtverify/internal/design"
)

// Unbounded is the frontier slack that disables retirement entirely: the
// Streamer keeps every piece live until Finish. Extract runs in this mode,
// which makes the materialized path the streamed path with an infinite
// frontier — byte-identical by construction on every input that streams
// without a frontier error.
var Unbounded = math.Inf(1)

// DefaultFrontierSlackUM is the default tolerance for non-monotone net
// arrival order in streamed ingest. A net may arrive with its lowest node up
// to this many µm below the highest minimum-y seen so far; pieces are only
// retired once no net above the watermark minus this slack can couple to
// them. 50 µm comfortably covers the dsp generator's bundle jitter (< 7 µm)
// and typical row-ordered DEF writers.
const DefaultFrontierSlackUM = 50.0

// FrontierError reports a violation of the streaming frontier invariant:
// a net arrived so far below the retirement watermark that couplings to
// already-retired geometry may have been missed. The input must be fed in
// (approximately) ascending-y order, or the slack raised.
type FrontierError struct {
	// Net is the offending net's name, Index its global index.
	Net   string
	Index int
	// MinY is the net's lowest node position; Watermark the running maximum
	// of per-net MinY over all earlier nets; SlackUM the configured
	// tolerance. The invariant requires MinY >= Watermark - SlackUM.
	MinY, Watermark, SlackUM float64
}

func (e *FrontierError) Error() string {
	return fmt.Sprintf("extract: frontier invariant violated: net %q (index %d) arrives with min y %.3f µm, below watermark %.3f µm - slack %.3f µm; feed nets in ascending-y order or raise the frontier slack",
		e.Net, e.Index, e.MinY, e.Watermark, e.SlackUM)
}

// bucketKey addresses one spatial bucket of the live frontier: pieces of one
// (layer, orientation) group whose fixed coordinate falls in bucket-sized
// strips of width MaxCoupleSpacingUM. A new piece can only couple to pieces
// in its own bucket or the two adjacent ones.
type bucketKey struct {
	layer  int
	horiz  bool
	bucket int64
}

// livePiece is a frontier-resident wire fragment plus the y beyond which no
// future (ascending-y) net can couple to it.
type livePiece struct {
	piece
	reachY float64
}

// Streamer is the incremental extraction kernel. Nets are fed one at a time
// in (approximately) ascending-y order; each AddNet returns the net's RC and
// every coupling capacitor that became final with this net's arrival — a
// coupling between nets a and b is computed entirely during the later of the
// two AddNet calls, so emitted couplings never change afterwards.
//
// With a finite frontier slack the Streamer retires pieces that no future
// net can couple to, keeping live state O(frontier) instead of O(chip);
// with Unbounded slack it retires nothing and reproduces Extract exactly.
// Per-coupling sums are accumulated in arrival order in both modes, so the
// two paths agree bit for bit.
type Streamer struct {
	tech    *Tech
	slackUM float64

	buckets map[bucketKey]*[]livePiece
	keys    []bucketKey // creation-ordered index of non-empty buckets

	// livePieces counts each live net's frontier pieces; a net retires when
	// its count reaches zero (or immediately, if it produced no pieces).
	livePieces map[int]int
	liveNets   int
	peakLive   int

	watermark  float64
	lastRetire float64
	netsSeen   int
}

// NewStreamer returns a Streamer for the given process constants (nil means
// Tech025) and frontier slack in µm (Unbounded disables retirement).
func NewStreamer(tech *Tech, slackUM float64) *Streamer {
	if tech == nil {
		tech = Tech025()
	}
	return &Streamer{
		tech:       tech,
		slackUM:    slackUM,
		buckets:    make(map[bucketKey]*[]livePiece),
		livePieces: make(map[int]int),
		watermark:  math.Inf(-1),
		lastRetire: math.Inf(-1),
	}
}

// Tech returns the process constants the streamer extracts against.
func (s *Streamer) Tech() *Tech { return s.tech }

// NetsSeen returns how many nets have been fed so far.
func (s *Streamer) NetsSeen() int { return s.netsSeen }

// PeakLiveNets returns the high-water count of simultaneously live
// (unretired) nets — the frontier's peak width.
func (s *Streamer) PeakLiveNets() int { return s.peakLive }

// LiveNets returns the current number of unretired nets.
func (s *Streamer) LiveNets() int { return s.liveNets }

func (s *Streamer) bucketOf(fixed float64) int64 {
	return int64(math.Floor(fixed / s.tech.MaxCoupleSpacingUM))
}

// AddNet extracts one net against the live frontier. It returns the net's
// RC, the couplings finalized by this net's arrival (sorted by canonical
// (NetA,NodeA,NetB,NodeB) key), and the global indices of nets fully retired
// by the watermark advance (sorted ascending). The net must carry its final
// global Index and satisfy design.ValidateNet.
func (s *Streamer) AddNet(net *design.Net) (*NetRC, []Coupling, []int, error) {
	if err := design.ValidateNet(net); err != nil {
		return nil, nil, nil, fmt.Errorf("extract: %w", err)
	}
	rc, pcs := extractNet(net, s.tech)
	s.netsSeen++

	minY := math.Inf(1)
	for _, y := range rc.NodeY {
		if y < minY {
			minY = y
		}
	}
	if minY < s.watermark-s.slackUM {
		return nil, nil, nil, &FrontierError{
			Net: net.Name, Index: net.Index,
			MinY: minY, Watermark: s.watermark, SlackUM: s.slackUM,
		}
	}

	// Pair every new piece against the live frontier. Iteration order —
	// new pieces in extractNet order, candidate buckets ascending, pieces
	// within a bucket in arrival order — is a pure function of the arrival
	// sequence, so per-coupling float accumulation is identical across the
	// bounded and unbounded modes.
	agg := make(map[[4]int]float64)
	var touched [][4]int
	maxS := s.tech.MaxCoupleSpacingUM
	for _, q := range pcs {
		b0 := s.bucketOf(q.fixed)
		for db := int64(-1); db <= 1; db++ {
			bucket := s.buckets[bucketKey{q.layer, q.horizontal, b0 + db}]
			if bucket == nil {
				continue
			}
			for i := range *bucket {
				p := &(*bucket)[i]
				if p.net == q.net {
					continue
				}
				spacing := math.Abs(q.fixed - p.fixed)
				if spacing == 0 || spacing > maxS {
					continue
				}
				overlap := math.Min(q.hi, p.hi) - math.Max(q.lo, p.lo)
				if overlap <= 0 {
					continue
				}
				sp := math.Max(spacing, s.tech.MinSpacingUM)
				cc := s.tech.Cc0FPerUM * (s.tech.MinSpacingUM / sp) * overlap
				// Attach half at the low-end node pair and half at the
				// high-end pair, approximating the distributed coupling.
				lo := math.Max(q.lo, p.lo)
				hi := math.Min(q.hi, p.hi)
				addHalf := func(pos, f float64) {
					na := q.nodeLo
					if pos-q.lo > q.hi-pos {
						na = q.nodeHi
					}
					nb := p.nodeLo
					if pos-p.lo > p.hi-pos {
						nb = p.nodeHi
					}
					k := [4]int{q.net, na, p.net, nb}
					if q.net > p.net {
						k = [4]int{p.net, nb, q.net, na}
					}
					if _, ok := agg[k]; !ok {
						touched = append(touched, k)
					}
					agg[k] += f
				}
				addHalf(lo, cc/2)
				addHalf(hi, cc/2)
			}
		}
	}
	sort.Slice(touched, func(i, j int) bool {
		a, b := touched[i], touched[j]
		for t := 0; t < 4; t++ {
			if a[t] != b[t] {
				return a[t] < b[t]
			}
		}
		return false
	})
	var final []Coupling
	if len(touched) > 0 {
		final = make([]Coupling, 0, len(touched))
		for _, k := range touched {
			final = append(final, Coupling{NetA: k[0], NodeA: k[1], NetB: k[2], NodeB: k[3], Farads: agg[k]})
		}
	}

	// Admit the new net's pieces to the frontier.
	for _, q := range pcs {
		reach := q.hi
		if q.horizontal {
			reach = q.fixed + maxS
		}
		k := bucketKey{q.layer, q.horizontal, s.bucketOf(q.fixed)}
		bucket := s.buckets[k]
		if bucket == nil {
			bucket = new([]livePiece)
			s.buckets[k] = bucket
			s.keys = append(s.keys, k)
		}
		*bucket = append(*bucket, livePiece{piece: q, reachY: reach})
	}
	var retired []int
	if len(pcs) > 0 {
		s.livePieces[net.Index] = len(pcs)
		s.liveNets++
		if s.liveNets > s.peakLive {
			s.peakLive = s.liveNets
		}
	} else {
		// A pin-only net has no wire to couple to; it is born retired.
		retired = append(retired, net.Index)
	}

	if minY > s.watermark {
		s.watermark = minY
	}
	retired = append(retired, s.retireBelow(s.watermark-s.slackUM)...)
	sort.Ints(retired)
	return rc, final, retired, nil
}

// retireBelow drops every frontier piece whose reachY is strictly below the
// line and returns the nets whose last live piece went with it.
func (s *Streamer) retireBelow(line float64) []int {
	if math.IsInf(line, -1) || line <= s.lastRetire {
		return nil
	}
	s.lastRetire = line
	var retired []int
	kept := s.keys[:0]
	for _, k := range s.keys {
		bucket := s.buckets[k]
		live := (*bucket)[:0]
		for _, p := range *bucket {
			if p.reachY < line {
				s.livePieces[p.net]--
				if s.livePieces[p.net] == 0 {
					delete(s.livePieces, p.net)
					s.liveNets--
					retired = append(retired, p.net)
				}
				continue
			}
			live = append(live, p)
		}
		if len(live) == 0 {
			delete(s.buckets, k)
			continue
		}
		*bucket = live
		kept = append(kept, k)
	}
	s.keys = kept
	return retired
}

// Finish retires every remaining net (no further couplings are possible —
// each coupling is finalized by the later member's AddNet) and returns their
// indices sorted ascending.
func (s *Streamer) Finish() []int {
	var retired []int
	for _, k := range s.keys {
		bucket := s.buckets[k]
		for _, p := range *bucket {
			s.livePieces[p.net]--
			if s.livePieces[p.net] == 0 {
				delete(s.livePieces, p.net)
				s.liveNets--
				retired = append(retired, p.net)
			}
		}
		delete(s.buckets, k)
	}
	s.keys = s.keys[:0]
	sort.Ints(retired)
	return retired
}

// SortCouplings orders couplings by their canonical (NetA, NodeA, NetB,
// NodeB) key — the order Parasitics.Couplings is pinned to.
func SortCouplings(cc []Coupling) {
	sort.Slice(cc, func(i, j int) bool {
		a, b := cc[i], cc[j]
		if a.NetA != b.NetA {
			return a.NetA < b.NetA
		}
		if a.NodeA != b.NodeA {
			return a.NodeA < b.NodeA
		}
		if a.NetB != b.NetB {
			return a.NetB < b.NetB
		}
		return a.NodeB < b.NodeB
	})
}
