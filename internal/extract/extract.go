// Package extract is the synthetic parasitic-extraction substrate: it turns
// routed net geometry into distributed RC networks with coupling capacitors,
// playing the role of the commercial extractor whose output ("RC equivalent
// circuit form, with millions of resistors and capacitors") feeds the
// paper's flow.
//
// Wires are segmented into ≤ MaxSegUM pieces; each piece contributes series
// resistance and grounded capacitance, and parallel same-layer pieces within
// the coupling window contribute coupling capacitance that falls off with
// spacing. Receiver pin input capacitance and driver output diffusion
// capacitance are attached at the pin nodes, matching the cell-based
// methodology (cell inputs are capacitive).
package extract

import (
	"fmt"
	"math"

	"xtverify/internal/design"
)

// Tech holds per-layer parasitic constants for the synthetic 0.25 µm
// process (DESIGN.md Section 6).
type Tech struct {
	Name string
	// ROhmPerUM is wire resistance per micrometer.
	ROhmPerUM float64
	// CgFPerUM is grounded capacitance per micrometer.
	CgFPerUM float64
	// Cc0FPerUM is the coupling capacitance per micrometer at minimum
	// spacing; it scales as MinSpacingUM/spacing.
	Cc0FPerUM float64
	// MinSpacingUM is the minimum (and typical) wire spacing.
	MinSpacingUM float64
	// MaxCoupleSpacingUM bounds the lateral coupling window.
	MaxCoupleSpacingUM float64
	// MaxSegUM is the maximum RC section length.
	MaxSegUM float64
	// Vdd is the supply voltage.
	Vdd float64
}

// Tech025 returns the default 0.25 µm constants. On a minimum-pitch parallel
// run the two-sided coupling is 0.16 fF/µm against 0.04 fF/µm to ground, i.e.
// capacitance to neighbours exceeds 70 % of total, matching the paper's
// deep-submicron premise.
func Tech025() *Tech {
	return &Tech{
		Name:               "synth025",
		ROhmPerUM:          0.12,
		CgFPerUM:           0.040e-15,
		Cc0FPerUM:          0.080e-15,
		MinSpacingUM:       0.6,
		MaxCoupleSpacingUM: 2.5,
		MaxSegUM:           25,
		Vdd:                3.0,
	}
}

// RElem is a resistor between two local node indices of a net.
type RElem struct {
	A, B int
	Ohms float64
}

// NetRC is the extracted view of one net.
type NetRC struct {
	Net *design.Net
	// NodeX, NodeY give each node's position (µm).
	NodeX, NodeY []float64
	// Res lists the wire resistances.
	Res []RElem
	// CapF is the grounded capacitance lumped at each node.
	CapF []float64
	// DriverNodes[i] is the node of Drivers[i]; ReceiverNodes likewise.
	DriverNodes, ReceiverNodes []int
}

// TotalCapF returns the net's total grounded capacitance.
func (n *NetRC) TotalCapF() float64 {
	s := 0.0
	for _, c := range n.CapF {
		s += c
	}
	return s
}

// Coupling is a coupling capacitor between nodes of two different nets.
type Coupling struct {
	NetA, NodeA int
	NetB, NodeB int
	Farads      float64
}

// Parasitics is the whole-design extraction result.
type Parasitics struct {
	Design *design.Design
	Tech   *Tech
	Nets   []*NetRC
	// Couplings lists all inter-net coupling capacitors.
	Couplings []Coupling
	// NetCouplingF[i][j] aggregates coupling between net i and net j
	// (sparse map per net).
	NetCouplingF []map[int]float64
}

// piece is one ≤MaxSeg wire fragment prepared for coupling extraction.
type piece struct {
	net, nodeLo, nodeHi int
	horizontal          bool
	layer               int
	fixed               float64 // y for horizontal, x for vertical
	lo, hi              float64 // varying-coordinate range (lo < hi)
}

// Extract runs the extraction. It is the materialized front of the shared
// streaming kernel: every net is fed through a Streamer with an unbounded
// frontier, so the incremental path (Config.StreamIngest) and this one
// compute bit-identical parasitics.
func Extract(d *design.Design, tech *Tech) (*Parasitics, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	s := NewStreamer(tech, Unbounded)
	p := &Parasitics{Design: d, Tech: s.tech}
	for _, net := range d.Nets {
		rc, final, _, err := s.AddNet(net)
		if err != nil {
			return nil, err
		}
		p.Nets = append(p.Nets, rc)
		p.Couplings = append(p.Couplings, final...)
	}
	s.Finish()
	SortCouplings(p.Couplings)
	p.NetCouplingF = make([]map[int]float64, len(p.Nets))
	for i := range p.NetCouplingF {
		p.NetCouplingF[i] = make(map[int]float64)
	}
	for _, c := range p.Couplings {
		p.NetCouplingF[c.NetA][c.NetB] += c.Farads
		p.NetCouplingF[c.NetB][c.NetA] += c.Farads
	}
	return p, nil
}

const snap = 0.005 // µm position-snapping grid for node merging

func key(x, y float64) [2]int64 {
	return [2]int64{int64(math.Round(x / snap)), int64(math.Round(y / snap))}
}

// extractNet segments one net and returns its RC plus coupling pieces.
func extractNet(net *design.Net, tech *Tech) (*NetRC, []piece) {
	rc := &NetRC{Net: net}
	nodeAt := make(map[[2]int64]int)
	getNode := func(x, y float64) int {
		k := key(x, y)
		if id, ok := nodeAt[k]; ok {
			return id
		}
		id := len(rc.NodeX)
		rc.NodeX = append(rc.NodeX, x)
		rc.NodeY = append(rc.NodeY, y)
		rc.CapF = append(rc.CapF, 0)
		nodeAt[k] = id
		return id
	}
	var pieces []piece
	for _, seg := range net.Route {
		length := seg.Length()
		if length == 0 {
			getNode(seg.X0, seg.Y0)
			continue
		}
		nPieces := int(math.Ceil(length / tech.MaxSegUM))
		for k := 0; k < nPieces; k++ {
			f0 := float64(k) / float64(nPieces)
			f1 := float64(k+1) / float64(nPieces)
			x0 := seg.X0 + (seg.X1-seg.X0)*f0
			y0 := seg.Y0 + (seg.Y1-seg.Y0)*f0
			x1 := seg.X0 + (seg.X1-seg.X0)*f1
			y1 := seg.Y0 + (seg.Y1-seg.Y0)*f1
			a := getNode(x0, y0)
			b := getNode(x1, y1)
			pl := length / float64(nPieces)
			rc.Res = append(rc.Res, RElem{A: a, B: b, Ohms: tech.ROhmPerUM * pl})
			half := tech.CgFPerUM * pl / 2
			rc.CapF[a] += half
			rc.CapF[b] += half
			pc := piece{net: net.Index, nodeLo: a, nodeHi: b, layer: seg.Layer, horizontal: seg.Horizontal()}
			if pc.horizontal {
				pc.fixed = y0
				pc.lo, pc.hi = math.Min(x0, x1), math.Max(x0, x1)
				if x1 < x0 {
					pc.nodeLo, pc.nodeHi = b, a
				}
			} else {
				pc.fixed = x0
				pc.lo, pc.hi = math.Min(y0, y1), math.Max(y0, y1)
				if y1 < y0 {
					pc.nodeLo, pc.nodeHi = b, a
				}
			}
			pieces = append(pieces, pc)
		}
	}
	// Attach pins at their nearest nodes, with their capacitances.
	nearest := func(x, y float64) int {
		best, bestD := 0, math.Inf(1)
		for i := range rc.NodeX {
			d := (rc.NodeX[i]-x)*(rc.NodeX[i]-x) + (rc.NodeY[i]-y)*(rc.NodeY[i]-y)
			if d < bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	for _, pin := range net.Drivers {
		n := nearest(pin.PosX, pin.PosY)
		rc.DriverNodes = append(rc.DriverNodes, n)
		rc.CapF[n] += pin.Cell.OutDiffCapF
	}
	for _, pin := range net.Receivers {
		n := nearest(pin.PosX, pin.PosY)
		rc.ReceiverNodes = append(rc.ReceiverNodes, n)
		rc.CapF[n] += pin.Cell.InputCapF
	}
	return rc, pieces
}

// Stats summarizes an extraction.
type Stats struct {
	Nets         int
	Nodes        int
	Resistors    int
	GroundCaps   int
	Couplings    int
	TotalCapF    float64
	CouplingF    float64
	CouplingFrac float64
}

// Stats computes extraction statistics; CouplingFrac is coupling as a
// fraction of total capacitance (the paper cites >70 % for DSM designs).
func (p *Parasitics) Stats() Stats {
	var s Stats
	s.Nets = len(p.Nets)
	for _, n := range p.Nets {
		s.Nodes += len(n.NodeX)
		s.Resistors += len(n.Res)
		for _, c := range n.CapF {
			if c > 0 {
				s.GroundCaps++
			}
			s.TotalCapF += c
		}
	}
	for _, c := range p.Couplings {
		s.Couplings++
		s.CouplingF += c.Farads
	}
	s.TotalCapF += s.CouplingF
	if s.TotalCapF > 0 {
		s.CouplingFrac = s.CouplingF / s.TotalCapF
	}
	return s
}
