package extract

import (
	"math"
	"testing"

	"xtverify/internal/dsp"
)

func TestTwoWireExtraction(t *testing.T) {
	d, err := dsp.ParallelWires(2, 1000, 1.2, []string{"INV_X2"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Extract(d, Tech025())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nets) != 2 {
		t.Fatalf("%d nets extracted", len(p.Nets))
	}
	tech := Tech025()
	rc := p.Nets[0]
	// Total resistance = r·L.
	rTot := 0.0
	for _, r := range rc.Res {
		rTot += r.Ohms
	}
	wantR := tech.ROhmPerUM * 1000
	if math.Abs(rTot-wantR) > 1e-9*wantR {
		t.Errorf("net resistance %g, want %g", rTot, wantR)
	}
	// Segmentation respects MaxSegUM: 1000/25 = 40 resistors.
	if len(rc.Res) != 40 {
		t.Errorf("%d segments, want 40", len(rc.Res))
	}
	// Grounded wire cap = cg·L plus pin caps.
	wireCap := tech.CgFPerUM * 1000
	pinCap := d.Nets[0].Drivers[0].Cell.OutDiffCapF + d.Nets[0].Receivers[0].Cell.InputCapF
	if got := rc.TotalCapF(); math.Abs(got-(wireCap+pinCap)) > 1e-20 {
		t.Errorf("net cap %g, want %g", got, wireCap+pinCap)
	}
	// Coupling: full-length parallel run at min pitch → Cc0·L total.
	ccTot := 0.0
	for _, c := range p.Couplings {
		if c.NetA != c.NetB {
			ccTot += c.Farads
		}
	}
	wantCC := tech.Cc0FPerUM * 1000 * (tech.MinSpacingUM / 1.2)
	if math.Abs(ccTot-wantCC) > 0.02*wantCC {
		t.Errorf("total coupling %g, want ≈%g", ccTot, wantCC)
	}
}

func TestCouplingFallsWithSpacing(t *testing.T) {
	ccAt := func(pitch float64) float64 {
		d, err := dsp.ParallelWires(2, 500, pitch, []string{"INV_X2"}, "INV_X1")
		if err != nil {
			t.Fatal(err)
		}
		p, err := Extract(d, Tech025())
		if err != nil {
			t.Fatal(err)
		}
		tot := 0.0
		for _, c := range p.Couplings {
			tot += c.Farads
		}
		return tot
	}
	close := ccAt(0.6)
	far := ccAt(2.0)
	if far >= close {
		t.Errorf("coupling should fall with spacing: %g at 0.6µm vs %g at 2µm", close, far)
	}
	// Beyond the window: no coupling at all.
	if none := ccAt(5.0); none != 0 {
		t.Errorf("coupling beyond window = %g, want 0", none)
	}
}

func TestCouplingDominatesForMinPitch(t *testing.T) {
	// The paper's premise: at minimum pitch with neighbours on both sides,
	// coupling exceeds 70% of total capacitance for long wires. Use bare
	// wire stats (middle wire of three).
	d, err := dsp.ParallelWires(3, 2000, 1.2, []string{"INV_X2"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Extract(d, Tech025())
	if err != nil {
		t.Fatal(err)
	}
	mid := p.Nets[1]
	wireCg := 0.0
	for _, c := range mid.CapF {
		wireCg += c
	}
	// Remove pin caps for the wire-only comparison.
	wireCg -= d.Nets[1].Drivers[0].Cell.OutDiffCapF + d.Nets[1].Receivers[0].Cell.InputCapF
	cc := 0.0
	for a, f := range p.NetCouplingF[1] {
		if a != 1 {
			cc += f
		}
	}
	frac := cc / (cc + wireCg)
	if frac < 0.60 {
		t.Errorf("coupling fraction %.2f below the DSM regime", frac)
	}
}

func TestNetCouplingFSymmetric(t *testing.T) {
	d, err := dsp.ParallelWires(3, 400, 1.2, []string{"INV_X2"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Extract(d, Tech025())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Nets {
		for j, f := range p.NetCouplingF[i] {
			if got := p.NetCouplingF[j][i]; got != f {
				t.Errorf("coupling map asymmetric: (%d,%d)=%g vs (%d,%d)=%g", i, j, f, j, i, got)
			}
		}
	}
}

func TestPinAttachment(t *testing.T) {
	d, err := dsp.ParallelWires(1, 300, 1.2, []string{"BUF_X4"}, "NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Extract(d, Tech025())
	if err != nil {
		t.Fatal(err)
	}
	rc := p.Nets[0]
	if len(rc.DriverNodes) != 1 || len(rc.ReceiverNodes) != 1 {
		t.Fatal("pin nodes missing")
	}
	// Driver at x=0, receiver at x=300.
	if rc.NodeX[rc.DriverNodes[0]] != 0 {
		t.Errorf("driver node at x=%g", rc.NodeX[rc.DriverNodes[0]])
	}
	if rc.NodeX[rc.ReceiverNodes[0]] != 300 {
		t.Errorf("receiver node at x=%g", rc.NodeX[rc.ReceiverNodes[0]])
	}
}

func TestExtractionDeterministic(t *testing.T) {
	gen := func() Stats {
		d, err := dsp.Generate(dsp.Config{Seed: 7, Channels: 1, TracksPerChannel: 20, ChannelLengthUM: 600, LatchFraction: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		p, err := Extract(d, Tech025())
		if err != nil {
			t.Fatal(err)
		}
		return p.Stats()
	}
	a, b := gen(), gen()
	if a != b {
		t.Errorf("extraction not deterministic: %+v vs %+v", a, b)
	}
}

func TestDSPExtractionStats(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{Seed: 3, Channels: 2, TracksPerChannel: 40, ChannelLengthUM: 1200, LatchFraction: 0.25, BusFraction: 0.05, ClockSpines: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Extract(d, Tech025())
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Nets != len(d.Nets) {
		t.Errorf("nets %d vs %d", s.Nets, len(d.Nets))
	}
	if s.Couplings == 0 {
		t.Error("no couplings extracted from channel-routed design")
	}
	if s.CouplingFrac < 0.1 {
		t.Errorf("coupling fraction %.2f suspiciously low for channel routing", s.CouplingFrac)
	}
	if s.Resistors == 0 || s.Nodes == 0 {
		t.Error("empty extraction")
	}
}
