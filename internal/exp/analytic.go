package exp

import (
	"fmt"
	"strings"

	"xtverify/internal/analytic"
	"xtverify/internal/cells"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
)

// AnalyticRow compares the closed-form estimates against the detailed flow
// and the SPICE golden for one coupled length.
type AnalyticRow struct {
	LengthUM float64
	// AnalyticV is the Kawaguchi–Sakurai ramp-response estimate;
	// ChargeShareV the fast-aggressor bound.
	AnalyticV, ChargeShareV float64
	// MPVLV and SPICEV are the detailed-flow and reference peaks.
	MPVLV, SPICEV float64
}

// AnalyticResult is the prior-art baseline study: the closed forms the
// paper cites ([2], [5], [18]) versus its MPVL methodology.
type AnalyticResult struct {
	Rows []AnalyticRow
}

// RunAnalytic executes the comparison over the Table 1 lengths with a
// timing-library victim hold (so the closed form and the flow share the
// same abstraction level for the drivers).
func RunAnalytic() (*AnalyticResult, error) {
	tech := extract.Tech025()
	victim, _ := cells.ByName("INV_X1")
	tm, err := cells.CharacterizeCached(victim)
	if err != nil {
		return nil, err
	}
	rHold := tm.DriveResistance(false)
	out := &AnalyticResult{}
	for _, l := range Table1Lengths {
		par, cl, err := pairCluster(l, "INV_X4", "INV_X1")
		if err != nil {
			return nil, err
		}
		eng := engineFor(par, glitch.ModelTimingLibrary, glitchTEnd(l))
		rom, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			return nil, err
		}
		ref, err := eng.SPICEGlitch(cl, true, false)
		if err != nil {
			return nil, err
		}
		// The tech→line mapping (including the Cc falloff with spacing) lives
		// in the analytic package now; the pair geometry uses 2× min spacing.
		form := analytic.FromTech(tech, l, 2*tech.MinSpacingUM, rHold, 500, victim.InputCapF, 120e-12)
		out.Rows = append(out.Rows, AnalyticRow{
			LengthUM:     l,
			AnalyticV:    form.PeakGlitch(),
			ChargeShareV: form.PeakGlitchChargeShare(),
			MPVLV:        rom.PeakV,
			SPICEV:       ref.PeakV,
		})
	}
	return out, nil
}

// Render prints the comparison.
func (r *AnalyticResult) Render() string {
	var b strings.Builder
	b.WriteString("Closed-form prior art vs MPVL flow (rising glitch peaks, V)\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %10s\n", "length", "analytic", "charge-share", "MPVL", "SPICE")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.0fum %10.3f %12.3f %10.3f %10.3f\n",
			row.LengthUM, row.AnalyticV, row.ChargeShareV, row.MPVLV, row.SPICEV)
	}
	b.WriteString("the charge-share bound is safely conservative but up to 4x pessimistic; the ramp\n")
	b.WriteString("estimate misses short resistive lines entirely; the MPVL flow tracks SPICE —\n")
	b.WriteString("the accuracy gap the paper's methodology closes over its cited closed forms.\n")
	return b.String()
}
