package exp

import (
	"fmt"
	"math"
	"strings"

	"xtverify/internal/dsp"
	"xtverify/internal/glitch"
	"xtverify/internal/noiseprop"
	"xtverify/internal/stats"
)

// PropagationResult is the chip-level noise-propagation study: for every
// victim whose glitch clears the reporting floor, how far does the pulse
// travel through downstream logic, and how many reach latch inputs?
type PropagationResult struct {
	// VictimsTraced is the number of glitches followed.
	VictimsTraced int
	// DepthHistogram counts chains by gate depth.
	DepthHistogram *stats.Histogram
	// Filtered counts glitches the first receiver already killed.
	Filtered int
	// ReachedLatch counts pulses surviving to a latch input.
	ReachedLatch int
	// WorstChain names the deepest surviving chain.
	WorstChain []string
}

// RunPropagation executes the study.
func RunPropagation(cfg dsp.Config, maxVictims int, thresholdFrac float64) (*PropagationResult, error) {
	if cfg.Channels == 0 {
		cfg = dsp.DefaultConfig()
	}
	if maxVictims == 0 {
		maxVictims = 60
	}
	if thresholdFrac == 0 {
		thresholdFrac = 0.10
	}
	par, clusters, err := dspPopulation(cfg, 12)
	if err != nil {
		return nil, err
	}
	if err := warmCells(par, clusters); err != nil {
		return nil, err
	}
	eng := glitch.NewEngine(par, glitch.Options{
		Model: glitch.ModelNonlinear, TEnd: 4e-9, Dt: 2e-12, OrderFactor: 3,
	})
	prop := noiseprop.New(par, noiseprop.Options{TEnd: 4e-9, Dt: 2e-12})
	res := &PropagationResult{DepthHistogram: stats.NewHistogram(0, 6, 6)}
	worstDepth := -1
	for _, cl := range clusters {
		if res.VictimsTraced >= maxVictims {
			break
		}
		g, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			return nil, fmt.Errorf("exp: propagation victim %s: %w", par.Design.Nets[cl.Victim].Name, err)
		}
		if math.Abs(g.PeakV) < thresholdFrac*glitch.Vdd {
			continue
		}
		trace, err := prop.Propagate(cl.Victim, g.ReceiverWave, false)
		if err != nil {
			return nil, err
		}
		res.VictimsTraced++
		res.DepthHistogram.Add(float64(trace.Depth))
		if trace.Depth == 0 {
			res.Filtered++
		}
		if trace.ReachedLatch {
			res.ReachedLatch++
		}
		if trace.Depth > worstDepth {
			worstDepth = trace.Depth
			res.WorstChain = res.WorstChain[:0]
			for _, st := range trace.Chain {
				res.WorstChain = append(res.WorstChain, fmt.Sprintf("%s(%.2fV)", st.Name, st.PeakV))
			}
		}
	}
	return res, nil
}

// Render prints the study.
func (r *PropagationResult) Render() string {
	var b strings.Builder
	b.WriteString("Noise propagation through fanout logic (glitches above the reporting floor)\n")
	b.WriteString(r.DepthHistogram.Render("propagation depth (gate stages)", 40))
	fmt.Fprintf(&b, "victims traced: %d   filtered at first receiver: %d   reached a latch input: %d\n",
		r.VictimsTraced, r.Filtered, r.ReachedLatch)
	if len(r.WorstChain) > 0 {
		fmt.Fprintf(&b, "deepest chain: %s\n", strings.Join(r.WorstChain, " -> "))
	}
	return b.String()
}
