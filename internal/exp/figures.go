package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"xtverify/internal/devices"
	"xtverify/internal/dsp"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
	"xtverify/internal/stats"
	"xtverify/internal/waveform"
)

// Fig3Config sizes the MPVL-vs-SPICE accuracy study.
type Fig3Config struct {
	// MaxClusters bounds the population (paper: 113).
	MaxClusters int
	// DSP overrides the design configuration.
	DSP dsp.Config
	// Dt is the shared transient step.
	Dt float64
}

// CaseError records one cluster's comparison.
type CaseError struct {
	Victim     string
	Aggressors int
	ROMPeakV   float64
	SPICEPeakV float64
	// ErrPct follows the paper's convention: (SPICE − MPVL)/SPICE × 100, so
	// negative means MPVL overestimates.
	ErrPct float64
}

// Fig3Result reproduces Figure 3: the distribution of percentage error
// between SPICE and MPVL crosstalk peaks with identical linear 1 kΩ drivers,
// plus the CPU speedup (paper: avg 0.24 %, max 1.05 %, ~15×).
type Fig3Result struct {
	Cases                      []CaseError
	Histogram                  *stats.Histogram
	Summary                    stats.Summary // of ErrPct
	AvgAbsErrPct, MaxAbsErrPct float64
	ROMSeconds, SPICESeconds   float64
	Speedup                    float64
}

// RunFig3 executes the study.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	if cfg.MaxClusters == 0 {
		cfg.MaxClusters = 113
	}
	if cfg.DSP.Channels == 0 {
		cfg.DSP = dsp.DefaultConfig()
	}
	if cfg.Dt == 0 {
		cfg.Dt = 2e-12
	}
	par, clusters, err := dspPopulation(cfg.DSP, 12)
	if err != nil {
		return nil, err
	}
	// A lean reduction order (3 states per port) keeps the MOR error in the
	// paper's visible sub-percent band while maximizing the speed advantage.
	eng := glitch.NewEngine(par, glitch.Options{
		Model: glitch.ModelFixedR, FixedOhms: 1000, TEnd: 4e-9, Dt: cfg.Dt, OrderFactor: 3,
	})
	res := &Fig3Result{Histogram: stats.NewHistogram(-3, 3, 12)}
	var errs []float64
	for _, cl := range clusters {
		if len(cl.Aggressors) < 2 || len(cl.Aggressors) > 12 {
			continue
		}
		t0 := time.Now()
		rom, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			return nil, fmt.Errorf("exp: fig3 victim %s (rom): %w", par.Design.Nets[cl.Victim].Name, err)
		}
		res.ROMSeconds += time.Since(t0).Seconds()
		t0 = time.Now()
		ref, err := eng.SPICEGlitch(cl, true, false)
		if err != nil {
			return nil, fmt.Errorf("exp: fig3 victim %s (spice): %w", par.Design.Nets[cl.Victim].Name, err)
		}
		res.SPICESeconds += time.Since(t0).Seconds()
		if math.Abs(ref.PeakV) < 1e-3 {
			continue
		}
		ce := CaseError{
			Victim:     rom.VictimName,
			Aggressors: rom.ActiveAggressors,
			ROMPeakV:   rom.PeakV,
			SPICEPeakV: ref.PeakV,
			ErrPct:     100 * (ref.PeakV - rom.PeakV) / ref.PeakV,
		}
		res.Cases = append(res.Cases, ce)
		res.Histogram.Add(ce.ErrPct)
		errs = append(errs, ce.ErrPct)
		if len(res.Cases) >= cfg.MaxClusters {
			break
		}
	}
	res.Summary = stats.Summarize(errs)
	res.AvgAbsErrPct = res.Summary.AbsMean
	res.MaxAbsErrPct = res.Summary.AbsMax
	if res.ROMSeconds > 0 {
		res.Speedup = res.SPICESeconds / res.ROMSeconds
	}
	return res, nil
}

// Render prints the figure as an ASCII histogram plus the summary line.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: Accuracy comparison between MPVL and SPICE\n")
	b.WriteString(r.Histogram.Render("% error (SPICE−MPVL)/SPICE", 40))
	fmt.Fprintf(&b, "cases: %d   avg |err|: %.3f%%   max |err|: %.3f%%\n",
		len(r.Cases), r.AvgAbsErrPct, r.MaxAbsErrPct)
	fmt.Fprintf(&b, "CPU: SPICE %.2fs vs MPVL %.2fs  → speedup %.1fx\n",
		r.SPICESeconds, r.ROMSeconds, r.Speedup)
	return b.String()
}

// WaveComparison holds the Figure 4/5 waveform overlays.
type WaveComparison struct {
	Victim    string
	ErrPct    float64
	ROMWave   *waveform.Waveform
	SPICEWave *waveform.Waveform
	// PeakWindow is the Figure 5 zoom span around the SPICE peak.
	PeakLo, PeakHi float64
}

// RunFig45 finds the worst-error Figure 3 case and returns the full
// waveform comparison (Figure 4) and peak zoom bounds (Figure 5).
func RunFig45(cfg Fig3Config) (*WaveComparison, error) {
	if cfg.MaxClusters == 0 {
		cfg.MaxClusters = 25 // the worst case appears early; keep it cheap
	}
	if cfg.DSP.Channels == 0 {
		cfg.DSP = dsp.DefaultConfig()
	}
	if cfg.Dt == 0 {
		cfg.Dt = 2e-12
	}
	par, clusters, err := dspPopulation(cfg.DSP, 12)
	if err != nil {
		return nil, err
	}
	eng := glitch.NewEngine(par, glitch.Options{
		Model: glitch.ModelFixedR, FixedOhms: 1000, TEnd: 4e-9, Dt: cfg.Dt,
	})
	worst := &WaveComparison{}
	count := 0
	for _, cl := range clusters {
		if len(cl.Aggressors) < 2 || len(cl.Aggressors) > 12 {
			continue
		}
		rom, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			return nil, err
		}
		ref, err := eng.SPICEGlitch(cl, true, false)
		if err != nil {
			return nil, err
		}
		if math.Abs(ref.PeakV) < 1e-3 {
			continue
		}
		errPct := 100 * (ref.PeakV - rom.PeakV) / ref.PeakV
		if math.Abs(errPct) >= math.Abs(worst.ErrPct) {
			worst.Victim = rom.VictimName
			worst.ErrPct = errPct
			worst.ROMWave = rom.ReceiverWave
			worst.SPICEWave = ref.ReceiverWave
			span := 0.6e-9
			worst.PeakLo = ref.PeakTime - span/2
			worst.PeakHi = ref.PeakTime + span/2
		}
		count++
		if count >= cfg.MaxClusters {
			break
		}
	}
	if worst.ROMWave == nil {
		return nil, fmt.Errorf("exp: fig4/5 found no comparable cases")
	}
	return worst, nil
}

// Render draws Figure 4 (full waveforms) and Figure 5 (peak zoom).
func (w *WaveComparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: crosstalk waveform, MPVL (*) vs SPICE (+), victim %s (worst case, err %.2f%%)\n",
		w.Victim, w.ErrPct)
	b.WriteString(waveform.ASCIIPlot(72, 16, w.ROMWave, w.SPICEWave))
	b.WriteString("\nFigure 5: magnified crosstalk peak\n")
	zoomR := zoom(w.ROMWave, w.PeakLo, w.PeakHi)
	zoomS := zoom(w.SPICEWave, w.PeakLo, w.PeakHi)
	b.WriteString(waveform.ASCIIPlot(72, 16, zoomR, zoomS))
	return b.String()
}

func zoom(w *waveform.Waveform, lo, hi float64) *waveform.Waveform {
	out := waveform.New(128)
	if hi <= lo {
		return w.Clone()
	}
	for i := 0; i < 128; i++ {
		t := lo + (hi-lo)*float64(i)/127
		if t < 0 {
			continue
		}
		out.Append(t, w.At(t))
	}
	return out
}

// Fig67Config sizes the latch-input victim study.
type Fig67Config struct {
	// MaxVictims bounds the population (paper: 101).
	MaxVictims int
	DSP        dsp.Config
	Dt         float64
}

// Fig67Result reproduces Figures 6 and 7: nonlinear-cell-model MPVL versus
// transistor-level SPICE crosstalk peaks on latch-input victims, for peaks
// above 10 % of Vdd. The paper reports errors of −6.9 %…+8.2 % (rising) and
// −6.1 %…+10.5 % (falling) for peaks above 20 % Vdd, and ~25× CPU gain.
type Fig67Result struct {
	Rising    bool
	Cases     []CaseError
	Histogram *stats.Histogram
	// Over10 and Over20 summarize errors for peaks >10 % and >20 % of Vdd.
	Over10, Over20                    stats.Summary
	ROMSeconds, SPICESeconds, Speedup float64
}

// RunFig67 executes the study for one polarity (rising = Figure 6).
func RunFig67(rising bool, cfg Fig67Config) (*Fig67Result, error) {
	if cfg.MaxVictims == 0 {
		cfg.MaxVictims = 101
	}
	if cfg.DSP.Channels == 0 {
		cfg.DSP = dsp.DefaultConfig()
	}
	if cfg.Dt == 0 {
		cfg.Dt = 2e-12
	}
	par, clusters, err := dspPopulation(cfg.DSP, 12)
	if err != nil {
		return nil, err
	}
	eng := glitch.NewEngine(par, glitch.Options{
		Model: glitch.ModelNonlinear, TEnd: 4e-9, Dt: cfg.Dt, OrderFactor: 3,
	})
	// Select the latch-input victim population (the paper's Section 5
	// choice), then pre-characterize every involved cell: characterization
	// is a one-time library task and must not pollute the CPU comparison.
	var selected []*prune.Cluster
	for _, cl := range clusters {
		latch := false
		for _, rc := range par.Design.Nets[cl.Victim].Receivers {
			if rc.Cell.Sequential {
				latch = true
				break
			}
		}
		if !latch || len(cl.Aggressors) < 1 {
			continue
		}
		selected = append(selected, cl)
		if len(selected) >= cfg.MaxVictims+10 { // headroom for skipped small peaks
			break
		}
	}
	if err := warmCells(par, selected); err != nil {
		return nil, err
	}
	res := &Fig67Result{Rising: rising, Histogram: stats.NewHistogram(-15, 15, 12)}
	var over10, over20 []float64
	const vdd = devices.Vdd025
	for _, cl := range selected {
		t0 := time.Now()
		rom, err := eng.AnalyzeGlitch(cl, rising)
		if err != nil {
			return nil, fmt.Errorf("exp: fig6/7 victim %s (rom): %w", par.Design.Nets[cl.Victim].Name, err)
		}
		res.ROMSeconds += time.Since(t0).Seconds()
		t0 = time.Now()
		ref, err := eng.SPICEGlitch(cl, rising, true)
		if err != nil {
			return nil, fmt.Errorf("exp: fig6/7 victim %s (spice): %w", par.Design.Nets[cl.Victim].Name, err)
		}
		res.SPICESeconds += time.Since(t0).Seconds()
		refAbs := math.Abs(ref.PeakV)
		if refAbs < 0.10*vdd {
			continue // the paper reports only peaks above 10% of supply
		}
		// Paper convention: negative error = SPICE more pessimistic... for
		// Figures 6/7 "a negative error indicates that SPICE results are
		// more pessimistic", i.e. err = (MPVL − SPICE)/SPICE.
		errPct := 100 * (math.Abs(rom.PeakV) - refAbs) / refAbs
		res.Cases = append(res.Cases, CaseError{
			Victim:     rom.VictimName,
			Aggressors: rom.ActiveAggressors,
			ROMPeakV:   rom.PeakV,
			SPICEPeakV: ref.PeakV,
			ErrPct:     errPct,
		})
		res.Histogram.Add(errPct)
		over10 = append(over10, errPct)
		if refAbs > 0.20*vdd {
			over20 = append(over20, errPct)
		}
		if len(res.Cases) >= cfg.MaxVictims {
			break
		}
	}
	res.Over10 = stats.Summarize(over10)
	res.Over20 = stats.Summarize(over20)
	if res.ROMSeconds > 0 {
		res.Speedup = res.SPICESeconds / res.ROMSeconds
	}
	return res, nil
}

// Render prints the figure.
func (r *Fig67Result) Render() string {
	name, dir := "Figure 6", "Rising"
	if !r.Rising {
		name, dir = "Figure 7", "Falling"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s crosstalk peak, non-linear cell model vs transistor-level SPICE\n", name, dir)
	b.WriteString(r.Histogram.Render("% error (MPVL−SPICE)/SPICE, peaks > 10% Vdd", 40))
	fmt.Fprintf(&b, "peaks > 10%% Vdd: %d cases, err range %.1f%% .. %.1f%%\n",
		r.Over10.N, r.Over10.Min, r.Over10.Max)
	fmt.Fprintf(&b, "peaks > 20%% Vdd: %d cases, err range %.1f%% .. %.1f%%\n",
		r.Over20.N, r.Over20.Min, r.Over20.Max)
	fmt.Fprintf(&b, "CPU: SPICE %.2fs vs MPVL %.2fs  → speedup %.1fx\n",
		r.SPICESeconds, r.ROMSeconds, r.Speedup)
	return b.String()
}

// PruneResult reproduces the Section 3 pruning statistics (mean 105 nets
// per cluster before pruning → 2–5 after).
type PruneResult struct {
	Stats prune.Stats
}

// RunPruneStats computes the statistics on the synthetic DSP.
func RunPruneStats(cfg dsp.Config) (*PruneResult, error) {
	if cfg.Channels == 0 {
		cfg = dsp.DefaultConfig()
	}
	par, _, err := dspPopulation(cfg, 0)
	if err != nil {
		return nil, err
	}
	s := prune.ComputeStats(par, prune.DefaultOptions())
	return &PruneResult{Stats: s}, nil
}

// Render prints the pruning summary.
func (p *PruneResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 3 pruning statistics\n")
	fmt.Fprintf(&b, "raw coupled clusters:    %d, mean %.1f nets (net-weighted %.1f), max %d\n",
		p.Stats.RawClusters, p.Stats.RawMeanSize, p.Stats.RawNetMeanSize, p.Stats.RawMaxSize)
	fmt.Fprintf(&b, "pruned victim clusters:  %d, mean %.1f nets, max %d\n",
		p.Stats.PrunedClusters, p.Stats.PrunedMeanSize, p.Stats.PrunedMaxSize)
	fmt.Fprintf(&b, "coupling capacitance retained: %.0f%%\n", 100*p.Stats.KeptCouplingFrac)
	return b.String()
}
