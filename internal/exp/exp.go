// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for paper-vs-measured records). Each experiment returns a
// structured result with a Render method used by cmd/repro and the
// repository benchmarks.
package exp

import (
	"fmt"
	"sort"

	"xtverify/internal/cellmodel"
	"xtverify/internal/cells"
	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
)

// linesCluster extracts the Figure 1 parallel-wire structure (two aggressors
// around one victim, per the paper's A1/V/A2 drawing) and returns the
// analysis inputs.
func linesCluster(lengthUM float64, driver, victimDriver string) (*extract.Parasitics, *prune.Cluster, error) {
	d, err := dsp.ParallelWires(3, lengthUM, 1.2, []string{driver, victimDriver, driver}, "INV_X1")
	if err != nil {
		return nil, nil, err
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		return nil, nil, err
	}
	cl := prune.PruneVictim(par, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	if len(cl.Aggressors) == 0 {
		return nil, nil, fmt.Errorf("exp: no coupling extracted at %g µm", lengthUM)
	}
	return par, cl, nil
}

// pairCluster builds a single aggressor + victim pair for the Table 3/4
// model-accuracy sweeps.
func pairCluster(lengthUM float64, aggressorDriver, victimDriver string) (*extract.Parasitics, *prune.Cluster, error) {
	d, err := dsp.ParallelWires(2, lengthUM, 1.2, []string{aggressorDriver, victimDriver}, "INV_X1")
	if err != nil {
		return nil, nil, err
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		return nil, nil, err
	}
	cl := prune.PruneVictim(par, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	if len(cl.Aggressors) == 0 {
		return nil, nil, fmt.Errorf("exp: no coupling extracted at %g µm", lengthUM)
	}
	return par, cl, nil
}

// glitchTEnd adapts the transient span to the wire length so slow victims
// settle.
func glitchTEnd(lengthUM float64) float64 {
	t := 3e-9 + lengthUM*1.2e-12
	return t
}

// dspPopulation generates the Section 5 design, extracts, and prunes it.
func dspPopulation(cfg dsp.Config, maxAggressors int) (*extract.Parasitics, []*prune.Cluster, error) {
	d, err := dsp.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		return nil, nil, err
	}
	cls := prune.Clusters(par, prune.Options{
		CapRatioThreshold: 0.02,
		MinCouplingF:      0.5e-15,
		MaxAggressors:     maxAggressors,
	})
	sort.Slice(cls, func(i, j int) bool { return cls[i].Victim < cls[j].Victim })
	return par, cls, nil
}

// warmCells pre-runs the one-time cell characterizations (NLDM tables and
// static I–V curves) for every driver cell appearing in the clusters, so
// timed comparisons measure analysis cost only.
func warmCells(par *extract.Parasitics, clusters []*prune.Cluster) error {
	seen := map[string]bool{}
	warm := func(c *cells.Cell) error {
		if seen[c.Name] {
			return nil
		}
		seen[c.Name] = true
		if _, err := cells.CharacterizeCached(c); err != nil {
			return err
		}
		if _, err := cellmodel.CharacterizeIV(c, cellmodel.StagePullDown, 0); err != nil {
			return err
		}
		_, err := cellmodel.CharacterizeIV(c, cellmodel.StagePullUp, 0)
		return err
	}
	for _, cl := range clusters {
		for _, m := range cl.MemberNets() {
			for _, pin := range par.Design.Nets[m].Drivers {
				if err := warm(pin.Cell); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// engineFor constructs a glitch engine with the experiment defaults.
func engineFor(par *extract.Parasitics, model glitch.ModelKind, tEnd float64) *glitch.Engine {
	return glitch.NewEngine(par, glitch.Options{
		Model:     model,
		FixedOhms: 1000,
		TEnd:      tEnd,
		Dt:        2e-12,
	})
}
