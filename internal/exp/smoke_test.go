package exp

import (
	"math"
	"strings"
	"testing"

	"xtverify/internal/dsp"
	"xtverify/internal/glitch"
)

// smallDSP keeps the experiment smoke tests fast while preserving the
// population structure.
func smallDSP(seed int64) dsp.Config {
	return dsp.Config{Seed: seed, Channels: 1, TracksPerChannel: 70,
		ChannelLengthUM: 1200, BusFraction: 0.05, LatchFraction: 0.35, ClockSpines: 1}
}

func TestTable1ShapeMonotone(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].GlitchV <= res.Rows[i-1].GlitchV {
			t.Errorf("Table 1 not monotone: %+v", res.Rows)
		}
	}
	// All glitches positive, below supply.
	for _, r := range res.Rows {
		if r.GlitchV <= 0 || r.GlitchV >= 3 {
			t.Errorf("glitch %g out of range for %s", r.GlitchV, r.Name)
		}
	}
	if !strings.Contains(res.Render(), "ckt4") {
		t.Error("render missing circuits")
	}
}

func TestTable2ShapeCouplingWorsensDelay(t *testing.T) {
	res, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.RiseWith <= r.RiseWithout {
			t.Errorf("%s: rise with coupling %.3g should exceed without %.3g", r.Name, r.RiseWith, r.RiseWithout)
		}
		if r.FallWith <= r.FallWithout {
			t.Errorf("%s: fall with coupling %.3g should exceed without %.3g", r.Name, r.FallWith, r.FallWithout)
		}
	}
	// Delay deterioration grows with coupled length.
	d1 := res.Rows[0].RiseWith - res.Rows[0].RiseWithout
	d4 := res.Rows[3].RiseWith - res.Rows[3].RiseWithout
	if d4 <= d1 {
		t.Errorf("deterioration should grow with length: %g vs %g", d1, d4)
	}
	if !strings.Contains(res.Render(), "ns") {
		t.Error("render missing units")
	}
}

var accuracySmokeCells = []string{"INV_X1", "INV_X4", "NAND2_X2", "NOR2_X1", "BUF_X2"}

func TestModelAccuracySmoke(t *testing.T) {
	cfg := AccuracyConfig{LengthsPerCell: 3, Dt: 4e-12}
	lin, err := RunModelAccuracy(glitch.ModelTimingLibrary, cfg, accuracySmokeCells)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := RunModelAccuracy(glitch.ModelNonlinear, cfg, accuracySmokeCells)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Cases == 0 || nl.Cases == 0 {
		t.Fatal("no cases measured")
	}
	// The Section 4 headline: the nonlinear model is more accurate.
	if nl.Summary.AbsMean >= lin.Summary.AbsMean {
		t.Errorf("nonlinear |err| %.2f%% should beat linear %.2f%%", nl.Summary.AbsMean, lin.Summary.AbsMean)
	}
	// Table 4's quality bar at smoke scale: most cases within 10%.
	if nl.PctWithin10 < 0.7 {
		t.Errorf("only %.0f%% of nonlinear cases within 10%%", 100*nl.PctWithin10)
	}
	if !strings.Contains(nl.Render(), "Table 4") || !strings.Contains(lin.Render(), "Table 3") {
		t.Error("render titles wrong")
	}
}

func TestFig3Smoke(t *testing.T) {
	res, err := RunFig3(Fig3Config{MaxClusters: 12, DSP: smallDSP(31), Dt: 4e-12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) < 5 {
		t.Fatalf("only %d cases", len(res.Cases))
	}
	// The Figure 3 regime: MOR-only error is far below driver-model error.
	if res.MaxAbsErrPct > 3 {
		t.Errorf("max |err| %.2f%% too large for identical-driver comparison", res.MaxAbsErrPct)
	}
	if res.Speedup < 2 {
		t.Errorf("speedup %.1fx implausibly low", res.Speedup)
	}
	if !strings.Contains(res.Render(), "speedup") {
		t.Error("render missing speedup")
	}
}

func TestFig45Smoke(t *testing.T) {
	res, err := RunFig45(Fig3Config{MaxClusters: 6, DSP: smallDSP(32), Dt: 4e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.ROMWave == nil || res.SPICEWave == nil {
		t.Fatal("missing waveforms")
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Figure 5") {
		t.Error("render missing figures")
	}
	// The two waveforms must be close everywhere (not just at the peak).
	// Figure 4's point is that they are indistinguishable at full scale.
	maxDiff := 0.0
	for i := 0; i < 200; i++ {
		tt := res.SPICEWave.T[0] + (res.SPICEWave.T[len(res.SPICEWave.T)-1]-res.SPICEWave.T[0])*float64(i)/199
		d := math.Abs(res.ROMWave.At(tt) - res.SPICEWave.At(tt))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.1 {
		t.Errorf("waveform deviation %.3f V too large", maxDiff)
	}
}

func TestFig67Smoke(t *testing.T) {
	res, err := RunFig67(true, Fig67Config{MaxVictims: 6, DSP: smallDSP(33), Dt: 4e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Over10.N == 0 {
		t.Skip("no >10% Vdd latch-input glitches in the small population")
	}
	// Error band should be within a paper-like envelope (generous at smoke
	// scale): ±20%.
	if res.Over10.Min < -20 || res.Over10.Max > 20 {
		t.Errorf("error range [%.1f, %.1f] outside ±20%%", res.Over10.Min, res.Over10.Max)
	}
	if res.Speedup < 1 {
		t.Errorf("speedup %.1fx: reduced-order flow slower than SPICE", res.Speedup)
	}
	fall, err := RunFig67(false, Fig67Config{MaxVictims: 4, DSP: smallDSP(33), Dt: 4e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fall.Render(), "Figure 7") {
		t.Error("falling render title wrong")
	}
}

func TestPruneStatsSmoke(t *testing.T) {
	res, err := RunPruneStats(smallDSP(34))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.PrunedMeanSize < 2 || s.PrunedMeanSize > 8 {
		t.Errorf("pruned mean %.1f outside regime", s.PrunedMeanSize)
	}
	if s.RawMeanSize <= s.PrunedMeanSize {
		t.Errorf("raw mean %.1f should exceed pruned %.1f", s.RawMeanSize, s.PrunedMeanSize)
	}
	if !strings.Contains(res.Render(), "pruning") {
		t.Error("render wrong")
	}
}

func TestAnalyticComparisonSmoke(t *testing.T) {
	res, err := RunAnalytic()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		// MPVL must track SPICE far better than the closed forms do.
		mpvlErr := math.Abs(r.MPVLV - r.SPICEV)
		analyticErr := math.Abs(r.AnalyticV - r.SPICEV)
		if mpvlErr > analyticErr && analyticErr > 0.01 {
			t.Errorf("l=%g: MPVL err %.3f should beat analytic err %.3f", r.LengthUM, mpvlErr, analyticErr)
		}
		// Charge-share stays a true upper bound on the reference.
		if r.ChargeShareV < r.SPICEV {
			t.Errorf("l=%g: charge-share %.3f below SPICE %.3f", r.LengthUM, r.ChargeShareV, r.SPICEV)
		}
	}
	if !strings.Contains(res.Render(), "charge-share") {
		t.Error("render malformed")
	}
}

func TestPropagationSmoke(t *testing.T) {
	res, err := RunPropagation(smallDSP(35), 8, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimsTraced == 0 {
		t.Skip("no glitches above the floor in the small population")
	}
	total := res.DepthHistogram.Total()
	if total != res.VictimsTraced {
		t.Errorf("histogram total %d vs traced %d", total, res.VictimsTraced)
	}
	// Filtered and ReachedLatch may overlap (a depth-0 glitch whose victim
	// itself feeds a latch counts in both), but each is bounded by the
	// traced population.
	if res.Filtered > res.VictimsTraced || res.ReachedLatch > res.VictimsTraced {
		t.Errorf("counters inconsistent: %+v", res)
	}
	if !strings.Contains(res.Render(), "propagation depth") {
		t.Error("render malformed")
	}
}
