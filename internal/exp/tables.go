package exp

import (
	"fmt"
	"math"
	"strings"

	"xtverify/internal/devices"
	"xtverify/internal/glitch"
	"xtverify/internal/stats"
)

// Table1Row is one coupled-length data point.
type Table1Row struct {
	Name     string
	LengthUM float64
	GlitchV  float64
	FracVdd  float64
}

// Table1Result reproduces Table 1: peak glitch versus coupled wire length.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Lengths are the paper's test-circuit lengths (ckt1–ckt4).
var Table1Lengths = []float64{100, 1000, 2000, 4000}

// RunTable1 analyzes the Figure 1 structure at each coupled length using
// the nonlinear cell model.
func RunTable1() (*Table1Result, error) {
	out := &Table1Result{}
	for i, l := range Table1Lengths {
		par, cl, err := linesCluster(l, "INV_X4", "INV_X1")
		if err != nil {
			return nil, err
		}
		eng := engineFor(par, glitch.ModelNonlinear, glitchTEnd(l))
		res, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			return nil, fmt.Errorf("exp: table1 ckt%d: %w", i+1, err)
		}
		out.Rows = append(out.Rows, Table1Row{
			Name:     fmt.Sprintf("ckt%d", i+1),
			LengthUM: l,
			GlitchV:  res.PeakV,
			FracVdd:  res.PeakV / devices.Vdd025,
		})
	}
	return out, nil
}

// Render prints the table in the paper's layout.
func (t *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: Coupled wire length and glitch\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%10s", r.Name)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "length")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%8.0fum", r.LengthUM)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "glitch")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%9.3fv", r.GlitchV)
	}
	b.WriteString("\n")
	return b.String()
}

// Table2Row is one circuit's delay set.
type Table2Row struct {
	Name                  string
	LengthUM              float64
	RiseWithout, RiseWith float64
	FallWithout, FallWith float64
}

// Table2Result reproduces Table 2: interconnect delays with and without
// coupling (aggressors switching opposite to the victim in the coupled
// case).
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 measures rise/fall delays for ckt1–ckt4.
func RunTable2() (*Table2Result, error) {
	out := &Table2Result{}
	for i, l := range Table1Lengths {
		par, cl, err := linesCluster(l, "INV_X4", "INV_X1")
		if err != nil {
			return nil, err
		}
		eng := engineFor(par, glitch.ModelNonlinear, glitchTEnd(l)+3e-9)
		row := Table2Row{Name: fmt.Sprintf("ckt%d", i+1), LengthUM: l}
		for _, rising := range []bool{true, false} {
			for _, coupled := range []bool{true, false} {
				dr, err := eng.AnalyzeDelay(cl, rising, coupled)
				if err != nil {
					return nil, fmt.Errorf("exp: table2 %s rising=%v coupled=%v: %w", row.Name, rising, coupled, err)
				}
				switch {
				case rising && coupled:
					row.RiseWith = dr.Delay
				case rising && !coupled:
					row.RiseWithout = dr.Delay
				case !rising && coupled:
					row.FallWith = dr.Delay
				default:
					row.FallWithout = dr.Delay
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table in the paper's layout.
func (t *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: Interconnect delays (ns)\n")
	fmt.Fprintf(&b, "%-6s %14s %14s %14s %14s\n", "ckt",
		"Rise w/o coup", "Rise w/ coup", "Fall w/o coup", "Fall w/ coup")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-6s %11.4f ns %11.4f ns %11.4f ns %11.4f ns\n",
			r.Name, r.RiseWithout*1e9, r.RiseWith*1e9, r.FallWithout*1e9, r.FallWith*1e9)
	}
	return b.String()
}

// AccuracyConfig sizes the Table 3/4 model-accuracy sweeps.
type AccuracyConfig struct {
	// Cells restricts the cell population (default: whole library).
	Cells []string
	// LengthsPerCell is the number of wire lengths per cell (default 8,
	// spread over 10–5000 µm with per-cell jitter so >60 distinct lengths
	// appear overall, as in the paper).
	LengthsPerCell int
	// Dt is the transient step (default 2 ps).
	Dt float64
}

// BinStats is one glitch-magnitude row of Table 3/4.
type BinStats struct {
	LoV, HiV float64
	N        int
	// Errors are percentages relative to the SPICE peak.
	AvgErrPct, StdErrPct, MinErrPct, MaxErrPct float64
}

// ModelAccuracyResult reproduces Table 3 (linear timing-library model) or
// Table 4 (nonlinear cell model): rising-glitch peak errors versus
// transistor-level SPICE, grouped by glitch magnitude.
type ModelAccuracyResult struct {
	Model           glitch.ModelKind
	Cases           int
	DistinctLengths int
	Bins            []BinStats
	// PctWithin10 is the fraction of cases with |err| < 10 %; PctOver50 the
	// fraction beyond 50 % (the paper quotes >85 % and ≤2 cases).
	PctWithin10, PctOver50 float64
	// Summary aggregates all errors.
	Summary stats.Summary
}

func defaultLengths(cellIdx, perCell int) []float64 {
	base := []float64{10, 50, 150, 400, 800, 1500, 3000, 5000}
	out := make([]float64, 0, perCell)
	for k := 0; k < perCell; k++ {
		// Spread the picks over the whole ladder when fewer than len(base)
		// lengths are requested, so scaled-down sweeps still cover short,
		// medium and long wires.
		var l float64
		if perCell < len(base) {
			l = base[(k*len(base))/perCell+len(base)/(2*perCell)]
		} else {
			l = base[k%len(base)]
		}
		// Deterministic per-cell jitter spreads the sweep over >60 distinct
		// lengths without randomness.
		jitter := 1 + 0.06*float64((cellIdx%7)-3)/3
		out = append(out, math.Round(l*jitter))
	}
	return out
}

// RunModelAccuracy executes the sweep for the given driver model.
func RunModelAccuracy(model glitch.ModelKind, cfg AccuracyConfig, cellNames []string) (*ModelAccuracyResult, error) {
	if cfg.LengthsPerCell == 0 {
		cfg.LengthsPerCell = 8
	}
	if cfg.Dt == 0 {
		cfg.Dt = 2e-12
	}
	if cfg.Cells != nil {
		cellNames = cfg.Cells
	}
	var keys, errsPct []float64
	seen := map[float64]bool{}
	for ci, cellName := range cellNames {
		for _, l := range defaultLengths(ci, cfg.LengthsPerCell) {
			seen[l] = true
			par, cl, err := pairCluster(l, "BUF_X4", cellName)
			if err != nil {
				return nil, err
			}
			eng := engineFor(par, model, glitchTEnd(l))
			eng.Opt.Dt = cfg.Dt
			rom, err := eng.AnalyzeGlitch(cl, true)
			if err != nil {
				return nil, fmt.Errorf("exp: accuracy %s @%gum (model): %w", cellName, l, err)
			}
			gold, err := eng.SPICEGlitch(cl, true, true)
			if err != nil {
				return nil, fmt.Errorf("exp: accuracy %s @%gum (spice): %w", cellName, l, err)
			}
			if gold.PeakV < 0.02 {
				continue // glitch too small to define a relative error
			}
			keys = append(keys, gold.PeakV)
			errsPct = append(errsPct, 100*(rom.PeakV-gold.PeakV)/gold.PeakV)
		}
	}
	res := &ModelAccuracyResult{Model: model, Cases: len(errsPct), DistinctLengths: len(seen)}
	res.Summary = stats.Summarize(errsPct)
	within10, over50 := 0, 0
	for _, e := range errsPct {
		if math.Abs(e) < 10 {
			within10++
		}
		if math.Abs(e) > 50 {
			over50++
		}
	}
	if len(errsPct) > 0 {
		res.PctWithin10 = float64(within10) / float64(len(errsPct))
		res.PctOver50 = float64(over50) / float64(len(errsPct))
	}
	for _, bin := range stats.BinBy(keys, errsPct, []float64{0.3, 0.6, 1.0, 1.5}) {
		s := stats.Summarize(bin.Values)
		res.Bins = append(res.Bins, BinStats{
			LoV: bin.Lo, HiV: bin.Hi, N: s.N,
			AvgErrPct: s.Mean, StdErrPct: s.Std, MinErrPct: s.Min, MaxErrPct: s.Max,
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *ModelAccuracyResult) Render() string {
	name := "Table 3: Timing library based model"
	if r.Model == glitch.ModelNonlinear {
		name = "Table 4: Non-linear cell model"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (Vdd = 3.0), %d cases, %d distinct lengths\n", name, r.Cases, r.DistinctLengths)
	fmt.Fprintf(&b, "%-14s %5s %9s %9s %9s %9s\n", "peak glitch(v)", "n", "avg err", "std err", "min err", "max err")
	for _, bin := range r.Bins {
		if bin.N == 0 {
			continue
		}
		lo := fmt.Sprintf("%.1f", bin.LoV)
		if math.IsInf(bin.LoV, -1) {
			lo = "0.0"
		}
		hi := fmt.Sprintf("%.1f", bin.HiV)
		if math.IsInf(bin.HiV, 1) {
			hi = "+"
		}
		fmt.Fprintf(&b, "%-14s %5d %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			lo+" .. "+hi, bin.N, bin.AvgErrPct, bin.StdErrPct, bin.MinErrPct, bin.MaxErrPct)
	}
	fmt.Fprintf(&b, "cases with |err| < 10%%: %.0f%%   cases with |err| > 50%%: %.1f%%\n",
		100*r.PctWithin10, 100*r.PctOver50)
	return b.String()
}
