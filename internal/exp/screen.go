package exp

import (
	"fmt"
	"strings"

	"xtverify/internal/analytic"
	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
)

// ScreenRow records one coupling-ratio point of the rung-0 screening sweep:
// the analytic worst-case bound against the detailed-flow and SPICE-golden
// peaks, and whether the screen would clear the cluster without simulation.
type ScreenRow struct {
	// LengthUM is the coupled length that sets this point's coupling ratio.
	LengthUM float64
	// CapRatio is the victim's lumped Cc/(Cc+Cg) coupling fraction.
	CapRatio float64
	// BoundV is the rung-0 analytic superposition bound.
	BoundV float64
	// MPVLV and SPICEV are the detailed-flow and reference glitch peaks.
	MPVLV, SPICEV float64
	// Screened reports whether bound·(1+sf) < margin clears the cluster.
	Screened bool
}

// ScreenSweepResult is the screening-tightness study: how conservative the
// closed-form bound is across coupling ratios, and where the screen stops
// clearing clusters relative to the noise margin.
type ScreenSweepResult struct {
	// MarginV is the glitch noise margin (threshold fraction × Vdd).
	MarginV float64
	// SafetyFactor inflates the bound before the margin comparison.
	SafetyFactor float64
	Rows         []ScreenRow
}

// ScreenSweepLengths are the coupled lengths swept (µm). Short lines sit in
// the provably-quiet tail the screen exists to clear; long lines approach
// and cross the noise margin.
var ScreenSweepLengths = []float64{10, 25, 50, 100, 200, 400, 700, 1000}

// RunScreenSweep sweeps the A1/V/A2 parallel-wire structure across coupled
// lengths (at the given spacing) and compares the rung-0 bound with the
// detailed flow and the SPICE golden at each coupling ratio. Drivers use the
// timing-library model — the same abstraction the engine's screen reasons
// about.
func RunScreenSweep(spacingUM, marginFrac, safetyFactor float64) (*ScreenSweepResult, error) {
	tech := extract.Tech025()
	out := &ScreenSweepResult{
		MarginV:      marginFrac * tech.Vdd,
		SafetyFactor: safetyFactor,
	}
	for _, l := range ScreenSweepLengths {
		d, err := dsp.ParallelWires(3, l, spacingUM, []string{"INV_X4", "INV_X1", "INV_X4"}, "INV_X1")
		if err != nil {
			return nil, err
		}
		par, err := extract.Extract(d, tech)
		if err != nil {
			return nil, err
		}
		cl := prune.PruneVictim(par, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
		if len(cl.Aggressors) == 0 {
			return nil, fmt.Errorf("exp: no coupling extracted at %g µm", l)
		}
		bound, err := analytic.BoundCluster(par, cl, analytic.BoundOptions{
			Model: analytic.DriverTimingLibrary,
			Vdd:   tech.Vdd,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: bound at %g µm: %w", l, err)
		}
		eng := engineFor(par, glitch.ModelTimingLibrary, glitchTEnd(l))
		rom, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			return nil, err
		}
		ref, err := eng.SPICEGlitch(cl, true, false)
		if err != nil {
			return nil, err
		}
		var cc float64
		for _, a := range cl.Aggressors {
			cc += a.CouplingF
		}
		cg := par.Nets[cl.Victim].TotalCapF() + cl.DroppedF
		out.Rows = append(out.Rows, ScreenRow{
			LengthUM: l,
			CapRatio: cc / (cc + cg),
			BoundV:   bound,
			MPVLV:    rom.PeakV,
			SPICEV:   ref.PeakV,
			Screened: bound*(1+safetyFactor) < out.MarginV,
		})
	}
	return out, nil
}

// Render prints the sweep table with the screened fraction.
func (r *ScreenSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rung-0 screening sweep (margin %.3f V, safety x%.2f)\n", r.MarginV, 1+r.SafetyFactor)
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %11s %9s\n",
		"length", "capratio", "bound", "MPVL", "SPICE", "bound/SPICE", "screened")
	screened, sound := 0, true
	for _, row := range r.Rows {
		tight := 0.0
		if row.SPICEV > 0 {
			tight = row.BoundV / row.SPICEV
		}
		if row.BoundV < row.SPICEV {
			sound = false
		}
		mark := "no"
		if row.Screened {
			mark = "yes"
			screened++
		}
		fmt.Fprintf(&b, "%8.0fum %9.4f %8.4fV %8.4fV %8.4fV %11.2fx %9s\n",
			row.LengthUM, row.CapRatio, row.BoundV, row.MPVLV, row.SPICEV, tight, mark)
	}
	fmt.Fprintf(&b, "screened %d/%d points; bound >= SPICE at every point: %v\n",
		screened, len(r.Rows), sound)
	b.WriteString("the bound is conservative across the whole coupling range and clears the\n")
	b.WriteString("quiet short-line tail — the clusters the full ROM/transient flow would\n")
	b.WriteString("otherwise spend its time re-proving safe.\n")
	return b.String()
}
