package exp

import (
	"fmt"
	"strings"

	"xtverify/internal/dsp"
	"xtverify/internal/em"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
	"xtverify/internal/stats"
)

// TimingImpactResult is the chip-level timing recalculation study (the
// Section 4.2 "timing recalculation" application; the chip-scale Table 2).
type TimingImpactResult struct {
	Impacts []glitch.TimingImpact
	// DeteriorationPct summarizes the relative delay increases.
	DeterioratePct stats.Summary
	// WorstDeltaPS is the largest absolute delay change.
	WorstDeltaPS float64
}

// RunTimingImpact measures the coupled-vs-decoupled rising delay of every
// cluster victim in the design.
func RunTimingImpact(cfg dsp.Config, maxVictims int) (*TimingImpactResult, error) {
	if cfg.Channels == 0 {
		cfg = dsp.DefaultConfig()
	}
	par, clusters, err := dspPopulation(cfg, 12)
	if err != nil {
		return nil, err
	}
	if maxVictims > 0 && len(clusters) > maxVictims {
		clusters = clusters[:maxVictims]
	}
	eng := glitch.NewEngine(par, glitch.Options{
		Model: glitch.ModelTimingLibrary, TEnd: 8e-9, Dt: 2e-12, OrderFactor: 3,
	})
	impacts, err := eng.TimingImpactReport(clusters, true)
	if err != nil {
		return nil, err
	}
	res := &TimingImpactResult{Impacts: impacts}
	var pct []float64
	for _, ti := range impacts {
		pct = append(pct, ti.DeteriorationPct)
		if d := ti.DeltaS * 1e12; d > res.WorstDeltaPS {
			res.WorstDeltaPS = d
		}
	}
	res.DeterioratePct = stats.Summarize(pct)
	return res, nil
}

// Render prints the worst offenders and the distribution summary.
func (r *TimingImpactResult) Render() string {
	var b strings.Builder
	b.WriteString("Chip-level timing recalculation: coupling-induced delay changes (rising)\n")
	fmt.Fprintf(&b, "%-24s %12s %14s %8s %6s\n", "victim", "base (ps)", "coupled (ps)", "worse", "aggr")
	n := len(r.Impacts)
	if n > 10 {
		n = 10
	}
	for _, ti := range r.Impacts[:n] {
		fmt.Fprintf(&b, "%-24s %12.1f %14.1f %+7.0f%% %6d\n",
			ti.Victim, ti.BaseDelay*1e12, ti.CoupledDelay*1e12, ti.DeteriorationPct, ti.Aggressors)
	}
	fmt.Fprintf(&b, "victims: %d   mean deterioration %.0f%%   p90 %.0f%%   worst Δ %.0f ps\n",
		len(r.Impacts), r.DeterioratePct.Mean, r.DeterioratePct.P90, r.WorstDeltaPS)
	return b.String()
}

// EMStudyResult is the electromigration current audit across the design.
type EMStudyResult struct {
	Results    []*em.Result
	Violations int
}

// RunEMStudy audits driver currents across the synthetic DSP.
func RunEMStudy(cfg dsp.Config, activityHz float64, maxNets int) (*EMStudyResult, error) {
	if cfg.Channels == 0 {
		cfg = dsp.DefaultConfig()
	}
	d, err := dsp.Generate(cfg)
	if err != nil {
		return nil, err
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		return nil, err
	}
	rs, err := em.AnalyzeDesign(par, em.Options{ActivityHz: activityHz})
	if err != nil {
		return nil, err
	}
	if maxNets > 0 && len(rs) > maxNets {
		rs = rs[:maxNets]
	}
	out := &EMStudyResult{Results: rs}
	for _, r := range rs {
		if r.Violated() {
			out.Violations++
		}
	}
	return out, nil
}

// Render prints the worst utilizations.
func (r *EMStudyResult) Render() string {
	var b strings.Builder
	b.WriteString("Electromigration current audit (avg/RMS/peak vs width limits)\n")
	fmt.Fprintf(&b, "%-24s %-10s %9s %9s %9s\n", "net", "driver", "Iavg(mA)", "Irms(mA)", "Ipk(mA)")
	n := len(r.Results)
	if n > 10 {
		n = 10
	}
	for _, res := range r.Results[:n] {
		mark := ""
		if res.Violated() {
			mark = "  << VIOLATION"
		}
		fmt.Fprintf(&b, "%-24s %-10s %9.3f %9.3f %9.3f%s\n",
			res.Net, res.DriverCell, res.IAvgA*1e3, res.IRMSA*1e3, res.IPeakA*1e3, mark)
	}
	fmt.Fprintf(&b, "nets audited: %d, violations: %d\n", len(r.Results), r.Violations)
	return b.String()
}

var _ = prune.DefaultOptions
