// Prepared-transient persistence: alongside the SyMPVL models (.rom), the
// store can hold the scenario-independent numeric core of a
// romsim.Prepared (.prep) — the termination-fold eigendecomposition, η
// columns and stepping parameters — so a warm process skips the
// diagonalization as well as the reduction. The entries share the store's
// durability contract: crash-safe writes, fully validated defensive loads,
// corruption discarded and recomputed, floats as raw IEEE-754 bits so warm
// transients are bit-identical to cold ones.
//
// Prepared entry layout (all integers little-endian):
//
//	magic      [8]byte  "XTPREP1\n"
//	version    u32      preparedFormatVersion
//	goVersion  str      u32 length + bytes (runtime.Version of the writer)
//	key        str      fingerprint + termination-pattern key
//	payload    str      the core codec below
//	crc        u32      CRC-32 (IEEE) of every byte above
//
// Core payload layout:
//
//	order, ports             u32 ×2
//	dvals                    order × f64
//	etaCols                  ports × (order × f64)
//	kinds                    ports × u8
//	gs                       ports × f64
//	dt, tend                 f64 ×2
//	nSteps, maxNewton        u32 ×2
//	tol                      f64
//	denseNewt, noInitDC      u8 ×2
package romstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"xtverify/internal/faultinject"
	"xtverify/internal/romsim"
)

const (
	preparedExt           = ".prep"
	preparedFormatVersion = 1
	// maxPreparedPorts bounds the port count of a stored core (far above any
	// real cluster; low enough to stop a corrupted length driving a giant
	// allocation).
	maxPreparedPorts = 1 << 16
)

var preparedMagic = [8]byte{'X', 'T', 'P', 'R', 'E', 'P', '1', '\n'}

// preparedPath maps a prepared key onto its entry file. The key space is
// disjoint from the model keys by extension, so a fingerprint may own both a
// .rom and several .prep entries (one per termination pattern).
func (s *Store) preparedPath(key string) string {
	return s.entryPath(key)[:len(s.entryPath(key))-len(entryExt)] + preparedExt
}

// LoadPrepared returns the stored prepared core for key, or (nil, false).
// Like Load, it never returns a core it could not fully validate: corruption
// discards the entry and reports a miss so the caller re-Prepares.
func (s *Store) LoadPrepared(key string) (*romsim.PreparedCore, bool) {
	path := s.preparedPath(key)
	if err := faultinject.FireStore("load", path); err != nil {
		s.loadErrors.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
		} else {
			s.loadErrors.Add(1)
		}
		return nil, false
	}
	c, err := decodePreparedEntry(raw, key, s.goVersion)
	if err != nil {
		s.corruptDiscarded.Add(1)
		_ = os.Remove(path)
		return nil, false
	}
	s.hits.Add(1)
	return c, true
}

// SavePrepared persists the core under key, best-effort and crash-safe,
// mirroring Save's temp-file + fsync + rename discipline.
func (s *Store) SavePrepared(key string, c *romsim.PreparedCore) {
	path := s.preparedPath(key)
	if err := faultinject.FireStore("save", path); err != nil {
		s.writeErrors.Add(1)
		return
	}
	raw := encodePreparedEntry(key, s.goVersion, c)
	tmp, err := os.CreateTemp(s.dir, ".tmp-prep-*")
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	tmpName := tmp.Name()
	_, err = tmp.Write(raw)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		s.writeErrors.Add(1)
		_ = os.Remove(tmpName)
		return
	}
	s.writes.Add(1)
}

// encodePreparedCore serializes the core payload.
func encodePreparedCore(c *romsim.PreparedCore) []byte {
	buf := make([]byte, 0, 64+8*(c.Order+c.Ports*(c.Order+1)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Order))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Ports))
	for _, v := range c.Dvals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, col := range c.EtaCols {
		for _, v := range col {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = append(buf, c.Kinds...)
	for _, v := range c.Gs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Dt))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.TEnd))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.NSteps))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.MaxNewton))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Tol))
	buf = append(buf, boolByte(c.DenseNewt), boolByte(c.NoInitDC))
	return buf
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// encodePreparedEntry wraps the core payload in the versioned, checksummed
// envelope.
func encodePreparedEntry(key, goVersion string, c *romsim.PreparedCore) []byte {
	payload := encodePreparedCore(c)
	buf := make([]byte, 0, len(preparedMagic)+16+len(goVersion)+len(key)+len(payload)+8)
	buf = append(buf, preparedMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, preparedFormatVersion)
	buf = appendStr(buf, goVersion)
	buf = appendStr(buf, key)
	buf = appendStr(buf, string(payload))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodePreparedCore parses and validates a core payload. Beyond the codec
// checks here, romsim.PreparedFromCore re-validates the numeric structure
// before the core is trusted.
func decodePreparedCore(payload []byte) (*romsim.PreparedCore, error) {
	r := &reader{b: payload}
	order, err := r.u32()
	if err != nil {
		return nil, err
	}
	ports, err := r.u32()
	if err != nil {
		return nil, err
	}
	if order == 0 || ports == 0 || order > maxMatElems || ports > maxPreparedPorts ||
		uint64(order)*uint64(ports) > maxMatElems {
		return nil, errCorrupt
	}
	q, p := int(order), int(ports)
	// Cheap size pre-check before allocating: every fixed-width field below.
	need := 8*q + 8*q*p + p + 8*p + 8 + 8 + 4 + 4 + 8 + 2
	if len(payload)-r.off != need {
		return nil, errCorrupt
	}
	c := &romsim.PreparedCore{Order: q, Ports: p}
	c.Dvals = make([]float64, q)
	for i := range c.Dvals {
		if c.Dvals[i], err = r.f64(); err != nil {
			return nil, err
		}
	}
	c.EtaCols = make([][]float64, p)
	etaData := make([]float64, p*q)
	for j := range c.EtaCols {
		c.EtaCols[j] = etaData[j*q : (j+1)*q]
		for i := 0; i < q; i++ {
			if c.EtaCols[j][i], err = r.f64(); err != nil {
				return nil, err
			}
		}
	}
	kinds, err := r.take(p)
	if err != nil {
		return nil, err
	}
	c.Kinds = append([]uint8(nil), kinds...)
	for _, k := range c.Kinds {
		if k > 2 {
			return nil, errCorrupt
		}
	}
	c.Gs = make([]float64, p)
	for i := range c.Gs {
		if c.Gs[i], err = r.f64(); err != nil {
			return nil, err
		}
	}
	if c.Dt, err = r.f64(); err != nil {
		return nil, err
	}
	if c.TEnd, err = r.f64(); err != nil {
		return nil, err
	}
	nSteps, err := r.u32()
	if err != nil {
		return nil, err
	}
	maxNewton, err := r.u32()
	if err != nil {
		return nil, err
	}
	if c.Tol, err = r.f64(); err != nil {
		return nil, err
	}
	dense, err := r.u8()
	if err != nil || dense > 1 {
		return nil, errCorrupt
	}
	noDC, err := r.u8()
	if err != nil || noDC > 1 {
		return nil, errCorrupt
	}
	if r.off != len(payload) {
		return nil, errCorrupt
	}
	c.NSteps = int(nSteps)
	c.MaxNewton = int(maxNewton)
	c.DenseNewt = dense == 1
	c.NoInitDC = noDC == 1
	if c.NSteps < 1 || c.MaxNewton < 1 || !(c.Dt > 0) || !(c.TEnd > 0) || !(c.Tol > 0) {
		return nil, errCorrupt
	}
	return c, nil
}

// decodePreparedEntry validates the envelope (magic, version, go version,
// key, checksum) and then the core payload. Any failure is errCorrupt; a
// recover turns even an unforeseen decoder bug into discard-and-recompute.
func decodePreparedEntry(raw []byte, wantKey, wantGoVersion string) (c *romsim.PreparedCore, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			c, err = nil, fmt.Errorf("%w: decoder panic: %v", errCorrupt, rec)
		}
	}()
	if len(raw) < len(preparedMagic)+4+4 {
		return nil, errCorrupt
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errCorrupt
	}
	r := &reader{b: body}
	magic, err := r.take(len(preparedMagic))
	if err != nil || string(magic) != string(preparedMagic[:]) {
		return nil, errCorrupt
	}
	version, err := r.u32()
	if err != nil || version != preparedFormatVersion {
		return nil, errCorrupt
	}
	goVer, err := r.str(1 << 12)
	if err != nil || string(goVer) != wantGoVersion {
		return nil, errCorrupt
	}
	key, err := r.str(maxStr)
	if err != nil || string(key) != wantKey {
		return nil, errCorrupt
	}
	payload, err := r.str(maxStr)
	if err != nil {
		return nil, errCorrupt
	}
	if r.off != len(body) {
		return nil, errCorrupt
	}
	return decodePreparedCore(payload)
}
