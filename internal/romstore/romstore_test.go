package romstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xtverify/internal/faultinject"
	"xtverify/internal/matrix"
	"xtverify/internal/sympvl"
)

// testModel builds a small model with awkward float values (NaN, -0, tiny
// denormal) so the roundtrip assertions cover bit-exactness, not just
// approximate equality.
func testModel() *sympvl.Model {
	t := matrix.NewDenseFromRows([][]float64{
		{1.5, math.Copysign(0, -1), 3e-310},
		{-2.25, math.NaN(), 1e18},
		{0.1, 7, math.Inf(1)},
	})
	rho := matrix.NewDenseFromRows([][]float64{
		{0.5, -1.25},
		{2.5, 1e-300},
		{-3.5, 0},
	})
	return &sympvl.Model{
		T:               t,
		Rho:             rho,
		Order:           3,
		Ports:           2,
		PortNames:       []string{"drv:n1", "rcv:n2"},
		BlockIterations: 4,
		Deflated:        1,
		Exhausted:       true,
	}
}

// sameModel compares every persistent field bit-for-bit.
func sameModel(t *testing.T, got, want *sympvl.Model) {
	t.Helper()
	if got.Order != want.Order || got.Ports != want.Ports ||
		got.BlockIterations != want.BlockIterations ||
		got.Deflated != want.Deflated || got.Exhausted != want.Exhausted {
		t.Fatalf("scalar fields differ: got %+v want %+v", got, want)
	}
	if len(got.PortNames) != len(want.PortNames) {
		t.Fatalf("port names %v want %v", got.PortNames, want.PortNames)
	}
	for i := range want.PortNames {
		if got.PortNames[i] != want.PortNames[i] {
			t.Fatalf("port name %d: %q want %q", i, got.PortNames[i], want.PortNames[i])
		}
	}
	for _, pair := range []struct {
		name string
		g, w *matrix.Dense
	}{{"T", got.T, want.T}, {"Rho", got.Rho, want.Rho}} {
		if pair.g.Rows() != pair.w.Rows() || pair.g.Cols() != pair.w.Cols() {
			t.Fatalf("%s dims %dx%d want %dx%d", pair.name, pair.g.Rows(), pair.g.Cols(), pair.w.Rows(), pair.w.Cols())
		}
		for i := 0; i < pair.w.Rows(); i++ {
			for j := 0; j < pair.w.Cols(); j++ {
				if math.Float64bits(pair.g.At(i, j)) != math.Float64bits(pair.w.At(i, j)) {
					t.Fatalf("%s[%d,%d] = %x want %x (bit-exact)", pair.name, i, j,
						math.Float64bits(pair.g.At(i, j)), math.Float64bits(pair.w.At(i, j)))
				}
			}
		}
	}
}

func TestRoundTripBitExact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testModel()
	key := "fingerprint-bytes-\x00\x01\xff"
	if _, ok := s.Load(key); ok {
		t.Fatal("load before save hit")
	}
	s.Save(key, want)
	got, ok := s.Load(key)
	if !ok {
		t.Fatal("load after save missed")
	}
	sameModel(t, got, want)
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.CorruptDiscarded != 0 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 write / 0 corrupt", st)
	}
	if s.Len() != 1 {
		t.Errorf("Len() = %d, want 1", s.Len())
	}
}

// TestCorruptionDiscarded is the durability acceptance matrix: truncated,
// bit-flipped, wrong-format-version, wrong-go-version and key-collision
// entries must all be discarded (file removed, CorruptDiscarded counted)
// and reported as misses — never trusted, never fatal.
func TestCorruptionDiscarded(t *testing.T) {
	key := "the-key"
	valid := encodeEntry(key, "go-test-version", testModel())

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			s.goVersion = "go-test-version"
			path := s.entryPath(key)
			raw := mutate(append([]byte(nil), valid...))
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if m, ok := s.Load(key); ok {
				t.Fatalf("corrupted entry loaded: %+v", m)
			}
			if got := s.Stats().CorruptDiscarded; got != 1 {
				t.Errorf("CorruptDiscarded = %d, want 1", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupted entry not removed (stat err %v)", err)
			}
			// The discard must degrade to recompute: a fresh save then loads.
			s.Save(key, testModel())
			if _, ok := s.Load(key); !ok {
				t.Error("save after discard did not load")
			}
		})
	}

	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("bit-flip-payload", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })
	corrupt("bit-flip-magic", func(b []byte) []byte { b[0] ^= 0x01; return b })
	corrupt("trailing-garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) })
	corrupt("wrong-go-version", func(b []byte) []byte {
		return encodeEntry(key, "go-other-version", testModel())
	})
	corrupt("wrong-key", func(b []byte) []byte {
		return encodeEntry("some-other-key", "go-test-version", testModel())
	})
	corrupt("wrong-format-version", func(b []byte) []byte {
		// Patch the format version in place and re-checksum, so only the
		// version check can reject it.
		other := encodeEntry(key, "go-test-version", testModel())
		body := other[:len(other)-4]
		body[9]++ // version u32 starts at offset 8 (after the magic)
		return appendCRC(body)
	})
}

func appendCRC(body []byte) []byte {
	out := append([]byte(nil), body...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

func TestInjectedStoreFaults(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "k"
	injected := errors.New("injected I/O failure")
	restore := faultinject.SetStoreHook(func(op, path string) error { return injected })
	s.Save(key, testModel())
	if got := s.Stats().WriteErrors; got != 1 {
		t.Errorf("WriteErrors = %d, want 1 under injected save fault", got)
	}
	restore()

	s.Save(key, testModel())
	restore = faultinject.SetStoreHook(func(op, path string) error {
		if op == "load" {
			return injected
		}
		return nil
	})
	defer restore()
	if _, ok := s.Load(key); ok {
		t.Error("load succeeded under injected load fault")
	}
	if got := s.Stats().LoadErrors; got != 1 {
		t.Errorf("LoadErrors = %d, want 1", got)
	}
}

// TestConcurrentAccess hammers one store from many goroutines (run under
// -race in CI): concurrent saves of the same key must atomically converge,
// and loads must only ever observe fully written entries.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testModel()
	keys := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(g+i)%len(keys)]
				if m, ok := s.Load(k); ok {
					sameModel(t, m, want)
				}
				s.Save(k, want)
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.CorruptDiscarded != 0 || st.WriteErrors != 0 {
		t.Errorf("concurrent access produced corruption/errors: %+v", st)
	}
	for _, k := range keys {
		m, ok := s.Load(k)
		if !ok {
			t.Fatalf("key %s missing after concurrent writes", k)
		}
		sameModel(t, m, want)
	}
}

// TestNoStrayTempFiles: after saves (successful and injected-failed), no
// temp files linger — the crash-safety rename either completes or cleans up.
func TestNoStrayTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Save("x", testModel())
	restore := faultinject.SetStoreHook(func(op, path string) error {
		return errors.New("boom")
	})
	s.Save("y", testModel())
	restore()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != entryExt {
			t.Errorf("stray file %s in store dir", e.Name())
		}
	}
}
