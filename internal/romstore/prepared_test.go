package romstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"xtverify/internal/faultinject"
	"xtverify/internal/romsim"
)

// testCore builds a small prepared core with awkward float values so the
// roundtrip assertions cover bit-exactness, not just approximate equality.
func testCore() *romsim.PreparedCore {
	return &romsim.PreparedCore{
		Order:     3,
		Ports:     2,
		Dvals:     []float64{1.5e-12, math.Copysign(0, -1), 3e-310},
		EtaCols:   [][]float64{{0.5, -1.25, 1e-300}, {2.5, math.NaN(), -3.5}},
		Kinds:     []uint8{1, 2},
		Gs:        []float64{1e-3, 0},
		Dt:        1e-12,
		TEnd:      2e-9,
		NSteps:    2000,
		Tol:       1e-9,
		MaxNewton: 40,
		DenseNewt: true,
		NoInitDC:  false,
	}
}

// sameCore compares every field bit-for-bit.
func sameCore(t *testing.T, got, want *romsim.PreparedCore) {
	t.Helper()
	if got.Order != want.Order || got.Ports != want.Ports ||
		got.NSteps != want.NSteps || got.MaxNewton != want.MaxNewton ||
		got.DenseNewt != want.DenseNewt || got.NoInitDC != want.NoInitDC {
		t.Fatalf("scalar fields differ: got %+v want %+v", got, want)
	}
	bits := func(name string, g, w float64) {
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s = %x want %x (bit-exact)", name, math.Float64bits(g), math.Float64bits(w))
		}
	}
	bits("Dt", got.Dt, want.Dt)
	bits("TEnd", got.TEnd, want.TEnd)
	bits("Tol", got.Tol, want.Tol)
	for i := range want.Dvals {
		bits("Dvals", got.Dvals[i], want.Dvals[i])
	}
	for j := range want.EtaCols {
		for i := range want.EtaCols[j] {
			bits("EtaCols", got.EtaCols[j][i], want.EtaCols[j][i])
		}
	}
	for i := range want.Gs {
		bits("Gs", got.Gs[i], want.Gs[i])
	}
	for i := range want.Kinds {
		if got.Kinds[i] != want.Kinds[i] {
			t.Fatalf("Kinds[%d] = %d want %d", i, got.Kinds[i], want.Kinds[i])
		}
	}
}

func TestPreparedRoundTripBitExact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testCore()
	key := "fp\x00bytes|prep|3ff0|pat"
	if _, ok := s.LoadPrepared(key); ok {
		t.Fatal("load before save hit")
	}
	s.SavePrepared(key, want)
	got, ok := s.LoadPrepared(key)
	if !ok {
		t.Fatal("load after save missed")
	}
	sameCore(t, got, want)
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.CorruptDiscarded != 0 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 write / 0 corrupt", st)
	}
}

// TestPreparedAndModelCoexist: a fingerprint may own a .rom model and .prep
// cores at once — the extension keeps the key spaces disjoint.
func TestPreparedAndModelCoexist(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "shared-fingerprint"
	s.Save(key, testModel())
	s.SavePrepared(key, testCore())
	if _, ok := s.Load(key); !ok {
		t.Error("model lost after prepared save")
	}
	if _, ok := s.LoadPrepared(key); !ok {
		t.Error("prepared core lost after model save")
	}
}

// TestPreparedCorruptionDiscarded: truncated, bit-flipped, wrong-version and
// wrong-key prepared entries must be discarded (file removed, counted) and
// reported as misses — never trusted, never fatal.
func TestPreparedCorruptionDiscarded(t *testing.T) {
	key := "the-key"
	valid := encodePreparedEntry(key, "go-test-version", testCore())

	cases := []struct {
		name string
		raw  []byte
		key  string
	}{
		{"truncated", valid[:len(valid)/2], key},
		{"empty", nil, key},
		{"bit flip in payload", flip(valid, len(valid)/2), key},
		{"bit flip in magic", flip(valid, 0), key},
		{"key collision", valid, "a-different-key"},
		{"go version skew", encodePreparedEntry(key, "go-other-version", testCore()), key},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			s.goVersion = "go-test-version"
			path := s.preparedPath(tc.key)
			if err := os.WriteFile(path, tc.raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.LoadPrepared(tc.key); ok {
				t.Fatal("corrupt prepared entry was trusted")
			}
			if st := s.Stats(); st.CorruptDiscarded != 1 {
				t.Errorf("CorruptDiscarded = %d, want 1 (stats %+v)", st.CorruptDiscarded, st)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("corrupt file not removed: %v", err)
			}
			// A second load is a plain miss, ready for recompute-and-save.
			if _, ok := s.LoadPrepared(tc.key); ok {
				t.Fatal("removed entry still hit")
			}
		})
	}
}

// flip returns a copy of raw with one bit toggled at index i.
func flip(raw []byte, i int) []byte {
	out := append([]byte(nil), raw...)
	out[i] ^= 0x10
	return out
}

// TestPreparedInjectedFaults: injected I/O failures on the prepared paths are
// counted and degrade to miss/skip — the store never propagates them.
func TestPreparedInjectedFaults(t *testing.T) {
	faultinject.LeakCheck(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.SetStoreHook(func(op, path string) error {
		return errors.New("faultinject: disk unavailable")
	})
	s.SavePrepared("k", testCore())
	if _, ok := s.LoadPrepared("k"); ok {
		t.Fatal("load hit under injected faults")
	}
	restore()
	st := s.Stats()
	if st.WriteErrors == 0 || st.LoadErrors == 0 {
		t.Errorf("injected faults not counted: %+v", st)
	}
	if st.Writes != 0 || st.Hits != 0 {
		t.Errorf("faulted ops recorded as successes: %+v", st)
	}
	// With the fault cleared the same store works normally.
	s.SavePrepared("k", testCore())
	if _, ok := s.LoadPrepared("k"); !ok {
		t.Fatal("store did not recover after faults cleared")
	}
	if ents, err := os.ReadDir(s.dir); err == nil {
		for _, e := range ents {
			if filepath.Ext(e.Name()) != preparedExt {
				t.Errorf("stray file %s", e.Name())
			}
		}
	}
}
