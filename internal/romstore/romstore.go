// Package romstore is the disk-persistent, fingerprint-keyed reduced-model
// cache behind the in-memory ROM LRU: the piece that lets a verification
// daemon (or a re-run CLI) serve a chip's thousandth repair iteration
// without re-reducing a single unchanged cluster.
//
// Durability contract:
//
//   - Writes are crash-safe: an entry is serialized to a temp file in the
//     store directory, synced, and atomically renamed into place. A crash
//     mid-write leaves at worst a stray temp file, never a torn entry.
//   - Loads are defensive: every entry carries a magic, a format version,
//     the writing go runtime version, the full fingerprint key, and a CRC32
//     over everything. A truncated, bit-flipped, or wrong-version entry —
//     or any file the decoder cannot fully validate — is discarded (the
//     file is removed) and the model recomputed. Corruption is counted
//     (Stats.CorruptDiscarded, surfaced as cache_corrupt_discarded in obs),
//     never trusted, and never fatal.
//   - Saves are best-effort: a full disk or a permission error costs the
//     cache entry, not the verification (Stats.WriteErrors).
//
// Keys are the full prune.Fingerprint bytes. Filenames are the SHA-256 of
// the key, but the key itself is stored and compared on load, so a hash
// collision degrades to a recompute instead of returning a wrong model.
// Models round-trip bit-exactly (float64 payloads are stored as raw IEEE
// bits), which is what keeps warm-cache reports byte-identical to cold ones.
package romstore

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"xtverify/internal/faultinject"
	"xtverify/internal/sympvl"
)

// Store is a disk-backed model cache rooted at one directory. It is safe
// for concurrent use: entries are immutable once renamed into place, and
// concurrent saves of the same key atomically race to an identical result.
type Store struct {
	dir string
	// goVersion is folded into every entry; entries written by a different
	// runtime are discarded on load (float behavior and the codec's host
	// assumptions are only guaranteed within one toolchain).
	goVersion string

	hits             atomic.Uint64
	misses           atomic.Uint64
	corruptDiscarded atomic.Uint64
	writes           atomic.Uint64
	writeErrors      atomic.Uint64
	loadErrors       atomic.Uint64
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Hits counts loads served from a fully validated entry.
	Hits uint64
	// Misses counts loads that found no entry (absent file).
	Misses uint64
	// CorruptDiscarded counts entries that failed validation — truncation,
	// bit flips, bad CRC, wrong format or go version, key mismatch — and
	// were removed so the model gets recomputed.
	CorruptDiscarded uint64
	// Writes counts entries durably renamed into place.
	Writes uint64
	// WriteErrors counts best-effort saves that failed (disk full,
	// permissions, injected faults). Never fatal.
	WriteErrors uint64
	// LoadErrors counts reads that failed for I/O reasons other than
	// absence or corruption (injected faults, permission errors); they are
	// treated as misses.
	LoadErrors uint64
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, goVersion: runtime.Version()}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the cumulative counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		CorruptDiscarded: s.corruptDiscarded.Load(),
		Writes:           s.writes.Load(),
		WriteErrors:      s.writeErrors.Load(),
		LoadErrors:       s.loadErrors.Load(),
	}
}

// Len counts the entries currently on disk (directory scan; diagnostics
// only).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == entryExt {
			n++
		}
	}
	return n
}

// entryPath maps a fingerprint key onto its entry file.
func (s *Store) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+entryExt)
}

// Load returns the stored model for key, or (nil, false). It never returns
// a model it could not fully validate: any corruption discards the entry
// (removing the file) and reports a miss, so the caller recomputes.
// Load implements glitch.Backing.
func (s *Store) Load(key string) (*sympvl.Model, bool) {
	path := s.entryPath(key)
	if err := faultinject.FireStore("load", path); err != nil {
		s.loadErrors.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
		} else {
			s.loadErrors.Add(1)
		}
		return nil, false
	}
	m, err := decodeEntry(raw, key, s.goVersion)
	if err != nil {
		// Truncated, bit-flipped, wrong version, or otherwise invalid:
		// discard so the recomputed model can replace it cleanly.
		s.corruptDiscarded.Add(1)
		_ = os.Remove(path)
		return nil, false
	}
	s.hits.Add(1)
	return m, true
}

// Save persists m under key, best-effort and crash-safe (temp file + fsync +
// atomic rename). Failures are counted, never surfaced: losing a cache write
// must not fail a verification. Save implements glitch.Backing.
func (s *Store) Save(key string, m *sympvl.Model) {
	path := s.entryPath(key)
	if err := faultinject.FireStore("save", path); err != nil {
		s.writeErrors.Add(1)
		return
	}
	raw := encodeEntry(key, s.goVersion, m)
	tmp, err := os.CreateTemp(s.dir, ".tmp-rom-*")
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	tmpName := tmp.Name()
	_, err = tmp.Write(raw)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		s.writeErrors.Add(1)
		_ = os.Remove(tmpName)
		return
	}
	s.writes.Add(1)
}
