package romstore

import (
	"os"
	"testing"
)

// FuzzDecodeEntry is the durability fuzz gate: arbitrary bytes fed to the
// entry decoder must yield "discard and recompute" — a non-nil error with a
// nil model — or a fully validated model, and must never panic. The seeds
// include a valid entry so the fuzzer mutates from real structure.
func FuzzDecodeEntry(f *testing.F) {
	valid := encodeEntry("seed-key", "go-fuzz-version", testModel())
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add([]byte("XTROMS1\n"))
	f.Add(append(append([]byte{}, valid...), 0))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeEntry(raw, "seed-key", "go-fuzz-version")
		if (m == nil) == (err == nil) {
			t.Fatalf("decode invariant broken: model %v err %v", m, err)
		}
		if m != nil {
			// Anything the decoder accepts must be structurally coherent —
			// the engine will use these dims without re-checking.
			if m.Order <= 0 || m.Ports <= 0 ||
				m.T.Rows() != m.Order || m.T.Cols() != m.Order ||
				m.Rho.Rows() != m.Order || m.Rho.Cols() != m.Ports ||
				len(m.PortNames) != m.Ports {
				t.Fatalf("decoder accepted incoherent model: %+v", m)
			}
		}
	})
}

// FuzzStoreLoad drives the same bytes through the full Store.Load path
// (file on disk included): the store must classify every mutation as hit,
// miss or corrupt-discard without ever panicking or returning a bad model.
func FuzzStoreLoad(f *testing.F) {
	key := "fuzz-key"
	f.Add(encodeEntry(key, "x", testModel()))
	f.Add([]byte("not an entry"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		path := s.entryPath(key)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		m, ok := s.Load(key)
		if ok && m == nil {
			t.Fatal("Load reported ok with nil model")
		}
		if !ok {
			// A rejected entry must have been discarded so the slot is clean
			// for recompute.
			if _, err := os.Stat(path); err == nil {
				if st := s.Stats(); st.CorruptDiscarded > 0 {
					t.Fatal("corrupt entry counted but file not removed")
				}
			}
		}
	})
}
