// The entry codec: a hand-rolled, fully bounds-checked binary format chosen
// over encoding/gob so that decoding arbitrary bytes is guaranteed to yield
// "discard and recompute" — an error, never a panic — and so float64 model
// payloads round-trip bit-exactly (raw IEEE-754 bits, little-endian).
//
// Entry layout (all integers little-endian):
//
//	magic      [8]byte  "XTROMS1\n"
//	version    u32      entryFormatVersion
//	goVersion  str      u32 length + bytes (runtime.Version of the writer)
//	key        str      the full prune.Fingerprint bytes
//	payload    str      the model codec below
//	crc        u32      CRC-32 (IEEE) of every byte above
//
// Model payload layout:
//
//	order, ports, blockIters, deflated  u32 ×4
//	exhausted                           u8
//	portNames                           u32 count + count × str
//	T                                   mat: u32 rows, u32 cols, rows·cols × f64
//	Rho                                 mat
package romstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"xtverify/internal/matrix"
	"xtverify/internal/sympvl"
)

const (
	entryExt           = ".rom"
	entryFormatVersion = 1
	// maxStr bounds any length-prefixed byte field (keys, names, payload);
	// far above any real entry, low enough that a corrupted length cannot
	// drive a giant allocation.
	maxStr = 64 << 20
	// maxMatElems bounds rows·cols of a stored matrix (a q=2896 square —
	// orders of magnitude above real reduced orders).
	maxMatElems = 1 << 23
)

var entryMagic = [8]byte{'X', 'T', 'R', 'O', 'M', 'S', '1', '\n'}

// errCorrupt is the single decode failure: callers only need "discard".
var errCorrupt = errors.New("romstore: corrupt or incompatible entry")

// appendStr appends a u32 length-prefixed byte string.
func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// appendMat appends a dense matrix: dims then raw float64 bits.
func appendMat(buf []byte, m *matrix.Dense) []byte {
	r, c := m.Rows(), m.Cols()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.At(i, j)))
		}
	}
	return buf
}

// encodeModel serializes m's persistent fields.
func encodeModel(m *sympvl.Model) []byte {
	buf := make([]byte, 0, 64+8*(m.Order*m.Order+m.Order*m.Ports))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Order))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Ports))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.BlockIterations))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Deflated))
	if m.Exhausted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.PortNames)))
	for _, n := range m.PortNames {
		buf = appendStr(buf, n)
	}
	buf = appendMat(buf, m.T)
	buf = appendMat(buf, m.Rho)
	return buf
}

// encodeEntry wraps the model payload in the versioned, checksummed entry.
func encodeEntry(key, goVersion string, m *sympvl.Model) []byte {
	payload := encodeModel(m)
	buf := make([]byte, 0, len(entryMagic)+16+len(goVersion)+len(key)+len(payload)+8)
	buf = append(buf, entryMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, entryFormatVersion)
	buf = appendStr(buf, goVersion)
	buf = appendStr(buf, key)
	buf = appendStr(buf, string(payload))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// reader is a bounds-checked cursor over an entry. Every take* method
// returns an error instead of slicing past the end, so decoding arbitrary
// bytes can never panic.
type reader struct {
	b   []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		return nil, errCorrupt
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) str(limit int) ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(limit) {
		return nil, errCorrupt
	}
	return r.take(int(n))
}

func (r *reader) f64() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *reader) mat() (*matrix.Dense, error) {
	rows, err := r.u32()
	if err != nil {
		return nil, err
	}
	cols, err := r.u32()
	if err != nil {
		return nil, err
	}
	if rows == 0 || cols == 0 || uint64(rows)*uint64(cols) > maxMatElems {
		return nil, errCorrupt
	}
	// Cheap pre-check before allocating: the floats must actually be there.
	if remaining := len(r.b) - r.off; int64(remaining) < 8*int64(rows)*int64(cols) {
		return nil, errCorrupt
	}
	m := matrix.NewDense(int(rows), int(cols))
	for i := 0; i < int(rows); i++ {
		for j := 0; j < int(cols); j++ {
			v, err := r.f64()
			if err != nil {
				return nil, err
			}
			m.Set(i, j, v)
		}
	}
	return m, nil
}

// decodeModel parses and validates a model payload.
func decodeModel(payload []byte) (*sympvl.Model, error) {
	r := &reader{b: payload}
	order, err := r.u32()
	if err != nil {
		return nil, err
	}
	ports, err := r.u32()
	if err != nil {
		return nil, err
	}
	iters, err := r.u32()
	if err != nil {
		return nil, err
	}
	deflated, err := r.u32()
	if err != nil {
		return nil, err
	}
	exhausted, err := r.u8()
	if err != nil {
		return nil, err
	}
	if exhausted > 1 {
		return nil, errCorrupt
	}
	nNames, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nNames > 1<<16 {
		return nil, errCorrupt
	}
	names := make([]string, nNames)
	for i := range names {
		b, err := r.str(1 << 16)
		if err != nil {
			return nil, err
		}
		names[i] = string(b)
	}
	t, err := r.mat()
	if err != nil {
		return nil, err
	}
	rho, err := r.mat()
	if err != nil {
		return nil, err
	}
	if r.off != len(payload) {
		return nil, errCorrupt // trailing garbage
	}
	// Structural validation: the dims must be the coherent q×q / q×p pair
	// the engine is about to trust.
	q, p := int(order), int(ports)
	if q <= 0 || p <= 0 || t.Rows() != q || t.Cols() != q ||
		rho.Rows() != q || rho.Cols() != p || len(names) != p {
		return nil, errCorrupt
	}
	return &sympvl.Model{
		T:               t,
		Rho:             rho,
		Order:           q,
		Ports:           p,
		PortNames:       names,
		BlockIterations: int(iters),
		Deflated:        int(deflated),
		Exhausted:       exhausted == 1,
	}, nil
}

// decodeEntry validates the full entry envelope — magic, format version,
// go version, key match, checksum — and then the model payload. Any failure
// is errCorrupt; a deferred recover turns even an unforeseen decoder bug
// into "discard and recompute" rather than a crashed daemon.
func decodeEntry(raw []byte, wantKey, wantGoVersion string) (m *sympvl.Model, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m, err = nil, fmt.Errorf("%w: decoder panic: %v", errCorrupt, rec)
		}
	}()
	if len(raw) < len(entryMagic)+4+4 {
		return nil, errCorrupt
	}
	// Checksum first: it covers everything and catches most corruption.
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errCorrupt
	}
	r := &reader{b: body}
	magic, err := r.take(len(entryMagic))
	if err != nil || string(magic) != string(entryMagic[:]) {
		return nil, errCorrupt
	}
	version, err := r.u32()
	if err != nil || version != entryFormatVersion {
		return nil, errCorrupt
	}
	goVer, err := r.str(1 << 12)
	if err != nil || string(goVer) != wantGoVersion {
		return nil, errCorrupt
	}
	key, err := r.str(maxStr)
	if err != nil || string(key) != wantKey {
		return nil, errCorrupt
	}
	payload, err := r.str(maxStr)
	if err != nil {
		return nil, errCorrupt
	}
	if r.off != len(body) {
		return nil, errCorrupt
	}
	return decodeModel(payload)
}
