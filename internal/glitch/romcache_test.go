package glitch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"xtverify/internal/sympvl"
)

// TestROMCachePanicUnblocksWaiters pins the singleflight panic contract: a
// compute that panics must deregister its flight and close the done channel,
// so waiters retry instead of deadlocking, and the panic must still propagate
// to the computing goroutine (where the engine's recover ladder converts it
// to ErrPanic).
func TestROMCachePanicUnblocksWaiters(t *testing.T) {
	c := NewROMCache(4)
	ctx := context.Background()
	want := &sympvl.Model{}

	computeStarted := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan interface{}, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.GetOrCompute(ctx, "k", func() (*sympvl.Model, error) {
			close(computeStarted)
			<-release
			panic("matrix dimension mismatch")
		})
	}()

	<-computeStarted
	var wg sync.WaitGroup
	results := make([]*sympvl.Model, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.GetOrCompute(ctx, "k", func() (*sympvl.Model, error) {
				return want, nil
			})
			if err != nil {
				t.Errorf("waiter %d: unexpected error %v", i, err)
			}
			results[i] = m
		}(i)
	}
	// Give the waiters time to block on the in-flight computation, then
	// release the panic.
	time.Sleep(20 * time.Millisecond)
	close(release)

	doneWaiting := make(chan struct{})
	go func() { wg.Wait(); close(doneWaiting) }()
	select {
	case <-doneWaiting:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters deadlocked after compute panic")
	}
	if p := <-panicked; p == nil {
		t.Error("panic did not propagate to the computing goroutine")
	}
	for i, m := range results {
		if m != want {
			t.Errorf("waiter %d got model %p, want the retried shared instance %p", i, m, want)
		}
	}
	if got := c.Len(); got != 1 {
		t.Errorf("Len() = %d after retries, want 1", got)
	}
}

// TestROMCacheWaiterHonorsContext pins the waiter escape hatch: a caller
// blocked on another worker's in-flight computation returns with its own
// context error when that context is cancelled, without waiting for the
// computation to finish.
func TestROMCacheWaiterHonorsContext(t *testing.T) {
	c := NewROMCache(4)
	computeStarted := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.GetOrCompute(context.Background(), "k", func() (*sympvl.Model, error) {
			close(computeStarted)
			<-release
			return &sympvl.Model{}, nil
		})
	}()
	<-computeStarted

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrCompute(ctx, "k", func() (*sympvl.Model, error) {
			t.Error("waiter ran compute while another flight held the key")
			return nil, nil
		})
		waiterErr <- err
	}()
	// Let the waiter block on the flight, then cancel only its context.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked on the in-flight computation")
	}
}
