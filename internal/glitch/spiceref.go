package glitch

import (
	"fmt"
	"math"

	"xtverify/internal/cells"
	"xtverify/internal/circuit"
	"xtverify/internal/prune"
	"xtverify/internal/romsim"
	"xtverify/internal/spice"
	"xtverify/internal/waveform"
)

// SPICEResult is the reference-engine counterpart of Result.
type SPICEResult struct {
	VictimName string
	PeakV      float64
	PeakTime   float64
	// ReceiverWave is the worst victim-receiver waveform.
	ReceiverWave *waveform.Waveform
	// Steps, NewtonIterations and Factorizations expose the engine cost for
	// the speedup comparisons.
	Steps, NewtonIterations, Factorizations int
	// Nodes is the SPICE matrix size.
	Nodes int
}

// SPICEGlitch runs the identical glitch analysis on the unreduced cluster in
// the SPICE-class engine. When transistorLevel is true, aggressor and victim
// drivers are instantiated at transistor level (the Figures 6–7 reference);
// otherwise the engine hosts the same behavioural driver models the
// reduced-order flow uses (the Figure 3 setup, where both engines carry the
// same linear drive and the difference isolates the model-order-reduction
// error).
func (e *Engine) SPICEGlitch(cl *prune.Cluster, glitchRising, transistorLevel bool) (*SPICEResult, error) {
	ckt, err := prune.BuildCircuit(e.Par, cl)
	if err != nil {
		return nil, err
	}
	cp, err := resolvePorts(e.Par, cl, ckt)
	if err != nil {
		return nil, err
	}
	net := spice.NewNetlist(ckt.Name + "_spice")
	nodeOf := make([]spice.Node, ckt.NumNodes())
	for i := range nodeOf {
		nodeOf[i] = net.Node(ckt.NodeName(circuit.NodeID(i)))
	}
	for _, r := range ckt.Resistors {
		net.AddR(nodeOf[r.A], nodeOf[r.B], r.Ohms)
	}
	for _, c := range ckt.Capacitors {
		b := spice.Ground
		if c.B != circuit.Ground {
			b = nodeOf[c.B]
		}
		a := spice.Ground
		if c.A != circuit.Ground {
			a = nodeOf[c.A]
		}
		net.AddC(a, b, c.Farads)
	}

	plans := e.planAggressors(cl, glitchRising)
	hold := cells.HoldLow
	baseline := 0.0
	if !glitchRising {
		hold = cells.HoldHigh
		baseline = Vdd
	}
	var vddNode spice.Node
	if transistorLevel {
		vddNode = net.Node("vdd!")
		net.Drive(vddNode, waveform.Const(Vdd))
	}
	_, vPin := strongestPin(e.Par.Design.Nets[cl.Victim].Drivers)
	vNode := nodeOf[ckt.Ports[cp.victimDriver].Node]
	if transistorLevel {
		if err := vPin.Cell.BuildHolding(net, "xvictim", vNode, vddNode, hold); err != nil {
			return nil, err
		}
	} else {
		term, err := e.holdTermination(vPin.Cell, hold)
		if err != nil {
			return nil, err
		}
		if err := attachBehavioral(net, vNode, term); err != nil {
			return nil, err
		}
	}
	for i, pi := range cp.aggDrivers {
		plan := plans[i]
		aNode := nodeOf[ckt.Ports[pi].Node]
		if transistorLevel {
			prefix := fmt.Sprintf("xagg%d", i)
			if plan.Quiet {
				if err := plan.Cell.BuildHolding(net, prefix, aNode, vddNode, cells.HoldLow); err != nil {
					return nil, err
				}
				continue
			}
			inRising, src := e.aggressorSource(plan)
			_ = inRising
			in := net.Node(prefix + ".in")
			net.Drive(in, src)
			if _, err := plan.Cell.BuildDriver(net, prefix, in, aNode, vddNode); err != nil {
				return nil, err
			}
		} else {
			term, err := e.driverTermination(plan, e.loadEstimate(plan.Net))
			if err != nil {
				return nil, err
			}
			if err := attachBehavioral(net, aNode, term); err != nil {
				return nil, err
			}
		}
	}
	// Idle bus drivers stay open in both views (tri-stated).

	tr, err := net.Transient(spice.Options{TEnd: e.Opt.TEnd, Dt: e.Opt.Dt})
	if err != nil {
		return nil, err
	}
	res := &SPICEResult{
		VictimName:       e.Par.Design.Nets[cl.Victim].Name,
		Steps:            tr.Steps,
		NewtonIterations: tr.NewtonIterations,
		Factorizations:   tr.Factorizations,
		Nodes:            net.NumNodes(),
	}
	for _, pi := range cp.receivers {
		w, err := tr.Wave(ckt.NodeName(ckt.Ports[pi].Node))
		if err != nil {
			return nil, err
		}
		pk := w.PeakDeviation(baseline)
		if pk.Abs > math.Abs(res.PeakV) {
			res.PeakV = pk.Value
			res.PeakTime = pk.Time
			res.ReceiverWave = w
		}
	}
	if res.ReceiverWave == nil {
		w, _ := tr.Wave(ckt.NodeName(ckt.Ports[cp.receivers[0]].Node))
		res.ReceiverWave = w
	}
	return res, nil
}

// attachBehavioral mounts a romsim termination onto a SPICE node: linear
// terminations become behavioural Thevenin devices, nonlinear device models
// attach directly (they satisfy spice.Behavioral), open terminations attach
// nothing.
func attachBehavioral(net *spice.Netlist, node spice.Node, term romsim.Termination) error {
	switch {
	case term.Linear != nil:
		net.AddBehavioral(node, thevenin{g: term.Linear.G, vs: term.Linear.Vs})
	case term.Dev != nil:
		dev, ok := term.Dev.(spice.Behavioral)
		if !ok {
			return fmt.Errorf("glitch: nonlinear termination does not satisfy spice.Behavioral")
		}
		net.AddBehavioral(node, dev)
	}
	return nil
}

// thevenin is the behavioural Thevenin one-port used to host linear driver
// models in the SPICE engine.
type thevenin struct {
	g  float64
	vs waveform.Source
}

// Current implements spice.Behavioral.
func (t thevenin) Current(v, tt float64) (float64, float64) {
	return t.g * (t.vs(tt) - v), -t.g
}
