package glitch

import (
	"context"
	"fmt"
	"sort"

	"xtverify/internal/prune"
)

// TimingImpact records the coupling-induced delay change of one victim net —
// the "timing recalculation" use of the driver models the paper's Section
// 4.2 calls out, and the chip-level generalization of Table 2.
type TimingImpact struct {
	Victim string
	// Rising selects the analyzed victim transition.
	Rising bool
	// BaseDelay is the decoupled (grounded-coupling) interconnect delay;
	// CoupledDelay has all aggressors switching opposite.
	BaseDelay, CoupledDelay float64
	// DeltaS = CoupledDelay − BaseDelay.
	DeltaS float64
	// DeteriorationPct is DeltaS/BaseDelay × 100.
	DeteriorationPct float64
	// BaseSlew and CoupledSlew are the receiver transition times.
	BaseSlew, CoupledSlew float64
	// Aggressors counts the cluster's aggressors.
	Aggressors int
}

// TimingImpactReport measures the worst-case coupling delay deterioration
// for every cluster, sorted by absolute delay change (largest first).
func (e *Engine) TimingImpactReport(clusters []*prune.Cluster, rising bool) ([]TimingImpact, error) {
	return e.TimingImpactReportContext(context.Background(), clusters, rising)
}

// TimingImpactReportContext is TimingImpactReport honoring context
// cancellation and deadlines in every per-cluster delay analysis.
func (e *Engine) TimingImpactReportContext(ctx context.Context, clusters []*prune.Cluster, rising bool) ([]TimingImpact, error) {
	out := make([]TimingImpact, 0, len(clusters))
	for _, cl := range clusters {
		ti, err := e.timingImpact(ctx, cl, rising)
		if err != nil {
			return nil, err
		}
		out = append(out, ti)
	}
	sortImpacts(out)
	return out, nil
}

// TimingImpactWorstEdge measures each cluster's coupling delay deterioration
// on both victim edges and keeps the worse one. The four delay transients
// per cluster run back to back, so the prepared layer diagonalizes the
// decoupled and coupled systems once each and reuses them across the edges
// (the two edges share a conductance pattern under ModelFixedR and for
// symmetric library cells). Sorted like TimingImpactReport.
func (e *Engine) TimingImpactWorstEdge(ctx context.Context, clusters []*prune.Cluster) ([]TimingImpact, error) {
	out := make([]TimingImpact, 0, len(clusters))
	for _, cl := range clusters {
		var worst TimingImpact
		for i, rising := range []bool{true, false} {
			ti, err := e.timingImpact(ctx, cl, rising)
			if err != nil {
				return nil, err
			}
			if i == 0 || ti.DeltaS > worst.DeltaS {
				worst = ti
			}
		}
		out = append(out, worst)
	}
	sortImpacts(out)
	return out, nil
}

// timingImpact runs the decoupled-baseline and coupled delay transients for
// one cluster and edge.
func (e *Engine) timingImpact(ctx context.Context, cl *prune.Cluster, rising bool) (TimingImpact, error) {
	base, err := e.AnalyzeDelayContext(ctx, cl, rising, false)
	if err != nil {
		return TimingImpact{}, fmt.Errorf("glitch: timing impact of %s (base): %w", e.Par.Design.Nets[cl.Victim].Name, err)
	}
	coupled, err := e.AnalyzeDelayContext(ctx, cl, rising, true)
	if err != nil {
		return TimingImpact{}, fmt.Errorf("glitch: timing impact of %s (coupled): %w", e.Par.Design.Nets[cl.Victim].Name, err)
	}
	ti := TimingImpact{
		Victim:       base.VictimName,
		Rising:       rising,
		BaseDelay:    base.Delay,
		CoupledDelay: coupled.Delay,
		DeltaS:       coupled.Delay - base.Delay,
		BaseSlew:     base.Slew,
		CoupledSlew:  coupled.Slew,
		Aggressors:   len(cl.Aggressors),
	}
	if base.Delay > 0 {
		ti.DeteriorationPct = 100 * ti.DeltaS / base.Delay
	}
	return ti, nil
}

func sortImpacts(out []TimingImpact) {
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].DeltaS, out[j].DeltaS
		if di != dj {
			return di > dj
		}
		return out[i].Victim < out[j].Victim
	})
}
