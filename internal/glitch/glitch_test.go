package glitch

import (
	"math"
	"testing"

	"xtverify/internal/cells"
	"xtverify/internal/design"
	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/prune"
	"xtverify/internal/sta"
)

// linesSetup extracts the Figure 1 structure and returns the engine inputs
// with the middle wire as victim.
func linesSetup(t *testing.T, nWires int, lengthUM float64, drv string) (*extract.Parasitics, *prune.Cluster) {
	t.Helper()
	d, err := dsp.ParallelWires(nWires, lengthUM, 1.2, []string{drv}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	victim := nWires / 2
	cl := prune.PruneVictim(p, victim, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	if len(cl.Aggressors) == 0 {
		t.Fatal("no aggressors kept")
	}
	return p, cl
}

func TestGlitchPolarity(t *testing.T) {
	p, cl := linesSetup(t, 3, 1000, "INV_X2")
	e := NewEngine(p, Options{Model: ModelFixedR})
	rise, err := e.AnalyzeGlitch(cl, true)
	if err != nil {
		t.Fatal(err)
	}
	if rise.PeakV <= 0 {
		t.Errorf("rising glitch peak %g, want positive", rise.PeakV)
	}
	fall, err := e.AnalyzeGlitch(cl, false)
	if err != nil {
		t.Fatal(err)
	}
	if fall.PeakV >= 0 {
		t.Errorf("falling glitch peak %g, want negative", fall.PeakV)
	}
	if rise.ActiveAggressors != 2 {
		t.Errorf("active aggressors %d, want 2", rise.ActiveAggressors)
	}
}

func TestGlitchGrowsWithCoupledLength(t *testing.T) {
	// The Table 1 monotonicity: longer coupled runs → larger peak glitch.
	peaks := make([]float64, 0, 3)
	for _, l := range []float64{100, 1000, 4000} {
		p, cl := linesSetup(t, 3, l, "INV_X2")
		e := NewEngine(p, Options{Model: ModelFixedR})
		res, err := e.AnalyzeGlitch(cl, true)
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, res.PeakV)
	}
	if !(peaks[0] < peaks[1] && peaks[1] < peaks[2]) {
		t.Errorf("glitch not monotone in coupled length: %v", peaks)
	}
	if peaks[2] > Vdd {
		t.Errorf("glitch %g exceeds supply", peaks[2])
	}
}

func TestROMvsSPICESameModels(t *testing.T) {
	// The Figure 3 property: with identical linear 1 kΩ drivers in both
	// engines, the only difference is reduced-order modeling error, which
	// must be tiny (paper: avg 0.24%, max 1.05%).
	p, cl := linesSetup(t, 4, 1500, "INV_X4")
	e := NewEngine(p, Options{Model: ModelFixedR, FixedOhms: 1000})
	rom, err := e.AnalyzeGlitch(cl, true)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.SPICEGlitch(cl, true, false)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(rom.PeakV-ref.PeakV) / math.Abs(ref.PeakV)
	t.Logf("ROM peak %.4f V, SPICE peak %.4f V, err %.3f%%", rom.PeakV, ref.PeakV, 100*relErr)
	if relErr > 0.02 {
		t.Errorf("MOR error %.2f%% exceeds 2%%", 100*relErr)
	}
}

func TestNonlinearROMvsTransistorSPICE(t *testing.T) {
	// The Figure 6 property: nonlinear cell model against transistor-level
	// SPICE keeps peak errors within roughly ±10% for sizable glitches.
	p, cl := linesSetup(t, 3, 2500, "INV_X2")
	e := NewEngine(p, Options{Model: ModelNonlinear})
	rom, err := e.AnalyzeGlitch(cl, true)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.SPICEGlitch(cl, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if ref.PeakV < 0.1*Vdd {
		t.Fatalf("reference glitch %.3f too small for the comparison", ref.PeakV)
	}
	relErr := math.Abs(rom.PeakV-ref.PeakV) / ref.PeakV
	t.Logf("ROM(nl) %.4f V, SPICE(tr) %.4f V, err %.2f%%", rom.PeakV, ref.PeakV, 100*relErr)
	if relErr > 0.15 {
		t.Errorf("nonlinear-model error %.1f%% exceeds 15%%", 100*relErr)
	}
}

func TestTimingWindowsSuppressAggressors(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{Seed: 21, Channels: 1, TracksPerChannel: 60, ChannelLengthUM: 1200, LatchFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	if err := sta.Annotate(d, p, sta.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	cls := prune.Clusters(p, prune.Options{CapRatioThreshold: 0.01, MinCouplingF: 0.1e-15})
	if len(cls) == 0 {
		t.Fatal("no clusters")
	}
	// Find a cluster where windows actually exclude someone; verify the
	// peak does not increase with windows on.
	for _, cl := range cls {
		if len(cl.Aggressors) < 2 {
			continue
		}
		off := NewEngine(p, Options{Model: ModelFixedR})
		on := NewEngine(p, Options{Model: ModelFixedR, UseTimingWindows: true})
		pOff, err := off.AnalyzeGlitch(cl, true)
		if err != nil {
			t.Fatal(err)
		}
		pOn, err := on.AnalyzeGlitch(cl, true)
		if err != nil {
			t.Fatal(err)
		}
		if pOn.ActiveAggressors < pOff.ActiveAggressors {
			if pOn.PeakV > pOff.PeakV+1e-6 {
				t.Errorf("windows increased glitch: %.4f → %.4f", pOff.PeakV, pOn.PeakV)
			}
			return // found and verified an exclusion
		}
	}
	t.Log("no window exclusions in this population (acceptable)")
}

func TestLogicCorrelationReducesGlitch(t *testing.T) {
	// Three wires: both outer aggressors are complementary outputs of one
	// flip-flop; with correlation on, one must switch the other way and the
	// glitch shrinks.
	d, err := dsp.ParallelWires(3, 1200, 1.2, []string{"DFF_X2"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	d.MarkComplementary(0, 2)
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	cl := prune.PruneVictim(p, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	off := NewEngine(p, Options{Model: ModelFixedR})
	on := NewEngine(p, Options{Model: ModelFixedR, UseLogicCorrelation: true})
	pOff, err := off.AnalyzeGlitch(cl, true)
	if err != nil {
		t.Fatal(err)
	}
	pOn, err := on.AnalyzeGlitch(cl, true)
	if err != nil {
		t.Fatal(err)
	}
	if pOn.PeakV >= pOff.PeakV {
		t.Errorf("correlation should reduce glitch: %.4f vs %.4f", pOn.PeakV, pOff.PeakV)
	}
	inverted := 0
	for _, a := range pOn.Aggressors {
		if a.Inverted {
			inverted++
		}
	}
	if inverted != 1 {
		t.Errorf("%d aggressors inverted, want 1", inverted)
	}
}

func TestBusStrongestDriverRule(t *testing.T) {
	// Victim coupled to a tri-state bus with mixed-strength drivers: the
	// plan must pick the strongest.
	d := design.New("bus")
	tb1, _ := cells.ByName("TBUF_X1")
	tb8, _ := cells.ByName("TBUF_X8")
	inv, _ := cells.ByName("INV_X2")
	rcv, _ := cells.ByName("INV_X1")
	bus := &design.Net{
		Name: "bus",
		Drivers: []design.Pin{
			{Inst: "b1", Cell: tb1, Pin: "Z", PosX: 0, PosY: 0},
			{Inst: "b8", Cell: tb8, Pin: "Z", PosX: 600, PosY: 0},
		},
		Receivers: []design.Pin{{Inst: "r", Cell: rcv, Pin: "A", PosX: 1200, PosY: 0}},
		Route:     []design.Segment{{Layer: 2, X0: 0, Y0: 0, X1: 1200, Y1: 0, Width: 0.6}},
	}
	d.AddNet(bus)
	vict := &design.Net{
		Name:      "victim",
		Drivers:   []design.Pin{{Inst: "v", Cell: inv, Pin: "Z", PosX: 0, PosY: 1.2}},
		Receivers: []design.Pin{{Inst: "vr", Cell: rcv, Pin: "A", PosX: 1200, PosY: 1.2}},
		Route:     []design.Segment{{Layer: 2, X0: 0, Y0: 1.2, X1: 1200, Y1: 1.2, Width: 0.6}},
	}
	d.AddNet(vict)
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	cl := prune.PruneVictim(p, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	e := NewEngine(p, Options{Model: ModelFixedR})
	res, err := e.AnalyzeGlitch(cl, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggressors) != 1 || res.Aggressors[0].Cell.Name != "TBUF_X8" {
		t.Errorf("bus aggressor cell = %v, want TBUF_X8", res.Aggressors[0].Cell.Name)
	}
	if res.PeakV <= 0 {
		t.Error("no glitch from bus aggressor")
	}
}

func TestDelayWithCouplingWorse(t *testing.T) {
	// The Table 2 property: opposite-switching aggressors lengthen the
	// victim's delay versus the decoupled baseline.
	p, cl := linesSetup(t, 3, 2000, "INV_X2")
	e := NewEngine(p, Options{Model: ModelTimingLibrary, TEnd: 6e-9})
	with, err := e.AnalyzeDelay(cl, true, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := e.AnalyzeDelay(cl, true, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rise delay: %.1f ps coupled vs %.1f ps decoupled", with.Delay*1e12, without.Delay*1e12)
	if with.Delay <= without.Delay {
		t.Errorf("coupling should worsen delay: %g vs %g", with.Delay, without.Delay)
	}
	if without.Delay <= 0 {
		t.Errorf("decoupled delay %g not positive", without.Delay)
	}
}

func TestQuietAggressorStillLoads(t *testing.T) {
	// A window-excluded aggressor must still be present as a load (its
	// driver holds the line), not vanish from the cluster.
	p, cl := linesSetup(t, 3, 1000, "INV_X2")
	// Force both aggressors quiet by making windows disjoint.
	p.Design.Nets[0].Window = design.Window{Early: 0, Late: 1e-12, Valid: true}
	p.Design.Nets[2].Window = design.Window{Early: 0, Late: 1e-12, Valid: true}
	p.Design.Nets[1].Window = design.Window{Early: 1e-9, Late: 2e-9, Valid: true}
	e := NewEngine(p, Options{Model: ModelFixedR, UseTimingWindows: true})
	res, err := e.AnalyzeGlitch(cl, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveAggressors != 0 {
		t.Fatalf("aggressors not silenced: %d", res.ActiveAggressors)
	}
	if math.Abs(res.PeakV) > 0.01 {
		t.Errorf("quiet aggressors produced %.4f V glitch", res.PeakV)
	}
}

func TestSpeedupCountersAvailable(t *testing.T) {
	p, cl := linesSetup(t, 3, 800, "INV_X2")
	e := NewEngine(p, Options{Model: ModelFixedR})
	ref, err := e.SPICEGlitch(cl, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Steps == 0 || ref.Factorizations == 0 || ref.Nodes == 0 {
		t.Errorf("missing cost counters: %+v", ref)
	}
}

func TestTimingImpactReport(t *testing.T) {
	p, _ := linesSetup(t, 3, 1500, "INV_X2")
	cl1 := prune.PruneVictim(p, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	cl0 := prune.PruneVictim(p, 0, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	e := NewEngine(p, Options{Model: ModelTimingLibrary, TEnd: 8e-9})
	impacts, err := e.TimingImpactReport([]*prune.Cluster{cl0, cl1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) != 2 {
		t.Fatalf("%d impacts", len(impacts))
	}
	// Middle wire (two aggressors) suffers more than the edge wire.
	var mid, edge *TimingImpact
	for i := range impacts {
		if impacts[i].Victim == "w1" {
			mid = &impacts[i]
		} else {
			edge = &impacts[i]
		}
	}
	if mid == nil || edge == nil {
		t.Fatal("victims missing from report")
	}
	if mid.DeltaS <= edge.DeltaS {
		t.Errorf("two-aggressor victim delta %.3g should exceed one-aggressor %.3g", mid.DeltaS, edge.DeltaS)
	}
	if mid.DeteriorationPct <= 0 {
		t.Errorf("deterioration %.1f%% should be positive", mid.DeteriorationPct)
	}
	// Sorted worst first.
	if impacts[0].DeltaS < impacts[1].DeltaS {
		t.Error("not sorted by delay change")
	}
	// Coupled slews degrade too.
	if mid.CoupledSlew <= 0 || mid.BaseSlew <= 0 {
		t.Error("slews not measured")
	}
}

func TestAdviseRepairs(t *testing.T) {
	// A weak victim between strong aggressors: every fix must reduce the
	// glitch, and shielding must be the most effective.
	p, cl := linesSetup(t, 3, 2000, "INV_X8")
	// Victim driver is also INV_X8 in linesSetup; rebuild with weak victim.
	d, err := dsp.ParallelWires(3, 2000, 1.2, []string{"INV_X8", "INV_X1", "INV_X8"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err = extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	cl = prune.PruneVictim(p, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	e := NewEngine(p, Options{Model: ModelNonlinear, TEnd: 5e-9})
	advice, err := e.AdviseRepairs(cl, true, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if advice.OriginalPeakV <= 0.3 {
		t.Fatalf("fixture glitch %.3f too small to need repair", advice.OriginalPeakV)
	}
	if len(advice.Options) != 3 {
		t.Fatalf("%d options", len(advice.Options))
	}
	byFix := map[Fix]RepairOption{}
	for _, o := range advice.Options {
		byFix[o.Fix] = o
		if o.Feasible && math.Abs(o.PeakV) >= advice.OriginalPeakV {
			t.Errorf("%s did not reduce the glitch: %.3f vs %.3f", o.Fix, o.PeakV, advice.OriginalPeakV)
		}
	}
	shield := byFix[FixShieldVictim]
	respace := byFix[FixDoubleSpacing]
	if math.Abs(shield.PeakV) >= math.Abs(respace.PeakV) {
		t.Errorf("shield (%.3f) should beat respacing (%.3f)", shield.PeakV, respace.PeakV)
	}
	if !shield.Clears {
		t.Errorf("shield should clear a 0.3V threshold: %.3f", shield.PeakV)
	}
	// Upsize is feasible for INV_X1 (next is X2).
	if up := byFix[FixUpsizeDriver]; !up.Feasible || up.Detail != "INV_X2" {
		t.Errorf("upsize option wrong: %+v", up)
	}
	if advice.Recommended() == nil {
		t.Error("no recommended fix despite shield clearing")
	}
}

func TestAdviseRepairsInfeasibleUpsize(t *testing.T) {
	// Strongest inverter as victim driver: upsizing must report infeasible.
	d, err := dsp.ParallelWires(2, 1000, 1.2, []string{"INV_X8", "INV_X12"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	cl := prune.PruneVictim(p, 1, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	e := NewEngine(p, Options{Model: ModelFixedR})
	advice, err := e.AdviseRepairs(cl, true, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range advice.Options {
		if o.Fix == FixUpsizeDriver && o.Feasible {
			t.Errorf("INV_X12 upsize should be infeasible: %+v", o)
		}
	}
}
