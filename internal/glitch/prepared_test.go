package glitch

import (
	"context"
	"errors"
	"testing"

	"xtverify/internal/obs"
	"xtverify/internal/prune"
)

// TestPreparedPairMatchesSeedPath pins the glitch-pair fast path: the batched
// rising+falling analysis must produce exactly the results of two sequential
// per-polarity analyses with the prepared layer disabled.
func TestPreparedPairMatchesSeedPath(t *testing.T) {
	p, cl := linesSetup(t, 3, 1000, "INV_X2")
	for _, model := range []ModelKind{ModelFixedR, ModelNonlinear} {
		on := NewEngine(p, Options{Model: model})
		off := NewEngine(p, Options{Model: model, DisablePrepared: true})

		gotR, gotF, err := on.AnalyzeGlitchPair(cl)
		if err != nil {
			t.Fatal(err)
		}
		wantR, wantF, err := off.AnalyzeGlitchPair(cl)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct {
			name      string
			got, want *Result
		}{{"rising", gotR, wantR}, {"falling", gotF, wantF}} {
			if pair.got.PeakV != pair.want.PeakV || pair.got.PeakTime != pair.want.PeakTime {
				t.Errorf("model %v %s: prepared peak (%g @ %g) != seed (%g @ %g)", model, pair.name,
					pair.got.PeakV, pair.got.PeakTime, pair.want.PeakV, pair.want.PeakTime)
			}
			if pair.got.ReducedOrder != pair.want.ReducedOrder {
				t.Errorf("model %v %s: order %d != %d", model, pair.name,
					pair.got.ReducedOrder, pair.want.ReducedOrder)
			}
		}
	}
}

// TestPreparedReuseAcrossDelayEdges checks the memo actually amortizes: under
// ModelFixedR both victim edges share a conductance pattern, so the worst-edge
// timing sweep must reuse the decoupled and coupled Prepareds instead of
// re-diagonalizing, and both paths must agree on the measured delays.
func TestPreparedReuseAcrossDelayEdges(t *testing.T) {
	coll := obs.NewCollector()
	tr := coll.NewTrace()
	p, cl := linesSetup(t, 3, 1000, "INV_X2")
	e := NewEngine(p, Options{Model: ModelFixedR, TEnd: 8e-9, Trace: tr})
	got, err := e.TimingImpactWorstEdge(context.Background(), []*prune.Cluster{cl})
	if err != nil {
		t.Fatal(err)
	}
	coll.MergeTrace(got[0].Victim, "test", tr)
	s := coll.Snapshot()
	// Four delay transients over two conductance patterns (decoupled and
	// coupled): the second edge must hit the memo for both.
	if s.Counters["prepared_reuses"] < 2 {
		t.Errorf("prepared_reuses = %d, want >= 2 (all: %v)", s.Counters["prepared_reuses"], s.Counters)
	}
	if s.Counters["diagonalize_skipped"] < 2 {
		t.Errorf("diagonalize_skipped = %d, want >= 2", s.Counters["diagonalize_skipped"])
	}

	off := NewEngine(p, Options{Model: ModelFixedR, TEnd: 8e-9, DisablePrepared: true})
	want, err := off.TimingImpactWorstEdge(context.Background(), []*prune.Cluster{cl})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].BaseDelay != want[0].BaseDelay || got[0].CoupledDelay != want[0].CoupledDelay ||
		got[0].BaseSlew != want[0].BaseSlew || got[0].Rising != want[0].Rising {
		t.Errorf("prepared worst-edge impact %+v differs from seed %+v", got[0], want[0])
	}
}

// TestAnalyzeDelayContextCancelled pins the cancellation fix: a cancelled
// context must abort the delay transient instead of running it to completion.
func TestAnalyzeDelayContextCancelled(t *testing.T) {
	p, cl := linesSetup(t, 3, 1000, "INV_X2")
	e := NewEngine(p, Options{Model: ModelFixedR})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AnalyzeDelayContext(ctx, cl, true, true); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeDelayContext error = %v, want context.Canceled", err)
	}
}

// TestAdviseRepairsContextCancelled pins the advisor's cancellation fix: the
// candidate sweep must honor the caller's context.
func TestAdviseRepairsContextCancelled(t *testing.T) {
	p, cl := linesSetup(t, 3, 1000, "INV_X2")
	e := NewEngine(p, Options{Model: ModelFixedR})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AdviseRepairsContext(ctx, cl, true, 0.1); !errors.Is(err, context.Canceled) {
		t.Errorf("AdviseRepairsContext error = %v, want context.Canceled", err)
	}
}

// TestAdviseRepairsMatchesSeedPath checks the advisor's batched upsize sweep
// returns the options the sequential path returns.
func TestAdviseRepairsMatchesSeedPath(t *testing.T) {
	p, cl := linesSetup(t, 3, 1000, "INV_X2")
	on := NewEngine(p, Options{Model: ModelFixedR})
	off := NewEngine(p, Options{Model: ModelFixedR, DisablePrepared: true})
	got, err := on.AdviseRepairs(cl, true, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := off.AdviseRepairs(cl, true, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if got.OriginalPeakV != want.OriginalPeakV {
		t.Errorf("original peak %g != %g", got.OriginalPeakV, want.OriginalPeakV)
	}
	if len(got.Options) != len(want.Options) {
		t.Fatalf("option count %d != %d", len(got.Options), len(want.Options))
	}
	for i := range want.Options {
		if got.Options[i] != want.Options[i] {
			t.Errorf("option %d: prepared %+v != seed %+v", i, got.Options[i], want.Options[i])
		}
	}
}
