package glitch

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"xtverify/internal/cells"
	"xtverify/internal/circuit"
	"xtverify/internal/prune"
)

// Fix enumerates the repair strategies the advisor evaluates. They are the
// standard signal-integrity ECO menu: make the victim harder to disturb,
// move the aggressors away, or put grounded metal between them.
type Fix int

// Repair strategies.
const (
	// FixUpsizeDriver replaces the victim's holding driver with the next
	// stronger cell of the same family.
	FixUpsizeDriver Fix = iota
	// FixDoubleSpacing re-routes the victim at twice the spacing, halving
	// every coupling capacitance into it.
	FixDoubleSpacing
	// FixShieldVictim inserts grounded shield wires: the victim's coupling
	// capacitances become capacitances to ground.
	FixShieldVictim
)

func (f Fix) String() string {
	switch f {
	case FixUpsizeDriver:
		return "upsize-driver"
	case FixDoubleSpacing:
		return "double-spacing"
	case FixShieldVictim:
		return "shield-victim"
	default:
		return fmt.Sprintf("fix(%d)", int(f))
	}
}

// RepairOption is one evaluated fix.
type RepairOption struct {
	Fix Fix
	// Detail names the concrete change (e.g. the replacement cell).
	Detail string
	// PeakV is the re-simulated glitch peak with the fix applied.
	PeakV float64
	// Clears reports whether the fix brings the peak under the threshold.
	Clears bool
	// Feasible is false when the fix does not apply (e.g. no stronger cell
	// exists).
	Feasible bool
}

// RepairAdvice is the advisor's output for one violating victim.
type RepairAdvice struct {
	Victim string
	// OriginalPeakV is the unfixed glitch.
	OriginalPeakV float64
	// ThresholdV is the pass level used for Clears.
	ThresholdV float64
	// Options lists the evaluated fixes, most effective first.
	Options []RepairOption
}

// Recommended returns the first clearing option, or nil.
func (a *RepairAdvice) Recommended() *RepairOption {
	for i := range a.Options {
		if a.Options[i].Feasible && a.Options[i].Clears {
			return &a.Options[i]
		}
	}
	return nil
}

// AdviseRepairs re-simulates the cluster under each candidate fix and ranks
// the outcomes. thresholdV is the acceptable peak magnitude.
func (e *Engine) AdviseRepairs(cl *prune.Cluster, glitchRising bool, thresholdV float64) (*RepairAdvice, error) {
	return e.AdviseRepairsContext(context.Background(), cl, glitchRising, thresholdV)
}

// AdviseRepairsContext is AdviseRepairs honoring context cancellation and
// deadlines in the base analysis and every candidate run (the historical
// entry point hardcoded context.Background(), so repairs ignored engine
// timeouts). When the prepared-transient layer is enabled, the base analysis
// and the driver-upsize candidate — which share the cluster circuit and its
// reduction — advance as one batched multi-RHS sweep; the circuit-editing
// candidates (respace, shield) change the model and run one-shot.
func (e *Engine) AdviseRepairsContext(ctx context.Context, cl *prune.Cluster, glitchRising bool, thresholdV float64) (*RepairAdvice, error) {
	_, vPin := strongestPin(e.Par.Design.Nets[cl.Victim].Drivers)
	stronger := nextStronger(vPin.Cell)

	var base, upsized *Result
	if stronger != nil && !e.Opt.DirectMNA && !e.Opt.DisablePrepared {
		results, idx, err := e.analyzeGlitchSet(ctx, cl, []glitchScenario{
			{glitchRising: glitchRising},
			{glitchRising: glitchRising, victimCell: stronger},
		})
		if err != nil {
			if idx == 1 {
				return nil, fmt.Errorf("glitch: repair upsize: %w", err)
			}
			return nil, err
		}
		base, upsized = results[0], results[1]
	} else {
		var err error
		if base, err = e.analyzeGlitchCustom(ctx, cl, glitchRising, nil, nil); err != nil {
			return nil, err
		}
		if stronger != nil {
			if upsized, err = e.analyzeGlitchCustom(ctx, cl, glitchRising, nil, stronger); err != nil {
				return nil, fmt.Errorf("glitch: repair upsize: %w", err)
			}
		}
	}
	advice := &RepairAdvice{
		Victim:        base.VictimName,
		OriginalPeakV: base.PeakV,
		ThresholdV:    thresholdV,
	}
	victimName := e.Par.Design.Nets[cl.Victim].Name

	// Candidate 1: upsize the victim's holding driver.
	if upsized != nil {
		advice.Options = append(advice.Options, option(FixUpsizeDriver, stronger.Name, upsized.PeakV, thresholdV))
	} else {
		advice.Options = append(advice.Options, RepairOption{Fix: FixUpsizeDriver, Detail: "no stronger cell", Feasible: false})
	}

	// Candidate 2: double the spacing (coupling halves with distance).
	respace := func(ckt *circuit.Circuit) *circuit.Circuit {
		out := ckt.Clone()
		for i := range out.Capacitors {
			c := &out.Capacitors[i]
			if c.Coupling && touchesNet(out, *c, victimName) {
				c.Farads /= 2
			}
		}
		return out
	}
	res, err := e.analyzeGlitchCustom(ctx, cl, glitchRising, respace, nil)
	if err != nil {
		return nil, fmt.Errorf("glitch: repair respace: %w", err)
	}
	advice.Options = append(advice.Options, option(FixDoubleSpacing, "2x pitch", res.PeakV, thresholdV))

	// Candidate 3: shield insertion — victim couplings become ground caps.
	shield := func(ckt *circuit.Circuit) *circuit.Circuit {
		return ckt.GroundCoupling(func(_ int, c circuit.Capacitor) bool {
			return !touchesNet(ckt, c, victimName)
		})
	}
	res, err = e.analyzeGlitchCustom(ctx, cl, glitchRising, shield, nil)
	if err != nil {
		return nil, fmt.Errorf("glitch: repair shield: %w", err)
	}
	advice.Options = append(advice.Options, option(FixShieldVictim, "grounded shield", res.PeakV, thresholdV))

	sort.SliceStable(advice.Options, func(i, j int) bool {
		oi, oj := advice.Options[i], advice.Options[j]
		if oi.Feasible != oj.Feasible {
			return oi.Feasible
		}
		return abs(oi.PeakV) < abs(oj.PeakV)
	})
	return advice, nil
}

func option(f Fix, detail string, peak, threshold float64) RepairOption {
	return RepairOption{
		Fix: f, Detail: detail, PeakV: peak,
		Clears:   abs(peak) < threshold,
		Feasible: true,
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// touchesNet reports whether either terminal of the capacitor belongs to
// the named net (cluster node names are "<net>:<index>").
func touchesNet(ckt *circuit.Circuit, c circuit.Capacitor, net string) bool {
	prefix := net + ":"
	if c.A != circuit.Ground && strings.HasPrefix(ckt.NodeName(c.A), prefix) {
		return true
	}
	if c.B != circuit.Ground && strings.HasPrefix(ckt.NodeName(c.B), prefix) {
		return true
	}
	return false
}

// nextStronger finds the same-kind cell with the smallest strength above
// the given cell's, or nil.
func nextStronger(c *cells.Cell) *cells.Cell {
	var best *cells.Cell
	for _, cand := range cells.Library() {
		if cand.Kind != c.Kind || cand.Strength <= c.Strength {
			continue
		}
		if best == nil || cand.Strength < best.Strength {
			best = cand
		}
	}
	return best
}
