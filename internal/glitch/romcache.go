package glitch

import (
	"container/list"
	"context"
	"sync"

	"xtverify/internal/sympvl"
)

// DefaultROMCacheCap bounds the number of memoized reduced-order models kept
// by a ROMCache unless the caller chooses a different capacity. Each entry
// holds a q×q projection and a q×p start block (a few kilobytes at typical
// orders), so the default costs at most a few megabytes.
const DefaultROMCacheCap = 256

// ROMCache memoizes SyMPVL reductions across clusters, keyed by the
// structural fingerprint of the pruned cluster circuit (prune.Fingerprint).
// Parallel buses and datapaths repeat the same RC pattern net after net;
// reducing that pattern once and sharing the model is the single biggest
// chip-level saving after the reduction itself.
//
// The cache is safe for concurrent use by the engine's worker pool. Lookups
// of a key that is currently being computed by another worker block until
// that computation finishes (singleflight) or their own context is done,
// whichever comes first, so a waiter's per-cluster deadline and the engine's
// fail-fast cancellation are honored even while another worker holds the
// flight. If the computation fails — which includes the computing worker's
// context being cancelled — or panics, the waiters retry the computation
// themselves rather than inheriting an error from a context that is not
// theirs. Completed entries are kept in a bounded LRU.
//
// Correctness note: keys are the full serialized fingerprint bytes, not a
// hash, so two different clusters can never collide into the same model.
type ROMCache struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*list.Element // completed models, keyed by fingerprint
	order     *list.List               // LRU order: front = most recent
	inflight  map[string]chan struct{}
	hits      uint64
	misses    uint64
	evictions uint64

	// backing is the optional second cache level (a disk-persistent store).
	// An in-memory miss consults it before computing, and a fresh computation
	// is written through to it — all inside the key's singleflight, so at most
	// one goroutine per key ever touches the backing store.
	backing     Backing
	backingHits uint64
}

// Backing is a second-level model store behind the in-memory LRU — in
// practice the disk-persistent romstore. Load returns (model, true) only for
// an entry it fully validated; anything questionable must be reported as a
// miss, never as a bad model. Save is best-effort: it must swallow I/O
// failures (recording them in its own stats) because a cache can never be
// allowed to fail a verification. Implementations must be safe for
// concurrent use.
type Backing interface {
	Load(key string) (*sympvl.Model, bool)
	Save(key string, m *sympvl.Model)
}

type romEntry struct {
	key   string
	model *sympvl.Model
}

// NewROMCache returns a cache bounded to capacity completed entries
// (DefaultROMCacheCap if capacity <= 0).
func NewROMCache(capacity int) *ROMCache {
	if capacity <= 0 {
		capacity = DefaultROMCacheCap
	}
	return &ROMCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]chan struct{}),
	}
}

// GetOrCompute returns the cached model for key, or runs compute to produce
// it. Concurrent callers with the same key share one computation; a failed
// (or panicking) computation is not cached and surviving waiters re-attempt
// it themselves. Waiting on another caller's in-flight computation respects
// ctx; the compute call itself is not interrupted by ctx — pass a
// cancellation check into the reduction instead (sympvl.Options.Check).
// The returned model is the shared canonical instance — callers must treat
// it as immutable (use Model.WithPortNames for per-cluster naming).
func (c *ROMCache) GetOrCompute(ctx context.Context, key string, compute func() (*sympvl.Model, error)) (*sympvl.Model, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			m := el.Value.(*romEntry).model
			c.mu.Unlock()
			return m, nil
		}
		if done, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-done:
				continue // either cached now, or the compute failed: retry
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c.misses++
		done := make(chan struct{})
		c.inflight[key] = done
		c.mu.Unlock()

		return c.runFlight(key, done, compute)
	}
}

// SetBacking installs (or replaces) the second-level store consulted on
// in-memory misses. Safe to call concurrently with lookups; installing the
// backing a cache already has is a cheap no-op, so a long-lived shared cache
// can be re-wired per run without churn.
func (c *ROMCache) SetBacking(b Backing) {
	c.mu.Lock()
	c.backing = b
	c.mu.Unlock()
}

// BackingHits returns how many models were served from the backing store
// (these also count as in-memory misses: the LRU had to go to level two).
func (c *ROMCache) BackingHits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backingHits
}

// runFlight executes compute for the flight registered under done and
// publishes the outcome. The deferred cleanup runs even when compute panics
// (SyMPVL's linear algebra can panic on malformed clusters; the engine's
// per-cluster recover ladder converts that to ErrPanic): the flight is always
// deregistered and done is always closed, so waiters can never deadlock — on
// a panic they observe an uncached key and retry, while the panic itself
// propagates to this worker's recover handler.
func (c *ROMCache) runFlight(key string, done chan struct{}, compute func() (*sympvl.Model, error)) (m *sympvl.Model, err error) {
	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		if completed && err == nil {
			el := c.order.PushFront(&romEntry{key: key, model: m})
			c.entries[key] = el
			for c.order.Len() > c.cap {
				back := c.order.Back()
				c.order.Remove(back)
				delete(c.entries, back.Value.(*romEntry).key)
				c.evictions++
			}
		}
		c.mu.Unlock()
		close(done)
	}()
	c.mu.Lock()
	b := c.backing
	c.mu.Unlock()
	if b != nil {
		if bm, ok := b.Load(key); ok {
			c.mu.Lock()
			c.backingHits++
			c.mu.Unlock()
			m, err = bm, nil
			completed = true
			return m, err
		}
	}
	m, err = compute()
	completed = true
	if err == nil && b != nil {
		// Write-through inside the singleflight: one disk write per unique
		// structure, and waiters blocked on this flight still observe the
		// in-memory entry the deferred publish installs.
		b.Save(key, m)
	}
	return m, err
}

// Stats returns the cumulative hit and miss counts. Misses count compute
// attempts (failed attempts included).
func (c *ROMCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns the number of completed entries dropped by the LRU
// bound since the cache was created.
func (c *ROMCache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of completed entries currently cached.
func (c *ROMCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
