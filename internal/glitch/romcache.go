package glitch

import (
	"container/list"
	"context"
	"sync"

	"xtverify/internal/sympvl"
)

// DefaultROMCacheCap bounds the number of memoized reduced-order models kept
// by a ROMCache unless the caller chooses a different capacity. Each entry
// holds a q×q projection and a q×p start block (a few kilobytes at typical
// orders), so the default costs at most a few megabytes.
const DefaultROMCacheCap = 256

// ROMCache memoizes SyMPVL reductions across clusters, keyed by the
// structural fingerprint of the pruned cluster circuit (prune.Fingerprint).
// Parallel buses and datapaths repeat the same RC pattern net after net;
// reducing that pattern once and sharing the model is the single biggest
// chip-level saving after the reduction itself.
//
// The cache is safe for concurrent use by the engine's worker pool. Lookups
// of a key that is currently being computed by another worker block until
// that computation finishes (singleflight) or their own context is done,
// whichever comes first, so a waiter's per-cluster deadline and the engine's
// fail-fast cancellation are honored even while another worker holds the
// flight. If the computation fails — which includes the computing worker's
// context being cancelled — or panics, the waiters retry the computation
// themselves rather than inheriting an error from a context that is not
// theirs. Completed entries are kept in a bounded LRU.
//
// Correctness note: keys are the full serialized fingerprint bytes, not a
// hash, so two different clusters can never collide into the same model.
type ROMCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element // completed models, keyed by fingerprint
	order    *list.List               // LRU order: front = most recent
	inflight  map[string]chan struct{}
	hits      uint64
	misses    uint64
	evictions uint64
}

type romEntry struct {
	key   string
	model *sympvl.Model
}

// NewROMCache returns a cache bounded to capacity completed entries
// (DefaultROMCacheCap if capacity <= 0).
func NewROMCache(capacity int) *ROMCache {
	if capacity <= 0 {
		capacity = DefaultROMCacheCap
	}
	return &ROMCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]chan struct{}),
	}
}

// GetOrCompute returns the cached model for key, or runs compute to produce
// it. Concurrent callers with the same key share one computation; a failed
// (or panicking) computation is not cached and surviving waiters re-attempt
// it themselves. Waiting on another caller's in-flight computation respects
// ctx; the compute call itself is not interrupted by ctx — pass a
// cancellation check into the reduction instead (sympvl.Options.Check).
// The returned model is the shared canonical instance — callers must treat
// it as immutable (use Model.WithPortNames for per-cluster naming).
func (c *ROMCache) GetOrCompute(ctx context.Context, key string, compute func() (*sympvl.Model, error)) (*sympvl.Model, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			m := el.Value.(*romEntry).model
			c.mu.Unlock()
			return m, nil
		}
		if done, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-done:
				continue // either cached now, or the compute failed: retry
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c.misses++
		done := make(chan struct{})
		c.inflight[key] = done
		c.mu.Unlock()

		return c.runFlight(key, done, compute)
	}
}

// runFlight executes compute for the flight registered under done and
// publishes the outcome. The deferred cleanup runs even when compute panics
// (SyMPVL's linear algebra can panic on malformed clusters; the engine's
// per-cluster recover ladder converts that to ErrPanic): the flight is always
// deregistered and done is always closed, so waiters can never deadlock — on
// a panic they observe an uncached key and retry, while the panic itself
// propagates to this worker's recover handler.
func (c *ROMCache) runFlight(key string, done chan struct{}, compute func() (*sympvl.Model, error)) (m *sympvl.Model, err error) {
	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		if completed && err == nil {
			el := c.order.PushFront(&romEntry{key: key, model: m})
			c.entries[key] = el
			for c.order.Len() > c.cap {
				back := c.order.Back()
				c.order.Remove(back)
				delete(c.entries, back.Value.(*romEntry).key)
				c.evictions++
			}
		}
		c.mu.Unlock()
		close(done)
	}()
	m, err = compute()
	completed = true
	return m, err
}

// Stats returns the cumulative hit and miss counts. Misses count compute
// attempts (failed attempts included).
func (c *ROMCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns the number of completed entries dropped by the LRU
// bound since the cache was created.
func (c *ROMCache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of completed entries currently cached.
func (c *ROMCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
