// Package glitch is the chip-level crosstalk analysis engine: it takes a
// pruned cluster, sets up the worst-case stimulus under the paper's analysis
// policies (aggressors aligned within timing windows, tri-state buses driven
// by their strongest driver, complementary flip-flop outputs never switching
// the same way), attaches driver models, and predicts the victim's glitch
// peak or coupled delay using the SyMPVL reduced-order model.
//
// For validation it can also run the identical cluster through the
// SPICE-class reference engine, either with the same driver models or at
// transistor level, which is how the paper's Figures 3–7 are produced.
package glitch

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"xtverify/internal/cellmodel"
	"xtverify/internal/cells"
	"xtverify/internal/circuit"
	"xtverify/internal/design"
	"xtverify/internal/devices"
	"xtverify/internal/extract"
	"xtverify/internal/mna"
	"xtverify/internal/obs"
	"xtverify/internal/prune"
	"xtverify/internal/romsim"
	"xtverify/internal/sympvl"
	"xtverify/internal/waveform"
)

// Vdd is the analysis supply.
const Vdd = devices.Vdd025

// ModelKind selects the driver model family.
type ModelKind int

// Driver model kinds.
const (
	// ModelFixedR uses one fixed linear drive resistance for every driver
	// (the Figure 3 setup with 1 kΩ).
	ModelFixedR ModelKind = iota
	// ModelTimingLibrary uses per-cell linear resistances deduced from the
	// NLDM tables (Section 4.1 / Table 3).
	ModelTimingLibrary
	// ModelNonlinear uses the pre-characterized nonlinear cell models
	// (Section 4.2 / Table 4).
	ModelNonlinear
)

// Options configures an analysis run.
type Options struct {
	// Model selects the driver model family.
	Model ModelKind
	// FixedOhms is the drive resistance for ModelFixedR (default 1000).
	FixedOhms float64
	// Order is the reduced-model order (default OrderFactor·ports, capped
	// by cluster size).
	Order int
	// OrderFactor sets the order as a multiple of the port count when Order
	// is zero (default 6).
	OrderFactor int
	// TEnd and Dt control the transient (defaults 4 ns / 2 ps).
	TEnd, Dt float64
	// AlignTime is the nominal aggressor switching instant when timing
	// windows are not used (default 200 ps).
	AlignTime float64
	// InputSlew is the aggressors' driver input transition (default 120 ps).
	InputSlew float64
	// UseTimingWindows aligns aggressors inside their STA windows and
	// silences those that cannot overlap the victim's window.
	UseTimingWindows bool
	// UseLogicCorrelation makes complementary aggressor pairs switch in
	// opposite directions.
	UseLogicCorrelation bool
	// Gmin overrides the per-node grounding conductance used during MNA
	// assembly (mna.DefaultGmin if zero). The chip-level fallback ladder
	// raises it to regularize clusters whose G defeats the Cholesky
	// factorization at the default value.
	Gmin float64
	// DirectMNA bypasses SyMPVL reduction and integrates the unreduced
	// MNA system directly — the last-resort rung of the fallback ladder.
	// Much slower, but immune to reduction breakdowns.
	DirectMNA bool
	// Cache memoizes SyMPVL reductions keyed by the structural fingerprint
	// of the pruned cluster. Share one cache across engines (the verifier's
	// worker pool does) to reuse models between structurally identical
	// clusters. NewEngine installs a private cache when nil unless
	// DisableROMCache is set.
	Cache *ROMCache
	// DisableROMCache turns reduced-model memoization off entirely.
	DisableROMCache bool
	// PreparedStore, when non-nil, persists prepared-transient numeric cores
	// (romsim.PreparedCore) across processes, keyed by the cluster
	// fingerprint plus the termination conductance pattern and stepping
	// parameters. A hit skips the SyMPVL reduction *and* the termination
	// fold/eigendecomposition; transients against a restored core are
	// bit-identical to freshly prepared ones. Ignored when DisableROMCache
	// or DisablePrepared is set, and bypassed (like the in-memory memo) for
	// circuits that no longer match prune.BuildCircuit output.
	PreparedStore PreparedBacking
	// DisablePrepared turns the prepared-transient layer off: every
	// scenario re-runs the termination fold and eigendecomposition through
	// one-shot romsim.Simulate calls, and rising/falling (and
	// repair-candidate) scenarios run sequentially instead of as batched
	// multi-RHS sweeps. Results are bit-identical either way; the knob
	// exists for the byte-identity regression tests and A/B benchmarking.
	DisablePrepared bool
	// Trace, when non-nil, receives this engine's phase spans and counters
	// (one trace per cluster: the verifier installs a fresh one per
	// analyzed cluster). Nil disables instrumentation at near-zero cost.
	Trace *obs.Trace
}

func (o *Options) setDefaults() {
	if o.FixedOhms == 0 {
		o.FixedOhms = 1000
	}
	if o.TEnd == 0 {
		o.TEnd = 4e-9
	}
	if o.Dt == 0 {
		o.Dt = 2e-12
	}
	if o.AlignTime == 0 {
		o.AlignTime = 200e-12
	}
	if o.InputSlew == 0 {
		o.InputSlew = 120e-12
	}
}

// AggressorPlan describes the stimulus decided for one aggressor.
type AggressorPlan struct {
	Net      int
	Cell     *cells.Cell
	Rising   bool
	Quiet    bool // excluded by timing windows
	SwitchAt float64
	Inverted bool // flipped by logic correlation
}

// Result is the outcome of a glitch analysis.
type Result struct {
	VictimName string
	// PeakV is the signed worst glitch deviation at the victim receivers.
	PeakV float64
	// PeakTime is when it occurs.
	PeakTime float64
	// ReceiverWave is the waveform at the worst receiver port.
	ReceiverWave *waveform.Waveform
	// Aggressors records the stimulus plan.
	Aggressors []AggressorPlan
	// ActiveAggressors counts non-quiet aggressors.
	ActiveAggressors int
	// ReducedOrder is the SyMPVL model order used.
	ReducedOrder int
	// ClusterNodes is the unreduced node count.
	ClusterNodes int
}

// Engine performs analyses against one design's parasitics. An Engine is not
// safe for concurrent use (it owns a reusable Lanczos workspace); the shared
// pieces — Parasitics and the ROM cache — may be referenced by many engines.
type Engine struct {
	Par *extract.Parasitics
	Opt Options

	// ws is the engine-private SyMPVL scratch arena, reused across every
	// reduction this engine performs.
	ws *sympvl.Workspace
	// memo caches the most recent cluster's built circuit, port resolution
	// and assembled MNA system, one slot per decoupling variant. The engine
	// analyzes each cluster several times back to back (two glitch
	// polarities, delay with and without coupling), and the delay sweep
	// alternates coupled and decoupled — a single slot would thrash on
	// exactly that access pattern.
	memo struct {
		cl *prune.Cluster
		sl [2]*clusterMemo // indexed by decoupled
	}
	// prep memoizes prepared transients (romsim.Prepared) for the current
	// cluster, keyed by decoupling plus the conductance pattern of the
	// terminations. A hit skips the reduction and the diagonalization
	// entirely. The memo is only sound for circuits that match
	// prune.BuildCircuit output — the pattern key cannot see circuit edits,
	// so repair transforms bypass it.
	prep struct {
		cl      *prune.Cluster
		entries map[string]*romsim.Prepared
	}
}

// clusterMemo is one memoized (cluster, decoupling) build.
type clusterMemo struct {
	ckt *circuit.Circuit
	cp  *clusterPorts
	sys *mna.System
}

// clusterSystem returns the built circuit, resolved ports and MNA system for
// cl, reusing the memoized copies when the same cluster is re-analyzed under
// the same decoupling. The memo is only valid because all three structures
// are treated as immutable after construction; callers that edit the circuit
// (repair transforms) must build their own copy and bypass the memo.
func (e *Engine) clusterSystem(cl *prune.Cluster, decoupled bool) (*circuit.Circuit, *clusterPorts, *mna.System, error) {
	slot := 0
	if decoupled {
		slot = 1
	}
	if e.memo.cl == cl {
		if m := e.memo.sl[slot]; m != nil {
			return m.ckt, m.cp, m.sys, nil
		}
	} else {
		e.memo.cl = cl
		e.memo.sl = [2]*clusterMemo{}
	}
	ckt, err := prune.BuildCircuit(e.Par, cl)
	if err != nil {
		return nil, nil, nil, err
	}
	cp, err := resolvePorts(e.Par, cl, ckt)
	if err != nil {
		return nil, nil, nil, err
	}
	sys, err := mna.FromCircuit(ckt, mna.Options{DecoupleAll: decoupled, Gmin: e.Opt.Gmin})
	if err != nil {
		return nil, nil, nil, err
	}
	e.memo.sl[slot] = &clusterMemo{ckt: ckt, cp: cp, sys: sys}
	return ckt, cp, sys, nil
}

// NewEngine constructs an engine.
func NewEngine(par *extract.Parasitics, opt Options) *Engine {
	opt.setDefaults()
	if opt.Cache == nil && !opt.DisableROMCache {
		opt.Cache = NewROMCache(DefaultROMCacheCap)
	}
	return &Engine{Par: par, Opt: opt, ws: &sympvl.Workspace{}}
}

// strongestPin returns the driver pin with the widest output stage —
// the paper's tri-state bus rule ("strongest of all bus drivers is
// switching").
func strongestPin(pins []design.Pin) (int, design.Pin) {
	best := 0
	for i, p := range pins[1:] {
		if p.Cell.Wn > pins[best].Cell.Wn {
			best = i + 1
		}
	}
	return best, pins[best]
}

// clusterPorts resolves which circuit port drives/observes what.
type clusterPorts struct {
	ckt *circuit.Circuit
	// victimDriver is the active victim driver port index.
	victimDriver int
	// idleDrivers are bus driver ports held tri-stated (open).
	idleDrivers []int
	// aggDrivers[i] is the active driver port of aggressor i.
	aggDrivers []int
	// receivers are the victim receiver port indices.
	receivers []int
}

func resolvePorts(p *extract.Parasitics, cl *prune.Cluster, ckt *circuit.Circuit) (*clusterPorts, error) {
	cp := &clusterPorts{ckt: ckt, victimDriver: -1}
	d := p.Design
	members := cl.MemberNets()
	// Per member net, the port indices of its drivers in declaration order.
	drvPorts := make([][]int, len(members))
	for pi, port := range ckt.Ports {
		switch port.Kind {
		case circuit.PortDriver:
			drvPorts[port.Net] = append(drvPorts[port.Net], pi)
		case circuit.PortReceiver:
			cp.receivers = append(cp.receivers, pi)
		}
	}
	for pos, m := range members {
		pins := d.Nets[m].Drivers
		if len(drvPorts[pos]) != len(pins) {
			return nil, fmt.Errorf("glitch: net %s has %d driver ports for %d pins", d.Nets[m].Name, len(drvPorts[pos]), len(pins))
		}
		active, _ := strongestPin(pins)
		for k, pi := range drvPorts[pos] {
			switch {
			case k == active && pos == 0:
				cp.victimDriver = pi
			case k == active:
				cp.aggDrivers = append(cp.aggDrivers, pi)
			default:
				cp.idleDrivers = append(cp.idleDrivers, pi)
			}
		}
	}
	if cp.victimDriver < 0 {
		return nil, fmt.Errorf("glitch: victim driver port missing")
	}
	if len(cp.receivers) == 0 {
		return nil, fmt.Errorf("glitch: victim has no receiver ports")
	}
	return cp, nil
}

// planAggressors applies the alignment and correlation policies. glitchRising
// selects the glitch polarity under analysis: rising glitches are produced
// by rising aggressors against a low victim.
func (e *Engine) planAggressors(cl *prune.Cluster, glitchRising bool) []AggressorPlan {
	d := e.Par.Design
	vNet := d.Nets[cl.Victim]
	plans := make([]AggressorPlan, len(cl.Aggressors))
	for i, a := range cl.Aggressors {
		aNet := d.Nets[a.Net]
		_, pin := strongestPin(aNet.Drivers)
		plan := AggressorPlan{Net: a.Net, Cell: pin.Cell, Rising: glitchRising, SwitchAt: e.Opt.AlignTime}
		if e.Opt.UseTimingWindows && vNet.Window.Valid && aNet.Window.Valid {
			if !vNet.Window.Overlaps(aNet.Window) {
				plan.Quiet = true
			} else {
				// Align inside the window intersection, as close to the
				// nominal alignment point as allowed.
				lo := math.Max(vNet.Window.Early, aNet.Window.Early)
				hi := math.Min(vNet.Window.Late, aNet.Window.Late)
				at := math.Min(math.Max(e.Opt.AlignTime, lo), hi)
				plan.SwitchAt = at
			}
		}
		plans[i] = plan
	}
	if e.Opt.UseLogicCorrelation {
		// Complementary pairs cannot switch the same direction: flip the
		// weaker partner.
		for i := range plans {
			for j := i + 1; j < len(plans); j++ {
				if d.AreComplementary(plans[i].Net, plans[j].Net) &&
					plans[i].Rising == plans[j].Rising && !plans[i].Quiet && !plans[j].Quiet {
					weaker := j
					if plans[i].Cell.Wn < plans[j].Cell.Wn {
						weaker = i
					}
					plans[weaker].Rising = !plans[weaker].Rising
					plans[weaker].Inverted = true
				}
			}
		}
	}
	return plans
}

// aggressorSource builds the driver-input stimulus for an aggressor plan:
// the cell INPUT ramp that produces the desired OUTPUT transition.
func (e *Engine) aggressorSource(plan AggressorPlan) (inRising bool, src waveform.Source) {
	inRising = plan.Rising
	if plan.Cell.Polarity() < 0 {
		inRising = !plan.Rising
	}
	v0, v1 := 0.0, Vdd
	if !inRising {
		v0, v1 = Vdd, 0
	}
	start := plan.SwitchAt - e.Opt.InputSlew/2
	if start < 0 {
		start = 0
	}
	return inRising, waveform.Ramp(v0, v1, start, e.Opt.InputSlew)
}

// driverTermination builds the romsim termination for a switching aggressor.
func (e *Engine) driverTermination(plan AggressorPlan, loadEst float64) (romsim.Termination, error) {
	if plan.Quiet {
		// Quiet aggressor: held at its current state by its driver. Model as
		// holding low (direction is irrelevant for a non-switching line's
		// small-signal behaviour; its driver still loads the line).
		return e.holdTermination(plan.Cell, cells.HoldLow)
	}
	switch e.Opt.Model {
	case ModelFixedR:
		// With a fixed resistance the "driver" is an ideal ramp behind R —
		// the source follows the intended OUTPUT transition directly.
		v0, v1 := 0.0, Vdd
		if !plan.Rising {
			v0, v1 = Vdd, 0
		}
		start := plan.SwitchAt - e.Opt.InputSlew/2
		if start < 0 {
			start = 0
		}
		return romsim.Termination{Linear: &romsim.Linear{
			G: 1 / e.Opt.FixedOhms, Vs: waveform.Ramp(v0, v1, start, e.Opt.InputSlew),
		}}, nil
	case ModelTimingLibrary:
		tm, err := cells.CharacterizeCached(plan.Cell)
		if err != nil {
			return romsim.Termination{}, err
		}
		drv := cellmodel.NewLinearSwitching(tm, plan.Rising, plan.SwitchAt, e.Opt.InputSlew, loadEst)
		return drv.Termination(), nil
	case ModelNonlinear:
		tm, err := cells.CharacterizeCached(plan.Cell)
		if err != nil {
			return romsim.Termination{}, err
		}
		drv, err := cellmodel.NewNonlinearSwitching(plan.Cell, tm, plan.Rising, plan.SwitchAt, e.Opt.InputSlew, loadEst)
		if err != nil {
			return romsim.Termination{}, err
		}
		return drv.Termination(), nil
	default:
		return romsim.Termination{}, fmt.Errorf("glitch: unknown model kind %d", e.Opt.Model)
	}
}

// holdTermination builds the victim-side holding termination.
func (e *Engine) holdTermination(c *cells.Cell, hold cells.HoldState) (romsim.Termination, error) {
	rail := waveform.Const(0)
	if hold == cells.HoldHigh {
		rail = waveform.Const(Vdd)
	}
	switch e.Opt.Model {
	case ModelFixedR:
		return romsim.Termination{Linear: &romsim.Linear{G: 1 / e.Opt.FixedOhms, Vs: rail}}, nil
	case ModelTimingLibrary:
		tm, err := cells.CharacterizeCached(c)
		if err != nil {
			return romsim.Termination{}, err
		}
		return cellmodel.NewLinearHolding(tm, hold).Termination(), nil
	case ModelNonlinear:
		drv, err := cellmodel.NewNonlinearHolding(c, hold)
		if err != nil {
			return romsim.Termination{}, err
		}
		return drv.Termination(), nil
	default:
		return romsim.Termination{}, fmt.Errorf("glitch: unknown model kind %d", e.Opt.Model)
	}
}

// reducedOrder resolves the SyMPVL order for a cluster with p ports.
func (e *Engine) reducedOrder(p int) int {
	if e.Opt.Order > 0 {
		return e.Opt.Order
	}
	f := e.Opt.OrderFactor
	if f <= 0 {
		f = 6
	}
	return f * p
}

// reduceModel runs the SyMPVL reduction for sys, memoized through the ROM
// cache when cacheable. cacheable must be false whenever the circuit no
// longer matches what prune.BuildCircuit produced (repair-advisor transforms),
// since the fingerprint is computed from ckt. Cache hits return the shared
// canonical model rebound to this cluster's port names; the rebinding also
// drops the model's lazy eigendecomposition cache so concurrent users never
// race on it. The memoized values are bit-identical to a fresh reduction:
// Reduce is deterministic in (G, C, B), and the fingerprint pins down exactly
// those matrices plus the gmin/order/decoupling parameters that shaped them.
func (e *Engine) reduceModel(ctx context.Context, sys *mna.System, ckt *circuit.Circuit,
	order int, decoupled, cacheable bool) (*sympvl.Model, error) {
	reduce := func() (*sympvl.Model, error) {
		return sympvl.Reduce(sys, sympvl.Options{Order: order, Check: ctx.Err, Workspace: e.ws, Trace: e.Opt.Trace})
	}
	if !cacheable || e.Opt.Cache == nil || e.Opt.DisableROMCache {
		span := e.Opt.Trace.Start(obs.PhaseReduce)
		m, err := reduce()
		span.End()
		return m, err
	}
	gmin := e.Opt.Gmin
	if gmin == 0 {
		gmin = mna.DefaultGmin
	}
	fpSpan := e.Opt.Trace.Start(obs.PhaseFingerprint)
	key := prune.Fingerprint(ckt, gmin, order, decoupled)
	fpSpan.End()
	// The reduce span includes the cache lookup: a hit shows up as a
	// near-zero span, and Lanczos iterations are attributed (inside
	// sympvl.Reduce) to the cluster that actually performed the reduction.
	span := e.Opt.Trace.Start(obs.PhaseReduce)
	m, err := e.Opt.Cache.GetOrCompute(ctx, key, reduce)
	span.End()
	if err != nil {
		return nil, err
	}
	return m.WithPortNames(sys.PortNames), nil
}

// loadEstimate approximates the total load a net's driver sees (wire +
// pins), used to parameterize the driver models.
func (e *Engine) loadEstimate(net int) float64 {
	return e.Par.Nets[net].TotalCapF()
}

// AnalyzeGlitch predicts the worst glitch of the given polarity on the
// cluster's victim using the reduced-order flow.
func (e *Engine) AnalyzeGlitch(cl *prune.Cluster, glitchRising bool) (*Result, error) {
	return e.AnalyzeGlitchContext(context.Background(), cl, glitchRising)
}

// AnalyzeGlitchContext is AnalyzeGlitch honoring context cancellation and
// deadlines: the reduction and transient loops poll ctx and abort promptly
// with its error when it is done.
func (e *Engine) AnalyzeGlitchContext(ctx context.Context, cl *prune.Cluster, glitchRising bool) (*Result, error) {
	return e.analyzeGlitchCustom(ctx, cl, glitchRising, nil, nil)
}

// AnalyzeGlitchPair predicts both glitch polarities on the cluster's victim
// in one pass, sharing the reduction and the prepared diagonalization; see
// AnalyzeGlitchPairContext.
func (e *Engine) AnalyzeGlitchPair(cl *prune.Cluster) (rising, falling *Result, err error) {
	return e.AnalyzeGlitchPairContext(context.Background(), cl)
}

// AnalyzeGlitchPairContext predicts both glitch polarities on the cluster's
// victim in one pass. The cluster circuit, MNA system and SyMPVL reduction
// are shared, the termination fold + eigendecomposition is prepared once per
// conductance pattern, and — when the driver models give both polarities the
// same pattern (always true for ModelFixedR) — the two transients advance in
// lockstep as one multi-RHS sweep. The results are bit-identical to calling
// AnalyzeGlitchContext once per polarity; on failure the first failing
// polarity's error is returned, rising first, matching the sequential order.
func (e *Engine) AnalyzeGlitchPairContext(ctx context.Context, cl *prune.Cluster) (rising, falling *Result, err error) {
	if e.Opt.DirectMNA || e.Opt.DisablePrepared {
		if rising, err = e.analyzeGlitchCustom(ctx, cl, true, nil, nil); err != nil {
			return nil, nil, err
		}
		if falling, err = e.analyzeGlitchCustom(ctx, cl, false, nil, nil); err != nil {
			return nil, nil, err
		}
		return rising, falling, nil
	}
	results, _, err := e.analyzeGlitchSet(ctx, cl, []glitchScenario{
		{glitchRising: true},
		{glitchRising: false},
	})
	if err != nil {
		return nil, nil, err
	}
	return results[0], results[1], nil
}

// glitchScenario describes one glitch run against a shared cluster setup.
type glitchScenario struct {
	glitchRising bool
	// victimCell overrides the victim's holding cell when non-nil (the
	// repair advisor's driver-upsize candidate).
	victimCell *cells.Cell
}

// glitchTerms builds the stimulus plan and port terminations for one glitch
// scenario: the victim held at the rail opposite the glitch polarity, the
// aggressors switching per the alignment/correlation policies, and the idle
// bus drivers tri-stated (open terminations, the zero value).
func (e *Engine) glitchTerms(cl *prune.Cluster, ckt *circuit.Circuit, cp *clusterPorts,
	glitchRising bool, victimCell *cells.Cell) (terms []romsim.Termination, plans []AggressorPlan, baseline float64, err error) {
	plans = e.planAggressors(cl, glitchRising)
	hold := cells.HoldLow
	if !glitchRising {
		hold = cells.HoldHigh
		baseline = Vdd
	}
	terms = make([]romsim.Termination, len(ckt.Ports))
	_, vPin := strongestPin(e.Par.Design.Nets[cl.Victim].Drivers)
	vCell := vPin.Cell
	if victimCell != nil {
		vCell = victimCell
	}
	if terms[cp.victimDriver], err = e.holdTermination(vCell, hold); err != nil {
		return nil, nil, 0, err
	}
	for i, pi := range cp.aggDrivers {
		if terms[pi], err = e.driverTermination(plans[i], e.loadEstimate(plans[i].Net)); err != nil {
			return nil, nil, 0, err
		}
	}
	return terms, plans, baseline, nil
}

// glitchResult assembles the analysis Result from a finished transient.
func (e *Engine) glitchResult(cl *prune.Cluster, cp *clusterPorts, plans []AggressorPlan,
	order, nodes int, baseline float64, simRes *romsim.Result) *Result {
	res := &Result{
		VictimName:   e.Par.Design.Nets[cl.Victim].Name,
		Aggressors:   plans,
		ReducedOrder: order,
		ClusterNodes: nodes,
	}
	for _, p := range plans {
		if !p.Quiet {
			res.ActiveAggressors++
		}
	}
	for _, pi := range cp.receivers {
		pk := simRes.Ports[pi].PeakDeviation(baseline)
		if pk.Abs > math.Abs(res.PeakV) {
			res.PeakV = pk.Value
			res.PeakTime = pk.Time
			res.ReceiverWave = simRes.Ports[pi]
		}
	}
	if res.ReceiverWave == nil {
		res.ReceiverWave = simRes.Ports[cp.receivers[0]]
	}
	return res
}

// PreparedBacking is the optional persistent level under the prepared-
// transient memo (implemented by romstore.Store): restored cores step
// bit-identically to freshly prepared ones, loads that cannot be fully
// validated report a miss, and saves are best-effort.
type PreparedBacking interface {
	LoadPrepared(key string) (*romsim.PreparedCore, bool)
	SavePrepared(key string, c *romsim.PreparedCore)
}

// preparedFor returns the memoized Prepared for (cl, decoupled, pattern of
// terms), building the reduced model and the factorization on a miss via the
// reduce callback. A hit skips both the reduction and the diagonalization.
// When a PreparedStore is configured, misses consult it before reducing —
// keyed by the cluster fingerprint, the stepping parameters and the
// termination pattern, so a warm process skips the diagonalization across
// restarts too — and freshly prepared cores are written through. Callers
// whose circuit no longer matches prune.BuildCircuit output (repair
// transforms) must not use the memo: neither the pattern key nor the
// fingerprint-based store key can see circuit edits.
func (e *Engine) preparedFor(cl *prune.Cluster, decoupled bool, terms []romsim.Termination,
	ckt *circuit.Circuit, sys *mna.System,
	reduce func() (*sympvl.Model, error)) (*romsim.Prepared, error) {
	pat := romsim.PatternKey(terms)
	key := pat
	if decoupled {
		key = "D|" + key
	}
	if e.prep.cl != cl {
		e.prep.cl = cl
		e.prep.entries = make(map[string]*romsim.Prepared, 4)
	}
	if p, ok := e.prep.entries[key]; ok {
		e.Opt.Trace.Add(obs.CtrPreparedReuses, 1)
		return p, nil
	}
	var storeKey string
	if e.Opt.PreparedStore != nil && !e.Opt.DisableROMCache {
		gmin := e.Opt.Gmin
		if gmin == 0 {
			gmin = mna.DefaultGmin
		}
		fpSpan := e.Opt.Trace.Start(obs.PhaseFingerprint)
		fp := prune.Fingerprint(ckt, gmin, e.reducedOrder(sys.P), decoupled)
		fpSpan.End()
		// The fingerprint already encodes gmin/order/decoupling; the suffix
		// pins the stepping grid and the termination conductance pattern
		// (romsim's tol/maxNewton defaults are constants covered by the
		// store's format version).
		storeKey = fp + "|prep|" + strconv.FormatUint(math.Float64bits(e.Opt.TEnd), 16) + "." +
			strconv.FormatUint(math.Float64bits(e.Opt.Dt), 16) + "|" + pat
		if core, ok := e.Opt.PreparedStore.LoadPrepared(storeKey); ok {
			if p, err := romsim.PreparedFromCore(core); err == nil {
				e.Opt.Trace.Add(obs.CtrPreparedStoreHits, 1)
				e.prep.entries[key] = p
				return p, nil
			}
		}
	}
	model, err := reduce()
	if err != nil {
		return nil, err
	}
	p, err := romsim.Prepare(model, terms, romsim.Options{TEnd: e.Opt.TEnd, Dt: e.Opt.Dt, Trace: e.Opt.Trace})
	if err != nil {
		return nil, err
	}
	if storeKey != "" {
		e.Opt.PreparedStore.SavePrepared(storeKey, p.Core())
	}
	e.prep.entries[key] = p
	return p, nil
}

// analyzeGlitchSet runs several glitch scenarios against one shared cluster
// reduction, sweeping scenarios whose terminations share a conductance
// pattern through one Prepared.RunBatch multi-RHS call. Results are indexed
// like specs. On failure it returns the first error in spec order together
// with the index of the spec that produced it (so callers can apply
// per-candidate error wrapping). Callers gate on DirectMNA/DisablePrepared;
// this path always uses the prepared layer.
func (e *Engine) analyzeGlitchSet(ctx context.Context, cl *prune.Cluster, specs []glitchScenario) ([]*Result, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	ckt, cp, sys, err := e.clusterSystem(cl, false)
	if err != nil {
		return nil, 0, err
	}
	type scenarioTerms struct {
		terms    []romsim.Termination
		plans    []AggressorPlan
		baseline float64
	}
	built := make([]scenarioTerms, len(specs))
	for i, sp := range specs {
		terms, plans, baseline, err := e.glitchTerms(cl, ckt, cp, sp.glitchRising, sp.victimCell)
		if err != nil {
			return nil, i, err
		}
		built[i] = scenarioTerms{terms, plans, baseline}
	}
	reduce := func() (*sympvl.Model, error) {
		return e.reduceModel(ctx, sys, ckt, e.reducedOrder(sys.P), false, true)
	}

	// Group scenarios by conductance pattern, preserving spec order inside
	// each group, and sweep each group through one Prepared. Distinct
	// patterns (e.g. library-model polarities with different drive G) still
	// share the reduction through the ROM cache; only the cheap fold
	// re-runs.
	groups := make(map[string][]int, len(specs))
	var keys []string
	for i := range specs {
		key := romsim.PatternKey(built[i].terms)
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], i)
	}
	simResults := make([]*romsim.Result, len(specs))
	orders := make([]int, len(specs))
	errIdx, firstErr := -1, error(nil)
	for _, key := range keys {
		idxs := groups[key]
		p, err := e.preparedFor(cl, false, built[idxs[0]].terms, ckt, sys, reduce)
		if err != nil {
			return nil, idxs[0], err
		}
		scens := make([]romsim.Scenario, len(idxs))
		for g, i := range idxs {
			scens[g] = romsim.Scenario{Terms: built[i].terms, Check: ctx.Err, Trace: e.Opt.Trace}
		}
		var rs []*romsim.Result
		var es []error
		if len(scens) == 1 {
			r0, e0 := p.Run(scens[0])
			rs, es = []*romsim.Result{r0}, []error{e0}
		} else {
			rs, es = p.RunBatch(scens)
		}
		for g, i := range idxs {
			simResults[i] = rs[g]
			orders[i] = p.Order()
			if es[g] != nil && (errIdx == -1 || i < errIdx) {
				errIdx, firstErr = i, es[g]
			}
		}
	}
	if errIdx >= 0 {
		return nil, errIdx, firstErr
	}
	out := make([]*Result, len(specs))
	for i := range specs {
		out[i] = e.glitchResult(cl, cp, built[i].plans, orders[i], sys.N, built[i].baseline, simResults[i])
	}
	return out, -1, nil
}

// analyzeGlitchCustom is AnalyzeGlitch with two hooks used by the repair
// advisor: transform edits the cluster circuit before reduction (e.g.
// shield insertion), and victimCell overrides the victim's holding cell
// (e.g. driver upsizing).
func (e *Engine) analyzeGlitchCustom(ctx context.Context, cl *prune.Cluster, glitchRising bool,
	transform func(*circuit.Circuit) *circuit.Circuit, victimCell *cells.Cell) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var (
		ckt *circuit.Circuit
		cp  *clusterPorts
		sys *mna.System
		err error
	)
	if transform != nil {
		// The transform may edit the circuit in place; build a private copy
		// and keep it out of the memo.
		ckt, err = prune.BuildCircuit(e.Par, cl)
		if err != nil {
			return nil, err
		}
		ckt = transform(ckt)
		if cp, err = resolvePorts(e.Par, cl, ckt); err != nil {
			return nil, err
		}
		if sys, err = mna.FromCircuit(ckt, mna.Options{Gmin: e.Opt.Gmin}); err != nil {
			return nil, err
		}
	} else if ckt, cp, sys, err = e.clusterSystem(cl, false); err != nil {
		return nil, err
	}
	terms, plans, baseline, err := e.glitchTerms(cl, ckt, cp, glitchRising, victimCell)
	if err != nil {
		return nil, err
	}
	reduce := func() (*sympvl.Model, error) {
		// Repair-advisor hooks edit the circuit or the terminations in ways
		// the fingerprint cannot see; bypass the cache for those runs.
		cacheable := transform == nil && victimCell == nil
		return e.reduceModel(ctx, sys, ckt, e.reducedOrder(sys.P), false, cacheable)
	}
	simOpt := romsim.Options{TEnd: e.Opt.TEnd, Dt: e.Opt.Dt, Check: ctx.Err, Trace: e.Opt.Trace}
	var simRes *romsim.Result
	order := sys.N // direct integration uses the full state
	switch {
	case e.Opt.DirectMNA:
		simRes, err = romsim.SimulateDirect(sys, terms, simOpt)
	case transform != nil || e.Opt.DisablePrepared:
		var model *sympvl.Model
		if model, err = reduce(); err != nil {
			return nil, err
		}
		order = model.Order
		simRes, err = romsim.Simulate(model, terms, simOpt)
	default:
		var p *romsim.Prepared
		if p, err = e.preparedFor(cl, false, terms, ckt, sys, reduce); err != nil {
			return nil, err
		}
		order = p.Order()
		simRes, err = p.Run(romsim.Scenario{Terms: terms, Check: ctx.Err, Trace: e.Opt.Trace})
	}
	if err != nil {
		return nil, err
	}
	return e.glitchResult(cl, cp, plans, order, sys.N, baseline, simRes), nil
}

// DelayResult reports coupled-delay analysis (the paper's Table 2 view).
type DelayResult struct {
	VictimName string
	// Delay is the 50 %–50 % delay from the victim driver switching instant
	// to the worst receiver crossing.
	Delay float64
	// Slew is the receiver-end 20–80 % transition scaled to full swing.
	Slew float64
	// WithCoupling records whether coupling capacitors were active.
	WithCoupling bool
}

// AnalyzeDelay measures the victim's interconnect delay while aggressors
// switch in the opposite direction (worst case) or with coupling grounded
// (the decoupled baseline).
func (e *Engine) AnalyzeDelay(cl *prune.Cluster, victimRising, withCoupling bool) (*DelayResult, error) {
	return e.AnalyzeDelayContext(context.Background(), cl, victimRising, withCoupling)
}

// AnalyzeDelayContext is AnalyzeDelay honoring context cancellation and
// deadlines: both the reduction and the transient poll ctx. (The transient
// polls through the per-step Check hook, which the historical delay path
// left unset, so per-cluster deadlines did not cover delay analysis.)
func (e *Engine) AnalyzeDelayContext(ctx context.Context, cl *prune.Cluster, victimRising, withCoupling bool) (*DelayResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ckt, cp, sys, err := e.clusterSystem(cl, !withCoupling)
	if err != nil {
		return nil, err
	}
	// The decoupled baseline zeroes coupling capacitors during assembly, so
	// the same circuit yields a different C; the flag keys the cache apart.
	reduce := func() (*sympvl.Model, error) {
		return e.reduceModel(ctx, sys, ckt, e.reducedOrder(sys.P), !withCoupling, true)
	}
	// Victim switches; aggressors switch opposite (worst case for delay).
	plans := e.planAggressors(cl, !victimRising)
	terms := make([]romsim.Termination, len(ckt.Ports))
	_, vPin := strongestPin(e.Par.Design.Nets[cl.Victim].Drivers)
	vPlan := AggressorPlan{Net: cl.Victim, Cell: vPin.Cell, Rising: victimRising, SwitchAt: e.Opt.AlignTime}
	if terms[cp.victimDriver], err = e.driverTermination(vPlan, e.loadEstimate(cl.Victim)); err != nil {
		return nil, err
	}
	for i, pi := range cp.aggDrivers {
		if !withCoupling {
			// Decoupled baseline: aggressors electrically irrelevant; hold.
			if terms[pi], err = e.holdTermination(plans[i].Cell, cells.HoldLow); err != nil {
				return nil, err
			}
			continue
		}
		if terms[pi], err = e.driverTermination(plans[i], e.loadEstimate(plans[i].Net)); err != nil {
			return nil, err
		}
	}
	var simRes *romsim.Result
	if e.Opt.DisablePrepared {
		model, rerr := reduce()
		if rerr != nil {
			return nil, rerr
		}
		simOpt := romsim.Options{TEnd: e.Opt.TEnd, Dt: e.Opt.Dt, Check: ctx.Err, Trace: e.Opt.Trace}
		if simRes, err = romsim.Simulate(model, terms, simOpt); err != nil {
			return nil, err
		}
	} else {
		p, perr := e.preparedFor(cl, !withCoupling, terms, ckt, sys, reduce)
		if perr != nil {
			return nil, perr
		}
		if simRes, err = p.Run(romsim.Scenario{Terms: terms, Check: ctx.Err, Trace: e.Opt.Trace}); err != nil {
			return nil, err
		}
	}
	return e.delayResult(cl, cp, simRes, victimRising, withCoupling)
}

// delayResult extracts the worst receiver delay and slew from a finished
// delay transient.
func (e *Engine) delayResult(cl *prune.Cluster, cp *clusterPorts, simRes *romsim.Result,
	victimRising, withCoupling bool) (*DelayResult, error) {
	res := &DelayResult{VictimName: e.Par.Design.Nets[cl.Victim].Name, WithCoupling: withCoupling}
	worst := -math.MaxFloat64
	for _, pi := range cp.receivers {
		w := simRes.Ports[pi]
		cross, ok := w.LastCrossTime(Vdd/2, victimRising)
		if !ok {
			return nil, fmt.Errorf("glitch: victim receiver never crossed 50%% in delay analysis")
		}
		d := cross - e.Opt.AlignTime
		if d > worst {
			worst = d
			res.Delay = d
			if s, ok := w.SlewTime(0.2*Vdd, 0.8*Vdd, victimRising); ok {
				res.Slew = s / 0.6
			}
		}
	}
	return res, nil
}
