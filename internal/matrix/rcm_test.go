package matrix

import "testing"

// TestRCMEqualDegreeTieBreak pins the documented tie-break: equal-degree
// neighbours enqueue in ascending original index, regardless of the order
// the adjacency lists present them in. The permutation below is a frozen
// regression value — any change to it silently re-keys every skyline
// factorization and breaks ROM-cache bit-identity.
func TestRCMEqualDegreeTieBreak(t *testing.T) {
	// A star with center 0 and four equal-degree leaves. Sorted adjacency
	// and reversed adjacency describe the same graph, so they must order
	// identically.
	sorted := [][]int{{1, 2, 3, 4}, {0}, {0}, {0}, {0}}
	reversed := [][]int{{4, 3, 2, 1}, {0}, {0}, {0}, {0}}
	p1 := RCM(sorted)
	p2 := RCM(reversed)
	// Root is leaf 1 (lowest index among minimum degree); BFS enqueues 0,
	// then 0's unvisited neighbours 2,3,4 ascending. CM order 1,0,2,3,4
	// reversed gives:
	want := []int{3, 4, 2, 1, 0}
	for i := range want {
		if p1[i] != want[i] {
			t.Fatalf("RCM(sorted) = %v, want %v", p1, want)
		}
		if p2[i] != want[i] {
			t.Fatalf("RCM(reversed) = %v, want %v (tie-break depends on adjacency order)", p2, want)
		}
	}
}

// TestRCMAdjacencyOrderInvariance checks permutation equality on a larger
// graph with many equal-degree ties, presented with shuffled adjacency.
func TestRCMAdjacencyOrderInvariance(t *testing.T) {
	// 4x4 grid: interior nodes have degree 4, edges 3, corners 2 — plenty
	// of equal-degree ties at every BFS front.
	const w, h = 4, 4
	n := w * h
	id := func(x, y int) int { return y*w + x }
	fwd := make([][]int, n)
	rev := make([][]int, n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var nb []int
			if x > 0 {
				nb = append(nb, id(x-1, y))
			}
			if x < w-1 {
				nb = append(nb, id(x+1, y))
			}
			if y > 0 {
				nb = append(nb, id(x, y-1))
			}
			if y < h-1 {
				nb = append(nb, id(x, y+1))
			}
			fwd[id(x, y)] = nb
			r := make([]int, len(nb))
			for i, v := range nb {
				r[len(nb)-1-i] = v
			}
			rev[id(x, y)] = r
		}
	}
	p1 := RCM(fwd)
	p2 := RCM(rev)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("grid RCM depends on adjacency presentation order:\nfwd %v\nrev %v", p1, p2)
		}
	}
	// Frozen regression permutation for the sorted-adjacency 4x4 grid.
	want := []int{15, 14, 12, 9, 13, 11, 8, 5, 10, 7, 4, 2, 6, 3, 1, 0}
	for i := range want {
		if p1[i] != want[i] {
			t.Fatalf("grid RCM permutation changed: got %v, want %v", p1, want)
		}
	}
}
