package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	a := NewDenseFromRows([][]float64{
		{4, 2, 0},
		{2, 5, 2},
		{0, 2, 5},
	})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	// Reconstruct A = L·Lᵀ.
	rec := l.Mul(l.T())
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(rec.At(i, j), a.At(i, j), 1e-12) {
				t.Errorf("LLᵀ(%d,%d) = %g, want %g", i, j, rec.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randSPD(rng, 8)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 8)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := c.Solve(b)
	r := SubVec(a.MulVec(x), b)
	if NormInf(r) > 1e-9 {
		t.Errorf("residual %g too large", NormInf(r))
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := FactorCholesky(a); err == nil {
		t.Error("expected not-positive-definite error")
	}
}

func TestCholeskyTriangularSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(rng, 6)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	y := c.SolveLower(b)
	if NormInf(SubVec(l.MulVec(y), b)) > 1e-10 {
		t.Error("SolveLower residual too large")
	}
	x := c.SolveUpper(b)
	if NormInf(SubVec(l.T().MulVec(x), b)) > 1e-10 {
		t.Error("SolveUpper residual too large")
	}
}

func TestEigenSymKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 1 and 3.
	a := NewDenseFromRows([][]float64{{2, 1}, {1, 2}})
	w, v, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(w[0], 1, 1e-12) || !almostEq(w[1], 3, 1e-12) {
		t.Errorf("eigenvalues %v, want [1 3]", w)
	}
	// Check A·v = w·v for each column.
	for j := 0; j < 2; j++ {
		av := a.MulVec(v.Col(j))
		for i := 0; i < 2; i++ {
			if !almostEq(av[i], w[j]*v.At(i, j), 1e-10) {
				t.Errorf("eigenvector %d residual at row %d", j, i)
			}
		}
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(15)
		a := randSPD(rng, n)
		w, v, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if w[i] < w[i-1] {
				t.Fatalf("eigenvalues not ascending: %v", w)
			}
		}
		// Orthonormality: VᵀV = I.
		vtv := v.T().Mul(v)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-9 {
					t.Fatalf("VᵀV(%d,%d) = %g", i, j, vtv.At(i, j))
				}
			}
		}
		// Reconstruction: V·diag(w)·Vᵀ = A.
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, w[i])
		}
		rec := v.Mul(d).Mul(v.T())
		if rec.SubMat(a).MaxAbs() > 1e-8*a.MaxAbs() {
			t.Fatalf("reconstruction error %g", rec.SubMat(a).MaxAbs())
		}
	}
}

// Property: eigenvalues of an SPD matrix are all positive and their sum
// equals the trace.
func TestEigenSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randSPD(rng, n)
		w, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		sum, trace := 0.0, 0.0
		for i := 0; i < n; i++ {
			if w[i] <= 0 {
				return false
			}
			sum += w[i]
			trace += a.At(i, i)
		}
		return almostEq(sum, trace, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEigenvaluesSymTridiag(t *testing.T) {
	// Tridiagonal [[2,-1,0],[-1,2,-1],[0,-1,2]] has eigenvalues 2-√2, 2, 2+√2.
	w, err := EigenvaluesSymTridiag([]float64{2, 2, 2}, []float64{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2 - math.Sqrt2, 2, 2 + math.Sqrt2}
	for i := range want {
		if !almostEq(w[i], want[i], 1e-12) {
			t.Errorf("w[%d] = %g, want %g", i, w[i], want[i])
		}
	}
}

func TestQRFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 10, 4)
	qr, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	// QᵀQ = I.
	qtq := qr.Q.T().Mul(qr.Q)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(qtq.At(i, j)-want) > 1e-10 {
				t.Fatalf("QᵀQ(%d,%d) = %g", i, j, qtq.At(i, j))
			}
		}
	}
	// Q·R = A.
	rec := qr.Q.Mul(qr.R)
	if rec.SubMat(a).MaxAbs() > 1e-10 {
		t.Fatalf("QR reconstruction error %g", rec.SubMat(a).MaxAbs())
	}
	// R upper triangular.
	for i := 1; i < 4; i++ {
		for j := 0; j < i; j++ {
			if qr.R.At(i, j) != 0 {
				t.Errorf("R(%d,%d) = %g, want 0", i, j, qr.R.At(i, j))
			}
		}
	}
}

func TestOrthonormalizeBlockFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randDense(rng, 12, 3)
	q, r, rank := OrthonormalizeBlock(a, 1e-12)
	if rank != 3 {
		t.Fatalf("rank = %d, want 3", rank)
	}
	rec := q.Mul(r)
	if rec.SubMat(a).MaxAbs() > 1e-10 {
		t.Fatalf("Q·R reconstruction error %g", rec.SubMat(a).MaxAbs())
	}
	qtq := q.T().Mul(q)
	for i := 0; i < rank; i++ {
		for j := 0; j < rank; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(qtq.At(i, j)-want) > 1e-10 {
				t.Fatalf("QᵀQ(%d,%d) = %g", i, j, qtq.At(i, j))
			}
		}
	}
}

func TestOrthonormalizeBlockDeflation(t *testing.T) {
	// Third column is a linear combination of the first two: rank must be 2.
	a := NewDense(6, 3)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 6; i++ {
		a.Set(i, 0, rng.NormFloat64())
		a.Set(i, 1, rng.NormFloat64())
		a.Set(i, 2, 2*a.At(i, 0)-3*a.At(i, 1))
	}
	q, r, rank := OrthonormalizeBlock(a, 1e-10)
	if rank != 2 {
		t.Fatalf("rank = %d, want 2", rank)
	}
	rec := q.Mul(r)
	if rec.SubMat(a).MaxAbs() > 1e-9 {
		t.Fatalf("deflated Q·R reconstruction error %g", rec.SubMat(a).MaxAbs())
	}
}

func TestOrthonormalizeBlockZero(t *testing.T) {
	a := NewDense(5, 2) // all-zero block
	_, _, rank := OrthonormalizeBlock(a, 1e-12)
	if rank != 0 {
		t.Fatalf("rank of zero block = %d, want 0", rank)
	}
}
