package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSparseSPD builds a random sparse SPD matrix shaped like an RC ladder
// with a few long-range couplings, which mirrors the matrices the skyline
// solver sees in practice.
func randSparseSPD(rng *rand.Rand, n int) *Sparse {
	s := NewSparse(n)
	for i := 0; i < n; i++ {
		s.Add(i, i, 2+rng.Float64())
	}
	for i := 0; i+1 < n; i++ {
		g := 0.5 + rng.Float64()
		s.AddSym(i, i+1, g)
	}
	for k := 0; k < n/4; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i != j {
			s.AddSym(i, j, 0.3*rng.Float64())
		}
	}
	return s
}

func skylineFromSparse(s *Sparse, symmetric bool) *Skyline {
	tmpl := NewSkylineTemplate(s.Adjacency(), symmetric)
	m := tmpl.NewMatrix()
	for _, e := range s.Entries() {
		if symmetric && e.Col > e.Row {
			continue // only lower triangle stored
		}
		m.Add(e.Row, e.Col, e.Val)
	}
	return m
}

func TestSparseAccumulate(t *testing.T) {
	s := NewSparse(3)
	s.Add(0, 1, 2)
	s.Add(0, 1, 3)
	if s.At(0, 1) != 5 {
		t.Errorf("accumulate: got %g, want 5", s.At(0, 1))
	}
	s.AddSym(1, 2, 4)
	if s.At(1, 1) != 4 || s.At(2, 2) != 4 || s.At(1, 2) != -4 || s.At(2, 1) != -4 {
		t.Error("AddSym stamp incorrect")
	}
	// Ground (negative index) stamps only the non-ground diagonal.
	s.AddSym(0, -1, 7)
	if s.At(0, 0) != 7 {
		t.Errorf("ground stamp: got %g, want 7", s.At(0, 0))
	}
}

func TestSparseStructureQueries(t *testing.T) {
	s := NewSparse(4)
	s.AddSym(0, 2, 1)
	s.AddSym(1, 3, 1)
	if !s.IsStructurallySymmetric() {
		t.Error("AddSym result should be structurally symmetric")
	}
	adj := s.Adjacency()
	if len(adj[0]) != 1 || adj[0][0] != 2 {
		t.Errorf("adjacency[0] = %v, want [2]", adj[0])
	}
	s2 := NewSparse(3)
	s2.Add(0, 2, 1)
	if s2.IsStructurallySymmetric() {
		t.Error("one-sided entry reported symmetric")
	}
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randSparseSPD(rng, 15)
	x := make([]float64, 15)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := s.MulVec(x)
	want := s.Dense().MulVec(x)
	if NormInf(SubVec(got, want)) > 1e-12 {
		t.Error("sparse MulVec disagrees with dense")
	}
}

func TestSparsePermuted(t *testing.T) {
	s := NewSparse(3)
	s.Add(0, 1, 5)
	s.Add(2, 2, 7)
	perm := []int{2, 0, 1} // old→new
	p := s.Permuted(perm)
	if p.At(2, 0) != 5 {
		t.Errorf("permuted (2,0) = %g, want 5", p.At(2, 0))
	}
	if p.At(1, 1) != 7 {
		t.Errorf("permuted (1,1) = %g, want 7", p.At(1, 1))
	}
}

func TestSkylineCholeskyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		n := 5 + rng.Intn(30)
		s := randSparseSPD(rng, n)
		m := skylineFromSparse(s, true)
		if err := m.FactorCholesky(); err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := m.SolveCholesky(b)
		r := SubVec(s.Dense().MulVec(x), b)
		if NormInf(r) > 1e-9*(1+NormInf(b)) {
			t.Fatalf("trial %d: residual %g", trial, NormInf(r))
		}
	}
}

func TestSkylineTriangularSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 12
	s := randSparseSPD(rng, n)
	m := skylineFromSparse(s, true)
	if err := m.FactorCholesky(); err != nil {
		t.Fatal(err)
	}
	// Build dense L to verify the triangular solves.
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, m.At(i, j)) // post-factor storage holds L
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	y := m.SolveLower(b)
	if NormInf(SubVec(l.MulVec(y), b)) > 1e-9 {
		t.Error("SolveLower residual too large")
	}
	x := m.SolveLowerT(b)
	if NormInf(SubVec(l.T().MulVec(x), b)) > 1e-9 {
		t.Error("SolveLowerT residual too large")
	}
}

func TestSkylineLUMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		n := 5 + rng.Intn(25)
		// Nonsymmetric values over a symmetric pattern, diagonally dominant.
		s := NewSparse(n)
		for i := 0; i < n; i++ {
			s.Add(i, i, 4+rng.Float64())
		}
		for i := 0; i+1 < n; i++ {
			s.Add(i, i+1, rng.NormFloat64())
			s.Add(i+1, i, rng.NormFloat64())
		}
		for k := 0; k < n/3; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			s.Add(i, j, 0.3*rng.NormFloat64())
			s.Add(j, i, 0.3*rng.NormFloat64())
		}
		m := skylineFromSparse(s, false)
		if err := m.FactorLU(); err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := m.SolveLU(b)
		r := SubVec(s.Dense().MulVec(x), b)
		if NormInf(r) > 1e-9*(1+NormInf(b)) {
			t.Fatalf("trial %d: LU residual %g", trial, NormInf(r))
		}
	}
}

func TestSkylineMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := randSparseSPD(rng, 10)
	msym := skylineFromSparse(s, true)
	x := make([]float64, 10)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := msym.MulVec(x)
	want := s.Dense().MulVec(x)
	if NormInf(SubVec(got, want)) > 1e-12 {
		t.Error("symmetric skyline MulVec mismatch")
	}
	mgen := skylineFromSparse(s, false)
	got = mgen.MulVec(x)
	if NormInf(SubVec(got, want)) > 1e-12 {
		t.Error("general skyline MulVec mismatch")
	}
}

func TestSkylineClearAndRefactor(t *testing.T) {
	s := NewSparse(3)
	s.Add(0, 0, 2)
	s.Add(1, 1, 2)
	s.Add(2, 2, 2)
	s.AddSym(0, 1, 1)
	m := skylineFromSparse(s, false)
	if err := m.FactorLU(); err != nil {
		t.Fatal(err)
	}
	if err := m.FactorLU(); err == nil {
		t.Error("double factor should fail")
	}
	m.Clear()
	m.Add(0, 0, 1)
	m.Add(1, 1, 1)
	m.Add(2, 2, 1)
	if err := m.FactorLU(); err != nil {
		t.Fatalf("refactor after Clear: %v", err)
	}
	x := m.SolveLU([]float64{3, 4, 5})
	for i, want := range []float64{3, 4, 5} {
		if !almostEq(x[i], want, 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

func TestRCMIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		s := randSparseSPD(rng, n)
		perm := RCM(s.Adjacency())
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRCMReducesProfile(t *testing.T) {
	// An arrowhead-ish matrix where node n-1 couples to everything benefits
	// from reordering; RCM must not increase profile on a long ladder with
	// one bad coupling.
	n := 60
	s := NewSparse(n)
	for i := 0; i < n; i++ {
		s.Add(i, i, 1)
	}
	// Chain plus a hub node 0 connected to many high-index nodes.
	for i := 0; i+1 < n; i++ {
		s.AddSym(i, i+1, 1)
	}
	for j := n / 2; j < n; j += 5 {
		s.AddSym(0, j, 1)
	}
	adj := s.Adjacency()
	before := Profile(adj)
	perm := RCM(adj)
	permAdj := s.Permuted(perm).Adjacency()
	after := Profile(permAdj)
	if after > before {
		t.Errorf("RCM increased profile: %d -> %d", before, after)
	}
}

func TestPermuteVecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Random permutation.
		perm := rng.Perm(n)
		y := PermuteVec(x, perm)
		back := UnpermuteVec(y, perm)
		for i := range x {
			if x[i] != back[i] {
				return false
			}
		}
		inv := InvertPerm(perm)
		for old, new := range perm {
			if inv[new] != old {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSkylineOutOfProfilePanics(t *testing.T) {
	s := NewSparse(3)
	s.Add(0, 0, 1)
	s.Add(1, 1, 1)
	s.Add(2, 2, 1)
	m := skylineFromSparse(s, false) // diagonal profile only
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-profile stamp")
		}
	}()
	m.Add(2, 0, 1)
}

func TestSkylineSolveIdentity(t *testing.T) {
	// Sanity on a 1x1 and on identity systems.
	s := NewSparse(1)
	s.Add(0, 0, 4)
	m := skylineFromSparse(s, true)
	if err := m.FactorCholesky(); err != nil {
		t.Fatal(err)
	}
	x := m.SolveCholesky([]float64{8})
	if math.Abs(x[0]-2) > 1e-14 {
		t.Errorf("1x1 solve: got %g, want 2", x[0])
	}
}
