package matrix

import (
	"fmt"
	"math"
)

// QR holds a thin Householder QR factorization A = Q·R with Q m×n having
// orthonormal columns (m ≥ n) and R n×n upper triangular.
type QR struct {
	Q *Dense
	R *Dense
}

// FactorQR computes the thin QR factorization of an m×n matrix with m ≥ n
// using Householder reflections.
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("matrix: FactorQR needs rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Add(k, k, 1)
			// Apply the reflection to the remaining columns.
			for j := k + 1; j < n; j++ {
				s := 0.0
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Add(i, j, s*qr.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	// Extract R.
	r := NewDense(n, n)
	for i := 0; i < n; i++ {
		r.Set(i, i, rdiag[i])
		for j := i + 1; j < n; j++ {
			r.Set(i, j, qr.At(i, j))
		}
	}
	// Accumulate thin Q by applying the stored reflections to the first n
	// columns of the identity.
	q := NewDense(m, n)
	for k := n - 1; k >= 0; k-- {
		q.Set(k, k, 1)
		for j := k; j < n; j++ {
			if qr.At(k, k) == 0 {
				continue
			}
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * q.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				q.Add(i, j, s*qr.At(i, k))
			}
		}
	}
	return &QR{Q: q, R: r}, nil
}

// OrthonormalizeColumns orthonormalizes cols in place using the same
// modified Gram–Schmidt (two passes) and deflation rule as
// OrthonormalizeBlock, but works directly on caller-owned column slices and
// allocates nothing. Retained columns are compacted to the front of cols
// (their buffers are overwritten); the returned rank r says how many of
// cols[0:r] are valid afterwards.
func OrthonormalizeColumns(cols [][]float64, tol float64) int {
	kept := 0
	for j := 0; j < len(cols); j++ {
		col := cols[j]
		norm0 := Norm2(col)
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < kept; i++ {
				c := Dot(cols[i], col)
				Axpy(-c, cols[i], col)
			}
		}
		norm1 := Norm2(col)
		if norm0 == 0 || norm1 <= tol*math.Max(norm0, 1e-300) {
			continue // linearly dependent column: deflate
		}
		ScaleVec(1/norm1, col)
		if kept != j {
			copy(cols[kept], col)
		}
		kept++
	}
	return kept
}

// OrthonormalizeBlock orthonormalizes the columns of a against themselves
// using modified Gram–Schmidt with one reorthogonalization pass, dropping
// columns whose residual norm falls below tol·(initial norm). It returns the
// orthonormal block Q (m×r, r ≤ n), the r×n coefficient matrix R with
// a = Q·R, and the retained rank r. It is the rank-revealing kernel used for
// deflation inside the block Lanczos process.
func OrthonormalizeBlock(a *Dense, tol float64) (q *Dense, r *Dense, rank int) {
	m, n := a.rows, a.cols
	work := a.Clone()
	qCols := make([][]float64, 0, n)
	r = NewDense(n, n) // trimmed to rank×n at the end
	kept := make([]int, 0, n)
	for j := 0; j < n; j++ {
		col := work.Col(j)
		norm0 := Norm2(col)
		// Two passes of modified Gram–Schmidt against the kept columns.
		for pass := 0; pass < 2; pass++ {
			for i, qi := range qCols {
				c := Dot(qi, col)
				r.Add(kept[i], j, c)
				Axpy(-c, qi, col)
			}
		}
		norm1 := Norm2(col)
		if norm0 == 0 || norm1 <= tol*math.Max(norm0, 1e-300) {
			// Linearly dependent column: deflate.
			continue
		}
		ScaleVec(1/norm1, col)
		r.Set(len(qCols), j, norm1)
		// Note: r rows indexed by kept order; fix indices below.
		kept = append(kept, len(qCols))
		qCols = append(qCols, col)
	}
	rank = len(qCols)
	q = NewDense(m, rank)
	for i, c := range qCols {
		q.SetCol(i, c)
	}
	rr := NewDense(rank, n)
	for i := 0; i < rank; i++ {
		for j := 0; j < n; j++ {
			rr.Set(i, j, r.At(i, j))
		}
	}
	return q, rr, rank
}
