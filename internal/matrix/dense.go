// Package matrix provides the dense and sparse linear algebra kernels used
// by the parasitic-coupling verification flow: dense LU/Cholesky/QR
// factorizations, a symmetric eigensolver, skyline (profile) sparse
// factorizations, and reverse Cuthill–McKee bandwidth reduction.
//
// The package is self-contained (standard library only) and sized for the
// matrix regimes that arise in chip-level crosstalk analysis: reduced-order
// models of a few tens of states (dense paths) and pruned RC clusters of up
// to a few tens of thousands of nodes (skyline paths).
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFromRows builds a matrix from a slice of equal-length rows.
func NewDenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at (i, j) by v.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetCol assigns column j from v.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic("matrix: SetCol length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Scale multiplies every element by s in place and returns the receiver.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMat returns m + b as a new matrix.
func (m *Dense) AddMat(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic("matrix: AddMat dimension mismatch")
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// SubMat returns m - b as a new matrix.
func (m *Dense) SubMat(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic("matrix: SubMat dimension mismatch")
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) []float64 {
	out := make([]float64, m.rows)
	m.MulVecTo(out, x)
	return out
}

// MulVecTo computes dst = m·x in place without allocating. dst must not
// alias x.
func (m *Dense) MulVecTo(dst, x []float64) {
	if m.cols != len(x) || m.rows != len(dst) {
		panic("matrix: MulVecTo dimension mismatch")
	}
	for i := 0; i < m.rows; i++ {
		s := 0.0
		mi := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range mi {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecT returns mᵀ·x without forming the transpose.
func (m *Dense) MulVecT(x []float64) []float64 {
	if m.rows != len(x) {
		panic("matrix: MulVecT dimension mismatch")
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		mi := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range mi {
			out[j] += v * xi
		}
	}
	return out
}

// IsSymmetric reports whether |m[i][j]-m[j][i]| <= tol·max(|m[i][j]|,|m[j][i]|,1)
// for all i, j.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			a, b := m.At(i, j), m.At(j, i)
			scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
			if math.Abs(a-b) > tol*scale {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .6e ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrSingular is returned by factorizations when the matrix is numerically
// singular at the working precision.
var ErrSingular = errors.New("matrix: singular matrix")

// LU holds a dense LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a square matrix with partial
// pivoting. The input matrix is not modified.
func FactorLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: FactorLU needs square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k.
		p := k
		maxv := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				maxv, p = v, i
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			lik := lu.At(i, k) / pivot
			lu.Set(i, k, lik)
			if lik == 0 {
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= lik * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b for x given the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.rows)
	if err := f.SolveTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTo solves A·x = b into dst without allocating. dst must not alias b
// (the pivot gather reads b after dst positions are written).
func (f *LU) SolveTo(dst, b []float64) error {
	n := f.lu.rows
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("matrix: LU.SolveTo length mismatch %d vs %d", len(b), n)
	}
	x := dst
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower-triangular L.
	for i := 1; i < n; i++ {
		ri := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		d := ri[i]
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// SolveLUInPlace factors the square matrix a in place with partial pivoting
// (destroying its contents) and overwrites b with the solution of a·x = b.
// piv is caller-provided scratch of length a.Rows(). It is the
// zero-allocation path for the small Woodbury core systems solved at every
// Newton iteration of the transient integrators.
func SolveLUInPlace(a *Dense, piv []int, b []float64) error {
	if a.rows != a.cols {
		return fmt.Errorf("matrix: SolveLUInPlace needs square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	if len(piv) != n || len(b) != n {
		return fmt.Errorf("matrix: SolveLUInPlace scratch length mismatch")
	}
	for k := 0; k < n; k++ {
		p := k
		maxv := math.Abs(a.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.data[i*n+k]); v > maxv {
				maxv, p = v, i
			}
		}
		if maxv == 0 {
			return ErrSingular
		}
		// Record the swap LAPACK-style (row p exchanged with row k at step
		// k); replaying the same swaps on b applies the pivot permutation.
		piv[k] = p
		if p != k {
			rk, rp := a.data[k*n:(k+1)*n], a.data[p*n:(p+1)*n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		pivot := a.data[k*n+k]
		for i := k + 1; i < n; i++ {
			lik := a.data[i*n+k] / pivot
			a.data[i*n+k] = lik
			if lik == 0 {
				continue
			}
			ri, rk := a.data[i*n:(i+1)*n], a.data[k*n:(k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= lik * rk[j]
			}
		}
	}
	for k := 0; k < n; k++ {
		if p := piv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	for i := 1; i < n; i++ {
		ri := a.data[i*n : (i+1)*n]
		s := b[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * b[j]
		}
		b[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		ri := a.data[i*n : (i+1)*n]
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * b[j]
		}
		d := ri[i]
		if d == 0 {
			return ErrSingular
		}
		b[i] = s / d
	}
	return nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense solves A·X = B column by column.
func (f *LU) SolveDense(b *Dense) (*Dense, error) {
	if b.rows != f.lu.rows {
		return nil, fmt.Errorf("matrix: SolveDense dimension mismatch")
	}
	out := NewDense(b.rows, b.cols)
	for j := 0; j < b.cols; j++ {
		x, err := f.Solve(b.Col(j))
		if err != nil {
			return nil, err
		}
		out.SetCol(j, x)
	}
	return out, nil
}

// Inverse returns A⁻¹ computed via LU factorization.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveDense(Identity(a.rows))
}
