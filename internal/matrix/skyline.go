package matrix

import (
	"fmt"
	"math"
)

// SkylineTemplate captures the structural profile (skyline/envelope) of a
// structurally symmetric sparse matrix so that many matrices with the same
// pattern can be stamped and factored without re-deriving the structure.
// Indices are in the caller's ordering; apply RCM beforehand for a small
// profile.
type SkylineTemplate struct {
	n         int
	first     []int // first stored column of row i (and first row of col i)
	rowptr    []int // offset of row i's strictly-lower entries in the value array
	lowLen    int   // total strictly-lower entries
	symmetric bool  // if true, only lower+diag values are allocated
}

// NewSkylineTemplate builds a template from adjacency lists (as returned by
// Sparse.Adjacency). If symmetric is true the resulting matrices store only
// the lower triangle and support Cholesky; otherwise they store both
// triangles within the symmetric profile and support LU.
func NewSkylineTemplate(adj [][]int, symmetric bool) *SkylineTemplate {
	n := len(adj)
	t := &SkylineTemplate{n: n, symmetric: symmetric}
	t.first = make([]int, n)
	t.rowptr = make([]int, n+1)
	for i := 0; i < n; i++ {
		f := i
		for _, j := range adj[i] {
			if j < f {
				f = j
			}
		}
		t.first[i] = f
		t.rowptr[i+1] = t.rowptr[i] + (i - f)
	}
	t.lowLen = t.rowptr[n]
	return t
}

// Size returns the matrix dimension.
func (t *SkylineTemplate) Size() int { return t.n }

// ProfileNNZ returns the number of stored lower-triangle entries including
// the diagonal.
func (t *SkylineTemplate) ProfileNNZ() int { return t.lowLen + t.n }

// NewMatrix allocates a zero matrix over the template's profile.
func (t *SkylineTemplate) NewMatrix() *Skyline {
	m := &Skyline{t: t, diag: make([]float64, t.n), low: make([]float64, t.lowLen)}
	if !t.symmetric {
		m.upp = make([]float64, t.lowLen)
	}
	return m
}

// Skyline is a matrix stored over a SkylineTemplate profile. For symmetric
// templates only diag and low are populated; for general templates upp holds
// the strictly-upper triangle by columns (the profile is symmetric).
type Skyline struct {
	t        *SkylineTemplate
	diag     []float64
	low      []float64 // strictly lower, by rows: row i spans rowptr[i]..rowptr[i+1)
	upp      []float64 // strictly upper, by columns: col j spans rowptr[j]..rowptr[j+1)
	factored bool
}

// Clear zeroes all values and marks the matrix unfactored.
func (m *Skyline) Clear() {
	for i := range m.diag {
		m.diag[i] = 0
	}
	for i := range m.low {
		m.low[i] = 0
	}
	for i := range m.upp {
		m.upp[i] = 0
	}
	m.factored = false
}

// Add accumulates v into entry (i, j). The entry must lie inside the
// template's profile. Negative indices (ground) are ignored so MNA stamps can
// be written uniformly.
func (m *Skyline) Add(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	t := m.t
	if i >= t.n || j >= t.n {
		panic(fmt.Sprintf("matrix: skyline index (%d,%d) out of range n=%d", i, j, t.n))
	}
	switch {
	case i == j:
		m.diag[i] += v
	case i > j:
		if j < t.first[i] {
			panic(fmt.Sprintf("matrix: skyline entry (%d,%d) outside profile (first=%d)", i, j, t.first[i]))
		}
		m.low[t.rowptr[i]+(j-t.first[i])] += v
	default: // i < j, upper triangle
		if m.upp == nil {
			panic("matrix: upper-triangle stamp on symmetric skyline; use AddSym")
		}
		if i < t.first[j] {
			panic(fmt.Sprintf("matrix: skyline entry (%d,%d) outside profile (first=%d)", i, j, t.first[j]))
		}
		m.upp[t.rowptr[j]+(i-t.first[j])] += v
	}
}

// AddSym accumulates the symmetric conductance stamp (+v on both diagonals,
// −v on both off-diagonals) for element between nodes i and j; negative node
// indices denote ground.
func (m *Skyline) AddSym(i, j int, v float64) {
	if i >= 0 {
		m.Add(i, i, v)
	}
	if j >= 0 {
		m.Add(j, j, v)
	}
	if i >= 0 && j >= 0 {
		if i > j {
			m.Add(i, j, -v)
			if m.upp != nil {
				m.Add(j, i, -v)
			}
		} else if j > i {
			m.Add(j, i, -v)
			if m.upp != nil {
				m.Add(i, j, -v)
			}
		}
	}
}

// At returns the entry (i, j) (zero outside the profile). For symmetric
// matrices the lower value is mirrored.
func (m *Skyline) At(i, j int) float64 {
	t := m.t
	switch {
	case i == j:
		return m.diag[i]
	case i > j:
		if j < t.first[i] {
			return 0
		}
		return m.low[t.rowptr[i]+(j-t.first[i])]
	default:
		if m.upp == nil {
			return m.At(j, i)
		}
		if i < t.first[j] {
			return 0
		}
		return m.upp[t.rowptr[j]+(i-t.first[j])]
	}
}

// lowAt reads the strictly-lower entry (i, j) assuming it is inside the
// profile; callers must guarantee first[i] <= j < i.
func (m *Skyline) lowAt(i, j int) float64 { return m.low[m.t.rowptr[i]+(j-m.t.first[i])] }

func (m *Skyline) uppAt(i, j int) float64 { return m.upp[m.t.rowptr[j]+(i-m.t.first[j])] }

// FactorCholesky factors the symmetric matrix in place as L·Lᵀ. Only the
// lower triangle is read; the factor overwrites the storage. Returns
// ErrNotPositiveDefinite on a non-positive pivot.
func (m *Skyline) FactorCholesky() error {
	if m.factored {
		return fmt.Errorf("matrix: skyline already factored")
	}
	t := m.t
	for i := 0; i < t.n; i++ {
		fi := t.first[i]
		for j := fi; j < i; j++ {
			s := m.lowAt(i, j)
			kStart := fi
			if fj := t.first[j]; fj > kStart {
				kStart = fj
			}
			for k := kStart; k < j; k++ {
				s -= m.lowAt(i, k) * m.lowAt(j, k)
			}
			m.low[t.rowptr[i]+(j-fi)] = s / m.diag[j]
		}
		d := m.diag[i]
		for k := fi; k < i; k++ {
			lik := m.lowAt(i, k)
			d -= lik * lik
		}
		if d <= 0 {
			return fmt.Errorf("%w: skyline pivot %d = %g", ErrNotPositiveDefinite, i, d)
		}
		m.diag[i] = math.Sqrt(d)
	}
	m.factored = true
	return nil
}

// SolveCholesky solves A·x = b after FactorCholesky.
func (m *Skyline) SolveCholesky(b []float64) []float64 {
	y := m.SolveLower(b)
	return m.SolveLowerT(y)
}

// SolveLower solves L·y = b (forward substitution) on a Cholesky-factored
// matrix. This is the F⁻ᵀ application in the SyMPVL symmetrization where
// G = Fᵀ·F with F = Lᵀ.
func (m *Skyline) SolveLower(b []float64) []float64 {
	y := make([]float64, m.t.n)
	m.SolveLowerTo(y, b)
	return y
}

// SolveLowerTo solves L·y = b into dst without allocating. dst may alias b:
// the forward sweep reads b[i] before overwriting position i and only ever
// reads already-written positions j < i afterwards.
func (m *Skyline) SolveLowerTo(dst, b []float64) {
	t := m.t
	if len(b) != t.n || len(dst) != t.n {
		panic("matrix: SolveLowerTo length mismatch")
	}
	for i := 0; i < t.n; i++ {
		s := b[i]
		fi := t.first[i]
		base := t.rowptr[i]
		for j := fi; j < i; j++ {
			s -= m.low[base+(j-fi)] * dst[j]
		}
		dst[i] = s / m.diag[i]
	}
}

// SolveLowerT solves Lᵀ·x = y (back substitution, column sweep) on a
// Cholesky-factored matrix. This is the F⁻¹ application in SyMPVL.
func (m *Skyline) SolveLowerT(y []float64) []float64 {
	x := make([]float64, m.t.n)
	m.SolveLowerTTo(x, y)
	return x
}

// SolveLowerTTo solves Lᵀ·x = y into dst without allocating. dst may alias y
// (the column sweep works on dst in place after the initial copy).
func (m *Skyline) SolveLowerTTo(dst, y []float64) {
	t := m.t
	if len(y) != t.n || len(dst) != t.n {
		panic("matrix: SolveLowerTTo length mismatch")
	}
	if t.n == 0 {
		return
	}
	if &dst[0] != &y[0] {
		copy(dst, y)
	}
	for j := t.n - 1; j >= 0; j-- {
		dst[j] /= m.diag[j]
		fj := t.first[j]
		base := t.rowptr[j]
		xj := dst[j]
		for i := fj; i < j; i++ {
			dst[i] -= m.low[base+(i-fj)] * xj
		}
	}
}

// FactorLU factors the general matrix in place as L·U with unit-lower L
// (Doolittle, no pivoting). MNA matrices assembled with gmin and companion
// conductances are diagonally strong enough for pivot-free factorization;
// a zero pivot returns ErrSingular.
func (m *Skyline) FactorLU() error {
	if m.upp == nil {
		return fmt.Errorf("matrix: FactorLU requires a general (non-symmetric) skyline")
	}
	if m.factored {
		return fmt.Errorf("matrix: skyline already factored")
	}
	t := m.t
	for i := 0; i < t.n; i++ {
		fi := t.first[i]
		for j := fi; j < i; j++ {
			kStart := fi
			if fj := t.first[j]; fj > kStart {
				kStart = fj
			}
			// L(i,j) over row i of L and column j of U.
			s := m.lowAt(i, j)
			for k := kStart; k < j; k++ {
				s -= m.lowAt(i, k) * m.uppAt(k, j)
			}
			if m.diag[j] == 0 {
				return fmt.Errorf("%w: skyline LU pivot %d", ErrSingular, j)
			}
			m.low[t.rowptr[i]+(j-fi)] = s / m.diag[j]
			// U(j,i) over row j of L and column i of U.
			s = m.uppAt(j, i)
			for k := kStart; k < j; k++ {
				s -= m.lowAt(j, k) * m.uppAt(k, i)
			}
			m.upp[t.rowptr[i]+(j-fi)] = s
		}
		d := m.diag[i]
		for k := fi; k < i; k++ {
			d -= m.lowAt(i, k) * m.uppAt(k, i)
		}
		if d == 0 {
			return fmt.Errorf("%w: skyline LU pivot %d", ErrSingular, i)
		}
		m.diag[i] = d
	}
	m.factored = true
	return nil
}

// SolveLU solves A·x = b after FactorLU.
func (m *Skyline) SolveLU(b []float64) []float64 {
	x := make([]float64, m.t.n)
	m.SolveLUTo(x, b)
	return x
}

// SolveLUTo solves A·x = b after FactorLU, writing x into dst without
// allocating. dst may alias b.
func (m *Skyline) SolveLUTo(dst, b []float64) {
	t := m.t
	if len(b) != t.n || len(dst) != t.n {
		panic("matrix: SolveLUTo length mismatch")
	}
	// Forward: L·y = b with unit diagonal.
	x := dst
	copy(x, b)
	for i := 0; i < t.n; i++ {
		fi := t.first[i]
		base := t.rowptr[i]
		s := x[i]
		for j := fi; j < i; j++ {
			s -= m.low[base+(j-fi)] * x[j]
		}
		x[i] = s
	}
	// Backward: U·x = y, column sweep using column-stored upper triangle.
	for j := t.n - 1; j >= 0; j-- {
		x[j] /= m.diag[j]
		fj := t.first[j]
		base := t.rowptr[j]
		xj := x[j]
		for i := fj; i < j; i++ {
			x[i] -= m.upp[base+(i-fj)] * xj
		}
	}
}

// MulVec computes A·x for an unfactored skyline matrix.
func (m *Skyline) MulVec(x []float64) []float64 {
	if m.factored {
		panic("matrix: MulVec on factored skyline")
	}
	t := m.t
	if len(x) != t.n {
		panic("matrix: skyline MulVec length mismatch")
	}
	y := make([]float64, t.n)
	for i := 0; i < t.n; i++ {
		s := m.diag[i] * x[i]
		fi := t.first[i]
		base := t.rowptr[i]
		for j := fi; j < i; j++ {
			lv := m.low[base+(j-fi)]
			s += lv * x[j]
			if m.upp == nil {
				y[j] += lv * x[i]
			} else {
				y[j] += m.upp[base+(j-fi)] * x[i]
			}
		}
		y[i] += s
	}
	return y
}
