package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func randDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randSPD returns a random symmetric positive definite matrix.
func randSPD(rng *rand.Rand, n int) *Dense {
	b := randDense(rng, n, n)
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n)) // boost the diagonal for conditioning
	}
	return a
}

func TestDenseBasicOps(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("dims: got %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g, want 3", m.At(1, 0))
	}
	m.Add(1, 0, 2)
	if m.At(1, 0) != 5 {
		t.Errorf("Add: got %g, want 5", m.At(1, 0))
	}
	tr := m.T()
	if tr.At(0, 1) != 5 {
		t.Errorf("T: got %g, want 5", tr.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone is not a deep copy")
	}
}

func TestDenseMul(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewDenseFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p := a.Mul(b)
	want := NewDenseFromRows([][]float64{{58, 64}, {139, 154}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want.At(i, j) {
				t.Errorf("Mul(%d,%d) = %g, want %g", i, j, p.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestDenseMulVecAndT(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := a.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("MulVec[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	z := a.MulVecT([]float64{1, 0, -1})
	wantT := []float64{-4, -4}
	for i := range wantT {
		if z[i] != wantT[i] {
			t.Errorf("MulVecT[%d] = %g, want %g", i, z[i], wantT[i])
		}
	}
}

func TestIdentityAndSymmetry(t *testing.T) {
	id := Identity(4)
	if !id.IsSymmetric(0) {
		t.Error("identity not symmetric")
	}
	a := NewDenseFromRows([][]float64{{1, 2}, {2.0000001, 1}})
	if a.IsSymmetric(1e-9) {
		t.Error("asymmetric matrix reported symmetric at tight tol")
	}
	if !a.IsSymmetric(1e-3) {
		t.Error("nearly symmetric matrix rejected at loose tol")
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewDenseFromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	x, err := f.Solve([]float64{5, -2, 9})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Error("expected singular error")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewDenseFromRows([][]float64{{3, 0}, {0, 4}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 12, 1e-12) {
		t.Errorf("det = %g, want 12", f.Det())
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSPD(rng, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Mul(inv)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(p.At(i, j)-want) > 1e-9 {
				t.Fatalf("A·A⁻¹(%d,%d) = %g", i, j, p.At(i, j))
			}
		}
	}
}

// Property: for random well-conditioned systems, LU solve residual is tiny.
func TestLUSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(2*n)) // diagonally dominant => well conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		lu, err := FactorLU(a)
		if err != nil {
			return false
		}
		x, err := lu.Solve(b)
		if err != nil {
			return false
		}
		r := SubVec(a.MulVec(x), b)
		return NormInf(r) < 1e-9*(1+NormInf(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %g, want 5", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Errorf("NormInf = %g, want 4", NormInf(x))
	}
	if Dot(x, []float64{1, 1}) != 7 {
		t.Errorf("Dot = %g, want 7", Dot(x, []float64{1, 1}))
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy: got %v", y)
	}
	s := SubVec([]float64{5, 5}, []float64{2, 3})
	if s[0] != 3 || s[1] != 2 {
		t.Errorf("SubVec: got %v", s)
	}
	a := AddVec([]float64{5, 5}, []float64{2, 3})
	if a[0] != 7 || a[1] != 8 {
		t.Errorf("AddVec: got %v", a)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Norm2 must not overflow for huge components.
	x := []float64{1e200, 1e200}
	got := Norm2(x)
	want := math.Sqrt2 * 1e200
	if !almostEq(got, want, 1e-12) {
		t.Errorf("Norm2 overflow-guard: got %g, want %g", got, want)
	}
}
