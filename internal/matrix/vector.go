package matrix

import "math"

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("matrix: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += a·x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("matrix: Axpy length mismatch")
	}
	if a == 0 {
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SubVec returns x - y as a new vector.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("matrix: SubVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// AddVec returns x + y as a new vector.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("matrix: AddVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}
