package matrix

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and orthonormal eigenvectors of a
// symmetric matrix using Householder tridiagonalization followed by the
// implicit-shift QL algorithm (the classic EISPACK tred2/tql2 pair).
//
// It returns the eigenvalues in ascending order and a matrix whose columns
// are the corresponding eigenvectors, so that A = V·diag(w)·Vᵀ.
func EigenSym(a *Dense) (w []float64, v *Dense, err error) {
	if a.rows != a.cols {
		return nil, nil, fmt.Errorf("matrix: EigenSym needs square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	if n == 0 {
		return nil, NewDense(0, 0), nil
	}
	z := a.Clone() // will become the accumulated transform
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := tql2(z, d, e); err != nil {
		return nil, nil, err
	}
	// Sort eigenpairs ascending by eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	w = make([]float64, n)
	v = NewDense(n, n)
	for newCol, oldCol := range idx {
		w[newCol] = d[oldCol]
		for i := 0; i < n; i++ {
			v.Set(i, newCol, z.At(i, oldCol))
		}
	}
	return w, v, nil
}

// tred2 reduces a symmetric matrix (stored in z) to tridiagonal form using
// Householder reflections, accumulating the orthogonal transform in z.
// On return d holds the diagonal and e the sub-diagonal (e[0] = 0).
func tred2(z *Dense, d, e []float64) {
	n := z.rows
	for i := 0; i < n; i++ {
		d[i] = z.At(n-1, i)
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = z.At(i-1, j)
				z.Set(i, j, 0)
				z.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply similarity transformation to remaining columns.
			for j := 0; j < i; j++ {
				f = d[j]
				z.Set(j, i, f)
				g = e[j] + z.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += z.At(k, j) * d[k]
					e[k] += z.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					z.Add(k, j, -(f*e[k] + g*d[k]))
				}
				d[j] = z.At(i-1, j)
				z.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		z.Set(n-1, i, z.At(i, i))
		z.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = z.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += z.At(k, i+1) * z.At(k, j)
				}
				for k := 0; k <= i; k++ {
					z.Add(k, j, -g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			z.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = z.At(n-1, j)
		z.Set(n-1, j, 0)
	}
	z.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 finds the eigenvalues and eigenvectors of a symmetric tridiagonal
// matrix using the QL algorithm with implicit shifts. d holds the diagonal,
// e the sub-diagonal (e[0] unused), and z the transform accumulated by tred2.
func tql2(z *Dense, d, e []float64) error {
	n := z.rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	f, tst1 := 0.0, 0.0
	eps := math.Nextafter(1, 2) - 1
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= 50 {
					return fmt.Errorf("matrix: tql2 failed to converge at eigenvalue %d", l)
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate the rotation in the eigenvector matrix.
					for k := 0; k < n; k++ {
						h = z.At(k, i+1)
						z.Set(k, i+1, s*z.At(k, i)+c*h)
						z.Set(k, i, c*z.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}

// EigenvaluesSymTridiag computes the eigenvalues of a symmetric tridiagonal
// matrix given its diagonal diag and sub-diagonal sub (len(sub) = len(diag)-1)
// without accumulating eigenvectors. It is used for cheap stability audits of
// reduced-order models.
func EigenvaluesSymTridiag(diag, sub []float64) ([]float64, error) {
	n := len(diag)
	if n == 0 {
		return nil, nil
	}
	if len(sub) != n-1 {
		return nil, fmt.Errorf("matrix: sub-diagonal length %d, want %d", len(sub), n-1)
	}
	// Build the dense tridiagonal and reuse the full solver; the matrices in
	// this code base are small enough (reduced order ≤ a few hundred).
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, diag[i])
		if i+1 < n {
			a.Set(i, i+1, sub[i])
			a.Set(i+1, i, sub[i])
		}
	}
	w, _, err := EigenSym(a)
	return w, err
}
